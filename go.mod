module borealis

go 1.22
