// Network monitoring — the paper's first motivating application (§1).
//
// Four network monitors stream connection records tagged with a suspicion
// score. A replicated processing node filters the suspicious records and
// counts them per monitor over one-second windows, producing an alert
// stream. When a network partition cuts one monitor off, DPC keeps the
// alert stream flowing within the availability bound — alerts computed from
// partial data arrive marked TENTATIVE ("continuing to process data from
// the remaining nodes can help detect at least a subset of all anomalous
// conditions"). Once the partition heals, the monitors' persistent logs
// replay, the node reconciles via checkpoint/redo, and the administrator
// eventually sees the complete, corrected list of alerts.
//
// This example assembles the deployment from the low-level public API —
// custom diagram, explicit replicas, explicit client — on a Runtime, so
// switching the last line from NewSimRuntime to NewRealtimeRuntime runs
// the identical system paced against the wall clock (docs/RUNTIME.md).
//
// Run: go run ./examples/netmon
package main

import (
	"fmt"
	"log"

	"borealis"
)

const (
	monitors  = 4
	rate      = 200.0 // records/second per monitor
	threshold = 70    // suspicion score that triggers an alert
	window    = borealis.Second
	bound     = 2 * borealis.Second // availability bound D
)

// alertDiagram builds: monitors → SUnion → Filter(score>threshold) →
// Aggregate(count per monitor, 1s tumbling) → SOutput("alerts").
func alertDiagram() (*borealis.Diagram, error) {
	b := borealis.NewDiagramBuilder()
	b.Add(borealis.NewSUnion("merge", borealis.SUnionConfig{
		Ports:      monitors,
		BucketSize: 100 * borealis.Millisecond,
		Delay:      bound,
	}))
	b.Add(borealis.NewFilter("suspicious", func(t borealis.Tuple) bool {
		return t.Field(1) > threshold // Data = [monitorID, score]
	}))
	b.Add(borealis.NewAggregate("per-monitor", borealis.AggregateConfig{
		Size:       window,
		Fn:         borealis.AggCount,
		ValueField: 1,
		GroupField: 0, // group by monitor id
	}))
	b.Add(borealis.NewSOutput("out"))
	b.Connect("merge", "suspicious", 0)
	b.Connect("suspicious", "per-monitor", 0)
	b.Connect("per-monitor", "out", 0)
	for i := 0; i < monitors; i++ {
		b.Input(fmt.Sprintf("mon%d", i+1), "merge", i)
	}
	b.Output("alerts", "out")
	return b.Build()
}

func main() {
	rt := borealis.NewSimRuntime() // NewRealtimeRuntime(100) runs it live
	clk := rt.Clock()
	net := borealis.NewNetOn(clk)

	// Monitors: score = a deterministic pseudo-random function of the
	// sequence number, so every run (and every replica) agrees.
	upstreams := map[string][]string{}
	for i := 0; i < monitors; i++ {
		id := fmt.Sprintf("monsrc%d", i+1)
		monID := int64(i + 1)
		src := borealis.NewSourceOn(clk, net, borealis.SourceConfig{
			ID:     id,
			Stream: fmt.Sprintf("mon%d", i+1),
			Rate:   rate,
			Payload: func(seq uint64) []int64 {
				score := int64(seq*2654435761) % 100
				if score < 0 {
					score = -score
				}
				return []int64{monID, score}
			},
		})
		upstreams[src.Stream()] = []string{id}
		defer src.Stop()
		src.Start()
	}

	// Replica pair.
	for _, id := range []string{"nodeA", "nodeB"} {
		d, err := alertDiagram()
		if err != nil {
			log.Fatal(err)
		}
		peer := "nodeB"
		if id == "nodeB" {
			peer = "nodeA"
		}
		n, err := borealis.NewNodeOn(clk, net, d, borealis.NodeConfig{
			ID:                  id,
			Peers:               []string{peer},
			Upstreams:           upstreams,
			Downstreams:         map[string][]string{"alerts": {"admin"}},
			FailurePolicy:       borealis.PolicyProcess,
			StabilizationPolicy: borealis.PolicyProcess,
		})
		if err != nil {
			log.Fatal(err)
		}
		n.Start()
	}

	admin, err := borealis.NewClientOn(clk, net, borealis.ClientConfig{
		ID:        "admin",
		Stream:    "alerts",
		Upstreams: []string{"nodeA", "nodeB"},
	})
	if err != nil {
		log.Fatal(err)
	}
	// Watch the alert stream live: count tentative alerts as they fire.
	tentativeAlerts := 0
	admin.OnDeliver(func(d borealis.Delivery) {
		if d.Tuple.Type == borealis.Tentative {
			tentativeAlerts++
		}
	})
	admin.Start()

	// Partition monitor 2 away from both replicas between t=8s and t=20s.
	clk.At(8*borealis.Second, func() {
		net.PartitionGroups([]string{"monsrc2"}, []string{"nodeA", "nodeB"})
	})
	clk.At(20*borealis.Second, func() {
		net.HealGroups([]string{"monsrc2"}, []string{"nodeA", "nodeB"})
	})

	rt.RunFor(60 * borealis.Second)

	st := admin.Stats()
	fmt.Println("Network monitoring under a 12s monitor partition")
	fmt.Printf("  alert windows delivered:   %d\n", st.NewTuples)
	fmt.Printf("  tentative alerts:          %d (partial data during the partition)\n", st.Tentative)
	fmt.Printf("  correction sequences:      %d (undo + corrected alerts)\n", st.Undos)
	fmt.Printf("  max added alert latency:   %.2fs (bound %.2fs)\n",
		float64(st.MaxLatency)/1e6, float64(bound)/1e6)
	fmt.Printf("  stable duplicate alerts:   %d (must be 0)\n", st.StableDuplicates)

	// The final stable alert stream contains every monitor's counts —
	// including monitor 2's records that were unavailable during the
	// partition and replayed afterwards.
	perMonitor := map[int64]int{}
	for _, t := range admin.StableView() {
		perMonitor[t.Field(0)]++
	}
	fmt.Println("  stable alert windows per monitor (complete after healing):")
	for i := int64(1); i <= monitors; i++ {
		fmt.Printf("    monitor %d: %d windows\n", i, perMonitor[i])
	}
	fmt.Printf("  (live tap saw %d tentative alerts as they fired)\n", tentativeAlerts)
}
