// Chain failover: a four-level replicated chain surviving a node crash and
// a network partition at once (§2.2: DPC handles multiple failures
// overlapping in time).
//
// The deployment is Fig. 14's: four levels of replica pairs between three
// sources and a client. At t=10s the level-2 primary crashes; at t=12s a
// partition cuts the level-3 primary from its upstreams for six seconds.
// Downstream consistency managers detect both through keep-alive timeouts
// and missing boundaries, switch to the surviving replicas (Table II), and
// the client keeps receiving results; whatever had to be processed from
// partial inputs is corrected after the partition heals.
//
// Run: go run ./examples/chainfailover
package main

import (
	"fmt"
	"log"

	"borealis"
)

func main() {
	spec := borealis.ChainSpec{
		Depth:    4,
		Replicas: 2,
		Sources:  3,
		Rate:     500,
		Delay:    2 * borealis.Second,
	}
	dep, err := borealis.BuildChain(spec)
	if err != nil {
		log.Fatal(err)
	}

	// Crash the level-2 primary ("n2a").
	dep.CrashNode(2, 0, 10*borealis.Second)
	// Partition the level-3 primary from both level-2 replicas.
	dep.Partition("n3a", "n2a", 12*borealis.Second, 6*borealis.Second)
	dep.Partition("n3a", "n2b", 12*borealis.Second, 6*borealis.Second)

	dep.Start()
	dep.RunFor(60 * borealis.Second)

	st := dep.Client.Stats()
	fmt.Println("Chain failover: level-2 crash + level-3 partition")
	fmt.Printf("  new tuples delivered:   %d\n", st.NewTuples)
	fmt.Printf("  max processing latency: %.2fs\n", float64(st.MaxLatency)/1e6)
	fmt.Printf("  tentative tuples:       %d\n", st.Tentative)
	fmt.Printf("  correction sequences:   %d\n", st.Undos)

	// Which replicas ended up serving, and who reconciled?
	for li, row := range dep.Nodes {
		for _, n := range row {
			status := n.State().String()
			if n.Down() {
				status = "CRASHED"
			}
			fmt.Printf("  level %d %s: %-13s reconciliations=%d switches=%d\n",
				li+1, n.ID(), status, n.Reconciliations, n.CM().Switches)
		}
	}

	ref, err := borealis.BuildChain(spec)
	if err != nil {
		log.Fatal(err)
	}
	ref.Start()
	ref.RunFor(60 * borealis.Second)
	audit := dep.Client.VerifyEventualConsistency(ref.Client.View())
	if audit.OK {
		fmt.Printf("  eventual consistency:   ok (%d stable tuples compared)\n", audit.Compared)
	} else {
		fmt.Printf("  eventual consistency:   FAILED: %s\n", audit.Reason)
	}
}
