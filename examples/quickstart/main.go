// Quickstart: a replicated DPC deployment surviving an input failure.
//
// Three data sources feed a replicated processing node whose output a DPC
// client consumes. One source disconnects for five seconds; the client
// keeps receiving results within the availability bound (tentative ones
// while the failure lasts), and after the failure heals the node reconciles
// its state and the client receives the corrected, stable stream.
//
// Run: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"borealis"
)

func main() {
	dep, err := borealis.BuildChain(borealis.ChainSpec{
		Depth:    1,                   // one level of processing nodes
		Replicas: 2,                   // each node runs as a replica pair
		Sources:  3,                   // three input streams
		Rate:     500,                 // aggregate tuples/second
		Delay:    2 * borealis.Second, // availability bound D
	})
	if err != nil {
		log.Fatal(err)
	}

	// Disconnect source 1 at t=10s for 5s. The source keeps producing and
	// logging; on reconnect it replays everything its subscribers missed.
	dep.DisconnectSource(1, 10*borealis.Second, 5*borealis.Second)

	dep.Start()
	dep.RunFor(40 * borealis.Second) // virtual time: finishes in milliseconds

	st := dep.Client.Stats()
	fmt.Println("DPC quickstart — replicated node, 5s input failure")
	fmt.Printf("  new tuples delivered:        %d\n", st.NewTuples)
	fmt.Printf("  max processing latency:      %.2fs (bound %.2fs + normal processing)\n",
		float64(st.MaxLatency)/1e6, 2.0)
	fmt.Printf("  tentative tuples (Ntent):    %d\n", st.Tentative)
	fmt.Printf("  undo/corrections sequences:  %d\n", st.Undos)
	fmt.Printf("  stable duplicates:           %d (must be 0)\n", st.StableDuplicates)

	// Eventual consistency: compare against a failure-free run.
	ref, err := borealis.BuildChain(borealis.ChainSpec{
		Depth: 1, Replicas: 2, Sources: 3, Rate: 500, Delay: 2 * borealis.Second,
	})
	if err != nil {
		log.Fatal(err)
	}
	ref.Start()
	ref.RunFor(40 * borealis.Second)
	audit := dep.Client.VerifyEventualConsistency(ref.Client.View())
	if audit.OK {
		fmt.Printf("  eventual consistency:        ok (%d stable tuples compared)\n", audit.Compared)
	} else {
		fmt.Printf("  eventual consistency:        FAILED: %s\n", audit.Reason)
	}
}
