// Sensor-based environment monitoring — the paper's second motivating
// application (§1): pipeline-health / air-quality style monitoring where
// alerts raised on partial data dispatch technicians, so the system may
// wait a little for accuracy but must eventually tell real alerts from
// false alarms.
//
// Two sensor streams (temperature and gas concentration readings from the
// same sites) are joined per site within a time window; a site whose
// temperature and gas readings are simultaneously high raises an alert.
// When the gas sensors disconnect, alerts keep flowing as TENTATIVE (the
// join blocks, so the paper's semantics make the merged stream's available
// half flow through tentatively once the delay bound expires). After the
// sensors reconnect and replay their logs, the node reconciles and the
// final stable alert list is exactly what an uninterrupted run produces.
//
// Run: go run ./examples/sensornet
package main

import (
	"fmt"
	"log"

	"borealis"
)

const (
	sites = 8
	bound = 3 * borealis.Second
)

// sensorDiagram: temp + gas → SUnion → SJoin(site, ±500ms) →
// Filter(both high) → SOutput("alerts").
func sensorDiagram() (*borealis.Diagram, error) {
	b := borealis.NewDiagramBuilder()
	b.Add(borealis.NewSUnion("merge", borealis.SUnionConfig{
		Ports:      2,
		BucketSize: 100 * borealis.Millisecond,
		Delay:      bound,
	}))
	b.Add(borealis.NewSJoin("pair", borealis.JoinConfig{
		Window:   500 * borealis.Millisecond,
		LeftKey:  0, // site id
		RightKey: 0,
	}))
	// Joined payload: [site, temp, site, gas].
	b.Add(borealis.NewFilter("alert", func(t borealis.Tuple) bool {
		return t.Field(1) > 80 && t.Field(3) > 60
	}))
	b.Add(borealis.NewSOutput("out"))
	b.Connect("merge", "pair", 0)
	b.Connect("pair", "alert", 0)
	b.Connect("alert", "out", 0)
	b.Input("temp", "merge", 0)
	b.Input("gas", "merge", 1)
	b.Output("alerts", "out")
	return b.Build()
}

func reading(kind int64) func(uint64) []int64 {
	return func(seq uint64) []int64 {
		site := int64(seq % sites)
		// Deterministic pseudo-readings; occasionally both run hot at
		// the same site and instant, producing an alert.
		v := int64((seq*seq*31 + uint64(kind)*17) % 100) // 0..99
		return []int64{site, v}
	}
}

func main() {
	rt := borealis.NewSimRuntime() // NewRealtimeRuntime(100) runs it live
	clk := rt.Clock()
	net := borealis.NewNetOn(clk)

	temp := borealis.NewSourceOn(clk, net, borealis.SourceConfig{
		ID: "tempsrc", Stream: "temp", Rate: 400, Payload: reading(0),
	})
	gas := borealis.NewSourceOn(clk, net, borealis.SourceConfig{
		ID: "gassrc", Stream: "gas", Rate: 400, Payload: reading(1),
	})
	ups := map[string][]string{"temp": {"tempsrc"}, "gas": {"gassrc"}}

	for _, id := range []string{"nodeA", "nodeB"} {
		d, err := sensorDiagram()
		if err != nil {
			log.Fatal(err)
		}
		peer := "nodeB"
		if id == "nodeB" {
			peer = "nodeA"
		}
		n, err := borealis.NewNodeOn(clk, net, d, borealis.NodeConfig{
			ID:          id,
			Peers:       []string{peer},
			Upstreams:   ups,
			Downstreams: map[string][]string{"alerts": {"ops"}},
			// Technicians can wait a few seconds for accuracy:
			// delay as long as the bound allows (§6's Delay policy).
			FailurePolicy:       borealis.PolicyDelay,
			StabilizationPolicy: borealis.PolicyDelay,
		})
		if err != nil {
			log.Fatal(err)
		}
		n.Start()
	}

	ops, err := borealis.NewClientOn(clk, net, borealis.ClientConfig{
		ID: "ops", Stream: "alerts", Upstreams: []string{"nodeA", "nodeB"},
	})
	if err != nil {
		log.Fatal(err)
	}
	ops.Start()

	// The gas sensor uplink drops for 8 seconds.
	clk.At(10*borealis.Second, gas.Disconnect)
	clk.At(18*borealis.Second, gas.Reconnect)

	temp.Start()
	gas.Start()
	rt.RunFor(60 * borealis.Second)

	st := ops.Stats()
	fmt.Println("Sensor monitoring: 8s gas-sensor uplink failure (Delay & Delay)")
	fmt.Printf("  alerts delivered:         %d\n", st.NewTuples)
	fmt.Printf("  tentative alerts:         %d (join ran on partial data)\n", st.Tentative)
	fmt.Printf("  corrections (undo seqs):  %d\n", st.Undos)
	// A Join is a BLOCKING operator (§2.1): with its gas side missing no
	// new matches are possible at all, so the availability bound applies
	// only to paths of non-blocking operators (Property 1). The max
	// latency therefore reflects the failure duration here, not a DPC
	// violation.
	fmt.Printf("  max added latency:        %.2fs (join blocks without its gas side)\n",
		float64(st.MaxLatency)/1e6)

	// Compare the final stable alerts with an uninterrupted run: every
	// tentative alert was either confirmed or revoked.
	refRT := borealis.NewSimRuntime()
	refClk := refRT.Clock()
	refNet := borealis.NewNetOn(refClk)
	rtemp := borealis.NewSourceOn(refClk, refNet, borealis.SourceConfig{
		ID: "tempsrc", Stream: "temp", Rate: 400, Payload: reading(0)})
	rg := borealis.NewSourceOn(refClk, refNet, borealis.SourceConfig{
		ID: "gassrc", Stream: "gas", Rate: 400, Payload: reading(1)})
	d, _ := sensorDiagram()
	rn, err := borealis.NewNodeOn(refClk, refNet, d, borealis.NodeConfig{
		ID: "nodeA", Upstreams: ups,
		Downstreams: map[string][]string{"alerts": {"ops"}},
	})
	if err != nil {
		log.Fatal(err)
	}
	refOps, _ := borealis.NewClientOn(refClk, refNet, borealis.ClientConfig{
		ID: "ops", Stream: "alerts", Upstreams: []string{"nodeA"},
	})
	rn.Start()
	refOps.Start()
	rtemp.Start()
	rg.Start()
	refRT.RunFor(60 * borealis.Second)

	audit := ops.VerifyEventualConsistency(refOps.View())
	if audit.OK {
		fmt.Printf("  final diagnosis:          ok — %d stable alerts match the uninterrupted run\n", audit.Compared)
	} else {
		fmt.Printf("  final diagnosis:          MISMATCH: %s\n", audit.Reason)
	}
}
