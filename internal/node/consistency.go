package node

import (
	"math/rand"
	"sort"

	"borealis/internal/runtime"
	"borealis/internal/vtime"
)

// CMConfig parameterizes a Consistency Manager.
type CMConfig struct {
	// KeepAlive is the probe period (§5.1 uses 100 ms).
	KeepAlive int64
	// KeepAliveTimeout marks a replica unreachable after this silence.
	KeepAliveTimeout int64
	// RetryInterval paces reconciliation-authorization retries (Fig. 9).
	RetryInterval int64
	// GrantTimeout releases a reconciliation promise if the peer never
	// reports completion (crash safety). It is the backstop of last
	// resort; the progress probe below bounds the common stalls long
	// before it fires.
	GrantTimeout int64
	// GrantStallWindow bounds how long a granted peer may answer
	// keep-alives without advancing its stabilization-progress token (or
	// while reporting STABLE, i.e. done) before the grant is revoked. A
	// partitioned-but-alive peer happily answers keep-alives forever, so
	// liveness alone would hold the promise for the full GrantTimeout.
	GrantStallWindow int64
	// Stagger enables the inter-replica protocol; without it every
	// authorization is self-granted immediately (the Suspend variant of
	// §6.1, where no second version stays available).
	Stagger bool
}

func (c *CMConfig) normalize() {
	if c.KeepAlive <= 0 {
		c.KeepAlive = 100 * vtime.Millisecond
	}
	if c.KeepAliveTimeout <= 0 {
		c.KeepAliveTimeout = c.KeepAlive*2 + c.KeepAlive/2
	}
	if c.RetryInterval <= 0 {
		c.RetryInterval = 100 * vtime.Millisecond
	}
	if c.GrantTimeout <= 0 {
		c.GrantTimeout = 120 * vtime.Second
	}
	if c.GrantStallWindow <= 0 {
		c.GrantStallWindow = DefaultGrantStallWindow(c.KeepAlive, c.KeepAliveTimeout)
	}
}

// DefaultGrantStallWindow derives the grant stall window from the probe
// cadence: long enough that several keep-alive rounds (and the token
// refreshes they carry) fit inside it, short enough that a stalled grant
// never starves the granter for anything near the GrantTimeout. Exported
// so the fuzzer's starvation oracle can assert the same bound the CM
// enforces.
func DefaultGrantStallWindow(keepAlive, keepAliveTimeout int64) int64 {
	if keepAlive <= 0 {
		keepAlive = 100 * vtime.Millisecond
	}
	if keepAliveTimeout <= 0 {
		keepAliveTimeout = keepAlive*2 + keepAlive/2
	}
	w := 10 * keepAlive
	if m := 2 * keepAliveTimeout; w < m {
		w = m
	}
	return w
}

// upstreamView is what the CM knows about the replicas producing one input
// stream.
type upstreamView struct {
	stream   string
	replicas []string
	states   map[string]StreamState
	lastResp map[string]int64
	// subscribed tracks endpoints this node currently subscribes to.
	subscribed map[string]bool
	// broken marks endpoints whose connection failed while subscribed:
	// data sent in the meantime was lost, so a fresh subscription (with
	// replay from the last stable tuple, Fig. 8) is required when the
	// endpoint becomes reachable again.
	broken map[string]bool
}

// CM is the Consistency Manager (§3): it monitors the replicas of every
// upstream neighbor with keep-alives, switches connections per the
// condition-action rules of Table II (refined with the dual-connection rule
// of §4.4.3), and runs the inter-replica stagger protocol of Fig. 9 that
// keeps one replica processing new data while another reconciles.
type CM struct {
	node *Node
	cfg  CMConfig
	ups  map[string]*upstreamView
	rng  *rand.Rand

	ticker runtime.Ticker

	// confirming tracks an in-flight probe of a switch-to-STABLE
	// candidate, per stream: both replicas of an upstream typically
	// detect a failure at the same instant, so the CM's view of the
	// candidate may be one keep-alive period stale and still claim
	// STABLE. A fresh probe before switching kills that race.
	confirming map[string]string

	// Stagger protocol state.
	wantReconcile bool
	wantSince     int64  // instant the pending authorization was first wanted
	awaiting      string // peer asked, awaiting response
	grantedTo     string // peer we promised not to reconcile under
	grantResp     int64  // last keep-alive answer from grantedTo
	grantTimer    runtime.Timer
	retryTimer    runtime.Timer
	// Progress-probe state for the outstanding grant: the granted peer's
	// last stabilization-progress token and reported node state, the last
	// instant either advanced, and — when the peer reports STABLE — since
	// when. A grant whose peer is alive but frozen past GrantStallWindow
	// is revoked instead of waiting out GrantTimeout.
	grantProgress    map[string]uint64
	grantState       StreamState
	grantMovedAt     int64
	grantStableSince int64
	// suspect marks peers that never answered a reconciliation request:
	// they are skipped when choosing whom to ask, and probed with
	// keep-alives until any sign of life clears them. When every peer is
	// suspect the authorization is self-granted — Fig. 9 staggers
	// reconciliations to keep one replica available, but with no live
	// peer there is no availability left to preserve, and waiting for a
	// permanently-crashed peer would wedge the sole survivor in
	// UP_FAILURE forever (found by the scenario fuzzer: a permanent
	// crash of one replica plus a flap of the other starved the stream
	// for good).
	suspect map[string]bool

	// Switches counts upstream replica switches (reported in §5.1).
	Switches uint64

	// GrantWaits records, for each authorization this node obtained, how
	// long it waited from wanting the reconciliation to being granted —
	// the starvation the stall window bounds. Reported per replica so the
	// fuzzer's starvation oracle can assert the bound.
	GrantWaits []int64
	// Grant revocation counters, by cause: the granted peer went silent
	// (crashed — the pre-existing liveness probe), froze its progress
	// token while alive (partitioned data path or wedged replay), or kept
	// reporting STABLE (its ReconcileDone was lost in transit). GrantTimeouts
	// counts the 120s backstop firing — with progress probing it should
	// stay zero.
	GrantRevokedSilent  uint64
	GrantRevokedStalled uint64
	GrantRevokedDone    uint64
	GrantTimeouts       uint64
}

func newCM(n *Node, cfg CMConfig) *CM {
	cfg.normalize()
	seed := int64(0)
	for _, c := range n.cfg.ID {
		seed = seed*131 + int64(c)
	}
	cm := &CM{
		node:       n,
		cfg:        cfg,
		ups:        make(map[string]*upstreamView),
		confirming: make(map[string]string),
		suspect:    make(map[string]bool),
		rng:        rand.New(rand.NewSource(seed)),
	}
	for stream, replicas := range n.cfg.Upstreams {
		cm.ups[stream] = &upstreamView{
			stream:     stream,
			replicas:   append([]string(nil), replicas...),
			states:     make(map[string]StreamState),
			lastResp:   make(map[string]int64),
			subscribed: make(map[string]bool),
			broken:     make(map[string]bool),
		}
	}
	return cm
}

// start subscribes every input to its first replica and begins probing.
func (cm *CM) start() {
	for _, stream := range cm.node.inputOrder {
		up := cm.ups[stream]
		if up == nil || len(up.replicas) == 0 {
			continue
		}
		first := up.replicas[0]
		for _, r := range up.replicas {
			up.states[r] = StateStable
			up.lastResp[r] = cm.node.clk.Now()
		}
		cm.subscribe(stream, first, true, false)
		cm.node.inputs[stream].StartMonitoring()
	}
	cm.ticker = cm.node.clk.NewTicker(cm.cfg.KeepAlive, cm.tick)
}

func (cm *CM) stop() {
	if cm.ticker != nil {
		cm.ticker.Stop()
		cm.ticker = nil
	}
	if cm.retryTimer != nil {
		cm.retryTimer.Stop()
		cm.retryTimer = nil
	}
	if cm.grantTimer != nil {
		cm.grantTimer.Stop()
		cm.grantTimer = nil
	}
}

// reset clears all views and stagger state: crash recovery rebuilds the
// CM's knowledge from scratch.
func (cm *CM) reset() {
	cm.stop()
	for _, up := range cm.ups {
		up.states = make(map[string]StreamState)
		up.lastResp = make(map[string]int64)
		up.subscribed = make(map[string]bool)
		up.broken = make(map[string]bool)
	}
	cm.confirming = make(map[string]string)
	cm.suspect = make(map[string]bool)
	cm.wantReconcile = false
	cm.awaiting = ""
	cm.grantedTo = ""
	cm.grantProgress = nil
	cm.grantStableSince = 0
}

// tick sends keep-alive probes and times out silent replicas.
func (cm *CM) tick() {
	now := cm.node.clk.Now()
	cm.probeGrantedPeer(now)
	// Probe suspect peers in declaration order (map iteration order would
	// perturb the deterministic message schedule).
	for _, p := range cm.node.cfg.Peers {
		if cm.suspect[p] {
			cm.node.send(p, KeepAliveReq{})
		}
	}
	for _, stream := range cm.node.inputOrder {
		up := cm.ups[stream]
		if up == nil {
			continue
		}
		changed := false
		for _, r := range up.replicas {
			cm.node.send(r, KeepAliveReq{})
			if now-up.lastResp[r] > cm.cfg.KeepAliveTimeout && up.states[r] != StateFailure {
				cm.node.tracef("upstream-timeout", "%s: %s silent for %dµs", stream, r, now-up.lastResp[r])
				up.states[r] = StateFailure
				if up.subscribed[r] {
					up.broken[r] = true
				}
				changed = true
			}
		}
		// A confirmation probe that never answered is abandoned; the
		// next evaluation re-issues it if still warranted.
		delete(cm.confirming, stream)
		if changed {
			cm.evaluate(stream)
		}
	}
}

// probeGrantedPeer polices the peer this node promised to stay available
// for. A reconciliation grant is normally released by the peer's
// ReconcileDone; waiting out the long GrantTimeout when that message never
// comes would leave this node wedged in UP_FAILURE — unable to reconcile
// its own diverged state — for two simulated minutes. Three probes bound
// the wait:
//
//   - silence: a crashed or still-recovering peer answers no keep-alives,
//     so silence past the keep-alive timeout revokes the promise; its
//     stabilization died with it (a wedge the scenario fuzzer found: a
//     replica flap overlapping a source disconnect).
//   - stall: a partitioned-but-alive peer happily answers keep-alives
//     while making zero stabilization progress — its data path is blocked,
//     so the progress token carried by its KeepAliveResp never advances.
//     Liveness alone would hold the grant for the full GrantTimeout
//     (pinned in scenarios/corpus/crash-inside-partition.json).
//   - done: a peer that finished stabilizing but whose ReconcileDone was
//     eaten by a partition keeps reporting STABLE — and keeps making data
//     progress, so the stall probe never fires. Observing STABLE for a
//     whole stall window means no stabilization is running under the
//     promise.
//
// Revocation is safe in all three cases: the revoked peer never starts a
// reconciliation without a fresh grant — it learns the promise is gone
// from the next ReconcileResp{Granted: false} (or simply re-requests) —
// so two replicas never enter STABILIZATION concurrently.
func (cm *CM) probeGrantedPeer(now int64) {
	if cm.grantedTo == "" {
		return
	}
	switch {
	case now-cm.grantResp > cm.cfg.KeepAliveTimeout:
		cm.GrantRevokedSilent++
		cm.revokeGrant("granted peer %s silent for %dµs", cm.grantedTo, now-cm.grantResp)
	case now-cm.grantMovedAt > cm.cfg.GrantStallWindow:
		cm.GrantRevokedStalled++
		cm.revokeGrant("granted peer %s alive but made no stabilization progress for %dµs", cm.grantedTo, now-cm.grantMovedAt)
	case cm.grantStableSince != 0 && now-cm.grantStableSince > cm.cfg.GrantStallWindow:
		cm.GrantRevokedDone++
		cm.revokeGrant("granted peer %s reported STABLE for %dµs without ReconcileDone", cm.grantedTo, now-cm.grantStableSince)
	default:
		cm.node.send(cm.grantedTo, KeepAliveReq{})
	}
}

// revokeGrant withdraws the outstanding reconciliation promise and retries
// this node's own pending authorization, if any.
func (cm *CM) revokeGrant(format string, args ...any) {
	cm.node.tracef("grant-revoked", format, args...)
	cm.grantedTo = ""
	cm.grantProgress = nil
	if cm.grantTimer != nil {
		cm.grantTimer.Stop()
		cm.grantTimer = nil
	}
	cm.tryRequest()
}

// noteGrantProgress folds a keep-alive answer from the granted peer into
// the progress-probe state.
func (cm *CM) noteGrantProgress(resp KeepAliveResp, now int64) {
	moved := false
	if resp.Node != cm.grantState {
		cm.grantState = resp.Node
		moved = true
	}
	for stream, id := range resp.Progress {
		if id > cm.grantProgress[stream] {
			moved = true
		}
	}
	if resp.Progress != nil {
		cm.grantProgress = resp.Progress
	}
	if moved {
		cm.grantMovedAt = now
	}
	if resp.Node == StateStable {
		if cm.grantStableSince == 0 {
			cm.grantStableSince = now
		}
	} else {
		cm.grantStableSince = 0
	}
}

// onKeepAlive records a keep-alive response and re-evaluates switching.
func (cm *CM) onKeepAlive(from string, resp KeepAliveResp) {
	now := cm.node.clk.Now()
	if from == cm.grantedTo {
		cm.grantResp = now
		cm.noteGrantProgress(resp, now)
	}
	if cm.suspect[from] {
		cm.node.tracef("unsuspect", "%s answered a keep-alive", from)
		delete(cm.suspect, from)
		cm.tryRequest()
	}
	for _, stream := range cm.node.inputOrder {
		up := cm.ups[stream]
		if up == nil || !contains(up.replicas, from) {
			continue
		}
		up.lastResp[from] = now
		st := resp.Node
		if s, ok := resp.Streams[stream]; ok {
			st = s
		}
		changed := up.states[from] != st
		up.states[from] = st
		if cm.confirming[stream] == from {
			// The probed switch candidate answered with a fresh
			// state: act on it (evaluate consumes the entry when
			// it performs the confirmed switch).
			cm.evaluate(stream)
			continue
		}
		if changed {
			cm.evaluate(stream)
		}
	}
}

// State returns the CM's view of a replica's state for a stream.
func (cm *CM) State(stream, replica string) StreamState {
	up := cm.ups[stream]
	if up == nil {
		return StateFailure
	}
	return up.states[replica]
}

// evaluate applies the condition-action rules of Table II to one input
// stream, refined with §4.4.3's dual connection: when the current upstream
// enters STABILIZATION it is kept for corrections while a replica in
// UP_FAILURE supplies fresh tentative data.
func (cm *CM) evaluate(stream string) {
	up := cm.ups[stream]
	im := cm.node.inputs[stream]
	if up == nil || im == nil {
		return
	}
	cur := im.Live()
	curState := StateFailure
	if cur != "" {
		curState = up.states[cur]
	}
	if curState == StateStable {
		// Table II row 1: do nothing — unless the connection broke
		// while we were subscribed (network partition, crash restart):
		// everything sent in the gap was lost, so resubscribe and let
		// the upstream replay from our last stable tuple (Fig. 8).
		if up.broken[cur] {
			cm.subscribe(stream, cur, false, false)
			im.SetConnections(cur, im.Correcting(), true)
		}
		return
	}
	pick := func(want StreamState) string {
		for _, r := range up.replicas {
			if r != cur && up.states[r] == want {
				return r
			}
		}
		return ""
	}
	// Pick the Table II action: a STABLE replica is always preferred;
	// otherwise a current FAILURE/STABILIZATION falls back to a replica
	// in UP_FAILURE for fresh (tail-only) tentative data, and a FAILURE
	// falls back further to a STABILIZATION replica, which at least
	// starts correcting the stream.
	var target string
	tailOnly := false
	if r := pick(StateStable); r != "" {
		target = r
	} else if curState == StateFailure || curState == StateStabilization {
		if r := pick(StateUpFailure); r != "" {
			target, tailOnly = r, true
		} else if curState == StateFailure {
			target = pick(StateStabilization)
		}
	}
	if target == "" {
		return
	}
	// Confirm the candidate's state with a fresh probe before acting:
	// both replicas of an upstream typically see a failure at the same
	// instant, so the cached view of the candidate may be a keep-alive
	// period stale. The probe response re-runs this evaluation with
	// fresh knowledge.
	if cm.confirming[stream] != target {
		cm.confirming[stream] = target
		cm.node.send(target, KeepAliveReq{})
		return
	}
	delete(cm.confirming, stream)
	corr := ""
	if curState == StateStabilization && cur != "" {
		// Keep the stabilizing upstream for the correction stream it
		// is already sending (§4.4.3 dual connection).
		corr = cur
	} else if cur != "" {
		cm.unsubscribe(stream, cur)
	}
	cm.switchLive(stream, target, corr, tailOnly)
}

// switchLive subscribes to a new live upstream for the stream. Every fresh
// subscription is "seamless": the undo at the head of its replay (Fig. 8)
// patches the arrival log without flipping the connection into correcting
// mode, because the new upstream continues with live data right after.
func (cm *CM) switchLive(stream, live, corr string, tailOnly bool) {
	im := cm.node.inputs[stream]
	if im.Live() == live && im.Correcting() == corr {
		return
	}
	cm.node.tracef("switch", "%s: live %s -> %s (corr %q, tail-only %v)", stream, im.Live(), live, corr, tailOnly)
	cm.Switches++
	im.SetConnections(live, corr, true)
	cm.subscribe(stream, live, false, tailOnly)
}

func (cm *CM) subscribe(stream, to string, initial, tailOnly bool) {
	up := cm.ups[stream]
	im := cm.node.inputs[stream]
	up.subscribed[to] = true
	delete(up.broken, to)
	// The previous connection's batches may still be in flight with stale
	// sequence numbers; only the fresh subscription's seq-1 replay counts
	// from here (a stale batch treated as a gap would trigger a second
	// resubscription and a duplicated replay).
	im.ExpectFresh(to)
	if initial {
		im.SetConnections(to, "", true)
	}
	cm.node.tracef("subscribe", "%s to %s (from-id %d, seen-tentative %v, tail-only %v)",
		stream, to, im.LastStableID(), im.SeenTentative(), tailOnly)
	cm.node.send(to, SubscribeMsg{
		Stream:        stream,
		FromID:        im.LastStableID(),
		SeenTentative: im.SeenTentative(),
		TailOnly:      tailOnly,
	})
}

func (cm *CM) unsubscribe(stream, from string) {
	up := cm.ups[stream]
	if up == nil || !up.subscribed[from] {
		return
	}
	delete(up.subscribed, from)
	cm.node.tracef("unsubscribe", "%s from %s", stream, from)
	cm.node.send(from, UnsubscribeMsg{Stream: stream})
}

// onInputStalled handles a stall declared while this CM still believes
// the live upstream is healthy AND the live connection has never
// delivered a single batch: the subscription itself must be broken — the
// SubscribeMsg reached a crashed or still-recovering endpoint and was
// silently dropped (the fuzzer found a replica whose restart raced its
// upstream's restart this way: both came back healthy, but the
// subscription between them was gone and the downstream waited forever).
// Mark the connection broken and re-evaluate: a STABLE upstream is
// resubscribed with replay from the last stable tuple; anything else
// switches per Table II. A stall on a connection that was delivering
// (boundary stall, source disconnect) is a real upstream condition and is
// left to the normal failure machinery — resubscribing there would
// re-replay content mid-stream.
func (cm *CM) onInputStalled(stream string) {
	up := cm.ups[stream]
	im := cm.node.inputs[stream]
	if up == nil || im == nil || im.Live() == "" {
		return
	}
	if up.states[im.Live()] == StateStable && !im.Delivering(im.Live()) {
		up.broken[im.Live()] = true
		cm.evaluate(stream)
	}
}

// onConnBroken handles a sequence gap detected by an Input Manager: the
// connection lost messages (partition, upstream restart); resubscribe so
// the upstream replays everything after our last stable tuple (Fig. 8).
func (cm *CM) onConnBroken(stream, from string) {
	up := cm.ups[stream]
	im := cm.node.inputs[stream]
	if up == nil || im == nil {
		return
	}
	if from != im.live && from != im.corr {
		return
	}
	cm.subscribe(stream, from, false, false)
	if from == im.live {
		im.SetConnections(from, im.corr, true)
	}
}

// consolidate drops subscriptions a healed input no longer needs (the old
// tentative feed after a REC_DONE promoted the corrected stream to live).
func (cm *CM) consolidate(stream string) {
	up := cm.ups[stream]
	im := cm.node.inputs[stream]
	if up == nil || im == nil {
		return
	}
	keep := map[string]bool{im.Live(): true}
	if c := im.Correcting(); c != "" {
		keep[c] = true
	}
	var drop []string
	for ep := range up.subscribed {
		if !keep[ep] {
			drop = append(drop, ep)
		}
	}
	sort.Strings(drop)
	for _, ep := range drop {
		cm.unsubscribe(stream, ep)
	}
}

// ---- Inter-replica stagger protocol (Fig. 9) ----

// requestReconcileAuth asks a randomly chosen replica of this node for
// permission to enter STABILIZATION. Without staggering (or peers) the
// request is self-granted.
func (cm *CM) requestReconcileAuth() {
	if !cm.wantReconcile {
		cm.wantSince = cm.node.clk.Now()
	}
	cm.wantReconcile = true
	cm.tryRequest()
}

// recordGrantWait closes the want→grant interval of the authorization that
// was just obtained.
func (cm *CM) recordGrantWait() {
	cm.GrantWaits = append(cm.GrantWaits, cm.node.clk.Now()-cm.wantSince)
}

// GrantWaitsAt returns every completed want→grant wait plus, when an
// authorization is still wanted at now, the in-flight wait — so a replica
// starving for a grant at the end of a run reports the starvation instead
// of hiding it.
func (cm *CM) GrantWaitsAt(now int64) []int64 {
	waits := cm.GrantWaits
	if cm.wantReconcile {
		waits = append(append([]int64(nil), waits...), now-cm.wantSince)
	}
	return waits
}

func (cm *CM) tryRequest() {
	if !cm.wantReconcile || cm.awaiting != "" {
		return
	}
	if !cm.cfg.Stagger || len(cm.node.cfg.Peers) == 0 {
		cm.node.tracef("reconcile-self-grant", "no stagger or no peers")
		cm.wantReconcile = false
		cm.recordGrantWait()
		cm.node.onReconcileGranted()
		return
	}
	if cm.grantedTo != "" {
		// We promised a peer we would stay available; retry later.
		cm.scheduleRetry()
		return
	}
	live := make([]string, 0, len(cm.node.cfg.Peers))
	for _, p := range cm.node.cfg.Peers {
		if !cm.suspect[p] {
			live = append(live, p)
		}
	}
	if len(live) == 0 {
		// Every peer is unreachable: nobody is available for the
		// stagger to protect, so reconcile now (suspects keep being
		// probed; a returning peer is simply staggered against next
		// time).
		cm.node.tracef("reconcile-self-grant", "all %d peers suspect", len(cm.node.cfg.Peers))
		cm.wantReconcile = false
		cm.recordGrantWait()
		cm.node.onReconcileGranted()
		return
	}
	peer := live[cm.rng.Intn(len(live))]
	cm.awaiting = peer
	cm.node.tracef("reconcile-ask", "%s", peer)
	cm.node.send(peer, ReconcileReq{})
	// A silent peer (crashed, partitioned) must not wedge us: mark it
	// suspect and move on; keep-alive probes clear it when it answers.
	cm.node.clk.After(cm.cfg.RetryInterval*2, func() {
		if cm.awaiting == peer {
			cm.node.tracef("suspect", "%s never answered the reconcile request", peer)
			cm.awaiting = ""
			cm.suspect[peer] = true
			cm.scheduleRetry()
		}
	})
}

func (cm *CM) scheduleRetry() {
	if cm.retryTimer != nil {
		return
	}
	cm.retryTimer = cm.node.clk.After(cm.cfg.RetryInterval, func() {
		cm.retryTimer = nil
		cm.tryRequest()
	})
}

// cancelWant abandons a pending reconciliation request (a new failure
// arrived before the grant).
func (cm *CM) cancelWant() {
	cm.wantReconcile = false
}

// onReconcileReq applies the Fig. 9 acceptance rule: grant unless already
// in STABILIZATION, already promised to another peer, or this node needs to
// reconcile too and has the lower identifier (tie-break).
func (cm *CM) onReconcileReq(from string) {
	delete(cm.suspect, from)
	reject := cm.node.state == StateStabilization ||
		(cm.grantedTo != "" && cm.grantedTo != from) ||
		(cm.wantReconcile && cm.node.cfg.ID < from)
	if reject {
		cm.node.tracef("reconcile-reject", "%s", from)
		cm.node.send(from, ReconcileResp{Granted: false})
		return
	}
	cm.node.tracef("reconcile-grant", "%s", from)
	now := cm.node.clk.Now()
	cm.grantedTo = from
	cm.grantResp = now
	// Progress-probe baseline: the asker is in UP_FAILURE by definition;
	// any state change or token advance from here counts as progress.
	cm.grantProgress = nil
	cm.grantState = StateUpFailure
	cm.grantMovedAt = now
	cm.grantStableSince = 0
	if cm.grantTimer != nil {
		cm.grantTimer.Stop()
	}
	// The callback compares timer identity, not just grantedTo: a stale
	// GrantTimeout callback racing a re-grant to the same peer (possible
	// on the WallClock, where a stopped timer's callback may already be
	// in flight) must not clobber the fresh timer handle or tear down the
	// fresh grant.
	var timer runtime.Timer
	timer = cm.node.clk.After(cm.cfg.GrantTimeout, func() {
		if cm.grantTimer != timer {
			return
		}
		cm.grantTimer = nil
		if cm.grantedTo == from {
			cm.GrantTimeouts++
			cm.node.tracef("grant-timeout", "%s never sent ReconcileDone", from)
			cm.grantedTo = ""
			cm.grantProgress = nil
			cm.tryRequest()
		}
	})
	cm.grantTimer = timer
	cm.node.send(from, ReconcileResp{Granted: true})
}

func (cm *CM) onReconcileResp(from string, resp ReconcileResp) {
	delete(cm.suspect, from)
	if cm.awaiting != from {
		return
	}
	cm.awaiting = ""
	if !cm.wantReconcile {
		// Conditions changed while the request was in flight; release
		// the peer's promise immediately.
		if resp.Granted {
			cm.node.send(from, ReconcileDone{})
		}
		return
	}
	if resp.Granted {
		cm.node.tracef("reconcile-granted", "by %s", from)
		cm.wantReconcile = false
		cm.recordGrantWait()
		cm.node.onReconcileGranted()
	} else {
		cm.node.tracef("reconcile-rejected", "by %s", from)
		cm.node.onReconcileRejected()
		cm.scheduleRetry()
	}
}

func (cm *CM) onReconcileDone(from string) {
	if cm.grantedTo == from {
		cm.node.tracef("reconcile-released", "by %s", from)
		cm.grantedTo = ""
		cm.grantProgress = nil
		if cm.grantTimer != nil {
			cm.grantTimer.Stop()
			cm.grantTimer = nil
		}
		cm.tryRequest()
	}
}

// finishReconcile releases the granter after this node's stabilization
// completes (or is abandoned).
func (cm *CM) finishReconcile() {
	for _, p := range cm.node.cfg.Peers {
		cm.node.send(p, ReconcileDone{})
	}
}

func contains(ss []string, s string) bool {
	for _, x := range ss {
		if x == s {
			return true
		}
	}
	return false
}
