package node

import (
	"sort"

	"borealis/internal/fabric"
	"borealis/internal/runtime"
	"borealis/internal/tuple"
)

// BufferMode selects what an output buffer does when it reaches capacity
// (§8.1).
type BufferMode uint8

const (
	// BufferUnbounded never truncates except on acknowledgments.
	BufferUnbounded BufferMode = iota
	// BufferBlock stops the node from producing once full: back-pressure
	// propagates to the sources, preserving eventual consistency for
	// arbitrary deterministic operators at the cost of availability.
	BufferBlock
	// BufferSlide drops the oldest tuples once full: safe for
	// convergent-capable diagrams, where any input affects state for a
	// bounded time and only a recent window of output needs correcting.
	BufferSlide
)

// OutputBuffer is the Data Path's per-output-stream buffer. It retains, in
// emission order, every data tuple (stable and tentative) and interleaved
// boundary, so that any replica of any downstream neighbor can subscribe at
// any moment and be caught up from its last stable tuple (§4.3, Fig. 8).
// When the local diagram emits an UNDO, the buffer compacts: the revoked
// tentative suffix is deleted, so replays always reflect the corrected
// stream.
type OutputBuffer struct {
	net    fabric.Fabric
	self   string
	stream string
	mode   BufferMode
	cap    int

	// buf[head:] is the live buffer contents. Truncation (acks, slide
	// mode) advances head in O(1); dead prefix space is reclaimed in
	// place the next time the buffer needs room, so a full slide buffer
	// never recopies itself per published tuple.
	buf  []tuple.Tuple
	head int
	subs map[string]*obSub

	// acks maps downstream endpoints to the highest stable tuple id they
	// acknowledged; truncation keeps everything after the minimum over
	// the expected set.
	acks     map[string]uint64
	expected []string

	// pending batches emissions of the same instant into one DataMsg.
	// flush hands the filled slice to the network layer, where it is
	// shared by every subscriber's in-flight message, so each flush needs
	// a fresh array; pendHint remembers the high-water flush size so that
	// array is allocated once at full size instead of grown per append.
	pending    []tuple.Tuple
	pendHint   int
	flushTimer runtime.Timer
	flushFn    func() // bound once; scheduling a flush allocates no closure
	clk        runtime.Clock
	// subsSorted caches Subscribers() for the flush hot path; it is
	// rebuilt whenever the subscription set changes.
	subsSorted []string

	// Truncated counts tuples dropped from the head; Blocked reports
	// whether a full BufferBlock buffer is exerting back-pressure.
	Truncated uint64
	Blocked   bool
}

// obSub is one subscription's send state.
type obSub struct {
	seq uint64
}

// NewOutputBuffer builds a buffer for one output stream of endpoint self.
func NewOutputBuffer(clk runtime.Clock, net fabric.Fabric, self, stream string, mode BufferMode, capTuples int, expected []string) *OutputBuffer {
	ob := &OutputBuffer{
		net:      net,
		self:     self,
		stream:   stream,
		mode:     mode,
		cap:      capTuples,
		clk:      clk,
		subs:     make(map[string]*obSub),
		acks:     make(map[string]uint64),
		expected: append([]string(nil), expected...),
	}
	ob.flushFn = ob.flush
	return ob
}

// Len returns the number of buffered tuples.
func (ob *OutputBuffer) Len() int { return len(ob.buf) - ob.head }

// live returns the current buffer contents.
func (ob *OutputBuffer) live() []tuple.Tuple { return ob.buf[ob.head:] }

// drop discards the n oldest live tuples, clearing their slots so the
// buffer does not pin emitted payloads.
func (ob *OutputBuffer) drop(n int) {
	clear(ob.buf[ob.head : ob.head+n])
	ob.head += n
	ob.Truncated += uint64(n)
}

// appendBuf adds one tuple, reclaiming dead head space in place when the
// backing array fills, and doubling it only when more than half is live.
func (ob *OutputBuffer) appendBuf(t tuple.Tuple) {
	if len(ob.buf) == cap(ob.buf) {
		live := len(ob.buf) - ob.head
		if ob.head > 0 && live <= cap(ob.buf)/2 {
			copy(ob.buf, ob.buf[ob.head:])
			clear(ob.buf[live:])
			ob.buf = ob.buf[:live]
		} else {
			nc := 2 * live
			if nc < 64 {
				nc = 64
			}
			nb := make([]tuple.Tuple, live, nc)
			copy(nb, ob.buf[ob.head:])
			ob.buf = nb
		}
		ob.head = 0
	}
	ob.buf = append(ob.buf, t)
}

// reserve makes room for n more tuples with appendBuf's policy applied
// once for the whole batch: dead head space is reclaimed in place when no
// more than half the array stays live, otherwise the array grows to twice
// the post-append live size.
func (ob *OutputBuffer) reserve(n int) {
	if len(ob.buf)+n <= cap(ob.buf) {
		return
	}
	live := len(ob.buf) - ob.head
	if ob.head > 0 && live <= cap(ob.buf)/2 && live+n <= cap(ob.buf) {
		copy(ob.buf, ob.buf[ob.head:])
		clear(ob.buf[live:])
		ob.buf = ob.buf[:live]
		ob.head = 0
		return
	}
	nc := 2 * (live + n)
	if nc < 64 {
		nc = 64
	}
	nb := make([]tuple.Tuple, live, nc)
	copy(nb, ob.buf[ob.head:])
	ob.buf = nb
	ob.head = 0
}

// Reset clears the buffer, subscriptions, and acknowledgments: crash
// recovery (§4.5) starts the stream over — buffers are volatile (§2.2) and
// pre-crash subscribers must re-subscribe (their sequence tracking detects
// the reset).
func (ob *OutputBuffer) Reset() {
	ob.buf = nil
	ob.head = 0
	ob.subs = make(map[string]*obSub)
	ob.subsSorted = nil
	ob.acks = make(map[string]uint64)
	ob.pending = nil
	if ob.flushTimer != nil {
		ob.flushTimer.Stop()
		ob.flushTimer = nil
	}
	ob.Blocked = false
}

// Subscribers returns the active subscriber endpoints, sorted. The result
// is cached; callers must not modify it.
func (ob *OutputBuffer) Subscribers() []string {
	if ob.subsSorted == nil && len(ob.subs) > 0 {
		out := make([]string, 0, len(ob.subs))
		for s := range ob.subs {
			out = append(out, s)
		}
		sort.Strings(out)
		ob.subsSorted = out
	}
	return ob.subsSorted
}

// Publish handles one tuple emitted by the local diagram on this stream:
// it is buffered (data and boundaries), compacts on undo, and is forwarded
// to every subscriber. Publish reports false when a BufferBlock buffer is
// full — the caller must stop producing (back-pressure).
func (ob *OutputBuffer) Publish(t tuple.Tuple) bool {
	switch {
	case t.IsData(), t.Type == tuple.Boundary:
		if ob.cap > 0 && ob.Len() >= ob.cap {
			switch ob.mode {
			case BufferBlock:
				ob.Blocked = true
				return false
			case BufferSlide:
				ob.drop(ob.Len() - ob.cap + 1)
			}
		}
		ob.appendBuf(t)
	case t.Type == tuple.Undo:
		// Compact: delete the revoked tentative suffix. Replays from
		// now on reflect the corrected stream; live subscribers get
		// the undo itself.
		live := ob.live()
		kept := tuple.ApplyUndo(live, t.ID)
		clear(live[len(kept):])
		ob.buf = ob.buf[:ob.head+len(kept)]
	case t.Type == tuple.RecDone:
		// Not buffered: a late subscriber sees only corrected data.
	}
	ob.send(t)
	return true
}

// PublishBatch handles a whole batch emitted by the staged data plane in
// one call, reporting false when any tuple hit BufferBlock back-pressure.
// When the batch is pure data/boundary traffic and fits without touching
// the capacity limit, the buffer append and the subscriber send are done
// in bulk — one pending-append and at most one flush-timer arm for the
// whole batch, which per-tuple Publish calls would also have produced
// (the timer only ever arms once per instant), so the paths are exactly
// equivalent. Anything else — undo compaction, capacity pressure —
// takes the per-tuple loop.
func (ob *OutputBuffer) PublishBatch(ts []tuple.Tuple) bool {
	bulk := ob.cap <= 0 || ob.Len()+len(ts) <= ob.cap
	if bulk {
		for i := range ts {
			if !ts[i].IsData() && ts[i].Type != tuple.Boundary {
				bulk = false
				break
			}
		}
	}
	if !bulk {
		ok := true
		for i := range ts {
			if !ob.Publish(ts[i]) {
				ok = false
			}
		}
		return ok
	}
	ob.reserve(len(ts))
	ob.buf = append(ob.buf, ts...)
	if len(ob.subs) > 0 {
		if ob.pending == nil {
			// One bulk publish usually carries the instant's whole
			// flush, so size the message array exactly: a boundary-only
			// instant then allocates a couple of slots, not the
			// high-water mark a bucket flush once reached (pendHint
			// stays in use on the per-tuple send path, where growing
			// one append at a time would thrash).
			ob.pending = make([]tuple.Tuple, 0, len(ts))
		}
		ob.pending = append(ob.pending, ts...)
		if ob.flushTimer == nil {
			ob.flushTimer = ob.clk.After(0, ob.flushFn)
		}
	}
	return true
}

// send queues the tuple for delivery to all subscribers, coalescing
// same-instant emissions into one network message per subscriber.
func (ob *OutputBuffer) send(t tuple.Tuple) {
	if len(ob.subs) == 0 {
		return
	}
	if ob.pending == nil && ob.pendHint > 0 {
		ob.pending = make([]tuple.Tuple, 0, ob.pendHint)
	}
	ob.pending = append(ob.pending, t)
	if ob.flushTimer == nil {
		ob.flushTimer = ob.clk.After(0, ob.flushFn)
	}
}

func (ob *OutputBuffer) flush() {
	ob.flushTimer = nil
	if len(ob.pending) == 0 {
		return
	}
	batch := ob.pending
	ob.pending = nil
	if len(batch) > ob.pendHint {
		ob.pendHint = len(batch)
	}
	for _, ep := range ob.Subscribers() {
		sub := ob.subs[ep]
		sub.seq++
		ob.net.Send(ob.self, ep, DataMsg{Stream: ob.stream, Seq: sub.seq, Tuples: batch})
	}
}

// Subscribe registers a downstream endpoint and replays the buffer from
// its last stable tuple (§4.3, Fig. 8): if the subscriber saw tentative
// tuples after FromID, an UNDO precedes the replay. Each subscription
// restarts the batch sequence at 1.
func (ob *OutputBuffer) Subscribe(from string, msg SubscribeMsg) {
	sub := &obSub{}
	ob.subs[from] = sub
	ob.subsSorted = nil
	if msg.TailOnly {
		return
	}
	var replay []tuple.Tuple
	if msg.SeenTentative {
		replay = append(replay, tuple.NewUndo(msg.FromID))
	}
	replay = append(replay, ob.after(msg.FromID)...)
	if len(replay) > 0 {
		sub.seq++
		ob.net.Send(ob.self, from, DataMsg{Stream: ob.stream, Seq: sub.seq, Tuples: replay})
	}
}

// after returns the buffered suffix following the data tuple with the given
// id (everything, if id is 0 or unknown because it was truncated).
func (ob *OutputBuffer) after(id uint64) []tuple.Tuple {
	live := ob.live()
	start := 0
	if id > 0 {
		for i := len(live) - 1; i >= 0; i-- {
			if live[i].IsData() && live[i].ID == id {
				start = i + 1
				break
			}
		}
	}
	out := make([]tuple.Tuple, len(live)-start)
	copy(out, live[start:])
	return out
}

// Unsubscribe removes a subscriber.
func (ob *OutputBuffer) Unsubscribe(from string) {
	delete(ob.subs, from)
	ob.subsSorted = nil
}

// Ack records a downstream acknowledgment and truncates the buffer to the
// suffix someone might still need: everything after the minimum
// acknowledged stable tuple across all *expected* downstream endpoints
// (§8.1: a node buffers its output until all replicas of all downstream
// neighbors received it). Without an expected set, acks are recorded but
// nothing is truncated.
func (ob *OutputBuffer) Ack(from string, upTo uint64) {
	if upTo > ob.acks[from] {
		ob.acks[from] = upTo
	}
	if len(ob.expected) == 0 {
		return
	}
	min := uint64(0)
	for i, ep := range ob.expected {
		a := ob.acks[ep]
		if i == 0 || a < min {
			min = a
		}
	}
	if min == 0 {
		return
	}
	live := ob.live()
	cut := 0
	for i := range live {
		t := &live[i]
		if t.IsData() && t.ID <= min && t.Type == tuple.Insertion {
			cut = i + 1
		}
		if t.IsData() && t.ID > min {
			break
		}
	}
	if cut > 0 {
		ob.drop(cut)
		if ob.Blocked && (ob.cap <= 0 || ob.Len() < ob.cap) {
			ob.Blocked = false
		}
	}
}
