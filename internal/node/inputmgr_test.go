package node

import (
	"testing"

	"borealis/internal/runtime"
	"borealis/internal/tuple"
	"borealis/internal/vtime"
)

const (
	ms  = vtime.Millisecond
	sec = vtime.Second
)

type imHarness struct {
	sim       *runtime.VirtualClock
	seqs      map[string]uint64
	im        *InputManager
	failures  []FailKind
	heals     int
	forwarded []tuple.Tuple
}

func newIMHarness(stallTimeout int64) *imHarness {
	h := &imHarness{sim: runtime.NewVirtual()}
	h.im = newInputManager(h.sim, "s", stallTimeout, inputHooks{
		onFailed: func(_ string, k FailKind) { h.failures = append(h.failures, k) },
		onHealed: func(string) { h.heals++ },
		forward:  func(_ string, ts []tuple.Tuple) { h.forwarded = append(h.forwarded, ts...) },
	})
	h.im.SetConnections("up", "", true)
	return h
}

// handle delivers a batch with the next sequence number per connection,
// mimicking an unbroken subscription.
func (h *imHarness) handle(from string, ts []tuple.Tuple) {
	if h.seqs == nil {
		h.seqs = map[string]uint64{}
	}
	h.seqs[from]++
	h.im.Handle(from, h.seqs[from], ts)
}

func TestIMForwardsLiveData(t *testing.T) {
	h := newIMHarness(0)
	h.handle("up", []tuple.Tuple{ins(1, 10), tuple.NewBoundary(100)})
	if len(h.forwarded) != 2 {
		t.Fatalf("forwarded %v", h.forwarded)
	}
	if h.im.LastStableID() != 1 {
		t.Fatalf("LastStableID = %d", h.im.LastStableID())
	}
}

func TestIMIgnoresStaleConnections(t *testing.T) {
	h := newIMHarness(0)
	h.handle("ghost", []tuple.Tuple{ins(1, 10)})
	if len(h.forwarded) != 0 {
		t.Fatal("stale connection data must be dropped")
	}
}

func TestIMTentativeDeclaresFailureBeforeForwarding(t *testing.T) {
	h := newIMHarness(0)
	failedAtForward := -1
	h.im.hooks.forward = func(_ string, ts []tuple.Tuple) {
		if h.im.Failed() && failedAtForward == -1 {
			failedAtForward = len(ts)
		}
		h.forwarded = append(h.forwarded, ts...)
	}
	h.handle("up", []tuple.Tuple{ins(1, 10), tent(2, 20)})
	if len(h.failures) != 1 || h.failures[0] != FailTentative {
		t.Fatalf("failures = %v", h.failures)
	}
	if failedAtForward == -1 {
		t.Fatal("failure must be declared before the batch is forwarded")
	}
	if !h.im.SeenTentative() {
		t.Fatal("SeenTentative must be set")
	}
}

func TestIMStallDetection(t *testing.T) {
	h := newIMHarness(200 * ms)
	h.im.StartMonitoring()
	h.handle("up", []tuple.Tuple{tuple.NewBoundary(10)})
	h.sim.RunUntil(150 * ms)
	if len(h.failures) != 0 {
		t.Fatal("stall declared too early")
	}
	h.sim.RunUntil(400 * ms)
	if len(h.failures) != 1 || h.failures[0] != FailStall {
		t.Fatalf("stall not detected: %v", h.failures)
	}
}

func TestIMBoundaryProgressPreventsStall(t *testing.T) {
	h := newIMHarness(200 * ms)
	h.im.StartMonitoring()
	for at := int64(100 * ms); at <= 1*sec; at += 100 * ms {
		at := at
		h.sim.At(at, func() {
			h.handle("up", []tuple.Tuple{tuple.NewBoundary(at)})
		})
	}
	h.sim.RunUntil(1 * sec)
	if len(h.failures) != 0 {
		t.Fatalf("healthy stream declared failed: %v", h.failures)
	}
}

func TestIMStallHealsOnBoundaryResume(t *testing.T) {
	h := newIMHarness(200 * ms)
	h.im.StartMonitoring()
	h.sim.RunUntil(500 * ms) // stall fires
	if !h.im.Failed() {
		t.Fatal("expected stall")
	}
	h.handle("up", []tuple.Tuple{ins(1, 10), tuple.NewBoundary(600 * ms)})
	if h.heals != 1 || h.im.Failed() {
		t.Fatalf("boundary resume must heal: heals=%d failed=%v", h.heals, h.im.Failed())
	}
}

func TestIMLoggingAndUndoPatching(t *testing.T) {
	h := newIMHarness(0)
	h.im.StartLog()
	h.handle("up", []tuple.Tuple{ins(1, 10), ins(2, 20)})
	h.handle("up", []tuple.Tuple{tent(3, 30), tent(4, 40)})
	if h.im.LogLen() != 4 {
		t.Fatalf("LogLen = %d, want 4", h.im.LogLen())
	}
	// Upstream reconciles in place: undo to stable id 2, corrections,
	// rec_done.
	h.handle("up", []tuple.Tuple{tuple.NewUndo(2)})
	if h.im.LogLen() != 2 {
		t.Fatalf("undo must patch the log: LogLen = %d", h.im.LogLen())
	}
	if h.im.Correcting() == "" {
		t.Fatal("undo on an established tentative connection starts correcting mode")
	}
	h.handle("up", []tuple.Tuple{ins(3, 30), ins(4, 40), tuple.NewRecDone(0)})
	log := h.im.TakeLog()
	if len(log) != 4 {
		t.Fatalf("patched log = %v", log)
	}
	for _, tp := range log {
		if tp.Type != tuple.Insertion {
			t.Fatalf("patched log must be stable: %v", log)
		}
	}
	if h.heals != 1 {
		t.Fatalf("rec_done must heal, heals=%d", h.heals)
	}
}

func TestIMCorrectingModeStopsLiveForwarding(t *testing.T) {
	h := newIMHarness(0)
	h.im.StartLog()
	h.handle("up", []tuple.Tuple{tent(1, 10)})
	n := len(h.forwarded)
	h.handle("up", []tuple.Tuple{tuple.NewUndo(0)})
	h.handle("up", []tuple.Tuple{ins(1, 10)})
	if len(h.forwarded) != n {
		t.Fatal("corrections must not be forwarded live")
	}
	h.handle("up", []tuple.Tuple{tuple.NewRecDone(0)})
	h.handle("up", []tuple.Tuple{ins(2, 20)})
	if len(h.forwarded) != n+1 {
		t.Fatal("post-rec_done data must flow live again")
	}
}

func TestIMSeamlessSubscribeReplayDoesNotEnterCorrecting(t *testing.T) {
	h := newIMHarness(0)
	h.im.StartLog()
	h.handle("up", []tuple.Tuple{tent(1, 10)})
	// Switch to a STABLE replica: its replay starts with an undo.
	h.im.SetConnections("up2", "", true)
	h.handle("up2", []tuple.Tuple{tuple.NewUndo(0), ins(1, 10), ins(2, 20)})
	if h.im.Correcting() != "" {
		t.Fatal("seamless replay must not enter correcting mode")
	}
	// The log was patched: tentative gone, stable corrections in.
	log := h.im.TakeLog()
	if len(log) != 2 || log[0].Type != tuple.Insertion {
		t.Fatalf("log = %v", log)
	}
}

func TestIMDualConnectionRouting(t *testing.T) {
	h := newIMHarness(0)
	h.im.StartLog()
	h.handle("up", []tuple.Tuple{tent(1, 10)}) // failure
	// Upstream "up" enters STABILIZATION; CM attaches "fresh" (a replica
	// in UP_FAILURE) as live and keeps "up" for corrections.
	h.im.SetConnections("fresh", "up", false)
	h.handle("fresh", []tuple.Tuple{tent(5, 50)}) // fresh tentative flows live
	if len(h.forwarded) != 2 {
		t.Fatalf("fresh data must flow live: %v", h.forwarded)
	}
	h.handle("up", []tuple.Tuple{tuple.NewUndo(0), ins(1, 10)}) // corrections patch log only
	if len(h.forwarded) != 2 {
		t.Fatal("corrections must not flow live")
	}
	// REC_DONE promotes the corrected stream to live.
	h.handle("up", []tuple.Tuple{tuple.NewRecDone(0)})
	if h.im.Live() != "up" || h.im.Correcting() != "" {
		t.Fatalf("rec_done must promote corr to live: live=%q corr=%q", h.im.Live(), h.im.Correcting())
	}
	if h.heals != 1 {
		t.Fatalf("heals = %d", h.heals)
	}
	// The old fresh feed is now stale.
	h.handle("fresh", []tuple.Tuple{tent(6, 60)})
	if len(h.forwarded) != 2 {
		t.Fatal("stale fresh feed must be dropped")
	}
	// Tentative entries were stripped from the log (the stable stream
	// covers them via the ongoing subscription).
	for _, tp := range h.im.TakeLog() {
		if tp.Type == tuple.Tentative {
			t.Fatalf("tentative left in log: %v", tp)
		}
	}
}

func TestIMStartLogResets(t *testing.T) {
	h := newIMHarness(0)
	h.im.StartLog()
	h.handle("up", []tuple.Tuple{ins(1, 10)})
	h.im.StartLog()
	if h.im.LogLen() != 0 {
		t.Fatal("StartLog must reset the log")
	}
	h.im.StopLog()
	h.handle("up", []tuple.Tuple{ins(2, 20)})
	if h.im.LogLen() != 0 {
		t.Fatal("StopLog must stop logging")
	}
}

func TestIMScanStopsAtFirstUndo(t *testing.T) {
	// Tuples after the first undo do not affect the batch classification:
	// a tentative tuple that only appears after the undo must not declare
	// a fresh FailTentative (the undo starts a correction sequence, which
	// is a recovery in progress, not a new failure).
	h := newIMHarness(0)
	h.handle("up", []tuple.Tuple{ins(1, 10)})
	// First undo on a fresh subscription is the seamless replay patch.
	h.handle("up", []tuple.Tuple{tuple.NewUndo(1), tent(2, 20)})
	if len(h.failures) != 0 {
		t.Fatalf("tentative after an undo must not declare failure: %v", h.failures)
	}
	// Out of the seamless grace, a second undo starts a real correction
	// sequence — and the tentative behind it still declares nothing.
	h.handle("up", []tuple.Tuple{tuple.NewUndo(1), tent(3, 30)})
	if len(h.failures) != 0 {
		t.Fatalf("tentative after an undo must not declare failure: %v", h.failures)
	}
	if !h.im.correcting {
		t.Fatal("undo must flip the connection into correcting mode")
	}
}

func TestIMDedupOnlyAppliesToReplayPrefix(t *testing.T) {
	// A seq-1 replay drops stable ids at or below the watermark — but only
	// before the first correction tuple. A replayed correction sequence
	// re-sends stable tuples with recycled ids that are NOT duplicates.
	h := newIMHarness(0)
	h.handle("up", []tuple.Tuple{ins(1, 10), ins(2, 20)})

	// Fresh subscription (seq 1 on a new endpoint) replaying an overlap.
	h.im.SetConnections("up2", "", true)
	h.handle("up2", []tuple.Tuple{ins(2, 20), ins(3, 30)})
	if h.im.DroppedDup != 1 {
		t.Fatalf("overlapping replay tuple not deduped: %d", h.im.DroppedDup)
	}
	if h.im.LastStableID() != 3 {
		t.Fatalf("LastStableID = %d", h.im.LastStableID())
	}

	// Same watermark, but the batch opens with an undo: ids at or below
	// the watermark after it are corrections, not duplicates.
	h.handle("up2", []tuple.Tuple{tuple.NewUndo(1), ins(2, 21), ins(3, 31), tuple.NewRecDone(40)})
	if h.im.DroppedDup != 1 {
		t.Fatalf("correction tuples wrongly deduped: %d", h.im.DroppedDup)
	}
	if h.im.LastStableID() != 3 {
		t.Fatalf("LastStableID after correction = %d", h.im.LastStableID())
	}
}
