package node

import (
	"fmt"
	"sort"

	"borealis/internal/diagram"
	"borealis/internal/engine"
	"borealis/internal/fabric"
	"borealis/internal/operator"
	"borealis/internal/runtime"
	"borealis/internal/tuple"
	"borealis/internal/vtime"
)

// Config parameterizes a processing node.
type Config struct {
	// ID is the node's network endpoint identifier; the Fig. 9 tie-break
	// compares IDs lexicographically.
	ID string
	// Capacity is the engine's processing rate in tuples/second (0 =
	// infinite); it determines how long reconciliation takes.
	Capacity float64
	// FailurePolicy governs SUnions while a failure is in progress;
	// StabilizationPolicy governs them after the failure heals while the
	// node waits for its turn to reconcile. PolicySuspend as the
	// StabilizationPolicy disables the stagger protocol entirely — the
	// §6.1 "Suspend" variants, where no second version stays available.
	FailurePolicy       operator.DelayPolicy
	StabilizationPolicy operator.DelayPolicy
	// StallTimeout declares an input failed after this much boundary
	// silence (default 200 ms ≈ two boundary intervals).
	StallTimeout int64
	// Peers are the other replicas of this node.
	Peers []string
	// Upstreams maps each input stream to the replica endpoints able to
	// produce it (data sources included), in preference order.
	Upstreams map[string][]string
	// Downstreams maps each output stream to the endpoints expected to
	// consume it; acknowledgments from all of them allow output-buffer
	// truncation (§8.1).
	Downstreams map[string][]string
	// BufferMode / BufferCap bound the output buffers (§8.1).
	BufferMode BufferMode
	BufferCap  int
	// FineGrained enables §8.2: per-output-stream state advertisement
	// and failure policies scoped to the SUnions a failure reaches.
	FineGrained bool
	// CM overrides keep-alive and stagger timing (zero values = defaults).
	CM CMConfig
	// AckInterval paces acknowledgment messages to upstream neighbors
	// (0 disables acks).
	AckInterval int64
	// PerTuple disables the engine's staged batch data plane and runs the
	// reference per-tuple dispatch instead (differential testing and
	// benchmarking; output is byte-identical either way).
	PerTuple bool
}

// Node is one DPC processing node: engine + data path + input managers +
// consistency manager + the Fig. 5 state machine.
type Node struct {
	cfg Config
	clk runtime.Clock
	net fabric.Fabric
	eng *engine.Engine
	d   *diagram.Diagram

	inputs     map[string]*InputManager
	inputOrder []string
	outputs    map[string]*OutputBuffer
	outOrder   []string
	cm         *CM

	state  StreamState
	failed map[string]bool
	snap   *engine.Snapshot
	// pristine is the diagram's initial state, kept for crash restarts.
	pristine *engine.Snapshot
	// recovering marks a restarted node rebuilding its state (§4.5): it
	// answers no requests until it has caught up.
	recovering  bool
	restartedAt int64
	// cpSeq guards against a checkpoint callback landing after the epoch
	// it was requested in has ended; cpRequested marks an epoch that has
	// its checkpoint anchored (taken or in flight).
	cpSeq, cpWant uint64
	cpRequested   bool

	ackTicker runtime.Ticker
	down      bool
	onDeliver func(stream string, t tuple.Tuple)
	trace     TraceFn

	// Stats.
	Reconciliations uint64
	Checkpoints     uint64
	UpFailureSigs   uint64
	// reconStart anchors the in-progress reconciliation; reconDurations
	// records each completed one, in clock µs (grant → REC_DONE).
	reconStart     int64
	reconDurations []int64
}

// New builds a node executing the given diagram and registers it on the
// network. Call Start to subscribe to upstreams and begin probing.
func New(clk runtime.Clock, net fabric.Fabric, d *diagram.Diagram, cfg Config) (*Node, error) {
	if cfg.ID == "" {
		return nil, fmt.Errorf("node: empty ID")
	}
	if cfg.StallTimeout == 0 {
		cfg.StallTimeout = 200 * vtime.Millisecond
	}
	if cfg.FailurePolicy == operator.PolicyNone {
		cfg.FailurePolicy = operator.PolicyProcess
	}
	if cfg.StabilizationPolicy == operator.PolicyNone {
		cfg.StabilizationPolicy = operator.PolicyProcess
	}
	cfg.CM.Stagger = cfg.StabilizationPolicy != operator.PolicySuspend
	n := &Node{
		cfg:     cfg,
		clk:     clk,
		net:     net,
		d:       d,
		inputs:  make(map[string]*InputManager),
		outputs: make(map[string]*OutputBuffer),
		failed:  make(map[string]bool),
		state:   StateStable,
	}
	n.eng = engine.New(clk, d, engine.Config{Capacity: cfg.Capacity, PerTuple: cfg.PerTuple})
	n.eng.OnOutput(n.publish)
	n.eng.OnOutputBatch(n.publishBatch)
	n.eng.OnSignal(n.onSignal)
	n.eng.OnIdle(func() { n.maybeFinishRecovery() })
	for _, in := range d.Inputs() {
		stream := in.Stream
		n.inputOrder = append(n.inputOrder, stream)
		n.inputs[stream] = newInputManager(clk, stream, cfg.StallTimeout, inputHooks{
			onFailed: n.onInputFailed,
			onHealed: n.onInputHealed,
			onBroken: func(s, from string) { n.cm.onConnBroken(s, from) },
			forward: func(s string, ts []tuple.Tuple) {
				if !n.down {
					n.eng.Ingest(s, ts)
				}
			},
		})
	}
	sort.Strings(n.inputOrder)
	for _, out := range d.Outputs() {
		stream := out.Stream
		n.outOrder = append(n.outOrder, stream)
		n.outputs[stream] = NewOutputBuffer(clk, net, cfg.ID, stream, cfg.BufferMode, cfg.BufferCap, cfg.Downstreams[stream])
	}
	sort.Strings(n.outOrder)
	n.cm = newCM(n, cfg.CM)
	// The engine is idle at construction, so the checkpoint callback
	// fires synchronously: pristine is the diagram's initial state.
	n.eng.RequestCheckpoint(func(s *engine.Snapshot) { n.pristine = s })
	net.Register(cfg.ID, n.handle)
	return n, nil
}

// ID returns the node's endpoint identifier.
func (n *Node) ID() string { return n.cfg.ID }

// State returns the node's current DPC state (Fig. 5).
func (n *Node) State() StreamState { return n.state }

// Engine exposes the node's engine (tests and metrics).
func (n *Node) Engine() *engine.Engine { return n.eng }

// CM exposes the consistency manager (tests and metrics).
func (n *Node) CM() *CM { return n.cm }

// ReconcileDurations returns each completed reconciliation's duration in
// clock µs, grant to REC_DONE, in completion order (report probes).
func (n *Node) ReconcileDurations() []int64 { return n.reconDurations }

// Input returns the manager of an input stream.
func (n *Node) Input(stream string) *InputManager { return n.inputs[stream] }

// Output returns the buffer of an output stream.
func (n *Node) Output(stream string) *OutputBuffer { return n.outputs[stream] }

// FailedInputs returns the currently failed input streams, sorted.
func (n *Node) FailedInputs() []string {
	var out []string
	for s := range n.failed {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

// Start subscribes to upstream replicas and begins keep-alive probing.
func (n *Node) Start() {
	n.cm.start()
	if n.cfg.AckInterval > 0 {
		n.ackTicker = n.clk.NewTicker(n.cfg.AckInterval, n.sendAcks)
	}
}

// Stop halts probing (used by tests and controlled shutdown).
func (n *Node) Stop() {
	n.cm.stop()
	if n.ackTicker != nil {
		n.ackTicker.Stop()
	}
}

// send transmits a message unless the node is crashed.
func (n *Node) send(to string, msg any) {
	if n.down {
		return
	}
	n.net.Send(n.cfg.ID, to, msg)
}

// handle dispatches incoming network messages.
func (n *Node) handle(from string, msg any) {
	if n.down {
		return
	}
	if n.recovering {
		// A recovering node consumes data and keep-alive responses to
		// rebuild its state but answers no requests (§4.5): nobody
		// must mistake it for a live replica yet.
		switch m := msg.(type) {
		case DataMsg:
			if im := n.inputs[m.Stream]; im != nil {
				im.Handle(from, m.Seq, m.Tuples)
			}
			n.maybeFinishRecovery()
		case KeepAliveResp:
			n.cm.onKeepAlive(from, m)
		}
		return
	}
	switch m := msg.(type) {
	case DataMsg:
		if im := n.inputs[m.Stream]; im != nil {
			im.Handle(from, m.Seq, m.Tuples)
		}
	case SubscribeMsg:
		if ob := n.outputs[m.Stream]; ob != nil {
			ob.Subscribe(from, m)
		}
	case UnsubscribeMsg:
		if ob := n.outputs[m.Stream]; ob != nil {
			ob.Unsubscribe(from)
		}
	case AckMsg:
		if ob := n.outputs[m.Stream]; ob != nil {
			ob.Ack(from, m.UpToID)
		}
	case KeepAliveReq:
		n.send(from, KeepAliveResp{Node: n.state, Streams: n.streamStates(), Progress: n.inputProgress()})
	case KeepAliveResp:
		n.cm.onKeepAlive(from, m)
	case ReconcileReq:
		n.cm.onReconcileReq(from)
	case ReconcileResp:
		n.cm.onReconcileResp(from, m)
	case ReconcileDone:
		n.cm.onReconcileDone(from)
	}
}

// inputProgress builds the stabilization-progress token of a KeepAliveResp:
// the last stable tuple id accepted on each input stream. The map is built
// fresh per response — receivers retain it across handler turns.
func (n *Node) inputProgress() map[string]uint64 {
	if len(n.inputOrder) == 0 {
		return nil
	}
	p := make(map[string]uint64, len(n.inputOrder))
	for _, stream := range n.inputOrder {
		p[stream] = n.inputs[stream].LastStableID()
	}
	return p
}

// streamStates computes the advertised state of each output stream. In
// whole-node mode every stream carries the node state; in fine-grained mode
// (§8.2) a stream is UP_FAILURE only if a currently-failed input reaches it,
// computed from the diagram structure before tentative data even propagates.
func (n *Node) streamStates() map[string]StreamState {
	out := make(map[string]StreamState, len(n.outOrder))
	for _, s := range n.outOrder {
		out[s] = n.state
	}
	if !n.cfg.FineGrained || n.state == StateStable {
		return out
	}
	affected := make(map[string]bool)
	for in := range n.failed {
		for _, s := range n.d.OutputsAffectedBy(in) {
			affected[s] = true
		}
	}
	// While reconciling or diverged, previously-affected streams carry
	// the node state; untouched streams stay STABLE.
	for _, s := range n.outOrder {
		if !affected[s] && n.state == StateUpFailure && !n.eng.Diverged() {
			out[s] = StateStable
		}
	}
	return out
}

// OnDeliver registers a local tap on the node's output streams: a client
// application colocated with its proxy node consumes output here.
func (n *Node) OnDeliver(fn func(stream string, t tuple.Tuple)) { n.onDeliver = fn }

// publish routes an engine output tuple into the stream's output buffer.
func (n *Node) publish(stream string, t tuple.Tuple) {
	if n.onDeliver != nil {
		n.onDeliver(stream, t)
	}
	ob := n.outputs[stream]
	if ob == nil {
		return
	}
	if !ob.Publish(t) {
		// BufferBlock back-pressure: stop the inflow entirely; the
		// upstream buffers (and ultimately the sources) absorb it.
		n.pauseInputs()
	}
}

// publishBatch routes a staged-plane output batch into the stream's output
// buffer. The deliver taps run first for the whole batch, then the buffer
// takes it in one call: the tap never touches the buffer and the buffer
// never calls back, so the interleaving is indistinguishable from the
// per-tuple publish path. One pauseInputs covers any number of refused
// tuples — unsubscribe is idempotent per upstream.
func (n *Node) publishBatch(stream string, ts []tuple.Tuple) {
	if n.onDeliver != nil {
		for i := range ts {
			n.onDeliver(stream, ts[i])
		}
	}
	ob := n.outputs[stream]
	if ob == nil {
		return
	}
	if !ob.PublishBatch(ts) {
		n.pauseInputs()
	}
}

// pauseInputs unsubscribes from every upstream: the §8.1 blocking mode.
func (n *Node) pauseInputs() {
	for _, stream := range n.inputOrder {
		if live := n.inputs[stream].Live(); live != "" {
			n.cm.unsubscribe(stream, live)
		}
	}
}

// sendAcks acknowledges the last stable tuple of every input stream to all
// replicas of the upstream neighbor: every replica buffers its output until
// all replicas of all downstream neighbors received it (§8.1), and the
// stable prefix is identical across replicas, so one id acknowledges all.
func (n *Node) sendAcks() {
	for _, stream := range n.inputOrder {
		im := n.inputs[stream]
		if im.LastStableID() == 0 {
			continue
		}
		for _, r := range n.cfg.Upstreams[stream] {
			n.send(r, AckMsg{Stream: stream, UpToID: im.LastStableID()})
		}
	}
}

// onSignal receives SUnion/SOutput control signals from the engine.
func (n *Node) onSignal(s operator.Signal) {
	switch s.Kind {
	case operator.SigUpFailure:
		n.UpFailureSigs++
	case operator.SigRecDone:
		n.onStabilizationComplete()
	}
}

// ---- Fig. 5 state machine ----

// onInputFailed handles a healthy → failed transition of an input stream.
func (n *Node) onInputFailed(stream string, kind FailKind) {
	n.tracef("input-failed", "%s (%v)", stream, kind)
	n.failed[stream] = true
	if kind == FailStall {
		// A stall with a healthy-looking upstream is a broken
		// subscription; let the CM repair it.
		n.cm.onInputStalled(stream)
	}
	switch n.state {
	case StateStable:
		n.setState(StateUpFailure, "input failed: "+stream)
		n.takeCheckpoint()
		n.applyPolicies()
	case StateUpFailure:
		// Another failure during an ongoing one (Fig. 11a): the
		// checkpoint stands; if we were waiting for a reconciliation
		// grant, abandon it and go back to failure handling.
		n.cm.cancelWant()
		if !n.cpRequested {
			// No checkpoint anchors this epoch: the node entered
			// UP_FAILURE through a crash restart, which drops all
			// state, not through a Stable→UpFailure transition. If
			// this incarnation diverges it must be able to roll back
			// to now — without this, a restarted replica that
			// flushed tentative data could never reconcile (its
			// grant arrived, found no snapshot, and retried forever:
			// a permanent zombie the scenario fuzzer caught when a
			// flapped replica restarted into a boundary stall).
			n.takeCheckpoint()
		}
		n.applyPolicies()
	case StateStabilization:
		// Failure during recovery (Fig. 11b): the replay finishes and
		// REC_DONE closes the correction sequence; the completion
		// handler sees the non-empty failure set and re-enters
		// UP_FAILURE with a fresh checkpoint.
	}
}

// onInputHealed handles a failed → healthy transition.
func (n *Node) onInputHealed(stream string) {
	n.tracef("input-healed", "%s (failed remaining %d, diverged %v, holds-tentative %v)",
		stream, len(n.failed)-1, n.eng.Diverged(), n.eng.HoldsTentative())
	delete(n.failed, stream)
	n.cm.consolidate(stream)
	if n.state != StateUpFailure || len(n.failed) > 0 {
		return
	}
	if !n.needsReconcile() {
		// The failure was masked: nothing tentative left the node or
		// remains buffered inside it, so the checkpoint can simply be
		// dropped (§6.1: failures shorter than the suspension are
		// masked entirely). The HoldsTentative part of the predicate
		// matters when an upstream's correction healed this input
		// before our own suspension expired: the SUnions may still
		// hold tentative tuples that only the checkpoint restore +
		// patched-log replay can roll back — dropping the epoch would
		// leave a bucket no policy can ever flush, starving everything
		// downstream.
		n.discardEpoch()
		n.setState(StateStable, "heal masked")
		n.applyPolicies()
		return
	}
	// All failures healed but the state diverged: reconcile, staggered
	// so one replica keeps processing new data (§4.4.3). The failure
	// policy stays in force until the authorization resolves: under
	// PolicyDelay this keeps the delayed backlog buffered, and if the
	// grant arrives within the hold those tuples are rolled back and
	// re-derived stable instead of ever being emitted tentative — the
	// consistency benefit of delaying (§6.1).
	n.cm.requestReconcileAuth()
}

// needsReconcile reports whether a healed node must reconcile rather than
// treat the failure as masked: its state diverged (tentative output left
// the node), or a SUnion still buffers tentative tuples only a checkpoint
// restore + patched-log replay can roll back.
func (n *Node) needsReconcile() bool {
	return n.eng.Diverged() || n.eng.HoldsTentative()
}

// onReconcileRejected marks this node as the replica that stays available
// while its partner reconciles: from here on, new tuples are handled per
// the stabilization-phase policy (§6.1's second policy dimension).
func (n *Node) onReconcileRejected() {
	if n.state != StateUpFailure || len(n.failed) > 0 {
		return
	}
	n.applyPolicies()
}

// onReconcileGranted starts state reconciliation (§4.4.1-4.4.2).
func (n *Node) onReconcileGranted() {
	if n.state != StateUpFailure || len(n.failed) > 0 || !n.needsReconcile() {
		n.cm.finishReconcile() // stale grant; release the peer
		return
	}
	if n.snap == nil {
		// The checkpoint callback is still draining pre-request
		// batches: retry shortly (never synchronously — the self-
		// granted path would recurse).
		n.cm.finishReconcile()
		n.clk.After(10*vtime.Millisecond, func() {
			if n.state == StateUpFailure && len(n.failed) == 0 && n.needsReconcile() {
				n.cm.requestReconcileAuth()
			}
		})
		return
	}
	n.setState(StateStabilization, "reconcile granted")
	n.Reconciliations++
	n.reconStart = n.clk.Now()
	n.eng.Restore(n.snap)
	// The checkpoint may have captured buckets holding tentative tuples
	// whose undo arrived (and was consumed patching the logs) after the
	// cut; the restore would resurrect them with no revocation left to
	// come. Stabilization re-derives from stable data only.
	n.eng.RevokeTentativeAll()
	for _, stream := range n.inputOrder {
		im := n.inputs[stream]
		replay := im.TakeLog()
		im.StopLog()
		n.eng.Ingest(stream, replay)
	}
	n.eng.ScheduleRecDone()
	n.applyPolicies()
}

// onStabilizationComplete fires when REC_DONE crosses the node's outputs.
func (n *Node) onStabilizationComplete() {
	if n.state != StateStabilization {
		return
	}
	n.reconDurations = append(n.reconDurations, n.clk.Now()-n.reconStart)
	n.cm.finishReconcile()
	if len(n.failed) == 0 {
		n.discardEpoch()
		n.setState(StateStable, "stabilization complete")
		n.applyPolicies()
		return
	}
	// A failure struck during recovery (Fig. 11b): back to UP_FAILURE
	// with a fresh checkpoint; the SUnions suspend again.
	n.setState(StateUpFailure, "failure during stabilization")
	n.takeCheckpoint()
	n.applyPolicies()
}

// takeCheckpoint requests a checkpoint and restarts the arrival logs at the
// same instant, so snapshot + logs partition the input exactly (§4.4.1).
func (n *Node) takeCheckpoint() {
	n.tracef("checkpoint", "epoch %d", n.cpWant+1)
	n.Checkpoints++
	n.cpRequested = true
	n.cpWant++
	seq := n.cpWant
	n.snap = nil
	for _, stream := range n.inputOrder {
		n.inputs[stream].StartLog()
	}
	n.eng.RequestCheckpoint(func(s *engine.Snapshot) {
		if n.cpWant == seq {
			n.snap = s
			n.cpSeq = seq
		}
	})
}

// discardEpoch clears the failure-handling state, including a checkpoint
// request the engine has not gotten around to serving yet.
func (n *Node) discardEpoch() {
	n.tracef("discard-epoch", "epoch %d", n.cpWant)
	n.snap = nil
	n.cpRequested = false
	n.cpWant++
	n.eng.CancelCheckpoint()
	for _, stream := range n.inputOrder {
		n.inputs[stream].StopLog()
	}
}

// applyPolicies switches SUnion delay policies to match the node state.
func (n *Node) applyPolicies() {
	if n.recovering {
		// A recovering node rebuilds by re-deriving the stable stream
		// (§4.5); it serves nobody — it answers no requests, so no
		// downstream consumes what it emits — and flushing buckets
		// tentatively mid-rebuild would only diverge the very state it
		// is trying to reconstruct (the fuzzer found recoveries that
		// never converged because an upstream failure mid-rebuild
		// switched the SUnions to a tentative policy). Pure
		// serialization until caught up; the real policy is applied
		// when recovery completes.
		n.eng.SetPolicyAll(operator.PolicyNone)
		return
	}
	var p operator.DelayPolicy
	switch {
	case n.state == StateStable || n.state == StateStabilization:
		p = operator.PolicyNone
	case len(n.failed) > 0:
		p = n.cfg.FailurePolicy
	default:
		// Healed, diverged, waiting for the reconciliation grant.
		p = n.cfg.StabilizationPolicy
	}
	if n.cfg.FineGrained && n.state == StateUpFailure {
		// Scope the failure policy to the SUnions the failed inputs
		// actually reach (§8.2); the rest keep running normally.
		touched := make(map[string]bool)
		for in := range n.failed {
			for _, su := range n.d.SUnionsFedBy(in) {
				touched[su] = true
			}
		}
		for _, name := range n.d.SUnions() {
			su := n.d.Op(name).(*operator.SUnion)
			if touched[name] || (len(n.failed) == 0 && n.eng.Diverged()) {
				su.SetPolicy(p)
			} else if len(n.failed) > 0 && !touched[name] {
				su.SetPolicy(operator.PolicyNone)
			} else {
				su.SetPolicy(p)
			}
		}
		return
	}
	n.eng.SetPolicyAll(p)
}

// ---- crash / restart (§4.5) ----

// Crash fails the node: it stops sending and receiving, and loses all
// volatile state (buffers are lost when a processing node fails, §2.2).
func (n *Node) Crash() {
	n.tracef("crash", "")
	n.down = true
	n.net.SetDown(n.cfg.ID, true)
	n.Stop()
}

// Down reports whether the node is crashed.
func (n *Node) Down() bool { return n.down }

// Recovering reports whether a restarted node is still rebuilding state.
func (n *Node) Recovering() bool { return n.recovering }

// Restart recovers a crashed node (§4.5): it rejoins the network with an
// empty diagram state, resubscribes to its upstream neighbors — which
// replay their buffered streams from the beginning — and reprocesses to
// rebuild a consistent state. Until it has caught up with the present it
// answers no requests, including keep-alives, so no downstream neighbor
// switches to it prematurely. Exact rebuild (identical tuple ids across
// replicas) requires the upstream buffers to still hold the full streams;
// with truncated buffers the node converges only for convergent-capable
// diagrams (§8.1).
func (n *Node) Restart() {
	if !n.down {
		return
	}
	n.tracef("restart", "recovering")
	n.down = false
	n.net.SetDown(n.cfg.ID, false)
	n.recovering = true
	n.restartedAt = n.clk.Now()
	n.state = StateUpFailure // not advertised while recovering
	n.failed = make(map[string]bool)
	n.snap = nil
	n.cpRequested = false
	n.cpWant++
	n.eng.ResetToPristine(n.pristine)
	for _, stream := range n.inputOrder {
		n.inputs[stream].Reset()
	}
	for _, stream := range n.outOrder {
		n.outputs[stream].Reset()
	}
	n.cm.reset()
	n.Start()
	// Void any reconciliation promise a peer holds on behalf of the dead
	// incarnation: the pre-crash stabilization is never completing, and a
	// granter waiting for its ReconcileDone would stay wedged until the
	// grant timeout. The fresh incarnation holds no grants by definition.
	n.cm.finishReconcile()
}

// maybeFinishRecovery checks whether a recovering node has caught up: every
// input stream's boundary watermark has passed the restart time, so the
// rebuilt state covers everything up to the present.
func (n *Node) maybeFinishRecovery() {
	if !n.recovering {
		return
	}
	for _, stream := range n.inputOrder {
		if n.inputs[stream].lastBoundarySTime < n.restartedAt {
			return
		}
	}
	if !n.eng.Idle() {
		// Reprocessing still in progress; check again when it drains.
		return
	}
	n.recovering = false
	n.tracef("recovered", "failed %d, diverged %v, holds-tentative %v",
		len(n.failed), n.eng.Diverged(), n.eng.HoldsTentative())
	if len(n.failed) != 0 {
		// Still in UP_FAILURE; the heal path takes it from here. The
		// failure policy suppressed during the rebuild applies now.
		n.applyPolicies()
		return
	}
	if !n.needsReconcile() {
		n.setState(StateStable, "recovery caught up")
		n.applyPolicies()
		return
	}
	// The rebuild ingested tentative data (an upstream was mid-divergence
	// while this node replayed its buffers) and the inputs have already
	// healed, so no future heal will trigger the rollback. Request it
	// here — declaring STABLE instead would freeze the poisoned buckets
	// forever: recovery checked only Diverged() once, and the fuzzer
	// found the held-tentative variant (a replica restarting while its
	// upstream reconciled a source outage) starving everything downstream
	// of the bucket.
	n.cm.requestReconcileAuth()
}

// HandleMessage delivers a message as if it arrived from the network: test
// instrumentation and in-process harnesses use it to interpose on a node's
// endpoint.
func (n *Node) HandleMessage(from string, msg any) { n.handle(from, msg) }
