// Package node implements a DPC processing node: the Data Path (output
// buffering, subscriptions, replay and correction of downstream neighbors),
// per-input-stream Input Managers (arrival logging, undo patching, failure
// and heal detection, dual connections during upstream stabilization), the
// Consistency Manager (keep-alives, upstream switching per Table II, the
// inter-replica stagger protocol of Fig. 9), and the DPC state machine of
// Fig. 5 tying them together.
package node

import "borealis/internal/tuple"

// StreamState is the consistency state a node advertises for a stream (or
// for itself). FAILURE is never advertised; it is the state a Consistency
// Manager records for an unreachable replica.
type StreamState uint8

const (
	// StateStable: all inputs stable, outputs stable.
	StateStable StreamState = iota
	// StateUpFailure: an upstream failure is in progress; outputs may be
	// tentative.
	StateUpFailure
	// StateStabilization: the node is reconciling state and correcting
	// its outputs.
	StateStabilization
	// StateFailure: unreachable (recorded locally, never advertised).
	StateFailure
)

func (s StreamState) String() string {
	switch s {
	case StateStable:
		return "STABLE"
	case StateUpFailure:
		return "UP_FAILURE"
	case StateStabilization:
		return "STABILIZATION"
	case StateFailure:
		return "FAILURE"
	}
	return "UNKNOWN"
}

// DataMsg carries a batch of tuples of one stream from an upstream
// endpoint to a subscriber. Seq numbers the batches of one subscription,
// starting at 1: the receiver detects a broken connection (messages lost to
// a partition) as a sequence gap — the equivalent of a TCP connection
// reset — and re-subscribes so the upstream replays what was lost.
type DataMsg struct {
	Stream string
	Seq    uint64
	Tuples []tuple.Tuple
}

// SubscribeMsg asks an upstream endpoint to start (or resume) sending a
// stream. FromID names the last stable tuple the subscriber holds; the
// upstream replays everything after it. If SeenTentative is set, the
// subscriber received tentative tuples after that stable tuple and the
// upstream must precede the replay with an UNDO (Fig. 8).
type SubscribeMsg struct {
	Stream        string
	FromID        uint64
	SeenTentative bool
	// TailOnly subscribes for fresh data only, with no historical
	// replay: used when attaching to a replica in UP_FAILURE "to
	// continue processing new tentative data" (§4.4.3) — its stale
	// tentative history will be revoked by corrections anyway.
	TailOnly bool
}

// UnsubscribeMsg stops a subscription.
type UnsubscribeMsg struct {
	Stream string
}

// AckMsg tells an upstream endpoint that every tuple of the stream up to
// and including UpToID has been durably received; it drives output-buffer
// truncation (§8.1).
type AckMsg struct {
	Stream string
	UpToID uint64
}

// KeepAliveReq is the periodic reachability and state probe (§4.2.3).
type KeepAliveReq struct{}

// KeepAliveResp reports the responder's node state and the state of each
// of its output streams (per-stream states are the §8.2 refinement; in
// whole-node mode every stream carries the node state).
type KeepAliveResp struct {
	Node    StreamState
	Streams map[string]StreamState
	// Progress is the responder's stabilization-progress token: the last
	// stable tuple id it holds on each of its input streams. A replica
	// that granted this responder a reconciliation promise (Fig. 9)
	// polices the grant with it — a granted peer that answers keep-alives
	// but whose token never advances is alive yet making zero
	// stabilization progress (its data path is partitioned, or its replay
	// wedged), and the grant is revoked after a bounded stall window
	// instead of the full GrantTimeout. Nil when the responder has no
	// inputs, and on frames from binaries predating the token (the codec
	// accepts bodies without it).
	Progress map[string]uint64
}

// ReconcileReq asks a replica of the same node for permission to enter
// STABILIZATION (the stagger protocol of Fig. 9).
type ReconcileReq struct{}

// ReconcileResp grants or rejects a ReconcileReq.
type ReconcileResp struct {
	Granted bool
}

// ReconcileDone tells the granting replica that the requester has finished
// stabilizing, releasing the granter's promise not to reconcile.
type ReconcileDone struct{}
