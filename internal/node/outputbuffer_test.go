package node

import (
	"testing"

	"borealis/internal/netsim"
	"borealis/internal/runtime"
	"borealis/internal/tuple"
)

func obSetup(mode BufferMode, capTuples int, expected []string) (*runtime.VirtualClock, *netsim.Net, *OutputBuffer, map[string]*[]tuple.Tuple) {
	sim := runtime.NewVirtual()
	net := netsim.New(sim)
	net.Register("up", func(string, any) {})
	boxes := make(map[string]*[]tuple.Tuple)
	for _, id := range []string{"d1", "d2"} {
		box := &[]tuple.Tuple{}
		boxes[id] = box
		net.Register(id, func(_ string, msg any) {
			dm := msg.(DataMsg)
			*box = append(*box, dm.Tuples...)
		})
	}
	ob := NewOutputBuffer(sim, net, "up", "s", mode, capTuples, expected)
	return sim, net, ob, boxes
}

func ins(id uint64, stime int64) tuple.Tuple {
	return tuple.Tuple{Type: tuple.Insertion, ID: id, STime: stime, Data: []int64{int64(id)}}
}

func tent(id uint64, stime int64) tuple.Tuple {
	return tuple.Tuple{Type: tuple.Tentative, ID: id, STime: stime, Data: []int64{int64(id)}}
}

func TestOutputBufferForwardsToSubscribers(t *testing.T) {
	sim, _, ob, boxes := obSetup(BufferUnbounded, 0, nil)
	ob.Subscribe("d1", SubscribeMsg{Stream: "s"})
	ob.Publish(ins(1, 10))
	ob.Publish(ins(2, 20))
	sim.Run()
	got := *boxes["d1"]
	if len(got) != 2 || got[0].ID != 1 || got[1].ID != 2 {
		t.Fatalf("forwarding wrong: %v", got)
	}
	if len(*boxes["d2"]) != 0 {
		t.Fatal("non-subscriber received data")
	}
}

func TestOutputBufferCoalescesSameInstantEmissions(t *testing.T) {
	sim, net, ob, _ := obSetup(BufferUnbounded, 0, nil)
	ob.Subscribe("d1", SubscribeMsg{Stream: "s"})
	sim.Run()
	before := net.Delivered
	for i := uint64(1); i <= 50; i++ {
		ob.Publish(ins(i, int64(i)))
	}
	sim.Run()
	if net.Delivered-before != 1 {
		t.Fatalf("want 1 coalesced message, got %d", net.Delivered-before)
	}
}

func TestOutputBufferSubscribeReplaysFromID(t *testing.T) {
	sim, _, ob, boxes := obSetup(BufferUnbounded, 0, nil)
	for i := uint64(1); i <= 5; i++ {
		ob.Publish(ins(i, int64(i)))
	}
	ob.Subscribe("d1", SubscribeMsg{Stream: "s", FromID: 3})
	sim.Run()
	got := *boxes["d1"]
	if len(got) != 2 || got[0].ID != 4 || got[1].ID != 5 {
		t.Fatalf("replay-from-id wrong: %v", got)
	}
}

func TestOutputBufferSubscribeWithSeenTentativeSendsUndo(t *testing.T) {
	sim, _, ob, boxes := obSetup(BufferUnbounded, 0, nil)
	ob.Publish(ins(1, 1))
	ob.Publish(ins(2, 2))
	ob.Publish(tent(3, 3))
	ob.Publish(tent(4, 4))
	// Fig. 8: Node 2'' saw tentative after stable tuple 2 → undo + the
	// corrected suffix (here still tentative, but the subscriber knows).
	ob.Subscribe("d1", SubscribeMsg{Stream: "s", FromID: 2, SeenTentative: true})
	sim.Run()
	got := *boxes["d1"]
	if len(got) != 3 {
		t.Fatalf("want undo + 2 tuples, got %v", got)
	}
	if got[0].Type != tuple.Undo || got[0].ID != 2 {
		t.Fatalf("undo wrong: %v", got[0])
	}
}

func TestOutputBufferUndoCompacts(t *testing.T) {
	sim, _, ob, boxes := obSetup(BufferUnbounded, 0, nil)
	ob.Publish(ins(1, 1))
	ob.Publish(tent(2, 2))
	ob.Publish(tent(3, 3))
	if ob.Len() != 3 {
		t.Fatalf("buffer len = %d", ob.Len())
	}
	ob.Publish(tuple.NewUndo(1))
	if ob.Len() != 1 {
		t.Fatalf("undo must compact the buffer: len = %d", ob.Len())
	}
	ob.Publish(ins(4, 2)) // correction
	// A late subscriber sees only the corrected stream.
	ob.Subscribe("d1", SubscribeMsg{Stream: "s"})
	sim.Run()
	got := *boxes["d1"]
	if len(got) != 2 || got[0].ID != 1 || got[1].ID != 4 {
		t.Fatalf("late subscriber must see corrected stream: %v", got)
	}
}

func TestOutputBufferBoundariesBufferedRecDoneNot(t *testing.T) {
	sim, _, ob, boxes := obSetup(BufferUnbounded, 0, nil)
	ob.Publish(ins(1, 1))
	ob.Publish(tuple.NewBoundary(100))
	ob.Publish(tuple.NewRecDone(5))
	ob.Subscribe("d1", SubscribeMsg{Stream: "s"})
	sim.Run()
	got := *boxes["d1"]
	if len(got) != 2 || got[1].Type != tuple.Boundary {
		t.Fatalf("boundaries must replay, rec_done must not: %v", got)
	}
}

func TestOutputBufferUnsubscribeStopsFlow(t *testing.T) {
	sim, _, ob, boxes := obSetup(BufferUnbounded, 0, nil)
	ob.Subscribe("d1", SubscribeMsg{Stream: "s"})
	ob.Publish(ins(1, 1))
	sim.Run()
	ob.Unsubscribe("d1")
	ob.Publish(ins(2, 2))
	sim.Run()
	if len(*boxes["d1"]) != 1 {
		t.Fatal("unsubscribed endpoint still receiving")
	}
}

func TestOutputBufferAckTruncation(t *testing.T) {
	_, _, ob, _ := obSetup(BufferUnbounded, 0, []string{"d1", "d2"})
	for i := uint64(1); i <= 10; i++ {
		ob.Publish(ins(i, int64(i)))
	}
	ob.Ack("d1", 8)
	if ob.Truncated != 0 {
		t.Fatal("truncation must wait for all expected endpoints")
	}
	ob.Ack("d2", 5)
	// min(8, 5) = 5: tuples 1-5 go.
	if ob.Truncated != 5 {
		t.Fatalf("Truncated = %d, want 5", ob.Truncated)
	}
	if ob.Len() != 5 {
		t.Fatalf("Len = %d, want 5", ob.Len())
	}
	// Replay for a reconnecting endpoint now starts at the cut.
	sim, _, ob2, boxes := obSetup(BufferUnbounded, 0, nil)
	_ = ob2
	_ = sim
	_ = boxes
}

func TestOutputBufferSlideMode(t *testing.T) {
	_, _, ob, _ := obSetup(BufferSlide, 5, nil)
	for i := uint64(1); i <= 8; i++ {
		if !ob.Publish(ins(i, int64(i))) {
			t.Fatal("slide mode must never block")
		}
	}
	if ob.Len() != 5 {
		t.Fatalf("slide buffer len = %d, want 5", ob.Len())
	}
	if ob.Truncated != 3 {
		t.Fatalf("Truncated = %d, want 3", ob.Truncated)
	}
}

func TestOutputBufferBlockMode(t *testing.T) {
	_, _, ob, _ := obSetup(BufferBlock, 3, []string{"d1"})
	for i := uint64(1); i <= 3; i++ {
		if !ob.Publish(ins(i, int64(i))) {
			t.Fatal("must not block below capacity")
		}
	}
	if ob.Publish(ins(4, 4)) {
		t.Fatal("full block-mode buffer must refuse")
	}
	if !ob.Blocked {
		t.Fatal("Blocked flag must be set")
	}
	// Acks free space and lift the back-pressure.
	ob.Ack("d1", 2)
	if ob.Blocked {
		t.Fatal("ack must unblock")
	}
	if !ob.Publish(ins(4, 4)) {
		t.Fatal("publish must succeed after truncation")
	}
}

func TestOutputBufferReplayAfterTruncationStartsAtCut(t *testing.T) {
	sim, _, ob, boxes := obSetup(BufferUnbounded, 0, []string{"d1"})
	for i := uint64(1); i <= 6; i++ {
		ob.Publish(ins(i, int64(i)))
	}
	ob.Ack("d1", 4)
	// A subscriber asking for data older than the cut gets what's left.
	ob.Subscribe("d1", SubscribeMsg{Stream: "s", FromID: 2})
	sim.Run()
	got := *boxes["d1"]
	if len(got) != 2 || got[0].ID != 5 {
		t.Fatalf("replay after truncation wrong: %v", got)
	}
}

func TestOutputBufferPublishBatchMatchesPublish(t *testing.T) {
	batch := []tuple.Tuple{ins(1, 10), ins(2, 20), tuple.NewBoundary(25), ins(3, 30)}

	run := func(bulk bool) ([]tuple.Tuple, []tuple.Tuple) {
		sim, _, ob, boxes := obSetup(BufferUnbounded, 0, nil)
		ob.Subscribe("d1", SubscribeMsg{Stream: "s"})
		sim.Run()
		if bulk {
			if !ob.PublishBatch(batch) {
				t.Fatal("unbounded PublishBatch must not block")
			}
		} else {
			for _, tp := range batch {
				ob.Publish(tp)
			}
		}
		sim.Run()
		buffered := append([]tuple.Tuple(nil), ob.live()...)
		return buffered, *boxes["d1"]
	}

	refBuf, refOut := run(false)
	gotBuf, gotOut := run(true)
	for name, pair := range map[string][2][]tuple.Tuple{
		"buffer":     {gotBuf, refBuf},
		"subscriber": {gotOut, refOut},
	} {
		got, want := pair[0], pair[1]
		if len(got) != len(want) {
			t.Fatalf("%s length differs: %d vs %d", name, len(got), len(want))
		}
		for i := range got {
			if got[i].Type != want[i].Type || got[i].ID != want[i].ID || got[i].STime != want[i].STime {
				t.Fatalf("%s tuple %d differs: %+v vs %+v", name, i, got[i], want[i])
			}
		}
	}
}

func TestOutputBufferPublishBatchFallsBackUnderPressure(t *testing.T) {
	// A bounded blocking buffer near capacity must take the per-tuple path
	// and report back-pressure exactly as Publish would.
	sim, _, ob, _ := obSetup(BufferBlock, 2, nil)
	sim.Run()
	if ob.PublishBatch([]tuple.Tuple{ins(1, 10), ins(2, 20), ins(3, 30)}) {
		t.Fatal("over-capacity batch must report back-pressure")
	}
	if ob.Len() != 2 {
		t.Fatalf("blocking buffer overfilled: %d tuples", ob.Len())
	}
	if !ob.Blocked {
		t.Fatal("back-pressure flag not raised")
	}
}

func TestOutputBufferPublishBatchUndoTakesPerTuplePath(t *testing.T) {
	// A batch containing an undo must compact the tentative suffix exactly
	// like sequential Publish calls.
	sim, _, ob, boxes := obSetup(BufferUnbounded, 0, nil)
	ob.Subscribe("d1", SubscribeMsg{Stream: "s"})
	sim.Run()
	ob.PublishBatch([]tuple.Tuple{ins(1, 10), tent(2, 20), tent(3, 30), tuple.NewUndo(1)})
	sim.Run()
	if n := ob.Len(); n != 1 {
		t.Fatalf("undo did not compact the buffer: %d tuples live", n)
	}
	got := *boxes["d1"]
	if len(got) != 4 || got[3].Type != tuple.Undo {
		t.Fatalf("live subscriber must still see the undo: %v", got)
	}
}
