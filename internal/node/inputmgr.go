package node

import (
	"fmt"

	"borealis/internal/runtime"
	"borealis/internal/tuple"
)

// FailKind classifies how an input stream failed.
type FailKind uint8

const (
	// FailNone: the input is healthy.
	FailNone FailKind = iota
	// FailStall: boundary tuples stopped arriving (§4.2.3): either the
	// upstream suspended, a source disconnected, or the network dropped
	// the connection.
	FailStall
	// FailTentative: the upstream started sending tentative tuples — it
	// is itself in UP_FAILURE.
	FailTentative
)

func (k FailKind) String() string {
	switch k {
	case FailNone:
		return "none"
	case FailStall:
		return "stall"
	case FailTentative:
		return "tentative"
	}
	return "unknown"
}

// inputHooks are the callbacks an InputManager raises toward the node
// controller.
type inputHooks struct {
	// onFailed fires when the input transitions healthy → failed.
	onFailed func(stream string, kind FailKind)
	// onHealed fires when a failed input is stable and complete again.
	onHealed func(stream string)
	// onBroken fires when a sequence gap reveals a broken connection
	// (messages lost to a partition); the CM must resubscribe.
	onBroken func(stream, from string)
	// forward delivers live tuples into the engine.
	forward func(stream string, ts []tuple.Tuple)
}

// InputManager owns one input stream of a node: it forwards live data into
// the engine, keeps the post-checkpoint arrival log that reconciliation
// replays (§4.4.1), patches that log when the upstream sends corrections
// (UNDO + stable tuples + REC_DONE, §4.4.2), detects failures by boundary
// silence or tentative arrivals, and detects heals.
//
// During an upstream's stabilization the manager can hold two connections
// (§4.4.3): the stabilizing upstream ("correcting" — its tuples patch the
// log but are not forwarded live) and a replica still in UP_FAILURE
// ("live" — fresh tentative data keeps availability). A connection flips to
// correcting mode the moment an UNDO arrives on it and back to live mode at
// REC_DONE.
type InputManager struct {
	clk    runtime.Clock
	stream string
	hooks  inputHooks

	// stallTimeout declares the input failed after this much boundary
	// silence; zero disables stall detection (protocol unit tests).
	stallTimeout int64
	stallTimer   runtime.Timer

	// live and corr are the endpoints currently serving this stream.
	live, corr string

	// correcting marks the live connection as temporarily carrying a
	// correction sequence (single-upstream case: the only neighbor
	// entered stabilization in place).
	correcting bool

	// seamless marks a fresh subscription to a STABLE replica: the
	// first UNDO of its replay patches the log without entering
	// correcting mode, because the replica continues with live data
	// immediately after the corrections (Fig. 8).
	seamless bool

	// Subscription bookkeeping for Fig. 8 switches.
	lastStableID  uint64
	seenTentative bool

	lastBoundaryArrival int64
	lastBoundarySTime   int64

	failKind FailKind

	logging bool
	log     []tuple.Tuple

	// conns tracks per-connection batch sequencing: a gap means the
	// connection broke and in-flight data was lost; everything is then
	// dropped until a fresh subscription (seq 1) arrives.
	conns map[string]*connSeq

	// Tentative counts tentative data tuples received; Received counts
	// all data tuples. DroppedDup counts stable tuples dropped from a
	// fresh subscription's replay because they duplicated data already
	// received (id at or below lastStableID).
	Tentative  uint64
	Received   uint64
	DroppedDup uint64

	// trace, when set by Node.SetTrace, receives correction-protocol
	// events (undo, rec-done, conn-broken) on this stream.
	trace func(event, detail string)
}

// connSeq is the receive state of one upstream connection.
type connSeq struct {
	next uint64
	// established is set once a subscription's first batch (seq 1) has
	// been accepted. Gaps before that are pre-subscription leftovers of
	// an older connection (e.g. after a crash restart) and are dropped
	// silently: our own subscription is already in flight, and reacting
	// with another one would double the replay.
	established bool
	broken      bool
}

// newInputManager builds a manager for one input stream.
func newInputManager(clk runtime.Clock, stream string, stallTimeout int64, hooks inputHooks) *InputManager {
	return &InputManager{
		clk:               clk,
		stream:            stream,
		stallTimeout:      stallTimeout,
		hooks:             hooks,
		lastBoundarySTime: -1,
		conns:             make(map[string]*connSeq),
	}
}

// admit checks a batch's sequence number against the connection state. A
// sequence of 1 is a fresh subscription (state resets); a gap marks the
// connection broken — the lost messages must be replayed under a new
// subscription, so everything is dropped until one arrives.
func (im *InputManager) admit(from string, seq uint64) bool {
	cs := im.conns[from]
	if cs == nil {
		cs = &connSeq{next: 1}
		im.conns[from] = cs
	}
	switch {
	case seq == 1:
		cs.next = 2
		cs.established = true
		cs.broken = false
		return true
	case cs.broken || !cs.established:
		return false
	case seq != cs.next:
		cs.broken = true
		if im.trace != nil {
			im.trace("conn-broken", fmt.Sprintf("%s from %s: seq %d, want %d", im.stream, from, seq, cs.next))
		}
		if im.hooks.onBroken != nil {
			im.hooks.onBroken(im.stream, from)
		}
		return false
	default:
		cs.next++
		return true
	}
}

// Delivering reports whether the endpoint has an established, unbroken
// connection — i.e. at least one batch has been admitted since the last
// subscription to it. A subscription whose SubscribeMsg was lost (sent to
// a crashed or recovering endpoint) never establishes.
func (im *InputManager) Delivering(from string) bool {
	cs := im.conns[from]
	return cs != nil && cs.established && !cs.broken
}

// ExpectFresh marks the connection to an endpoint as awaiting a fresh
// subscription (seq 1). The CM calls it whenever it sends a SubscribeMsg:
// batches of the previous connection may still be in flight with stale
// sequence numbers, and without the reset such a batch looks like a
// lost-message gap on an established connection — triggering a second
// resubscription whose second seq-1 replay duplicates every replayed
// tuple not yet behind the serialization cursor (found by the scenario
// fuzzer: a partition heal whose resubscription raced an in-flight
// batch, violating Definition 1 with duplicated stable output).
func (im *InputManager) ExpectFresh(from string) {
	cs := im.conns[from]
	if cs == nil {
		return
	}
	cs.established = false
	cs.broken = false
}

// Stream returns the managed stream name.
func (im *InputManager) Stream() string { return im.stream }

// Failed reports whether the input is currently failed.
func (im *InputManager) Failed() bool { return im.failKind != FailNone }

// FailureKind returns the current failure classification.
func (im *InputManager) FailureKind() FailKind { return im.failKind }

// Live returns the endpoint of the live connection ("" if none).
func (im *InputManager) Live() string { return im.live }

// Correcting returns the endpoint currently supplying corrections ("").
func (im *InputManager) Correcting() string {
	if im.correcting {
		return im.live
	}
	return im.corr
}

// LastStableID returns the id of the last stable tuple received, for
// subscribe messages (Fig. 8).
func (im *InputManager) LastStableID() uint64 { return im.lastStableID }

// SeenTentative reports whether tentative tuples followed the last stable
// one, for subscribe messages.
func (im *InputManager) SeenTentative() bool { return im.seenTentative }

// StartLog begins (or restarts) the post-checkpoint arrival log.
func (im *InputManager) StartLog() {
	im.logging = true
	im.log = im.log[:0]
}

// StopLog ends logging and discards the log.
func (im *InputManager) StopLog() {
	im.logging = false
	im.log = nil
}

// TakeLog returns the patched log for replay and resets it (logging stays
// on: arrivals during the replay belong to the next checkpoint epoch only
// after the controller takes a new checkpoint; until then they must remain
// replayable, so the controller calls StartLog again at that moment).
func (im *InputManager) TakeLog() []tuple.Tuple {
	out := im.log
	im.log = nil
	return out
}

// LogLen returns the current log length (for tests and buffer accounting).
func (im *InputManager) LogLen() int { return len(im.log) }

// SetConnections points the manager at its current upstream endpoints.
// The Consistency Manager calls this when it (re)subscribes. seamless marks
// the live connection as a fresh subscription to a STABLE replica whose
// replayed corrections flow straight into live data (Fig. 8).
func (im *InputManager) SetConnections(live, corr string, seamless bool) {
	im.live = live
	im.corr = corr
	im.seamless = seamless
	if seamless {
		im.correcting = false
	}
	// A (re)connection restarts the boundary-silence clock.
	im.lastBoundaryArrival = im.clk.Now()
	im.armStallTimer()
}

// Handle processes a batch arriving from an upstream endpoint.
//
// Ordering matters here for checkpoint/replay exactness. A *failure*
// transition must fire BEFORE the batch is logged and forwarded: the
// checkpoint cut then precedes the batch, so the batch lands in both the
// post-cut ingress queue and the fresh arrival log — restore discards the
// queue and the replay delivers it exactly once, with no tentative effects
// captured inside the snapshot. A *heal* transition must fire AFTER the
// batch is forwarded: if reconciliation is granted synchronously, the
// restore discards the just-queued live copy and the replay (which includes
// this batch, logged above) again delivers it exactly once.
func (im *InputManager) Handle(from string, seq uint64, ts []tuple.Tuple) {
	fromCorr := im.corr != "" && from == im.corr
	if !fromCorr && from != im.live {
		return // stale connection we already unsubscribed from
	}
	if !im.admit(from, seq) {
		return // lost-message gap: wait for the resubscription replay
	}
	if im.trace != nil {
		var ins, tent, bound, corr int
		for i := range ts {
			switch ts[i].Type {
			case tuple.Insertion:
				ins++
			case tuple.Tentative:
				tent++
			case tuple.Boundary:
				bound++
			default:
				corr++
			}
		}
		im.trace("batch", fmt.Sprintf("%s from %s seq %d: %d stable, %d tentative, %d boundary, %d corrections",
			im.stream, from, seq, ins, tent, bound, corr))
	}
	// A fresh subscription's replay can overlap data this manager already
	// received — e.g. two resubscriptions racing each other produce two
	// replays from the same from-id, or a source whose log was truncated
	// replays from before the requested position. Stable identifiers are
	// unique and monotonic on a stream, so stable tuples at or below
	// lastStableID in a seq-1 batch are exact duplicates and are dropped
	// here, before logging and forwarding (a duplicate reaching a pending
	// serialization bucket is emitted twice, violating Definition 1).
	// Tentative tuples are exempt: their ids number a provisional suffix
	// and may legitimately sit at or below the stable watermark after a
	// switch to a diverged replica.
	dedupBelow := uint64(0)
	if seq == 1 {
		dedupBelow = im.lastStableID
	}
	// One pass classifies the batch for the decisions below: a new
	// failure (a tentative tuple before any undo), the forward-as-is
	// fast path (no correction tuples, no duplicates before the first
	// correction), and the bulk path (nothing but stable insertions and
	// stable boundaries). The pass ends at the first undo — nothing after
	// it changes any answer (dirty is already true by then).
	hasCorrection := false
	hasDup := false
	tentBeforeUndo := false
	sawUndo := false
	dirty := false // anything besides stable insertions and stable boundaries
	insCount := uint64(0)
	lastInsID := uint64(0)
	boundCount := 0
	for i := range ts {
		switch ts[i].Type {
		case tuple.Undo:
			hasCorrection = true
			sawUndo = true
			dirty = true
		case tuple.RecDone:
			hasCorrection = true
			dirty = true
		case tuple.Tentative:
			tentBeforeUndo = true
			dirty = true
		case tuple.Insertion:
			if !hasCorrection && ts[i].ID <= dedupBelow {
				hasDup = true
			}
			insCount++
			lastInsID = ts[i].ID
		case tuple.Boundary:
			if ts[i].Src != 0 {
				dirty = true
			}
			boundCount++
		}
		if sawUndo {
			break
		}
	}
	// The failure transition fires up front, before any of the batch is
	// logged/forwarded (see the ordering contract above).
	if tentBeforeUndo && !fromCorr && !im.correcting && im.failKind == FailNone {
		im.declareFailed(FailTentative)
	}
	forwardAsIs := !hasCorrection && !hasDup && !fromCorr && !im.correcting
	if forwardAsIs && !dirty {
		// Bulk path for the dominant clean batch: the per-tuple loop below
		// degenerates to counter updates, in-order log appends, and
		// boundary bookkeeping, all of which batch. The scan above visited
		// every tuple (no undo, so it never broke early), so the counts
		// and the no-duplicates guarantee cover the whole batch.
		if insCount > 0 {
			im.Received += insCount
			im.lastStableID = lastInsID
			im.seenTentative = false
		}
		if im.logging {
			im.log = tuple.AppendBatch(im.log, ts)
		}
		if boundCount > 0 {
			for i := range ts {
				if ts[i].Type == tuple.Boundary {
					im.touchBoundary(ts[i].STime)
				}
			}
		}
		if len(ts) > 0 && im.hooks.forward != nil {
			im.hooks.forward(im.stream, ts)
		}
		if boundCount > 0 && im.failKind != FailNone {
			im.heal()
		}
		return
	}
	var liveOut []tuple.Tuple
	if !forwardAsIs && !fromCorr {
		liveOut = make([]tuple.Tuple, 0, len(ts))
	}
	healed := false
	for ti := range ts {
		t := &ts[ti] // read-only; indexing avoids a 48-byte copy per tuple
		switch {
		case t.IsData():
			if t.Type == tuple.Insertion && t.ID <= dedupBelow {
				im.DroppedDup++
				continue
			}
			im.Received++
			if t.Type == tuple.Tentative {
				im.Tentative++
				im.seenTentative = true
				// Tentative data ends the subscribe-replay grace:
				// any later undo on this connection is a real
				// correction sequence.
				im.seamless = false
			} else {
				im.lastStableID = t.ID
				im.seenTentative = false
			}
			if im.logging {
				im.log = tuple.Append(im.log, *t)
			}
			if !forwardAsIs && !fromCorr && !im.correcting {
				liveOut = append(liveOut, *t)
			}
		case t.Type == tuple.Boundary:
			if t.Src == 1 {
				// Tentative boundary (footnote 5): a heartbeat
				// bounding the tentative stream. Forward it
				// live, but it proves no stability: no heal,
				// no log entry, no stable watermark.
				if !forwardAsIs && !fromCorr && !im.correcting {
					liveOut = append(liveOut, *t)
				}
				im.lastBoundaryArrival = im.clk.Now()
				im.armStallTimer()
				continue
			}
			if im.logging {
				im.log = tuple.Append(im.log, *t)
			}
			if !forwardAsIs && !fromCorr && !im.correcting {
				liveOut = append(liveOut, *t)
			}
			im.touchBoundary(t.STime)
			// Boundary progress on the live connection means the
			// stream is stable and complete through this point: a
			// stalled gap was replayed (FIFO), or a diverged
			// upstream — which suppresses boundaries — is stable
			// again. Either way the input has healed.
			if !fromCorr && !im.correcting && im.failKind != FailNone {
				healed = true
			}
		case t.Type == tuple.Undo:
			if im.trace != nil {
				im.trace("undo", fmt.Sprintf("%s from %s: id %d (seamless %v)", im.stream, from, t.ID, im.seamless))
			}
			// A correction sequence begins on this connection.
			if !fromCorr {
				if im.seamless {
					// Subscribe-replay of a STABLE replica:
					// corrections flow straight into live
					// data; just patch the log (Fig. 8).
					im.seamless = false
				} else {
					im.correcting = true
				}
			}
			im.log = tuple.ApplyUndo(im.log, t.ID)
			im.seenTentative = false
		case t.Type == tuple.RecDone:
			if im.trace != nil {
				im.trace("rec-done", fmt.Sprintf("%s from %s", im.stream, from))
			}
			// Corrections complete: the stable stream is current.
			im.stripTentativeFromLog()
			if fromCorr {
				// The corrected stream takes over as live; the
				// controller unsubscribes the old tentative
				// feed (§4.4.3).
				im.live = from
				im.corr = ""
			}
			im.correcting = false
			if im.failKind != FailNone {
				healed = true
			}
		}
	}
	if forwardAsIs {
		liveOut = ts
	}
	if len(liveOut) > 0 && im.hooks.forward != nil {
		im.hooks.forward(im.stream, liveOut)
	}
	if healed {
		im.heal()
	}
}

// stripTentativeFromLog removes tentative entries: after a REC_DONE the
// upstream's stable stream covers them (the new subscription replays from
// the last stable tuple), so replaying them would duplicate data.
func (im *InputManager) stripTentativeFromLog() {
	kept := im.log[:0]
	for _, t := range im.log {
		if t.Type != tuple.Tentative {
			kept = append(kept, t)
		}
	}
	im.log = kept
}

// touchBoundary records boundary progress and re-arms stall detection.
func (im *InputManager) touchBoundary(stime int64) {
	if stime > im.lastBoundarySTime {
		im.lastBoundarySTime = stime
	}
	im.lastBoundaryArrival = im.clk.Now()
	im.armStallTimer()
}

func (im *InputManager) armStallTimer() {
	if im.stallTimeout <= 0 {
		return
	}
	if im.stallTimer != nil {
		im.stallTimer.Stop()
	}
	im.stallTimer = im.clk.After(im.stallTimeout, func() {
		im.stallTimer = nil
		if im.failKind == FailNone && !im.correcting {
			im.declareFailed(FailStall)
		}
	})
}

// Reset returns the manager to its initial state: crash recovery (§4.5)
// rebuilds a node from nothing, including its subscription bookkeeping.
func (im *InputManager) Reset() {
	if im.stallTimer != nil {
		im.stallTimer.Stop()
		im.stallTimer = nil
	}
	*im = InputManager{
		clk:               im.clk,
		stream:            im.stream,
		stallTimeout:      im.stallTimeout,
		hooks:             im.hooks,
		trace:             im.trace,
		lastBoundarySTime: -1,
		conns:             make(map[string]*connSeq),
	}
}

// StartMonitoring arms stall detection; the node calls it once the first
// subscription is active.
func (im *InputManager) StartMonitoring() {
	im.lastBoundaryArrival = im.clk.Now()
	im.armStallTimer()
}

func (im *InputManager) declareFailed(kind FailKind) {
	if im.failKind != FailNone {
		return
	}
	im.failKind = kind
	if im.hooks.onFailed != nil {
		im.hooks.onFailed(im.stream, kind)
	}
}

func (im *InputManager) heal() {
	if im.failKind == FailNone {
		return
	}
	im.failKind = FailNone
	im.armStallTimer()
	if im.hooks.onHealed != nil {
		im.hooks.onHealed(im.stream)
	}
}
