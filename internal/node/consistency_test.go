package node

import (
	"testing"

	"borealis/internal/diagram"
	"borealis/internal/netsim"
	"borealis/internal/operator"
	"borealis/internal/runtime"
	"borealis/internal/tuple"
)

// passDiagram builds the minimal DPC diagram: in → SUnion → SOutput → out.
func passDiagram(t *testing.T, in, out string) *diagram.Diagram {
	t.Helper()
	b := diagram.NewBuilder()
	b.Add(operator.NewSUnion("su", operator.SUnionConfig{
		Ports: 1, BucketSize: 100 * ms, Delay: 1 * sec,
	}))
	b.Add(operator.NewSOutput("so"))
	b.Connect("su", "so", 0)
	b.Input(in, "su", 0)
	b.Output(out, "so")
	d, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func mkNode(t *testing.T, sim *runtime.VirtualClock, net *netsim.Net, id string, peers []string) *Node {
	t.Helper()
	n, err := New(sim, net, passDiagram(t, "in", "out."+id), Config{
		ID:        id,
		Peers:     peers,
		Upstreams: map[string][]string{"in": {"up"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func TestStaggerProtocolPairTieBreak(t *testing.T) {
	// Two replicas want to reconcile simultaneously: exactly one gets a
	// grant; the other is rejected by the tie-break (lower id rejects
	// the higher id's request when it wants to reconcile itself...
	// i.e. the higher id grants, the lower id reconciles first).
	sim := runtime.NewVirtual()
	net := netsim.New(sim)
	net.Register("up", func(string, any) {})
	a := mkNode(t, sim, net, "a", []string{"b"})
	b := mkNode(t, sim, net, "b", []string{"a"})

	grants := map[string]int64{}
	a.cm.wantReconcile = true
	b.cm.wantReconcile = true
	// Intercept grant handling: record the time each node is granted.
	origA := a.cm
	_ = origA
	sim.After(0, func() {
		a.cm.tryRequest()
		b.cm.tryRequest()
	})
	// Run and observe via node callbacks: onReconcileGranted is a no-op
	// transition here (nodes are stable), so watch wantReconcile flags.
	sim.RunFor(1 * sec)
	_ = grants
	// Both must eventually have been granted (wantReconcile cleared).
	if a.cm.wantReconcile && b.cm.wantReconcile {
		t.Fatal("neither replica ever got a grant")
	}
}

func TestReconcileReqRejectedDuringStabilization(t *testing.T) {
	sim := runtime.NewVirtual()
	net := netsim.New(sim)
	net.Register("up", func(string, any) {})
	a := mkNode(t, sim, net, "a", []string{"b"})
	var resp *ReconcileResp
	net.Register("b", func(_ string, msg any) {
		if r, ok := msg.(ReconcileResp); ok {
			resp = &r
		}
	})
	a.state = StateStabilization
	net.Send("b", "a", ReconcileReq{})
	sim.Run()
	if resp == nil || resp.Granted {
		t.Fatalf("stabilizing node must reject: %+v", resp)
	}
}

func TestReconcileReqTieBreakByID(t *testing.T) {
	sim := runtime.NewVirtual()
	net := netsim.New(sim)
	net.Register("up", func(string, any) {})
	a := mkNode(t, sim, net, "a", []string{"b"})
	var resp *ReconcileResp
	net.Register("b", func(_ string, msg any) {
		if r, ok := msg.(ReconcileResp); ok {
			resp = &r
		}
	})
	// "a" wants to reconcile and has the lower id: it rejects "b".
	a.cm.wantReconcile = true
	net.Send("b", "a", ReconcileReq{})
	sim.Run()
	if resp == nil || resp.Granted {
		t.Fatalf("lower-id node wanting reconcile must reject: %+v", resp)
	}
	// But it grants once it no longer wants to reconcile.
	a.cm.wantReconcile = false
	resp = nil
	net.Send("b", "a", ReconcileReq{})
	sim.Run()
	if resp == nil || !resp.Granted {
		t.Fatalf("idle node must grant: %+v", resp)
	}
}

func TestGrantReleasedByReconcileDone(t *testing.T) {
	sim := runtime.NewVirtual()
	net := netsim.New(sim)
	net.Register("up", func(string, any) {})
	a := mkNode(t, sim, net, "a", []string{"b"})
	net.Register("b", func(string, any) {})
	net.Send("b", "a", ReconcileReq{})
	sim.RunFor(1 * sec) // short of the grant timeout
	if a.cm.grantedTo != "b" {
		t.Fatalf("grantedTo = %q", a.cm.grantedTo)
	}
	net.Send("b", "a", ReconcileDone{})
	sim.RunFor(1 * sec)
	if a.cm.grantedTo != "" {
		t.Fatal("ReconcileDone must release the promise")
	}
}

func TestKeepAliveTimeoutMarksReplicaFailed(t *testing.T) {
	sim := runtime.NewVirtual()
	net := netsim.New(sim)
	net.Register("up", func(string, any) {})
	n := mkNode(t, sim, net, "a", nil)
	n.Start()
	sim.RunFor(1 * sec)
	// "up" never answers keep-alives (it is a plain sink): the CM must
	// mark it FAILURE after the timeout.
	if got := n.cm.State("in", "up"); got != StateFailure {
		t.Fatalf("silent upstream state = %v, want FAILURE", got)
	}
}

func TestKeepAliveResponseTracksAdvertisedState(t *testing.T) {
	sim := runtime.NewVirtual()
	net := netsim.New(sim)
	// An upstream that advertises UP_FAILURE.
	net.Register("up", func(from string, msg any) {
		if _, ok := msg.(KeepAliveReq); ok {
			net.Send("up", from, KeepAliveResp{
				Node:    StateUpFailure,
				Streams: map[string]StreamState{"in": StateUpFailure},
			})
		}
	})
	n := mkNode(t, sim, net, "a", nil)
	n.Start()
	sim.RunFor(500 * ms)
	if got := n.cm.State("in", "up"); got != StateUpFailure {
		t.Fatalf("advertised state not tracked: %v", got)
	}
}

func TestNodeAdvertisesPerStreamStatesWhenFineGrained(t *testing.T) {
	// Two disjoint paths; a failure on in1 must leave out2 STABLE.
	sim := runtime.NewVirtual()
	net := netsim.New(sim)
	net.Register("up1", func(string, any) {})
	net.Register("up2", func(string, any) {})
	b := diagram.NewBuilder()
	b.Add(operator.NewSUnion("su1", operator.SUnionConfig{Ports: 1, BucketSize: 100 * ms, Delay: sec}))
	b.Add(operator.NewSUnion("su2", operator.SUnionConfig{Ports: 1, BucketSize: 100 * ms, Delay: sec}))
	b.Add(operator.NewSOutput("so1"))
	b.Add(operator.NewSOutput("so2"))
	b.Connect("su1", "so1", 0)
	b.Connect("su2", "so2", 0)
	b.Input("in1", "su1", 0)
	b.Input("in2", "su2", 0)
	b.Output("out1", "so1")
	b.Output("out2", "so2")
	d, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	n, err := New(sim, net, d, Config{
		ID:          "n",
		FineGrained: true,
		Upstreams:   map[string][]string{"in1": {"up1"}, "in2": {"up2"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	n.onInputFailed("in1", FailStall)
	states := n.streamStates()
	if states["out1"] != StateUpFailure {
		t.Fatalf("out1 = %v, want UP_FAILURE", states["out1"])
	}
	if states["out2"] != StateStable {
		t.Fatalf("out2 = %v, want STABLE (fine-grained §8.2)", states["out2"])
	}
	// Fine-grained policies: only su1 switches policy.
	if got := d.Op("su1").(*operator.SUnion).Policy(); got == operator.PolicyNone {
		t.Fatal("su1 must be in a failure policy")
	}
	if got := d.Op("su2").(*operator.SUnion).Policy(); got != operator.PolicyNone {
		t.Fatalf("su2 must stay in PolicyNone, got %v", got)
	}
}

func TestNodeChecksAndCountsFailedInputs(t *testing.T) {
	sim := runtime.NewVirtual()
	net := netsim.New(sim)
	net.Register("up", func(string, any) {})
	n := mkNode(t, sim, net, "a", nil)
	n.onInputFailed("in", FailStall)
	if n.State() != StateUpFailure {
		t.Fatalf("state = %v", n.State())
	}
	got := n.FailedInputs()
	if len(got) != 1 || got[0] != "in" {
		t.Fatalf("FailedInputs = %v", got)
	}
	if n.Checkpoints != 1 {
		t.Fatalf("Checkpoints = %d", n.Checkpoints)
	}
	// Heal without divergence: masked, straight back to stable.
	n.onInputHealed("in")
	if n.State() != StateStable {
		t.Fatalf("masked heal: state = %v", n.State())
	}
	if n.Reconciliations != 0 {
		t.Fatal("masked failure must not reconcile")
	}
}

func TestCrashedNodeIsSilent(t *testing.T) {
	sim := runtime.NewVirtual()
	net := netsim.New(sim)
	net.Register("up", func(string, any) {})
	n := mkNode(t, sim, net, "a", nil)
	var responded bool
	net.Register("probe", func(string, any) { responded = true })
	n.Crash()
	if !n.Down() {
		t.Fatal("Down() = false after crash")
	}
	net.Send("probe", "a", KeepAliveReq{})
	sim.Run()
	if responded {
		t.Fatal("crashed node must not respond")
	}
}

// scriptPeer registers a scripted replica peer on the netsim: it answers
// every keep-alive probe with the KeepAliveResp built by resp, and counts
// the ReconcileResp grants and rejects it receives.
func scriptPeer(net *netsim.Net, id string, resp func() KeepAliveResp, grants, rejects *int) {
	net.Register(id, func(from string, msg any) {
		switch m := msg.(type) {
		case KeepAliveReq:
			net.Send(id, from, resp())
		case ReconcileResp:
			if m.Granted {
				*grants++
			} else {
				*rejects++
			}
		}
	})
}

// TestGrantRevokedWhenGrantedPeerStalls is the node-level pin of the
// tentpole: a granted peer that answers every keep-alive but whose
// stabilization-progress token never advances (its data path is blocked)
// must lose the grant within the stall window — not the 120s GrantTimeout
// — and a fresh request afterwards must be granted again.
func TestGrantRevokedWhenGrantedPeerStalls(t *testing.T) {
	sim := runtime.NewVirtual()
	net := netsim.New(sim)
	net.Register("up", func(string, any) {})
	a := mkNode(t, sim, net, "a", []string{"b"})
	var grants, rejects int
	scriptPeer(net, "b", func() KeepAliveResp {
		return KeepAliveResp{Node: StateUpFailure, Progress: map[string]uint64{"in": 5}}
	}, &grants, &rejects)
	a.Start()
	net.Send("b", "a", ReconcileReq{})
	// One stall window (1s by default) plus a few probe periods must
	// suffice: revocation within 2s bounds the starvation far below the
	// 120s backstop.
	sim.RunFor(2 * sec)
	if grants != 1 {
		t.Fatalf("grants = %d, want 1", grants)
	}
	if a.cm.GrantRevokedStalled != 1 || a.cm.grantedTo != "" {
		t.Fatalf("stalled peer must lose the grant within the stall window: stalled=%d grantedTo=%q",
			a.cm.GrantRevokedStalled, a.cm.grantedTo)
	}
	if a.cm.GrantTimeouts != 0 || a.cm.GrantRevokedSilent != 0 || a.cm.GrantRevokedDone != 0 {
		t.Fatalf("wrong revocation cause: %+v", a.cm)
	}
	// Revocation is not a ban: the peer re-requests and is granted again.
	net.Send("b", "a", ReconcileReq{})
	sim.RunFor(500 * ms)
	if grants != 2 || a.cm.grantedTo != "b" {
		t.Fatalf("re-request after revocation must be granted: grants=%d grantedTo=%q", grants, a.cm.grantedTo)
	}
}

// TestGrantRevokedWhenReconcileDoneLost covers the third probe: a peer
// that finished stabilizing but whose ReconcileDone was eaten by a
// partition keeps reporting STABLE — and keeps making data progress, so
// the stall probe never fires. Observing STABLE for a whole stall window
// revokes the promise.
func TestGrantRevokedWhenReconcileDoneLost(t *testing.T) {
	sim := runtime.NewVirtual()
	net := netsim.New(sim)
	net.Register("up", func(string, any) {})
	a := mkNode(t, sim, net, "a", []string{"b"})
	var grants, rejects int
	var id uint64
	scriptPeer(net, "b", func() KeepAliveResp {
		id++ // data progress continues after stabilization finished
		return KeepAliveResp{Node: StateStable, Progress: map[string]uint64{"in": id}}
	}, &grants, &rejects)
	a.Start()
	net.Send("b", "a", ReconcileReq{})
	sim.RunFor(2 * sec)
	if a.cm.GrantRevokedDone != 1 || a.cm.grantedTo != "" {
		t.Fatalf("STABLE-without-done peer must lose the grant: done=%d grantedTo=%q",
			a.cm.GrantRevokedDone, a.cm.grantedTo)
	}
	if a.cm.GrantRevokedStalled != 0 || a.cm.GrantTimeouts != 0 {
		t.Fatalf("wrong revocation cause: stalled=%d timeouts=%d", a.cm.GrantRevokedStalled, a.cm.GrantTimeouts)
	}
}

// TestGrantHeldWhileStabilizationProgresses is the negative control: a
// granted peer advancing its progress token in STABILIZATION keeps the
// promise well past the stall window, and only its ReconcileDone releases
// it.
func TestGrantHeldWhileStabilizationProgresses(t *testing.T) {
	sim := runtime.NewVirtual()
	net := netsim.New(sim)
	net.Register("up", func(string, any) {})
	a := mkNode(t, sim, net, "a", []string{"b"})
	var grants, rejects int
	var id uint64
	scriptPeer(net, "b", func() KeepAliveResp {
		id++
		return KeepAliveResp{Node: StateStabilization, Progress: map[string]uint64{"in": id}}
	}, &grants, &rejects)
	a.Start()
	net.Send("b", "a", ReconcileReq{})
	sim.RunFor(3 * sec) // three stall windows
	if a.cm.grantedTo != "b" {
		t.Fatalf("progressing peer must keep the grant, grantedTo=%q", a.cm.grantedTo)
	}
	if n := a.cm.GrantRevokedStalled + a.cm.GrantRevokedDone + a.cm.GrantRevokedSilent + a.cm.GrantTimeouts; n != 0 {
		t.Fatalf("progressing peer must not be revoked (%d revocations)", n)
	}
	net.Send("b", "a", ReconcileDone{})
	sim.RunFor(sec)
	if a.cm.grantedTo != "" {
		t.Fatal("ReconcileDone must release the promise")
	}
}

// stickyClock wraps a Clock so Timer.Stop never cancels: it models the
// WallClock race where a stopped timer's callback is already in flight and
// fires anyway (virtual time makes the race deterministic).
type stickyClock struct{ runtime.Clock }

type stickyTimer struct{ runtime.Timer }

func (stickyTimer) Stop() bool { return false }

func (c stickyClock) After(d int64, fn func()) runtime.Timer {
	return stickyTimer{c.Clock.After(d, fn)}
}

// TestGrantTimeoutIgnoresStaleTimer is the regression test for the
// grant-timer identity bug: a grant is released by ReconcileDone and
// re-granted to the same peer, but the first grant's GrantTimeout callback
// — whose Stop raced its firing — still runs. It must recognize it is
// stale (timer identity, not just grantedTo, which matches) and leave the
// fresh grant and its timer alone.
func TestGrantTimeoutIgnoresStaleTimer(t *testing.T) {
	sim := runtime.NewVirtual()
	net := netsim.New(sim)
	net.Register("up", func(string, any) {})
	n, err := New(stickyClock{sim}, net, passDiagram(t, "in", "out.a"), Config{
		ID:        "a",
		Peers:     []string{"b"},
		Upstreams: map[string][]string{"in": {"up"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	net.Register("b", func(string, any) {})
	net.Send("b", "a", ReconcileReq{})
	sim.RunFor(1 * sec) // granted; stale timer armed for t≈120s
	if n.cm.grantedTo != "b" {
		t.Fatalf("grantedTo = %q", n.cm.grantedTo)
	}
	net.Send("b", "a", ReconcileDone{})
	sim.RunFor(1 * sec) // released; the sticky Stop leaves the timer live
	net.Send("b", "a", ReconcileReq{})
	sim.RunFor(1 * sec) // re-granted; fresh timer armed for t≈122s
	if n.cm.grantedTo != "b" {
		t.Fatalf("re-grant failed, grantedTo = %q", n.cm.grantedTo)
	}
	sim.RunFor(119 * sec) // past the stale timer's deadline
	if n.cm.grantedTo != "b" || n.cm.GrantTimeouts != 0 {
		t.Fatalf("stale GrantTimeout callback clobbered the fresh grant: grantedTo=%q timeouts=%d",
			n.cm.grantedTo, n.cm.GrantTimeouts)
	}
	sim.RunFor(3 * sec) // past the fresh timer's deadline: it must still work
	if n.cm.grantedTo != "" || n.cm.GrantTimeouts != 1 {
		t.Fatalf("fresh GrantTimeout must fire: grantedTo=%q timeouts=%d", n.cm.grantedTo, n.cm.GrantTimeouts)
	}
}

func TestUnionTypesCompile(t *testing.T) {
	// Compile-time sanity for message types used across packages.
	var _ any = DataMsg{Stream: "s", Tuples: []tuple.Tuple{}}
	var _ any = SubscribeMsg{}
	var _ any = AckMsg{}
}
