package node

import (
	"testing"

	"borealis/internal/diagram"
	"borealis/internal/netsim"
	"borealis/internal/operator"
	"borealis/internal/runtime"
	"borealis/internal/tuple"
)

// passDiagram builds the minimal DPC diagram: in → SUnion → SOutput → out.
func passDiagram(t *testing.T, in, out string) *diagram.Diagram {
	t.Helper()
	b := diagram.NewBuilder()
	b.Add(operator.NewSUnion("su", operator.SUnionConfig{
		Ports: 1, BucketSize: 100 * ms, Delay: 1 * sec,
	}))
	b.Add(operator.NewSOutput("so"))
	b.Connect("su", "so", 0)
	b.Input(in, "su", 0)
	b.Output(out, "so")
	d, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func mkNode(t *testing.T, sim *runtime.VirtualClock, net *netsim.Net, id string, peers []string) *Node {
	t.Helper()
	n, err := New(sim, net, passDiagram(t, "in", "out."+id), Config{
		ID:        id,
		Peers:     peers,
		Upstreams: map[string][]string{"in": {"up"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func TestStaggerProtocolPairTieBreak(t *testing.T) {
	// Two replicas want to reconcile simultaneously: exactly one gets a
	// grant; the other is rejected by the tie-break (lower id rejects
	// the higher id's request when it wants to reconcile itself...
	// i.e. the higher id grants, the lower id reconciles first).
	sim := runtime.NewVirtual()
	net := netsim.New(sim)
	net.Register("up", func(string, any) {})
	a := mkNode(t, sim, net, "a", []string{"b"})
	b := mkNode(t, sim, net, "b", []string{"a"})

	grants := map[string]int64{}
	a.cm.wantReconcile = true
	b.cm.wantReconcile = true
	// Intercept grant handling: record the time each node is granted.
	origA := a.cm
	_ = origA
	sim.After(0, func() {
		a.cm.tryRequest()
		b.cm.tryRequest()
	})
	// Run and observe via node callbacks: onReconcileGranted is a no-op
	// transition here (nodes are stable), so watch wantReconcile flags.
	sim.RunFor(1 * sec)
	_ = grants
	// Both must eventually have been granted (wantReconcile cleared).
	if a.cm.wantReconcile && b.cm.wantReconcile {
		t.Fatal("neither replica ever got a grant")
	}
}

func TestReconcileReqRejectedDuringStabilization(t *testing.T) {
	sim := runtime.NewVirtual()
	net := netsim.New(sim)
	net.Register("up", func(string, any) {})
	a := mkNode(t, sim, net, "a", []string{"b"})
	var resp *ReconcileResp
	net.Register("b", func(_ string, msg any) {
		if r, ok := msg.(ReconcileResp); ok {
			resp = &r
		}
	})
	a.state = StateStabilization
	net.Send("b", "a", ReconcileReq{})
	sim.Run()
	if resp == nil || resp.Granted {
		t.Fatalf("stabilizing node must reject: %+v", resp)
	}
}

func TestReconcileReqTieBreakByID(t *testing.T) {
	sim := runtime.NewVirtual()
	net := netsim.New(sim)
	net.Register("up", func(string, any) {})
	a := mkNode(t, sim, net, "a", []string{"b"})
	var resp *ReconcileResp
	net.Register("b", func(_ string, msg any) {
		if r, ok := msg.(ReconcileResp); ok {
			resp = &r
		}
	})
	// "a" wants to reconcile and has the lower id: it rejects "b".
	a.cm.wantReconcile = true
	net.Send("b", "a", ReconcileReq{})
	sim.Run()
	if resp == nil || resp.Granted {
		t.Fatalf("lower-id node wanting reconcile must reject: %+v", resp)
	}
	// But it grants once it no longer wants to reconcile.
	a.cm.wantReconcile = false
	resp = nil
	net.Send("b", "a", ReconcileReq{})
	sim.Run()
	if resp == nil || !resp.Granted {
		t.Fatalf("idle node must grant: %+v", resp)
	}
}

func TestGrantReleasedByReconcileDone(t *testing.T) {
	sim := runtime.NewVirtual()
	net := netsim.New(sim)
	net.Register("up", func(string, any) {})
	a := mkNode(t, sim, net, "a", []string{"b"})
	net.Register("b", func(string, any) {})
	net.Send("b", "a", ReconcileReq{})
	sim.RunFor(1 * sec) // short of the grant timeout
	if a.cm.grantedTo != "b" {
		t.Fatalf("grantedTo = %q", a.cm.grantedTo)
	}
	net.Send("b", "a", ReconcileDone{})
	sim.RunFor(1 * sec)
	if a.cm.grantedTo != "" {
		t.Fatal("ReconcileDone must release the promise")
	}
}

func TestKeepAliveTimeoutMarksReplicaFailed(t *testing.T) {
	sim := runtime.NewVirtual()
	net := netsim.New(sim)
	net.Register("up", func(string, any) {})
	n := mkNode(t, sim, net, "a", nil)
	n.Start()
	sim.RunFor(1 * sec)
	// "up" never answers keep-alives (it is a plain sink): the CM must
	// mark it FAILURE after the timeout.
	if got := n.cm.State("in", "up"); got != StateFailure {
		t.Fatalf("silent upstream state = %v, want FAILURE", got)
	}
}

func TestKeepAliveResponseTracksAdvertisedState(t *testing.T) {
	sim := runtime.NewVirtual()
	net := netsim.New(sim)
	// An upstream that advertises UP_FAILURE.
	net.Register("up", func(from string, msg any) {
		if _, ok := msg.(KeepAliveReq); ok {
			net.Send("up", from, KeepAliveResp{
				Node:    StateUpFailure,
				Streams: map[string]StreamState{"in": StateUpFailure},
			})
		}
	})
	n := mkNode(t, sim, net, "a", nil)
	n.Start()
	sim.RunFor(500 * ms)
	if got := n.cm.State("in", "up"); got != StateUpFailure {
		t.Fatalf("advertised state not tracked: %v", got)
	}
}

func TestNodeAdvertisesPerStreamStatesWhenFineGrained(t *testing.T) {
	// Two disjoint paths; a failure on in1 must leave out2 STABLE.
	sim := runtime.NewVirtual()
	net := netsim.New(sim)
	net.Register("up1", func(string, any) {})
	net.Register("up2", func(string, any) {})
	b := diagram.NewBuilder()
	b.Add(operator.NewSUnion("su1", operator.SUnionConfig{Ports: 1, BucketSize: 100 * ms, Delay: sec}))
	b.Add(operator.NewSUnion("su2", operator.SUnionConfig{Ports: 1, BucketSize: 100 * ms, Delay: sec}))
	b.Add(operator.NewSOutput("so1"))
	b.Add(operator.NewSOutput("so2"))
	b.Connect("su1", "so1", 0)
	b.Connect("su2", "so2", 0)
	b.Input("in1", "su1", 0)
	b.Input("in2", "su2", 0)
	b.Output("out1", "so1")
	b.Output("out2", "so2")
	d, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	n, err := New(sim, net, d, Config{
		ID:          "n",
		FineGrained: true,
		Upstreams:   map[string][]string{"in1": {"up1"}, "in2": {"up2"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	n.onInputFailed("in1", FailStall)
	states := n.streamStates()
	if states["out1"] != StateUpFailure {
		t.Fatalf("out1 = %v, want UP_FAILURE", states["out1"])
	}
	if states["out2"] != StateStable {
		t.Fatalf("out2 = %v, want STABLE (fine-grained §8.2)", states["out2"])
	}
	// Fine-grained policies: only su1 switches policy.
	if got := d.Op("su1").(*operator.SUnion).Policy(); got == operator.PolicyNone {
		t.Fatal("su1 must be in a failure policy")
	}
	if got := d.Op("su2").(*operator.SUnion).Policy(); got != operator.PolicyNone {
		t.Fatalf("su2 must stay in PolicyNone, got %v", got)
	}
}

func TestNodeChecksAndCountsFailedInputs(t *testing.T) {
	sim := runtime.NewVirtual()
	net := netsim.New(sim)
	net.Register("up", func(string, any) {})
	n := mkNode(t, sim, net, "a", nil)
	n.onInputFailed("in", FailStall)
	if n.State() != StateUpFailure {
		t.Fatalf("state = %v", n.State())
	}
	got := n.FailedInputs()
	if len(got) != 1 || got[0] != "in" {
		t.Fatalf("FailedInputs = %v", got)
	}
	if n.Checkpoints != 1 {
		t.Fatalf("Checkpoints = %d", n.Checkpoints)
	}
	// Heal without divergence: masked, straight back to stable.
	n.onInputHealed("in")
	if n.State() != StateStable {
		t.Fatalf("masked heal: state = %v", n.State())
	}
	if n.Reconciliations != 0 {
		t.Fatal("masked failure must not reconcile")
	}
}

func TestCrashedNodeIsSilent(t *testing.T) {
	sim := runtime.NewVirtual()
	net := netsim.New(sim)
	net.Register("up", func(string, any) {})
	n := mkNode(t, sim, net, "a", nil)
	var responded bool
	net.Register("probe", func(string, any) { responded = true })
	n.Crash()
	if !n.Down() {
		t.Fatal("Down() = false after crash")
	}
	net.Send("probe", "a", KeepAliveReq{})
	sim.Run()
	if responded {
		t.Fatal("crashed node must not respond")
	}
}

func TestUnionTypesCompile(t *testing.T) {
	// Compile-time sanity for message types used across packages.
	var _ any = DataMsg{Stream: "s", Tuples: []tuple.Tuple{}}
	var _ any = SubscribeMsg{}
	var _ any = AckMsg{}
}
