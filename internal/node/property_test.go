package node

import (
	"testing"
	"testing/quick"

	"borealis/internal/netsim"
	"borealis/internal/runtime"
	"borealis/internal/tuple"
)

// Property: the connection-sequence admission control accepts exactly the
// gap-free prefix of each subscription epoch, and any gap triggers exactly
// one broken-connection notification until a fresh subscription arrives.
func TestQuickConnSeqAdmission(t *testing.T) {
	f := func(seqs []uint8) bool {
		sim := runtime.NewVirtual()
		broken := 0
		im := newInputManager(sim, "s", 0, inputHooks{
			onBroken: func(string, string) { broken++ },
		})
		im.SetConnections("up", "", true)
		next := uint64(1)
		established := false
		inEpoch := false
		wantBroken := 0
		for _, raw := range seqs {
			seq := uint64(raw%8) + 1 // small space to exercise collisions
			accepted := im.admit("up", seq)
			switch {
			case seq == 1:
				if !accepted {
					return false // fresh subscription always accepted
				}
				next = 2
				established = true
				inEpoch = true
			case !established:
				// Pre-subscription leftovers: dropped silently,
				// no broken-connection notification.
				if accepted {
					return false
				}
			case !inEpoch:
				if accepted {
					return false // broken epoch must drop everything
				}
			case seq == next:
				if !accepted {
					return false
				}
				next++
			default:
				if accepted {
					return false // gap must not be accepted
				}
				inEpoch = false
				wantBroken++
			}
		}
		return broken == wantBroken
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: after any mix of publishes and undos, an OutputBuffer replay
// from id 0 equals its live feed as observed by a subscriber connected from
// the start (with its own undo-compaction applied) — the Fig. 8 guarantee
// that late subscribers see the corrected stream.
func TestQuickOutputBufferReplayEqualsCompactedLive(t *testing.T) {
	f := func(ops []uint8) bool {
		sim := runtime.NewVirtual()
		net := netsim.New(sim)
		var live []tuple.Tuple
		net.Register("live", func(_ string, msg any) {
			live = append(live, msg.(DataMsg).Tuples...)
		})
		var late []tuple.Tuple
		net.Register("late", func(_ string, msg any) {
			late = append(late, msg.(DataMsg).Tuples...)
		})
		net.Register("up", func(string, any) {})
		ob := NewOutputBuffer(sim, net, "up", "s", BufferUnbounded, 0, nil)
		ob.Subscribe("live", SubscribeMsg{Stream: "s"})
		id := uint64(0)
		lastStable := uint64(0)
		for _, op := range ops {
			switch op % 4 {
			case 0, 1:
				id++
				lastStable = id
				ob.Publish(tuple.Tuple{Type: tuple.Insertion, ID: id, STime: int64(id), Data: []int64{int64(id)}})
			case 2:
				id++
				ob.Publish(tuple.Tuple{Type: tuple.Tentative, ID: id, STime: int64(id), Data: []int64{int64(id)}})
			case 3:
				ob.Publish(tuple.NewUndo(lastStable))
			}
		}
		sim.Run()
		ob.Subscribe("late", SubscribeMsg{Stream: "s"})
		sim.Run()
		// Compact the live view by applying undos as they arrived.
		var compacted []tuple.Tuple
		for _, tp := range live {
			if tp.Type == tuple.Undo {
				compacted = tuple.ApplyUndo(compacted, tp.ID)
			} else if tp.IsData() {
				compacted = append(compacted, tp)
			}
		}
		var lateData []tuple.Tuple
		for _, tp := range late {
			if tp.IsData() {
				lateData = append(lateData, tp)
			}
		}
		if len(compacted) != len(lateData) {
			return false
		}
		for i := range compacted {
			if !tuple.Equal(compacted[i], lateData[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: buffer truncation by acks never removes a tuple any expected
// subscriber might still request (everything after the minimum ack stays).
func TestQuickAckTruncationSafety(t *testing.T) {
	f := func(acksA, acksB []uint8) bool {
		sim := runtime.NewVirtual()
		net := netsim.New(sim)
		net.Register("up", func(string, any) {})
		net.Register("a", func(string, any) {})
		net.Register("b", func(string, any) {})
		ob := NewOutputBuffer(sim, net, "up", "s", BufferUnbounded, 0, []string{"a", "b"})
		const n = 40
		for i := uint64(1); i <= n; i++ {
			ob.Publish(tuple.Tuple{Type: tuple.Insertion, ID: i, STime: int64(i)})
		}
		minAck := uint64(0)
		apply := func(from string, acks []uint8) {
			for _, a := range acks {
				ob.Ack(from, uint64(a)%n+1)
			}
		}
		apply("a", acksA)
		apply("b", acksB)
		// Recompute the floor the buffer must respect.
		maxA, maxB := uint64(0), uint64(0)
		for _, a := range acksA {
			if v := uint64(a)%n + 1; v > maxA {
				maxA = v
			}
		}
		for _, a := range acksB {
			if v := uint64(a)%n + 1; v > maxB {
				maxB = v
			}
		}
		minAck = maxA
		if maxB < minAck {
			minAck = maxB
		}
		// Every tuple after minAck must still be replayable.
		got := ob.after(minAck)
		want := int(n - minAck)
		return len(got) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
