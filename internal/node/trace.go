package node

import "fmt"

// TraceFn receives one protocol trace event: the clock instant in µs, the
// replica endpoint the event happened on, a short event name, and a
// human-readable detail. Tracing is a supported debugging surface — the
// fuzzer's findings are diagnosed from these streams — so event names are
// stable: state, input-failed, input-healed, checkpoint, discard-epoch,
// reconcile-ask, reconcile-self-grant, reconcile-grant, reconcile-reject,
// reconcile-granted, reconcile-rejected, reconcile-released, grant-revoked,
// grant-timeout, suspect, unsuspect, subscribe, unsubscribe, switch,
// conn-broken, undo, rec-done, crash, restart, recovered.
type TraceFn func(atUS int64, replica, event, detail string)

// SetTrace installs a protocol event tracer on the node and its input
// managers. A nil fn disables tracing (the default); the hook is read on
// protocol transitions only, never on the per-tuple data path.
func (n *Node) SetTrace(fn TraceFn) {
	n.trace = fn
	for _, stream := range n.inputOrder {
		n.inputs[stream].trace = func(event, detail string) { n.tracef(event, "%s", detail) }
	}
	if fn == nil {
		for _, stream := range n.inputOrder {
			n.inputs[stream].trace = nil
		}
	}
}

// tracef emits one trace event when tracing is enabled.
func (n *Node) tracef(event, format string, args ...any) {
	if n.trace == nil {
		return
	}
	n.trace(n.clk.Now(), n.cfg.ID, event, fmt.Sprintf(format, args...))
}

// setState transitions the Fig. 5 state machine, tracing the edge.
func (n *Node) setState(s StreamState, why string) {
	if n.trace != nil && n.state != s {
		n.tracef("state", "%s -> %s (%s)", n.state, s, why)
	}
	n.state = s
}
