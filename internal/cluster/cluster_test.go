package cluster

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"testing"

	"borealis/internal/scenario"
)

// testSpec is a small source → replicated node → client chain. With a
// crash fault on n1's primary when faulted is true.
func testSpec(faulted bool) *scenario.Spec {
	two := 2
	s := &scenario.Spec{
		Name:              "cluster-test",
		Seed:              3,
		DurationS:         3,
		VerifyConsistency: true,
		Sources:           []scenario.SourceSpec{{Name: "s", Rate: 100}},
		Nodes:             []scenario.NodeSpec{{Name: "n1", Inputs: []string{"s"}, Replicas: &two}},
		Client:            scenario.ClientSpec{Input: "n1", DelayMS: 50},
	}
	s.Defaults.DelayS = 1
	s.Defaults.Replicas = 1
	if faulted {
		s.Faults = []scenario.FaultSpec{{Kind: "crash", Node: "n1", Replica: 0, AtS: 1, DurationS: 1}}
	}
	if err := s.Validate(); err != nil {
		panic(err)
	}
	return s
}

func TestPlanDedicatesFaultTargets(t *testing.T) {
	s := testSpec(true)
	parts, err := Plan(s, 2)
	if err != nil {
		t.Fatal(err)
	}
	if got := strings.Join(parts[1].Owned, ","); got != "n1a" || parts[1].Target != "n1a" {
		t.Fatalf("w1 should host exactly the fault target n1a, got owned=%q target=%q", got, parts[1].Target)
	}
	if got := strings.Join(parts[0].Owned, ","); got != "s,n1b,client" {
		t.Fatalf("w0 should host the rest in spec order, got %q", got)
	}
	if _, err := Plan(s, 1); err == nil {
		t.Fatal("one worker cannot host a fault target plus the rest; Plan should refuse")
	}
}

func TestFaultActionsKillRespawn(t *testing.T) {
	s := testSpec(true)
	parts, err := Plan(s, 2)
	if err != nil {
		t.Fatal(err)
	}
	b := &boss{opts: Options{FaultMode: FaultModeKill}, spec: s, parts: parts}
	acts, expect := b.faultActions(scenario.DurationUS(s, false))
	want := []action{
		{atUS: 1_000_000, part: 1, what: "kill"},
		{atUS: 2_000_000, part: 1, what: "respawn"},
	}
	if len(acts) != len(want) {
		t.Fatalf("got %d actions, want %d: %+v", len(acts), len(want), acts)
	}
	for i := range want {
		if acts[i] != want[i] {
			t.Fatalf("action %d: got %+v want %+v", i, acts[i], want[i])
		}
	}
	if !expect[0] || !expect[1] {
		t.Fatalf("both partitions end alive and must report, got %v", expect)
	}

	b.opts.FaultMode = FaultModeStop
	acts, _ = b.faultActions(scenario.DurationUS(s, false))
	if acts[0].what != "stop" || acts[1].what != "cont" {
		t.Fatalf("stop mode should translate crash to stop/cont, got %+v", acts)
	}
}

// TestTwoWorkerConsistency runs a real two-worker cluster in-process: two
// RunWorker instances on goroutines (each with its own wall clock and TCP
// transport on localhost) and an inline boss speaking the stdio protocol
// over pipes. The merged report must pass the Definition 1 audit against
// the virtual-clock reference run.
func TestTwoWorkerConsistency(t *testing.T) {
	s := testSpec(false)
	parts, err := Plan(s, 2)
	if err != nil {
		t.Fatal(err)
	}

	type end struct {
		in   *io.PipeWriter
		out  *bufio.Scanner
		done chan error
	}
	ends := make([]end, len(parts))
	for i, part := range parts {
		inR, inW := io.Pipe()
		outR, outW := io.Pipe()
		cfg := WorkerConfig{
			Spec:   s,
			Name:   part.Name,
			Listen: "127.0.0.1:0",
			Owned:  part.Owned,
			Speed:  50,
		}
		done := make(chan error, 1)
		go func() {
			err := RunWorker(cfg, inR, outW)
			outW.CloseWithError(err)
			done <- err
		}()
		sc := bufio.NewScanner(outR)
		sc.Buffer(make([]byte, 0, 64*1024), 64<<20)
		ends[i] = end{in: inW, out: sc, done: done}
	}

	readLine := func(i int, prefix string) string {
		e := &ends[i]
		for e.out.Scan() {
			if line := e.out.Text(); strings.HasPrefix(line, prefix) {
				return strings.TrimPrefix(line, prefix)
			}
		}
		t.Fatalf("worker %d: stream ended before %q line: %v", i, prefix, e.out.Err())
		return ""
	}

	routes := make([]string, 0, len(parts))
	for i, part := range parts {
		addr := strings.TrimSpace(readLine(i, "READY "))
		for _, ep := range part.Owned {
			routes = append(routes, ep+"="+addr)
		}
	}
	for i := range parts {
		fmt.Fprintf(ends[i].in, "ROUTES %s\nGO\n", strings.Join(routes, ","))
	}

	frags := make([]*scenario.WorkerReport, len(parts))
	for i := range parts {
		var wr scenario.WorkerReport
		if err := json.Unmarshal([]byte(readLine(i, "REPORT ")), &wr); err != nil {
			t.Fatalf("worker %d: bad report: %v", i, err)
		}
		frags[i] = &wr
		if err := <-ends[i].done; err != nil {
			t.Fatalf("worker %d: %v", i, err)
		}
	}

	rep := scenario.MergeClusterReports(s, false, frags)
	var cli *scenario.WorkerReport
	for _, f := range frags {
		if f.Client != nil {
			cli = f
		}
	}
	if cli == nil {
		t.Fatal("no fragment carries the client")
	}
	ref, err := scenario.ClusterReference(s, false)
	if err != nil {
		t.Fatal(err)
	}
	scenario.AuditCluster(rep, cli.StableView, ref)
	if rep.Consistency == nil || !rep.Consistency.OK {
		t.Fatalf("Definition 1 audit failed: %+v", rep.Consistency)
	}
	if rep.Consistency.Compared == 0 {
		t.Fatal("audit compared zero stable tuples — the cluster moved no data")
	}
	if rep.Client.NewTuples == 0 {
		t.Fatalf("merged report lost the client fragment: %+v", rep.Client)
	}
}
