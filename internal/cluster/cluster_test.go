package cluster

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"testing"
	"time"

	"borealis/internal/scenario"
)

// testSpec is a small source → replicated node → client chain. With a
// crash fault on n1's primary when faulted is true.
func testSpec(faulted bool) *scenario.Spec {
	two := 2
	s := &scenario.Spec{
		Name:              "cluster-test",
		Seed:              3,
		DurationS:         3,
		VerifyConsistency: true,
		Sources:           []scenario.SourceSpec{{Name: "s", Rate: 100}},
		Nodes:             []scenario.NodeSpec{{Name: "n1", Inputs: []string{"s"}, Replicas: &two}},
		Client:            scenario.ClientSpec{Input: "n1", DelayMS: 50},
	}
	s.Defaults.DelayS = 1
	s.Defaults.Replicas = 1
	if faulted {
		s.Faults = []scenario.FaultSpec{{Kind: "crash", Node: "n1", Replica: 0, AtS: 1, DurationS: 1}}
	}
	if err := s.Validate(); err != nil {
		panic(err)
	}
	return s
}

func TestPlanDedicatesFaultTargets(t *testing.T) {
	s := testSpec(true)
	parts, err := Plan(s, 2)
	if err != nil {
		t.Fatal(err)
	}
	if got := strings.Join(parts[1].Owned, ","); got != "n1a" || parts[1].Target != "n1a" {
		t.Fatalf("w1 should host exactly the fault target n1a, got owned=%q target=%q", got, parts[1].Target)
	}
	if got := strings.Join(parts[0].Owned, ","); got != "s,n1b,client" {
		t.Fatalf("w0 should host the rest in spec order, got %q", got)
	}
	if _, err := Plan(s, 1); err == nil {
		t.Fatal("one worker cannot host a fault target plus the rest; Plan should refuse")
	}
}

func TestFaultActionsKillRespawn(t *testing.T) {
	s := testSpec(true)
	parts, err := Plan(s, 2)
	if err != nil {
		t.Fatal(err)
	}
	b := &boss{opts: Options{FaultMode: FaultModeKill}, spec: s, parts: parts}
	acts, expect, err := b.faultActions(scenario.DurationUS(s, false))
	if err != nil {
		t.Fatal(err)
	}
	want := []action{
		{atUS: 1_000_000, part: 1, what: "kill"},
		{atUS: 2_000_000, part: 1, what: "respawn"},
	}
	if len(acts) != len(want) {
		t.Fatalf("got %d actions, want %d: %+v", len(acts), len(want), acts)
	}
	for i := range want {
		if acts[i] != want[i] {
			t.Fatalf("action %d: got %+v want %+v", i, acts[i], want[i])
		}
	}
	if !expect[0] || !expect[1] {
		t.Fatalf("both partitions end alive and must report, got %v", expect)
	}

	b.opts.FaultMode = FaultModeStop
	acts, _, err = b.faultActions(scenario.DurationUS(s, false))
	if err != nil {
		t.Fatal(err)
	}
	if acts[0].what != "stop" || acts[1].what != "cont" {
		t.Fatalf("stop mode should translate crash to stop/cont, got %+v", acts)
	}
}

// TestFaultActionsPartition checks the boss's translation of a spec
// partition fault into timed LINK broadcasts: every (from,to) endpoint pair
// expanded, both directions blocked at the fault instant and unblocked at
// the heal.
func TestFaultActionsPartition(t *testing.T) {
	s := testSpec(false)
	s.Faults = []scenario.FaultSpec{{Kind: "partition", From: "s", To: "n1", AtS: 1, DurationS: 1}}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	parts, err := Plan(s, 2)
	if err != nil {
		t.Fatal(err)
	}
	b := &boss{opts: Options{FaultMode: FaultModeKill}, spec: s, parts: parts}
	acts, expect, err := b.faultActions(scenario.DurationUS(s, false))
	if err != nil {
		t.Fatal(err)
	}
	want := []action{
		{atUS: 1_000_000, part: -1, what: "link", line: "LINK block s n1a\nLINK block n1a s\nLINK block s n1b\nLINK block n1b s"},
		{atUS: 2_000_000, part: -1, what: "link", line: "LINK unblock s n1a\nLINK unblock n1a s\nLINK unblock s n1b\nLINK unblock n1b s"},
	}
	if len(acts) != len(want) {
		t.Fatalf("got %d actions, want %d: %+v", len(acts), len(want), acts)
	}
	for i := range want {
		if acts[i] != want[i] {
			t.Fatalf("action %d:\n got %+v\nwant %+v", i, acts[i], want[i])
		}
	}
	if !expect[0] || !expect[1] {
		t.Fatalf("link faults kill no workers; both must report, got %v", expect)
	}
}

// TestTwoWorkerConsistency runs a real two-worker cluster in-process: two
// RunWorker instances on goroutines (each with its own wall clock and TCP
// transport on localhost) and an inline boss speaking the stdio protocol
// over pipes. The merged report must pass the Definition 1 audit against
// the virtual-clock reference run.
func TestTwoWorkerConsistency(t *testing.T) {
	s := testSpec(false)
	parts, err := Plan(s, 2)
	if err != nil {
		t.Fatal(err)
	}

	type end struct {
		in   *io.PipeWriter
		out  *bufio.Scanner
		done chan error
	}
	ends := make([]end, len(parts))
	for i, part := range parts {
		inR, inW := io.Pipe()
		outR, outW := io.Pipe()
		cfg := WorkerConfig{
			Spec:   s,
			Name:   part.Name,
			Listen: "127.0.0.1:0",
			Owned:  part.Owned,
			Speed:  50,
		}
		done := make(chan error, 1)
		go func() {
			err := RunWorker(cfg, inR, outW)
			outW.CloseWithError(err)
			done <- err
		}()
		sc := bufio.NewScanner(outR)
		sc.Buffer(make([]byte, 0, 64*1024), 64<<20)
		ends[i] = end{in: inW, out: sc, done: done}
	}

	readLine := func(i int, prefix string) string {
		e := &ends[i]
		for e.out.Scan() {
			if line := e.out.Text(); strings.HasPrefix(line, prefix) {
				return strings.TrimPrefix(line, prefix)
			}
		}
		t.Fatalf("worker %d: stream ended before %q line: %v", i, prefix, e.out.Err())
		return ""
	}

	routes := make([]string, 0, len(parts))
	for i, part := range parts {
		addr := strings.TrimSpace(readLine(i, "READY "))
		for _, ep := range part.Owned {
			routes = append(routes, ep+"="+addr)
		}
	}
	for i := range parts {
		fmt.Fprintf(ends[i].in, "ROUTES %s\nGO\n", strings.Join(routes, ","))
	}

	frags := make([]*scenario.WorkerReport, len(parts))
	for i := range parts {
		var wr scenario.WorkerReport
		if err := json.Unmarshal([]byte(readLine(i, "REPORT ")), &wr); err != nil {
			t.Fatalf("worker %d: bad report: %v", i, err)
		}
		frags[i] = &wr
		if err := <-ends[i].done; err != nil {
			t.Fatalf("worker %d: %v", i, err)
		}
	}

	rep := scenario.MergeClusterReports(s, false, frags)
	var cli *scenario.WorkerReport
	for _, f := range frags {
		if f.Client != nil {
			cli = f
		}
	}
	if cli == nil {
		t.Fatal("no fragment carries the client")
	}
	ref, err := scenario.ClusterReference(s, false)
	if err != nil {
		t.Fatal(err)
	}
	scenario.AuditCluster(rep, cli.StableView, ref)
	if rep.Consistency == nil || !rep.Consistency.OK {
		t.Fatalf("Definition 1 audit failed: %+v", rep.Consistency)
	}
	if rep.Consistency.Compared == 0 {
		t.Fatal("audit compared zero stable tuples — the cluster moved no data")
	}
	if rep.Client.NewTuples == 0 {
		t.Fatalf("merged report lost the client fragment: %+v", rep.Client)
	}
}

// TestTwoWorkerPartitionHeal runs a real two-worker cluster in-process with
// a timed link partition: an inline boss broadcasts the LINK block lines
// cutting one source off one replica mid-run and unblocks them later, like
// the real boss translating a spec partition fault. The victim replica must
// go through §4.5 reconciliation after the heal, real frames must have died
// on the blocked links, and the merged report must still pass the
// Definition 1 audit.
func TestTwoWorkerPartitionHeal(t *testing.T) {
	const speed = 25
	two := 2
	s := &scenario.Spec{
		Name:              "cluster-partition-test",
		Seed:              11,
		DurationS:         8,
		VerifyConsistency: true,
		Sources: []scenario.SourceSpec{
			{Name: "s1", Rate: 100},
			{Name: "s2", Rate: 100},
		},
		Nodes:  []scenario.NodeSpec{{Name: "n1", Inputs: []string{"s1", "s2"}, Replicas: &two}},
		Client: scenario.ClientSpec{Input: "n1", DelayMS: 50},
	}
	s.Defaults.DelayS = 1
	s.Defaults.Replicas = 1
	// The partition rides in the spec (so reference and validation see it);
	// the inline boss below translates it into LINK lines, exactly like
	// boss.faultActions.
	s.Faults = []scenario.FaultSpec{{Kind: "partition", From: "s2", To: "n1/0", AtS: 2, DurationS: 3}}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	parts, err := Plan(s, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Round-robin puts s2 and n1a on different workers: the blocked link
	// crosses a real socket.
	cross := false
	for _, p := range parts {
		owns := strings.Join(p.Owned, ",")
		if strings.Contains(owns, "s2") != strings.Contains(owns, "n1a") {
			cross = true
		}
	}
	if !cross {
		t.Fatalf("partition plan hosts s2 and n1a together; test would not cross a socket: %+v", parts)
	}
	block, unblock, err := linkLines(s, &s.Faults[0])
	if err != nil {
		t.Fatal(err)
	}

	type end struct {
		in   *io.PipeWriter
		out  *bufio.Scanner
		done chan error
	}
	ends := make([]end, len(parts))
	for i, part := range parts {
		inR, inW := io.Pipe()
		outR, outW := io.Pipe()
		cfg := WorkerConfig{
			Spec:   s,
			Name:   part.Name,
			Listen: "127.0.0.1:0",
			Owned:  part.Owned,
			Speed:  speed,
		}
		done := make(chan error, 1)
		go func() {
			err := RunWorker(cfg, inR, outW)
			outW.CloseWithError(err)
			done <- err
		}()
		sc := bufio.NewScanner(outR)
		sc.Buffer(make([]byte, 0, 64*1024), 64<<20)
		ends[i] = end{in: inW, out: sc, done: done}
	}

	readLine := func(i int, prefix string) string {
		e := &ends[i]
		for e.out.Scan() {
			if line := e.out.Text(); strings.HasPrefix(line, prefix) {
				return strings.TrimPrefix(line, prefix)
			}
		}
		t.Fatalf("worker %d: stream ended before %q line: %v", i, prefix, e.out.Err())
		return ""
	}

	routes := make([]string, 0, len(parts))
	for i, part := range parts {
		addr := strings.TrimSpace(readLine(i, "READY "))
		for _, ep := range part.Owned {
			routes = append(routes, ep+"="+addr)
		}
	}
	for i := range parts {
		fmt.Fprintf(ends[i].in, "ROUTES %s\nGO\n", strings.Join(routes, ","))
	}
	t0 := time.Now()

	// The fault schedule, at the same scaled wall deadlines the real boss
	// uses.
	schedDone := make(chan struct{})
	go func() {
		defer close(schedDone)
		for _, step := range []struct {
			atS   float64
			lines string
		}{{2, block}, {5, unblock}} {
			time.Sleep(time.Until(t0.Add(time.Duration(step.atS / speed * float64(time.Second)))))
			for i := range ends {
				fmt.Fprintf(ends[i].in, "%s\n", step.lines)
			}
		}
	}()

	frags := make([]*scenario.WorkerReport, len(parts))
	for i := range parts {
		var wr scenario.WorkerReport
		if err := json.Unmarshal([]byte(readLine(i, "REPORT ")), &wr); err != nil {
			t.Fatalf("worker %d: bad report: %v", i, err)
		}
		frags[i] = &wr
		if err := <-ends[i].done; err != nil {
			t.Fatalf("worker %d: %v", i, err)
		}
	}
	<-schedDone

	rep := scenario.MergeClusterReports(s, false, frags)
	var cli *scenario.WorkerReport
	for _, f := range frags {
		if f.Client != nil {
			cli = f
		}
	}
	if cli == nil {
		t.Fatal("no fragment carries the client")
	}
	ref, err := scenario.ClusterReference(s, false)
	if err != nil {
		t.Fatal(err)
	}
	scenario.AuditCluster(rep, cli.StableView, ref)
	if rep.Consistency == nil || !rep.Consistency.OK {
		t.Fatalf("Definition 1 audit failed: %+v", rep.Consistency)
	}
	if rep.Consistency.Compared == 0 {
		t.Fatal("audit compared zero stable tuples — the cluster moved no data")
	}
	if rep.Transport == nil || rep.Transport.DroppedLink == 0 {
		t.Fatalf("no frames died on the blocked link; the partition never bit: %+v", rep.Transport)
	}
	recs := uint64(0)
	for _, nr := range rep.Nodes {
		recs += nr.Reconciliations
	}
	if recs == 0 {
		t.Fatalf("no replica reconciled after the heal (§4.5): %+v", rep.Nodes)
	}
}
