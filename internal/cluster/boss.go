package cluster

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"os/exec"
	"sort"
	"strings"
	"sync"
	"syscall"
	"time"

	"borealis/internal/deploy"
	"borealis/internal/scenario"
)

// FaultModeKill translates crash faults into SIGKILL + respawn: the replica
// process dies for real and its replacement rebuilds state through §4.5
// crash recovery. FaultModeStop uses SIGSTOP/SIGCONT instead: the process
// freezes with its state intact — to its peers indistinguishable from a
// failure (silence, keep-alive timeouts) but recovering by resumption
// rather than rebuild. Both satisfy the Definition 1 audit, which compares
// against a fault-free reference.
const (
	FaultModeKill = "kill"
	FaultModeStop = "stop"
)

// Options parameterizes a boss run.
type Options struct {
	// SpecPath is the scenario file; every worker loads the same file.
	SpecPath string
	// Spec, when non-nil, skips reloading SpecPath in the boss (the
	// workers still load the file, so it must stay in place).
	Spec *scenario.Spec
	// Workers is the number of worker processes. Replicas targeted by
	// process-level faults each get a dedicated worker out of this
	// budget, so Workers must exceed the fault-target count.
	Workers int
	// Quick selects the spec's reduced duration.
	Quick bool
	// Speed is the wall clock time-scale factor for every worker and for
	// the boss's real-time fault schedule.
	Speed float64
	// FaultMode is FaultModeKill (default) or FaultModeStop.
	FaultMode string
	// SkipAudit suppresses the reference run and Definition 1 audit.
	SkipAudit bool
	// Exe is the worker executable (default: the boss's own binary).
	Exe string
	// Log receives boss progress and forwarded worker stderr/log lines
	// (default os.Stderr).
	Log io.Writer
}

// Result is a completed cluster run.
type Result struct {
	Report *scenario.Report
	// Fragments holds the raw worker reports, in partition order; nil for
	// a partition whose final incarnation was killed without respawn.
	Fragments []*scenario.WorkerReport
	WallS     float64
}

// Partition is one worker's slice of the endpoint set.
type Partition struct {
	Name  string
	Owned []string
	// Target is the fault-targeted replica this worker exists for, empty
	// for a shared worker.
	Target string
}

// Plan divides a spec's endpoints across workers: each fault-targeted
// replica is hosted alone on a dedicated worker (so a SIGKILL of that
// process is a crash of exactly that replica), everything else round-robins
// across the remaining shared workers.
func Plan(s *scenario.Spec, workers int) ([]Partition, error) {
	targets := scenario.FaultTargets(s)
	shared := workers - len(targets)
	if shared < 1 {
		return nil, fmt.Errorf("cluster: %d workers cannot host %d fault-targeted replicas plus the shared endpoints; need at least %d",
			workers, len(targets), len(targets)+1)
	}
	parts := make([]Partition, workers)
	for i := range parts {
		parts[i].Name = fmt.Sprintf("w%d", i)
	}
	targetSet := make(map[string]bool, len(targets))
	for i, t := range targets {
		parts[shared+i].Owned = []string{t}
		parts[shared+i].Target = t
		targetSet[t] = true
	}
	i := 0
	for _, ep := range scenario.Endpoints(s) {
		if targetSet[ep] {
			continue
		}
		p := &parts[i%shared]
		p.Owned = append(p.Owned, ep)
		i++
	}
	return parts, nil
}

// proc is one live worker process.
type proc struct {
	part     Partition
	cmd      *exec.Cmd
	stdin    io.WriteCloser
	readyCh  chan string
	reportCh chan *scenario.WorkerReport
	exitCh   chan error

	mu         sync.Mutex
	listenAddr string
}

type boss struct {
	opts  Options
	spec  *scenario.Spec
	exe   string
	log   io.Writer
	parts []Partition

	mu          sync.Mutex
	procs       []*proc
	activeLinks map[string]bool // directed "from to" pairs currently blocked
}

// Run executes a scenario as a real multi-process cluster and returns the
// merged, audited report.
func Run(opts Options) (*Result, error) {
	if opts.Speed <= 0 {
		opts.Speed = 1
	}
	switch opts.FaultMode {
	case "":
		opts.FaultMode = FaultModeKill
	case FaultModeKill, FaultModeStop:
	default:
		return nil, fmt.Errorf("cluster: unknown fault mode %q (want kill|stop)", opts.FaultMode)
	}
	spec := opts.Spec
	if spec == nil {
		var err error
		spec, err = scenario.Load(opts.SpecPath)
		if err != nil {
			return nil, err
		}
	}
	exe := opts.Exe
	if exe == "" {
		var err error
		exe, err = os.Executable()
		if err != nil {
			return nil, err
		}
	}
	log := opts.Log
	if log == nil {
		log = os.Stderr
	}
	parts, err := Plan(spec, opts.Workers)
	if err != nil {
		return nil, err
	}
	b := &boss{
		opts:  opts,
		spec:  spec,
		exe:   exe,
		log:   log,
		parts: parts,
		procs: make([]*proc, len(parts)),
	}
	defer b.killAll()

	for i, part := range parts {
		p, err := b.spawn(part, "127.0.0.1:0", 0, false)
		if err != nil {
			return nil, err
		}
		b.procs[i] = p
	}
	routes := make(map[string]string, len(parts))
	for _, p := range b.procs {
		addr, err := awaitReady(p, 30*time.Second)
		if err != nil {
			return nil, err
		}
		for _, ep := range p.part.Owned {
			routes[ep] = addr
		}
		p.setAddr(addr)
	}
	routesLine := routesLine(b.parts, routes)
	for _, p := range b.procs {
		if _, err := fmt.Fprintf(p.stdin, "%s\nGO\n", routesLine); err != nil {
			return nil, fmt.Errorf("cluster: %s: %w", p.part.Name, err)
		}
	}
	t0 := time.Now()
	durationUS := scenario.DurationUS(spec, opts.Quick)
	fmt.Fprintf(log, "cluster: %d workers started, running %.0fs of scenario time at speed %g (%s faults)\n",
		len(parts), float64(durationUS)/1e6, opts.Speed, opts.FaultMode)

	actions, expect, err := b.faultActions(durationUS)
	if err != nil {
		return nil, err
	}
	faultsDone := make(chan error, 1)
	go func() { faultsDone <- b.runFaultSchedule(actions, t0) }()

	durWall := time.Duration(float64(durationUS)/opts.Speed) * time.Microsecond
	deadline := t0.Add(durWall + 60*time.Second)
	if err := <-faultsDone; err != nil {
		return nil, err
	}

	frags := make([]*scenario.WorkerReport, len(parts))
	for i := range parts {
		p := b.current(i)
		if !expect[i] {
			continue
		}
		select {
		case wr := <-p.reportCh:
			frags[i] = wr
		case err := <-p.exitCh:
			return nil, fmt.Errorf("cluster: %s exited without a report: %v", p.part.Name, err)
		case <-time.After(time.Until(deadline)):
			return nil, fmt.Errorf("cluster: %s produced no report before the deadline", p.part.Name)
		}
	}
	wallS := time.Since(t0).Seconds()

	var present []*scenario.WorkerReport
	for _, f := range frags {
		if f != nil {
			present = append(present, f)
		}
	}
	rep := scenario.MergeClusterReports(spec, opts.Quick, present)
	if !opts.SkipAudit {
		var cli *scenario.WorkerReport
		for _, f := range present {
			if f.Client != nil {
				cli = f
			}
		}
		if cli == nil {
			return nil, fmt.Errorf("cluster: no worker reported the client fragment; cannot audit")
		}
		ref, err := scenario.ClusterReference(spec, opts.Quick)
		if err != nil {
			return nil, err
		}
		scenario.AuditCluster(rep, cli.StableView, ref)
	}
	return &Result{Report: rep, Fragments: frags, WallS: wallS}, nil
}

// action is one real-time fault step. A "link" action carries the LINK
// protocol lines to broadcast in line (part is -1: every worker applies
// them, so the directed block covers intra- and cross-worker pairs alike).
type action struct {
	atUS int64
	part int
	what string // "kill" | "respawn" | "stop" | "cont" | "link"
	line string
}

// faultActions translates the spec's process-level fault schedule into
// timed signal/respawn actions and its partition faults into timed LINK
// block/unblock broadcasts, and derives which partitions are expected to be
// alive — and therefore to report — at the end of the run.
func (b *boss) faultActions(durationUS int64) ([]action, []bool, error) {
	partOf := make(map[string]int, len(b.parts))
	for i, p := range b.parts {
		if p.Target != "" {
			partOf[p.Target] = i
		}
	}
	stop := b.opts.FaultMode == FaultModeStop
	var acts []action
	add := func(atUS int64, part int, what string) {
		if atUS < durationUS {
			acts = append(acts, action{atUS: atUS, part: part, what: what})
		}
	}
	for i := range b.spec.Faults {
		f := &b.spec.Faults[i]
		at := int64(f.AtS * 1e6)
		dur := int64(f.DurationS * 1e6)
		if at >= durationUS {
			continue
		}
		if f.Kind == "partition" {
			block, unblock, err := linkLines(b.spec, f)
			if err != nil {
				return nil, nil, err
			}
			acts = append(acts, action{atUS: at, part: -1, what: "link", line: block})
			if at+dur < durationUS {
				acts = append(acts, action{atUS: at + dur, part: -1, what: "link", line: unblock})
			}
			continue
		}
		pi, ok := partOf[faultTarget(f)]
		if !ok {
			continue // source-level fault; the owning worker handles it
		}
		switch f.Kind {
		case "crash":
			if stop && dur > 0 {
				add(at, pi, "stop")
				add(at+dur, pi, "cont")
			} else {
				add(at, pi, "kill")
				if dur > 0 {
					add(at+dur, pi, "respawn")
				}
			}
		case "restart":
			if stop {
				add(at, pi, "cont")
			} else {
				add(at, pi, "respawn")
			}
		case "flap":
			period := int64(f.PeriodS * 1e6)
			count := f.Count
			if count <= 0 {
				count = 3
			}
			down := dur
			if down <= 0 {
				down = period / 2
			}
			for k := 0; k < count; k++ {
				t := at + int64(k)*period
				if stop {
					add(t, pi, "stop")
					add(t+down, pi, "cont")
				} else {
					add(t, pi, "kill")
					add(t+down, pi, "respawn")
				}
			}
		}
	}
	sort.SliceStable(acts, func(i, j int) bool { return acts[i].atUS < acts[j].atUS })
	expect := make([]bool, len(b.parts))
	for i := range expect {
		expect[i] = true
	}
	for _, a := range acts {
		switch a.what {
		case "kill":
			expect[a.part] = false
		case "respawn", "cont":
			expect[a.part] = true
		}
	}
	return acts, expect, nil
}

func faultTarget(f *scenario.FaultSpec) string {
	switch f.Kind {
	case "crash", "restart", "flap":
		return deploy.GroupReplicaID(f.Node, f.Replica)
	}
	return ""
}

// linkLines renders one partition fault as its LINK block and unblock
// broadcasts: every (from, to) endpoint pair, both directions, one protocol
// line per directed link, newline-joined.
func linkLines(s *scenario.Spec, f *scenario.FaultSpec) (block, unblock string, err error) {
	from, err := scenario.ExpandEndpoint(s, f.From)
	if err != nil {
		return "", "", err
	}
	to, err := scenario.ExpandEndpoint(s, f.To)
	if err != nil {
		return "", "", err
	}
	var blk, unblk []string
	for _, a := range from {
		for _, b := range to {
			blk = append(blk, "LINK block "+a+" "+b, "LINK block "+b+" "+a)
			unblk = append(unblk, "LINK unblock "+a+" "+b, "LINK unblock "+b+" "+a)
		}
	}
	return strings.Join(blk, "\n"), strings.Join(unblk, "\n"), nil
}

// runFaultSchedule executes the actions at their scaled real deadlines.
func (b *boss) runFaultSchedule(acts []action, t0 time.Time) error {
	for _, a := range acts {
		at := t0.Add(time.Duration(float64(a.atUS)/b.opts.Speed) * time.Microsecond)
		time.Sleep(time.Until(at))
		if a.what == "link" {
			fmt.Fprintf(b.log, "cluster: t=%.2fs %s\n", float64(a.atUS)/1e6,
				strings.ReplaceAll(a.line, "\n", "; "))
			b.applyLinks(a.line)
			continue
		}
		p := b.current(a.part)
		switch a.what {
		case "kill":
			fmt.Fprintf(b.log, "cluster: t=%.2fs SIGKILL %s (%s)\n", float64(a.atUS)/1e6, p.part.Name, p.part.Target)
			_ = p.cmd.Process.Kill()
		case "stop":
			fmt.Fprintf(b.log, "cluster: t=%.2fs SIGSTOP %s (%s)\n", float64(a.atUS)/1e6, p.part.Name, p.part.Target)
			_ = p.cmd.Process.Signal(syscall.SIGSTOP)
		case "cont":
			fmt.Fprintf(b.log, "cluster: t=%.2fs SIGCONT %s (%s)\n", float64(a.atUS)/1e6, p.part.Name, p.part.Target)
			_ = p.cmd.Process.Signal(syscall.SIGCONT)
		case "respawn":
			fmt.Fprintf(b.log, "cluster: t=%.2fs respawn %s (%s) recovering\n", float64(a.atUS)/1e6, p.part.Name, p.part.Target)
			if err := b.respawn(a.part, a.atUS); err != nil {
				return err
			}
		}
	}
	return nil
}

// applyLinks broadcasts LINK protocol lines to every live worker and
// mirrors the resulting block state in activeLinks, so a later respawn can
// replay the still-active blocks to the replacement worker. Write errors
// are ignored: a SIGKILLed worker's pipe is gone, and its replacement gets
// the state replayed at respawn.
func (b *boss) applyLinks(lines string) {
	b.mu.Lock()
	procs := append([]*proc(nil), b.procs...)
	if b.activeLinks == nil {
		b.activeLinks = make(map[string]bool)
	}
	for _, ln := range strings.Split(lines, "\n") {
		f := strings.Fields(ln)
		if len(f) != 4 || f[0] != "LINK" {
			continue
		}
		if f[1] == "block" {
			b.activeLinks[f[2]+" "+f[3]] = true
		} else {
			delete(b.activeLinks, f[2]+" "+f[3])
		}
	}
	b.mu.Unlock()
	for _, p := range procs {
		if p != nil {
			_, _ = fmt.Fprintf(p.stdin, "%s\n", lines)
		}
	}
}

// respawn replaces a killed worker: same partition, same listen address (so
// every other worker's routes stay valid), clock starting at the respawn
// instant, §4.5 recovery enabled. The replacement is handed the routes and
// any still-active link blocks before GO; every surviving worker gets the
// routes re-announced, kicking their dial backoffs so reconnection to the
// rebound address does not wait out a backoff sleep.
func (b *boss) respawn(pi int, atUS int64) error {
	old := b.current(pi)
	p, err := b.spawn(old.part, old.addr(), atUS, true)
	if err != nil {
		return err
	}
	addr, err := awaitReady(p, 15*time.Second)
	if err != nil {
		return err
	}
	p.setAddr(addr)
	routes := make(map[string]string, len(b.parts))
	b.mu.Lock()
	for _, q := range b.procs {
		for _, ep := range q.part.Owned {
			routes[ep] = q.addr()
		}
	}
	b.procs[pi] = p
	var links []string
	for l := range b.activeLinks {
		links = append(links, "LINK block "+l)
	}
	others := append([]*proc(nil), b.procs...)
	b.mu.Unlock()
	sort.Strings(links)
	rl := routesLine(b.parts, routes)
	pre := rl
	if len(links) > 0 {
		pre += "\n" + strings.Join(links, "\n")
	}
	if _, err := fmt.Fprintf(p.stdin, "%s\nGO\n", pre); err != nil {
		return fmt.Errorf("cluster: %s: %w", p.part.Name, err)
	}
	for i, q := range others {
		if i == pi || q == nil {
			continue
		}
		_, _ = fmt.Fprintf(q.stdin, "%s\n", rl)
	}
	return nil
}

// spawn starts one worker process and its stdout pump.
func (b *boss) spawn(part Partition, listen string, startUS int64, recover bool) (*proc, error) {
	args := []string{
		"worker",
		"-spec", b.opts.SpecPath,
		"-worker-name", part.Name,
		"-listen", listen,
		"-owned", strings.Join(part.Owned, ","),
		"-speed", fmt.Sprintf("%g", b.opts.Speed),
	}
	if b.opts.Quick {
		args = append(args, "-quick")
	}
	if startUS > 0 {
		args = append(args, "-start-us", fmt.Sprintf("%d", startUS))
	}
	if recover {
		args = append(args, "-recover")
	}
	cmd := exec.Command(b.exe, args...)
	cmd.Stderr = b.log
	stdin, err := cmd.StdinPipe()
	if err != nil {
		return nil, err
	}
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return nil, err
	}
	if err := cmd.Start(); err != nil {
		return nil, fmt.Errorf("cluster: spawning %s: %w", part.Name, err)
	}
	p := &proc{
		part:     part,
		cmd:      cmd,
		stdin:    stdin,
		readyCh:  make(chan string, 1),
		reportCh: make(chan *scenario.WorkerReport, 1),
		exitCh:   make(chan error, 1),
	}
	go p.pump(stdout, b.log)
	return p, nil
}

// pump relays the worker's stdout protocol lines; on EOF it reaps the
// process.
func (p *proc) pump(stdout io.Reader, log io.Writer) {
	sc := bufio.NewScanner(stdout)
	sc.Buffer(make([]byte, 0, 64*1024), 64<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "READY "):
			select {
			case p.readyCh <- strings.TrimSpace(strings.TrimPrefix(line, "READY ")):
			default:
			}
		case strings.HasPrefix(line, "REPORT "):
			var wr scenario.WorkerReport
			if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "REPORT ")), &wr); err != nil {
				fmt.Fprintf(log, "cluster: %s: bad report: %v\n", p.part.Name, err)
				continue
			}
			select {
			case p.reportCh <- &wr:
			default:
			}
		default:
			fmt.Fprintf(log, "[%s] %s\n", p.part.Name, line)
		}
	}
	p.exitCh <- p.cmd.Wait()
}

// addr bookkeeping: the listen address is learned from READY after spawn
// and read by respawn/routes.
func (p *proc) addr() string {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.listenAddr
}

func (p *proc) setAddr(addr string) {
	p.mu.Lock()
	p.listenAddr = addr
	p.mu.Unlock()
}

func (b *boss) current(pi int) *proc {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.procs[pi]
}

func (b *boss) killAll() {
	b.mu.Lock()
	procs := append([]*proc(nil), b.procs...)
	b.mu.Unlock()
	for _, p := range procs {
		if p != nil && p.cmd.Process != nil {
			_ = p.cmd.Process.Signal(syscall.SIGCONT)
			_ = p.cmd.Process.Kill()
		}
	}
}

// awaitReady waits for the worker's READY line.
func awaitReady(p *proc, timeout time.Duration) (string, error) {
	select {
	case addr := <-p.readyCh:
		return addr, nil
	case err := <-p.exitCh:
		return "", fmt.Errorf("cluster: %s exited before READY: %v", p.part.Name, err)
	case <-time.After(timeout):
		return "", fmt.Errorf("cluster: %s not READY after %s", p.part.Name, timeout)
	}
}

// routesLine renders the full endpoint→address map as one ROUTES line.
func routesLine(parts []Partition, routes map[string]string) string {
	pairs := make([]string, 0, len(routes))
	for _, part := range parts {
		for _, ep := range part.Owned {
			if addr, ok := routes[ep]; ok {
				pairs = append(pairs, ep+"="+addr)
			}
		}
	}
	return "ROUTES " + strings.Join(pairs, ",")
}
