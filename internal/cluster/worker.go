// Package cluster turns the simulator into a deployable multi-process
// system: a boss process partitions a scenario's endpoints across worker
// processes, each worker hosts its partition over the TCP transport on a
// wall clock, and the boss translates the spec's process-level fault
// schedule into real signals (SIGKILL + respawn, or SIGSTOP/SIGCONT)
// against the workers. At the end the boss merges the workers' report
// fragments and audits Definition 1 against a fault-free virtual-clock
// reference run of the same spec.
//
// Boss and worker speak a line protocol over the worker's stdio — stdout
// carries exactly three kinds of lines upward (READY, REPORT, and free-form
// log lines the boss forwards), stdin carries ROUTES, LINK, and GO
// downward. ROUTES and LINK are accepted both before GO (initial routes; a
// respawned worker's replay of still-active link blocks) and after it (a
// respawn's route re-announcement; timed partition faults):
//
//	worker → boss:  READY <listen-addr>
//	boss → worker:  ROUTES <id>=<addr>,<id>=<addr>,...
//	boss → worker:  LINK block|unblock <from> <to>
//	boss → worker:  GO
//	worker → boss:  REPORT <one-line JSON WorkerReport>
package cluster

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"time"

	"borealis/internal/fabric"
	"borealis/internal/runtime"
	"borealis/internal/scenario"
	"borealis/internal/transport"
)

// WorkerConfig parameterizes one worker process.
type WorkerConfig struct {
	// Spec is the full scenario; the worker builds only Owned from it.
	Spec *scenario.Spec
	// Name labels the worker's report fragment ("w0", "w1", ...).
	Name string
	// Listen is the TCP listen address. The boss's initial spawn uses
	// "127.0.0.1:0"; a respawn reuses the dead predecessor's concrete
	// address so the other workers' routes stay valid.
	Listen string
	// Owned lists the endpoint IDs this worker hosts.
	Owned []string
	// Quick selects the spec's reduced duration.
	Quick bool
	// Speed is the wall clock's time-scale factor.
	Speed float64
	// StartUS starts the clock mid-scenario: a respawned worker resumes
	// the timeline at the instant its predecessor was killed.
	StartUS int64
	// Recover brings every hosted replica up through the §4.5 crash
	// recovery path (crash + restart before the run) instead of a clean
	// start: the respawned node rejoins with empty state, rebuilds from
	// its upstream neighbors' logs, and answers no requests until caught
	// up.
	Recover bool
}

// RunWorker hosts one partition of a scenario: it binds the transport,
// reports READY, absorbs routes until GO, then drives the wall clock to the
// scenario horizon and emits the REPORT line. It is the body of the
// `borealis-sim worker` subcommand; in/out are the boss's pipe ends.
func RunWorker(cfg WorkerConfig, in io.Reader, out io.Writer) error {
	if cfg.Speed <= 0 {
		cfg.Speed = 1
	}
	clk := runtime.NewWallAt(cfg.Speed, cfg.StartUS)

	// A respawned worker rebinds its predecessor's address moments after
	// the SIGKILL; the kernel can briefly refuse the port, so retry.
	var tr *transport.TCP
	var err error
	for deadline := time.Now().Add(5 * time.Second); ; {
		tr, err = transport.Listen(clk, transport.Config{ListenAddr: cfg.Listen})
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("cluster: worker %s: %w", cfg.Name, err)
		}
		time.Sleep(20 * time.Millisecond)
	}
	defer tr.Close()

	owned := make(map[string]bool, len(cfg.Owned))
	for _, id := range cfg.Owned {
		owned[id] = true
	}
	pr, err := scenario.CompilePartition(clk, tr, cfg.Spec, owned, cfg.Quick)
	if err != nil {
		return err
	}

	// Building before READY keeps the post-GO skew between workers to the
	// protocol round trip: by GO every process only has to start and run.
	fmt.Fprintf(out, "READY %s\n", tr.Addr())
	sc, err := awaitGo(tr, in)
	if err != nil {
		return err
	}
	// The boss keeps talking after GO: route re-announcements when a peer
	// respawns, LINK lines for timed partition faults. AddRoute and SetLink
	// are safe from this goroutine; it dies with the process.
	go func() {
		for sc.Scan() {
			if err := controlLine(tr, strings.TrimSpace(sc.Text())); err != nil {
				fmt.Fprintf(out, "worker %s: %v\n", cfg.Name, err)
			}
		}
	}()

	dep := pr.Deployment()
	dep.Start()
	if cfg.Recover {
		for _, row := range dep.Nodes {
			for _, n := range row {
				if n != nil {
					n.Crash()
					n.Restart()
				}
			}
		}
	}
	clk.RunUntil(pr.DurationUS())

	wr := pr.WorkerReport(cfg.Name)
	wr.Delivered = tr.Delivered.Load()
	wr.Dropped = tr.Dropped.Load()
	wr.DroppedDown = tr.DroppedDown.Load()
	wr.DroppedQueue = tr.DroppedQueue.Load()
	wr.DroppedDead = tr.DroppedDead.Load()
	wr.DroppedWrite = tr.DroppedWrite.Load()
	wr.DroppedLink = tr.DroppedLink.Load()
	wr.DroppedCtl = tr.DroppedCtl.Load()
	wr.CtlStalls = tr.CtlStalls.Load()
	b, err := json.Marshal(wr)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "REPORT %s\n", b)
	return nil
}

// awaitGo consumes the boss's control lines until GO, returning the scanner
// so the post-GO reader can keep draining the same pipe.
func awaitGo(tr *transport.TCP, in io.Reader) (*bufio.Scanner, error) {
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "GO" {
			return sc, nil
		}
		if err := controlLine(tr, line); err != nil {
			return nil, err
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return nil, fmt.Errorf("cluster: boss closed the control pipe before GO")
}

// controlLine applies one boss→worker control line (ROUTES or LINK) to the
// transport.
func controlLine(tr *transport.TCP, line string) error {
	switch {
	case line == "":
	case strings.HasPrefix(line, "ROUTES "):
		for _, pair := range strings.Split(strings.TrimPrefix(line, "ROUTES "), ",") {
			id, addr, ok := strings.Cut(pair, "=")
			if !ok {
				return fmt.Errorf("cluster: malformed route %q", pair)
			}
			tr.AddRoute(id, addr)
		}
	case strings.HasPrefix(line, "LINK "):
		f := strings.Fields(line)
		if len(f) != 4 || (f[1] != "block" && f[1] != "unblock") {
			return fmt.Errorf("cluster: malformed link line %q", line)
		}
		tr.SetLink(f[2], f[3], fabric.LinkState{Block: f[1] == "block"})
	default:
		return fmt.Errorf("cluster: unexpected boss line %q", line)
	}
	return nil
}
