package operator

import (
	"slices"
	"sort"

	"borealis/internal/runtime"
	"borealis/internal/tuple"
	"borealis/internal/vtime"
)

// DelayPolicy selects what an SUnion does with tuples it cannot yet emit
// stably, i.e. the availability/consistency trade-off of §6.
type DelayPolicy uint8

const (
	// PolicyNone is the STABLE-state behaviour: buckets are emitted only
	// once boundary tuples prove them stable.
	PolicyNone DelayPolicy = iota
	// PolicyProcess emits unstable buckets almost as they arrive (after
	// TentativeWait), once the initial suspension of 0.9·D has elapsed.
	PolicyProcess
	// PolicyDelay holds every unstable bucket for 0.9·D from the arrival
	// of its first tuple before emitting it tentatively.
	PolicyDelay
	// PolicySuspend never emits unstable buckets; availability is
	// sacrificed entirely until the failure heals or the policy changes.
	PolicySuspend
)

func (p DelayPolicy) String() string {
	switch p {
	case PolicyNone:
		return "none"
	case PolicyProcess:
		return "process"
	case PolicyDelay:
		return "delay"
	case PolicySuspend:
		return "suspend"
	}
	return "unknown"
}

// DefaultSafetyFactor is the paper's 0.9·D precaution (footnote 3): SUnions
// release after 0.9 of their assigned delay to leave slack for scheduling.
const DefaultSafetyFactor = 0.9

// DefaultTentativeWait is how long an SUnion waits before emitting a
// tentative bucket under PolicyProcess. The paper's implementation does not
// produce tentative boundaries, so an SUnion cannot know how soon a bucket
// of tentative tuples is complete; it waits a fixed 300 ms (footnote 5).
const DefaultTentativeWait = 300 * vtime.Millisecond

// SUnionConfig parameterizes an SUnion.
type SUnionConfig struct {
	// Ports is the number of input streams to serialize.
	Ports int
	// BucketSize is the stime width of serialization buckets (§4.2.1).
	BucketSize int64
	// Delay is D, the maximum incremental processing latency assigned to
	// this SUnion (§6.3). Zero means the SUnion never emits tentative
	// data on its own (it still serializes).
	Delay int64
	// SafetyFactor scales Delay (default 0.9, footnote 3).
	SafetyFactor float64
	// TentativeWait is the PolicyProcess bucket wait (default 300 ms).
	TentativeWait int64
	// TentativeBoundaries enables the footnote-5 extension: tentative
	// flushes emit a boundary tagged Src=1, letting downstream SUnions
	// release tentative buckets as soon as they are tentatively
	// complete instead of waiting TentativeWait per node. Off by
	// default, matching the paper's measured implementation.
	TentativeBoundaries bool
}

func (c *SUnionConfig) normalize() {
	if c.Ports < 1 {
		panic("operator: SUnion needs at least one port")
	}
	if c.BucketSize <= 0 {
		panic("operator: SUnion bucket size must be positive")
	}
	if c.SafetyFactor <= 0 || c.SafetyFactor > 1 {
		c.SafetyFactor = DefaultSafetyFactor
	}
	if c.TentativeWait <= 0 {
		c.TentativeWait = DefaultTentativeWait
	}
}

// sunionBucket is one serialization bucket. Buckets live in the SUnion's
// ordered index while pending and on a free list once emitted, so the
// steady-state bucket churn reuses both the structs and their Tuples
// backing arrays.
type sunionBucket struct {
	Start        int64
	Tuples       []tuple.Tuple
	FirstArrival int64
	HasTentative bool
	next         *sunionBucket // free-list link
}

// SUnion is the data-serializing operator of §4.2: it buffers tuples from
// its input streams into stime buckets, uses boundary tuples to decide when
// a bucket is stable, and emits stable buckets in a deterministic order so
// that all replicas of a query diagram process identical sequences.
//
// SUnion is also where DPC's availability/consistency trade-off lives
// (§4.3, §6): when the node detects a failure it switches the SUnion into a
// DelayPolicy; buckets that cannot stabilize are then emitted TENTATIVE once
// the policy releases them, after an initial suspension of 0.9·D measured
// from the arrival of the oldest unprocessed tuple.
type SUnion struct {
	Base
	cfg SUnionConfig

	// Checkpointed state. buckets is an ordered index: sorted ascending
	// by Start, every entry at or past the cursor and non-empty, so the
	// earliest pending bucket is always buckets[0] and pump never scans.
	bounds      []int64 // latest boundary stime per port
	buckets     []*sunionBucket
	cursor      int64 // start of the next bucket to emit
	sentBound   int64
	recDoneSeen []bool

	bfree *sunionBucket // recycled buckets

	// loaned is the bucket whose Tuples array is out on loan to the engine
	// as a stage frame (emitBucket's EmitLoan was taken). It is recycled at
	// the next ProcessBatch entry — the earliest point provably after the
	// engine consumed the frame — never mid-dispatch, where a refill by a
	// later insert of the same call would corrupt the frame.
	loaned *sunionBucket

	// Runtime state, deliberately NOT checkpointed: failure handling is
	// re-established by the node controller after a restore.
	policy        DelayPolicy
	tentAllowedAt int64 // initial-suspension gate (PolicyProcess)
	// tentBounds are per-port tentative watermarks (footnote 5): they
	// bound the tentative stream's progress, never its final content,
	// so they are runtime state and reset on restore.
	tentBounds    []int64
	sentTentBound int64
	timer         runtime.Timer
	signaled      bool
	pumping       bool
	repump        bool
	droppedLate   uint64
	droppedUndo   uint64
}

// NewSUnion builds an SUnion.
func NewSUnion(name string, cfg SUnionConfig) *SUnion {
	cfg.normalize()
	s := &SUnion{
		Base:          NewBase(name),
		cfg:           cfg,
		bounds:        make([]int64, cfg.Ports),
		tentBounds:    make([]int64, cfg.Ports),
		sentBound:     -1,
		sentTentBound: -1,
		recDoneSeen:   make([]bool, cfg.Ports),
	}
	for i := range s.bounds {
		s.bounds[i] = -1
		s.tentBounds[i] = -1
	}
	return s
}

// Inputs returns the number of serialized input streams.
func (s *SUnion) Inputs() int { return s.cfg.Ports }

// Config returns the SUnion's configuration.
func (s *SUnion) Config() SUnionConfig { return s.cfg }

// DroppedLate reports tuples discarded because their bucket had already
// been emitted (paper footnote 6: a few tentative tuples are typically
// dropped around switches and flushes).
func (s *SUnion) DroppedLate() uint64 { return s.droppedLate }

// Policy returns the currently applied delay policy.
func (s *SUnion) Policy() DelayPolicy { return s.policy }

// PendingBuckets reports how many buckets are buffered and unemitted.
func (s *SUnion) PendingBuckets() int { return len(s.buckets) }

// OldestPendingArrival returns the virtual arrival time of the oldest
// buffered tuple, or now if nothing is buffered. The node controller uses
// it to anchor the initial suspension (§2.3.1: tuples must be processed
// within D of their arrival).
func (s *SUnion) OldestPendingArrival() int64 {
	oldest := int64(-1)
	for _, b := range s.buckets {
		if oldest < 0 || b.FirstArrival < oldest {
			oldest = b.FirstArrival
		}
	}
	if oldest < 0 {
		return s.Now()
	}
	return oldest
}

// SetPolicy switches the SUnion's failure-handling mode. The node
// controller calls it on every DPC state transition. Entering a tentative-
// emitting policy from PolicyNone starts the initial suspension: tentative
// emission is not allowed before oldest-pending-arrival + 0.9·D.
func (s *SUnion) SetPolicy(p DelayPolicy) {
	if p == s.policy {
		return
	}
	prev := s.policy
	s.policy = p
	if p == PolicyNone {
		s.signaled = false
		s.stopTimer()
		return
	}
	if prev == PolicyNone {
		base := s.OldestPendingArrival()
		if now := s.Now(); now < base {
			base = now
		}
		s.tentAllowedAt = base + s.delayBudget()
		if !s.signaled {
			s.signaled = true
			if env := s.Env(); env != nil && env.Signal != nil {
				env.Signal(Signal{Kind: SigUpFailure, Op: s.Name()})
			}
		}
	}
	s.pump()
}

func (s *SUnion) delayBudget() int64 {
	return int64(float64(s.cfg.Delay) * s.cfg.SafetyFactor)
}

func (s *SUnion) bucketStart(stime int64) int64 {
	b := stime / s.cfg.BucketSize * s.cfg.BucketSize
	if stime < 0 && stime%s.cfg.BucketSize != 0 {
		b -= s.cfg.BucketSize
	}
	return b
}

// FreshCount reports how many tuples of a prospective batch would actually
// enter serialization buckets (stime at or beyond the emission cursor).
// Tuples behind the cursor are dropped in O(1) without touching any
// operator, so the engine's capacity model should not charge full
// processing cost for them — e.g. a source replay arriving on the live path
// after its region was already flushed tentatively.
func (s *SUnion) FreshCount(ts []tuple.Tuple) int {
	n := 0
	for _, t := range ts {
		if t.IsData() && s.bucketStart(t.STime) >= s.cursor {
			n++
		}
	}
	return n
}

// allocBucket takes a bucket from the free list, or makes one.
func (s *SUnion) allocBucket(start int64) *sunionBucket {
	b := s.bfree
	if b == nil {
		b = &sunionBucket{}
	} else {
		s.bfree = b.next
		b.next = nil
	}
	b.Start = start
	b.Tuples = b.Tuples[:0]
	b.FirstArrival = 0
	b.HasTentative = false
	return b
}

// freeBucket recycles an emitted bucket. The slots are not cleared: the
// array pins the previous bucket's payloads until refilled, bounded by the
// free list's handful of buckets — cheaper than a per-bucket memclr on the
// hot path.
func (s *SUnion) freeBucket(b *sunionBucket) {
	b.Tuples = b.Tuples[:0]
	b.next = s.bfree
	s.bfree = b
}

// reclaimLoan returns the parked loaned bucket (if any) to the free list.
// Called only from points that are outside any dispatch that could still
// alias the bucket's array: ProcessBatch entry and Restore.
func (s *SUnion) reclaimLoan() {
	if s.loaned != nil {
		s.freeBucket(s.loaned)
		s.loaned = nil
	}
}

// getBucket returns the bucket starting at start, creating and inserting it
// in order if absent. The fast path — stimes mostly increase — touches only
// the last entry.
func (s *SUnion) getBucket(start int64) *sunionBucket {
	n := len(s.buckets)
	if n > 0 {
		if last := s.buckets[n-1]; last.Start == start {
			return last
		} else if last.Start < start {
			b := s.allocBucket(start)
			s.buckets = append(s.buckets, b)
			return b
		}
	} else {
		b := s.allocBucket(start)
		s.buckets = append(s.buckets, b)
		return b
	}
	i := sort.Search(n, func(i int) bool { return s.buckets[i].Start >= start })
	if i < n && s.buckets[i].Start == start {
		return s.buckets[i]
	}
	b := s.allocBucket(start)
	s.buckets = append(s.buckets, nil)
	copy(s.buckets[i+1:], s.buckets[i:])
	s.buckets[i] = b
	return b
}

// popFront removes the earliest bucket from the index, keeping capacity.
func (s *SUnion) popFront() {
	n := len(s.buckets)
	copy(s.buckets, s.buckets[1:])
	s.buckets[n-1] = nil
	s.buckets = s.buckets[:n-1]
}

// Process consumes a tuple on the given port.
func (s *SUnion) Process(port int, t tuple.Tuple) {
	switch {
	case t.IsData():
		start := s.bucketStart(t.STime)
		if start < s.cursor {
			s.droppedLate++
			return
		}
		b := s.getBucket(start)
		if len(b.Tuples) == 0 {
			b.FirstArrival = s.Now()
		}
		t.Src = int32(port)
		b.Tuples = append(b.Tuples, t)
		if t.Type == tuple.Tentative {
			b.HasTentative = true
		}
		s.pump()
	case t.Type == tuple.Boundary:
		if t.Src == 1 {
			// Tentative boundary (footnote 5): bounds the progress
			// of a diverged upstream's tentative stream.
			if t.STime > s.tentBounds[port] {
				s.tentBounds[port] = t.STime
				s.pump()
			}
			return
		}
		if t.STime > s.bounds[port] {
			s.bounds[port] = t.STime
			s.pump()
		}
	case t.Type == tuple.RecDone:
		s.recDoneSeen[port] = true
		for _, ok := range s.recDoneSeen {
			if !ok {
				return
			}
		}
		for i := range s.recDoneSeen {
			s.recDoneSeen[i] = false
		}
		s.Emit(t)
	case t.Type == tuple.Undo:
		// In the node-wide checkpoint/redo scheme (§4.4.1) undo tuples
		// are consumed by the Input Manager before the diagram; an
		// undo reaching an SUnion is counted and dropped.
		s.droppedUndo++
	}
}

// stableThrough returns the stime up to which every port's boundaries have
// advanced: all buckets ending at or before it hold their final content.
func (s *SUnion) stableThrough() int64 {
	min := s.bounds[0]
	for _, b := range s.bounds[1:] {
		if b < min {
			min = b
		}
	}
	return min
}

// pump emits every bucket that is ready, in bucket order: stable buckets as
// soon as boundaries prove them complete, unstable buckets when the current
// policy releases them. It then (re)arms the flush timer for the next
// pending bucket, if any. Reentrant calls (an emission's downstream effects
// reaching back into this operator) are deferred to the outer invocation so
// the bucket being emitted is never mutated mid-flight.
func (s *SUnion) pump() {
	if s.pumping {
		s.repump = true
		return
	}
	s.pumping = true
	for {
		s.repump = false
		s.pumpOnce()
		if !s.repump {
			break
		}
	}
	s.pumping = false
}

func (s *SUnion) pumpOnce() {
	stable := s.stableThrough()
	now := s.Now()
	advanced := false
	armed := false
	for {
		end := s.cursor + s.cfg.BucketSize
		var b *sunionBucket
		if len(s.buckets) > 0 && s.buckets[0].Start == s.cursor {
			b = s.buckets[0]
		}
		if b == nil {
			if stable >= end {
				// Gap at the cursor: every absent bucket below the
				// stable watermark is trivially stable and empty.
				// Jump the cursor over the whole run instead of
				// stepping one bucket width at a time.
				target := s.bucketStart(stable)
				if len(s.buckets) > 0 && s.buckets[0].Start < target {
					target = s.buckets[0].Start
				}
				s.cursor = target
				advanced = true
				continue
			}
		} else if stable >= end && !b.HasTentative {
			// Stable bucket. Under PolicyDelay even stable-ready
			// data is held for 0.9·D (§6: "continuously delaying
			// new tuples as much as possible"): if the node's
			// reconciliation grant arrives within the hold, these
			// tuples are never emitted under divergence at all.
			if s.policy == PolicyDelay {
				if due := b.FirstArrival + s.delayBudget(); now < due {
					s.armTimer(due)
					armed = true
					break
				}
			}
			// Emit sorted, final content.
			s.popFront()
			s.cursor = end
			advanced = true
			s.emitBucket(b, false)
			continue
		}
		if s.policy == PolicyNone || s.policy == PolicySuspend {
			break
		}
		// Tentative path: the earliest pending bucket is the front of
		// the ordered index; absent buckets in front of it are skipped
		// when it releases.
		if len(s.buckets) == 0 {
			break
		}
		lead := s.buckets[0]
		due := s.releaseAt(lead)
		if now < due {
			s.armTimer(due)
			armed = true
			break
		}
		s.popFront()
		s.cursor = lead.Start + s.cfg.BucketSize
		advanced = true
		s.emitBucket(lead, true)
	}
	if advanced || stable > s.sentBound {
		// Forward the punctuation watermark: never beyond the cursor
		// (unemitted buckets may still change) and never backwards.
		wm := stable
		if s.cursor < wm {
			wm = s.cursor
		}
		if wm > s.sentBound {
			s.sentBound = wm
			s.Emit(tuple.NewBoundary(wm))
		}
	}
	if s.cfg.TentativeBoundaries && advanced && s.cursor > s.sentBound && s.cursor > s.sentTentBound {
		// Tentative flushes advanced the cursor past the stable
		// watermark: bound the tentative stream for downstream
		// SUnions (footnote 5).
		s.sentTentBound = s.cursor
		tb := tuple.NewBoundary(s.cursor)
		tb.Src = 1
		s.Emit(tb)
	}
	if !armed {
		s.stopTimer()
	}
}

// tentativelyComplete reports whether every port's combined watermark
// (stable or tentative) covers the bucket: with tentative boundaries on,
// such a bucket can be flushed without the fixed TentativeWait.
func (s *SUnion) tentativelyComplete(start int64) bool {
	end := start + s.cfg.BucketSize
	for i := range s.bounds {
		wm := s.bounds[i]
		if s.tentBounds[i] > wm {
			wm = s.tentBounds[i]
		}
		if wm < end {
			return false
		}
	}
	return true
}

// releaseAt computes when the policy allows a bucket's tentative emission.
func (s *SUnion) releaseAt(b *sunionBucket) int64 {
	switch s.policy {
	case PolicyDelay:
		return b.FirstArrival + s.delayBudget()
	case PolicyProcess:
		at := b.FirstArrival + s.cfg.TentativeWait
		if s.tentativelyComplete(b.Start) {
			// Footnote 5: tentative boundaries prove the bucket
			// complete; no need for the fixed wait.
			at = s.Now()
		}
		if at < s.tentAllowedAt {
			at = s.tentAllowedAt
		}
		return at
	}
	return int64(1) << 62
}

// emitBucket sorts, emits, and recycles one bucket. Tentative buckets are
// emitted with every data tuple marked TENTATIVE (§4.1: results from
// processing a subset of inputs).
func (s *SUnion) emitBucket(b *sunionBucket, tentative bool) {
	// A stable sort keeps arrival order for fully-tied tuples, which is
	// itself deterministic because every upstream SUnion emits a
	// deterministic sequence. Buckets fed by in-order upstreams usually
	// arrive already sorted, so a linear pre-scan skips the sort: a plain
	// int64 compare decides each strictly-increasing pair, and only stime
	// ties (synchronized sources emit plenty) pay the full comparator for
	// the src/id tie-breaks.
	sorted := true
	for i := 1; i < len(b.Tuples); i++ {
		if b.Tuples[i].STime > b.Tuples[i-1].STime {
			continue
		}
		if b.Tuples[i].STime < b.Tuples[i-1].STime ||
			tuple.Compare(b.Tuples[i-1], b.Tuples[i]) > 0 {
			sorted = false
			break
		}
	}
	if !sorted {
		slices.SortStableFunc(b.Tuples, tuple.Compare)
	}
	if tentative {
		for _, t := range b.Tuples {
			s.Emit(t.AsTentative())
		}
		s.freeBucket(b)
		return
	}
	// Stable buckets go downstream as one bulk emission. When the engine
	// takes the loan (aliases b.Tuples as its stage frame) the bucket is
	// parked on s.loaned instead of the free list: freeing it now would let
	// a later insert of the same dispatch refill the array mid-loan. At
	// most one loan can be outstanding — the engine only loans the first
	// emission of a dispatch, and every dispatch starts by reclaiming — so
	// a plain overwrite never leaks more than to the garbage collector.
	if s.EmitLoan(b.Tuples) {
		s.loaned = b
		return
	}
	s.freeBucket(b)
}

func (s *SUnion) armTimer(at int64) {
	if s.timer != nil && !s.timer.Stopped() && s.timer.When() == at {
		return
	}
	s.stopTimer()
	env := s.Env()
	if env == nil || env.After == nil || env.Now == nil {
		return
	}
	d := at - env.Now()
	s.timer = env.After(d, func() {
		s.timer = nil
		s.pump()
	})
}

func (s *SUnion) stopTimer() {
	if s.timer != nil {
		s.timer.Stop()
		s.timer = nil
	}
}

type sunionState struct {
	Bounds      []int64
	Buckets     []sunionBucket // ascending by Start
	Cursor      int64
	SentBound   int64
	RecDoneSeen []bool
}

// Checkpoint deep-copies the serialization state. Policy, suspension gates
// and timers are runtime state: the node controller re-establishes them
// after a restore based on which failures are still active.
func (s *SUnion) Checkpoint() any {
	bk := make([]sunionBucket, len(s.buckets))
	for i, b := range s.buckets {
		bk[i] = sunionBucket{
			Start:        b.Start,
			Tuples:       cloneTuples(b.Tuples),
			FirstArrival: b.FirstArrival,
			HasTentative: b.HasTentative,
		}
	}
	return sunionState{
		Bounds:      append([]int64(nil), s.bounds...),
		Buckets:     bk,
		Cursor:      s.cursor,
		SentBound:   s.sentBound,
		RecDoneSeen: append([]bool(nil), s.recDoneSeen...),
	}
}

// Restore reinstates a snapshot and cancels any pending flush timer.
func (s *SUnion) Restore(snap any) {
	s.reclaimLoan()
	st := snap.(sunionState)
	copy(s.bounds, st.Bounds)
	for _, b := range s.buckets {
		s.freeBucket(b)
	}
	s.buckets = s.buckets[:0]
	for i := range st.Buckets {
		b := s.allocBucket(st.Buckets[i].Start)
		b.Tuples = cloneTuples(st.Buckets[i].Tuples)
		b.FirstArrival = st.Buckets[i].FirstArrival
		b.HasTentative = st.Buckets[i].HasTentative
		s.buckets = append(s.buckets, b)
	}
	s.cursor = st.Cursor
	s.sentBound = st.SentBound
	copy(s.recDoneSeen, st.RecDoneSeen)
	s.stopTimer()
	s.signaled = false
	for i := range s.tentBounds {
		s.tentBounds[i] = -1
	}
	s.sentTentBound = -1
}

// RevokeTentative removes buffered tentative tuples from the pending
// buckets — every port when port is negative, one port otherwise — and
// recomputes the per-bucket tentative flags. The node controller calls
// this when an upstream's UNDO revokes its tentative suffix: the arrival
// log is patched separately, but tuples already buffered in a bucket
// would otherwise sit there forever (tentative content blocks stable
// emission, and only this revocation or a checkpoint rollback removes
// it).
func (s *SUnion) RevokeTentative(port int) {
	for _, b := range s.buckets {
		if !b.HasTentative {
			continue
		}
		kept := b.Tuples[:0]
		has := false
		for _, t := range b.Tuples {
			if t.Type == tuple.Tentative && (port < 0 || t.Src == int32(port)) {
				continue
			}
			if t.Type == tuple.Tentative {
				has = true
			}
			kept = append(kept, t)
		}
		clear(b.Tuples[len(kept):])
		b.Tuples = kept
		b.HasTentative = has
	}
}

// HasPendingTentative reports whether any pending bucket buffers
// tentative content. The node controller consults this on heal: a bucket
// holding tentative tuples can never be emitted stable, so even if
// nothing tentative left the node (no divergence), the failure is not
// maskable — only a checkpoint-restore-and-replay reconciliation rolls
// the poisoned buckets back.
func (s *SUnion) HasPendingTentative() bool {
	for _, b := range s.buckets {
		if b.HasTentative {
			return true
		}
	}
	return false
}
