// Package operator implements the Borealis operator set extended for DPC
// (§3, §4 of the paper): Filter, Map, Aggregate, SJoin, and Union, plus the
// two new operators DPC introduces — SUnion, the data-serializing operator
// that orders tuples deterministically and implements the availability/
// consistency trade-off, and SOutput, which stabilizes output streams during
// reconciliation.
//
// All operators are deterministic (§2.1): their output depends only on the
// sequence of input tuples, never on arrival times. The timing-dependent
// behaviour DPC needs (delaying, suspending) is confined to SUnion, whose
// serialization decisions are exactly what checkpoint/redo rolls back.
//
// Every operator is checkpointable: Checkpoint returns a deep snapshot of
// the operator's state and Restore reinstates it, which is the mechanism
// behind the paper's checkpoint/redo reconciliation (§4.4.1).
package operator

import (
	"borealis/internal/runtime"
	"borealis/internal/tuple"
)

// SignalKind identifies control signals sent by SUnion and SOutput to the
// node's Consistency Manager (the paper's control streams, Table I).
type SignalKind uint8

const (
	// SigUpFailure is sent by an SUnion entering an inconsistent state.
	SigUpFailure SignalKind = iota
	// SigRecRequest is sent by an SUnion once its input was corrected and
	// the node may reconcile its state.
	SigRecRequest
	// SigRecDone is sent by SOutput when the end-of-reconciliation marker
	// crosses the output.
	SigRecDone
)

func (k SignalKind) String() string {
	switch k {
	case SigUpFailure:
		return "UP_FAILURE"
	case SigRecRequest:
		return "REC_REQUEST"
	case SigRecDone:
		return "REC_DONE"
	}
	return "UNKNOWN"
}

// Signal is a control message from an operator to the Consistency Manager.
type Signal struct {
	Kind SignalKind
	Op   string // operator name
	Port int    // input port, where meaningful
}

// Env is the execution environment the engine hands each operator when the
// query diagram is wired. Emit routes output tuples to the operator's
// downstream consumers; Now/After give access to the runtime clock —
// virtual or wall, the operator cannot tell (used only by SUnion's delay
// machinery); Signal reaches the Consistency Manager; Diverged reports
// whether the node's state has diverged from the stable execution, in
// which case SOutput labels everything tentative.
type Env struct {
	Emit func(tuple.Tuple)
	// EmitBatch, when non-nil, sends a whole batch downstream in one
	// call with the same semantics as emitting each tuple in order. The
	// engine's staged batch plane provides it so ProcessBatch
	// implementations skip the per-tuple emission chain. The caller
	// keeps ownership of the slice and may reuse it immediately.
	EmitBatch func([]tuple.Tuple)
	// EmitLoan is EmitBatch with the backing array loaned out: the
	// receiver may alias ts as its staging frame instead of copying,
	// reporting true when it did. After a taken loan the caller must not
	// write to the array (directly or by reslice-and-append) until its
	// next Process/ProcessBatch call begins — a reused scratch buffer
	// qualifies unconditionally; a pooled buffer that may be refilled
	// within the same call must be parked until that next call (see
	// SUnion's deferred bucket free).
	EmitLoan func([]tuple.Tuple) bool
	Now      func() int64
	After    func(d int64, fn func()) runtime.Timer
	Signal   func(Signal)
	Diverged func() bool
}

// emit is a nil-safe send.
func (e *Env) emit(t tuple.Tuple) {
	if e != nil && e.Emit != nil {
		e.Emit(t)
	}
}

// Operator is a node in a query diagram. Process consumes one tuple on one
// input port and emits any outputs through the attached Env. Operators are
// single-threaded: the engine serializes all Process calls.
type Operator interface {
	// Name identifies the operator within its diagram.
	Name() string
	// Inputs returns the number of input ports.
	Inputs() int
	// Attach hands the operator its environment. It is called once,
	// before any Process call, and again after a crash-restart.
	Attach(env *Env)
	// Process consumes one input tuple.
	Process(port int, t tuple.Tuple)
	// Checkpoint returns a deep snapshot of operator state.
	Checkpoint() any
	// Restore reinstates a snapshot produced by Checkpoint.
	Restore(snapshot any)
}

// Base provides the common parts of every operator implementation.
type Base struct {
	name string
	env  *Env
}

// NewBase names an operator.
func NewBase(name string) Base { return Base{name: name} }

// Name returns the operator's name.
func (b *Base) Name() string { return b.name }

// Attach stores the environment.
func (b *Base) Attach(env *Env) { b.env = env }

// Env returns the attached environment (may be nil in unit tests).
func (b *Base) Env() *Env { return b.env }

// Emit sends a tuple downstream.
func (b *Base) Emit(t tuple.Tuple) { b.env.emit(t) }

// EmitBatch sends a batch downstream in one call when the environment
// offers a bulk path, falling back to in-order per-tuple emission
// otherwise. The caller keeps ownership of ts and may reuse it after the
// call returns.
func (b *Base) EmitBatch(ts []tuple.Tuple) {
	if b.env != nil && b.env.EmitBatch != nil {
		b.env.EmitBatch(ts)
		return
	}
	for i := range ts {
		b.env.emit(ts[i])
	}
}

// EmitLoan sends a batch downstream, loaning out the backing array (see
// Env.EmitLoan for the aliasing contract); it reports whether the loan was
// taken. Falls back to per-tuple emission (no loan) when the environment
// offers no loan path.
func (b *Base) EmitLoan(ts []tuple.Tuple) bool {
	if b.env != nil && b.env.EmitLoan != nil {
		return b.env.EmitLoan(ts)
	}
	for i := range ts {
		b.env.emit(ts[i])
	}
	return false
}

// Now returns the current virtual time, or 0 when detached.
func (b *Base) Now() int64 {
	if b.env != nil && b.env.Now != nil {
		return b.env.Now()
	}
	return 0
}
