package operator

import (
	"fmt"
	"sort"

	"borealis/internal/tuple"
)

// AggFunc selects the aggregate function computed over each window.
type AggFunc uint8

const (
	// AggCount counts data tuples.
	AggCount AggFunc = iota
	// AggSum sums the value field.
	AggSum
	// AggAvg averages the value field (integer division).
	AggAvg
	// AggMin takes the minimum of the value field.
	AggMin
	// AggMax takes the maximum of the value field.
	AggMax
)

func (f AggFunc) String() string {
	switch f {
	case AggCount:
		return "count"
	case AggSum:
		return "sum"
	case AggAvg:
		return "avg"
	case AggMin:
		return "min"
	case AggMax:
		return "max"
	}
	return fmt.Sprintf("AggFunc(%d)", uint8(f))
}

// AggregateConfig parameterizes an Aggregate operator.
type AggregateConfig struct {
	// Size is the window length in stime units; Slide is the distance
	// between consecutive window starts (Slide == Size gives tumbling
	// windows). Windows are aligned to stime 0, which is the paper's
	// "independent window alignment" (§2.1): boundaries do not depend on
	// the first tuple processed, keeping the operator deterministic.
	Size, Slide int64
	// Fn is the aggregate function; ValueField indexes the aggregated
	// attribute in the tuple payload.
	Fn         AggFunc
	ValueField int
	// GroupField indexes the group-by attribute, or -1 for no grouping.
	GroupField int
}

type aggAcc struct {
	Count     int64
	Sum       int64
	Min, Max  int64
	Tentative bool
}

func (a *aggAcc) add(v int64, tentative bool) {
	if a.Count == 0 {
		a.Min, a.Max = v, v
	} else {
		if v < a.Min {
			a.Min = v
		}
		if v > a.Max {
			a.Max = v
		}
	}
	a.Count++
	a.Sum += v
	a.Tentative = a.Tentative || tentative
}

func (a *aggAcc) value(fn AggFunc) int64 {
	switch fn {
	case AggCount:
		return a.Count
	case AggSum:
		return a.Sum
	case AggAvg:
		if a.Count == 0 {
			return 0
		}
		return a.Sum / a.Count
	case AggMin:
		return a.Min
	case AggMax:
		return a.Max
	}
	return 0
}

// Aggregate computes windowed aggregates over a single stime-ordered input
// stream (§2.1). A window closes when the watermark — advanced by both
// boundary tuples and data-tuple timestamps — passes its end. Windows closed
// on tentative evidence, or containing tentative tuples, produce tentative
// results; the same windows re-derived from stable inputs during
// reconciliation produce the stable corrections.
//
// Output tuples carry STime = window end and payload [group, value].
type Aggregate struct {
	Base
	cfg AggregateConfig
	// windows maps window start → group → accumulator.
	windows map[int64]map[int64]*aggAcc
	// watermark is the highest stime evidence seen; closedThrough is the
	// highest window end already closed and emitted.
	watermark     int64
	closedThrough int64
	sentBound     int64

	// Reusable scratch for windowStarts and advance — allocation reuse
	// only, never checkpointed.
	startsScratch []int64
	keysScratch   []int64
}

// NewAggregate builds an aggregate operator.
func NewAggregate(name string, cfg AggregateConfig) *Aggregate {
	if cfg.Size <= 0 {
		panic("operator: aggregate window size must be positive")
	}
	if cfg.Slide <= 0 {
		cfg.Slide = cfg.Size
	}
	return &Aggregate{
		Base:          NewBase(name),
		cfg:           cfg,
		windows:       make(map[int64]map[int64]*aggAcc),
		watermark:     -1,
		closedThrough: -1,
		sentBound:     -1,
	}
}

// Inputs returns 1: Aggregate consumes a serialized stream.
func (a *Aggregate) Inputs() int { return 1 }

// OpenWindows reports the number of currently open windows (for tests and
// the convergent-capable buffer-sizing logic of §8.1).
func (a *Aggregate) OpenWindows() int { return len(a.windows) }

// windowStarts returns the starts of every window containing stime.
func (a *Aggregate) windowStarts(stime int64) []int64 {
	first := stime - a.cfg.Size + 1
	// Align the first window start at or above `first` to the slide grid.
	start := (first / a.cfg.Slide) * a.cfg.Slide
	if start < first {
		start += a.cfg.Slide
	}
	// Guard against negative stimes rounding the wrong way.
	for start > stime {
		start -= a.cfg.Slide
	}
	out := a.startsScratch[:0]
	for s := start; s <= stime; s += a.cfg.Slide {
		out = append(out, s)
	}
	a.startsScratch = out
	return out
}

// Process consumes one tuple.
func (a *Aggregate) Process(_ int, t tuple.Tuple) {
	switch {
	case t.IsData():
		group := int64(0)
		if a.cfg.GroupField >= 0 {
			group = t.Field(a.cfg.GroupField)
		}
		v := t.Field(a.cfg.ValueField)
		for _, ws := range a.windowStarts(t.STime) {
			if ws+a.cfg.Size-1 <= a.closedThrough {
				continue // late for an already-closed window; dropped
			}
			g := a.windows[ws]
			if g == nil {
				g = make(map[int64]*aggAcc)
				a.windows[ws] = g
			}
			acc := g[group]
			if acc == nil {
				acc = &aggAcc{}
				g[group] = acc
			}
			acc.add(v, t.Type == tuple.Tentative)
		}
		a.advance(t.STime, t.Type == tuple.Tentative)
	case t.Type == tuple.Boundary:
		a.advance(t.STime, false)
		if t.STime > a.sentBound {
			a.sentBound = t.STime
			a.Emit(t)
		}
	default:
		a.Emit(t) // UNDO / REC_DONE pass through
	}
}

// advance moves the watermark and closes every window whose end has passed.
// A window "ends" at start+Size-1; it closes when the watermark reaches or
// exceeds start+Size (evidence that no further tuple belongs to it).
func (a *Aggregate) advance(stime int64, tentativeEvidence bool) {
	if stime <= a.watermark {
		return
	}
	a.watermark = stime
	// Collect closable windows in deterministic (start) order. advance is
	// not reentered through Emit (diagrams are acyclic), so the scratch
	// slices cannot be aliased mid-loop.
	starts := a.keysScratch[:0]
	for ws := range a.windows {
		if ws+a.cfg.Size <= a.watermark {
			starts = append(starts, ws)
		}
	}
	sort.Slice(starts, func(i, j int) bool { return starts[i] < starts[j] })
	for _, ws := range starts {
		groups := a.windows[ws]
		keys := make([]int64, 0, len(groups))
		for k := range groups {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
		end := ws + a.cfg.Size - 1
		for _, k := range keys {
			acc := groups[k]
			out := tuple.Tuple{
				Type:  tuple.Insertion,
				STime: end,
				Data:  []int64{k, acc.value(a.cfg.Fn)},
			}
			if acc.Tentative || tentativeEvidence {
				out.Type = tuple.Tentative
			}
			a.Emit(out)
		}
		if end > a.closedThrough {
			a.closedThrough = end
		}
		delete(a.windows, ws)
	}
	a.keysScratch = starts[:0]
}

type aggState struct {
	Windows       map[int64]map[int64]aggAcc
	Watermark     int64
	ClosedThrough int64
	SentBound     int64
}

// Checkpoint deep-copies the open windows and watermarks.
func (a *Aggregate) Checkpoint() any {
	ws := make(map[int64]map[int64]aggAcc, len(a.windows))
	for s, groups := range a.windows {
		g := make(map[int64]aggAcc, len(groups))
		for k, acc := range groups {
			g[k] = *acc
		}
		ws[s] = g
	}
	return aggState{Windows: ws, Watermark: a.watermark, ClosedThrough: a.closedThrough, SentBound: a.sentBound}
}

// Restore reinstates a snapshot.
func (a *Aggregate) Restore(s any) {
	st := s.(aggState)
	a.windows = make(map[int64]map[int64]*aggAcc, len(st.Windows))
	for ws, groups := range st.Windows {
		g := make(map[int64]*aggAcc, len(groups))
		for k, acc := range groups {
			cp := acc
			g[k] = &cp
		}
		a.windows[ws] = g
	}
	a.watermark = st.Watermark
	a.closedThrough = st.ClosedThrough
	a.sentBound = st.SentBound
}
