package operator

import "borealis/internal/tuple"

// Filter tests each data tuple against a predicate and forwards the ones
// that pass. Control tuples (boundaries, undo, rec-done) pass through
// unconditionally so that punctuation and recovery markers are never lost.
// Filter is stateless and therefore convergent-capable (§8.1).
type Filter struct {
	Base
	pred func(tuple.Tuple) bool
	// passed counts forwarded data tuples; checkpointed so that a
	// restored operator reports consistent statistics.
	passed uint64
}

// NewFilter builds a filter from a predicate. The predicate must be a pure
// function of the tuple's value for the operator to stay deterministic.
func NewFilter(name string, pred func(tuple.Tuple) bool) *Filter {
	if pred == nil {
		panic("operator: nil filter predicate")
	}
	return &Filter{Base: NewBase(name), pred: pred}
}

// Inputs returns 1.
func (f *Filter) Inputs() int { return 1 }

// Process forwards data tuples that satisfy the predicate.
func (f *Filter) Process(_ int, t tuple.Tuple) {
	if !t.IsData() {
		f.Emit(t)
		return
	}
	if f.pred(t) {
		f.passed++
		f.Emit(t)
	}
}

// Passed returns the number of data tuples forwarded so far.
func (f *Filter) Passed() uint64 { return f.passed }

type filterState struct{ Passed uint64 }

// Checkpoint snapshots the filter.
func (f *Filter) Checkpoint() any { return filterState{Passed: f.passed} }

// Restore reinstates a snapshot.
func (f *Filter) Restore(s any) { f.passed = s.(filterState).Passed }

// Map transforms each data tuple's payload with a pure function, leaving
// type, timestamp and identity intact. Map is stateless and therefore
// convergent-capable (§8.1).
type Map struct {
	Base
	fn func([]int64) []int64
}

// NewMap builds a map operator from a pure payload transformation.
func NewMap(name string, fn func([]int64) []int64) *Map {
	if fn == nil {
		panic("operator: nil map function")
	}
	return &Map{Base: NewBase(name), fn: fn}
}

// Inputs returns 1.
func (m *Map) Inputs() int { return 1 }

// Process transforms data tuples and forwards control tuples untouched.
func (m *Map) Process(_ int, t tuple.Tuple) {
	if t.IsData() {
		t.Data = m.fn(t.Data)
	}
	m.Emit(t)
}

// Checkpoint returns nil: Map is stateless.
func (m *Map) Checkpoint() any { return nil }

// Restore is a no-op for the stateless Map.
func (m *Map) Restore(any) {}

// Union is the plain Borealis merge operator. DPC replaces it with SUnion;
// it is kept (a) as the non-fault-tolerant baseline used for the zero-delay
// columns of Tables IV and V, and (b) for diagrams that opt out of DPC.
//
// Union forwards data tuples in arrival order. For boundaries it emits the
// minimum watermark across its inputs, so downstream punctuation remains
// sound. REC_DONE is forwarded once all inputs produced one.
type Union struct {
	Base
	inputs    int
	bounds    []int64
	sent      int64
	recDoneIn []bool
}

// NewUnion builds a plain union with n input ports.
func NewUnion(name string, n int) *Union {
	if n < 1 {
		panic("operator: union needs at least one input")
	}
	b := make([]int64, n)
	for i := range b {
		b[i] = -1
	}
	return &Union{Base: NewBase(name), inputs: n, bounds: b, sent: -1, recDoneIn: make([]bool, n)}
}

// Inputs returns the number of input ports.
func (u *Union) Inputs() int { return u.inputs }

// Process forwards data immediately and boundaries at the minimum watermark.
func (u *Union) Process(port int, t tuple.Tuple) {
	switch t.Type {
	case tuple.Boundary:
		if t.STime > u.bounds[port] {
			u.bounds[port] = t.STime
		}
		min := u.bounds[0]
		for _, b := range u.bounds[1:] {
			if b < min {
				min = b
			}
		}
		if min > u.sent {
			u.sent = min
			u.Emit(tuple.NewBoundary(min))
		}
	case tuple.RecDone:
		u.recDoneIn[port] = true
		for _, ok := range u.recDoneIn {
			if !ok {
				return
			}
		}
		for i := range u.recDoneIn {
			u.recDoneIn[i] = false
		}
		u.Emit(t)
	default:
		tt := t
		tt.Src = int32(port)
		u.Emit(tt)
	}
}

type unionState struct {
	Bounds  []int64
	Sent    int64
	RecDone []bool
}

// Checkpoint snapshots the union's watermarks.
func (u *Union) Checkpoint() any {
	return unionState{
		Bounds:  append([]int64(nil), u.bounds...),
		Sent:    u.sent,
		RecDone: append([]bool(nil), u.recDoneIn...),
	}
}

// Restore reinstates a snapshot.
func (u *Union) Restore(s any) {
	st := s.(unionState)
	copy(u.bounds, st.Bounds)
	u.sent = st.Sent
	copy(u.recDoneIn, st.RecDone)
}
