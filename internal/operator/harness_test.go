package operator

import (
	"borealis/internal/runtime"
	"borealis/internal/tuple"
)

// collector is a test Env that records emissions and signals.
type collector struct {
	sim     *runtime.VirtualClock
	out     []tuple.Tuple
	signals []Signal
	divergd bool
}

func newCollector(sim *runtime.VirtualClock) *collector { return &collector{sim: sim} }

func (c *collector) env() *Env {
	e := &Env{
		Emit:     func(t tuple.Tuple) { c.out = append(c.out, t) },
		Signal:   func(s Signal) { c.signals = append(c.signals, s) },
		Diverged: func() bool { return c.divergd },
	}
	if c.sim != nil {
		e.Now = c.sim.Now
		e.After = c.sim.After
	} else {
		e.Now = func() int64 { return 0 }
	}
	return e
}

func (c *collector) data() []tuple.Tuple {
	var out []tuple.Tuple
	for _, t := range c.out {
		if t.IsData() {
			out = append(out, t)
		}
	}
	return out
}

func (c *collector) ofType(typ tuple.Type) []tuple.Tuple {
	var out []tuple.Tuple
	for _, t := range c.out {
		if t.Type == typ {
			out = append(out, t)
		}
	}
	return out
}

func (c *collector) reset() { c.out = nil; c.signals = nil }

// attach wires an operator to a fresh collector.
func attach(op Operator, sim *runtime.VirtualClock) *collector {
	c := newCollector(sim)
	op.Attach(c.env())
	return c
}

func stimes(ts []tuple.Tuple) []int64 {
	out := make([]int64, len(ts))
	for i, t := range ts {
		out[i] = t.STime
	}
	return out
}

func eqI64(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
