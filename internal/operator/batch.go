package operator

import "borealis/internal/tuple"

// BatchProcessor is implemented by operators that can consume a whole
// batch of tuples in one call. The engine's staged batch data plane uses
// it where it pays: an implementation may elide per-tuple bookkeeping that
// a sequence of Process calls would repeat (SUnion skips the pump scan
// after inserts that provably cannot release a bucket).
//
// ProcessBatch must be exactly equivalent to calling Process(port, t) for
// each tuple in order. An implementation that cannot guarantee that under
// its current state (e.g. a policy that arms timers mid-batch) returns
// false without consuming anything; the caller then falls back to
// per-tuple Process calls.
type BatchProcessor interface {
	ProcessBatch(port int, ts []tuple.Tuple) bool
}

// CleanPreserving marks BatchProcessors with the invariant: when
// ProcessBatch accepts a batch holding only stable insertions and stable
// boundaries, everything it emits is again only stable insertions and
// stable boundaries. The staged dispatcher can then skip the per-tuple
// Gate B rescan of the stage's output — the input was already proven
// clean, inductively from the dispatch entry gate. The invariant only
// covers accepting ProcessBatch calls; a declined batch runs per-tuple
// Process, which may emit tentative tuples (e.g. a diverged SOutput), so
// the dispatcher still rescans after any fallback.
type CleanPreserving interface{ CleanPreserving() }

// MutatesBatch marks BatchProcessors whose ProcessBatch may rewrite the
// input slice in place (compacting it, reassigning IDs or payload
// pointers) and re-emit it through EmitLoan. A caller must hand such an
// operator only frames the caller owns — never a slice some other party
// will read again, like an arrival-log segment. The engine's staged
// dispatcher checks this marker on a chain's first stage and copies the
// ingested batch into a pool frame when it is set.
type MutatesBatch interface{ MutatesBatch() }

// ProcessBatch consumes a batch on the given port in one call. It is the
// SUnion hot path of the batch data plane: under PolicyNone/PolicySuspend
// (the steady state of a healthy node) a stable data insert can only make a
// bucket emittable by raising a boundary watermark, so the per-tuple pump
// scan that Process runs after every insert is skipped unless the state
// says pumping could emit something. Boundaries still pump immediately —
// the cursor they may advance decides whether later tuples in the same
// batch are late.
//
// Under the tentative-emitting policies (PolicyProcess/PolicyDelay) the
// pump arms flush timers whose heap order depends on tuple-by-tuple
// interleaving across operators, so the SUnion declines and the caller
// runs the exact per-tuple path.
func (s *SUnion) ProcessBatch(port int, ts []tuple.Tuple) bool {
	// The engine consumed any frame loaned out by the previous dispatch
	// before starting this one; the parked bucket is free to recycle. This
	// runs before the policy gate so a policy flip cannot strand the loan.
	s.reclaimLoan()
	if s.policy != PolicyNone && s.policy != PolicySuspend {
		return false
	}
	for i := 0; i < len(ts); {
		t := ts[i]
		switch {
		case t.Type == tuple.Insertion:
			start := s.bucketStart(t.STime)
			if start < s.cursor {
				s.droppedLate++
				i++
				continue
			}
			b := s.getBucket(start)
			if len(b.Tuples) == 0 {
				b.FirstArrival = s.Now()
			}
			t.Src = int32(port)
			b.Tuples = append(b.Tuples, t)
			if s.pumpNeeded() {
				s.pump()
			}
			i++
			// Same-bucket run: inserts change neither the boundary
			// watermarks nor the cursor, so after the pump check above the
			// per-insert pump is provably a no-op until the next boundary.
			// The rest of the run lands in one bulk append — unless the
			// pump just emitted this bucket (cursor passed start), which
			// makes the rest of the run late and sends it back through the
			// per-tuple path above to be dropped one by one.
			if start >= s.cursor {
				end := start + s.cfg.BucketSize
				j := i
				for j < len(ts) && ts[j].Type == tuple.Insertion &&
					ts[j].STime >= start && ts[j].STime < end {
					j++
				}
				if j > i {
					n := len(b.Tuples)
					b.Tuples = append(b.Tuples, ts[i:j]...)
					for k := n; k < len(b.Tuples); k++ {
						b.Tuples[k].Src = int32(port)
					}
					i = j
				}
			}
		case t.Type == tuple.Boundary && t.Src == 0:
			if t.STime > s.bounds[port] {
				s.bounds[port] = t.STime
				s.pump()
			}
			i++
		default:
			// Tentative data, tentative boundaries, undo, rec_done: rare
			// on this path — take the reference implementation in place
			// so ordering is preserved.
			s.Process(port, t)
			i++
		}
	}
	return true
}

// CleanPreserving: with a clean batch accepted under Gate A's policies,
// SUnion emits only sorted stable buckets and stable boundaries.
func (s *SUnion) CleanPreserving() {}

// pumpNeeded reports whether pump() could change state after a stable data
// insert under PolicyNone/PolicySuspend. The insert changed neither the
// boundary watermarks nor the cursor, so pumping does something only if
// the bucket at the cursor was already stable-covered (including the case
// where RevokeTentative freed it since the last pump), or the punctuation
// watermark min(stable, cursor) has not been forwarded yet. Timers need no
// attention: under these policies every pump exit stops the flush timer,
// so none is ever pending here.
func (s *SUnion) pumpNeeded() bool {
	stable := s.stableThrough()
	if stable >= s.cursor+s.cfg.BucketSize {
		return true
	}
	wm := stable
	if s.cursor < wm {
		wm = s.cursor
	}
	return wm > s.sentBound
}

// ProcessBatch filters a batch in one call, compacting the surviving
// tuples toward the front of the frame itself and loaning the shortened
// frame downstream — zero copies, zero staging. The write index never
// passes the read index, so the compaction is safe, and slots are only
// rewritten once a gap exists. Filter is type-agnostic — control tuples
// pass through exactly as in Process — so no state precondition gates the
// fast path.
func (f *Filter) ProcessBatch(_ int, ts []tuple.Tuple) bool {
	j := 0
	for i := range ts {
		t := ts[i]
		if t.IsData() {
			if !f.pred(t) {
				continue
			}
			f.passed++
		}
		if j != i {
			ts[j] = t
		}
		j++
	}
	f.EmitLoan(ts[:j])
	return true
}

// MutatesBatch: ProcessBatch compacts the input frame in place.
func (f *Filter) MutatesBatch() {}

// CleanPreserving: Filter forwards a subset of its input tuples unchanged.
func (f *Filter) CleanPreserving() {}

// ProcessBatch maps a batch in one call by retargeting each data tuple's
// payload pointer in the frame itself and loaning the frame downstream —
// no copy, no staging. The payloads are never written through (fn returns
// a fresh slice), so tuples sharing payload arrays with logs or buffers
// upstream are unaffected. Map is stateless and type-agnostic, so no
// precondition gates the fast path.
func (m *Map) ProcessBatch(_ int, ts []tuple.Tuple) bool {
	for i := range ts {
		if ts[i].IsData() {
			ts[i].Data = m.fn(ts[i].Data)
		}
	}
	m.EmitLoan(ts)
	return true
}

// MutatesBatch: ProcessBatch rewrites payload pointers in the input frame.
func (m *Map) MutatesBatch() {}

// CleanPreserving: Map never changes a tuple's type.
func (m *Map) CleanPreserving() {}

// ProcessBatch runs SOutput's steady-state fast path: when the node is not
// diverged, no undo is armed or outstanding, and the dup-drop region of a
// restore has been passed (sentStable ≥ extStable), every stable insertion
// reduces to "assign the next stable id and count it" and every stable
// boundary passes through — so the IDs are written into the frame itself
// and the frame is loaned downstream whole, copying nothing. Any other
// tuple type flushes the conforming prefix (copied to scratch, so the
// reference path's emissions cannot grow into the region still being
// read) and hands the remainder to Process, which re-reads state per
// tuple; outside the steady state the whole batch is declined.
//
// The up-front divergence check holds for the whole call: the flag only
// transitions on a tentative emission, and this path emits only stable
// tuples.
func (o *SOutput) ProcessBatch(port int, ts []tuple.Tuple) bool {
	if o.diverged() || o.undoArmed || o.extTentative != 0 || o.sentStable < o.extStable {
		return false
	}
	for i := range ts {
		t := &ts[i]
		switch {
		case t.Type == tuple.Insertion:
			o.sentStable++
			t.ID = o.lastStableID + 1
			o.extStable++
			o.lastStableID = t.ID
		case t.Type == tuple.Boundary && t.Src == 0:
			// passes through as-is
		default:
			out := append(o.scratch[:0], ts[:i]...)
			o.EmitLoan(out)
			o.scratch = out[:0]
			for ; i < len(ts); i++ {
				o.Process(port, ts[i])
			}
			return true
		}
	}
	o.EmitLoan(ts)
	return true
}

// MutatesBatch: ProcessBatch assigns stable IDs in the input frame.
func (o *SOutput) MutatesBatch() {}

// CleanPreserving: the accepting fast path emits the input tuples with
// stable IDs assigned, types untouched.
func (o *SOutput) CleanPreserving() {}
