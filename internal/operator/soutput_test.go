package operator

import (
	"testing"
	"testing/quick"

	"borealis/internal/tuple"
)

func TestSOutputAssignsIncreasingIDs(t *testing.T) {
	o := NewSOutput("out")
	c := attach(o, nil)
	o.Process(0, tuple.NewInsertion(1, 10))
	o.Process(0, tuple.NewInsertion(2, 20))
	got := c.data()
	if got[0].ID != 1 || got[1].ID != 2 {
		t.Fatalf("ids not assigned sequentially: %v", got)
	}
	if o.LastStableID() != 2 {
		t.Fatalf("LastStableID = %d, want 2", o.LastStableID())
	}
}

func TestSOutputTracksTentativeOutstanding(t *testing.T) {
	o := NewSOutput("out")
	attach(o, nil)
	o.Process(0, tuple.NewInsertion(1, 1))
	o.Process(0, tuple.NewTentative(2, 2))
	o.Process(0, tuple.NewTentative(3, 3))
	if o.TentativeOutstanding() != 2 {
		t.Fatalf("TentativeOutstanding = %d, want 2", o.TentativeOutstanding())
	}
	o.Process(0, tuple.NewInsertion(4, 4))
	if o.TentativeOutstanding() != 0 {
		t.Fatal("stable tuple must reset the tentative count")
	}
}

func TestSOutputDivergedForcesTentative(t *testing.T) {
	o := NewSOutput("out")
	c := attach(o, nil)
	c.divergd = true
	o.Process(0, tuple.NewInsertion(1, 1))
	got := c.data()
	if len(got) != 1 || got[0].Type != tuple.Tentative {
		t.Fatalf("diverged node must emit tentative: %v", got)
	}
}

func TestSOutputDropsBoundariesWhileDiverged(t *testing.T) {
	o := NewSOutput("out")
	c := attach(o, nil)
	o.Process(0, tuple.NewBoundary(10))
	if len(c.ofType(tuple.Boundary)) != 1 {
		t.Fatal("boundary should pass when consistent")
	}
	c.divergd = true
	o.Process(0, tuple.NewBoundary(20))
	if len(c.ofType(tuple.Boundary)) != 1 {
		t.Fatal("boundary must be withheld while diverged (footnote 5)")
	}
}

func TestSOutputReconciliationUndoAndCorrections(t *testing.T) {
	o := NewSOutput("out")
	c := attach(o, nil)
	// Normal operation: two stable tuples.
	o.Process(0, tuple.NewInsertion(1, 1))
	o.Process(0, tuple.NewInsertion(2, 2))
	snap := o.Checkpoint()
	// Failure: three tentative tuples.
	o.Process(0, tuple.NewTentative(3, 3))
	o.Process(0, tuple.NewTentative(4, 4))
	o.Process(0, tuple.NewTentative(5, 5))
	c.reset()
	// Reconciliation: restore, replay re-derives stable versions.
	o.Restore(snap)
	o.Process(0, tuple.NewInsertion(3, 3))
	o.Process(0, tuple.NewInsertion(4, 4))
	o.Process(0, tuple.NewRecDone(5))
	out := c.out
	if len(out) != 4 {
		t.Fatalf("want undo + 2 corrections + rec_done, got %v", out)
	}
	if out[0].Type != tuple.Undo || out[0].ID != 2 {
		t.Fatalf("undo must name the last stable tuple (2): %v", out[0])
	}
	if out[1].Type != tuple.Insertion || out[2].Type != tuple.Insertion {
		t.Fatalf("corrections must be stable: %v", out)
	}
	if out[1].ID <= 2 || out[2].ID <= out[1].ID {
		t.Fatalf("correction ids must keep increasing: %v", out)
	}
	if out[3].Type != tuple.RecDone {
		t.Fatalf("rec_done must end the corrections: %v", out)
	}
	if len(c.signals) != 1 || c.signals[0].Kind != SigRecDone {
		t.Fatalf("SOutput must signal REC_DONE to the CM: %v", c.signals)
	}
}

func TestSOutputNoUndoWithoutOutstandingTentative(t *testing.T) {
	o := NewSOutput("out")
	c := attach(o, nil)
	o.Process(0, tuple.NewInsertion(1, 1))
	snap := o.Checkpoint()
	// Failure healed before anything tentative was emitted (masked).
	o.Restore(snap)
	c.reset()
	o.Process(0, tuple.NewInsertion(2, 2))
	if len(c.ofType(tuple.Undo)) != 0 {
		t.Fatalf("masked failure must not produce undo: %v", c.out)
	}
}

func TestSOutputDropsDuplicateStableDuringReplay(t *testing.T) {
	o := NewSOutput("out")
	c := attach(o, nil)
	o.Process(0, tuple.NewInsertion(1, 1))
	o.Process(0, tuple.NewInsertion(2, 2))
	// Simulate a coarse checkpoint taken BEFORE those two tuples (e.g.
	// the §8.2 per-operator variant): replay re-derives them.
	o.Restore(soutputState{SentStable: 0})
	c.reset()
	o.Process(0, tuple.NewInsertion(1, 1)) // duplicate
	o.Process(0, tuple.NewInsertion(2, 2)) // duplicate
	o.Process(0, tuple.NewInsertion(3, 3)) // genuinely new
	got := c.data()
	if len(got) != 1 || got[0].STime != 3 {
		t.Fatalf("duplicates must be dropped, new data kept: %v", got)
	}
	if got[0].ID != 3 {
		t.Fatalf("ids keep increasing across dedup: %v", got[0])
	}
}

func TestSOutputUndoAtRecDoneWhenNoCorrections(t *testing.T) {
	// If reconciliation produces no data (e.g. all tentative output was
	// wrong and nothing replaces it), the undo must still fire by the
	// time REC_DONE crosses the output.
	o := NewSOutput("out")
	c := attach(o, nil)
	o.Process(0, tuple.NewInsertion(1, 1))
	snap := o.Checkpoint()
	o.Process(0, tuple.NewTentative(2, 2))
	o.Restore(snap)
	c.reset()
	o.Process(0, tuple.NewRecDone(3))
	out := c.out
	if len(out) != 2 || out[0].Type != tuple.Undo || out[0].ID != 1 || out[1].Type != tuple.RecDone {
		t.Fatalf("want undo then rec_done, got %v", out)
	}
}

func TestSOutputSecondFailureAfterRecDone(t *testing.T) {
	// Fig. 11(b): tentative tuples after a REC_DONE belong to a new
	// failure; the next reconciliation undoes only those.
	o := NewSOutput("out")
	c := attach(o, nil)
	o.Process(0, tuple.NewInsertion(1, 1))
	snap1 := o.Checkpoint()
	o.Process(0, tuple.NewTentative(2, 2))
	o.Restore(snap1)
	o.Process(0, tuple.NewInsertion(2, 2)) // correction (undo emitted)
	o.Process(0, tuple.NewRecDone(0))
	lastStable := o.LastStableID()
	snap2 := o.Checkpoint()
	// Second failure.
	o.Process(0, tuple.NewTentative(3, 3))
	o.Process(0, tuple.NewTentative(4, 4))
	c.reset()
	o.Restore(snap2)
	o.Process(0, tuple.NewInsertion(3, 3))
	o.Process(0, tuple.NewRecDone(0))
	out := c.out
	if out[0].Type != tuple.Undo || out[0].ID != lastStable {
		t.Fatalf("second undo must reference the corrected stable stream: %v", out)
	}
}

func TestSOutputUndoForwarded(t *testing.T) {
	o := NewSOutput("out")
	c := attach(o, nil)
	o.Process(0, tuple.NewUndo(7))
	if len(c.ofType(tuple.Undo)) != 1 {
		t.Fatal("fine-grained undo must be forwarded")
	}
}

// Property: for any mix of stable/tentative inputs with arbitrary
// checkpoint/restore points, the external stream upholds three
// invariants. (1) The i-th stable tuple always carries id i: stable ids
// are a pure function of the position in the stable stream, unperturbed
// by how much tentative data failures injected in between — downstream
// SUnions break serialization ties by id, so failure-dependent ids would
// reorder equal-timestamp groups and violate Definition 1. (2) A stable
// tuple is never delivered twice. (3) As a consumer sees the stream —
// compacting the revoked suffix whenever an undo passes — ids are
// strictly increasing; ids of a revoked tentative suffix may be reused
// by the correction that replaces it, but never coexist with it.
func TestQuickSOutputStreamInvariants(t *testing.T) {
	f := func(ops []uint8) bool {
		o := NewSOutput("out")
		c := newCollector(nil)
		o.Attach(c.env())
		var snap any = o.Checkpoint()
		stable := int64(0)
		replayFrom := int64(0)
		for _, op := range ops {
			switch op % 4 {
			case 0:
				stable++
				o.Process(0, tuple.NewInsertion(stable, stable))
			case 1:
				o.Process(0, tuple.NewTentative(stable+1, -1))
			case 2:
				snap = o.Checkpoint()
				replayFrom = stable
			case 3:
				o.Restore(snap)
				// Deterministic replay: re-derive the stable
				// tuples after the checkpoint.
				for s := replayFrom + 1; s <= stable; s++ {
					o.Process(0, tuple.NewInsertion(s, s))
				}
			}
		}
		// (1) + (2): stable ids are 1, 2, 3, ... with no repeats.
		var nextStable uint64
		seenStable := make(map[int64]bool)
		for _, tp := range c.out {
			if tp.Type != tuple.Insertion {
				continue
			}
			nextStable++
			if tp.ID != nextStable {
				return false
			}
			if seenStable[tp.STime] {
				return false
			}
			seenStable[tp.STime] = true
		}
		// (3): the compacted stream has strictly increasing ids.
		var effective []tuple.Tuple
		for _, tp := range c.out {
			switch {
			case tp.Type == tuple.Undo:
				effective = tuple.ApplyUndo(effective, tp.ID)
			case tp.IsData():
				effective = append(effective, tp)
			}
		}
		lastID := uint64(0)
		for _, tp := range effective {
			if tp.ID <= lastID {
				return false
			}
			lastID = tp.ID
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}
