package operator

import (
	"testing"

	"borealis/internal/tuple"
)

func TestFilterPredicate(t *testing.T) {
	f := NewFilter("f", func(tp tuple.Tuple) bool { return tp.Field(0) > 10 })
	c := attach(f, nil)
	f.Process(0, tuple.NewInsertion(1, 5))
	f.Process(0, tuple.NewInsertion(2, 15))
	f.Process(0, tuple.NewTentative(3, 20))
	got := c.data()
	if len(got) != 2 || got[0].Field(0) != 15 || got[1].Field(0) != 20 {
		t.Fatalf("filter output wrong: %v", got)
	}
	if got[1].Type != tuple.Tentative {
		t.Fatal("filter must preserve tentativeness")
	}
	if f.Passed() != 2 {
		t.Fatalf("Passed() = %d, want 2", f.Passed())
	}
}

func TestFilterForwardsControl(t *testing.T) {
	f := NewFilter("f", func(tuple.Tuple) bool { return false })
	c := attach(f, nil)
	f.Process(0, tuple.NewBoundary(5))
	f.Process(0, tuple.NewUndo(1))
	f.Process(0, tuple.NewRecDone(9))
	if len(c.out) != 3 {
		t.Fatalf("control tuples must pass a closed filter, got %v", c.out)
	}
}

func TestFilterCheckpointRestore(t *testing.T) {
	f := NewFilter("f", func(tuple.Tuple) bool { return true })
	attach(f, nil)
	f.Process(0, tuple.NewInsertion(1, 1))
	snap := f.Checkpoint()
	f.Process(0, tuple.NewInsertion(2, 2))
	if f.Passed() != 2 {
		t.Fatal("expected 2 passed")
	}
	f.Restore(snap)
	if f.Passed() != 1 {
		t.Fatalf("restore: Passed() = %d, want 1", f.Passed())
	}
}

func TestFilterNilPredicatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewFilter("f", nil)
}

func TestMapTransforms(t *testing.T) {
	m := NewMap("m", func(d []int64) []int64 { return []int64{d[0] * 2} })
	c := attach(m, nil)
	m.Process(0, tuple.NewInsertion(1, 21))
	m.Process(0, tuple.NewBoundary(5))
	got := c.data()
	if len(got) != 1 || got[0].Field(0) != 42 {
		t.Fatalf("map output wrong: %v", got)
	}
	if len(c.ofType(tuple.Boundary)) != 1 {
		t.Fatal("map must forward boundaries")
	}
	if m.Checkpoint() != nil {
		t.Fatal("map is stateless; checkpoint should be nil")
	}
	m.Restore(nil) // must not panic
}

func TestMapPreservesTentative(t *testing.T) {
	m := NewMap("m", func(d []int64) []int64 { return d })
	c := attach(m, nil)
	m.Process(0, tuple.NewTentative(1, 3))
	if c.data()[0].Type != tuple.Tentative {
		t.Fatal("map must preserve tuple type")
	}
}

func TestUnionMergesAndTags(t *testing.T) {
	u := NewUnion("u", 2)
	c := attach(u, nil)
	u.Process(0, tuple.NewInsertion(1, 10))
	u.Process(1, tuple.NewInsertion(2, 20))
	got := c.data()
	if len(got) != 2 || got[0].Src != 0 || got[1].Src != 1 {
		t.Fatalf("union must tag Src by port: %v", got)
	}
}

func TestUnionBoundaryIsMinWatermark(t *testing.T) {
	u := NewUnion("u", 2)
	c := attach(u, nil)
	u.Process(0, tuple.NewBoundary(10))
	if len(c.ofType(tuple.Boundary)) != 0 {
		t.Fatal("boundary must wait for all ports")
	}
	u.Process(1, tuple.NewBoundary(5))
	bs := c.ofType(tuple.Boundary)
	if len(bs) != 1 || bs[0].STime != 5 {
		t.Fatalf("want min watermark 5, got %v", bs)
	}
	// A later boundary on port 1 raises the min.
	u.Process(1, tuple.NewBoundary(30))
	bs = c.ofType(tuple.Boundary)
	if len(bs) != 2 || bs[1].STime != 10 {
		t.Fatalf("want watermark 10, got %v", bs)
	}
	// Non-advancing boundary emits nothing.
	u.Process(1, tuple.NewBoundary(8))
	if len(c.ofType(tuple.Boundary)) != 2 {
		t.Fatal("non-advancing boundary must not emit")
	}
}

func TestUnionRecDoneWaitsAllPorts(t *testing.T) {
	u := NewUnion("u", 3)
	c := attach(u, nil)
	u.Process(0, tuple.NewRecDone(1))
	u.Process(1, tuple.NewRecDone(1))
	if len(c.ofType(tuple.RecDone)) != 0 {
		t.Fatal("rec_done must wait for all ports")
	}
	u.Process(2, tuple.NewRecDone(1))
	if len(c.ofType(tuple.RecDone)) != 1 {
		t.Fatal("rec_done should fire once all ports reported")
	}
	// Flags must reset for the next reconciliation.
	u.Process(0, tuple.NewRecDone(2))
	if len(c.ofType(tuple.RecDone)) != 1 {
		t.Fatal("flags must reset after forwarding")
	}
}

func TestUnionCheckpointRestore(t *testing.T) {
	u := NewUnion("u", 2)
	c := attach(u, nil)
	u.Process(0, tuple.NewBoundary(10))
	u.Process(1, tuple.NewBoundary(10))
	snap := u.Checkpoint()
	u.Process(0, tuple.NewBoundary(50))
	u.Process(1, tuple.NewBoundary(50))
	u.Restore(snap)
	c.reset()
	// After restore the watermark is 10 again; an advance to 20 emits.
	u.Process(0, tuple.NewBoundary(20))
	u.Process(1, tuple.NewBoundary(20))
	bs := c.ofType(tuple.Boundary)
	if len(bs) != 1 || bs[0].STime != 20 {
		t.Fatalf("after restore want boundary 20, got %v", bs)
	}
}
