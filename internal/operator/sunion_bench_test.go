package operator

import (
	"testing"

	"borealis/internal/runtime"
	"borealis/internal/tuple"
	"borealis/internal/vtime"
)

// BenchmarkSUnionPump drives the steady-state serialization path: data
// tuples arriving on two ports followed by the boundaries that stabilize
// and flush each bucket. This is the per-tuple hot loop of every node.
func BenchmarkSUnionPump(b *testing.B) {
	const bucket = 100 * vtime.Millisecond
	su := NewSUnion("su", SUnionConfig{Ports: 2, BucketSize: bucket})
	sink := 0
	env := &Env{
		Emit: func(t tuple.Tuple) { sink++ },
		Now:  func() int64 { return 0 },
	}
	su.Attach(env)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st := int64(i) * bucket
		su.Process(0, tuple.NewInsertion(st, 1))
		su.Process(0, tuple.NewInsertion(st+1, 2))
		su.Process(1, tuple.NewInsertion(st+2, 3))
		su.Process(1, tuple.NewInsertion(st+3, 4))
		su.Process(0, tuple.NewBoundary(st+bucket))
		su.Process(1, tuple.NewBoundary(st+bucket))
	}
	if sink == 0 {
		b.Fatal("nothing emitted")
	}
}

// BenchmarkSUnionPumpTentative measures the failure-mode path: PolicyProcess
// with a flush timer re-armed per bucket, the dominant load during the
// paper's long-failure experiments.
func BenchmarkSUnionPumpTentative(b *testing.B) {
	const bucket = 100 * vtime.Millisecond
	sim := runtime.NewVirtual()
	su := NewSUnion("su", SUnionConfig{
		Ports: 1, BucketSize: bucket,
		Delay: vtime.Millisecond, TentativeWait: 50 * vtime.Millisecond,
	})
	sink := 0
	env := &Env{
		Emit:  func(t tuple.Tuple) { sink++ },
		Now:   sim.Now,
		After: sim.After,
	}
	su.Attach(env)
	su.SetPolicy(PolicyProcess)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st := sim.Now()
		su.Process(0, tuple.NewInsertion(st, 1))
		su.Process(0, tuple.NewInsertion(st+1, 2))
		sim.RunFor(bucket)
	}
	if sink == 0 {
		b.Fatal("nothing emitted")
	}
}
