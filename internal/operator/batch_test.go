package operator

import (
	"testing"

	"borealis/internal/runtime"
	"borealis/internal/tuple"
)

// loanCollector is a collector whose env offers the bulk emission paths,
// with EmitLoan accepting or declining loans on command. It records every
// loaned slice so tests can assert aliasing.
type loanCollector struct {
	collector
	takeLoans bool
	loans     [][]tuple.Tuple
}

func attachLoan(op Operator, sim *runtime.VirtualClock, takeLoans bool) *loanCollector {
	c := &loanCollector{takeLoans: takeLoans}
	c.sim = sim
	e := c.env()
	e.EmitBatch = func(ts []tuple.Tuple) { c.out = append(c.out, ts...) }
	e.EmitLoan = func(ts []tuple.Tuple) bool {
		c.out = append(c.out, ts...)
		if c.takeLoans {
			c.loans = append(c.loans, ts)
		}
		return c.takeLoans
	}
	op.Attach(e)
	return c
}

func sameTuples(t *testing.T, got, want []tuple.Tuple) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("emission count differs: got %d, want %d\ngot  %v\nwant %v", len(got), len(want), got, want)
	}
	for i := range got {
		if got[i].Type != want[i].Type || got[i].ID != want[i].ID ||
			got[i].Src != want[i].Src || !tuple.SameValue(got[i], want[i]) {
			t.Fatalf("emission %d differs: got %+v, want %+v", i, got[i], want[i])
		}
	}
}

// cloneBatch deep-enough copies a batch for the in-place operators: the
// tuple structs are copied; payload arrays stay shared, which is exactly
// what the MutatesBatch contract allows (payloads are never written
// through).
func cloneBatch(ts []tuple.Tuple) []tuple.Tuple {
	out := make([]tuple.Tuple, len(ts))
	copy(out, ts)
	return out
}

func TestFilterProcessBatchMatchesProcess(t *testing.T) {
	in := []tuple.Tuple{
		tuple.NewInsertion(10, 1),
		tuple.NewInsertion(20, 2),
		tuple.NewBoundary(25),
		tuple.NewInsertion(30, 3),
		tuple.NewTentative(40, 4),
		tuple.NewInsertion(50, 5),
	}
	pred := func(t tuple.Tuple) bool { return t.Data[0]%2 == 1 }

	ref := NewFilter("f", pred)
	rc := attach(ref, nil)
	for _, tp := range in {
		ref.Process(0, tp)
	}

	fast := NewFilter("f", pred)
	fc := attachLoan(fast, nil, true)
	frame := cloneBatch(in)
	if !fast.ProcessBatch(0, frame) {
		t.Fatal("Filter.ProcessBatch must always accept")
	}
	sameTuples(t, fc.out, rc.out)
	if fast.passed != ref.passed {
		t.Fatalf("passed counter differs: %d vs %d", fast.passed, ref.passed)
	}
	// In-place contract: the loaned slice is the input frame, compacted.
	if len(fc.loans) != 1 || &fc.loans[0][0] != &frame[0] {
		t.Fatal("Filter.ProcessBatch must loan the compacted input frame itself")
	}
}

func TestMapProcessBatchMatchesProcessWithoutWritingPayloads(t *testing.T) {
	payload := []int64{7}
	in := []tuple.Tuple{
		{Type: tuple.Insertion, STime: 10, Data: payload},
		tuple.NewBoundary(15),
		tuple.NewTentative(20, 3),
	}
	fn := func(d []int64) []int64 { return []int64{d[0] * 2} }

	ref := NewMap("m", fn)
	rc := attach(ref, nil)
	for _, tp := range in {
		ref.Process(0, tp)
	}

	fast := NewMap("m", fn)
	fc := attachLoan(fast, nil, true)
	frame := cloneBatch(in)
	if !fast.ProcessBatch(0, frame) {
		t.Fatal("Map.ProcessBatch must always accept")
	}
	sameTuples(t, fc.out, rc.out)
	if payload[0] != 7 {
		t.Fatalf("Map.ProcessBatch wrote through a shared payload: %v", payload)
	}
	if len(fc.loans) != 1 || &fc.loans[0][0] != &frame[0] {
		t.Fatal("Map.ProcessBatch must loan the input frame itself")
	}
}

func TestSOutputProcessBatchSteadyMatchesProcess(t *testing.T) {
	in := []tuple.Tuple{
		tuple.NewInsertion(10, 1),
		tuple.NewBoundary(15),
		tuple.NewInsertion(20, 2),
		tuple.NewInsertion(30, 3),
	}
	ref := NewSOutput("o")
	rc := attach(ref, nil)
	for _, tp := range in {
		ref.Process(0, tp)
	}

	fast := NewSOutput("o")
	fc := attachLoan(fast, nil, true)
	if !fast.ProcessBatch(0, cloneBatch(in)) {
		t.Fatal("SOutput.ProcessBatch must accept in the steady state")
	}
	sameTuples(t, fc.out, rc.out)
	if fast.LastStableID() != ref.LastStableID() {
		t.Fatalf("lastStableID differs: %d vs %d", fast.LastStableID(), ref.LastStableID())
	}
}

func TestSOutputProcessBatchRarePathMatchesProcess(t *testing.T) {
	// A tentative tuple mid-batch forces the flush-prefix-then-per-tuple
	// path; everything after it goes through the reference implementation.
	in := []tuple.Tuple{
		tuple.NewInsertion(10, 1),
		tuple.NewInsertion(20, 2),
		tuple.NewTentative(30, 3),
		tuple.NewInsertion(40, 4),
	}
	ref := NewSOutput("o")
	rc := attach(ref, nil)
	for _, tp := range in {
		ref.Process(0, tp)
	}

	fast := NewSOutput("o")
	fc := attachLoan(fast, nil, true)
	if !fast.ProcessBatch(0, cloneBatch(in)) {
		t.Fatal("rare path still accepts the batch")
	}
	sameTuples(t, fc.out, rc.out)
	// The flushed prefix must NOT alias the input frame: the reference
	// path's later emissions append to the collector while the loan is
	// outstanding, so the prefix is copied to scratch first.
	if len(fc.loans) == 0 {
		t.Fatal("expected the conforming prefix to be loaned")
	}
}

func TestSOutputProcessBatchDeclinesWhenDiverged(t *testing.T) {
	fast := NewSOutput("o")
	fc := attachLoan(fast, nil, true)
	fc.divergd = true
	if fast.ProcessBatch(0, []tuple.Tuple{tuple.NewInsertion(10, 1)}) {
		t.Fatal("SOutput.ProcessBatch must decline while diverged")
	}
	if len(fc.out) != 0 {
		t.Fatalf("declined batch must consume nothing, emitted %v", fc.out)
	}
}

func TestSUnionProcessBatchMatchesProcess(t *testing.T) {
	// Inserts spanning two buckets with interleaved boundaries, a late
	// tuple, and a same-bucket run that exercises the bulk append.
	in := []tuple.Tuple{
		tuple.NewInsertion(10*ms, 1),
		tuple.NewInsertion(20*ms, 2),
		tuple.NewInsertion(30*ms, 3),
		tuple.NewInsertion(110*ms, 4),
		tuple.NewBoundary(100 * ms),  // releases bucket 0, makes later <100ms late
		tuple.NewInsertion(50*ms, 5), // late: dropped
		tuple.NewInsertion(120*ms, 6),
		tuple.NewInsertion(130*ms, 7),
		tuple.NewBoundary(200 * ms),
	}
	run := func(batch bool) ([]tuple.Tuple, uint64) {
		sim := runtime.NewVirtual()
		s := NewSUnion("su", SUnionConfig{Ports: 1, BucketSize: 100 * ms, Delay: 2 * sec})
		c := attachLoan(s, sim, false)
		if batch {
			if !s.ProcessBatch(0, cloneBatch(in)) {
				t.Fatal("SUnion.ProcessBatch must accept under PolicyNone")
			}
		} else {
			for _, tp := range in {
				s.Process(0, tp)
			}
		}
		return c.out, s.DroppedLate()
	}
	ref, refLate := run(false)
	got, gotLate := run(true)
	sameTuples(t, got, ref)
	if gotLate != refLate {
		t.Fatalf("droppedLate differs: %d vs %d", gotLate, refLate)
	}
}

func TestSUnionProcessBatchDeclinesUnderTentativePolicies(t *testing.T) {
	for _, p := range []DelayPolicy{PolicyProcess, PolicyDelay} {
		sim := runtime.NewVirtual()
		s := NewSUnion("su", SUnionConfig{Ports: 1, BucketSize: 100 * ms, Delay: 2 * sec})
		attachLoan(s, sim, false)
		s.SetPolicy(p)
		if s.ProcessBatch(0, []tuple.Tuple{tuple.NewInsertion(10*ms, 1)}) {
			t.Fatalf("SUnion.ProcessBatch must decline under %v", p)
		}
	}
}

func TestSUnionLoanedBucketParkedUntilNextBatch(t *testing.T) {
	sim := runtime.NewVirtual()
	s := NewSUnion("su", SUnionConfig{Ports: 1, BucketSize: 100 * ms, Delay: 2 * sec})
	c := attachLoan(s, sim, true)

	if !s.ProcessBatch(0, []tuple.Tuple{
		tuple.NewInsertion(10*ms, 1),
		tuple.NewBoundary(100 * ms),
	}) {
		t.Fatal("batch not accepted")
	}
	if len(c.loans) != 1 {
		t.Fatalf("stable bucket emission must be loaned, got %d loans", len(c.loans))
	}
	if s.loaned == nil {
		t.Fatal("taken loan must park the bucket instead of freeing it")
	}
	loanedArr := &c.loans[0][0]
	if &s.loaned.Tuples[0] != loanedArr {
		t.Fatal("parked bucket must back the loaned slice")
	}

	// The next ProcessBatch reclaims the loan before touching any input,
	// and the recycled bucket may then be refilled safely.
	if !s.ProcessBatch(0, []tuple.Tuple{tuple.NewInsertion(110*ms, 2)}) {
		t.Fatal("batch not accepted")
	}
	if s.loaned != nil {
		t.Fatal("reclaimLoan must run at ProcessBatch entry")
	}
}

func TestSUnionEmitBucketSortSkipKeepsOrder(t *testing.T) {
	// An already-sorted bucket (single input appending in stime order)
	// takes the IsSorted short-cut; an interleaved two-port bucket must
	// still be sorted with the stable tie-break. Both paths must agree
	// with the documented order: stime, then src, then id.
	sim := runtime.NewVirtual()
	s, c := newSU(2, sim)
	s.Process(0, tuple.NewInsertion(20*ms, 1))
	s.Process(1, tuple.NewInsertion(10*ms, 2))
	s.Process(0, tuple.NewInsertion(10*ms, 3))
	s.Process(0, tuple.NewBoundary(100*ms))
	s.Process(1, tuple.NewBoundary(100*ms))
	got := c.data()
	if !eqI64(stimes(got), []int64{10 * ms, 10 * ms, 20 * ms}) {
		t.Fatalf("unsorted bucket not sorted: %v", stimes(got))
	}
	if got[0].Src != 0 || got[1].Src != 1 {
		t.Fatalf("stable tie-break by src lost: %v", got)
	}
}

func TestBaseEmitLoanFallsBackPerTuple(t *testing.T) {
	// Without an env EmitLoan the loan degrades to in-order per-tuple
	// emission and reports the loan as not taken.
	f := NewFilter("f", func(tuple.Tuple) bool { return true })
	c := attach(f, nil)
	in := []tuple.Tuple{tuple.NewInsertion(10, 1), tuple.NewBoundary(20)}
	if f.EmitLoan(in) {
		t.Fatal("loan must not be reported taken without a bulk env")
	}
	sameTuples(t, c.out, in)
}
