package operator

import (
	"testing"
	"testing/quick"

	"borealis/internal/runtime"
	"borealis/internal/tuple"
	"borealis/internal/vtime"
)

const (
	ms  = vtime.Millisecond
	sec = vtime.Second
)

func newSU(ports int, sim *runtime.VirtualClock) (*SUnion, *collector) {
	s := NewSUnion("su", SUnionConfig{
		Ports:      ports,
		BucketSize: 100 * ms,
		Delay:      2 * sec,
	})
	c := attach(s, sim)
	return s, c
}

func TestSUnionStableEmissionWaitsForAllBoundaries(t *testing.T) {
	sim := runtime.NewVirtual()
	s, c := newSU(2, sim)
	s.Process(0, tuple.NewInsertion(10*ms, 1))
	s.Process(1, tuple.NewInsertion(20*ms, 2))
	s.Process(0, tuple.NewBoundary(100*ms))
	if len(c.data()) != 0 {
		t.Fatal("bucket emitted before all ports' boundaries covered it")
	}
	s.Process(1, tuple.NewBoundary(100*ms))
	got := c.data()
	if len(got) != 2 {
		t.Fatalf("stable bucket not emitted: %v", got)
	}
	if got[0].STime != 10*ms || got[1].STime != 20*ms {
		t.Fatalf("bucket not sorted by stime: %v", stimes(got))
	}
	if got[0].Type != tuple.Insertion || got[1].Type != tuple.Insertion {
		t.Fatal("stable bucket must emit insertions")
	}
	bs := c.ofType(tuple.Boundary)
	if len(bs) != 1 || bs[0].STime != 100*ms {
		t.Fatalf("watermark boundary missing: %v", bs)
	}
}

func TestSUnionDeterministicOrderAcrossArrivalInterleavings(t *testing.T) {
	run := func(order [][2]int) []tuple.Tuple {
		sim := runtime.NewVirtual()
		s, c := newSU(2, sim)
		for _, pt := range order {
			tp := tuple.NewInsertion(int64(pt[1])*ms, int64(pt[1]))
			s.Process(pt[0], tp)
		}
		s.Process(0, tuple.NewBoundary(100*ms))
		s.Process(1, tuple.NewBoundary(100*ms))
		return c.data()
	}
	// Same tuples, two different interleavings.
	a := run([][2]int{{0, 10}, {1, 20}, {0, 30}, {1, 40}})
	b := run([][2]int{{1, 40}, {0, 30}, {1, 20}, {0, 10}})
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if !tuple.SameValue(a[i], b[i]) {
			t.Fatalf("order differs at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestSUnionTieBreakBySrcThenID(t *testing.T) {
	sim := runtime.NewVirtual()
	s, c := newSU(2, sim)
	t1 := tuple.NewInsertion(10*ms, 111)
	t1.ID = 2
	t2 := tuple.NewInsertion(10*ms, 222)
	t2.ID = 1
	s.Process(1, t1) // port 1, same stime
	s.Process(0, t2) // port 0 must come first
	s.Process(0, tuple.NewBoundary(100*ms))
	s.Process(1, tuple.NewBoundary(100*ms))
	got := c.data()
	if got[0].Field(0) != 222 || got[1].Field(0) != 111 {
		t.Fatalf("tie-break wrong: %v", got)
	}
}

func TestSUnionBucketsEmitInOrder(t *testing.T) {
	sim := runtime.NewVirtual()
	s, c := newSU(1, sim)
	s.Process(0, tuple.NewInsertion(250*ms, 3)) // bucket [200,300)
	s.Process(0, tuple.NewInsertion(50*ms, 1))  // bucket [0,100)
	s.Process(0, tuple.NewInsertion(150*ms, 2)) // bucket [100,200)
	s.Process(0, tuple.NewBoundary(300*ms))
	got := c.data()
	if len(got) != 3 || got[0].Field(0) != 1 || got[1].Field(0) != 2 || got[2].Field(0) != 3 {
		t.Fatalf("buckets out of order: %v", got)
	}
}

func TestSUnionEmptyBucketsAdvanceWatermark(t *testing.T) {
	sim := runtime.NewVirtual()
	s, c := newSU(1, sim)
	s.Process(0, tuple.NewBoundary(500*ms))
	bs := c.ofType(tuple.Boundary)
	if len(bs) != 1 || bs[0].STime != 500*ms {
		t.Fatalf("empty buckets should still advance the watermark: %v", bs)
	}
	// Cursor advanced past the empty region: late data is dropped.
	s.Process(0, tuple.NewInsertion(100*ms, 1))
	if s.DroppedLate() != 1 {
		t.Fatalf("late tuple not dropped, DroppedLate=%d", s.DroppedLate())
	}
}

func TestSUnionSuspendPolicyHoldsEverything(t *testing.T) {
	sim := runtime.NewVirtual()
	s, c := newSU(2, sim)
	s.Process(0, tuple.NewInsertion(10*ms, 1))
	s.SetPolicy(PolicySuspend)
	sim.RunFor(10 * sec)
	if len(c.data()) != 0 {
		t.Fatalf("suspend must emit nothing: %v", c.data())
	}
}

func TestSUnionDelayPolicyReleasesAt90PercentOfD(t *testing.T) {
	sim := runtime.NewVirtual()
	s, c := newSU(2, sim)
	// Port 1 has failed: data arrives only on port 0, no boundaries on 1.
	sim.RunUntil(1 * sec)
	s.Process(0, tuple.NewInsertion(1*sec, 7))
	s.Process(0, tuple.NewBoundary(1100*ms))
	s.SetPolicy(PolicyDelay)
	sim.RunUntil(1*sec + 1700*ms) // 0.9 * 2s = 1.8s after arrival
	if len(c.data()) != 0 {
		t.Fatal("delay policy released too early")
	}
	sim.RunUntil(1*sec + 1900*ms)
	got := c.data()
	if len(got) != 1 {
		t.Fatalf("delay policy did not release after 0.9·D: %v", got)
	}
	if got[0].Type != tuple.Tentative {
		t.Fatal("policy release must emit tentative tuples")
	}
}

func TestSUnionProcessPolicyInitialSuspensionThenShortWait(t *testing.T) {
	sim := runtime.NewVirtual()
	s, c := newSU(2, sim)
	sim.RunUntil(1 * sec)
	s.Process(0, tuple.NewInsertion(1*sec, 1))
	s.SetPolicy(PolicyProcess)
	// Initial suspension: oldest pending arrival (1s) + 1.8s = 2.8s.
	sim.RunUntil(2700 * ms)
	if len(c.data()) != 0 {
		t.Fatal("process policy must respect the initial suspension")
	}
	sim.RunUntil(2900 * ms)
	if len(c.data()) != 1 {
		t.Fatalf("initial suspension should end at 2.8s: %v", c.data())
	}
	// After the suspension, new buckets wait only TentativeWait (300ms).
	c.reset()
	sim.RunUntil(3 * sec)
	s.Process(0, tuple.NewInsertion(3*sec, 2))
	sim.RunUntil(3*sec + 250*ms)
	if len(c.data()) != 0 {
		t.Fatal("tentative bucket released before TentativeWait")
	}
	sim.RunUntil(3*sec + 350*ms)
	if len(c.data()) != 1 {
		t.Fatalf("tentative bucket not released after TentativeWait: %v", c.data())
	}
}

func TestSUnionSignalsUpFailureOncePerEpisode(t *testing.T) {
	sim := runtime.NewVirtual()
	s, c := newSU(2, sim)
	s.SetPolicy(PolicyProcess)
	if len(c.signals) != 1 || c.signals[0].Kind != SigUpFailure {
		t.Fatalf("want one UP_FAILURE signal, got %v", c.signals)
	}
	s.SetPolicy(PolicyDelay) // same episode: no new signal
	if len(c.signals) != 1 {
		t.Fatalf("policy change within episode must not re-signal: %v", c.signals)
	}
	s.SetPolicy(PolicyNone)
	s.SetPolicy(PolicyProcess) // new episode
	if len(c.signals) != 2 {
		t.Fatalf("new episode should re-signal: %v", c.signals)
	}
}

func TestSUnionMaskedFailureEmitsNothingTentative(t *testing.T) {
	// Failure shorter than the suspension: boundaries resume before
	// 0.9·D expires, so the bucket is emitted stable — the failure is
	// fully masked (§6.1: "all techniques completely mask failures that
	// last 2 seconds or less").
	sim := runtime.NewVirtual()
	s, c := newSU(2, sim)
	s.Process(0, tuple.NewInsertion(10*ms, 1))
	s.Process(0, tuple.NewBoundary(100*ms))
	s.SetPolicy(PolicyProcess)
	sim.RunUntil(1 * sec) // failure heals at 1s < 1.8s suspension
	s.Process(1, tuple.NewInsertion(20*ms, 2))
	s.Process(1, tuple.NewBoundary(100*ms))
	s.SetPolicy(PolicyNone)
	sim.Run()
	got := c.data()
	if len(got) != 2 {
		t.Fatalf("want both tuples stable, got %v", got)
	}
	for _, tp := range got {
		if tp.Type != tuple.Insertion {
			t.Fatalf("masked failure must not emit tentative: %v", got)
		}
	}
}

func TestSUnionTentativeInputBlocksStableEmission(t *testing.T) {
	sim := runtime.NewVirtual()
	s, c := newSU(1, sim)
	s.Process(0, tuple.NewTentative(10*ms, 1))
	s.Process(0, tuple.NewBoundary(200*ms))
	if len(c.data()) != 0 {
		t.Fatal("bucket containing tentative tuples must not emit stably")
	}
	s.SetPolicy(PolicyProcess)
	sim.Run()
	got := c.data()
	if len(got) != 1 || got[0].Type != tuple.Tentative {
		t.Fatalf("tentative bucket should flush tentatively: %v", got)
	}
}

func TestSUnionNoBoundaryDuringTentativeFlush(t *testing.T) {
	sim := runtime.NewVirtual()
	s, c := newSU(2, sim)
	s.Process(0, tuple.NewInsertion(10*ms, 1))
	s.SetPolicy(PolicyProcess)
	sim.Run()
	if len(c.ofType(tuple.Boundary)) != 0 {
		t.Fatalf("tentative flushes must not advance the stable watermark: %v", c.out)
	}
}

func TestSUnionRecDoneWaitsAllPorts(t *testing.T) {
	sim := runtime.NewVirtual()
	s, c := newSU(2, sim)
	s.Process(0, tuple.NewRecDone(0))
	if len(c.ofType(tuple.RecDone)) != 0 {
		t.Fatal("rec_done must wait for all ports")
	}
	s.Process(1, tuple.NewRecDone(0))
	if len(c.ofType(tuple.RecDone)) != 1 {
		t.Fatal("rec_done should forward once complete")
	}
}

func TestSUnionUndoDroppedAndCounted(t *testing.T) {
	sim := runtime.NewVirtual()
	s, c := newSU(1, sim)
	s.Process(0, tuple.NewUndo(3))
	if len(c.out) != 0 || s.droppedUndo != 1 {
		t.Fatal("undo must be dropped at SUnion in node-wide mode")
	}
}

func TestSUnionCheckpointRestoreRoundTrip(t *testing.T) {
	sim := runtime.NewVirtual()
	s, c := newSU(2, sim)
	s.Process(0, tuple.NewInsertion(10*ms, 1))
	s.Process(1, tuple.NewInsertion(20*ms, 2))
	snap := s.Checkpoint()

	// Diverge: flush tentatively.
	s.SetPolicy(PolicyProcess)
	sim.Run()
	if len(c.data()) == 0 {
		t.Fatal("setup: expected tentative flush")
	}

	// Restore and replay stably.
	s.Restore(snap)
	s.SetPolicy(PolicyNone)
	c.reset()
	s.Process(0, tuple.NewBoundary(100*ms))
	s.Process(1, tuple.NewBoundary(100*ms))
	got := c.data()
	if len(got) != 2 || got[0].Type != tuple.Insertion || got[1].Type != tuple.Insertion {
		t.Fatalf("replay after restore should emit the stable bucket: %v", got)
	}
}

func TestSUnionCheckpointIsDeep(t *testing.T) {
	sim := runtime.NewVirtual()
	s, _ := newSU(1, sim)
	s.Process(0, tuple.NewInsertion(10*ms, 1))
	snap := s.Checkpoint()
	s.Process(0, tuple.NewInsertion(20*ms, 2)) // mutate live bucket
	s.Restore(snap)
	if s.PendingBuckets() != 1 {
		t.Fatal("restore failed")
	}
	c := newCollector(sim)
	s.Attach(c.env())
	s.Process(0, tuple.NewBoundary(100*ms))
	if n := len(c.data()); n != 1 {
		t.Fatalf("snapshot leaked live mutations: %d tuples", n)
	}
}

func TestSUnionOldestPendingArrival(t *testing.T) {
	sim := runtime.NewVirtual()
	s, _ := newSU(1, sim)
	sim.RunUntil(5 * sec)
	if got := s.OldestPendingArrival(); got != 5*sec {
		t.Fatalf("empty SUnion should report now, got %d", got)
	}
	s.Process(0, tuple.NewInsertion(10*ms, 1))
	sim.RunUntil(6 * sec)
	s.Process(0, tuple.NewInsertion(20*ms, 2))
	if got := s.OldestPendingArrival(); got != 5*sec {
		t.Fatalf("oldest arrival = %d, want %d", got, 5*sec)
	}
}

func TestSUnionLateTupleAfterTentativeFlushDropped(t *testing.T) {
	sim := runtime.NewVirtual()
	s, _ := newSU(2, sim)
	s.Process(0, tuple.NewInsertion(10*ms, 1))
	s.SetPolicy(PolicyProcess)
	sim.Run() // flushes bucket [0,100) tentatively
	s.Process(1, tuple.NewInsertion(20*ms, 2))
	if s.DroppedLate() != 1 {
		t.Fatalf("late tuple for flushed bucket must drop (footnote 6), got %d", s.DroppedLate())
	}
}

func TestSUnionSingleDataBoundaryPerBatchKeepsLatencyLow(t *testing.T) {
	// Serialization delay ≈ bucket size + boundary interval (§7).
	sim := runtime.NewVirtual()
	s, c := newSU(1, sim)
	var emitted []int64
	base := c.env()
	emit := base.Emit
	base.Emit = func(tp tuple.Tuple) {
		if tp.IsData() {
			emitted = append(emitted, sim.Now())
		}
		emit(tp)
	}
	s.Attach(base)
	// Source: tuple every 10ms with boundary each 10ms.
	for i := int64(0); i < 50; i++ {
		at := i * 10 * ms
		sim.At(at, func() {
			s.Process(0, tuple.NewInsertion(at, 1))
			s.Process(0, tuple.NewBoundary(at))
		})
	}
	sim.Run()
	if len(emitted) == 0 {
		t.Fatal("no emissions")
	}
	// Bucket [0,100) emits when boundary reaches 100ms, i.e. tuple at
	// 10ms waits ≈ 90-100ms. Max wait must stay ≈ bucket + interval.
	maxWait := int64(0)
	// Recompute waits from output order: outputs are in stime order.
	got := c.data()
	for i, tp := range got {
		wait := emitted[i] - tp.STime
		if wait > maxWait {
			maxWait = wait
		}
	}
	if maxWait > 120*ms {
		t.Fatalf("serialization delay too high: %d ms", maxWait/ms)
	}
}

// Property: for any arrival pattern, once boundaries cover everything, the
// output is exactly the sorted multiset of inputs and is identical across
// arrival interleavings (mutual replica consistency, §4.2).
func TestQuickSUnionSerializationDeterminism(t *testing.T) {
	f := func(raw []uint16, perm []uint8) bool {
		n := len(raw)
		if n > 30 {
			n = 30
		}
		mk := func(order []int) []tuple.Tuple {
			sim := runtime.NewVirtual()
			s := NewSUnion("su", SUnionConfig{Ports: 2, BucketSize: 64, Delay: 1000})
			c := newCollector(sim)
			s.Attach(c.env())
			for _, idx := range order {
				v := raw[idx]
				tp := tuple.NewInsertion(int64(v%512), int64(v))
				tp.ID = uint64(idx)
				s.Process(int(v)%2, tp)
			}
			s.Process(0, tuple.NewBoundary(512))
			s.Process(1, tuple.NewBoundary(512))
			return c.data()
		}
		fwd := make([]int, n)
		for i := range fwd {
			fwd[i] = i
		}
		// Build a second order by swapping pairs per perm.
		alt := append([]int(nil), fwd...)
		for i, p := range perm {
			if n < 2 {
				break
			}
			a, b := i%n, int(p)%n
			alt[a], alt[b] = alt[b], alt[a]
		}
		x, y := mk(fwd), mk(alt)
		if len(x) != n || len(y) != n {
			return false
		}
		for i := range x {
			if !tuple.SameValue(x[i], y[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: no data tuple is ever emitted twice and emission order is
// non-decreasing in bucket index, for any mix of boundaries and data.
func TestQuickSUnionMonotoneEmission(t *testing.T) {
	f := func(events []uint16) bool {
		sim := runtime.NewVirtual()
		s := NewSUnion("su", SUnionConfig{Ports: 1, BucketSize: 32, Delay: 1000})
		c := newCollector(sim)
		s.Attach(c.env())
		for _, e := range events {
			st := int64(e % 256)
			if e%5 == 0 {
				s.Process(0, tuple.NewBoundary(st))
			} else {
				s.Process(0, tuple.NewInsertion(st, int64(e)))
			}
		}
		s.Process(0, tuple.NewBoundary(256))
		got := c.data()
		lastBucket := int64(-1)
		for _, tp := range got {
			b := tp.STime / 32
			if b < lastBucket {
				return false
			}
			lastBucket = b
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
