package operator

import (
	"testing"
	"testing/quick"

	"borealis/internal/tuple"
)

func newJoin(window int64) *SJoin {
	return NewSJoin("j", JoinConfig{Window: window, LeftKey: 0, RightKey: 0})
}

func leftT(stime, key int64, rest ...int64) tuple.Tuple {
	t := tuple.NewInsertion(stime, append([]int64{key}, rest...)...)
	t.Src = 0
	return t
}

func rightT(stime, key int64, rest ...int64) tuple.Tuple {
	t := tuple.NewInsertion(stime, append([]int64{key}, rest...)...)
	t.Src = 1
	return t
}

func TestJoinMatchesWithinWindow(t *testing.T) {
	j := newJoin(10)
	c := attach(j, nil)
	j.Process(0, leftT(5, 42, 100))
	j.Process(0, rightT(8, 42, 200))
	got := c.data()
	if len(got) != 1 {
		t.Fatalf("want 1 match, got %v", got)
	}
	out := got[0]
	if out.STime != 8 {
		t.Fatalf("output stime should be the later of the pair, got %d", out.STime)
	}
	want := []int64{42, 100, 42, 200}
	if !eqI64(out.Data, want) {
		t.Fatalf("payload = %v, want %v", out.Data, want)
	}
}

func TestJoinRespectsWindowAndKey(t *testing.T) {
	j := newJoin(10)
	c := attach(j, nil)
	j.Process(0, leftT(5, 1))
	j.Process(0, rightT(14, 2)) // wrong key
	if len(c.data()) != 0 {
		t.Fatalf("unexpected matches: %v", c.data())
	}
	j.Process(0, rightT(15, 1)) // |15-5| = 10 ≤ window: match
	if len(c.data()) != 1 {
		t.Fatalf("edge-of-window match missing: %v", c.data())
	}
	j.Process(0, rightT(16, 1)) // |16-5| = 11 > window: no match
	if len(c.data()) != 1 {
		t.Fatalf("out-of-window tuple matched: %v", c.data())
	}
}

func TestJoinMultipleMatchesDeterministicOrder(t *testing.T) {
	j := newJoin(100)
	c := attach(j, nil)
	j.Process(0, rightT(1, 7, 10))
	j.Process(0, rightT(2, 7, 20))
	j.Process(0, leftT(3, 7, 99))
	got := c.data()
	if len(got) != 2 {
		t.Fatalf("want 2 matches, got %v", got)
	}
	// Matches must come out in buffer (stime) order.
	if got[0].Data[3] != 10 || got[1].Data[3] != 20 {
		t.Fatalf("match order wrong: %v", got)
	}
}

func TestJoinTentativePropagates(t *testing.T) {
	j := newJoin(10)
	c := attach(j, nil)
	lt := leftT(1, 5)
	lt.Type = tuple.Tentative
	j.Process(0, lt)
	j.Process(0, rightT(2, 5))
	got := c.data()
	if len(got) != 1 || got[0].Type != tuple.Tentative {
		t.Fatalf("tentative side must taint output: %v", got)
	}
}

func TestJoinPrunesState(t *testing.T) {
	j := newJoin(10)
	attach(j, nil)
	for i := int64(0); i < 100; i++ {
		j.Process(0, leftT(i, i))
	}
	// Watermark at 99 prunes left tuples below 89.
	if j.StateSize() > 15 {
		t.Fatalf("state not pruned: %d tuples", j.StateSize())
	}
	j.Process(0, tuple.NewBoundary(500))
	if j.StateSize() != 0 {
		t.Fatalf("boundary should prune all: %d", j.StateSize())
	}
}

func TestJoinPrunedTupleCannotMatch(t *testing.T) {
	j := newJoin(10)
	c := attach(j, nil)
	j.Process(0, leftT(0, 1))
	j.Process(0, tuple.NewBoundary(50))
	j.Process(0, rightT(50, 1))
	if len(c.data()) != 0 {
		t.Fatalf("pruned tuple matched: %v", c.data())
	}
}

func TestJoinBoundaryForwarded(t *testing.T) {
	j := newJoin(10)
	c := attach(j, nil)
	j.Process(0, tuple.NewBoundary(30))
	bs := c.ofType(tuple.Boundary)
	if len(bs) != 1 || bs[0].STime != 30 {
		t.Fatalf("boundary not forwarded: %v", bs)
	}
}

func TestJoinRecDoneAndUndoPassThrough(t *testing.T) {
	j := newJoin(10)
	c := attach(j, nil)
	j.Process(0, tuple.NewRecDone(1))
	j.Process(0, tuple.NewUndo(5))
	if len(c.ofType(tuple.RecDone)) != 1 || len(c.ofType(tuple.Undo)) != 1 {
		t.Fatalf("control tuples must pass: %v", c.out)
	}
}

func TestJoinCustomSideClassifier(t *testing.T) {
	j := NewSJoin("j", JoinConfig{
		Window: 10, LeftKey: 0, RightKey: 0,
		IsLeft: func(src int32) bool { return src <= 1 },
	})
	c := attach(j, nil)
	a := tuple.NewInsertion(1, 9)
	a.Src = 1 // left under the custom classifier
	b := tuple.NewInsertion(2, 9)
	b.Src = 2 // right
	j.Process(0, a)
	j.Process(0, b)
	if len(c.data()) != 1 {
		t.Fatalf("custom classifier join failed: %v", c.data())
	}
}

func TestJoinCheckpointRestore(t *testing.T) {
	j := newJoin(10)
	c := attach(j, nil)
	j.Process(0, leftT(1, 5))
	snap := j.Checkpoint()
	j.Process(0, leftT(2, 6))
	j.Restore(snap)
	if j.StateSize() != 1 {
		t.Fatalf("restore: state size = %d, want 1", j.StateSize())
	}
	c.reset()
	j.Process(0, rightT(3, 5))
	if len(c.data()) != 1 {
		t.Fatal("restored tuple should still match")
	}
	// The snapshot must be independent of later mutation.
	j.Process(0, tuple.NewBoundary(100))
	j.Restore(snap)
	if j.StateSize() != 1 {
		t.Fatal("snapshot must be reusable after pruning")
	}
}

// Property: join output is symmetric — feeding (L, R) in any interleaving
// that preserves per-side order produces the same set of matches.
func TestQuickJoinMatchSetInvariant(t *testing.T) {
	type ev struct {
		STime uint8
		Key   uint8
		Left  bool
	}
	f := func(evs []ev) bool {
		if len(evs) > 24 {
			evs = evs[:24]
		}
		// Count expected matches by brute force.
		want := 0
		for i, a := range evs {
			for _, b := range evs[i+1:] {
				if a.Left != b.Left && a.Key%4 == b.Key%4 && absDiff(int64(a.STime), int64(b.STime)) <= 10 {
					want++
				}
			}
		}
		j := newJoin(10)
		c := newCollector(nil)
		j.Attach(c.env())
		for _, e := range evs {
			tp := tuple.NewInsertion(int64(e.STime), int64(e.Key%4))
			if e.Left {
				tp.Src = 0
			} else {
				tp.Src = 1
			}
			j.Process(0, tp)
		}
		// The join prunes by watermark, so out-of-order inputs may
		// legally miss matches whose partner was pruned; it must
		// never produce MORE matches than the brute force count.
		return len(c.data()) <= want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: with stime-ordered input (the SUnion guarantee), the join finds
// exactly the brute-force match set.
func TestQuickJoinOrderedExactness(t *testing.T) {
	f := func(keys []uint8, sides []bool) bool {
		n := len(keys)
		if len(sides) < n {
			n = len(sides)
		}
		if n > 24 {
			n = 24
		}
		want := 0
		for i := 0; i < n; i++ {
			for k := i + 1; k < n; k++ {
				if sides[i] != sides[k] && keys[i]%4 == keys[k]%4 && absDiff(int64(i), int64(k)) <= 10 {
					want++
				}
			}
		}
		j := newJoin(10)
		c := newCollector(nil)
		j.Attach(c.env())
		for i := 0; i < n; i++ {
			tp := tuple.NewInsertion(int64(i), int64(keys[i]%4))
			if sides[i] {
				tp.Src = 0
			} else {
				tp.Src = 1
			}
			j.Process(0, tp)
		}
		return len(c.data()) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func absDiff(a, b int64) int64 {
	if a > b {
		return a - b
	}
	return b - a
}
