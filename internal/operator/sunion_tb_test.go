package operator

import (
	"testing"

	"borealis/internal/runtime"
	"borealis/internal/tuple"
)

func newTBSU(ports int, sim *runtime.VirtualClock, emitTB bool) (*SUnion, *collector) {
	s := NewSUnion("su", SUnionConfig{
		Ports:               ports,
		BucketSize:          100 * ms,
		Delay:               2 * sec,
		TentativeBoundaries: emitTB,
	})
	c := attach(s, sim)
	return s, c
}

func tentBoundary(stime int64) tuple.Tuple {
	b := tuple.NewBoundary(stime)
	b.Src = 1
	return b
}

func TestSUnionEmitsTentativeBoundaryWithFlush(t *testing.T) {
	sim := runtime.NewVirtual()
	s, c := newTBSU(2, sim, true)
	s.Process(0, tuple.NewInsertion(10*ms, 1))
	s.SetPolicy(PolicyProcess)
	sim.Run()
	var tb []tuple.Tuple
	for _, tp := range c.out {
		if tp.Type == tuple.Boundary && tp.Src == 1 {
			tb = append(tb, tp)
		}
	}
	if len(tb) == 0 {
		t.Fatal("tentative flush must emit a tentative boundary")
	}
	if tb[0].STime < 100*ms {
		t.Fatalf("tentative boundary must cover the flushed bucket: %v", tb[0])
	}
	// No stable boundary may have been emitted.
	for _, tp := range c.out {
		if tp.Type == tuple.Boundary && tp.Src == 0 {
			t.Fatalf("stable boundary leaked during tentative flush: %v", tp)
		}
	}
}

func TestSUnionNoTentativeBoundaryWhenDisabled(t *testing.T) {
	sim := runtime.NewVirtual()
	s, c := newTBSU(2, sim, false)
	s.Process(0, tuple.NewInsertion(10*ms, 1))
	s.SetPolicy(PolicyProcess)
	sim.Run()
	for _, tp := range c.out {
		if tp.Type == tuple.Boundary {
			t.Fatalf("boundaries must not appear with the extension off: %v", tp)
		}
	}
}

func TestSUnionTentativeBoundaryReleasesWithoutWait(t *testing.T) {
	// A downstream SUnion holding a tentative bucket releases it as soon
	// as tentative boundaries prove it complete — not after the fixed
	// TentativeWait (footnote 5).
	sim := runtime.NewVirtual()
	s, c := newTBSU(1, sim, false)
	s.SetPolicy(PolicyProcess)
	// Let the initial 0.9·D suspension pass, as it would during a real
	// failure before any tentative data arrives from upstream.
	sim.RunUntil(2 * sec)
	c.reset()
	s.Process(0, tuple.NewTentative(2*sec+10*ms, 1))
	s.Process(0, tentBoundary(2*sec+200*ms)) // covers bucket [2.0s,2.1s)
	sim.RunUntil(2*sec + 50*ms)              // well inside TentativeWait
	if len(c.data()) != 1 {
		t.Fatalf("tentatively-complete bucket must flush immediately: %v", c.data())
	}
	if c.data()[0].Type != tuple.Tentative {
		t.Fatal("flush must be tentative")
	}
}

func TestSUnionTentativeBoundaryDoesNotStabilize(t *testing.T) {
	// Tentative boundaries bound progress but prove no stability: a
	// bucket covered only by tentative watermarks must not emit stably.
	sim := runtime.NewVirtual()
	s, c := newTBSU(1, sim, false)
	s.Process(0, tuple.NewInsertion(10*ms, 1))
	s.Process(0, tentBoundary(500*ms))
	sim.Run()
	if len(c.data()) != 0 {
		t.Fatalf("tentative watermark must not trigger stable emission: %v", c.data())
	}
	// The stable watermark still works.
	s.Process(0, tuple.NewBoundary(500*ms))
	if got := c.data(); len(got) != 1 || got[0].Type != tuple.Insertion {
		t.Fatalf("stable boundary should emit the bucket: %v", got)
	}
}

func TestSUnionTentativeWatermarkResetOnRestore(t *testing.T) {
	sim := runtime.NewVirtual()
	s, _ := newTBSU(1, sim, false)
	snap := s.Checkpoint()
	s.Process(0, tentBoundary(1*sec))
	s.Restore(snap)
	// After restore the tentative watermark is void: a tentative bucket
	// must not be considered complete.
	if s.tentativelyComplete(0) {
		t.Fatal("tentative watermark must reset on restore")
	}
}

func TestSUnionInitialSuspensionStillAppliesWithTB(t *testing.T) {
	// Tentative completeness cannot bypass the 0.9·D initial suspension.
	sim := runtime.NewVirtual()
	s, c := newTBSU(1, sim, false)
	s.Process(0, tuple.NewTentative(10*ms, 1))
	s.Process(0, tentBoundary(200*ms))
	s.SetPolicy(PolicyProcess) // suspension anchored at arrival (t=0)
	sim.RunUntil(1700 * ms)
	if len(c.data()) != 0 {
		t.Fatal("initial suspension bypassed")
	}
	sim.RunUntil(1900 * ms)
	if len(c.data()) != 1 {
		t.Fatalf("bucket should flush right after the suspension: %v", c.data())
	}
}

func TestSUnionDelayPolicyHoldsStableReadyBuckets(t *testing.T) {
	// Under PolicyDelay even a stable-ready bucket waits 0.9·D from its
	// first arrival: the §6 continuous-delay semantics that lets a
	// reconciliation grant arrive before the data is ever emitted.
	sim := runtime.NewVirtual()
	s, c := newSU(1, sim)
	s.SetPolicy(PolicyDelay)
	s.Process(0, tuple.NewInsertion(10*ms, 1))
	s.Process(0, tuple.NewBoundary(200*ms)) // bucket is stable-ready NOW
	sim.RunUntil(1700 * ms)
	if len(c.data()) != 0 {
		t.Fatal("PolicyDelay must hold stable-ready buckets for 0.9·D")
	}
	sim.RunUntil(1900 * ms)
	got := c.data()
	if len(got) != 1 {
		t.Fatalf("bucket not released after 0.9·D: %v", got)
	}
	// Stable content is emitted with stable types (divergence marking
	// happens at SOutput).
	if got[0].Type != tuple.Insertion {
		t.Fatalf("stable-ready bucket content must stay stable-typed: %v", got)
	}
}
