package operator

import "borealis/internal/tuple"

// JoinConfig parameterizes an SJoin.
type JoinConfig struct {
	// Window is the maximum |stime difference| between matching tuples.
	Window int64
	// LeftKey and RightKey index the join attribute in each side's
	// payload. Tuples match when the key fields are equal and their
	// stimes are within Window of each other.
	LeftKey, RightKey int
	// IsLeft classifies a tuple by the Src tag assigned by the SUnion
	// that serializes the join's inputs. If nil, Src 0 is the left side.
	IsLeft func(src int32) bool
}

// SJoin is the paper's modified Join operator (§3): a windowed, key-equality
// join that consumes the single deterministic order prepared by a preceding
// SUnion, so that all replicas process the exact same interleaving. It
// blocks naturally when one side's tuples are missing (a Join is a blocking
// operator, §2.1), and it labels an output tentative whenever either
// matching tuple is tentative.
type SJoin struct {
	Base
	cfg JoinConfig
	// left and right hold buffered tuples in arrival (stime) order,
	// pruned as the watermark advances past usefulness.
	left, right []tuple.Tuple
	watermark   int64
	sentBound   int64

	// matchScratch is the reusable candidate buffer of match(); arena
	// carves output payloads. Both are pure allocation reuse — neither is
	// operator state, so neither is checkpointed.
	matchScratch []tuple.Tuple
	arena        tuple.I64Arena
}

// NewSJoin builds an SJoin.
func NewSJoin(name string, cfg JoinConfig) *SJoin {
	if cfg.Window <= 0 {
		panic("operator: join window must be positive")
	}
	if cfg.IsLeft == nil {
		cfg.IsLeft = func(src int32) bool { return src == 0 }
	}
	return &SJoin{Base: NewBase(name), cfg: cfg, watermark: -1, sentBound: -1}
}

// Inputs returns 1: SJoin consumes an SUnion-serialized stream.
func (j *SJoin) Inputs() int { return 1 }

// StateSize reports the number of buffered tuples (the paper sizes this
// join's state at 100 tuples in the Table III / Fig. 13 experiments).
func (j *SJoin) StateSize() int { return len(j.left) + len(j.right) }

// Process consumes one tuple from the serialized stream.
func (j *SJoin) Process(_ int, t tuple.Tuple) {
	switch {
	case t.IsData():
		if j.cfg.IsLeft(t.Src) {
			j.match(t, j.right, j.cfg.LeftKey, j.cfg.RightKey, true)
			j.left = append(j.left, t)
		} else {
			j.match(t, j.left, j.cfg.RightKey, j.cfg.LeftKey, false)
			j.right = append(j.right, t)
		}
		if t.STime > j.watermark {
			j.watermark = t.STime
			j.prune()
		}
	case t.Type == tuple.Boundary:
		if t.STime > j.watermark {
			j.watermark = t.STime
			j.prune()
		}
		if t.STime > j.sentBound {
			j.sentBound = t.STime
			j.Emit(t)
		}
	default:
		j.Emit(t) // UNDO / REC_DONE pass through
	}
}

// match scans the opposite buffer (newest first, stopping once outside the
// window) and emits joined tuples. Output payload is left.Data ++ right.Data
// and output stime is the later of the pair.
func (j *SJoin) match(t tuple.Tuple, opposite []tuple.Tuple, myKey, otherKey int, tIsLeft bool) {
	key := t.Field(myKey)
	// Walk backwards: buffers are stime-ordered, so we can stop at the
	// first tuple older than the window allows.
	matches := j.matchScratch[:0]
	for i := len(opposite) - 1; i >= 0; i-- {
		o := opposite[i]
		if o.STime < t.STime-j.cfg.Window {
			break
		}
		if o.STime > t.STime+j.cfg.Window {
			continue
		}
		if o.Field(otherKey) == key {
			matches = append(matches, o)
		}
	}
	// Emit in buffer (stime) order for determinism.
	for i := len(matches) - 1; i >= 0; i-- {
		o := matches[i]
		l, r := t, o
		if !tIsLeft {
			l, r = o, t
		}
		out := tuple.Tuple{Type: tuple.Insertion, STime: maxI64(l.STime, r.STime)}
		if l.Type == tuple.Tentative || r.Type == tuple.Tentative {
			out.Type = tuple.Tentative
		}
		data := j.arena.Alloc(len(l.Data) + len(r.Data))
		n := copy(data, l.Data)
		copy(data[n:], r.Data)
		out.Data = data
		j.Emit(out)
	}
	clear(matches)
	j.matchScratch = matches[:0]
}

// prune drops buffered tuples too old to match anything at or beyond the
// watermark: a future tuple has stime ≥ watermark, so partners below
// watermark-Window are dead.
func (j *SJoin) prune() {
	cut := j.watermark - j.cfg.Window
	j.left = pruneBefore(j.left, cut)
	j.right = pruneBefore(j.right, cut)
}

func pruneBefore(ts []tuple.Tuple, cut int64) []tuple.Tuple {
	i := 0
	for i < len(ts) && ts[i].STime < cut {
		i++
	}
	if i == 0 {
		return ts
	}
	return append(ts[:0:0], ts[i:]...)
}

func maxI64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

type joinState struct {
	Left, Right []tuple.Tuple
	Watermark   int64
	SentBound   int64
}

// Checkpoint deep-copies the join buffers.
func (j *SJoin) Checkpoint() any {
	return joinState{
		Left:      cloneTuples(j.left),
		Right:     cloneTuples(j.right),
		Watermark: j.watermark,
		SentBound: j.sentBound,
	}
}

// Restore reinstates a snapshot.
func (j *SJoin) Restore(s any) {
	st := s.(joinState)
	j.left = cloneTuples(st.Left)
	j.right = cloneTuples(st.Right)
	j.watermark = st.Watermark
	j.sentBound = st.SentBound
}

func cloneTuples(ts []tuple.Tuple) []tuple.Tuple {
	out := make([]tuple.Tuple, len(ts))
	for i, t := range ts {
		out[i] = t.Clone()
	}
	return out
}
