package operator

import (
	"testing"
	"testing/quick"

	"borealis/internal/tuple"
)

func tumbling(size int64, fn AggFunc) *Aggregate {
	return NewAggregate("agg", AggregateConfig{Size: size, Fn: fn, ValueField: 0, GroupField: -1})
}

func TestAggregateTumblingSum(t *testing.T) {
	a := tumbling(10, AggSum)
	c := attach(a, nil)
	a.Process(0, tuple.NewInsertion(1, 5))
	a.Process(0, tuple.NewInsertion(4, 7))
	if len(c.data()) != 0 {
		t.Fatal("window must not close early")
	}
	a.Process(0, tuple.NewBoundary(10))
	got := c.data()
	if len(got) != 1 || got[0].Field(1) != 12 || got[0].STime != 9 {
		t.Fatalf("sum window wrong: %v", got)
	}
	if got[0].Type != tuple.Insertion {
		t.Fatal("stable inputs must give stable aggregate")
	}
}

func TestAggregateDataWatermarkCloses(t *testing.T) {
	a := tumbling(10, AggCount)
	c := attach(a, nil)
	a.Process(0, tuple.NewInsertion(3, 1))
	a.Process(0, tuple.NewInsertion(12, 1)) // closes [0,10)
	got := c.data()
	if len(got) != 1 || got[0].Field(1) != 1 {
		t.Fatalf("data watermark close wrong: %v", got)
	}
}

func TestAggregateFunctions(t *testing.T) {
	cases := []struct {
		fn   AggFunc
		want int64
	}{
		{AggCount, 3}, {AggSum, 60}, {AggAvg, 20}, {AggMin, 10}, {AggMax, 30},
	}
	for _, tc := range cases {
		a := tumbling(100, tc.fn)
		c := attach(a, nil)
		for _, v := range []int64{10, 20, 30} {
			a.Process(0, tuple.NewInsertion(5, v))
		}
		a.Process(0, tuple.NewBoundary(100))
		got := c.data()
		if len(got) != 1 || got[0].Field(1) != tc.want {
			t.Errorf("%v: got %v, want %d", tc.fn, got, tc.want)
		}
	}
}

func TestAggregateGroupBy(t *testing.T) {
	a := NewAggregate("agg", AggregateConfig{Size: 10, Fn: AggSum, ValueField: 1, GroupField: 0})
	c := attach(a, nil)
	a.Process(0, tuple.NewInsertion(1, 7, 100)) // group 7
	a.Process(0, tuple.NewInsertion(2, 9, 10))  // group 9
	a.Process(0, tuple.NewInsertion(3, 7, 50))  // group 7
	a.Process(0, tuple.NewBoundary(10))
	got := c.data()
	if len(got) != 2 {
		t.Fatalf("want 2 groups, got %v", got)
	}
	// Groups are emitted in sorted key order for determinism.
	if got[0].Field(0) != 7 || got[0].Field(1) != 150 {
		t.Fatalf("group 7 wrong: %v", got[0])
	}
	if got[1].Field(0) != 9 || got[1].Field(1) != 10 {
		t.Fatalf("group 9 wrong: %v", got[1])
	}
}

func TestAggregateSliding(t *testing.T) {
	a := NewAggregate("agg", AggregateConfig{Size: 10, Slide: 5, Fn: AggCount, ValueField: 0, GroupField: -1})
	c := attach(a, nil)
	a.Process(0, tuple.NewInsertion(7, 1)) // windows [0,10) and [5,15)
	a.Process(0, tuple.NewBoundary(20))
	got := c.data()
	if len(got) != 2 {
		t.Fatalf("sliding window should emit 2 results: %v", got)
	}
	if got[0].STime != 9 || got[1].STime != 14 {
		t.Fatalf("window ends wrong: %v", stimes(got))
	}
}

func TestAggregateTentativePropagation(t *testing.T) {
	a := tumbling(10, AggSum)
	c := attach(a, nil)
	a.Process(0, tuple.NewInsertion(1, 5))
	a.Process(0, tuple.NewTentative(2, 5))
	a.Process(0, tuple.NewBoundary(10))
	got := c.data()
	if len(got) != 1 || got[0].Type != tuple.Tentative {
		t.Fatalf("window with tentative input must be tentative: %v", got)
	}
}

func TestAggregateTentativeEvidenceCloses(t *testing.T) {
	a := tumbling(10, AggSum)
	c := attach(a, nil)
	a.Process(0, tuple.NewInsertion(1, 5))
	// A tentative tuple advances the watermark and closes the window;
	// the result is tentative because the closing evidence is.
	a.Process(0, tuple.NewTentative(15, 1))
	got := c.data()
	if len(got) != 1 || got[0].Type != tuple.Tentative || got[0].Field(1) != 5 {
		t.Fatalf("tentative-evidence close wrong: %v", got)
	}
}

func TestAggregateBoundaryForwarded(t *testing.T) {
	a := tumbling(10, AggSum)
	c := attach(a, nil)
	a.Process(0, tuple.NewBoundary(25))
	bs := c.ofType(tuple.Boundary)
	if len(bs) != 1 || bs[0].STime != 25 {
		t.Fatalf("boundary not forwarded: %v", bs)
	}
	a.Process(0, tuple.NewBoundary(20))
	if len(c.ofType(tuple.Boundary)) != 1 {
		t.Fatal("regressing boundary must not be forwarded")
	}
}

func TestAggregateLateTupleDropped(t *testing.T) {
	a := tumbling(10, AggCount)
	c := attach(a, nil)
	a.Process(0, tuple.NewInsertion(5, 1))
	a.Process(0, tuple.NewBoundary(10)) // closes [0,10)
	c.reset()
	a.Process(0, tuple.NewInsertion(6, 1)) // late for closed window
	a.Process(0, tuple.NewBoundary(20))
	for _, tp := range c.data() {
		if tp.STime == 9 {
			t.Fatalf("closed window re-emitted: %v", c.data())
		}
	}
}

func TestAggregateCheckpointRestore(t *testing.T) {
	a := tumbling(10, AggSum)
	c := attach(a, nil)
	a.Process(0, tuple.NewInsertion(1, 5))
	snap := a.Checkpoint()
	a.Process(0, tuple.NewInsertion(2, 100))
	a.Process(0, tuple.NewBoundary(10))
	first := c.data()
	if len(first) != 1 || first[0].Field(1) != 105 {
		t.Fatalf("pre-restore sum wrong: %v", first)
	}
	a.Restore(snap)
	c.reset()
	a.Process(0, tuple.NewInsertion(2, 7))
	a.Process(0, tuple.NewBoundary(10))
	got := c.data()
	if len(got) != 1 || got[0].Field(1) != 12 {
		t.Fatalf("post-restore sum wrong: %v", got)
	}
}

func TestAggregateCheckpointIsDeep(t *testing.T) {
	a := tumbling(10, AggSum)
	attach(a, nil)
	a.Process(0, tuple.NewInsertion(1, 5))
	snap := a.Checkpoint()
	a.Process(0, tuple.NewInsertion(2, 100)) // mutates live acc
	a.Restore(snap)
	c := newCollector(nil)
	a.Attach(c.env())
	a.Process(0, tuple.NewBoundary(10))
	got := c.data()
	if len(got) != 1 || got[0].Field(1) != 5 {
		t.Fatalf("checkpoint shared state with live operator: %v", got)
	}
}

func TestAggregateRecDonePassThrough(t *testing.T) {
	a := tumbling(10, AggSum)
	c := attach(a, nil)
	a.Process(0, tuple.NewRecDone(5))
	if len(c.ofType(tuple.RecDone)) != 1 {
		t.Fatal("rec_done must pass through aggregate")
	}
}

// Property: replaying the post-checkpoint suffix of any stable input
// sequence reproduces exactly the original post-checkpoint output
// (checkpoint/redo determinism, the foundation of §4.4.1).
func TestQuickAggregateRedoDeterminism(t *testing.T) {
	f := func(vals []uint8, group []bool) bool {
		a := NewAggregate("agg", AggregateConfig{Size: 16, Slide: 8, Fn: AggSum, ValueField: 1, GroupField: 0})
		c := newCollector(nil)
		a.Attach(c.env())
		feed := func(from int) {
			for i := from; i < len(vals); i++ {
				g := int64(0)
				if i < len(group) && group[i] {
					g = 1
				}
				a.Process(0, tuple.NewInsertion(int64(i), g, int64(vals[i])))
			}
			a.Process(0, tuple.NewBoundary(int64(len(vals)+32)))
		}
		half := len(vals) / 2
		for i := 0; i < half; i++ {
			g := int64(0)
			if i < len(group) && group[i] {
				g = 1
			}
			a.Process(0, tuple.NewInsertion(int64(i), g, int64(vals[i])))
		}
		snap := a.Checkpoint()
		c.reset()
		feed(half)
		first := append([]tuple.Tuple(nil), c.out...)
		a.Restore(snap)
		c.reset()
		feed(half)
		redo := c.out
		if len(first) != len(redo) {
			return false
		}
		for i := range first {
			if !tuple.Equal(first[i], redo[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
