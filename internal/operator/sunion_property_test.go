package operator

// This file carries the reference implementation for the SUnion bucket
// index: refSUnion is a verbatim copy of the original map[int64]*bucket
// implementation (full-map scans in earliestPending, sort.SliceStable
// emission). The property test drives both implementations through
// randomized port/bucket/policy schedules on a shared simulator and
// requires every emission — data, boundaries, and tentative-boundary
// watermarks — to be identical, tuple for tuple.

import (
	"math/rand"
	"sort"
	"testing"

	"borealis/internal/runtime"
	"borealis/internal/tuple"
	"borealis/internal/vtime"
)

type refBucket struct {
	Tuples       []tuple.Tuple
	FirstArrival int64
	HasTentative bool
}

type refSUnion struct {
	Base
	cfg SUnionConfig

	bounds      []int64
	buckets     map[int64]*refBucket
	cursor      int64
	sentBound   int64
	recDoneSeen []bool

	policy        DelayPolicy
	tentAllowedAt int64
	tentBounds    []int64
	sentTentBound int64
	timer         runtime.Timer
	signaled      bool
	droppedLate   uint64
	droppedUndo   uint64
}

func newRefSUnion(name string, cfg SUnionConfig) *refSUnion {
	cfg.normalize()
	s := &refSUnion{
		Base:          NewBase(name),
		cfg:           cfg,
		bounds:        make([]int64, cfg.Ports),
		tentBounds:    make([]int64, cfg.Ports),
		buckets:       make(map[int64]*refBucket),
		sentBound:     -1,
		sentTentBound: -1,
		recDoneSeen:   make([]bool, cfg.Ports),
	}
	for i := range s.bounds {
		s.bounds[i] = -1
		s.tentBounds[i] = -1
	}
	return s
}

func (s *refSUnion) Inputs() int { return s.cfg.Ports }

func (s *refSUnion) OldestPendingArrival() int64 {
	oldest := int64(-1)
	for _, b := range s.buckets {
		if len(b.Tuples) == 0 {
			continue
		}
		if oldest < 0 || b.FirstArrival < oldest {
			oldest = b.FirstArrival
		}
	}
	if oldest < 0 {
		return s.Now()
	}
	return oldest
}

func (s *refSUnion) SetPolicy(p DelayPolicy) {
	if p == s.policy {
		return
	}
	prev := s.policy
	s.policy = p
	if p == PolicyNone {
		s.signaled = false
		s.stopTimer()
		return
	}
	if prev == PolicyNone {
		base := s.OldestPendingArrival()
		if now := s.Now(); now < base {
			base = now
		}
		s.tentAllowedAt = base + s.delayBudget()
		if !s.signaled {
			s.signaled = true
			if env := s.Env(); env != nil && env.Signal != nil {
				env.Signal(Signal{Kind: SigUpFailure, Op: s.Name()})
			}
		}
	}
	s.pump()
}

func (s *refSUnion) delayBudget() int64 {
	return int64(float64(s.cfg.Delay) * s.cfg.SafetyFactor)
}

func (s *refSUnion) bucketStart(stime int64) int64 {
	b := stime / s.cfg.BucketSize * s.cfg.BucketSize
	if stime < 0 && stime%s.cfg.BucketSize != 0 {
		b -= s.cfg.BucketSize
	}
	return b
}

func (s *refSUnion) Process(port int, t tuple.Tuple) {
	switch {
	case t.IsData():
		start := s.bucketStart(t.STime)
		if start < s.cursor {
			s.droppedLate++
			return
		}
		b := s.buckets[start]
		if b == nil {
			b = &refBucket{FirstArrival: s.Now()}
			s.buckets[start] = b
		}
		if len(b.Tuples) == 0 {
			b.FirstArrival = s.Now()
		}
		t.Src = int32(port)
		b.Tuples = append(b.Tuples, t)
		if t.Type == tuple.Tentative {
			b.HasTentative = true
		}
		s.pump()
	case t.Type == tuple.Boundary:
		if t.Src == 1 {
			if t.STime > s.tentBounds[port] {
				s.tentBounds[port] = t.STime
				s.pump()
			}
			return
		}
		if t.STime > s.bounds[port] {
			s.bounds[port] = t.STime
			s.pump()
		}
	case t.Type == tuple.RecDone:
		s.recDoneSeen[port] = true
		for _, ok := range s.recDoneSeen {
			if !ok {
				return
			}
		}
		for i := range s.recDoneSeen {
			s.recDoneSeen[i] = false
		}
		s.Emit(t)
	case t.Type == tuple.Undo:
		s.droppedUndo++
	}
}

func (s *refSUnion) stableThrough() int64 {
	min := s.bounds[0]
	for _, b := range s.bounds[1:] {
		if b < min {
			min = b
		}
	}
	return min
}

func (s *refSUnion) pump() {
	stable := s.stableThrough()
	now := s.Now()
	advanced := false
	armed := false
	for {
		end := s.cursor + s.cfg.BucketSize
		b := s.buckets[s.cursor]
		empty := b == nil || len(b.Tuples) == 0
		hasTent := b != nil && b.HasTentative
		if stable >= end && !hasTent {
			if s.policy == PolicyDelay && !empty {
				if due := b.FirstArrival + s.delayBudget(); now < due {
					s.armTimer(due)
					armed = true
					break
				}
			}
			if !empty {
				s.emitBucket(b, false)
			}
			delete(s.buckets, s.cursor)
			s.cursor = end
			advanced = true
			continue
		}
		if s.policy == PolicyNone || s.policy == PolicySuspend {
			break
		}
		lead := s.earliestPending()
		if lead == nil {
			break
		}
		due := s.releaseAt(lead)
		if now < due {
			s.armTimer(due)
			armed = true
			break
		}
		for s.cursor <= lead.start {
			bb := s.buckets[s.cursor]
			if bb != nil && len(bb.Tuples) > 0 {
				s.emitBucket(bb, true)
			}
			delete(s.buckets, s.cursor)
			s.cursor += s.cfg.BucketSize
		}
		advanced = true
	}
	if advanced || stable > s.sentBound {
		wm := stable
		if s.cursor < wm {
			wm = s.cursor
		}
		if wm > s.sentBound {
			s.sentBound = wm
			s.Emit(tuple.NewBoundary(wm))
		}
	}
	if s.cfg.TentativeBoundaries && advanced && s.cursor > s.sentBound && s.cursor > s.sentTentBound {
		s.sentTentBound = s.cursor
		tb := tuple.NewBoundary(s.cursor)
		tb.Src = 1
		s.Emit(tb)
	}
	if !armed {
		s.stopTimer()
	}
}

type refPending struct {
	start  int64
	bucket *refBucket
}

func (s *refSUnion) earliestPending() *refPending {
	var best *refPending
	for start, b := range s.buckets {
		if start < s.cursor || len(b.Tuples) == 0 {
			continue
		}
		if best == nil || start < best.start {
			best = &refPending{start: start, bucket: b}
		}
	}
	return best
}

func (s *refSUnion) tentativelyComplete(start int64) bool {
	end := start + s.cfg.BucketSize
	for i := range s.bounds {
		wm := s.bounds[i]
		if s.tentBounds[i] > wm {
			wm = s.tentBounds[i]
		}
		if wm < end {
			return false
		}
	}
	return true
}

func (s *refSUnion) releaseAt(p *refPending) int64 {
	switch s.policy {
	case PolicyDelay:
		return p.bucket.FirstArrival + s.delayBudget()
	case PolicyProcess:
		at := p.bucket.FirstArrival + s.cfg.TentativeWait
		if s.tentativelyComplete(p.start) {
			at = s.Now()
		}
		if at < s.tentAllowedAt {
			at = s.tentAllowedAt
		}
		return at
	}
	return int64(1) << 62
}

func (s *refSUnion) emitBucket(b *refBucket, tentative bool) {
	sort.SliceStable(b.Tuples, func(i, j int) bool { return tuple.Less(b.Tuples[i], b.Tuples[j]) })
	for _, t := range b.Tuples {
		if tentative {
			t = t.AsTentative()
		}
		s.Emit(t)
	}
}

func (s *refSUnion) armTimer(at int64) {
	if s.timer != nil && !s.timer.Stopped() && s.timer.When() == at {
		return
	}
	s.stopTimer()
	env := s.Env()
	if env == nil || env.After == nil || env.Now == nil {
		return
	}
	d := at - env.Now()
	s.timer = env.After(d, func() {
		s.timer = nil
		s.pump()
	})
}

func (s *refSUnion) stopTimer() {
	if s.timer != nil {
		s.timer.Stop()
		s.timer = nil
	}
}

type refState struct {
	Bounds      []int64
	Buckets     map[int64]refBucket
	Cursor      int64
	SentBound   int64
	RecDoneSeen []bool
}

func (s *refSUnion) Checkpoint() any {
	bk := make(map[int64]refBucket, len(s.buckets))
	for start, b := range s.buckets {
		bk[start] = refBucket{
			Tuples:       cloneTuples(b.Tuples),
			FirstArrival: b.FirstArrival,
			HasTentative: b.HasTentative,
		}
	}
	return refState{
		Bounds:      append([]int64(nil), s.bounds...),
		Buckets:     bk,
		Cursor:      s.cursor,
		SentBound:   s.sentBound,
		RecDoneSeen: append([]bool(nil), s.recDoneSeen...),
	}
}

func (s *refSUnion) Restore(snap any) {
	st := snap.(refState)
	copy(s.bounds, st.Bounds)
	s.buckets = make(map[int64]*refBucket, len(st.Buckets))
	for start, b := range st.Buckets {
		cp := refBucket{
			Tuples:       cloneTuples(b.Tuples),
			FirstArrival: b.FirstArrival,
			HasTentative: b.HasTentative,
		}
		s.buckets[start] = &cp
	}
	s.cursor = st.Cursor
	s.sentBound = st.SentBound
	copy(s.recDoneSeen, st.RecDoneSeen)
	s.stopTimer()
	s.signaled = false
	for i := range s.tentBounds {
		s.tentBounds[i] = -1
	}
	s.sentTentBound = -1
}

// TestSUnionMatchesMapReference drives the indexed SUnion and the original
// map-based implementation through randomized schedules and demands
// byte-identical emissions and watermarks at every step.
func TestSUnionMatchesMapReference(t *testing.T) {
	policies := []DelayPolicy{PolicyNone, PolicyProcess, PolicyDelay, PolicySuspend}
	for seed := int64(0); seed < 60; seed++ {
		rng := rand.New(rand.NewSource(seed))
		ports := 1 + rng.Intn(3)
		bucket := int64(1+rng.Intn(5)) * 10 * vtime.Millisecond
		cfg := SUnionConfig{
			Ports:               ports,
			BucketSize:          bucket,
			Delay:               int64(rng.Intn(3)) * 100 * vtime.Millisecond,
			TentativeWait:       int64(1+rng.Intn(4)) * 25 * vtime.Millisecond,
			TentativeBoundaries: rng.Intn(2) == 0,
		}

		sim := runtime.NewVirtual()
		newOut := []tuple.Tuple{}
		refOut := []tuple.Tuple{}
		su := NewSUnion("su", cfg)
		ref := newRefSUnion("ref", cfg)
		su.Attach(&Env{
			Emit: func(t tuple.Tuple) { newOut = append(newOut, t) },
			Now:  sim.Now, After: sim.After,
		})
		ref.Attach(&Env{
			Emit: func(t tuple.Tuple) { refOut = append(refOut, t) },
			Now:  sim.Now, After: sim.After,
		})

		var snapNew, snapRef any
		stime := int64(0)
		bounds := make([]int64, ports)
		checked := 0
		check := func(step int) {
			t.Helper()
			if len(newOut) != len(refOut) {
				t.Fatalf("seed %d step %d: %d emissions vs reference %d\ncfg %+v",
					seed, step, len(newOut), len(refOut), cfg)
			}
			for ; checked < len(newOut); checked++ {
				a, b := newOut[checked], refOut[checked]
				if !tuple.Equal(a, b) || a.Type != b.Type || a.Src != b.Src {
					t.Fatalf("seed %d step %d: emission %d differs: %v vs %v\ncfg %+v",
						seed, step, checked, a, b, cfg)
				}
			}
			if su.PendingBuckets() != len(pendingRef(ref)) {
				t.Fatalf("seed %d step %d: pending %d vs %d", seed, step, su.PendingBuckets(), len(pendingRef(ref)))
			}
		}

		for step := 0; step < 400; step++ {
			switch op := rng.Intn(20); {
			case op < 10: // data tuple, mostly advancing stime with jitter
				stime += int64(rng.Intn(int(cfg.BucketSize)))
				st := stime - int64(rng.Intn(int(2*cfg.BucketSize)))
				port := rng.Intn(ports)
				var tu tuple.Tuple
				if rng.Intn(8) == 0 {
					tu = tuple.NewTentative(st, int64(step))
				} else {
					tu = tuple.NewInsertion(st, int64(step))
				}
				tu.ID = uint64(step + 1)
				su.Process(port, tu)
				ref.Process(port, tu)
			case op < 15: // boundary (sometimes tentative boundary)
				port := rng.Intn(ports)
				bounds[port] += int64(rng.Intn(int(2 * cfg.BucketSize)))
				tb := tuple.NewBoundary(bounds[port])
				if rng.Intn(6) == 0 {
					tb.Src = 1
				}
				su.Process(port, tb)
				ref.Process(port, tb)
			case op < 17: // advance virtual time, firing flush timers
				sim.RunFor(int64(rng.Intn(int(4 * cfg.BucketSize))))
			case op < 18: // policy switch
				p := policies[rng.Intn(len(policies))]
				su.SetPolicy(p)
				ref.SetPolicy(p)
			case op < 19: // REC_DONE on every port
				rd := tuple.NewRecDone(sim.Now())
				for p := 0; p < ports; p++ {
					su.Process(p, rd)
					ref.Process(p, rd)
				}
			default: // checkpoint, or restore an earlier checkpoint
				if snapNew == nil || rng.Intn(2) == 0 {
					snapNew, snapRef = su.Checkpoint(), ref.Checkpoint()
				} else {
					su.Restore(snapNew)
					ref.Restore(snapRef)
					// Restores reset runtime policy state on both;
					// re-establish a common policy like the node
					// controller would.
					su.SetPolicy(PolicyNone)
					ref.SetPolicy(PolicyNone)
				}
			}
			check(step)
		}
		sim.Run()
		check(-1)
	}
}

func pendingRef(s *refSUnion) map[int64]*refBucket { return s.buckets }
