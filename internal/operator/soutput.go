package operator

import "borealis/internal/tuple"

// SOutput sits on every output stream that crosses a node boundary (§3,
// §4.4.2). At runtime it is a pass-through that assigns stream-unique,
// monotonically increasing tuple identifiers and remembers the last stable
// tuple it produced. During state reconciliation it stabilizes the external
// stream: it drops stable tuples the outside world has already seen, emits a
// single UNDO tuple (naming the last stable tuple to keep) before the first
// correction, and forwards the REC_DONE marker downstream and to the
// Consistency Manager.
//
// SOutput keeps two kinds of state. Its internal counters are checkpointed
// and rolled back with the rest of the diagram. Its *external* view — what
// has actually been sent on the wire — must survive a rollback untouched,
// because the outside world does not roll back; those fields are therefore
// excluded from Checkpoint/Restore.
type SOutput struct {
	Base
	// sentStable counts stable tuples produced by the diagram; it is
	// checkpointed, so after a restore it tells SOutput how many
	// re-derived stable tuples are duplicates of pre-checkpoint output.
	sentStable uint64

	// External-stream state (never rolled back).
	extStable    uint64 // stable tuples actually sent
	lastStableID uint64 // id of the last stable tuple sent
	extTentative uint64 // tentative tuples sent since the last stable one
	undoArmed    bool   // emit UNDO before the next data tuple if needed
	undos        uint64
	recDone      uint64

	// scratch stages ProcessBatch output; reused across batches, never
	// part of operator state.
	scratch []tuple.Tuple
}

// NewSOutput builds an SOutput.
func NewSOutput(name string) *SOutput {
	return &SOutput{Base: NewBase(name)}
}

// Inputs returns 1.
func (o *SOutput) Inputs() int { return 1 }

// LastStableID returns the identifier of the last stable tuple sent on the
// external stream.
func (o *SOutput) LastStableID() uint64 { return o.lastStableID }

// TentativeOutstanding reports how many tentative tuples the external
// stream has seen since its last stable tuple (Ntentative of this stream,
// Definition 2).
func (o *SOutput) TentativeOutstanding() uint64 { return o.extTentative }

// UndosEmitted reports how many undo tuples this SOutput produced.
func (o *SOutput) UndosEmitted() uint64 { return o.undos }

// diverged reports whether the node's state has diverged from the stable
// execution; while diverged, everything SOutput emits is tentative and
// boundary tuples are withheld (the implementation does not produce
// tentative boundaries; footnote 5).
func (o *SOutput) diverged() bool {
	env := o.Env()
	return env != nil && env.Diverged != nil && env.Diverged()
}

// Process consumes one tuple from the diagram and manages the external
// stream.
func (o *SOutput) Process(_ int, t tuple.Tuple) {
	switch {
	case t.IsData():
		tentative := t.Type == tuple.Tentative || o.diverged()
		if !tentative {
			o.sentStable++
			if o.sentStable <= o.extStable {
				// Re-derived duplicate of a stable tuple the
				// outside world already has: drop (§4.4.2).
				return
			}
		}
		o.maybeUndo()
		// Identifiers derive from the position in the stable stream, not
		// from a global emission counter: the i-th stable tuple always
		// carries id i, and tentative tuples number the provisional
		// suffix after the last stable one. A counter that also burned
		// ids on tentative emissions would make the id of a re-derived
		// stable tuple depend on how much tentative data the failure
		// produced first — and downstream SUnions break serialization
		// ties by id, so failure-dependent ids reorder equal-timestamp
		// groups relative to the fault-free execution, violating
		// Definition 1 two hops downstream (found by the scenario fuzzer
		// in a cascade diamond). Ids of a revoked tentative suffix are
		// reused by the correction that replaces it; every buffer and
		// log compacts that suffix when the undo passes, so the reused
		// ids never coexist with the revoked ones.
		if tentative {
			t.Type = tuple.Tentative
			o.extTentative++
			t.ID = o.lastStableID + o.extTentative
		} else {
			if o.extTentative > 0 {
				// Stable data resuming while tentative output is
				// still outstanding and no rollback armed the undo:
				// revoke the suffix now. The wire contract (Fig. 8)
				// is that stable data never follows unrevoked
				// tentative data — consumers compact on the undo, so
				// the reused ids below never coexist with the
				// revoked ones.
				o.emitUndo()
			}
			t.Type = tuple.Insertion
			t.ID = o.lastStableID + 1
			o.extStable++
			o.lastStableID = t.ID
			o.extTentative = 0
		}
		o.Emit(t)
	case t.Type == tuple.Boundary:
		// Tentative boundaries (Src=1, footnote 5) always pass: they
		// bound the tentative stream. Stable boundaries are withheld
		// while diverged — the output is not stable through them.
		if t.Src == 1 || !o.diverged() {
			if t.Src != 1 {
				// A post-restore stable boundary must not overtake
				// the correction it belongs to: downstream heals on
				// boundary progress, and healing before the undo
				// arrives makes it reconcile against an arrival log
				// that still contains the revoked tentative suffix —
				// replaying poison into buckets no policy can flush
				// (found by the scenario fuzzer: a partition heal
				// racing a source reconnect). Emitting the armed
				// undo first also flips the downstream into
				// correcting mode, deferring its heal to REC_DONE.
				o.maybeUndo()
			}
			o.Emit(t)
		}
	case t.Type == tuple.RecDone:
		// The end of a correction sequence: if the reconciliation
		// produced no data at all but tentative output is outstanding,
		// the undo must still be emitted so downstream discards it.
		o.maybeUndo()
		o.recDone++
		o.Emit(t)
		if env := o.Env(); env != nil && env.Signal != nil {
			env.Signal(Signal{Kind: SigRecDone, Op: o.Name()})
		}
	case t.Type == tuple.Undo:
		// Fine-grained recovery (§8.2) pushes undos through the
		// diagram; forward them.
		o.Emit(t)
	}
}

// maybeUndo emits the single UNDO tuple that starts a correction sequence:
// it is armed by Restore and fires before the first subsequent data tuple
// (or at REC_DONE) if the external stream holds tentative tuples to revoke.
func (o *SOutput) maybeUndo() {
	if !o.undoArmed {
		return
	}
	o.undoArmed = false
	if o.extTentative == 0 {
		return
	}
	o.emitUndo()
}

// emitUndo revokes the outstanding tentative suffix of the external
// stream.
func (o *SOutput) emitUndo() {
	o.undos++
	o.extTentative = 0
	o.Emit(tuple.NewUndo(o.lastStableID))
}

// Reset clears all state, including the external-stream view: used by
// crash recovery (§4.5), where a restarted node rebuilds from empty state
// and re-derives the stream from the beginning of the upstream buffers.
func (o *SOutput) Reset() {
	*o = SOutput{Base: o.Base}
}

type soutputState struct{ SentStable uint64 }

// Checkpoint snapshots the internal stable-tuple counter only; external
// stream state is not part of the diagram state.
func (o *SOutput) Checkpoint() any { return soutputState{SentStable: o.sentStable} }

// Restore reinstates the internal counter and arms the undo: the next data
// tuple (a correction or fresh tentative data) revokes the external
// tentative suffix first.
func (o *SOutput) Restore(s any) {
	o.sentStable = s.(soutputState).SentStable
	o.undoArmed = true
}
