package scenario

import (
	"fmt"
	"io"
)

// SweepSpec varies one numeric field of a scenario across a range: the
// minimal version of the ROADMAP "scenario sweeps" item, replacing bespoke
// experiment code for one-dimensional studies (Procnew vs D, overload
// onset vs rate, stabilization cost vs failure duration).
type SweepSpec struct {
	// Field selects what varies:
	//   delay          — the SUnion availability bound D, seconds,
	//                    applied to every node (per-node overrides are
	//                    cleared so the sweep takes effect everywhere);
	//   rate           — the aggregate input rate in tuples/second,
	//                    split across sources proportionally to their
	//                    spec rates;
	//   fault_duration — every fault's duration_s, seconds.
	Field string
	// From and To are the inclusive range endpoints; Steps ≥ 1 points
	// are evenly spaced across it (Steps == 1 runs From only).
	From, To float64
	Steps    int
}

// SweepRow is one step of a sweep.
type SweepRow struct {
	Value  float64 `json:"value"`
	Report *Report `json:"report"`
}

// Values returns the swept points.
func (sw *SweepSpec) Values() []float64 {
	if sw.Steps <= 1 {
		return []float64{sw.From}
	}
	out := make([]float64, sw.Steps)
	step := (sw.To - sw.From) / float64(sw.Steps-1)
	for i := range out {
		out[i] = sw.From + float64(i)*step
	}
	return out
}

func (sw *SweepSpec) validate() error {
	switch sw.Field {
	case "delay", "rate", "fault_duration":
	default:
		return errf("sweep: unknown field %q (want delay|rate|fault_duration)", sw.Field)
	}
	if sw.Steps < 1 {
		return errf("sweep: steps must be ≥ 1")
	}
	if sw.From < 0 || sw.To < 0 {
		return errf("sweep: negative range")
	}
	return nil
}

// apply returns a deep copy of the spec with the swept field set to v.
func (sw *SweepSpec) apply(base *Spec, v float64) (*Spec, error) {
	s := *base.Clone()
	switch sw.Field {
	case "delay":
		s.Defaults.DelayS = v
		for i := range s.Nodes {
			s.Nodes[i].DelayS = nil
		}
	case "rate":
		var total float64
		for i := range s.Sources {
			total += s.Sources[i].Rate
		}
		if total <= 0 {
			return nil, errf("sweep: spec has no positive source rate to scale")
		}
		for i := range s.Sources {
			s.Sources[i].Rate *= v / total
		}
	case "fault_duration":
		if len(s.Faults) == 0 {
			return nil, errf("sweep: spec has no faults to vary")
		}
		for i := range s.Faults {
			s.Faults[i].DurationS = v
		}
	}
	return &s, nil
}

// Sweep runs the spec once per swept value and collects the reports. Each
// step executes on its own fresh virtual runtime, so rows are independent
// and individually deterministic; a caller-supplied Options.Runtime is
// rejected rather than silently ignored (one clock cannot host N runs
// that each schedule from t=0). Steps fan out across the RunMany worker
// pool (Options.Parallelism); the rows are byte-identical regardless of
// worker count.
func Sweep(base *Spec, sw SweepSpec, opts Options) ([]SweepRow, error) {
	if err := sw.validate(); err != nil {
		return nil, err
	}
	if opts.Runtime != nil {
		return nil, errf("sweep: steps run on fresh virtual runtimes; Options.Runtime must be nil")
	}
	values := sw.Values()
	specs := make([]*Spec, len(values))
	for i, v := range values {
		s, err := sw.apply(base, v)
		if err != nil {
			return nil, err
		}
		specs[i] = s
	}
	reports, err := RunMany(specs, opts)
	if err != nil {
		return nil, fmt.Errorf("sweep %s: %w", sw.Field, err)
	}
	rows := make([]SweepRow, len(values))
	for i, v := range values {
		rows[i] = SweepRow{Value: v, Report: reports[i]}
	}
	return rows, nil
}

// PrintSweep renders the rows as an aligned metrics table.
func PrintSweep(w io.Writer, field string, rows []SweepRow) {
	fmt.Fprintf(w, "%-14s %10s %10s %9s %9s %10s %8s %8s %11s %9s\n",
		field, "new_tuples", "tput_tps", "max_lat_s", "mean_lat", "tentative", "undos", "viols", "stabiliz_s", "audit")
	for _, r := range rows {
		c := &r.Report.Client
		audit := "-"
		if r.Report.Consistency != nil {
			if r.Report.Consistency.OK {
				audit = "ok"
			} else {
				audit = "FAIL"
			}
		}
		fmt.Fprintf(w, "%-14.4g %10d %10.1f %9.3f %9.3f %10d %8d %8d %11.3f %9s\n",
			r.Value, c.NewTuples, c.ThroughputTPS, c.MaxLatencyS, c.MeanLatencyS,
			c.Tentative, c.Undos, r.Report.Availability.Violations,
			r.Report.Stabilization.LatencyS, audit)
	}
}
