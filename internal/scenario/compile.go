package scenario

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"borealis/internal/deploy"
	"borealis/internal/node"
	"borealis/internal/operator"
	rtpkg "borealis/internal/runtime"
	"borealis/internal/source"
	"borealis/internal/tuple"
	"borealis/internal/vtime"
)

// splitmix64 is the scenario PRNG: tiny, fully deterministic across
// platforms, and stateless enough that each consumer derives its own
// stream from (seed, index) without ordering coupling.
type splitmix64 struct{ state uint64 }

func newPRNG(seed, stream int64) *splitmix64 {
	return &splitmix64{state: uint64(seed) ^ (uint64(stream) * 0x9E3779B97F4A7C15)}
}

func (p *splitmix64) next() uint64 {
	p.state += 0x9E3779B97F4A7C15
	z := p.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// float64 returns a uniform draw in [0, 1).
func (p *splitmix64) float64() float64 { return float64(p.next()>>11) / (1 << 53) }

// run is one compiled scenario instance: a deployment plus everything the
// report needs that the deployment does not know (bound, fault horizon,
// per-delivery counters).
type run struct {
	spec       *Spec
	dep        *deploy.Deployment
	quick      bool
	durationUS int64
	boundUS    int64
	// lastHealUS is the latest instant at which an injected fault heals
	// (restart, reconnect, partition heal); -1 without faults.
	lastHealUS int64

	// Per-delivery metrics, collected through the client hook.
	maxSTime      int64
	violations    uint64
	maxExcessUS   int64
	lastRecDoneUS int64

	// depthSeries collects the per-replica queue-depth samples, indexed
	// by flattened replica ordinal (group build order, then replica) —
	// the same order the report walks.
	depthSeries [][]int
}

// queueSampleInterval is the fixed virtual-time cadence of the queue-depth
// time series: one sample per simulated second.
const queueSampleInterval = vtime.Second

// installDepthSampler schedules the queue-depth probe: at every sample
// instant one event reads each replica's instantaneous service-queue
// length. The probe only reads, so it cannot perturb the simulation — all
// other report metrics are unchanged by its presence.
func (rt *run) installDepthSampler() {
	n := rt.durationUS / queueSampleInterval
	if n <= 0 {
		return
	}
	var replicas []*node.Node
	for gi := range rt.dep.GroupNames() {
		replicas = append(replicas, rt.dep.Nodes[gi]...)
	}
	if len(replicas) == 0 {
		return
	}
	rt.depthSeries = make([][]int, len(replicas))
	for i := range rt.depthSeries {
		rt.depthSeries[i] = make([]int, 0, n)
	}
	sample := func() {
		for i, rep := range replicas {
			rt.depthSeries[i] = append(rt.depthSeries[i], rep.Engine().QueueLen())
		}
	}
	for k := int64(1); k <= n; k++ {
		rt.dep.RT.At(k*queueSampleInterval, sample)
	}
}

// quickDuration resolves the run length.
func quickDuration(s *Spec, quick bool) int64 {
	if !quick {
		return seconds(s.DurationS)
	}
	if s.QuickDurationS > 0 {
		return seconds(s.QuickDurationS)
	}
	return seconds(math.Min(s.DurationS, 20))
}

// memberRates splits a source group's aggregate rate across its members:
// uniform, or zipf-weighted (w_i ∝ 1/i^skew) for the skewed-rate shape.
func memberRates(ss *SourceSpec) []float64 {
	members := ss.members()
	rates := make([]float64, len(members))
	if ss.Distribution == "zipf" && len(members) > 1 {
		skew := ss.Skew
		if skew == 0 {
			skew = 1
		}
		var total float64
		w := make([]float64, len(members))
		for i := range w {
			w[i] = 1 / math.Pow(float64(i+1), skew)
			total += w[i]
		}
		for i := range rates {
			rates[i] = ss.Rate * w[i] / total
		}
		return rates
	}
	for i := range rates {
		rates[i] = ss.Rate / float64(len(members))
	}
	return rates
}

// nodeStream names a node's output stream.
func nodeStream(name string) string { return name + ".out" }

// nameIndex caches the spec's name→spec lookups. It is built once per
// compile and shared by every per-node resolution step; before the hoist,
// expandInputs rebuilt both maps for each node, an O(nodes × (sources +
// nodes)) term that dominated per-cell setup on wide grids.
type nameIndex struct {
	sources map[string]*SourceSpec
	nodes   map[string]*NodeSpec
}

func (s *Spec) index() *nameIndex {
	idx := &nameIndex{
		sources: make(map[string]*SourceSpec, len(s.Sources)),
		nodes:   make(map[string]*NodeSpec, len(s.Nodes)),
	}
	for i := range s.Sources {
		idx.sources[s.Sources[i].Name] = &s.Sources[i]
	}
	for i := range s.Nodes {
		idx.nodes[s.Nodes[i].Name] = &s.Nodes[i]
	}
	return idx
}

// expandInputs resolves a node's declared inputs into concrete stream
// names (source groups expand to every member).
func (idx *nameIndex) expandInputs(n *NodeSpec) []string {
	out := make([]string, 0, len(n.Inputs))
	for _, in := range n.Inputs {
		switch {
		case idx.nodes[in] != nil:
			out = append(out, nodeStream(in))
		case idx.sources[in] != nil:
			out = append(out, idx.sources[in].members()...)
		default:
			out = append(out, in) // an individual expanded member
		}
	}
	return out
}

// compileOperators builds the per-replica operator factory for one node.
func compileOperators(n *NodeSpec, inputCount int) func() []operator.Operator {
	if len(n.Operators) == 0 {
		return nil
	}
	specs := append([]OperatorSpec(nil), n.Operators...)
	return func() []operator.Operator {
		ops := make([]operator.Operator, 0, len(specs))
		for i, op := range specs {
			name := fmt.Sprintf("%s%d", op.Kind, i+1)
			switch op.Kind {
			case "filter":
				field, mod := op.Field, op.Modulo
				if mod == 0 {
					mod = 2
				}
				ops = append(ops, operator.NewFilter(name, func(t tuple.Tuple) bool {
					return t.Field(field)%mod == 0
				}))
			case "map":
				field, scale := op.Field, op.Scale
				if scale == 0 {
					scale = 2
				}
				// Payloads come from a per-operator arena: map output
				// lives exactly as long as any other payload (logs,
				// buffers), and chunk-carving keeps millions of tiny
				// []int64 from individually burdening the GC. The
				// operator is single-threaded, so the arena needs no
				// locking; slices are immutable downstream.
				var arena tuple.I64Arena
				ops = append(ops, operator.NewMap(name, func(d []int64) []int64 {
					out := arena.Alloc(len(d))
					copy(out, d)
					if field < len(out) {
						out[field] *= scale
					}
					return out
				}))
			case "aggregate":
				fn := operator.AggCount
				if op.Fn != "" {
					fn, _ = parseAggFn(op.Fn)
				}
				slide := millis(op.SlideMS)
				if slide <= 0 {
					slide = millis(op.WindowMS)
				}
				group := -1
				if op.GroupField != nil {
					group = *op.GroupField
				}
				ops = append(ops, operator.NewAggregate(name, operator.AggregateConfig{
					Size:       millis(op.WindowMS),
					Slide:      slide,
					Fn:         fn,
					ValueField: op.Field,
					GroupField: group,
				}))
			case "join":
				left := op.LeftInputs
				if left <= 0 {
					left = inputCount / 2
				}
				l32 := int32(left)
				ops = append(ops, operator.NewSJoin(name, operator.JoinConfig{
					Window:   millis(op.WindowMS),
					LeftKey:  op.LeftKey,
					RightKey: op.RightKey,
					IsLeft:   func(src int32) bool { return src < l32 },
				}))
			}
		}
		return ops
	}
}

func parseBufferMode(s string) node.BufferMode {
	switch s {
	case "block":
		return node.BufferBlock
	case "slide":
		return node.BufferSlide
	}
	return node.BufferUnbounded
}

// compile validates nothing (call Validate first); it builds the
// deployment, installs workload schedules, and — when withFaults is set —
// the fault timeline. The reference run for the consistency audit compiles
// with withFaults=false and is otherwise identical.
func compile(exec rtpkg.Runtime, s *Spec, quick, withFaults, perTuple, noAudit bool, trace node.TraceFn) (*run, error) {
	rt := &run{
		spec:       s,
		quick:      quick,
		durationUS: quickDuration(s, quick),
		lastHealUS: -1,
		maxSTime:   -1,
	}
	idx := s.index()
	dep, err := deploy.BuildTopologyOn(exec, topologySpecOf(s, idx, perTuple, noAudit))
	if err != nil {
		return nil, err
	}
	rt.dep = dep
	if trace != nil {
		for _, row := range dep.Nodes {
			for _, rep := range row {
				rep.SetTrace(trace)
			}
		}
		dep.Client.Proxy().SetTrace(trace)
	}
	rt.boundUS = rt.availabilityBound(idx)
	rt.installWorkloads()
	if withFaults {
		if err := rt.installFaults(); err != nil {
			return nil, err
		}
	}
	rt.hookClient()
	if withFaults {
		// The faultless consistency-reference run (withFaults=false) never
		// renders a report, so sampling queue depth there is pure overhead.
		rt.installDepthSampler()
	}
	return rt, nil
}

// topologySpecOf translates a validated Spec into the deployment layer's
// TopologySpec. The translation is pure — no runtime, no fabric — so the
// single-process compile and every cluster worker's partition compile share
// it and agree on the exact same wiring (the payload closure derives from
// the spec listing index i, keeping cross-partition stream content
// deterministic).
func topologySpecOf(s *Spec, idx *nameIndex, perTuple, noAudit bool) deploy.TopologySpec {
	top := deploy.TopologySpec{
		BucketSize:       millis(s.Defaults.BucketMS),
		BoundaryInterval: millis(s.Defaults.BoundaryMS),
		TickInterval:     millis(s.Defaults.TickMS),
		StallTimeout:     millis(s.Defaults.StallTimeoutMS),
		KeepAlive:        millis(s.Defaults.KeepAliveMS),
		AckInterval:      millis(s.Defaults.AckIntervalMS),
		PerTuple:         perTuple,
		Client: deploy.TopologyClient{
			Stream:              nodeStream(s.clientInput()),
			BucketSize:          millis(s.Client.BucketMS),
			Delay:               millis(s.Client.DelayMS),
			TentativeWait:       millis(s.Client.TentativeWaitMS),
			TentativeBoundaries: s.Client.TentativeBoundaries,
			NoAudit:             noAudit,
		},
	}
	members := 0
	for i := range s.Sources {
		members += max(s.Sources[i].Count, 1)
	}
	top.Sources = make([]deploy.TopologySource, 0, members)
	for i := range s.Sources {
		ss := &s.Sources[i]
		rates := memberRates(ss)
		for mi, m := range ss.members() {
			top.Sources = append(top.Sources, deploy.TopologySource{
				ID:               m,
				Stream:           m,
				Rate:             rates[mi],
				BoundaryInterval: millis(ss.BoundaryMS),
				LogCap:           ss.LogCap,
			})
		}
	}
	top.Groups = make([]deploy.NodeGroup, 0, len(s.Nodes))
	for i := range s.Nodes {
		n := &s.Nodes[i]
		inputs := idx.expandInputs(n)
		var capacity float64
		if n.Capacity != nil {
			capacity = *n.Capacity
		} else {
			capacity = s.Defaults.Capacity
		}
		fail, _ := parsePolicy(firstNonEmpty(n.FailurePolicy, s.Defaults.FailurePolicy), "")
		stab, _ := parsePolicy(firstNonEmpty(n.Stabilization, s.Defaults.Stabilization), "")
		top.Groups = append(top.Groups, deploy.NodeGroup{
			Name:                n.Name,
			Output:              nodeStream(n.Name),
			Inputs:              inputs,
			Replicas:            s.replicasOf(n),
			Delay:               seconds(s.delayOf(n)),
			Cascade:             n.Cascade,
			Operators:           compileOperators(n, len(inputs)),
			Capacity:            capacity,
			FailurePolicy:       fail,
			StabilizationPolicy: stab,
			TentativeWait:       millis(n.TentativeWaitMS),
			TentativeBoundaries: n.TentativeBoundaries,
			FineGrained:         n.FineGrained,
			BufferMode:          parseBufferMode(n.BufferMode),
			BufferCap:           n.BufferCap,
		})
	}
	return top
}

func firstNonEmpty(a, b string) string {
	if a != "" {
		return a
	}
	return b
}

// availabilityBound derives the report's bound: the worst source→client
// path sum of SUnion delays, plus the client's own slack, plus the
// scenario's processing slack.
func (rt *run) availabilityBound(idx *nameIndex) int64 {
	return availabilityBoundUS(rt.spec, idx)
}

// availabilityBoundUS is the bound computation on the bare spec; the
// cluster boss uses it to stamp the merged report without compiling a
// deployment of its own.
func availabilityBoundUS(s *Spec, idx *nameIndex) int64 {
	nodes := idx.nodes
	memo := map[string]float64{}
	var path func(name string) float64
	path = func(name string) float64 {
		if v, ok := memo[name]; ok {
			return v
		}
		n := nodes[name]
		var worst float64
		for _, in := range n.Inputs {
			if nodes[in] != nil {
				if v := path(in); v > worst {
					worst = v
				}
			}
		}
		// A cascade node chains len(inputs)-1 SUnions in series, each
		// with bound D; a plain node has a single SUnion.
		sunions := 1.0
		if n.Cascade {
			if k := len(idx.expandInputs(n)); k > 2 {
				sunions = float64(k - 1)
			}
		}
		v := worst + s.delayOf(n)*sunions
		memo[name] = v
		return v
	}
	slack := s.AvailabilitySlackS
	if slack <= 0 {
		slack = 1
	}
	clientDelay := s.Client.DelayMS / 1e3
	if clientDelay <= 0 {
		clientDelay = 0.05
	}
	return seconds(path(s.clientInput()) + clientDelay + slack)
}

// installWorkloads schedules the rate modulation of every source. Each
// member derives its own PRNG stream from (seed, member ordinal) so adding
// jitter to one source never perturbs another.
func (rt *run) installWorkloads() {
	ordinal := int64(0)
	for i := range rt.spec.Sources {
		ss := &rt.spec.Sources[i]
		for _, m := range ss.members() {
			src := rt.dep.SourceByID(m)
			if src == nil {
				// A cluster partition hosts a subset of the sources; the
				// ordinal still advances so every member keeps the same
				// PRNG stream it has in a single-process run.
				ordinal++
				continue
			}
			base := src.Rate()
			prng := newPRNG(rt.spec.Seed, ordinal)
			ordinal++
			switch ss.Workload.Kind {
			case "bursty":
				rt.installBurst(src, ss, base, prng)
			case "ramp":
				rt.installRamp(src, ss, base)
			}
		}
	}
}

// installBurst alternates the rate between factor×base (for duty×period)
// and a floor chosen so the mean rate stays at base.
func (rt *run) installBurst(src *source.Source, ss *SourceSpec, base float64, prng *splitmix64) {
	period := seconds(ss.Workload.PeriodS)
	if period <= 0 {
		period = 5 * vtime.Second
	}
	factor := ss.Workload.Factor
	if factor == 0 {
		factor = 4
	}
	duty := ss.Workload.Duty
	if duty == 0 {
		duty = 0.25
	}
	high := base * factor
	low := base * (1 - duty*factor) / (1 - duty)
	if low < 0 {
		low = 0
	}
	var offset int64
	if ss.Workload.JitterPhase {
		offset = int64(prng.float64() * float64(period))
	}
	up := int64(duty * float64(period))
	// The phase is cyclic: burst windows start at t ≡ offset (mod
	// period), so t=0 sits mid-cycle when offset > 0. Derive the initial
	// rate from the cycle position and only schedule toggles at positive
	// times — the jittered mean stays at base from t=0 on.
	start := offset % period
	if start != 0 {
		start -= period // most recent burst start ≤ 0
	}
	if -start < up {
		src.SetRate(high) // t=0 falls inside a burst window
	} else {
		src.SetRate(low)
	}
	for t := start; t < rt.durationUS; t += period {
		if t > 0 {
			rt.dep.RT.At(t, func() { src.SetRate(high) })
		}
		if tl := t + up; tl > 0 {
			rt.dep.RT.At(tl, func() { src.SetRate(low) })
		}
	}
}

// installRamp moves the rate linearly from base to to_rate over over_s.
// Events stop once the ramp completes (or the run ends); one final event
// lands exactly on the ramp end so the target rate is hit precisely.
func (rt *run) installRamp(src *source.Source, ss *SourceSpec, base float64) {
	over := seconds(ss.Workload.OverS)
	if over <= 0 {
		over = rt.durationUS
	}
	step := millis(ss.Workload.StepMS)
	if step <= 0 {
		step = 250 * vtime.Millisecond
	}
	to := ss.Workload.ToRate
	end := over
	if end > rt.durationUS {
		end = rt.durationUS
	}
	rate := func(t int64) float64 {
		frac := float64(t) / float64(over)
		if frac > 1 {
			frac = 1
		}
		return base + (to-base)*frac
	}
	for t := step; t < end; t += step {
		r := rate(t)
		rt.dep.RT.At(t, func() { src.SetRate(r) })
	}
	rEnd := rate(end)
	rt.dep.RT.At(end, func() { src.SetRate(rEnd) })
}

// endpointSet resolves a partition endpoint spec into network endpoints.
func (rt *run) endpointSet(ep string) ([]string, error) {
	if ep == "client" {
		return []string{"client"}, nil
	}
	if name, rep, ok := strings.Cut(ep, "/"); ok {
		r, err := strconv.Atoi(rep)
		if err != nil {
			return nil, errf("bad endpoint %q", ep)
		}
		row := rt.dep.Group(name)
		if row == nil || r < 0 || r >= len(row) {
			return nil, errf("bad endpoint %q", ep)
		}
		return []string{deploy.GroupReplicaID(name, r)}, nil
	}
	if row := rt.dep.Group(ep); row != nil {
		eps := make([]string, len(row))
		for r := range row {
			eps[r] = deploy.GroupReplicaID(ep, r)
		}
		return eps, nil
	}
	if ids := rt.sourceIDs(ep); ids != nil {
		return ids, nil
	}
	return nil, errf("unknown endpoint %q", ep)
}

// sourceIDs resolves a source reference: an expanded member name, or a
// group name covering every member.
func (rt *run) sourceIDs(name string) []string {
	if rt.dep.SourceByID(name) != nil {
		return []string{name}
	}
	for i := range rt.spec.Sources {
		if rt.spec.Sources[i].Name == name && rt.spec.Sources[i].Count > 1 {
			return rt.spec.Sources[i].members()
		}
	}
	return nil
}

// heal records a fault-heal instant for the stabilization metric. Heals
// scheduled past the run horizon never happen and are ignored.
func (rt *run) heal(atUS int64) {
	if atUS <= rt.durationUS && atUS > rt.lastHealUS {
		rt.lastHealUS = atUS
	}
}

// installFaults schedules the timed fault timeline on the simulator.
func (rt *run) installFaults() error {
	for i := range rt.spec.Faults {
		f := &rt.spec.Faults[i]
		at := seconds(f.AtS)
		dur := seconds(f.DurationS)
		if at >= rt.durationUS {
			continue // beyond the (possibly quick) horizon; never fires
		}
		switch f.Kind {
		case "crash":
			if err := rt.dep.CrashGroup(f.Node, f.Replica, at); err != nil {
				return err
			}
			if dur > 0 {
				if err := rt.dep.RestartGroup(f.Node, f.Replica, at+dur); err != nil {
					return err
				}
				rt.heal(at + dur)
			}
		case "restart":
			if err := rt.dep.RestartGroup(f.Node, f.Replica, at); err != nil {
				return err
			}
			rt.heal(at)
		case "flap":
			period := seconds(f.PeriodS)
			count := f.Count
			if count <= 0 {
				count = 3
			}
			down := dur
			if down <= 0 {
				down = period / 2
			}
			for k := 0; k < count; k++ {
				t := at + int64(k)*period
				if err := rt.dep.CrashGroup(f.Node, f.Replica, t); err != nil {
					return err
				}
				if err := rt.dep.RestartGroup(f.Node, f.Replica, t+down); err != nil {
					return err
				}
				rt.heal(t + down)
			}
		case "disconnect":
			for _, id := range rt.sourceIDs(f.Source) {
				src := rt.dep.SourceByID(id)
				rt.dep.RT.At(at, src.Disconnect)
				rt.dep.RT.At(at+dur, src.Reconnect)
			}
			rt.heal(at + dur)
		case "stall_boundaries":
			for _, id := range rt.sourceIDs(f.Source) {
				src := rt.dep.SourceByID(id)
				rt.dep.RT.At(at, src.StallBoundaries)
				rt.dep.RT.At(at+dur, src.ResumeBoundaries)
			}
			rt.heal(at + dur)
		case "partition":
			from, err := rt.endpointSet(f.From)
			if err != nil {
				return err
			}
			to, err := rt.endpointSet(f.To)
			if err != nil {
				return err
			}
			for _, a := range from {
				for _, b := range to {
					rt.dep.Partition(a, b, at, dur)
				}
			}
			rt.heal(at + dur)
		}
	}
	return nil
}
