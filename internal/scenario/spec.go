// Package scenario is a declarative front end over the deployment layer:
// it loads a JSON Scenario spec describing an arbitrary DAG topology, a
// workload shape per source, and a timed fault schedule; compiles it into
// a deploy.TopologySpec; runs it on the virtual-time simulator; and emits
// a structured metrics report (availability violations against the bound
// D, tentative/corrected tuple counts, stabilization latency, throughput).
//
// The file format is documented in docs/SCENARIOS.md; curated specs live
// in the repository's scenarios/ directory.
package scenario

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"

	"borealis/internal/operator"
	"borealis/internal/vtime"
)

// Spec is a complete scenario description. All durations are in seconds of
// virtual time; all rates in tuples per second.
type Spec struct {
	// Name identifies the scenario in reports and golden files.
	Name        string `json:"name"`
	Description string `json:"description,omitempty"`
	// Seed drives every pseudo-random choice (workload phase jitter).
	// Same spec + same seed ⇒ bit-identical report.
	Seed int64 `json:"seed"`
	// DurationS is the simulated run length; QuickDurationS, when set,
	// replaces it under -quick (smoke tests, CI).
	DurationS      float64 `json:"duration_s"`
	QuickDurationS float64 `json:"quick_duration_s,omitempty"`
	// AvailabilitySlackS is added to the topology's worst-path delay sum
	// when deriving the availability bound (default 1s of processing and
	// transmission slack).
	AvailabilitySlackS float64 `json:"availability_slack_s,omitempty"`
	// VerifyConsistency re-runs the scenario without faults and audits
	// Definition 1 (eventual consistency) against it.
	VerifyConsistency bool `json:"verify_consistency,omitempty"`

	Defaults Defaults     `json:"defaults"`
	Sources  []SourceSpec `json:"sources"`
	Nodes    []NodeSpec   `json:"nodes"`
	Client   ClientSpec   `json:"client"`
	Faults   []FaultSpec  `json:"faults,omitempty"`
}

// Defaults hold per-scenario defaults applied to every node and source.
type Defaults struct {
	BucketMS       float64 `json:"bucket_ms,omitempty"`        // default 100
	BoundaryMS     float64 `json:"boundary_ms,omitempty"`      // default 100
	TickMS         float64 `json:"tick_ms,omitempty"`          // default 10
	DelayS         float64 `json:"delay_s,omitempty"`          // default 2
	Replicas       int     `json:"replicas,omitempty"`         // default 2
	Capacity       float64 `json:"capacity,omitempty"`         // default ∞
	FailurePolicy  string  `json:"failure_policy,omitempty"`   // default "process"
	Stabilization  string  `json:"stabilization,omitempty"`    // default "process"
	StallTimeoutMS float64 `json:"stall_timeout_ms,omitempty"` // default engine
	KeepAliveMS    float64 `json:"keep_alive_ms,omitempty"`    // default engine
	AckIntervalMS  float64 `json:"ack_interval_ms,omitempty"`  // default off
}

// WorkloadSpec shapes a source's rate over time.
type WorkloadSpec struct {
	// Kind: "constant" (default), "bursty", or "ramp".
	Kind string `json:"kind,omitempty"`
	// Bursty: every PeriodS seconds the rate jumps to Factor×rate for
	// Duty×PeriodS seconds, then drops so the mean stays at rate.
	PeriodS float64 `json:"period_s,omitempty"` // default 5
	Factor  float64 `json:"factor,omitempty"`   // default 4
	Duty    float64 `json:"duty,omitempty"`     // default 0.25
	// JitterPhase offsets each source's burst phase by a seed-derived
	// fraction of the period, de-synchronizing bursts across sources.
	JitterPhase bool `json:"jitter_phase,omitempty"`
	// Ramp: the rate moves linearly from rate to ToRate over OverS
	// seconds (default: the whole run), stepping every StepMS.
	ToRate float64 `json:"to_rate,omitempty"`
	OverS  float64 `json:"over_s,omitempty"`
	StepMS float64 `json:"step_ms,omitempty"` // default 250
}

// SourceSpec describes one source, or — with Count > 1 — a group of
// sources named name1..nameN sharing an aggregate rate.
type SourceSpec struct {
	Name string `json:"name"`
	// Count expands the entry into that many sources (default 1).
	Count int `json:"count,omitempty"`
	// Rate is the aggregate rate of the (expanded) group.
	Rate float64 `json:"rate"`
	// Distribution splits Rate across the group: "uniform" (default) or
	// "zipf" with exponent Skew (default 1.0) — the skewed-rate shape.
	Distribution string  `json:"distribution,omitempty"`
	Skew         float64 `json:"skew,omitempty"`
	// Workload shapes each member's rate over time.
	Workload WorkloadSpec `json:"workload"`
	// BoundaryMS overrides the boundary interval for this group.
	BoundaryMS float64 `json:"boundary_ms,omitempty"`
	// LogCap bounds the persistent log (0 = unbounded).
	LogCap int `json:"log_cap,omitempty"`
}

// OperatorSpec is one mid-chain operator in a node's diagram, applied
// after the serializing SUnion in list order.
type OperatorSpec struct {
	// Kind: "filter", "map", "aggregate" or "join".
	Kind string `json:"kind"`
	// Field indexes the payload attribute the operator reads (filter,
	// map, aggregate value field).
	Field int `json:"field,omitempty"`
	// Filter keeps tuples whose Field is divisible by Modulo (default 2).
	Modulo int64 `json:"modulo,omitempty"`
	// Map multiplies Field by Scale (default 2).
	Scale int64 `json:"scale,omitempty"`
	// Aggregate: Fn is count|sum|avg|min|max; WindowMS / SlideMS set the
	// stime window (slide defaults to window → tumbling); GroupField
	// groups by a payload attribute (default: no grouping).
	Fn         string  `json:"fn,omitempty"`
	WindowMS   float64 `json:"window_ms,omitempty"`
	SlideMS    float64 `json:"slide_ms,omitempty"`
	GroupField *int    `json:"group_field,omitempty"`
	// Join: tuples match when LeftKey/RightKey fields are equal within
	// WindowMS; SUnion input ports < LeftInputs are the left side
	// (default: half the node's inputs).
	LeftKey    int `json:"left_key,omitempty"`
	RightKey   int `json:"right_key,omitempty"`
	LeftInputs int `json:"left_inputs,omitempty"`
}

// NodeSpec describes one logical processing node (a replica set).
type NodeSpec struct {
	Name string `json:"name"`
	// Inputs name sources (group names expand to every member) or other
	// nodes, in SUnion port order. The DAG they induce may be any
	// loop-free shape: chain, tree, diamond, fan-in, fan-out.
	Inputs []string `json:"inputs"`
	// Replicas overrides Defaults.Replicas when non-nil.
	Replicas *int `json:"replicas,omitempty"`
	// DelayS overrides Defaults.DelayS (the SUnion bound D) when non-nil.
	DelayS *float64 `json:"delay_s,omitempty"`
	// Cascade uses the Fig. 10 left-deep chain of two-port SUnions
	// instead of one wide SUnion (needs ≥ 2 inputs).
	Cascade   bool           `json:"cascade,omitempty"`
	Operators []OperatorSpec `json:"operators,omitempty"`
	// Capacity overrides Defaults.Capacity when non-nil (0 = infinite).
	Capacity *float64 `json:"capacity,omitempty"`
	// FailurePolicy / Stabilization override the scenario defaults:
	// "process", "delay" or "suspend".
	FailurePolicy string `json:"failure_policy,omitempty"`
	Stabilization string `json:"stabilization,omitempty"`
	// TentativeWaitMS / TentativeBoundaries tune tentative flushing.
	TentativeWaitMS     float64 `json:"tentative_wait_ms,omitempty"`
	TentativeBoundaries bool    `json:"tentative_boundaries,omitempty"`
	// FineGrained enables the §8.2 per-stream refinement.
	FineGrained bool `json:"fine_grained,omitempty"`
	// BufferMode ("unbounded", "block", "slide") and BufferCap bound the
	// output buffers (§8.1).
	BufferMode string `json:"buffer_mode,omitempty"`
	BufferCap  int    `json:"buffer_cap,omitempty"`
}

// ClientSpec configures the client proxy.
type ClientSpec struct {
	// Input names the node whose output the client consumes (default:
	// the last node listed).
	Input string `json:"input,omitempty"`
	// BucketMS overrides the proxy SUnion's bucket size (default:
	// defaults.bucket_ms, keeping proxy buckets aligned with the nodes).
	BucketMS float64 `json:"bucket_ms,omitempty"`
	// DelayMS is the proxy SUnion's own slack (default 50).
	DelayMS             float64 `json:"delay_ms,omitempty"`
	TentativeWaitMS     float64 `json:"tentative_wait_ms,omitempty"`
	TentativeBoundaries bool    `json:"tentative_boundaries,omitempty"`
}

// FaultSpec is one entry of the timed fault schedule.
type FaultSpec struct {
	// Kind: "crash", "restart", "flap" (Node+Replica); "disconnect",
	// "stall_boundaries" (Source); "partition" (From/To endpoints).
	Kind string `json:"kind"`
	// Node / Replica target a replica of a logical node.
	Node    string `json:"node,omitempty"`
	Replica int    `json:"replica,omitempty"`
	// Source targets a source by expanded name ("sens3") or group name
	// ("sens", hitting every member).
	Source string `json:"source,omitempty"`
	// From / To are partition endpoints: a node name (all replicas), a
	// "node/replica" pair, a source, or "client".
	From string `json:"from,omitempty"`
	To   string `json:"to,omitempty"`
	// AtS schedules the fault; DurationS bounds it (partition heal,
	// source reconnect, flap down-time per cycle). A crash without
	// DurationS is permanent unless a later restart names the replica;
	// a crash with DurationS restarts the replica when it elapses.
	AtS       float64 `json:"at_s"`
	DurationS float64 `json:"duration_s,omitempty"`
	// Flap: Count down/up cycles (default 3) spaced PeriodS apart, each
	// down for DurationS (default half the period).
	PeriodS float64 `json:"period_s,omitempty"`
	Count   int     `json:"count,omitempty"`
}

// Load reads and validates a scenario file.
func Load(path string) (*Spec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return Parse(data)
}

// Parse decodes and validates a scenario spec. Unknown fields and
// trailing content are rejected — a corrupted file fails loudly.
func Parse(data []byte) (*Spec, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var s Spec
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	if dec.More() {
		return nil, errf("trailing content after the spec object")
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

func errf(format string, args ...any) error {
	return fmt.Errorf("scenario: "+format, args...)
}

// validMS accepts zero (use the default) and values of at least one
// microsecond; negatives and positive sub-microsecond values are
// rejected (the latter truncate to zero when converted to engine µs).
func validMS(v float64, what string) error {
	if v < 0 {
		return errf("%s must not be negative", what)
	}
	if v > 0 && v < 0.001 {
		return errf("%s must be at least 0.001 (one microsecond)", what)
	}
	return nil
}

func parsePolicy(s, what string) (operator.DelayPolicy, error) {
	switch s {
	case "":
		return operator.PolicyNone, nil
	case "process":
		return operator.PolicyProcess, nil
	case "delay":
		return operator.PolicyDelay, nil
	case "suspend":
		return operator.PolicySuspend, nil
	}
	return operator.PolicyNone, errf("%s: unknown policy %q (want process|delay|suspend)", what, s)
}

func parseAggFn(s string) (operator.AggFunc, error) {
	switch s {
	case "count":
		return operator.AggCount, nil
	case "sum":
		return operator.AggSum, nil
	case "avg":
		return operator.AggAvg, nil
	case "min":
		return operator.AggMin, nil
	case "max":
		return operator.AggMax, nil
	}
	return operator.AggCount, errf("aggregate: unknown fn %q (want count|sum|avg|min|max)", s)
}

// sourceMembers returns the expanded source names of one SourceSpec.
func (ss *SourceSpec) members() []string {
	n := ss.Count
	if n <= 1 {
		return []string{ss.Name}
	}
	out := make([]string, n)
	for i := 0; i < n; i++ {
		out[i] = fmt.Sprintf("%s%d", ss.Name, i+1)
	}
	return out
}

// replicasOf resolves a node's replica count against the defaults.
func (s *Spec) replicasOf(n *NodeSpec) int {
	if n.Replicas != nil {
		return *n.Replicas
	}
	if s.Defaults.Replicas > 0 {
		return s.Defaults.Replicas
	}
	return 2
}

// delayOf resolves a node's availability bound D, in seconds.
func (s *Spec) delayOf(n *NodeSpec) float64 {
	if n.DelayS != nil {
		return *n.DelayS
	}
	if s.Defaults.DelayS > 0 {
		return s.Defaults.DelayS
	}
	return 2
}

// clientInput resolves the node the client consumes.
func (s *Spec) clientInput() string {
	if s.Client.Input != "" {
		return s.Client.Input
	}
	if len(s.Nodes) > 0 {
		return s.Nodes[len(s.Nodes)-1].Name
	}
	return ""
}

// Validate checks the spec without building anything: names resolve, the
// node graph is a DAG, rates and durations are sane, and every fault
// targets something that exists.
func (s *Spec) Validate() error {
	if s.Name == "" {
		return errf("missing name")
	}
	if s.DurationS <= 0 {
		return errf("duration_s must be positive")
	}
	if s.QuickDurationS < 0 {
		return errf("quick_duration_s must not be negative")
	}
	if len(s.Sources) == 0 {
		return errf("no sources")
	}
	if len(s.Nodes) == 0 {
		return errf("no nodes")
	}
	if _, err := parsePolicy(s.Defaults.FailurePolicy, "defaults.failure_policy"); err != nil {
		return err
	}
	if _, err := parsePolicy(s.Defaults.Stabilization, "defaults.stabilization"); err != nil {
		return err
	}
	// Millisecond fields compile into microsecond engine parameters: a
	// negative value would silently fall back to a default downstream,
	// and a positive sub-microsecond one would truncate to zero and
	// panic at build time (SUnion bucket sizes must be positive). Reject
	// both here — the fuzzer generator and every other caller rely on
	// Validate being the exact contract for "this spec compiles and
	// runs".
	msFields := []struct {
		v    float64
		what string
	}{
		{s.Defaults.BucketMS, "defaults.bucket_ms"},
		{s.Defaults.BoundaryMS, "defaults.boundary_ms"},
		{s.Defaults.TickMS, "defaults.tick_ms"},
		{s.Defaults.StallTimeoutMS, "defaults.stall_timeout_ms"},
		{s.Defaults.KeepAliveMS, "defaults.keep_alive_ms"},
		{s.Defaults.AckIntervalMS, "defaults.ack_interval_ms"},
		{s.Client.BucketMS, "client.bucket_ms"},
		{s.Client.DelayMS, "client.delay_ms"},
		{s.Client.TentativeWaitMS, "client.tentative_wait_ms"},
	}
	for _, f := range msFields {
		if err := validMS(f.v, f.what); err != nil {
			return err
		}
	}
	if s.Defaults.DelayS < 0 {
		return errf("defaults.delay_s must not be negative")
	}
	if s.Defaults.Capacity < 0 {
		return errf("defaults.capacity must not be negative")
	}
	if s.Defaults.Replicas < 0 {
		return errf("defaults.replicas must not be negative")
	}
	if s.AvailabilitySlackS < 0 {
		return errf("availability_slack_s must not be negative")
	}

	// Source names and expanded member streams.
	sourceGroups := map[string]*SourceSpec{}
	streams := map[string]bool{}
	for i := range s.Sources {
		ss := &s.Sources[i]
		if ss.Name == "" {
			return errf("source %d: missing name", i)
		}
		if sourceGroups[ss.Name] != nil {
			return errf("duplicate source name %q", ss.Name)
		}
		if ss.Rate <= 0 {
			return errf("source %q: rate must be positive, got %v", ss.Name, ss.Rate)
		}
		if ss.Count < 0 {
			return errf("source %q: count must not be negative", ss.Name)
		}
		switch ss.Distribution {
		case "", "uniform", "zipf":
		default:
			return errf("source %q: unknown distribution %q (want uniform|zipf)", ss.Name, ss.Distribution)
		}
		if ss.Skew < 0 {
			return errf("source %q: skew must not be negative", ss.Name)
		}
		switch ss.Workload.Kind {
		case "", "constant":
		case "bursty":
			if ss.Workload.Factor < 0 || ss.Workload.Duty < 0 || ss.Workload.Duty >= 1 {
				return errf("source %q: bursty needs factor ≥ 0 and 0 ≤ duty < 1", ss.Name)
			}
			// The off-phase floor rate is base·(1−duty·factor)/(1−duty);
			// duty·factor > 1 would need a negative floor to preserve the
			// mean, which is impossible — reject instead of silently
			// running at a higher mean rate.
			factor, duty := ss.Workload.Factor, ss.Workload.Duty
			if factor == 0 {
				factor = 4
			}
			if duty == 0 {
				duty = 0.25
			}
			if duty*factor > 1 {
				return errf("source %q: bursty duty·factor = %.2f > 1 cannot preserve the mean rate", ss.Name, duty*factor)
			}
		case "ramp":
			if ss.Workload.ToRate < 0 {
				return errf("source %q: ramp to_rate must not be negative", ss.Name)
			}
		default:
			return errf("source %q: unknown workload kind %q (want constant|bursty|ramp)", ss.Name, ss.Workload.Kind)
		}
		if err := validMS(ss.BoundaryMS, fmt.Sprintf("source %q: boundary_ms", ss.Name)); err != nil {
			return err
		}
		if ss.LogCap < 0 {
			return errf("source %q: log_cap must not be negative", ss.Name)
		}
		sourceGroups[ss.Name] = ss
		for _, m := range ss.members() {
			if streams[m] {
				return errf("source stream %q defined twice", m)
			}
			streams[m] = true
		}
	}

	// Node names, inputs, operators; cycle detection over node edges.
	nodes := map[string]*NodeSpec{}
	for i := range s.Nodes {
		n := &s.Nodes[i]
		if n.Name == "" {
			return errf("node %d: missing name", i)
		}
		if nodes[n.Name] != nil {
			return errf("duplicate node name %q", n.Name)
		}
		if sourceGroups[n.Name] != nil || streams[n.Name] {
			return errf("node %q collides with a source name", n.Name)
		}
		nodes[n.Name] = n
	}
	for i := range s.Nodes {
		n := &s.Nodes[i]
		if len(n.Inputs) == 0 {
			return errf("node %q: no inputs", n.Name)
		}
		for _, in := range n.Inputs {
			if nodes[in] == nil && sourceGroups[in] == nil && !streams[in] {
				return errf("node %q: unknown input %q", n.Name, in)
			}
		}
		if s.replicasOf(n) < 1 || s.replicasOf(n) > 26 {
			return errf("node %q: replicas must be in 1..26", n.Name)
		}
		if s.delayOf(n) < 0 {
			return errf("node %q: delay_s must not be negative", n.Name)
		}
		if n.Capacity != nil && *n.Capacity < 0 {
			return errf("node %q: capacity must not be negative", n.Name)
		}
		if _, err := parsePolicy(n.FailurePolicy, "node "+n.Name); err != nil {
			return err
		}
		if _, err := parsePolicy(n.Stabilization, "node "+n.Name); err != nil {
			return err
		}
		switch n.BufferMode {
		case "", "unbounded", "block", "slide":
		default:
			return errf("node %q: unknown buffer_mode %q", n.Name, n.BufferMode)
		}
		if n.BufferCap < 0 {
			return errf("node %q: buffer_cap must not be negative", n.Name)
		}
		if err := validMS(n.TentativeWaitMS, fmt.Sprintf("node %q: tentative_wait_ms", n.Name)); err != nil {
			return err
		}
		for oi, op := range n.Operators {
			switch op.Kind {
			case "filter", "map":
			case "aggregate":
				if op.WindowMS < 0.001 {
					return errf("node %q operator %d: aggregate needs window_ms ≥ 0.001", n.Name, oi)
				}
				if op.SlideMS < 0 {
					return errf("node %q operator %d: slide_ms must not be negative", n.Name, oi)
				}
				if op.Fn != "" {
					if _, err := parseAggFn(op.Fn); err != nil {
						return err
					}
				}
			case "join":
				if op.WindowMS < 0.001 {
					return errf("node %q operator %d: join needs window_ms ≥ 0.001", n.Name, oi)
				}
				if op.LeftInputs < 0 {
					return errf("node %q operator %d: left_inputs must not be negative", n.Name, oi)
				}
			default:
				return errf("node %q operator %d: unknown kind %q (want filter|map|aggregate|join)", n.Name, oi, op.Kind)
			}
		}
	}
	// DFS cycle check over node→node edges.
	const (
		white = 0
		grey  = 1
		black = 2
	)
	color := map[string]int{}
	var visit func(name string) error
	visit = func(name string) error {
		color[name] = grey
		for _, in := range nodes[name].Inputs {
			if nodes[in] == nil {
				continue
			}
			switch color[in] {
			case grey:
				return errf("cyclic topology: node %q reaches itself through %q", in, name)
			case white:
				if err := visit(in); err != nil {
					return err
				}
			}
		}
		color[name] = black
		return nil
	}
	for i := range s.Nodes {
		if color[s.Nodes[i].Name] == white {
			if err := visit(s.Nodes[i].Name); err != nil {
				return err
			}
		}
	}

	ci := s.clientInput()
	if nodes[ci] == nil {
		return errf("client input %q is not a node", ci)
	}

	// Fault targets.
	resolvesEndpoint := func(ep string) bool {
		if ep == "client" {
			return true
		}
		name, rep, hasRep := strings.Cut(ep, "/")
		if hasRep {
			n := nodes[name]
			if n == nil {
				return false
			}
			r, err := strconv.Atoi(rep)
			return err == nil && r >= 0 && r < s.replicasOf(n)
		}
		return nodes[ep] != nil || sourceGroups[ep] != nil || streams[ep]
	}
	for i := range s.Faults {
		f := &s.Faults[i]
		if f.AtS < 0 || f.DurationS < 0 {
			return errf("fault %d: negative time", i)
		}
		switch f.Kind {
		case "crash", "restart", "flap":
			n := nodes[f.Node]
			if n == nil {
				return errf("fault %d (%s): unknown node %q", i, f.Kind, f.Node)
			}
			if f.Replica < 0 || f.Replica >= s.replicasOf(n) {
				return errf("fault %d (%s): node %q has no replica %d", i, f.Kind, f.Node, f.Replica)
			}
			if f.Kind == "flap" && f.PeriodS <= 0 {
				return errf("fault %d (flap): period_s must be positive", i)
			}
		case "disconnect", "stall_boundaries":
			if sourceGroups[f.Source] == nil && !streams[f.Source] {
				return errf("fault %d (%s): unknown source %q", i, f.Kind, f.Source)
			}
			if f.DurationS <= 0 {
				return errf("fault %d (%s): duration_s must be positive", i, f.Kind)
			}
		case "partition":
			if !resolvesEndpoint(f.From) {
				return errf("fault %d (partition): unknown endpoint %q", i, f.From)
			}
			if !resolvesEndpoint(f.To) {
				return errf("fault %d (partition): unknown endpoint %q", i, f.To)
			}
			if f.DurationS <= 0 {
				return errf("fault %d (partition): duration_s must be positive", i)
			}
		default:
			return errf("fault %d: unknown kind %q", i, f.Kind)
		}
	}
	return nil
}

// seconds converts spec seconds to virtual-time µs.
func seconds(s float64) int64 { return int64(s * float64(vtime.Second)) }

// millis converts spec milliseconds to virtual-time µs.
func millis(ms float64) int64 { return int64(ms * float64(vtime.Millisecond)) }
