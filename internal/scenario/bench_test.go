// Benchmarks for the run-family executor: per-cell setup (spec copy,
// compile) and the RunMany fan-out. The Clone/CloneJSON pair pins the
// sweep-copy rewrite; BenchmarkRunMany doubles as the CI smoke that the
// parallel executor keeps working (-bench RunMany -benchtime 1x).
package scenario

import (
	"encoding/json"
	"os"
	goruntime "runtime"
	"testing"

	rtpkg "borealis/internal/runtime"
)

// benchSpec loads the widest curated scenario — the most expensive spec
// to copy and compile.
func benchSpec(b *testing.B) *Spec {
	b.Helper()
	spec, err := Load("../../scenarios/wide-fanout-join.json")
	if err != nil {
		b.Fatal(err)
	}
	spec.VerifyConsistency = false
	return spec
}

// BenchmarkSpecClone measures the handwritten deep copy every sweep/grid
// cell pays.
func BenchmarkSpecClone(b *testing.B) {
	spec := benchSpec(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := spec.Clone()
		if c.Name != spec.Name {
			b.Fatal("bad clone")
		}
	}
}

// BenchmarkSpecCloneJSON is the replaced implementation — the JSON
// marshal/unmarshal round trip SweepSpec.apply used before — kept as the
// baseline the Clone numbers are compared against.
func BenchmarkSpecCloneJSON(b *testing.B) {
	spec := benchSpec(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		raw, err := json.Marshal(spec)
		if err != nil {
			b.Fatal(err)
		}
		var c Spec
		if err := json.Unmarshal(raw, &c); err != nil {
			b.Fatal(err)
		}
		if c.Name != spec.Name {
			b.Fatal("bad clone")
		}
	}
}

// BenchmarkCompile measures per-cell setup beyond the copy: validation,
// name-index build, topology assembly, workload/fault installation and
// probe hookup — everything a grid cell pays before its first event.
func BenchmarkCompile(b *testing.B) {
	spec := benchSpec(b)
	if err := spec.Validate(); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rt, err := compile(rtpkg.NewVirtual(), spec, true, true, false, false, nil)
		if err != nil {
			b.Fatal(err)
		}
		if rt.dep == nil {
			b.Fatal("no deployment")
		}
	}
}

// BenchmarkRunMany fans a small homogeneous run family across the worker
// pool. One iteration runs GOMAXPROCS×2 short scenarios — enough to
// exercise queue hand-off and result routing without dominating CI.
func BenchmarkRunMany(b *testing.B) {
	base := &Spec{
		Name:      "bench",
		Seed:      1,
		DurationS: 2,
		Sources:   []SourceSpec{{Name: "s", Rate: 200}},
		Nodes:     []NodeSpec{{Name: "n1", Inputs: []string{"s"}}},
		Faults:    []FaultSpec{{Kind: "crash", Node: "n1", Replica: 0, AtS: 1, DurationS: 0.5}},
	}
	specs := make([]*Spec, goruntime.GOMAXPROCS(0)*2)
	for i := range specs {
		specs[i] = base
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		reports, err := RunMany(specs, Options{})
		if err != nil {
			b.Fatal(err)
		}
		if reports[0].Client.NewTuples == 0 {
			b.Fatal("empty run")
		}
	}
}

// BenchmarkRunManySerial is the Parallelism-1 baseline of the same
// family: the speedup ratio of the two is the executor's scaling on the
// benchmarking machine.
func BenchmarkRunManySerial(b *testing.B) {
	base := &Spec{
		Name:      "bench",
		Seed:      1,
		DurationS: 2,
		Sources:   []SourceSpec{{Name: "s", Rate: 200}},
		Nodes:     []NodeSpec{{Name: "n1", Inputs: []string{"s"}}},
		Faults:    []FaultSpec{{Kind: "crash", Node: "n1", Replica: 0, AtS: 1, DurationS: 0.5}},
	}
	specs := make([]*Spec, goruntime.GOMAXPROCS(0)*2)
	for i := range specs {
		specs[i] = base
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		reports, err := RunMany(specs, Options{Parallelism: 1})
		if err != nil {
			b.Fatal(err)
		}
		if reports[0].Client.NewTuples == 0 {
			b.Fatal("empty run")
		}
	}
}

// planeSpec loads the fault-free chain used by the data-plane throughput
// benchmarks: the chain-throughput harness topology with its fault schedule
// stripped, so the measurement is a pure steady-state pipeline.
func planeSpec(b *testing.B) *Spec {
	b.Helper()
	spec, err := Load("../../scenarios/bench/chain-throughput.json")
	if err != nil {
		b.Fatal(err)
	}
	spec = spec.Clone()
	spec.Faults = nil
	spec.VerifyConsistency = false
	return spec
}

// benchPlane runs the fault-free chain on one data plane and reports
// engine-processed tuples per wall second. The quick (10s) variant keeps
// CI cheap; set BENCH_FULL=1 for the spec's full duration when profiling.
func benchPlane(b *testing.B, perTuple bool) {
	spec := planeSpec(b)
	if err := spec.Validate(); err != nil {
		b.Fatal(err)
	}
	quick := os.Getenv("BENCH_FULL") == ""
	b.ReportAllocs()
	b.ResetTimer()
	var processed uint64
	for i := 0; i < b.N; i++ {
		rt, err := compile(rtpkg.NewVirtual(), spec, quick, true, perTuple, true, nil)
		if err != nil {
			b.Fatal(err)
		}
		rt.dep.Start()
		rt.dep.RunFor(rt.durationUS)
		processed = 0
		for _, group := range rt.dep.Nodes {
			for _, n := range group {
				processed += n.Engine().Processed
			}
		}
	}
	b.ReportMetric(float64(processed)*float64(b.N)/b.Elapsed().Seconds(), "tuples/s")
}

// BenchmarkPlaneBatch measures the staged batch data plane on the
// fault-free chain; compare with BenchmarkPlanePerTuple — the CI
// throughput smoke asserts batch ≥ per-tuple on this pair.
func BenchmarkPlaneBatch(b *testing.B) { benchPlane(b, false) }

// BenchmarkPlanePerTuple measures the per-tuple reference plane on the
// same workload.
func BenchmarkPlanePerTuple(b *testing.B) { benchPlane(b, true) }
