// Cluster support: the pieces of the scenario engine a multi-process
// deployment needs. A boss process partitions a spec's endpoints across
// worker processes; each worker compiles the shared spec with
// CompilePartition, hosting only its owned endpoints on a TCP fabric, runs
// on a wall clock, and ships a WorkerReport fragment back. The boss merges
// the fragments into the ordinary Report shape and audits Definition 1
// against a fault-free virtual-clock reference run of the same spec — the
// same yardstick the single-process audit uses, because the wall clock's
// event-anchored time keeps stable stream content identical to a virtual
// run of the same program.
package scenario

import (
	"strconv"
	"strings"

	"borealis/internal/client"
	"borealis/internal/deploy"
	"borealis/internal/fabric"
	rtpkg "borealis/internal/runtime"
	"borealis/internal/tuple"
	"borealis/internal/vtime"
)

// Endpoints enumerates every network endpoint a compiled spec registers, in
// deterministic spec order: expanded source members, replica IDs group by
// group, then the client. The boss's partition plan divides exactly this
// set.
func Endpoints(s *Spec) []string {
	var out []string
	for i := range s.Sources {
		out = append(out, s.Sources[i].members()...)
	}
	for i := range s.Nodes {
		n := &s.Nodes[i]
		for r := 0; r < s.replicasOf(n); r++ {
			out = append(out, deploy.GroupReplicaID(n.Name, r))
		}
	}
	return append(out, "client")
}

// FaultTargets lists the replica endpoints hit by process-level faults
// (crash, restart, flap), deduplicated in schedule order. In a cluster run
// each of these is hosted alone on a dedicated worker so the boss can
// translate the fault into a real SIGKILL of that worker's process.
func FaultTargets(s *Spec) []string {
	var out []string
	seen := map[string]bool{}
	for i := range s.Faults {
		f := &s.Faults[i]
		switch f.Kind {
		case "crash", "restart", "flap":
			id := deploy.GroupReplicaID(f.Node, f.Replica)
			if !seen[id] {
				seen[id] = true
				out = append(out, id)
			}
		}
	}
	return out
}

// DurationUS resolves a spec's run horizon in virtual microseconds,
// honoring the quick-mode override. The boss schedules real-time fault
// actions and report deadlines against it.
func DurationUS(s *Spec, quick bool) int64 {
	return quickDuration(s, quick)
}

// LastFaultHealUS mirrors installFaults' heal bookkeeping on the bare spec:
// the latest instant within the run at which an injected fault heals, -1
// without faults. The boss computes the merged report's stabilization
// baseline from it, since no single worker sees the whole fault schedule.
func LastFaultHealUS(s *Spec, quick bool) int64 {
	durationUS := quickDuration(s, quick)
	last := int64(-1)
	heal := func(atUS int64) {
		if atUS <= durationUS && atUS > last {
			last = atUS
		}
	}
	for i := range s.Faults {
		f := &s.Faults[i]
		at := seconds(f.AtS)
		dur := seconds(f.DurationS)
		if at >= durationUS {
			continue
		}
		switch f.Kind {
		case "crash":
			if dur > 0 {
				heal(at + dur)
			}
		case "restart":
			heal(at)
		case "flap":
			period := seconds(f.PeriodS)
			count := f.Count
			if count <= 0 {
				count = 3
			}
			down := dur
			if down <= 0 {
				down = period / 2
			}
			for k := 0; k < count; k++ {
				heal(at + int64(k)*period + down)
			}
		case "disconnect", "stall_boundaries", "partition":
			heal(at + dur)
		}
	}
	return last
}

// installLocalFaults schedules the slice of the fault timeline a partition
// executes itself: source-level faults on sources it hosts. Process-level
// faults (crash/restart/flap) are the boss's job — it delivers them as real
// signals to the owning worker process. Network partitions are the boss's
// job too: it translates them into timed LINK block/unblock lines applied
// through fabric.LinkControl on every worker.
func (rt *run) installLocalFaults() error {
	for i := range rt.spec.Faults {
		f := &rt.spec.Faults[i]
		at := seconds(f.AtS)
		dur := seconds(f.DurationS)
		if at >= rt.durationUS {
			continue
		}
		switch f.Kind {
		case "crash", "restart", "flap":
			// Translated by the boss into SIGKILL / respawn of the
			// dedicated worker hosting the target replica.
		case "disconnect":
			for _, id := range rt.sourceIDs(f.Source) {
				if src := rt.dep.SourceByID(id); src != nil {
					rt.dep.RT.At(at, src.Disconnect)
					rt.dep.RT.At(at+dur, src.Reconnect)
				}
			}
		case "stall_boundaries":
			for _, id := range rt.sourceIDs(f.Source) {
				if src := rt.dep.SourceByID(id); src != nil {
					rt.dep.RT.At(at, src.StallBoundaries)
					rt.dep.RT.At(at+dur, src.ResumeBoundaries)
				}
			}
		case "partition":
			// Translated by the boss into LINK block/unblock lines
			// broadcast to every worker (the transport blocks the
			// directed links locally, covering intra-worker pairs too).
		}
	}
	return nil
}

// ExpandEndpoint resolves a partition-fault endpoint spec ("client", a node
// name covering all replicas, a "node/replica" pair, a source group or
// expanded member) into network endpoint IDs on the bare spec — the cluster
// boss's counterpart of the compiled run's endpointSet, for translating
// partition faults into link actions without a deployment in hand.
func ExpandEndpoint(s *Spec, ep string) ([]string, error) {
	if ep == "client" {
		return []string{"client"}, nil
	}
	if name, rep, ok := strings.Cut(ep, "/"); ok {
		for i := range s.Nodes {
			n := &s.Nodes[i]
			if n.Name != name {
				continue
			}
			r, err := strconv.Atoi(rep)
			if err != nil || r < 0 || r >= s.replicasOf(n) {
				return nil, errf("bad endpoint %q", ep)
			}
			return []string{deploy.GroupReplicaID(name, r)}, nil
		}
		return nil, errf("bad endpoint %q", ep)
	}
	for i := range s.Nodes {
		n := &s.Nodes[i]
		if n.Name != ep {
			continue
		}
		out := make([]string, s.replicasOf(n))
		for r := range out {
			out[r] = deploy.GroupReplicaID(ep, r)
		}
		return out, nil
	}
	for i := range s.Sources {
		ss := &s.Sources[i]
		if ss.Name == ep {
			return ss.members(), nil
		}
		for _, m := range ss.members() {
			if m == ep {
				return []string{m}, nil
			}
		}
	}
	return nil, errf("unknown endpoint %q", ep)
}

// PartitionRun is one worker's compiled slice of a scenario.
type PartitionRun struct {
	rt *run
}

// CompilePartition compiles the slice of a spec owned by one cluster
// worker onto the given runtime and fabric (the TCP transport in a real
// cluster). Workload schedules are installed for owned sources only, with
// PRNG streams identical to the single-process run; the fault schedule is
// reduced to the locally-executable slice (see installLocalFaults).
func CompilePartition(exec rtpkg.Runtime, fab fabric.Fabric, s *Spec, owned map[string]bool, quick bool) (*PartitionRun, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	rt := &run{
		spec:       s,
		quick:      quick,
		durationUS: quickDuration(s, quick),
		lastHealUS: -1,
		maxSTime:   -1,
	}
	idx := s.index()
	dep, err := deploy.BuildPartitionOn(exec, fab, topologySpecOf(s, idx, false, false), owned)
	if err != nil {
		return nil, err
	}
	rt.dep = dep
	rt.boundUS = rt.availabilityBound(idx)
	rt.installWorkloads()
	if err := rt.installLocalFaults(); err != nil {
		return nil, err
	}
	if dep.Client != nil {
		rt.hookClient()
	}
	return &PartitionRun{rt: rt}, nil
}

// Deployment exposes the partition's deployment for starting and driving.
func (p *PartitionRun) Deployment() *deploy.Deployment { return p.rt.dep }

// DurationUS is the run horizon in clock microseconds (absolute: a
// respawned worker whose clock starts mid-scenario drives to the same
// horizon).
func (p *PartitionRun) DurationUS() int64 { return p.rt.durationUS }

// WorkerReport is one worker's report fragment, shipped to the boss as a
// single JSON line. It carries the per-endpoint rows of the final Report
// verbatim, the client-hook metrics, and — when the worker hosts the
// client — the full stable view so the boss can run the Definition 1 audit
// without a live client.
type WorkerReport struct {
	Worker  string         `json:"worker"`
	Sources []SourceReport `json:"sources,omitempty"`
	Nodes   []NodeReport   `json:"nodes,omitempty"`
	Client  *ClientReport  `json:"client,omitempty"`

	// Client-hook metrics (present only with the client).
	Violations    uint64        `json:"violations,omitempty"`
	MaxExcessUS   int64         `json:"max_excess_us,omitempty"`
	LastRecDoneUS int64         `json:"last_rec_done_us,omitempty"`
	StableView    []tuple.Tuple `json:"stable_view,omitempty"`

	// Processed sums engine-processed tuples across hosted replicas (the
	// bench harness's throughput numerator); Delivered/Dropped are the
	// transport's frame counters, with Dropped partitioned by cause (see
	// transport.TCP) and CtlStalls counting control-class sends that had
	// to block under flow control.
	Processed    uint64 `json:"processed"`
	Delivered    uint64 `json:"delivered"`
	Dropped      uint64 `json:"dropped"`
	DroppedDown  uint64 `json:"dropped_down,omitempty"`
	DroppedQueue uint64 `json:"dropped_queue,omitempty"`
	DroppedDead  uint64 `json:"dropped_dead,omitempty"`
	DroppedWrite uint64 `json:"dropped_write,omitempty"`
	DroppedLink  uint64 `json:"dropped_link,omitempty"`
	DroppedCtl   uint64 `json:"dropped_ctl,omitempty"`
	CtlStalls    uint64 `json:"ctl_stalls,omitempty"`
}

// WorkerReport assembles the fragment after the partition has run.
func (p *PartitionRun) WorkerReport(worker string) *WorkerReport {
	rt := p.rt
	wr := &WorkerReport{Worker: worker}
	for _, src := range rt.dep.Sources {
		wr.Sources = append(wr.Sources, SourceReport{
			Name:       src.ID(),
			Produced:   src.Produced,
			DroppedLog: src.DroppedLog,
			FinalRate:  round3(src.Rate()),
		})
	}
	for gi, name := range rt.dep.GroupNames() {
		for _, n := range rt.dep.Nodes[gi] {
			if n == nil {
				continue
			}
			nr := NodeReport{
				Node:            name,
				Replica:         n.ID(),
				State:           n.State().String(),
				Down:            n.Down(),
				Reconciliations: n.Reconciliations,
				Switches:        n.CM().Switches,
				MaxQueueDepth:   n.Engine().MaxQueueLen(),
				HoldsTentative:  n.Engine().HoldsTentative(),
			}
			if durs := n.ReconcileDurations(); len(durs) > 0 {
				nr.ReconcileDurationsS = make([]float64, len(durs))
				for di, d := range durs {
					nr.ReconcileDurationsS[di] = secs(d)
				}
			}
			fillGrantReport(&nr, n.CM(), rt.durationUS)
			wr.Nodes = append(wr.Nodes, nr)
			wr.Processed += n.Engine().Processed
		}
	}
	if rt.dep.Client != nil {
		st := rt.dep.Client.Stats()
		durS := secs(rt.durationUS)
		wr.Client = &ClientReport{
			NewTuples:          st.NewTuples,
			ThroughputTPS:      round3(float64(st.NewTuples) / durS),
			MaxLatencyS:        secs(st.MaxLatency),
			MeanLatencyS:       round3(st.MeanLatency / float64(vtime.Second)),
			Tentative:          st.Tentative,
			MaxTentativeStreak: st.MaxTentativeStreak,
			Undos:              st.Undos,
			RecDones:           st.RecDones,
			StableDuplicates:   st.StableDuplicates,
		}
		wr.Violations = rt.violations
		wr.MaxExcessUS = rt.maxExcessUS
		wr.LastRecDoneUS = rt.lastRecDoneUS
		wr.StableView = rt.dep.Client.StableView()
	}
	return wr
}

// MergeClusterReports folds worker fragments into the ordinary Report
// shape, in canonical spec order. Endpoints no fragment covers — a worker
// SIGKILLed without a later respawn — get synthesized rows: a crashed
// replica reports FAILURE/down, exactly what its process would say if it
// could. The consistency section is attached separately by AuditCluster.
func MergeClusterReports(s *Spec, quick bool, frags []*WorkerReport) *Report {
	durationUS := quickDuration(s, quick)
	durS := secs(durationUS)
	idx := s.index()
	srcByName := map[string]SourceReport{}
	nodeByID := map[string]NodeReport{}
	var cli *WorkerReport
	var tp TransportReport
	for _, f := range frags {
		if f == nil {
			continue
		}
		for _, sr := range f.Sources {
			srcByName[sr.Name] = sr
		}
		for _, nr := range f.Nodes {
			nodeByID[nr.Replica] = nr
		}
		if f.Client != nil {
			cli = f
		}
		tp.Delivered += f.Delivered
		tp.Dropped += f.Dropped
		tp.DroppedDown += f.DroppedDown
		tp.DroppedQueue += f.DroppedQueue
		tp.DroppedDead += f.DroppedDead
		tp.DroppedWrite += f.DroppedWrite
		tp.DroppedLink += f.DroppedLink
		tp.DroppedCtl += f.DroppedCtl
		tp.CtlStalls += f.CtlStalls
	}
	rep := &Report{
		Scenario:    s.Name,
		Description: s.Description,
		Seed:        s.Seed,
		Quick:       quick,
		DurationS:   durS,
		Availability: AvailabilityReport{
			BoundS: secs(availabilityBoundUS(s, idx)),
		},
		Transport: &tp,
	}
	for i := range s.Sources {
		for _, m := range s.Sources[i].members() {
			if sr, ok := srcByName[m]; ok {
				rep.Sources = append(rep.Sources, sr)
			} else {
				rep.Sources = append(rep.Sources, SourceReport{Name: m})
			}
		}
	}
	for i := range s.Nodes {
		n := &s.Nodes[i]
		for r := 0; r < s.replicasOf(n); r++ {
			id := deploy.GroupReplicaID(n.Name, r)
			if nr, ok := nodeByID[id]; ok {
				rep.Nodes = append(rep.Nodes, nr)
			} else {
				rep.Nodes = append(rep.Nodes, NodeReport{
					Node: n.Name, Replica: id, State: "FAILURE", Down: true,
				})
			}
		}
	}
	if cli != nil {
		rep.Client = *cli.Client
		rep.Availability.Violations = cli.Violations
		rep.Availability.MaxExcessS = secs(cli.MaxExcessUS)
		if rep.Client.NewTuples > 0 {
			rep.Availability.ViolationRate = round3(float64(cli.Violations) / float64(rep.Client.NewTuples))
		}
	}
	if lastHeal := LastFaultHealUS(s, quick); lastHeal >= 0 {
		rep.Stabilization.LastFaultHealS = secs(lastHeal)
		if cli != nil && cli.LastRecDoneUS > 0 {
			rep.Stabilization.LastRecDoneS = secs(cli.LastRecDoneUS)
			if lag := cli.LastRecDoneUS - lastHeal; lag > 0 {
				rep.Stabilization.LatencyS = secs(lag)
			}
		}
	}
	return rep
}

// ClusterReference runs the spec fault-free on a private virtual clock and
// returns the client's delivered view — the Definition 1 yardstick the
// boss audits the merged cluster run against.
func ClusterReference(s *Spec, quick bool) ([]tuple.Tuple, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	ref, err := compile(rtpkg.NewVirtual(), s, quick, false, false, false, nil)
	if err != nil {
		return nil, err
	}
	ref.dep.Start()
	ref.dep.RunFor(ref.durationUS)
	return ref.dep.Client.View(), nil
}

// AuditCluster attaches the Definition 1 consistency section to a merged
// report: stable is the cluster client's final stable view (from the
// owning worker's fragment), ref the reference view from ClusterReference.
func AuditCluster(rep *Report, stable, ref []tuple.Tuple) {
	res := client.VerifyViews(stable, ref)
	refStable := 0
	for _, t := range ref {
		if t.Type == tuple.Insertion {
			refStable++
		}
	}
	rep.Consistency = &ConsistencyReport{
		OK:        res.OK,
		Compared:  res.Compared,
		Reason:    res.Reason,
		GotStable: len(stable),
		RefStable: refStable,
	}
}
