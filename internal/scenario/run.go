package scenario

import (
	"borealis/internal/deploy"
	rtpkg "borealis/internal/runtime"
	"borealis/internal/tuple"
)

// Options tunes a scenario run.
type Options struct {
	// Quick substitutes the spec's quick duration (smoke tests, CI).
	Quick bool
	// SkipConsistency suppresses the reference run even when the spec
	// asks for the audit (halves the runtime of a smoke run).
	SkipConsistency bool
	// NoAudit additionally strips the client's per-delivery audit
	// instrumentation (undo-compacted view, duplicate tracking), so a
	// throughput measurement times the data plane rather than the audit
	// harness. Implies no consistency report; bench-only.
	NoAudit bool
	// Runtime selects the execution substrate for the main run: nil means
	// a fresh virtual clock (deterministic, instant); a WallClock paces
	// the scenario against real time. The consistency reference always
	// runs on a private virtual clock — it is the deterministic yardstick
	// the wall-clock run is audited against. A runtime must be fresh:
	// scenarios schedule their workload and fault timelines from t=0, so
	// a clock that has already advanced is rejected (a wall clock cannot
	// be rewound; reuse would silently clamp every event to now).
	Runtime rtpkg.Runtime
	// Parallelism bounds the worker pool of RunMany (and therefore Sweep
	// and Grid): ≤ 0 means one worker per GOMAXPROCS core, 1 forces
	// serial in-caller execution. Reports are byte-identical regardless —
	// each run executes on its own virtual clock and results are ordered
	// by input index, so parallelism only changes wall-clock time.
	Parallelism int
	// Trace, when non-nil, receives every protocol event of the main run
	// (state transitions, checkpoints, reconcile and correction messages)
	// from every node replica, in deterministic virtual-time order. The
	// consistency reference run is never traced. See node.TraceFn.
	Trace func(atUS int64, replica, event, detail string)
	// PerTuple runs every node (and the consistency reference, so both
	// executions share one data plane) on the reference per-tuple dispatch
	// instead of the staged batch plane. Reports are byte-identical either
	// way — the batch-vs-tuple differential oracle enforces it.
	PerTuple bool
}

// freshRuntime resolves the substrate, rejecting a clock that has already
// been driven or already carries scheduled events (e.g. a prior Build on
// it): two deployments sharing one event heap interleave their timelines.
func freshRuntime(opts Options) (rtpkg.Runtime, error) {
	if opts.Runtime == nil {
		return rtpkg.NewVirtual(), nil
	}
	if now := opts.Runtime.Now(); now != 0 {
		return nil, errf("runtime already driven to t=%dµs; scenarios schedule from t=0 — use a fresh runtime per run", now)
	}
	if n := opts.Runtime.Pending(); n != 0 {
		return nil, errf("runtime already has %d scheduled events; scenarios need a fresh runtime per run", n)
	}
	return opts.Runtime, nil
}

// Run executes a validated spec and returns its metrics report. On the
// default virtual runtime, same spec + same seed ⇒ bit-identical report.
func Run(s *Spec, opts Options) (*Report, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return runValidated(s, opts)
}

// runValidated is Run without the validation pass: the per-run path of
// RunMany, which validates each spec exactly once up front instead of
// once per cell. It never mutates the spec, so many concurrent runs may
// share one *Spec.
func runValidated(s *Spec, opts Options) (*Report, error) {
	exec, err := freshRuntime(opts)
	if err != nil {
		return nil, err
	}
	rt, err := compile(exec, s, opts.Quick, true, opts.PerTuple, opts.NoAudit, opts.Trace)
	if err != nil {
		return nil, err
	}
	rt.dep.Start()
	rt.dep.RunFor(rt.durationUS)
	rep := rt.report()
	if s.VerifyConsistency && !opts.SkipConsistency && !opts.NoAudit {
		ref, err := compile(rtpkg.NewVirtual(), s, opts.Quick, false, opts.PerTuple, false, nil)
		if err != nil {
			return nil, err
		}
		ref.dep.Start()
		ref.dep.RunFor(ref.durationUS)
		refView := ref.dep.Client.View()
		audit := rt.dep.Client.VerifyEventualConsistency(refView)
		refStable := 0
		for _, t := range refView {
			if t.Type == tuple.Insertion {
				refStable++
			}
		}
		rep.Consistency = &ConsistencyReport{
			OK:        audit.OK,
			Compared:  audit.Compared,
			Reason:    audit.Reason,
			GotStable: len(rt.dep.Client.StableView()),
			RefStable: refStable,
		}
	}
	return rep, nil
}

// Build compiles a spec into a deployment without running it, for callers
// that want to drive the simulation themselves (custom probes, tracing).
// Workloads and faults are installed; call Start on the result.
func Build(s *Spec, opts Options) (*deploy.Deployment, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	exec, err := freshRuntime(opts)
	if err != nil {
		return nil, err
	}
	rt, err := compile(exec, s, opts.Quick, true, opts.PerTuple, opts.NoAudit, opts.Trace)
	if err != nil {
		return nil, err
	}
	return rt.dep, nil
}
