package scenario

import "borealis/internal/deploy"

// Options tunes a scenario run.
type Options struct {
	// Quick substitutes the spec's quick duration (smoke tests, CI).
	Quick bool
	// SkipConsistency suppresses the reference run even when the spec
	// asks for the audit (halves the runtime of a smoke run).
	SkipConsistency bool
}

// Run executes a validated spec on the virtual-time simulator and returns
// its metrics report. Same spec + same seed ⇒ bit-identical report.
func Run(s *Spec, opts Options) (*Report, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	rt, err := compile(s, opts.Quick, true)
	if err != nil {
		return nil, err
	}
	rt.dep.Start()
	rt.dep.RunFor(rt.durationUS)
	rep := rt.report()
	if s.VerifyConsistency && !opts.SkipConsistency {
		ref, err := compile(s, opts.Quick, false)
		if err != nil {
			return nil, err
		}
		ref.dep.Start()
		ref.dep.RunFor(ref.durationUS)
		audit := rt.dep.Client.VerifyEventualConsistency(ref.dep.Client.View())
		rep.Consistency = &ConsistencyReport{
			OK:       audit.OK,
			Compared: audit.Compared,
			Reason:   audit.Reason,
		}
	}
	return rep, nil
}

// Build compiles a spec into a deployment without running it, for callers
// that want to drive the simulation themselves (custom probes, tracing).
// Workloads and faults are installed; call Start on the result.
func Build(s *Spec, opts Options) (*deploy.Deployment, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	rt, err := compile(s, opts.Quick, true)
	if err != nil {
		return nil, err
	}
	return rt.dep, nil
}
