package scenario

import (
	"bytes"
	"strings"
	"testing"

	rtpkg "borealis/internal/runtime"
)

func TestSweepValues(t *testing.T) {
	sw := SweepSpec{Field: "delay", From: 1, To: 8, Steps: 4}
	got := sw.Values()
	want := []float64{1, 1 + 7.0/3, 1 + 14.0/3, 8}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if diff := got[i] - want[i]; diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("values %v, want %v", got, want)
		}
	}
	one := SweepSpec{Field: "rate", From: 100, To: 400, Steps: 1}
	if v := one.Values(); len(v) != 1 || v[0] != 100 {
		t.Fatalf("steps=1 values %v, want [100]", v)
	}
}

func TestSweepValidate(t *testing.T) {
	if _, err := Sweep(&Spec{}, SweepSpec{Field: "bogus", Steps: 2}, Options{}); err == nil {
		t.Fatal("unknown field accepted")
	}
	if _, err := Sweep(&Spec{}, SweepSpec{Field: "delay", Steps: 0}, Options{}); err == nil {
		t.Fatal("zero steps accepted")
	}
	if _, err := Sweep(&Spec{}, SweepSpec{Field: "delay", From: 1, To: 2, Steps: 2},
		Options{Runtime: rtpkg.NewWall(100)}); err == nil {
		t.Fatal("caller-supplied runtime silently accepted")
	}
}

// TestSweepDelay sweeps D on a curated scenario and checks the mechanics:
// one row per step, swept values applied, and the base spec not mutated.
func TestSweepDelay(t *testing.T) {
	spec, err := Load("../../scenarios/chain-disconnect.json")
	if err != nil {
		t.Fatal(err)
	}
	spec.VerifyConsistency = false
	origDelay := spec.Defaults.DelayS

	rows, err := Sweep(spec, SweepSpec{Field: "delay", From: 1, To: 3, Steps: 3}, Options{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("%d rows, want 3", len(rows))
	}
	for i, r := range rows {
		if r.Report.Client.NewTuples == 0 {
			t.Fatalf("row %d delivered nothing", i)
		}
		// The availability bound follows the swept D: larger D, larger
		// bound (worst path = 2 node SUnions + client slack).
		if i > 0 && rows[i].Report.Availability.BoundS <= rows[i-1].Report.Availability.BoundS {
			t.Fatalf("bound did not grow with D: %v then %v",
				rows[i-1].Report.Availability.BoundS, rows[i].Report.Availability.BoundS)
		}
	}
	if spec.Defaults.DelayS != origDelay {
		t.Fatal("sweep mutated the base spec")
	}

	var buf bytes.Buffer
	PrintSweep(&buf, "delay", rows)
	out := buf.String()
	if !strings.Contains(out, "new_tuples") || strings.Count(out, "\n") != 4 {
		t.Fatalf("unexpected table:\n%s", out)
	}
}

// TestSweepRate scales the aggregate input rate proportionally across
// sources.
func TestSweepRate(t *testing.T) {
	spec, err := Load("../../scenarios/replica-flap-skew.json")
	if err != nil {
		t.Fatal(err)
	}
	sw := SweepSpec{Field: "rate", From: 100, To: 200, Steps: 2}
	stepped, err := sw.apply(spec, 200)
	if err != nil {
		t.Fatal(err)
	}
	var origTotal, newTotal float64
	for i := range spec.Sources {
		origTotal += spec.Sources[i].Rate
		newTotal += stepped.Sources[i].Rate
	}
	if newTotal < 199.99 || newTotal > 200.01 {
		t.Fatalf("scaled total %v, want 200 (from %v)", newTotal, origTotal)
	}
	// Proportions preserved.
	for i := range spec.Sources {
		wantShare := spec.Sources[i].Rate / origTotal
		gotShare := stepped.Sources[i].Rate / newTotal
		if d := wantShare - gotShare; d > 1e-9 || d < -1e-9 {
			t.Fatalf("source %d share drifted: %v → %v", i, wantShare, gotShare)
		}
	}
}

func TestSweepFaultDuration(t *testing.T) {
	spec, err := Load("../../scenarios/chain-disconnect.json")
	if err != nil {
		t.Fatal(err)
	}
	sw := SweepSpec{Field: "fault_duration", From: 2, To: 2, Steps: 1}
	stepped, err := sw.apply(spec, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i, f := range stepped.Faults {
		if f.DurationS != 2 {
			t.Fatalf("fault %d duration %v, want 2", i, f.DurationS)
		}
	}
}
