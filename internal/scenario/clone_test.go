package scenario

import (
	"encoding/json"
	"reflect"
	"testing"
)

// richSpec builds a spec exercising every pointer-bearing and slice-bearing
// field Clone must deep-copy.
func richSpec() *Spec {
	rep := 3
	delay := 4.5
	capacity := 800.0
	group := 1
	return &Spec{
		Name:              "clone-rich",
		Description:       "exercises every cloneable field",
		Seed:              7,
		DurationS:         30,
		QuickDurationS:    5,
		VerifyConsistency: true,
		Defaults:          Defaults{DelayS: 2, Replicas: 2, FailurePolicy: "process"},
		Sources: []SourceSpec{
			{Name: "a", Count: 3, Rate: 300, Distribution: "zipf", Skew: 1.2,
				Workload: WorkloadSpec{Kind: "bursty", PeriodS: 4, JitterPhase: true}},
			{Name: "b", Rate: 100, Workload: WorkloadSpec{Kind: "ramp", ToRate: 200}},
		},
		Nodes: []NodeSpec{
			{Name: "n1", Inputs: []string{"a", "b"}, Replicas: &rep, DelayS: &delay,
				Capacity: &capacity, Cascade: true,
				Operators: []OperatorSpec{
					{Kind: "filter", Field: 1, Modulo: 3},
					{Kind: "aggregate", Fn: "sum", WindowMS: 500, GroupField: &group},
				}},
			{Name: "n2", Inputs: []string{"n1"}, BufferMode: "slide", BufferCap: 64},
		},
		Client: ClientSpec{Input: "n2", DelayMS: 50},
		Faults: []FaultSpec{
			{Kind: "crash", Node: "n1", Replica: 0, AtS: 5, DurationS: 5},
			{Kind: "partition", From: "n2", To: "n1", AtS: 8, DurationS: 2},
		},
	}
}

// TestCloneEquivalent: the clone renders to identical JSON — it is the
// same spec, and any field Clone forgets to copy shows up as a diff here
// (scalars survive the struct copy, so this mainly guards nil-vs-empty
// slice handling and future reference-typed fields).
func TestCloneEquivalent(t *testing.T) {
	base := richSpec()
	c := base.Clone()
	b1, err := json.Marshal(base)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := json.Marshal(c)
	if err != nil {
		t.Fatal(err)
	}
	if string(b1) != string(b2) {
		t.Fatalf("clone is not equivalent:\n--- base ---\n%s\n--- clone ---\n%s", b1, b2)
	}
	if !reflect.DeepEqual(base, c) {
		t.Fatal("clone is not deep-equal to the base spec")
	}
}

// TestCloneAliasing: mutating every reference-typed part of the clone must
// leave the base spec untouched.
func TestCloneAliasing(t *testing.T) {
	base := richSpec()
	want, err := json.Marshal(base)
	if err != nil {
		t.Fatal(err)
	}

	c := base.Clone()
	// Slices of structs.
	c.Sources[0].Rate = 9999
	c.Sources[1].Workload.ToRate = -1
	c.Faults[0].DurationS = 77
	c.Faults = append(c.Faults, FaultSpec{Kind: "restart", Node: "n1", AtS: 9})
	// Nested slices.
	c.Nodes[0].Inputs[0] = "hijacked"
	c.Nodes[0].Operators[0].Modulo = 11
	// Override pointers.
	*c.Nodes[0].Replicas = 13
	*c.Nodes[0].DelayS = 0.001
	*c.Nodes[0].Capacity = 1
	*c.Nodes[0].Operators[1].GroupField = 5
	// Scalars (covered by the struct copy, pinned anyway).
	c.Name = "mutated"
	c.Defaults.Replicas = 9
	c.Client.DelayMS = 1

	got, err := json.Marshal(base)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(want) {
		t.Fatalf("mutating the clone changed the base spec:\n--- before ---\n%s\n--- after ---\n%s", want, got)
	}
}

// TestCloneNilHandling: nil receiver and nil slices stay nil (the JSON
// rendering of a nil and a non-nil empty slice differ for omitempty-less
// fields, so Clone must not invent empty slices).
func TestCloneNilHandling(t *testing.T) {
	var nilSpec *Spec
	if nilSpec.Clone() != nil {
		t.Fatal("nil.Clone() != nil")
	}
	s := &Spec{Name: "bare", DurationS: 1}
	c := s.Clone()
	if c.Sources != nil || c.Nodes != nil || c.Faults != nil {
		t.Fatalf("clone invented slices: %+v", c)
	}
}
