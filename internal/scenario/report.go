package scenario

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"slices"

	"borealis/internal/client"
	"borealis/internal/node"
	"borealis/internal/tuple"
	"borealis/internal/vtime"
)

// Report is the structured result of one scenario run. Every field derives
// deterministically from the spec and seed, so the canonical JSON rendering
// is bit-identical across runs — golden files and the determinism tests
// rely on this. Slices are used instead of maps to keep field order stable.
type Report struct {
	Scenario    string `json:"scenario"`
	Description string `json:"description,omitempty"`
	Seed        int64  `json:"seed"`
	// Quick marks a reduced -quick run; its numbers are not comparable
	// with a full run of the same scenario.
	Quick     bool    `json:"quick"`
	DurationS float64 `json:"duration_s"`

	Availability  AvailabilityReport  `json:"availability"`
	Client        ClientReport        `json:"client"`
	Stabilization StabilizationReport `json:"stabilization"`
	Sources       []SourceReport      `json:"sources"`
	Nodes         []NodeReport        `json:"nodes"`
	Consistency   *ConsistencyReport  `json:"consistency,omitempty"`
	// Transport aggregates the workers' frame counters in cluster runs
	// (absent in single-process reports, whose fabric is the simulator).
	Transport *TransportReport `json:"transport,omitempty"`
}

// TransportReport sums the cluster workers' TCP frame counters, with the
// aggregate drop count partitioned by cause (see transport.TCP for the
// cause taxonomy). DroppedCtl must stay zero in a healthy run: control
// frames block under flow control instead of shedding, and only a stall
// outliving the control timeout — a dead or wedged peer — drops one.
type TransportReport struct {
	Delivered    uint64 `json:"delivered"`
	Dropped      uint64 `json:"dropped"`
	DroppedDown  uint64 `json:"dropped_down,omitempty"`
	DroppedQueue uint64 `json:"dropped_queue,omitempty"`
	DroppedDead  uint64 `json:"dropped_dead,omitempty"`
	DroppedWrite uint64 `json:"dropped_write,omitempty"`
	DroppedLink  uint64 `json:"dropped_link,omitempty"`
	DroppedCtl   uint64 `json:"dropped_ctl,omitempty"`
	CtlStalls    uint64 `json:"ctl_stalls,omitempty"`
}

// AvailabilityReport checks deliveries against the availability bound D:
// the worst source→client path sum of SUnion delays plus slack.
type AvailabilityReport struct {
	BoundS float64 `json:"bound_s"`
	// Violations counts new-information deliveries whose processing
	// latency exceeded the bound; MaxExcessS is the worst overshoot.
	Violations    uint64  `json:"violations"`
	ViolationRate float64 `json:"violation_rate"`
	MaxExcessS    float64 `json:"max_excess_s"`
}

// ClientReport summarizes what the client observed (§2.3 metrics).
type ClientReport struct {
	NewTuples          uint64  `json:"new_tuples"`
	ThroughputTPS      float64 `json:"throughput_tps"`
	MaxLatencyS        float64 `json:"max_latency_s"`
	MeanLatencyS       float64 `json:"mean_latency_s"`
	Tentative          uint64  `json:"tentative"`
	MaxTentativeStreak uint64  `json:"max_tentative_streak"`
	Undos              uint64  `json:"undos"`
	RecDones           uint64  `json:"rec_dones"`
	StableDuplicates   uint64  `json:"stable_duplicates"`
}

// StabilizationReport measures how long corrections lagged the last heal:
// the time between the final fault healing and the final REC_DONE reaching
// the client. Zero latency means stabilization finished instantly or no
// fault was injected.
type StabilizationReport struct {
	LastFaultHealS float64 `json:"last_fault_heal_s"`
	LastRecDoneS   float64 `json:"last_rec_done_s"`
	LatencyS       float64 `json:"latency_s"`
}

// SourceReport summarizes one source endpoint.
type SourceReport struct {
	Name       string  `json:"name"`
	Produced   uint64  `json:"produced"`
	DroppedLog uint64  `json:"dropped_log,omitempty"`
	FinalRate  float64 `json:"final_rate"`
}

// NodeReport summarizes one replica endpoint at the end of the run.
type NodeReport struct {
	Node            string `json:"node"`
	Replica         string `json:"replica"`
	State           string `json:"state"`
	Down            bool   `json:"down"`
	Reconciliations uint64 `json:"reconciliations"`
	Switches        uint64 `json:"switches"`
	// MaxQueueDepth is the high-water mark of the replica's service
	// queue (batches): sustained depth means the workload exceeds the
	// node's capacity, and reconciliation replays spike it.
	MaxQueueDepth int `json:"max_queue_depth"`
	// ReconcileDurationsS lists each completed reconciliation's duration
	// in seconds, grant → REC_DONE, in completion order — the per-event
	// series behind the aggregate stabilization latency.
	ReconcileDurationsS []float64 `json:"reconcile_durations_s,omitempty"`
	// QueueDepthSeries samples the replica's service-queue depth on a
	// fixed virtual-time cadence (one sample per simulated second): the
	// depth-over-time view that exposes transient overload the
	// MaxQueueDepth high-water mark hides.
	QueueDepthSeries []QueueDepthSample `json:"queue_depth_series,omitempty"`
	// HoldsTentative reports whether any SUnion of the replica still
	// buffered tentative tuples when the run ended. Such a bucket can only
	// be removed by a checkpoint rollback, so if the fault schedule went
	// quiet long before the end of the run this is a wedge: the bucket —
	// and everything downstream of it — will starve forever. The fuzzer's
	// structural oracle keys off this field.
	HoldsTentative bool `json:"holds_tentative,omitempty"`
	// GrantWaitsS lists each reconciliation-authorization wait in seconds
	// — want → grant, in grant order — plus a wait still open when the run
	// ended (a replica starving for a grant reports the starvation instead
	// of hiding it). Progress-probed grants bound every entry by the grant
	// stall window plus the peer's own stabilization time, not the 120s
	// GrantTimeout; the fuzzer's grant-starvation oracle asserts the bound.
	GrantWaitsS []float64 `json:"grant_wait_s,omitempty"`
	// GrantRevocations counts reconciliation promises this replica
	// revoked, by cause; absent when no revocation happened and the
	// GrantTimeout backstop never fired.
	GrantRevocations *GrantRevocationReport `json:"grant_revocations,omitempty"`
}

// GrantRevocationReport partitions a replica's grant revocations by cause
// (see CM.probeGrantedPeer): the granted peer went silent (crashed), froze
// its stabilization-progress token while alive (partitioned data path or
// wedged replay), kept reporting STABLE (its ReconcileDone was lost), or —
// the backstop that progress probing should keep at zero — the full
// GrantTimeout fired.
type GrantRevocationReport struct {
	Silent  uint64 `json:"silent,omitempty"`
	Stalled uint64 `json:"stalled,omitempty"`
	Done    uint64 `json:"done,omitempty"`
	Timeout uint64 `json:"timeout,omitempty"`
}

// QueueDepthSample is one point of a replica's queue-depth time series.
type QueueDepthSample struct {
	TS    float64 `json:"t_s"`
	Depth int     `json:"depth"`
}

// ConsistencyReport is the Definition 1 audit against a fault-free
// reference run of the same spec and seed.
type ConsistencyReport struct {
	OK       bool   `json:"ok"`
	Compared int    `json:"compared"`
	Reason   string `json:"reason,omitempty"`
	// GotStable / RefStable count the stable (INSERTION) tuples of the
	// audited run and of the fault-free reference. The audit itself is a
	// prefix comparison, so a starved stream — stable output stalling long
	// before the reference's — still passes it; the fuzzer's starvation
	// oracle compares these counts instead.
	GotStable int `json:"got_stable,omitempty"`
	RefStable int `json:"ref_stable,omitempty"`
}

// secs renders a µs duration in seconds, rounded to the µs so the JSON
// stays compact and stable.
func secs(us int64) float64 { return float64(us) / float64(vtime.Second) }

// round3 keeps derived rates readable without losing determinism.
func round3(v float64) float64 { return math.Round(v*1e3) / 1e3 }

// hookClient registers the per-delivery collector: availability-bound
// violations over new-information tuples and the REC_DONE high-water mark.
func (rt *run) hookClient() {
	rt.dep.Client.OnDeliver(func(d client.Delivery) {
		t := d.Tuple
		switch {
		case t.IsData():
			if t.STime > rt.maxSTime {
				rt.maxSTime = t.STime
				if lat := d.At - t.STime; lat > rt.boundUS {
					rt.violations++
					if lat-rt.boundUS > rt.maxExcessUS {
						rt.maxExcessUS = lat - rt.boundUS
					}
				}
			}
		case t.Type == tuple.RecDone:
			rt.lastRecDoneUS = d.At
		}
	})
}

// report assembles the Report after the simulation has run.
func (rt *run) report() *Report {
	st := rt.dep.Client.Stats()
	durS := secs(rt.durationUS)
	rep := &Report{
		Scenario:    rt.spec.Name,
		Description: rt.spec.Description,
		Seed:        rt.spec.Seed,
		Quick:       rt.quick,
		DurationS:   durS,
		Availability: AvailabilityReport{
			BoundS:     secs(rt.boundUS),
			Violations: rt.violations,
			MaxExcessS: secs(rt.maxExcessUS),
		},
		Client: ClientReport{
			NewTuples:          st.NewTuples,
			ThroughputTPS:      round3(float64(st.NewTuples) / durS),
			MaxLatencyS:        secs(st.MaxLatency),
			MeanLatencyS:       round3(st.MeanLatency / float64(vtime.Second)),
			Tentative:          st.Tentative,
			MaxTentativeStreak: st.MaxTentativeStreak,
			Undos:              st.Undos,
			RecDones:           st.RecDones,
			StableDuplicates:   st.StableDuplicates,
		},
	}
	if st.NewTuples > 0 {
		rep.Availability.ViolationRate = round3(float64(rt.violations) / float64(st.NewTuples))
	}
	if rt.lastHealUS >= 0 {
		rep.Stabilization.LastFaultHealS = secs(rt.lastHealUS)
		if rt.lastRecDoneUS > 0 {
			rep.Stabilization.LastRecDoneS = secs(rt.lastRecDoneUS)
			if lag := rt.lastRecDoneUS - rt.lastHealUS; lag > 0 {
				rep.Stabilization.LatencyS = secs(lag)
			}
		}
	}
	rep.Sources = make([]SourceReport, 0, len(rt.dep.Sources))
	for _, src := range rt.dep.Sources {
		rep.Sources = append(rep.Sources, SourceReport{
			Name:       src.ID(),
			Produced:   src.Produced,
			DroppedLog: src.DroppedLog,
			FinalRate:  round3(src.Rate()),
		})
	}
	ri := 0
	for gi, name := range rt.dep.GroupNames() {
		rep.Nodes = slices.Grow(rep.Nodes, len(rt.dep.Nodes[gi]))
		for _, n := range rt.dep.Nodes[gi] {
			nr := NodeReport{
				Node:            name,
				Replica:         n.ID(),
				State:           n.State().String(),
				Down:            n.Down(),
				Reconciliations: n.Reconciliations,
				Switches:        n.CM().Switches,
				MaxQueueDepth:   n.Engine().MaxQueueLen(),
				HoldsTentative:  n.Engine().HoldsTentative(),
			}
			if durs := n.ReconcileDurations(); len(durs) > 0 {
				nr.ReconcileDurationsS = make([]float64, len(durs))
				for di, d := range durs {
					nr.ReconcileDurationsS[di] = secs(d)
				}
			}
			fillGrantReport(&nr, n.CM(), rt.durationUS)
			if ri < len(rt.depthSeries) {
				depths := rt.depthSeries[ri]
				nr.QueueDepthSeries = make([]QueueDepthSample, len(depths))
				for k, d := range depths {
					nr.QueueDepthSeries[k] = QueueDepthSample{
						TS:    secs(int64(k+1) * queueSampleInterval),
						Depth: d,
					}
				}
			}
			ri++
			rep.Nodes = append(rep.Nodes, nr)
		}
	}
	return rep
}

// fillGrantReport copies a Consistency Manager's grant-wait samples and
// revocation counters into the replica's report row. endUS lets a wait that
// is still open when the run ends be reported as a wait of run-end minus
// want-time — grant starvation must show up in the report, not vanish
// because the grant never arrived.
func fillGrantReport(nr *NodeReport, cm *node.CM, endUS int64) {
	if waits := cm.GrantWaitsAt(endUS); len(waits) > 0 {
		nr.GrantWaitsS = make([]float64, len(waits))
		for i, w := range waits {
			nr.GrantWaitsS[i] = secs(w)
		}
	}
	if cm.GrantRevokedSilent|cm.GrantRevokedStalled|cm.GrantRevokedDone|cm.GrantTimeouts != 0 {
		nr.GrantRevocations = &GrantRevocationReport{
			Silent:  cm.GrantRevokedSilent,
			Stalled: cm.GrantRevokedStalled,
			Done:    cm.GrantRevokedDone,
			Timeout: cm.GrantTimeouts,
		}
	}
}

// JSON renders the canonical (golden-file) form: two-space indented JSON
// with a trailing newline.
func (r *Report) JSON() ([]byte, error) {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// Print renders a human-readable summary.
func (r *Report) Print(w io.Writer) {
	mode := ""
	if r.Quick {
		mode = " (quick)"
	}
	fmt.Fprintf(w, "scenario %s%s — seed %d, %.0fs simulated\n", r.Scenario, mode, r.Seed, r.DurationS)
	if r.Description != "" {
		fmt.Fprintf(w, "  %s\n", r.Description)
	}
	c := &r.Client
	fmt.Fprintf(w, "  new tuples        %8d   (%.1f tuples/s)\n", c.NewTuples, c.ThroughputTPS)
	fmt.Fprintf(w, "  latency           max %.3fs  mean %.3fs\n", c.MaxLatencyS, c.MeanLatencyS)
	fmt.Fprintf(w, "  availability      bound %.2fs, %d violations (rate %.3f, worst excess %.3fs)\n",
		r.Availability.BoundS, r.Availability.Violations, r.Availability.ViolationRate, r.Availability.MaxExcessS)
	fmt.Fprintf(w, "  tentative         %d (max streak %d), undos %d, rec_done %d, stable dups %d\n",
		c.Tentative, c.MaxTentativeStreak, c.Undos, c.RecDones, c.StableDuplicates)
	if r.Stabilization.LastFaultHealS > 0 || r.Stabilization.LastRecDoneS > 0 {
		fmt.Fprintf(w, "  stabilization     last heal %.2fs, last rec_done %.2fs, latency %.3fs\n",
			r.Stabilization.LastFaultHealS, r.Stabilization.LastRecDoneS, r.Stabilization.LatencyS)
	}
	for _, n := range r.Nodes {
		state := n.State
		if n.Down {
			state = "CRASHED"
		}
		fmt.Fprintf(w, "  node %-10s %-13s reconciliations=%d switches=%d max_queue=%d",
			n.Replica, state, n.Reconciliations, n.Switches, n.MaxQueueDepth)
		if len(n.ReconcileDurationsS) > 0 {
			fmt.Fprintf(w, " reconcile_s=%v", n.ReconcileDurationsS)
		}
		fmt.Fprintln(w)
	}
	for _, s := range r.Sources {
		fmt.Fprintf(w, "  source %-8s produced=%d final_rate=%.1f", s.Name, s.Produced, s.FinalRate)
		if s.DroppedLog > 0 {
			fmt.Fprintf(w, " dropped_log=%d", s.DroppedLog)
		}
		fmt.Fprintln(w)
	}
	if r.Consistency != nil {
		if r.Consistency.OK {
			fmt.Fprintf(w, "  consistency       ok (%d stable tuples compared)\n", r.Consistency.Compared)
		} else {
			fmt.Fprintf(w, "  consistency       FAILED: %s\n", r.Consistency.Reason)
		}
	}
}
