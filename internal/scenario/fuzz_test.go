// The native go-fuzz harness lives in an external test package so it can
// use the oracle suite of internal/fuzz (which imports this package)
// without an import cycle.
package scenario_test

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"borealis/internal/fuzz"
	"borealis/internal/scenario"
)

// FuzzScenario is the native crash-consistency fuzz harness:
//
//	go test ./internal/scenario -fuzz=FuzzScenario -fuzztime=30s
//
// The seed corpus is every curated spec plus the minimized regression
// corpus plus a few generated specs, so mutations start from realistic
// shapes. Each input that parses and validates is run on the simulator
// (quick horizon, Definition 1 audit on) and checked against the oracle
// suite — a validated spec that fails to build, panics, or violates an
// oracle is a finding. Byte-level mutation probes the Spec surface the
// seeded generator cannot reach (weird-but-valid field combinations);
// the generator probes deep timing interleavings bytes rarely hit. The
// expensive shapes the cost caps skip are exactly what `borealis-sim
// fuzz` covers with generated, budget-shaped specs.
func FuzzScenario(f *testing.F) {
	for _, glob := range []string{"../../scenarios/*.json", "../../scenarios/corpus/*.json"} {
		paths, err := filepath.Glob(glob)
		if err != nil {
			f.Fatal(err)
		}
		for _, p := range paths {
			data, err := os.ReadFile(p)
			if err != nil {
				f.Fatal(err)
			}
			f.Add(data)
		}
	}
	for seed := int64(0); seed < 4; seed++ {
		b, err := jsonSpec(fuzz.GenSpec(seed))
		if err != nil {
			f.Fatal(err)
		}
		f.Add(b)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		spec, err := scenario.Parse(data)
		if err != nil {
			t.Skip() // invalid inputs are the parser's job to reject
		}
		if expensive(spec) {
			t.Skip()
		}
		spec.VerifyConsistency = true
		rep, findings := fuzz.RunSpec(spec, scenario.Options{Quick: true})
		if rep == nil {
			// A validated spec must always compile and run.
			t.Fatalf("validated spec failed to run: %v", findings)
		}
		for _, fd := range findings {
			t.Errorf("oracle violation: %s", fd)
		}
	})
}

// expensive caps the per-input simulation cost so the fuzzer spends its
// budget on many shapes instead of a few giant ones: byte mutations can
// legally ask for huge source groups, extreme rates, or microscopic
// bucket sizes that multiply event counts by orders of magnitude.
func expensive(s *scenario.Spec) bool {
	members, rate := 0, 0.0
	for i := range s.Sources {
		members += max(s.Sources[i].Count, 1)
		rate += s.Sources[i].Rate
	}
	replicas := 0
	for i := range s.Nodes {
		r := 2
		if s.Nodes[i].Replicas != nil {
			r = *s.Nodes[i].Replicas
		} else if s.Defaults.Replicas > 0 {
			r = s.Defaults.Replicas
		}
		replicas += r
	}
	tiny := func(ms float64) bool { return ms > 0 && ms < 5 }
	// Quick mode caps the main horizon at 20s, but an explicit
	// quick_duration_s overrides that cap.
	return s.QuickDurationS > 120 || members > 24 || rate > 3000 || replicas > 24 ||
		len(s.Faults) > 12 ||
		tiny(s.Defaults.BucketMS) || tiny(s.Defaults.BoundaryMS) ||
		tiny(s.Defaults.TickMS) || tiny(s.Client.BucketMS)
}

func jsonSpec(s *scenario.Spec) ([]byte, error) {
	return json.Marshal(s)
}
