package scenario

import (
	"fmt"
	"strings"
	"testing"
)

// TestTraceDeterministic: the per-replica protocol event trace — the
// triage tool behind the fuzzer's three fixed findings — must fire for
// a faulted run, carry the protocol's landmark events in virtual-time
// order, and be byte-identical across runs.
func TestTraceDeterministic(t *testing.T) {
	spec, err := Load("../../scenarios/corpus/resubscribe-replay-dup.json")
	if err != nil {
		t.Fatal(err)
	}
	record := func() string {
		var b strings.Builder
		lastUS := int64(-1)
		opts := Options{Trace: func(atUS int64, replica, event, detail string) {
			if atUS < lastUS {
				t.Fatalf("trace went backwards: %d after %d", atUS, lastUS)
			}
			lastUS = atUS
			fmt.Fprintf(&b, "%d %s %s %s\n", atUS, replica, event, detail)
		}}
		if _, err := Run(spec, opts); err != nil {
			t.Fatal(err)
		}
		return b.String()
	}
	first := record()
	if first == "" {
		t.Fatal("faulted run produced no trace events")
	}
	for _, event := range []string{"state", "batch"} {
		if !strings.Contains(first, " "+event+" ") {
			t.Fatalf("trace is missing %q events:\n%.600s", event, first)
		}
	}
	if second := record(); second != first {
		t.Fatal("trace is not deterministic across runs")
	}
}
