package scenario

import (
	goruntime "runtime"
	"sync"
	"sync/atomic"
)

// RunMany executes N independent scenario runs across a worker pool and
// returns their reports in input order. Every run family this repository
// cares about — sweeps, grids, repeated seeds — is embarrassingly
// parallel: each virtual run is single-threaded, deterministic, and owns
// its entire object graph (clock, network, nodes, pools), so fanning runs
// across cores changes wall-clock time and nothing else. The returned
// reports are byte-identical regardless of Options.Parallelism and
// identical to running each spec serially through Run.
//
// Specs are not mutated and may repeat (the same *Spec N times is a valid
// repeated-measurement family). Each spec is validated exactly once, up
// front, so the per-run path skips re-validation. A caller-supplied
// Options.Runtime is rejected: N runs cannot share one clock, and a wall
// clock would serialize the family against real time anyway.
//
// On error the first failure by input index is returned — deterministic
// even when several workers fail concurrently.
func RunMany(specs []*Spec, opts Options) ([]*Report, error) {
	if opts.Runtime != nil {
		return nil, errf("runmany: runs execute on fresh virtual runtimes; Options.Runtime must be nil")
	}
	for i, s := range specs {
		if s == nil {
			return nil, errf("runmany: spec %d is nil", i)
		}
		if err := s.Validate(); err != nil {
			return nil, errf("runmany: spec %d (%s): %w", i, s.Name, err)
		}
	}
	reports := make([]*Report, len(specs))
	errs := make([]error, len(specs))
	workers := opts.Parallelism
	if workers <= 0 {
		workers = goruntime.GOMAXPROCS(0)
	}
	if workers > len(specs) {
		workers = len(specs)
	}
	if workers <= 1 {
		for i, s := range specs {
			reports[i], errs[i] = runValidated(s, opts)
		}
	} else {
		// Atomic work-stealing counter instead of a per-cell channel: runs
		// are coarse (milliseconds to seconds), so contention is nil, and
		// results land in their input slot — no collection ordering races.
		var next atomic.Int64
		var wg sync.WaitGroup
		wg.Add(workers)
		for w := 0; w < workers; w++ {
			go func() {
				defer wg.Done()
				for {
					i := int(next.Add(1)) - 1
					if i >= len(specs) {
						return
					}
					reports[i], errs[i] = runValidated(specs[i], opts)
				}
			}()
		}
		wg.Wait()
	}
	for i, err := range errs {
		if err != nil {
			return nil, errf("runmany: run %d (%s): %w", i, specs[i].Name, err)
		}
	}
	return reports, nil
}
