package scenario

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	rtpkg "borealis/internal/runtime"
)

func TestGridValidate(t *testing.T) {
	base := minimal()
	if _, err := Grid(base, GridSpec{
		Field1: SweepSpec{Field: "delay", From: 1, To: 2, Steps: 2},
		Field2: SweepSpec{Field: "delay", From: 1, To: 2, Steps: 2},
	}, Options{}); err == nil || !strings.Contains(err.Error(), "must differ") {
		t.Fatalf("same field on both axes accepted: %v", err)
	}
	if _, err := Grid(base, GridSpec{
		Field1: SweepSpec{Field: "delay", From: 1, To: 2, Steps: 2},
		Field2: SweepSpec{Field: "bogus", From: 1, To: 2, Steps: 2},
	}, Options{}); err == nil {
		t.Fatal("unknown field accepted")
	}
	if _, err := Grid(base, GridSpec{
		Field1: SweepSpec{Field: "delay", From: 1, To: 2, Steps: 2},
		Field2: SweepSpec{Field: "rate", From: 100, To: 200, Steps: 2},
	}, Options{Runtime: rtpkg.NewVirtual()}); err == nil {
		t.Fatal("caller-supplied runtime silently accepted")
	}
}

// TestGridRowMajor: cell (i, j) lands at i·Steps₂+j with both values
// applied — the bound follows the row's delay, the fault durations the
// column's value.
func TestGridRowMajor(t *testing.T) {
	spec, err := Load("../../scenarios/chain-disconnect.json")
	if err != nil {
		t.Fatal(err)
	}
	spec.VerifyConsistency = false
	g := GridSpec{
		Field1: SweepSpec{Field: "delay", From: 1, To: 2, Steps: 2},
		Field2: SweepSpec{Field: "fault_duration", From: 2, To: 4, Steps: 3},
	}
	cells, err := Grid(spec, g, Options{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 6 {
		t.Fatalf("%d cells, want 6", len(cells))
	}
	v1 := g.Field1.Values()
	v2 := g.Field2.Values()
	for i := 0; i < 2; i++ {
		for j := 0; j < 3; j++ {
			c := cells[i*3+j]
			if c.Value1 != v1[i] || c.Value2 != v2[j] {
				t.Fatalf("cell (%d,%d) carries values (%v,%v), want (%v,%v)",
					i, j, c.Value1, c.Value2, v1[i], v2[j])
			}
			if c.Report.Client.NewTuples == 0 {
				t.Fatalf("cell (%d,%d) delivered nothing", i, j)
			}
		}
	}
	// Rows with larger D get a larger availability bound; columns leave it
	// unchanged (fault duration does not enter the bound).
	if cells[0].Report.Availability.BoundS >= cells[3].Report.Availability.BoundS {
		t.Fatalf("bound did not grow across rows: %v then %v",
			cells[0].Report.Availability.BoundS, cells[3].Report.Availability.BoundS)
	}
	if cells[0].Report.Availability.BoundS != cells[2].Report.Availability.BoundS {
		t.Fatal("bound varied across columns of one row")
	}
}

// TestParallelDeterminism is the tentpole's core guarantee: the same
// sweep and the same grid produce byte-identical JSON for Parallelism 1,
// 2 and 8, on both data planes — and the two planes' renders equal each
// other, so cross-parallelism determinism and cross-plane equivalence are
// pinned by one test. The Parallelism-1 result equals the pre-pool serial
// path by construction (one worker runs the same runValidated loop in
// order).
func TestParallelDeterminism(t *testing.T) {
	spec, err := Load("../../scenarios/chain-disconnect.json")
	if err != nil {
		t.Fatal(err)
	}
	spec.VerifyConsistency = false

	var sweepRenders, gridRenders [][]byte
	for _, perTuple := range []bool{false, true} {
		for _, par := range []int{1, 2, 8} {
			opts := Options{Quick: true, Parallelism: par, PerTuple: perTuple}
			rows, err := Sweep(spec, SweepSpec{Field: "delay", From: 1, To: 3, Steps: 3}, opts)
			if err != nil {
				t.Fatal(err)
			}
			b, err := json.Marshal(rows)
			if err != nil {
				t.Fatal(err)
			}
			sweepRenders = append(sweepRenders, b)

			cells, err := Grid(spec, GridSpec{
				Field1: SweepSpec{Field: "delay", From: 1, To: 2, Steps: 2},
				Field2: SweepSpec{Field: "fault_duration", From: 2, To: 4, Steps: 2},
			}, opts)
			if err != nil {
				t.Fatal(err)
			}
			b, err = json.Marshal(cells)
			if err != nil {
				t.Fatal(err)
			}
			gridRenders = append(gridRenders, b)
		}
	}
	for i := 1; i < len(sweepRenders); i++ {
		if !bytes.Equal(sweepRenders[0], sweepRenders[i]) {
			t.Fatalf("sweep output differs between run %d and run 0 (plane × parallelism matrix)", i)
		}
		if !bytes.Equal(gridRenders[0], gridRenders[i]) {
			t.Fatalf("grid output differs between run %d and run 0 (plane × parallelism matrix)", i)
		}
	}
}

// TestRepeatStatsAcrossPlanes: a -repeat seed family produces identical
// per-metric statistics on the batch and per-tuple planes — the repeat
// machinery composes with the data-plane knob without perturbing seeds.
func TestRepeatStatsAcrossPlanes(t *testing.T) {
	spec, err := Load("../../scenarios/chain-disconnect.json")
	if err != nil {
		t.Fatal(err)
	}
	spec.VerifyConsistency = false
	var renders [][]byte
	for _, perTuple := range []bool{false, true} {
		reports, err := RunMany(SeedFamily(spec, 3), Options{Quick: true, PerTuple: perTuple})
		if err != nil {
			t.Fatal(err)
		}
		stats, err := RepeatStats(reports)
		if err != nil {
			t.Fatal(err)
		}
		b, err := json.Marshal(stats)
		if err != nil {
			t.Fatal(err)
		}
		renders = append(renders, b)
	}
	if !bytes.Equal(renders[0], renders[1]) {
		t.Fatalf("repeat stats differ across data planes:\nbatch: %s\ntuple: %s", renders[0], renders[1])
	}
}

// TestRunManyOrderAndErrors: reports come back in input order (a repeated
// spec is a valid family), a nil spec and an invalid spec fail with the
// offending index, and the first error by index wins.
func TestRunManyOrderAndErrors(t *testing.T) {
	a := minimal()
	a.DurationS = 2
	b := minimal()
	b.Name = "t2"
	b.DurationS = 3
	reports, err := RunMany([]*Spec{a, b, a}, Options{Parallelism: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 3 {
		t.Fatalf("%d reports, want 3", len(reports))
	}
	if reports[0].Scenario != "t" || reports[1].Scenario != "t2" || reports[2].Scenario != "t" {
		t.Fatalf("report order broken: %s %s %s", reports[0].Scenario, reports[1].Scenario, reports[2].Scenario)
	}
	if reports[0].DurationS != 2 || reports[1].DurationS != 3 {
		t.Fatalf("durations misrouted: %v %v", reports[0].DurationS, reports[1].DurationS)
	}

	if _, err := RunMany([]*Spec{a, nil}, Options{}); err == nil || !strings.Contains(err.Error(), "spec 1") {
		t.Fatalf("nil spec not rejected with its index: %v", err)
	}
	bad := minimal()
	bad.DurationS = -1
	if _, err := RunMany([]*Spec{a, bad}, Options{}); err == nil || !strings.Contains(err.Error(), "spec 1") {
		t.Fatalf("invalid spec not rejected with its index: %v", err)
	}
	if _, err := RunMany([]*Spec{a}, Options{Runtime: rtpkg.NewVirtual()}); err == nil {
		t.Fatal("caller-supplied runtime silently accepted")
	}
}

func TestMetric(t *testing.T) {
	r := &Report{}
	r.Client.NewTuples = 42
	r.Client.ThroughputTPS = 8.5
	r.Availability.Violations = 3
	r.Stabilization.LatencyS = 1.25
	for _, tc := range []struct {
		name string
		want float64
	}{
		{"new_tuples", 42}, {"throughput_tps", 8.5}, {"violations", 3}, {"stabilization_s", 1.25},
	} {
		got, err := Metric(r, tc.name)
		if err != nil || got != tc.want {
			t.Fatalf("Metric(%q) = %v, %v; want %v", tc.name, got, err, tc.want)
		}
	}
	// Every advertised name must resolve.
	for _, name := range MetricNames {
		if _, err := Metric(r, name); err != nil {
			t.Fatalf("advertised metric %q does not resolve: %v", name, err)
		}
	}
	if _, err := Metric(r, "procnew"); err == nil {
		t.Fatal("unknown metric accepted")
	}
}

// TestPrintGrid pins the matrix rendering: a header row of Field2 values
// and one row per Field1 value.
func TestPrintGrid(t *testing.T) {
	spec, err := Load("../../scenarios/chain-disconnect.json")
	if err != nil {
		t.Fatal(err)
	}
	spec.VerifyConsistency = false
	g := GridSpec{
		Field1: SweepSpec{Field: "delay", From: 1, To: 2, Steps: 2},
		Field2: SweepSpec{Field: "fault_duration", From: 2, To: 4, Steps: 2},
	}
	cells, err := Grid(spec, g, Options{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := PrintGrid(&buf, g, cells, "new_tuples"); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, `delay\fault_duration`) {
		t.Fatalf("missing axis header:\n%s", out)
	}
	// Title + header + 2 data rows.
	if strings.Count(out, "\n") != 4 {
		t.Fatalf("unexpected shape:\n%s", out)
	}
	if err := PrintGrid(&buf, g, cells, "bogus"); err == nil {
		t.Fatal("unknown metric accepted by PrintGrid")
	}
	if err := PrintGrid(&buf, g, cells[:3], "new_tuples"); err == nil {
		t.Fatal("ragged cell table accepted")
	}
}
