package scenario

import (
	"bytes"
	"encoding/json"
	"testing"
)

// TestSeedFamilyDerivation: member 0 keeps the base seed, later members
// get distinct derived seeds, and nothing else changes.
func TestSeedFamilyDerivation(t *testing.T) {
	base := minimal()
	base.Seed = 99
	fam := SeedFamily(base, 4)
	if len(fam) != 4 {
		t.Fatalf("family size %d, want 4", len(fam))
	}
	if fam[0] == base {
		t.Fatal("member 0 must be a clone, not the base spec itself")
	}
	if fam[0].Seed != base.Seed {
		t.Fatalf("member 0 seed %d, want the base seed %d", fam[0].Seed, base.Seed)
	}
	seen := map[int64]bool{}
	for i, s := range fam {
		if seen[s.Seed] {
			t.Fatalf("duplicate seed %d at member %d", s.Seed, i)
		}
		seen[s.Seed] = true
		if s.Name != base.Name || s.DurationS != base.DurationS {
			t.Fatalf("member %d drifted from the base spec", i)
		}
	}
	// Derivation is deterministic.
	again := SeedFamily(base, 4)
	for i := range fam {
		if fam[i].Seed != again[i].Seed {
			t.Fatal("seed derivation is not deterministic")
		}
	}
}

// TestSeedFamilyIndependentOfClone: mutating one member never touches
// another (the family is built on Clone).
func TestSeedFamilyIndependentOfClone(t *testing.T) {
	base := minimal()
	fam := SeedFamily(base, 3)
	fam[1].Sources[0].Rate = 9999
	if base.Sources[0].Rate == 9999 || fam[2].Sources[0].Rate == 9999 {
		t.Fatal("family members alias each other")
	}
}

// TestSweepRepeatShapeAndStats: a repeated sweep yields Steps rows of
// `repeat` reports each; stats bracket the member values; jitter makes
// members differ while member 0 matches the plain sweep.
func TestSweepRepeatShapeAndStats(t *testing.T) {
	spec := exercisePRNG()
	spec.VerifyConsistency = false
	sw := SweepSpec{Field: "delay", From: 1, To: 2, Steps: 2}
	rows, err := SweepRepeat(spec, sw, 3, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(rows))
	}
	for _, row := range rows {
		if len(row.Reports) != 3 {
			t.Fatalf("family size %d, want 3", len(row.Reports))
		}
		st, err := statsFor(row.Stats, "new_tuples")
		if err != nil {
			t.Fatal(err)
		}
		if st.Min > st.Mean || st.Mean > st.Max {
			t.Fatalf("stats out of order: %+v", st)
		}
		for _, r := range row.Reports {
			v, err := Metric(r, "new_tuples")
			if err != nil {
				t.Fatal(err)
			}
			if v < st.Min || v > st.Max {
				t.Fatalf("member value %g outside [%g, %g]", v, st.Min, st.Max)
			}
		}
	}
	// Member 0 of each family is the plain sweep row (same seed).
	plain, err := Sweep(spec.Clone(), sw, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := range rows {
		b0, _ := rows[i].Reports[0].JSON()
		b1, _ := plain[i].Report.JSON()
		if !bytes.Equal(b0, b1) {
			t.Fatalf("row %d member 0 differs from the plain sweep", i)
		}
	}
}

// TestSweepRepeatDeterministicAcrossParallelism: worker count must not
// change a repeated sweep's result.
func TestSweepRepeatDeterministicAcrossParallelism(t *testing.T) {
	spec := exercisePRNG()
	spec.VerifyConsistency = false
	sw := SweepSpec{Field: "rate", From: 200, To: 400, Steps: 2}
	render := func(par int) []byte {
		rows, err := SweepRepeat(spec.Clone(), sw, 2, Options{Parallelism: par})
		if err != nil {
			t.Fatal(err)
		}
		b, err := json.Marshal(rows)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	if !bytes.Equal(render(1), render(4)) {
		t.Fatal("parallelism changed the repeated sweep result")
	}
}
