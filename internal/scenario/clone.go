package scenario

// Clone returns a deep copy of the spec: mutating the copy's sources,
// nodes, faults, operators or any per-node override pointer never touches
// the original. It replaces the JSON marshal/unmarshal round trip the
// sweep engine used for per-step copies — a handwritten copy is ~50×
// cheaper and allocation-proportional to the spec, which matters when a
// grid materializes hundreds of cells before fanning them out to workers.
//
// New Spec fields containing pointers, slices or maps MUST be copied here
// and exercised in TestCloneAliasing — an aliased slice renders identical
// JSON, so only an explicit mutate-the-clone test catches a missed field.
func (s *Spec) Clone() *Spec {
	if s == nil {
		return nil
	}
	c := *s // all scalar fields, Defaults, Client (value types)
	if s.Sources != nil {
		c.Sources = make([]SourceSpec, len(s.Sources))
		copy(c.Sources, s.Sources) // SourceSpec holds no pointers/slices
	}
	if s.Nodes != nil {
		c.Nodes = make([]NodeSpec, len(s.Nodes))
		for i := range s.Nodes {
			c.Nodes[i] = s.Nodes[i].clone()
		}
	}
	if s.Faults != nil {
		c.Faults = make([]FaultSpec, len(s.Faults))
		copy(c.Faults, s.Faults) // FaultSpec holds no pointers/slices
	}
	return &c
}

// clone deep-copies one node spec: its input list, operator list and the
// optional override pointers.
func (n *NodeSpec) clone() NodeSpec {
	c := *n
	if n.Inputs != nil {
		c.Inputs = append([]string(nil), n.Inputs...)
	}
	c.Replicas = clonePtr(n.Replicas)
	c.DelayS = clonePtr(n.DelayS)
	c.Capacity = clonePtr(n.Capacity)
	if n.Operators != nil {
		c.Operators = make([]OperatorSpec, len(n.Operators))
		for i := range n.Operators {
			c.Operators[i] = n.Operators[i]
			c.Operators[i].GroupField = clonePtr(n.Operators[i].GroupField)
		}
	}
	return c
}

func clonePtr[T any](p *T) *T {
	if p == nil {
		return nil
	}
	v := *p
	return &v
}
