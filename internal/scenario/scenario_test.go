package scenario

import (
	"bytes"
	"strings"
	"testing"
)

// minimal returns a small valid spec tests mutate.
func minimal() *Spec {
	return &Spec{
		Name:      "t",
		Seed:      1,
		DurationS: 10,
		Sources:   []SourceSpec{{Name: "s", Rate: 100}},
		Nodes:     []NodeSpec{{Name: "n1", Inputs: []string{"s"}}},
	}
}

func TestValidateOK(t *testing.T) {
	if err := minimal().Validate(); err != nil {
		t.Fatal(err)
	}
}

// Validate's error branches are covered exhaustively by the table in
// validate_test.go.

func TestParseRejectsUnknownFields(t *testing.T) {
	_, err := Parse([]byte(`{"name":"x","duration_s":1,"sources":[],"nodes":[],"frobnicate":true}`))
	if err == nil || !strings.Contains(err.Error(), "frobnicate") {
		t.Fatalf("want unknown-field error, got %v", err)
	}
}

func TestParseRejectsTrailingContent(t *testing.T) {
	_, err := Parse([]byte(`{"name":"x","duration_s":1,"sources":[{"name":"s","rate":1}],"nodes":[{"name":"n","inputs":["s"]}]}{"oops":1}`))
	if err == nil || !strings.Contains(err.Error(), "trailing content") {
		t.Fatalf("want trailing-content error, got %v", err)
	}
}

// exercisePRNG is a spec touching every randomized / shaped code path:
// zipf skew, jittered bursts, a ramp, and each fault kind.
func exercisePRNG() *Spec {
	return &Spec{
		Name:              "determinism",
		Seed:              99,
		DurationS:         12,
		VerifyConsistency: true,
		Defaults:          Defaults{Replicas: 2},
		Sources: []SourceSpec{
			{Name: "a", Count: 3, Rate: 240, Distribution: "zipf", Skew: 1.1,
				Workload: WorkloadSpec{Kind: "bursty", PeriodS: 3, JitterPhase: true}},
			{Name: "b", Rate: 120, Workload: WorkloadSpec{Kind: "ramp", ToRate: 240}},
		},
		Nodes: []NodeSpec{
			{Name: "n1", Inputs: []string{"a"}},
			{Name: "n2", Inputs: []string{"b"}},
			{Name: "n3", Inputs: []string{"n1", "n2"}},
		},
		Faults: []FaultSpec{
			{Kind: "crash", Node: "n1", Replica: 0, AtS: 3, DurationS: 3},
			{Kind: "partition", From: "n3", To: "n2", AtS: 4, DurationS: 2},
			{Kind: "disconnect", Source: "a2", AtS: 5, DurationS: 2},
		},
	}
}

// TestDeterminism: same spec + same seed ⇒ bit-identical report.
func TestDeterminism(t *testing.T) {
	var renders [][]byte
	for i := 0; i < 2; i++ {
		rep, err := Run(exercisePRNG(), Options{})
		if err != nil {
			t.Fatal(err)
		}
		b, err := rep.JSON()
		if err != nil {
			t.Fatal(err)
		}
		renders = append(renders, b)
	}
	if !bytes.Equal(renders[0], renders[1]) {
		t.Fatalf("same spec + seed produced different reports:\n--- run 1 ---\n%s\n--- run 2 ---\n%s",
			renders[0], renders[1])
	}
}

// TestSeedChangesJitter: a different seed shifts the jittered burst
// phases. Totals are phase-invariant by design (the cyclic schedule
// preserves the mean), so compare the whole reports — burst timing against
// the fixed fault schedule changes latency and tentative patterns.
func TestSeedChangesJitter(t *testing.T) {
	r1, err := Run(exercisePRNG(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	s2 := exercisePRNG()
	s2.Seed = 100
	r2, err := Run(s2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	r2.Seed = r1.Seed // ignore the echoed seed itself
	b1, err := r1.JSON()
	if err != nil {
		t.Fatal(err)
	}
	b2, err := r2.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(b1, b2) {
		t.Fatal("changing the seed changed nothing; jitter is not seeded")
	}
}

// TestQuickHorizonGatesFaults: a fault past the quick horizon neither
// fires nor counts as a heal.
func TestQuickHorizonGatesFaults(t *testing.T) {
	s := minimal()
	s.DurationS = 40
	s.QuickDurationS = 8
	s.Faults = []FaultSpec{{Kind: "crash", Node: "n1", Replica: 0, AtS: 20, DurationS: 5}}
	rep, err := Run(s, Options{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	if rep.DurationS != 8 {
		t.Fatalf("quick duration = %v, want 8", rep.DurationS)
	}
	if rep.Stabilization.LastFaultHealS != 0 {
		t.Fatalf("heal past the horizon leaked into the report: %+v", rep.Stabilization)
	}
	for _, n := range rep.Nodes {
		if n.Down {
			t.Fatalf("fault past the horizon fired: %+v", n)
		}
	}
}

// TestZipfSkew: zipf-distributed members produce monotonically decreasing
// rates that sum to the aggregate.
func TestZipfSkew(t *testing.T) {
	ss := &SourceSpec{Name: "z", Count: 4, Rate: 400, Distribution: "zipf", Skew: 1.2}
	rates := memberRates(ss)
	var sum float64
	for i, r := range rates {
		sum += r
		if i > 0 && rates[i] >= rates[i-1] {
			t.Fatalf("zipf rates not decreasing: %v", rates)
		}
	}
	if sum < 399.9 || sum > 400.1 {
		t.Fatalf("zipf rates sum to %v, want 400", sum)
	}
}

// TestScenarioConsistencyAudit: the flagship diamond scenario stays
// eventually consistent under overlapping partitions.
func TestScenarioConsistencyAudit(t *testing.T) {
	spec, err := Load("../../scenarios/diamond-overlapping-partitions.json")
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Run(spec, Options{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Consistency == nil || !rep.Consistency.OK {
		t.Fatalf("consistency audit failed: %+v", rep.Consistency)
	}
	if rep.Client.Tentative == 0 {
		t.Fatal("overlapping partitions produced no tentative data; scenario is too tame")
	}
	if rep.Client.RecDones == 0 {
		t.Fatal("no REC_DONE reached the client")
	}
}
