package scenario

import (
	"strings"
	"testing"
)

// TestValidateErrors drives every error branch of Spec.Validate from a
// minimal valid spec plus one mutation per case. The fuzzer generator
// (internal/fuzz) treats Validate as the exact contract for "this spec
// compiles and runs", so every rejection — and only these rejections —
// must hold: a validated spec that panics at build time is a bug in this
// table as much as in the builder.
func TestValidateErrors(t *testing.T) {
	cases := []struct {
		name    string
		mutate  func(*Spec)
		wantErr string
	}{
		// Top-level fields.
		{"missing name", func(s *Spec) { s.Name = "" }, "missing name"},
		{"zero duration", func(s *Spec) { s.DurationS = 0 }, "duration_s"},
		{"negative duration", func(s *Spec) { s.DurationS = -3 }, "duration_s"},
		{"negative quick duration", func(s *Spec) { s.QuickDurationS = -1 }, "quick_duration_s"},
		{"negative availability slack", func(s *Spec) { s.AvailabilitySlackS = -1 }, "availability_slack_s"},
		{"no sources", func(s *Spec) { s.Sources = nil }, "no sources"},
		{"no nodes", func(s *Spec) { s.Nodes = nil }, "no nodes"},

		// Defaults.
		{"defaults failure policy", func(s *Spec) { s.Defaults.FailurePolicy = "retry" }, "unknown policy"},
		{"defaults stabilization", func(s *Spec) { s.Defaults.Stabilization = "panic" }, "unknown policy"},
		{"defaults negative bucket", func(s *Spec) { s.Defaults.BucketMS = -1 }, "defaults.bucket_ms"},
		{"defaults sub-µs bucket", func(s *Spec) { s.Defaults.BucketMS = 0.0005 }, "defaults.bucket_ms"},
		{"defaults negative boundary", func(s *Spec) { s.Defaults.BoundaryMS = -1 }, "defaults.boundary_ms"},
		{"defaults negative tick", func(s *Spec) { s.Defaults.TickMS = -1 }, "defaults.tick_ms"},
		{"defaults negative stall timeout", func(s *Spec) { s.Defaults.StallTimeoutMS = -1 }, "defaults.stall_timeout_ms"},
		{"defaults negative keep-alive", func(s *Spec) { s.Defaults.KeepAliveMS = -1 }, "defaults.keep_alive_ms"},
		{"defaults negative ack interval", func(s *Spec) { s.Defaults.AckIntervalMS = -1 }, "defaults.ack_interval_ms"},
		{"defaults negative delay", func(s *Spec) { s.Defaults.DelayS = -2 }, "defaults.delay_s"},
		{"defaults negative capacity", func(s *Spec) { s.Defaults.Capacity = -1 }, "defaults.capacity"},
		{"defaults negative replicas", func(s *Spec) { s.Defaults.Replicas = -1 }, "defaults.replicas"},

		// Client.
		{"client negative bucket", func(s *Spec) { s.Client.BucketMS = -1 }, "client.bucket_ms"},
		{"client sub-µs delay", func(s *Spec) { s.Client.DelayMS = 0.0001 }, "client.delay_ms"},
		{"client negative tentative wait", func(s *Spec) { s.Client.TentativeWaitMS = -1 }, "client.tentative_wait_ms"},
		{"bad client input", func(s *Spec) { s.Client.Input = "ghost" }, "client input"},
		{"client input is a source", func(s *Spec) { s.Client.Input = "s" }, "client input"},

		// Sources.
		{"source missing name", func(s *Spec) { s.Sources[0].Name = "" }, "missing name"},
		{"duplicate source name", func(s *Spec) {
			s.Sources = append(s.Sources, SourceSpec{Name: "s", Rate: 1})
		}, "duplicate source name"},
		{"negative rate", func(s *Spec) { s.Sources[0].Rate = -5 }, "rate must be positive"},
		{"zero rate", func(s *Spec) { s.Sources[0].Rate = 0 }, "rate must be positive"},
		{"negative count", func(s *Spec) { s.Sources[0].Count = -2 }, "count must not be negative"},
		{"bad distribution", func(s *Spec) { s.Sources[0].Distribution = "pareto" }, "unknown distribution"},
		{"negative skew", func(s *Spec) { s.Sources[0].Skew = -0.5 }, "skew"},
		{"bad workload", func(s *Spec) { s.Sources[0].Workload.Kind = "sine" }, "unknown workload kind"},
		{"bursty negative factor", func(s *Spec) {
			s.Sources[0].Workload = WorkloadSpec{Kind: "bursty", Factor: -1}
		}, "bursty"},
		{"bursty duty out of range", func(s *Spec) {
			s.Sources[0].Workload = WorkloadSpec{Kind: "bursty", Duty: 1}
		}, "bursty"},
		{"bursty mean impossible", func(s *Spec) {
			s.Sources[0].Workload = WorkloadSpec{Kind: "bursty", Factor: 8, Duty: 0.25}
		}, "cannot preserve the mean"},
		{"ramp negative target", func(s *Spec) {
			s.Sources[0].Workload = WorkloadSpec{Kind: "ramp", ToRate: -10}
		}, "to_rate"},
		{"source negative boundary", func(s *Spec) { s.Sources[0].BoundaryMS = -1 }, "boundary_ms"},
		{"source negative log cap", func(s *Spec) { s.Sources[0].LogCap = -1 }, "log_cap"},
		{"expanded stream collision", func(s *Spec) {
			s.Sources[0].Count = 2 // expands to s1, s2
			s.Sources = append(s.Sources, SourceSpec{Name: "s1", Rate: 1})
			s.Nodes[0].Inputs = []string{"s"}
		}, "defined twice"},

		// Nodes.
		{"node missing name", func(s *Spec) { s.Nodes[0].Name = "" }, "missing name"},
		{"duplicate node", func(s *Spec) {
			s.Nodes = append(s.Nodes, NodeSpec{Name: "n1", Inputs: []string{"s"}})
		}, "duplicate node name"},
		{"node/source collision", func(s *Spec) { s.Nodes[0].Name = "s" }, "collides with a source"},
		{"node/member collision", func(s *Spec) {
			s.Sources[0].Count = 2
			s.Nodes[0].Name = "s2"
		}, "collides with a source"},
		{"no inputs", func(s *Spec) { s.Nodes[0].Inputs = nil }, "no inputs"},
		{"unknown input", func(s *Spec) { s.Nodes[0].Inputs = []string{"nope"} }, `unknown input "nope"`},
		{"replicas too low", func(s *Spec) { r := 0; s.Nodes[0].Replicas = &r }, "replicas must be in 1..26"},
		{"replicas too high", func(s *Spec) { r := 40; s.Nodes[0].Replicas = &r }, "replicas must be in 1..26"},
		{"negative delay", func(s *Spec) { d := -1.0; s.Nodes[0].DelayS = &d }, "delay_s"},
		{"negative capacity", func(s *Spec) { c := -1.0; s.Nodes[0].Capacity = &c }, "capacity"},
		{"bad failure policy", func(s *Spec) { s.Nodes[0].FailurePolicy = "retry" }, "unknown policy"},
		{"bad stabilization", func(s *Spec) { s.Nodes[0].Stabilization = "hope" }, "unknown policy"},
		{"bad buffer mode", func(s *Spec) { s.Nodes[0].BufferMode = "ring" }, "unknown buffer_mode"},
		{"negative buffer cap", func(s *Spec) { s.Nodes[0].BufferCap = -1 }, "buffer_cap"},
		{"node negative tentative wait", func(s *Spec) { s.Nodes[0].TentativeWaitMS = -1 }, "tentative_wait_ms"},

		// Operators.
		{"aggregate missing window", func(s *Spec) {
			s.Nodes[0].Operators = []OperatorSpec{{Kind: "aggregate"}}
		}, "window_ms"},
		{"aggregate sub-µs window", func(s *Spec) {
			s.Nodes[0].Operators = []OperatorSpec{{Kind: "aggregate", WindowMS: 0.0005}}
		}, "window_ms"},
		{"aggregate negative slide", func(s *Spec) {
			s.Nodes[0].Operators = []OperatorSpec{{Kind: "aggregate", WindowMS: 100, SlideMS: -1}}
		}, "slide_ms"},
		{"aggregate bad fn", func(s *Spec) {
			s.Nodes[0].Operators = []OperatorSpec{{Kind: "aggregate", WindowMS: 100, Fn: "median"}}
		}, "unknown fn"},
		{"join missing window", func(s *Spec) {
			s.Nodes[0].Operators = []OperatorSpec{{Kind: "join"}}
		}, "window_ms"},
		{"join negative left inputs", func(s *Spec) {
			s.Nodes[0].Operators = []OperatorSpec{{Kind: "join", WindowMS: 100, LeftInputs: -1}}
		}, "left_inputs"},
		{"unknown operator", func(s *Spec) {
			s.Nodes[0].Operators = []OperatorSpec{{Kind: "sort"}}
		}, "unknown kind"},

		// Topology.
		{"cyclic dag", func(s *Spec) {
			s.Nodes = []NodeSpec{
				{Name: "n1", Inputs: []string{"s", "n3"}},
				{Name: "n2", Inputs: []string{"n1"}},
				{Name: "n3", Inputs: []string{"n2"}},
			}
		}, "cyclic topology"},
		{"self cycle", func(s *Spec) { s.Nodes[0].Inputs = []string{"s", "n1"} }, "cyclic topology"},

		// Faults.
		{"negative fault time", func(s *Spec) {
			s.Faults = []FaultSpec{{Kind: "crash", Node: "n1", AtS: -1}}
		}, "negative time"},
		{"negative fault duration", func(s *Spec) {
			s.Faults = []FaultSpec{{Kind: "crash", Node: "n1", AtS: 1, DurationS: -2}}
		}, "negative time"},
		{"crash unknown node", func(s *Spec) {
			s.Faults = []FaultSpec{{Kind: "crash", Node: "ghost", AtS: 1}}
		}, `unknown node "ghost"`},
		{"restart unknown node", func(s *Spec) {
			s.Faults = []FaultSpec{{Kind: "restart", Node: "ghost", AtS: 1}}
		}, `unknown node "ghost"`},
		{"crash replica range", func(s *Spec) {
			s.Faults = []FaultSpec{{Kind: "crash", Node: "n1", Replica: 9, AtS: 1}}
		}, "has no replica 9"},
		{"crash negative replica", func(s *Spec) {
			s.Faults = []FaultSpec{{Kind: "crash", Node: "n1", Replica: -1, AtS: 1}}
		}, "has no replica -1"},
		{"flap needs period", func(s *Spec) {
			s.Faults = []FaultSpec{{Kind: "flap", Node: "n1", AtS: 1}}
		}, "period_s"},
		{"disconnect unknown source", func(s *Spec) {
			s.Faults = []FaultSpec{{Kind: "disconnect", Source: "ghost", AtS: 1, DurationS: 1}}
		}, `unknown source "ghost"`},
		{"disconnect needs duration", func(s *Spec) {
			s.Faults = []FaultSpec{{Kind: "disconnect", Source: "s", AtS: 1}}
		}, "duration_s must be positive"},
		{"stall unknown source", func(s *Spec) {
			s.Faults = []FaultSpec{{Kind: "stall_boundaries", Source: "ghost", AtS: 1, DurationS: 1}}
		}, `unknown source "ghost"`},
		{"stall needs duration", func(s *Spec) {
			s.Faults = []FaultSpec{{Kind: "stall_boundaries", Source: "s", AtS: 1}}
		}, "duration_s must be positive"},
		{"partition unknown from", func(s *Spec) {
			s.Faults = []FaultSpec{{Kind: "partition", From: "ghost", To: "n1", AtS: 1, DurationS: 1}}
		}, `unknown endpoint "ghost"`},
		{"partition unknown to", func(s *Spec) {
			s.Faults = []FaultSpec{{Kind: "partition", From: "n1", To: "ghost", AtS: 1, DurationS: 1}}
		}, `unknown endpoint "ghost"`},
		{"partition replica range", func(s *Spec) {
			s.Faults = []FaultSpec{{Kind: "partition", From: "n1/7", To: "s", AtS: 1, DurationS: 1}}
		}, `unknown endpoint "n1/7"`},
		{"partition bad replica syntax", func(s *Spec) {
			s.Faults = []FaultSpec{{Kind: "partition", From: "n1/x", To: "s", AtS: 1, DurationS: 1}}
		}, `unknown endpoint "n1/x"`},
		{"partition needs duration", func(s *Spec) {
			s.Faults = []FaultSpec{{Kind: "partition", From: "n1", To: "s", AtS: 1}}
		}, "duration_s must be positive"},
		{"unknown fault kind", func(s *Spec) {
			s.Faults = []FaultSpec{{Kind: "meteor", AtS: 1}}
		}, "unknown kind"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := minimal()
			tc.mutate(s)
			err := s.Validate()
			if err == nil {
				t.Fatalf("want error containing %q, got nil", tc.wantErr)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("want error containing %q, got %q", tc.wantErr, err)
			}
		})
	}
}

// TestValidateAcceptsEdgeValues pins deliberate acceptances next to the
// rejections above: zero means "use the default" for every optional
// duration, and boundary-legal values pass.
func TestValidateAcceptsEdgeValues(t *testing.T) {
	s := minimal()
	s.Defaults.BucketMS = 0.001 // exactly one microsecond
	s.Defaults.Replicas = 0     // default
	s.Client.DelayMS = 0        // default
	r := 26
	s.Nodes[0].Replicas = &r // top of the range
	d := 0.0
	s.Nodes[0].DelayS = &d // zero delay is legal (no suspension slack)
	s.Nodes[0].Operators = []OperatorSpec{{Kind: "aggregate", WindowMS: 0.001}}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
}
