package scenario

import (
	"testing"

	rtpkg "borealis/internal/runtime"
)

// TestRealtimeScenario is the acceptance proof for the Clock redesign: the
// same curated spec that backs a virtual-clock golden file runs on a
// WallClock — paced against real time at an aggressive speed so the test
// stays fast — and still passes the Definition 1 eventual-consistency
// audit against a virtual reference run. Because WallClock anchors Now to
// each event's scheduled timestamp, the serialized stream content matches
// the simulator's exactly; only the pacing differs.
func TestRealtimeScenario(t *testing.T) {
	if testing.Short() {
		t.Skip("paces against the wall clock")
	}
	spec, err := Load("../../scenarios/chain-disconnect.json")
	if err != nil {
		t.Fatal(err)
	}
	spec.VerifyConsistency = true
	rep, err := Run(spec, Options{Quick: true, Runtime: rtpkg.NewWall(2000)})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Consistency == nil {
		t.Fatal("no consistency audit in the report")
	}
	if !rep.Consistency.OK {
		t.Fatalf("realtime run failed the consistency audit: %s", rep.Consistency.Reason)
	}
	if rep.Consistency.Compared == 0 {
		t.Fatal("audit compared zero stable tuples")
	}
	if rep.Client.NewTuples == 0 {
		t.Fatal("realtime run delivered nothing")
	}
}

// TestRealtimeMatchesVirtualThroughput runs a faultless mini-topology on
// both substrates and requires identical tuple counts: the wall clock must
// not lose, duplicate or re-time work relative to the simulator.
func TestRealtimeMatchesVirtualThroughput(t *testing.T) {
	if testing.Short() {
		t.Skip("paces against the wall clock")
	}
	spec, err := Load("../../scenarios/fanin-aggregate-tree.json")
	if err != nil {
		t.Fatal(err)
	}
	spec.Faults = nil
	spec.VerifyConsistency = false
	spec.QuickDurationS = 5

	virt, err := Run(spec, Options{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	wall, err := Run(spec, Options{Quick: true, Runtime: rtpkg.NewWall(5000)})
	if err != nil {
		t.Fatal(err)
	}
	if virt.Client.NewTuples != wall.Client.NewTuples {
		t.Fatalf("new-tuple counts diverge: virtual %d, wall %d",
			virt.Client.NewTuples, wall.Client.NewTuples)
	}
	if virt.Client.Tentative != wall.Client.Tentative {
		t.Fatalf("tentative counts diverge: virtual %d, wall %d",
			virt.Client.Tentative, wall.Client.Tentative)
	}
}

// TestRuntimeReuseRejected: scenarios schedule from t=0, so a runtime
// that has already advanced must be rejected instead of silently clamping
// the fault timeline to now.
func TestRuntimeReuseRejected(t *testing.T) {
	spec, err := Load("../../scenarios/chain-disconnect.json")
	if err != nil {
		t.Fatal(err)
	}
	spec.VerifyConsistency = false
	clk := rtpkg.NewWall(1e6)
	if _, err := Run(spec, Options{Quick: true, Runtime: clk}); err != nil {
		t.Fatal(err)
	}
	if _, err := Run(spec, Options{Quick: true, Runtime: clk}); err == nil {
		t.Fatal("reused wall runtime accepted")
	}
	if _, err := Build(spec, Options{Quick: true, Runtime: clk}); err == nil {
		t.Fatal("reused wall runtime accepted by Build")
	}
	// A runtime that was only Built on (undriven, but with workload and
	// fault timers already scheduled) must be rejected too.
	clk2 := rtpkg.NewVirtual()
	if _, err := Build(spec, Options{Quick: true, Runtime: clk2}); err != nil {
		t.Fatal(err)
	}
	if _, err := Run(spec, Options{Quick: true, Runtime: clk2}); err == nil {
		t.Fatal("runtime with pending events from a prior Build accepted")
	}
}
