package scenario

import (
	"fmt"
	"io"
	"math"
)

// SeedFamily returns n clones of a spec whose seeds derive
// deterministically from (base seed, repeat index): member 0 keeps the
// base seed, members 1..n-1 draw from a per-index splitmix64 stream (the
// same PRNG the workloads use, so family members are decorrelated).
// Every member is a deep clone — later mutations of the base never leak
// into the family. Feeding the family through RunMany gives n
// independent repeated measurements of the same scenario — the
// confidence-interval companion to a sweep, since workload jitter and
// every other seeded choice vary across members while the topology and
// fault schedule stay fixed.
func SeedFamily(base *Spec, n int) []*Spec {
	if n < 1 {
		n = 1
	}
	out := make([]*Spec, n)
	out[0] = base.Clone()
	for i := 1; i < n; i++ {
		c := base.Clone()
		c.Seed = int64(newPRNG(base.Seed, int64(i)).next())
		out[i] = c
	}
	return out
}

// MetricStats summarize one metric across a repeat family.
type MetricStats struct {
	Metric string  `json:"metric"`
	Min    float64 `json:"min"`
	Mean   float64 `json:"mean"`
	Max    float64 `json:"max"`
}

// RepeatStats computes min/mean/max for every named report metric across
// a family of reports, in MetricNames order.
func RepeatStats(reports []*Report) ([]MetricStats, error) {
	if len(reports) == 0 {
		return nil, errf("repeat: no reports")
	}
	out := make([]MetricStats, 0, len(MetricNames))
	for _, name := range MetricNames {
		st := MetricStats{Metric: name, Min: math.Inf(1), Max: math.Inf(-1)}
		for _, r := range reports {
			v, err := Metric(r, name)
			if err != nil {
				return nil, err
			}
			st.Min = math.Min(st.Min, v)
			st.Max = math.Max(st.Max, v)
			st.Mean += v
		}
		st.Mean = round3(st.Mean / float64(len(reports)))
		out = append(out, st)
	}
	return out, nil
}

// statsFor extracts one metric's stats from a RepeatStats slice.
func statsFor(stats []MetricStats, metric string) (MetricStats, error) {
	for _, st := range stats {
		if st.Metric == metric {
			return st, nil
		}
	}
	return MetricStats{}, errf("unknown metric %q (want one of %v)", metric, MetricNames)
}

// RepeatRow is one sweep step run as a seed family: the swept value, the
// family's reports in seed-derivation order, and min/mean/max per metric.
type RepeatRow struct {
	Value   float64       `json:"value"`
	Reports []*Report     `json:"reports"`
	Stats   []MetricStats `json:"stats"`
}

// SweepRepeat crosses a one-dimensional sweep with an n-member seed
// family: every swept value runs n times with derived seeds, all
// Steps × n runs fanning through one RunMany pool, and each row reports
// min/mean/max per metric. Rows are byte-identical for any
// Options.Parallelism, like everything else built on RunMany.
func SweepRepeat(base *Spec, sw SweepSpec, repeat int, opts Options) ([]RepeatRow, error) {
	if err := sw.validate(); err != nil {
		return nil, err
	}
	if repeat < 1 {
		repeat = 1
	}
	if opts.Runtime != nil {
		return nil, errf("sweep: steps run on fresh virtual runtimes; Options.Runtime must be nil")
	}
	values := sw.Values()
	specs := make([]*Spec, 0, len(values)*repeat)
	for _, v := range values {
		stepped, err := sw.apply(base, v)
		if err != nil {
			return nil, err
		}
		specs = append(specs, SeedFamily(stepped, repeat)...)
	}
	reports, err := RunMany(specs, opts)
	if err != nil {
		return nil, fmt.Errorf("sweep %s ×%d: %w", sw.Field, repeat, err)
	}
	rows := make([]RepeatRow, len(values))
	for i, v := range values {
		family := reports[i*repeat : (i+1)*repeat]
		stats, err := RepeatStats(family)
		if err != nil {
			return nil, err
		}
		rows[i] = RepeatRow{Value: v, Reports: family, Stats: stats}
	}
	return rows, nil
}

// PrintSweepRepeat renders a repeated sweep as a table of min/mean/max of
// the chosen metric per swept value, plus the audit verdict across the
// family.
func PrintSweepRepeat(w io.Writer, field, metric string, rows []RepeatRow) error {
	fmt.Fprintf(w, "%-14s %7s %12s %12s %12s %12s %9s\n",
		field, "runs", metric+"_min", metric+"_mean", metric+"_max", "spread", "audit")
	for _, row := range rows {
		st, err := statsFor(row.Stats, metric)
		if err != nil {
			return err
		}
		audit := "-"
		for _, r := range row.Reports {
			if r.Consistency != nil {
				if audit == "-" {
					audit = "ok"
				}
				if !r.Consistency.OK {
					audit = "FAIL"
				}
			}
		}
		fmt.Fprintf(w, "%-14.4g %7d %12.4g %12.4g %12.4g %12.4g %9s\n",
			row.Value, len(row.Reports), st.Min, st.Mean, st.Max, st.Max-st.Min, audit)
	}
	return nil
}
