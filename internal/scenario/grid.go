package scenario

import (
	"fmt"
	"io"
)

// GridSpec crosses two one-dimensional sweeps into a Steps₁ × Steps₂ run
// family — the shape behind the paper's two-parameter figures (Fig. 19's
// delay × failure-duration surface is `delay` × `fault_duration`). Field1
// varies across rows, Field2 across columns; the two must name different
// fields (crossing a field with itself would silently overwrite Field1's
// value with Field2's in every cell).
type GridSpec struct {
	Field1 SweepSpec
	Field2 SweepSpec
}

// GridCell is one cell of a grid: the two applied values and the report.
type GridCell struct {
	Value1 float64 `json:"value1"`
	Value2 float64 `json:"value2"`
	Report *Report `json:"report"`
}

func (g *GridSpec) validate() error {
	if err := g.Field1.validate(); err != nil {
		return err
	}
	if err := g.Field2.validate(); err != nil {
		return err
	}
	if g.Field1.Field == g.Field2.Field {
		return errf("grid: both axes vary %q; the two fields must differ", g.Field1.Field)
	}
	return nil
}

// Grid runs the Steps₁ × Steps₂ cells of the crossed sweeps through the
// RunMany worker pool and returns them row-major: cell (i, j) — Field1
// value i, Field2 value j — lands at index i·Steps₂ + j. Like Sweep, the
// result is byte-identical for any Options.Parallelism.
func Grid(base *Spec, g GridSpec, opts Options) ([]GridCell, error) {
	if err := g.validate(); err != nil {
		return nil, err
	}
	if opts.Runtime != nil {
		return nil, errf("grid: cells run on fresh virtual runtimes; Options.Runtime must be nil")
	}
	v1 := g.Field1.Values()
	v2 := g.Field2.Values()
	specs := make([]*Spec, 0, len(v1)*len(v2))
	for _, a := range v1 {
		rowBase, err := g.Field1.apply(base, a)
		if err != nil {
			return nil, err
		}
		for _, b := range v2 {
			cell, err := g.Field2.apply(rowBase, b)
			if err != nil {
				return nil, err
			}
			specs = append(specs, cell)
		}
	}
	reports, err := RunMany(specs, opts)
	if err != nil {
		return nil, fmt.Errorf("grid %s×%s: %w", g.Field1.Field, g.Field2.Field, err)
	}
	cells := make([]GridCell, len(specs))
	for i, a := range v1 {
		for j, b := range v2 {
			k := i*len(v2) + j
			cells[k] = GridCell{Value1: a, Value2: b, Report: reports[k]}
		}
	}
	return cells, nil
}

// MetricNames lists the scalar report metrics selectable by Metric, in
// display order.
var MetricNames = []string{
	"new_tuples", "throughput_tps", "max_latency_s", "mean_latency_s",
	"tentative", "max_tentative_streak", "undos", "rec_dones",
	"stable_duplicates", "violations", "violation_rate", "max_excess_s",
	"stabilization_s",
}

// Metric extracts one scalar metric from a report by name — the cell
// value of a rendered grid and the -metric flag of borealis-sim.
func Metric(r *Report, name string) (float64, error) {
	c := &r.Client
	switch name {
	case "new_tuples":
		return float64(c.NewTuples), nil
	case "throughput_tps":
		return c.ThroughputTPS, nil
	case "max_latency_s":
		return c.MaxLatencyS, nil
	case "mean_latency_s":
		return c.MeanLatencyS, nil
	case "tentative":
		return float64(c.Tentative), nil
	case "max_tentative_streak":
		return float64(c.MaxTentativeStreak), nil
	case "undos":
		return float64(c.Undos), nil
	case "rec_dones":
		return float64(c.RecDones), nil
	case "stable_duplicates":
		return float64(c.StableDuplicates), nil
	case "violations":
		return float64(r.Availability.Violations), nil
	case "violation_rate":
		return r.Availability.ViolationRate, nil
	case "max_excess_s":
		return r.Availability.MaxExcessS, nil
	case "stabilization_s":
		return r.Stabilization.LatencyS, nil
	}
	return 0, errf("unknown metric %q (want one of %v)", name, MetricNames)
}

// PrintGrid renders one metric of a row-major cell table as a 2-D matrix:
// Field1 values label the rows, Field2 values the columns.
func PrintGrid(w io.Writer, g GridSpec, cells []GridCell, metric string) error {
	v2 := g.Field2.Values()
	cols := len(v2)
	if cols == 0 || len(cells)%cols != 0 {
		return errf("grid: %d cells do not tile %d columns", len(cells), cols)
	}
	fmt.Fprintf(w, "%s (rows: %s, cols: %s)\n", metric, g.Field1.Field, g.Field2.Field)
	fmt.Fprintf(w, "%12s", g.Field1.Field+`\`+g.Field2.Field)
	for _, b := range v2 {
		fmt.Fprintf(w, " %10.4g", b)
	}
	fmt.Fprintln(w)
	for i := 0; i < len(cells); i += cols {
		fmt.Fprintf(w, "%12.4g", cells[i].Value1)
		for j := 0; j < cols; j++ {
			v, err := Metric(cells[i+j].Report, metric)
			if err != nil {
				return err
			}
			fmt.Fprintf(w, " %10.4g", v)
		}
		fmt.Fprintln(w)
	}
	return nil
}
