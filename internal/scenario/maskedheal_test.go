package scenario

import (
	"fmt"
	"testing"
)

// wedgeSpec reproduces the masked-heal wedge: a two-level chain where the
// availability bound D is chosen so 0.9·D lands just under the source
// fault duration. The upstream level's suspension then expires moments
// before the heal, leaking a sliver of tentative tuples downstream; the
// downstream level's own suspension still covers the heal, so nothing
// tentative leaves it and the old controller declared the failure masked —
// discarding the checkpoint and patched log while its SUnion still held
// the poisoned (tentative) bucket, which no policy can ever flush. The
// stream then starves forever. The fix reconciles instead whenever a heal
// leaves tentative content buffered in any SUnion, divergence or not.
func wedgeSpec(delayS float64) *Spec {
	raw := fmt.Sprintf(`{
		"name": "masked-heal-wedge",
		"seed": 1,
		"duration_s": 25,
		"defaults": {"delay_s": %g, "replicas": 2},
		"sources": [{"name": "s", "count": 3, "rate": 450, "workload": {"kind": "constant"}}],
		"nodes": [
			{"name": "n1", "inputs": ["s"]},
			{"name": "n2", "inputs": ["n1"]}
		],
		"client": {"input": "n2", "delay_ms": 50},
		"faults": [{"kind": "disconnect", "source": "s2", "at_s": 10, "duration_s": 5}]
	}`, delayS)
	spec, err := Parse([]byte(raw))
	if err != nil {
		panic(err)
	}
	return spec
}

func TestMaskedHealWithHeldTentativeReconciles(t *testing.T) {
	// D values straddling the wedge band (0.9·D ≈ fault duration 5 s):
	// below it the failure surfaces tentative data and reconciles
	// normally; inside it the old code starved; above it the failure is
	// genuinely masked end to end. All must deliver the full stream.
	for _, delay := range []float64{2, 5.4, 5.667, 8} {
		t.Run(fmt.Sprintf("delay=%g", delay), func(t *testing.T) {
			rep, err := Run(wedgeSpec(delay), Options{SkipConsistency: true})
			if err != nil {
				t.Fatal(err)
			}
			// New-information deliveries advance the STime watermark at
			// ~100/s here (three 150 tps sources sharing tick stamps), so
			// a healthy 25 s run reports ≈2489; the wedge starved the
			// stream at t=10 s and reported 989.
			if rep.Client.NewTuples < 2400 {
				t.Fatalf("delivered %d tuples — stream starved after the heal", rep.Client.NewTuples)
			}
		})
	}
}

// TestMaskedHealAudit runs the wedge-band spec with the Definition 1
// audit: the recovered stream must also be correct, not just flowing.
func TestMaskedHealAudit(t *testing.T) {
	spec := wedgeSpec(5.4)
	spec.VerifyConsistency = true
	rep, err := Run(spec, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Consistency == nil || !rep.Consistency.OK {
		t.Fatalf("audit failed: %+v", rep.Consistency)
	}
	if rep.Client.StableDuplicates != 0 {
		t.Fatalf("%d stable duplicates", rep.Client.StableDuplicates)
	}
}
