package scenario

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the scenario golden files")

// TestGoldenScenarios runs every curated spec in scenarios/ under -quick
// and compares the canonical JSON report byte-for-byte against its golden
// file. Regenerate after an intentional behavior change with:
//
//	go test ./internal/scenario -run TestGolden -update
func TestGoldenScenarios(t *testing.T) {
	paths, err := filepath.Glob("../../scenarios/*.json")
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) == 0 {
		t.Fatal("no curated scenarios found")
	}
	for _, path := range paths {
		name := strings.TrimSuffix(filepath.Base(path), ".json")
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			spec, err := Load(path)
			if err != nil {
				t.Fatal(err)
			}
			if spec.Name != name {
				t.Fatalf("spec name %q does not match file name %q", spec.Name, name)
			}
			rep, err := Run(spec, Options{Quick: true})
			if err != nil {
				t.Fatal(err)
			}
			got, err := rep.JSON()
			if err != nil {
				t.Fatal(err)
			}
			golden := filepath.Join("testdata", name+".golden.json")
			if *update {
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(golden, got, 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("%v (run with -update to regenerate)", err)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("report drifted from golden file %s\n--- got ---\n%s\n--- want ---\n%s\n(run with -update if intentional)",
					golden, got, want)
			}
			// Every curated scenario must audit clean.
			if rep.Consistency != nil && !rep.Consistency.OK {
				t.Fatalf("eventual consistency violated: %s", rep.Consistency.Reason)
			}
		})
	}
}

// TestGoldenScenariosBothPlanes is the golden-preservation proof of the
// staged batch data plane: every curated golden file — all of them written
// before the batch plane existed — must be reproduced byte-for-byte by BOTH
// planes. TestGoldenScenarios covers the batch default; this test pins the
// per-tuple reference to the same bytes, so the pair proves the planes
// agree with each other and with history. The golden files are never
// regenerated for a data-plane change: if either plane drifts, the plane
// is wrong.
func TestGoldenScenariosBothPlanes(t *testing.T) {
	paths, err := filepath.Glob("../../scenarios/*.json")
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) == 0 {
		t.Fatal("no curated scenarios found")
	}
	for _, path := range paths {
		name := strings.TrimSuffix(filepath.Base(path), ".json")
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			spec, err := Load(path)
			if err != nil {
				t.Fatal(err)
			}
			golden := filepath.Join("testdata", name+".golden.json")
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("%v (goldens must exist before the data-plane proof runs)", err)
			}
			for _, perTuple := range []bool{false, true} {
				rep, err := Run(spec, Options{Quick: true, PerTuple: perTuple})
				if err != nil {
					t.Fatal(err)
				}
				got, err := rep.JSON()
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(got, want) {
					t.Fatalf("perTuple=%v report drifted from golden file %s\n--- got ---\n%s\n--- want ---\n%s",
						perTuple, golden, got, want)
				}
			}
		})
	}
}
