package runtime

import (
	"sync"
	"testing"
	"time"

	"borealis/internal/vtime"
)

// TestWallPacing checks that the wall clock actually paces events against
// real time: at speed 1000, 100 ms of clock time must take roughly 100 µs
// of wall time — and, more importantly, not complete instantly.
func TestWallPacing(t *testing.T) {
	clk := NewWall(1000) // 1 clock second per real millisecond
	fired := 0
	for i := int64(1); i <= 10; i++ {
		clk.At(i*10*vtime.Millisecond, func() { fired++ })
	}
	start := time.Now()
	clk.RunFor(100 * vtime.Millisecond)
	elapsed := time.Since(start)
	if fired != 10 {
		t.Fatalf("fired %d, want 10", fired)
	}
	// 100 ms at speed 1000 is 100 µs of wall time; allow generous slop
	// upward (scheduler noise) but reject an instant return.
	if elapsed < 50*time.Microsecond {
		t.Fatalf("RunFor returned after %v; pacing is not happening", elapsed)
	}
	if elapsed > 5*time.Second {
		t.Fatalf("RunFor took %v; pacing is far too slow", elapsed)
	}
}

// TestWallConcurrentScheduling hammers the clock from several goroutines
// while the run loop drains, which is what the -race CI job exists to
// check: the heap mutex must make cross-goroutine At/Stop safe, and a
// concurrently scheduled earlier event must still fire within the horizon.
func TestWallConcurrentScheduling(t *testing.T) {
	clk := NewWall(1e6)
	var mu sync.Mutex
	fired := 0
	count := func() { mu.Lock(); fired++; mu.Unlock() }

	const goroutines = 8
	const perG = 200
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				tm := clk.At(int64(i+1)*vtime.Millisecond, count)
				if i%3 == 0 {
					tm.Stop() // races the run loop on purpose
				}
			}
		}(g)
	}
	// Drive while the producers are still scheduling.
	done := make(chan struct{})
	go func() {
		defer close(done)
		clk.RunUntil((perG + 1) * vtime.Millisecond)
	}()
	wg.Wait()
	<-done
	clk.Run() // anything scheduled after the horizon check drains here

	mu.Lock()
	defer mu.Unlock()
	// Between 2/3 and all of the events fire depending on how the Stop
	// races resolve; the invariant is no lost un-stopped timers and no
	// double fires: fired + stopped == scheduled.
	total := goroutines * perG
	stopped := total - fired
	if stopped < 0 || stopped > (total/3)+goroutines {
		t.Fatalf("fired %d of %d (stopped %d): inconsistent with at most 1/3 Stop attempts", fired, total, stopped)
	}
}

// TestWallTickerStopRace stops tickers from a foreign goroutine while the
// run loop is ticking them.
func TestWallTickerStopRace(t *testing.T) {
	clk := NewWall(1e6)
	var mu sync.Mutex
	ticks := 0
	tk := clk.NewTicker(vtime.Millisecond, func() { mu.Lock(); ticks++; mu.Unlock() })
	done := make(chan struct{})
	go func() { defer close(done); clk.RunFor(100 * vtime.Millisecond) }()
	time.Sleep(50 * time.Microsecond)
	tk.Stop()
	<-done
	if clk.Pending() != 0 {
		t.Fatalf("stopped ticker left %d pending events", clk.Pending())
	}
}

// TestWallRunUntilHorizonSleep verifies RunUntil waits out an empty tail:
// the wall must reach the horizon even with no events scheduled there.
func TestWallRunUntilHorizonSleep(t *testing.T) {
	clk := NewWall(1000)
	start := time.Now()
	clk.RunUntil(50 * vtime.Millisecond) // 50 µs of wall time at speed 1000
	if e := time.Since(start); e < 25*time.Microsecond {
		t.Fatalf("empty RunUntil returned after %v; horizon not paced", e)
	}
	if clk.Now() != 50*vtime.Millisecond {
		t.Fatalf("Now() = %d, want %d", clk.Now(), 50*vtime.Millisecond)
	}
}
