package runtime

import "borealis/internal/vtime"

// VirtualClock adapts the deterministic discrete-event simulator to the
// Clock/Runtime interfaces. It embeds the *vtime.Sim, so the simulator's
// drive surface (Run, RunFor, RunUntil, Step, Pending, Processed) is
// available directly; the scheduling methods are re-declared only to widen
// their return types to the interfaces.
//
// The adaptation is free on the hot path: *vtime.Timer and *vtime.Ticker
// satisfy Timer and Ticker, and wrapping a pointer in an interface value
// does not allocate, so pooled timers stay pooled and the PR 1 zero-
// allocation scheduling paths (netsim deliveries, engine service timers)
// are preserved — see BenchmarkClockDispatch.
type VirtualClock struct {
	*vtime.Sim
}

var _ Runtime = (*VirtualClock)(nil)

// NewVirtual returns a virtual runtime whose clock starts at 0.
func NewVirtual() *VirtualClock { return &VirtualClock{vtime.New()} }

// Virtual wraps an existing simulator, sharing its event queue and clock.
// Components constructed on the wrapper and code scheduling on the bare
// *vtime.Sim interleave in one deterministic order.
func Virtual(s *vtime.Sim) *VirtualClock { return &VirtualClock{s} }

// At schedules fn at absolute virtual time t.
func (c *VirtualClock) At(t int64, fn func()) Timer { return c.Sim.At(t, fn) }

// After schedules fn d microseconds from now.
func (c *VirtualClock) After(d int64, fn func()) Timer { return c.Sim.After(d, fn) }

// AtCall schedules fn(arg) at absolute virtual time t, allocation-free in
// steady state.
func (c *VirtualClock) AtCall(t int64, fn func(any), arg any) Timer {
	return c.Sim.AtCall(t, fn, arg)
}

// AfterCall schedules fn(arg) d microseconds from now.
func (c *VirtualClock) AfterCall(d int64, fn func(any), arg any) Timer {
	return c.Sim.AfterCall(d, fn, arg)
}

// NewTicker schedules fn every interval microseconds.
func (c *VirtualClock) NewTicker(interval int64, fn func()) Ticker {
	return c.Sim.NewTicker(interval, fn)
}
