package runtime

import (
	"fmt"
	"sync"
	"time"
)

// WallClock executes the event queue against real time. Events carry the
// same microsecond timestamps as on the virtual clock; the run loop fires
// each one when the wall reaches its scaled real deadline. Speed scales the
// mapping: speed 1 is true real time, speed 100 packs 100 clock seconds
// into one wall second.
//
// Concurrency model. Scheduling (At/After/AtCall/AfterCall, Timer.Stop) is
// safe from any goroutine: a mutex guards the event heap, and a scheduling
// call that creates a new earliest event wakes a sleeping run loop through
// a kick channel backed by time.Timer waits. Callbacks, however, are fired
// exclusively from the goroutine driving Run/RunFor/RunUntil — the run
// loop — with the mutex released, so operator code keeps the synchronous
// single-threaded execution contract it has on the simulator, and may
// freely call back into the clock.
//
// Time model. Now is event-anchored, not free-running: it advances to each
// fired event's timestamp and to the horizon of the current drive call,
// never in between. A callback therefore observes Now() == its scheduled
// time even when the wall is late — which keeps source timestamps (and so
// the whole serialized stream content) identical to a virtual run of the
// same program, jitter notwithstanding. Between drive calls time does not
// pass at all, exactly like the simulator. Scheduling into the past cannot
// be rejected on a real clock; it clamps to now and fires immediately.
type WallClock struct {
	mu    sync.Mutex
	heap  []*wallTimer // binary min-heap on (at, seq)
	seq   uint64
	now   int64 // event-anchored clock time, µs
	speed float64

	// anchor maps clock time to wall time for the current drive call:
	// real(t) = anchorReal + (t − anchorClock)/speed.
	anchorReal  time.Time
	anchorClock int64

	running bool
	// kick wakes the run loop's pacing sleep when a concurrent scheduling
	// call may have created an earlier deadline.
	kick chan struct{}

	// processed counts fired events (parity with vtime.Sim.Processed).
	processed uint64
}

var _ Runtime = (*WallClock)(nil)

// NewWall returns a wall-clock runtime. Speed is the time-scale factor
// (clock microseconds per real microsecond); zero or negative means 1.
func NewWall(speed float64) *WallClock {
	if speed <= 0 {
		speed = 1
	}
	return &WallClock{speed: speed, kick: make(chan struct{}, 1)}
}

// NewWallAt returns a wall-clock runtime whose clock starts at startUS
// instead of zero. A cluster worker respawned mid-scenario uses it: the
// replacement process must schedule its remaining timeline from the
// scenario time at which the old process was killed, not from t=0.
func NewWallAt(speed float64, startUS int64) *WallClock {
	c := NewWall(speed)
	if startUS > 0 {
		c.now = startUS
	}
	return c
}

// Speed returns the time-scale factor.
func (c *WallClock) Speed() float64 { return c.speed }

// Now returns the current event-anchored clock time in microseconds.
func (c *WallClock) Now() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// Pending returns the number of scheduled, unfired events.
func (c *WallClock) Pending() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.heap)
}

// Processed returns the number of events fired so far.
func (c *WallClock) Processed() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.processed
}

// wallTimer is one scheduled event. Fields other than at/seq are guarded
// by the clock mutex; at and seq are immutable once enqueued.
type wallTimer struct {
	clk     *WallClock
	fn      func()
	argFn   func(any)
	arg     any
	at      int64
	seq     uint64
	index   int // heap index, -1 once removed
	fired   bool
	stopped bool
}

// Stop cancels the event if it has not fired yet.
func (t *wallTimer) Stop() bool {
	if t == nil {
		return false
	}
	c := t.clk
	c.mu.Lock()
	defer c.mu.Unlock()
	if t.fired || t.stopped {
		return false
	}
	t.stopped = true
	if t.index >= 0 {
		c.removeLocked(t.index)
	}
	t.fn, t.argFn, t.arg = nil, nil, nil
	return true
}

// Stopped reports whether Stop prevented the event from firing.
func (t *wallTimer) Stopped() bool {
	if t == nil {
		return false
	}
	t.clk.mu.Lock()
	defer t.clk.mu.Unlock()
	return t.stopped
}

// When returns the clock time the event is (or was) scheduled at.
func (t *wallTimer) When() int64 { return t.at }

// At schedules fn at absolute clock time at (clamped to now).
func (c *WallClock) At(at int64, fn func()) Timer {
	if fn == nil {
		panic("runtime: nil event function")
	}
	return c.add(at, false, fn, nil, nil)
}

// After schedules fn d microseconds from now (negative d = now).
func (c *WallClock) After(d int64, fn func()) Timer {
	if fn == nil {
		panic("runtime: nil event function")
	}
	return c.add(d, true, fn, nil, nil)
}

// AtCall schedules fn(arg) at absolute clock time at.
func (c *WallClock) AtCall(at int64, fn func(any), arg any) Timer {
	if fn == nil {
		panic("runtime: nil event function")
	}
	return c.add(at, false, nil, fn, arg)
}

// AfterCall schedules fn(arg) d microseconds from now.
func (c *WallClock) AfterCall(d int64, fn func(any), arg any) Timer {
	if fn == nil {
		panic("runtime: nil event function")
	}
	return c.add(d, true, nil, fn, arg)
}

// NewTicker schedules fn every interval microseconds.
func (c *WallClock) NewTicker(interval int64, fn func()) Ticker {
	return newClockTicker(c, interval, fn)
}

// add enqueues an event; rel marks the first argument as a delay rather
// than an absolute time.
func (c *WallClock) add(at int64, rel bool, fn func(), argFn func(any), arg any) Timer {
	t := &wallTimer{clk: c, fn: fn, argFn: argFn, arg: arg, index: -1}
	c.mu.Lock()
	if rel {
		if at < 0 {
			at = 0
		}
		at += c.now
	} else if at < c.now {
		at = c.now
	}
	c.seq++
	t.at, t.seq = at, c.seq
	c.pushLocked(t)
	c.mu.Unlock()
	// Wake a pacing sleep: the new event may precede what the loop was
	// waiting for. A spurious kick costs one heap peek.
	select {
	case c.kick <- struct{}{}:
	default:
	}
	return t
}

// Run fires events until none remain scheduled.
func (c *WallClock) Run() {
	for {
		c.mu.Lock()
		if len(c.heap) == 0 {
			c.mu.Unlock()
			return
		}
		next := c.heap[0].at
		c.mu.Unlock()
		c.RunUntil(next)
	}
}

// RunFor advances the clock by d microseconds of scaled time.
func (c *WallClock) RunFor(d int64) {
	c.mu.Lock()
	t := c.now + d
	c.mu.Unlock()
	c.RunUntil(t)
}

// RunUntil drives the run loop until clock time t: every event with time
// ≤ t fires at its scaled real deadline, from this goroutine, and the call
// returns once the wall reaches t (so back-to-back RunUntil calls pace a
// live, gap-free timeline). The real anchor resets at every drive call —
// time spent between drives does not eat into the schedule.
func (c *WallClock) RunUntil(t int64) {
	c.mu.Lock()
	if c.running {
		c.mu.Unlock()
		panic(fmt.Sprintf("runtime: WallClock run loop re-entered (RunUntil %d)", t))
	}
	c.running = true
	c.anchorReal = time.Now()
	c.anchorClock = c.now
	for {
		if len(c.heap) > 0 && c.heap[0].at <= t {
			tm := c.heap[0]
			if d := c.realWaitLocked(tm.at); d > 0 {
				c.sleepLocked(d)
				continue // the heap may have changed while asleep
			}
			c.popMinLocked()
			if tm.at > c.now {
				c.now = tm.at
			}
			tm.fired = true
			c.processed++
			fn, argFn, arg := tm.fn, tm.argFn, tm.arg
			tm.fn, tm.argFn, tm.arg = nil, nil, nil
			c.mu.Unlock()
			if argFn != nil {
				argFn(arg)
			} else {
				fn()
			}
			c.mu.Lock()
			continue
		}
		// Nothing (left) due before the horizon: wait out the residual
		// real time, re-checking if a concurrent schedule lands earlier.
		if d := c.realWaitLocked(t); d > 0 {
			c.sleepLocked(d)
			continue
		}
		break
	}
	if t > c.now {
		c.now = t
	}
	c.running = false
	c.mu.Unlock()
}

// realWaitLocked returns how long the wall still has to travel before
// clock time v is due under the current drive anchor.
func (c *WallClock) realWaitLocked(v int64) time.Duration {
	target := c.anchorReal.Add(time.Duration(float64(v-c.anchorClock) * 1e3 / c.speed))
	return time.Until(target)
}

// sleepLocked releases the mutex and waits for d or a scheduling kick.
func (c *WallClock) sleepLocked(d time.Duration) {
	c.mu.Unlock()
	tm := time.NewTimer(d)
	select {
	case <-tm.C:
	case <-c.kick:
		tm.Stop()
	}
	c.mu.Lock()
}

// ---- binary min-heap on (at, seq) ----

func (c *WallClock) lessLocked(i, j int) bool {
	a, b := c.heap[i], c.heap[j]
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

func (c *WallClock) swapLocked(i, j int) {
	c.heap[i], c.heap[j] = c.heap[j], c.heap[i]
	c.heap[i].index = i
	c.heap[j].index = j
}

func (c *WallClock) upLocked(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !c.lessLocked(i, parent) {
			break
		}
		c.swapLocked(i, parent)
		i = parent
	}
}

func (c *WallClock) downLocked(i int) {
	n := len(c.heap)
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		least := l
		if r := l + 1; r < n && c.lessLocked(r, l) {
			least = r
		}
		if !c.lessLocked(least, i) {
			break
		}
		c.swapLocked(i, least)
		i = least
	}
}

func (c *WallClock) pushLocked(t *wallTimer) {
	t.index = len(c.heap)
	c.heap = append(c.heap, t)
	c.upLocked(t.index)
}

func (c *WallClock) popMinLocked() *wallTimer {
	t := c.heap[0]
	c.removeLocked(0)
	return t
}

func (c *WallClock) removeLocked(i int) {
	t := c.heap[i]
	last := len(c.heap) - 1
	if i != last {
		c.swapLocked(i, last)
	}
	c.heap[last] = nil
	c.heap = c.heap[:last]
	if i != last {
		c.downLocked(i)
		c.upLocked(i)
	}
	t.index = -1
}
