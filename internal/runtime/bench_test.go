package runtime

import (
	"testing"

	"borealis/internal/vtime"
)

// The benchmark guard for the Clock redesign: the PR 1 hot paths schedule
// through AfterCall/AtCall (netsim deliveries, engine service timers), and
// the interface seam must not add allocations or measurable latency over
// calling the simulator directly. Compare:
//
//	go test ./internal/runtime -bench Dispatch -benchmem
//
// BenchmarkDirectSimDispatch is the PR 1 baseline; BenchmarkClockDispatch
// is the same schedule-and-drain loop through the Clock interface. Both
// must report 0 B/op in steady state.

func benchDirect(b *testing.B, sim *vtime.Sim) {
	fn := func(any) {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim.AfterCall(1, fn, nil)
		sim.Step()
	}
}

func benchClock(b *testing.B, clk Clock, step func() bool) {
	fn := func(any) {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		clk.AfterCall(1, fn, nil)
		step()
	}
}

func BenchmarkDirectSimDispatch(b *testing.B) {
	benchDirect(b, vtime.New())
}

func BenchmarkClockDispatch(b *testing.B) {
	v := NewVirtual()
	benchClock(b, v, v.Step)
}

// BenchmarkClockDispatchStopPath exercises the schedule-then-cancel path
// (SUnion timer re-arms, stall-timer resets) through the interface.
func BenchmarkClockDispatchStopPath(b *testing.B) {
	v := NewVirtual()
	var clk Clock = v
	fn := func() {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tm := clk.After(1, fn)
		tm.Stop()
	}
}

func BenchmarkDirectSimStopPath(b *testing.B) {
	sim := vtime.New()
	fn := func() {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tm := sim.After(1, fn)
		tm.Stop()
	}
}
