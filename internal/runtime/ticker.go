package runtime

import "sync"

// clockTicker implements Ticker over any Clock by rescheduling a one-shot
// timer after each tick. Its own mutex makes Stop safe from any goroutine
// (the WallClock fires callbacks outside its heap lock, so a concurrent
// Stop could otherwise race the reschedule). Lock order is always
// ticker → clock, on both the tick and the Stop path.
type clockTicker struct {
	mu       sync.Mutex
	clk      Clock
	interval int64
	fn       func()
	tickFn   func() // bound once; rescheduling allocates no new closure
	timer    Timer
	stopped  bool
}

func newClockTicker(clk Clock, interval int64, fn func()) *clockTicker {
	if interval <= 0 {
		panic("runtime: ticker interval must be positive")
	}
	tk := &clockTicker{clk: clk, interval: interval, fn: fn}
	tk.tickFn = tk.tick
	tk.mu.Lock()
	tk.timer = clk.After(interval, tk.tickFn)
	tk.mu.Unlock()
	return tk
}

func (tk *clockTicker) tick() {
	tk.mu.Lock()
	tk.timer = nil
	if tk.stopped {
		tk.mu.Unlock()
		return
	}
	tk.mu.Unlock()
	tk.fn()
	tk.mu.Lock()
	if !tk.stopped {
		tk.timer = tk.clk.After(tk.interval, tk.tickFn)
	}
	tk.mu.Unlock()
}

// Stop cancels all future ticks; calling it from inside the tick callback
// is allowed.
func (tk *clockTicker) Stop() {
	tk.mu.Lock()
	defer tk.mu.Unlock()
	if tk.stopped {
		return
	}
	tk.stopped = true
	if tk.timer != nil {
		tk.timer.Stop()
		tk.timer = nil
	}
}
