// Package runtime is the scheduling seam between the DPC system and the
// substrate that executes it. Every component — the network fabric, the
// engine, processing nodes, sources, clients — schedules callbacks through
// the Clock interface instead of a concrete simulator, so the same code
// runs on two substrates:
//
//   - VirtualClock wraps the deterministic discrete-event simulator
//     (internal/vtime): time is a counter that jumps from event to event,
//     a whole hour of traffic replays in milliseconds, and every run is
//     bit-identical. This is the substrate for tests, golden files and
//     the paper experiments.
//   - WallClock paces the same event queue against real time, optionally
//     scaled (speed 100 ⇒ one virtual second takes 10 ms of wall time).
//     Callbacks fire from a single run loop, so operators keep their
//     single-threaded execution contract without any locking of their own.
//
// Both clocks order simultaneous events by scheduling sequence, so a
// program that is deterministic under VirtualClock keeps the same event
// ordering under WallClock whenever real-time jitter does not reorder
// distinct timestamps (see docs/RUNTIME.md for the exact guarantees).
package runtime

// Timer is a handle to a scheduled callback. Implementations recycle
// handles after they fire or are stopped — callers must drop their
// reference at that point (nil the stored field as the first statement of
// the callback, and right after any Stop call), exactly the vtime.Timer
// contract.
type Timer interface {
	// Stop cancels the callback if it has not fired yet, reporting
	// whether the call prevented it from firing.
	Stop() bool
	// Stopped reports whether Stop was called before the callback fired.
	Stopped() bool
	// When returns the time at which the timer is (or was) scheduled.
	When() int64
}

// Ticker fires a callback at a fixed interval until stopped.
type Ticker interface {
	// Stop cancels all future ticks. Stopping from inside the tick
	// callback is allowed.
	Stop()
}

// Clock is the scheduling surface shared by every component. All times are
// int64 microseconds; on a VirtualClock they are virtual microseconds since
// the simulation epoch, on a WallClock scaled microseconds since the run
// started. Callbacks are always invoked from the clock's single run loop —
// implementations must never run two callbacks concurrently.
type Clock interface {
	// Now returns the current time in microseconds.
	Now() int64
	// At schedules fn at absolute time t.
	At(t int64, fn func()) Timer
	// After schedules fn d microseconds from now (negative d = now).
	After(d int64, fn func()) Timer
	// AtCall schedules fn(arg) at absolute time t. The function is shared
	// across events and per-event state travels in arg, so steady-state
	// callers allocate nothing per event (the PR 1 hot path).
	AtCall(t int64, fn func(any), arg any) Timer
	// AfterCall schedules fn(arg) d microseconds from now.
	AfterCall(d int64, fn func(any), arg any) Timer
	// NewTicker schedules fn every interval microseconds, first firing at
	// now+interval.
	NewTicker(interval int64, fn func()) Ticker
}

// Runtime is a Clock that can also be driven: the entry point a deployment
// runs on. Run-family methods block the calling goroutine and invoke every
// due callback from it (the run loop).
type Runtime interface {
	Clock
	// Run fires events until none remain scheduled.
	Run()
	// RunFor advances time by d microseconds, firing every event due in
	// the window. On a WallClock this takes d/speed of real time.
	RunFor(d int64)
	// RunUntil advances time to t, firing every event with time ≤ t.
	RunUntil(t int64)
	// Pending returns the number of scheduled, unfired events.
	Pending() int
}
