package runtime

import (
	"testing"

	"borealis/internal/vtime"
)

const ms = vtime.Millisecond

// clocks returns both runtimes so every contract test runs against each.
// The wall clock uses an aggressive speed so tests finish in microseconds
// of real time.
func clocks() map[string]Runtime {
	return map[string]Runtime{
		"virtual": NewVirtual(),
		"wall":    NewWall(1e6),
	}
}

func TestOrderingAndNow(t *testing.T) {
	for name, clk := range clocks() {
		t.Run(name, func(t *testing.T) {
			var got []int
			var times []int64
			clk.At(20*ms, func() { got = append(got, 2); times = append(times, clk.Now()) })
			clk.At(10*ms, func() { got = append(got, 1); times = append(times, clk.Now()) })
			// Equal timestamps fire in scheduling order.
			clk.At(30*ms, func() { got = append(got, 3) })
			clk.At(30*ms, func() { got = append(got, 4) })
			clk.Run()
			want := []int{1, 2, 3, 4}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("order %v, want %v", got, want)
				}
			}
			if times[0] != 10*ms || times[1] != 20*ms {
				t.Fatalf("callback Now() = %v, want [10ms 20ms]", times)
			}
			if clk.Now() != 30*ms {
				t.Fatalf("final Now() = %d, want %d", clk.Now(), 30*ms)
			}
		})
	}
}

func TestAfterAndStop(t *testing.T) {
	for name, clk := range clocks() {
		t.Run(name, func(t *testing.T) {
			fired := 0
			keep := clk.After(5*ms, func() { fired++ })
			stop := clk.After(5*ms, func() { fired++ })
			if !stop.Stop() {
				t.Fatal("Stop on a pending timer returned false")
			}
			if stop.Stop() {
				t.Fatal("second Stop returned true")
			}
			clk.Run()
			if fired != 1 {
				t.Fatalf("fired %d callbacks, want 1", fired)
			}
			if keep.Stop() {
				t.Fatal("Stop on a fired timer returned true")
			}
			if !stop.Stopped() {
				t.Fatal("Stopped() false after Stop")
			}
		})
	}
}

func TestAtCallSharedFunction(t *testing.T) {
	for name, clk := range clocks() {
		t.Run(name, func(t *testing.T) {
			var got []int
			fn := func(arg any) { got = append(got, arg.(int)) }
			clk.AtCall(2*ms, fn, 2)
			clk.AfterCall(1*ms, fn, 1)
			clk.Run()
			if len(got) != 2 || got[0] != 1 || got[1] != 2 {
				t.Fatalf("got %v, want [1 2]", got)
			}
		})
	}
}

func TestTicker(t *testing.T) {
	for name, clk := range clocks() {
		t.Run(name, func(t *testing.T) {
			var ticks []int64
			var tk Ticker
			tk = clk.NewTicker(10*ms, func() {
				ticks = append(ticks, clk.Now())
				if len(ticks) == 3 {
					tk.Stop() // stop from inside the tick
				}
			})
			clk.RunFor(100 * ms)
			if len(ticks) != 3 {
				t.Fatalf("ticked %d times, want 3", len(ticks))
			}
			for i, at := range ticks {
				if want := int64(i+1) * 10 * ms; at != want {
					t.Fatalf("tick %d at %d, want %d", i, at, want)
				}
			}
		})
	}
}

func TestRunUntilLeavesLaterEvents(t *testing.T) {
	for name, clk := range clocks() {
		t.Run(name, func(t *testing.T) {
			fired := false
			clk.At(50*ms, func() { fired = true })
			clk.RunUntil(20 * ms)
			if fired {
				t.Fatal("event fired before its time")
			}
			if clk.Now() != 20*ms {
				t.Fatalf("Now() = %d, want %d", clk.Now(), 20*ms)
			}
			if clk.Pending() != 1 {
				t.Fatalf("Pending() = %d, want 1", clk.Pending())
			}
			clk.RunFor(40 * ms)
			if !fired {
				t.Fatal("event did not fire")
			}
		})
	}
}

func TestCallbackSchedulesMore(t *testing.T) {
	for name, clk := range clocks() {
		t.Run(name, func(t *testing.T) {
			depth := 0
			var recur func()
			recur = func() {
				depth++
				if depth < 5 {
					clk.After(1*ms, recur)
				}
			}
			clk.After(1*ms, recur)
			clk.Run()
			if depth != 5 {
				t.Fatalf("depth %d, want 5", depth)
			}
			if clk.Now() != 5*ms {
				t.Fatalf("Now() = %d, want %d", clk.Now(), 5*ms)
			}
		})
	}
}

func TestVirtualSharesSim(t *testing.T) {
	sim := vtime.New()
	clk := Virtual(sim)
	var order []string
	sim.At(1*ms, func() { order = append(order, "sim") })
	clk.At(1*ms, func() { order = append(order, "clk") })
	clk.Run()
	if len(order) != 2 || order[0] != "sim" || order[1] != "clk" {
		t.Fatalf("order %v, want [sim clk]", order)
	}
}

func TestWallClampsPastScheduling(t *testing.T) {
	clk := NewWall(1e6)
	clk.RunFor(10 * ms)
	tm := clk.At(1*ms, func() {}) // in the past: clamps to now
	if tm.When() != 10*ms {
		t.Fatalf("When() = %d, want clamp to %d", tm.When(), 10*ms)
	}
	clk.Run()
	if clk.Now() != 10*ms {
		t.Fatalf("Now() = %d, want %d", clk.Now(), 10*ms)
	}
}
