// Package tuple defines the DPC data model from §4.1 of the Borealis
// fault-tolerance paper: stream tuples carry a type (INSERTION, TENTATIVE,
// BOUNDARY, UNDO, or REC_DONE), a per-stream identifier, and a timestamp
// (tuple_stime) used for serialization and window computation.
package tuple

import (
	"fmt"
	"strings"
)

// Type is the tuple_type header field.
type Type uint8

const (
	// Insertion is a regular stable tuple.
	Insertion Type = iota
	// Tentative results from processing a subset of inputs and may later
	// be corrected by stable tuples.
	Tentative
	// Boundary promises that all following tuples on the stream have
	// STime greater than or equal to the boundary's STime. Boundaries act
	// as both punctuation and heartbeats.
	Boundary
	// Undo instructs the receiver to delete the suffix of the stream that
	// follows the tuple identified by ID, and to roll back any state
	// derived from it.
	Undo
	// RecDone marks the end of a sequence of corrections produced during
	// state reconciliation.
	RecDone
)

var typeNames = [...]string{"INSERTION", "TENTATIVE", "BOUNDARY", "UNDO", "REC_DONE"}

func (t Type) String() string {
	if int(t) < len(typeNames) {
		return typeNames[t]
	}
	return fmt.Sprintf("Type(%d)", uint8(t))
}

// IsData reports whether the type carries application data (stable or
// tentative), as opposed to control information.
func (t Type) IsData() bool { return t == Insertion || t == Tentative }

// Tuple is a single stream element.
//
// For Boundary tuples, STime is the promised lower bound. For Undo tuples,
// ID identifies the last tuple NOT to be undone. Src tags the input port a
// tuple entered through when several logical streams are serialized into one
// ordered stream by SUnion; operators such as SJoin use it to route tuples
// internally.
type Tuple struct {
	Type  Type
	ID    uint64
	STime int64
	Src   int32
	Data  []int64
}

// NewInsertion returns a stable data tuple.
func NewInsertion(stime int64, data ...int64) Tuple {
	return Tuple{Type: Insertion, STime: stime, Data: data}
}

// NewTentative returns a tentative data tuple.
func NewTentative(stime int64, data ...int64) Tuple {
	return Tuple{Type: Tentative, STime: stime, Data: data}
}

// NewBoundary returns a boundary tuple promising no future tuple has
// STime < stime.
func NewBoundary(stime int64) Tuple {
	return Tuple{Type: Boundary, STime: stime}
}

// NewUndo returns an undo tuple. lastGoodID identifies the last tuple that
// should be kept.
func NewUndo(lastGoodID uint64) Tuple {
	return Tuple{Type: Undo, ID: lastGoodID}
}

// NewRecDone returns a reconciliation-done marker.
func NewRecDone(stime int64) Tuple {
	return Tuple{Type: RecDone, STime: stime}
}

// IsData reports whether the tuple carries application data.
func (t Tuple) IsData() bool { return t.Type.IsData() }

// AsTentative returns a copy of the tuple marked tentative (data tuples
// only; control tuples are returned unchanged).
func (t Tuple) AsTentative() Tuple {
	if t.Type == Insertion {
		t.Type = Tentative
	}
	return t
}

// AsStable returns a copy of the tuple marked stable.
func (t Tuple) AsStable() Tuple {
	if t.Type == Tentative {
		t.Type = Insertion
	}
	return t
}

// Clone returns a deep copy of the tuple (Data is copied).
func (t Tuple) Clone() Tuple {
	c := t
	if t.Data != nil {
		c.Data = make([]int64, len(t.Data))
		copy(c.Data, t.Data)
	}
	return c
}

// Field returns Data[i], or 0 if the index is out of range. Operators use
// it so that malformed tuples degrade predictably instead of panicking.
func (t Tuple) Field(i int) int64 {
	if i < 0 || i >= len(t.Data) {
		return 0
	}
	return t.Data[i]
}

func (t Tuple) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s{id=%d stime=%d src=%d", t.Type, t.ID, t.STime, t.Src)
	if len(t.Data) > 0 {
		fmt.Fprintf(&b, " data=%v", t.Data)
	}
	b.WriteByte('}')
	return b.String()
}

// Less orders tuples deterministically for serialization: by STime, then
// source port, then ID, then payload. SUnion uses it to sort stable buckets
// so that every replica emits identical sequences; the payload tie-break
// makes the order total even after SUnions deeper in a diagram re-tag Src,
// which can make (STime, Src, ID) collide for tuples of different origins.
func Less(a, b Tuple) bool { return Compare(a, b) < 0 }

// Compare is the three-way form of Less, usable with
// slices.SortStableFunc. The STime comparison comes first and decides the
// vast majority of calls, so sorting a bucket rarely looks past it.
func Compare(a, b Tuple) int {
	if a.STime != b.STime {
		if a.STime < b.STime {
			return -1
		}
		return 1
	}
	if a.Src != b.Src {
		if a.Src < b.Src {
			return -1
		}
		return 1
	}
	if a.ID != b.ID {
		if a.ID < b.ID {
			return -1
		}
		return 1
	}
	n := len(a.Data)
	if len(b.Data) < n {
		n = len(b.Data)
	}
	for i := 0; i < n; i++ {
		if a.Data[i] != b.Data[i] {
			if a.Data[i] < b.Data[i] {
				return -1
			}
			return 1
		}
	}
	switch {
	case len(a.Data) < len(b.Data):
		return -1
	case len(a.Data) > len(b.Data):
		return 1
	}
	return 0
}

// Equal reports whether two tuples are identical in all fields, including
// data. It is used by tests and by the client-side consistency audit.
func Equal(a, b Tuple) bool {
	if a.Type != b.Type || a.ID != b.ID || a.STime != b.STime || a.Src != b.Src {
		return false
	}
	if len(a.Data) != len(b.Data) {
		return false
	}
	for i := range a.Data {
		if a.Data[i] != b.Data[i] {
			return false
		}
	}
	return true
}

// SameValue reports whether two data tuples carry the same logical value
// (timestamp and payload), ignoring stability, stream position and source
// tags. The eventual-consistency audit uses it to compare a corrected output
// stream against a failure-free reference run.
func SameValue(a, b Tuple) bool {
	if a.STime != b.STime || len(a.Data) != len(b.Data) {
		return false
	}
	for i := range a.Data {
		if a.Data[i] != b.Data[i] {
			return false
		}
	}
	return true
}

// Batch is an ordered group of tuples travelling together over the simulated
// network. Batching keeps the event count proportional to ticks rather than
// tuples.
type Batch struct {
	// Stream names the logical stream the batch belongs to.
	Stream string
	Tuples []Tuple
}

// CountData returns the number of data tuples (stable or tentative) in ts.
func CountData(ts []Tuple) int {
	n := 0
	for _, t := range ts {
		if t.IsData() {
			n++
		}
	}
	return n
}

// Append appends t to a long-lived tuple log, doubling capacity when full.
// The builtin append switches to ~1.25x growth beyond a few thousand
// elements, which recopies a stream log several times more over its life;
// the logs and buffers in this system grow to millions of tuples.
func Append(ts []Tuple, t Tuple) []Tuple {
	if len(ts) == cap(ts) && len(ts) >= 1024 {
		nb := make([]Tuple, len(ts), 2*cap(ts))
		copy(nb, ts)
		ts = nb
	}
	return append(ts, t)
}

// AppendBatch bulk-appends batch to a long-lived tuple log under the same
// doubling growth policy as Append, in one copy.
func AppendBatch(ts, batch []Tuple) []Tuple {
	if need := len(ts) + len(batch); need > cap(ts) && len(ts) >= 1024 {
		nc := 2 * cap(ts)
		for nc < need {
			nc *= 2
		}
		nb := make([]Tuple, len(ts), nc)
		copy(nb, ts)
		ts = nb
	}
	return append(ts, batch...)
}

// FramePool recycles the []Tuple frames the batch data plane stages tuples
// through (engine stage buffers, collected operator emissions). A staged
// dispatch borrows a frame per operator stage and returns it before the
// next batch, so steady-state batch execution allocates no frame memory at
// all. Returned frames are NOT cleared: a pooled frame pins the payloads of
// its previous batch until the slots are overwritten, which is bounded by
// the pool's handful of frames and one batch each — a deliberate trade
// against a per-batch memclr on the hot path.
type FramePool struct {
	free [][]Tuple
}

// Get returns an empty frame with whatever capacity a previous user grew it
// to (fresh frames start at 256 tuples).
func (p *FramePool) Get() []Tuple {
	if n := len(p.free); n > 0 {
		f := p.free[n-1]
		p.free[n-1] = nil
		p.free = p.free[:n-1]
		return f
	}
	return make([]Tuple, 0, 256)
}

// Put returns a frame to the pool.
func (p *FramePool) Put(f []Tuple) {
	if cap(f) == 0 {
		return
	}
	p.free = append(p.free, f[:0])
}

// I64Arena chunk-allocates small immutable payload slices. Streams produce
// millions of 1-2 element Data slices that live as long as the logs and
// buffers retaining them; carving them out of shared chunks collapses the
// heap object count (and with it GC scan time) by three orders of
// magnitude. Slices returned by Alloc must not be appended to.
type I64Arena struct {
	chunk []int64
}

// Alloc returns a zeroed n-element slice carved from the current chunk.
func (a *I64Arena) Alloc(n int) []int64 {
	if len(a.chunk) < n {
		sz := 4096
		if n > sz {
			sz = n
		}
		a.chunk = make([]int64, sz)
	}
	p := a.chunk[:n:n]
	a.chunk = a.chunk[n:]
	return p
}

// ApplyUndo removes from ts the suffix that follows the tuple with the
// given ID, returning the shortened slice. lastGoodID zero names the
// stream origin: everything goes. When no tuple carries the ID — the undo
// refers to a point before the buffered window (a log opened mid-epoch, a
// buffer truncated by acks) — the tentative tuples are removed instead:
// the wire contract is that stable data never follows unrevoked tentative
// data, so the revoked suffix is exactly the tentative content. Returning
// ts unchanged here once left a revoked tentative aggregate in a
// downstream node's arrival log; its reconciliation replayed the tuple
// into a serialization bucket no policy could ever flush, starving the
// stream (found by the scenario fuzzer). The anchor must be a stable
// Insertion, never a Tentative that happens to reuse the id: tentative ids
// are provisional, and an UNDO's last-good id names the stable prefix. An
// earlier version anchored on any data tuple, so when a collision occurred
// the revoked tentative suffix survived the patch, resurrected into
// re-derived serialization buckets, and wedged the stable cursor for good
// (corpus scenario crash-inside-partition).
func ApplyUndo(ts []Tuple, lastGoodID uint64) []Tuple {
	for i := len(ts) - 1; i >= 0; i-- {
		if ts[i].ID == lastGoodID && ts[i].Type == Insertion {
			return ts[:i+1]
		}
	}
	if lastGoodID == 0 {
		return ts[:0]
	}
	kept := ts[:0]
	for _, t := range ts {
		if t.Type != Tentative {
			kept = append(kept, t)
		}
	}
	return kept
}
