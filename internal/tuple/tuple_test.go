package tuple

import (
	"sort"
	"testing"
	"testing/quick"
)

func TestTypeString(t *testing.T) {
	cases := map[Type]string{
		Insertion: "INSERTION",
		Tentative: "TENTATIVE",
		Boundary:  "BOUNDARY",
		Undo:      "UNDO",
		RecDone:   "REC_DONE",
	}
	for typ, want := range cases {
		if got := typ.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", typ, got, want)
		}
	}
	if got := Type(99).String(); got != "Type(99)" {
		t.Errorf("unknown type String() = %q", got)
	}
}

func TestIsData(t *testing.T) {
	if !Insertion.IsData() || !Tentative.IsData() {
		t.Error("insertion and tentative must be data types")
	}
	if Boundary.IsData() || Undo.IsData() || RecDone.IsData() {
		t.Error("control types must not be data types")
	}
}

func TestConstructors(t *testing.T) {
	in := NewInsertion(42, 1, 2)
	if in.Type != Insertion || in.STime != 42 || in.Field(0) != 1 || in.Field(1) != 2 {
		t.Errorf("NewInsertion wrong: %v", in)
	}
	te := NewTentative(7, 3)
	if te.Type != Tentative || te.STime != 7 {
		t.Errorf("NewTentative wrong: %v", te)
	}
	b := NewBoundary(100)
	if b.Type != Boundary || b.STime != 100 {
		t.Errorf("NewBoundary wrong: %v", b)
	}
	u := NewUndo(55)
	if u.Type != Undo || u.ID != 55 {
		t.Errorf("NewUndo wrong: %v", u)
	}
	r := NewRecDone(9)
	if r.Type != RecDone || r.STime != 9 {
		t.Errorf("NewRecDone wrong: %v", r)
	}
}

func TestTentativeStableConversion(t *testing.T) {
	in := NewInsertion(1, 5)
	te := in.AsTentative()
	if te.Type != Tentative {
		t.Error("AsTentative did not mark tentative")
	}
	if in.Type != Insertion {
		t.Error("AsTentative mutated receiver")
	}
	back := te.AsStable()
	if back.Type != Insertion {
		t.Error("AsStable did not mark stable")
	}
	// Control tuples pass through unchanged.
	b := NewBoundary(3)
	if b.AsTentative().Type != Boundary {
		t.Error("AsTentative changed a boundary")
	}
	u := NewUndo(1)
	if u.AsStable().Type != Undo {
		t.Error("AsStable changed an undo")
	}
}

func TestCloneIsDeep(t *testing.T) {
	orig := NewInsertion(1, 10, 20)
	c := orig.Clone()
	c.Data[0] = 99
	if orig.Data[0] != 10 {
		t.Error("Clone shares Data with original")
	}
	empty := Tuple{}
	if got := empty.Clone(); got.Data != nil {
		t.Error("Clone of nil Data should stay nil")
	}
}

func TestFieldOutOfRange(t *testing.T) {
	tp := NewInsertion(1, 7)
	if tp.Field(0) != 7 {
		t.Error("Field(0) wrong")
	}
	if tp.Field(1) != 0 || tp.Field(-1) != 0 {
		t.Error("out-of-range Field should return 0")
	}
}

func TestLessOrdering(t *testing.T) {
	a := Tuple{STime: 1, Src: 0, ID: 5}
	b := Tuple{STime: 2, Src: 0, ID: 1}
	if !Less(a, b) || Less(b, a) {
		t.Error("STime must dominate ordering")
	}
	c := Tuple{STime: 1, Src: 1, ID: 0}
	if !Less(a, c) || Less(c, a) {
		t.Error("Src must break STime ties")
	}
	d := Tuple{STime: 1, Src: 0, ID: 6}
	if !Less(a, d) || Less(d, a) {
		t.Error("ID must break (STime, Src) ties")
	}
}

func TestEqualAndSameValue(t *testing.T) {
	a := Tuple{Type: Insertion, ID: 1, STime: 5, Data: []int64{1, 2}}
	b := a.Clone()
	if !Equal(a, b) {
		t.Error("clones must be Equal")
	}
	b.ID = 2
	if Equal(a, b) {
		t.Error("different IDs must not be Equal")
	}
	if !SameValue(a, b) {
		t.Error("SameValue ignores ID")
	}
	tb := a.AsTentative()
	if !SameValue(a, tb) {
		t.Error("SameValue ignores stability")
	}
	c := a.Clone()
	c.Data[1] = 99
	if SameValue(a, c) {
		t.Error("SameValue must compare payloads")
	}
	d := a.Clone()
	d.Data = d.Data[:1]
	if Equal(a, d) || SameValue(a, d) {
		t.Error("length mismatch must not compare equal")
	}
}

func TestCountData(t *testing.T) {
	ts := []Tuple{NewInsertion(1), NewTentative(2), NewBoundary(3), NewUndo(0), NewRecDone(4)}
	if got := CountData(ts); got != 2 {
		t.Errorf("CountData = %d, want 2", got)
	}
}

func TestApplyUndo(t *testing.T) {
	mk := func(ids ...uint64) []Tuple {
		var ts []Tuple
		for _, id := range ids {
			ts = append(ts, Tuple{Type: Insertion, ID: id})
		}
		return ts
	}
	ts := mk(1, 2, 3, 4, 5)
	got := ApplyUndo(ts, 3)
	if len(got) != 3 || got[2].ID != 3 {
		t.Errorf("ApplyUndo(…, 3) = %v", got)
	}
	// Undo before the buffered window: unchanged (IDs 10..12, undo to 3).
	ts2 := mk(10, 11, 12)
	if got := ApplyUndo(ts2, 3); len(got) != 3 {
		t.Errorf("undo before window should keep buffer, got %v", got)
	}
	// Undo to zero removes everything.
	if got := ApplyUndo(mk(1, 2), 0); len(got) != 0 {
		t.Errorf("undo to 0 should clear, got %v", got)
	}
	// Non-data tuples with a matching ID are skipped.
	mixed := []Tuple{{Type: Insertion, ID: 1}, {Type: Boundary, ID: 2}, {Type: Insertion, ID: 2}, {Type: Insertion, ID: 3}}
	got = ApplyUndo(mixed, 2)
	if len(got) != 3 || got[2].Type != Insertion || got[2].ID != 2 {
		t.Errorf("ApplyUndo should anchor on data tuples: %v", got)
	}
	// A Tentative whose provisional id collides with the undo id must NOT
	// anchor the patch: the undo names a stable prefix, so the tentative
	// run after the true anchor has to go. Anchoring on the collision kept
	// revoked tentative tuples in the client proxy's arrival log and
	// wedged its stable cursor (corpus scenario crash-inside-partition).
	collide := []Tuple{
		{Type: Insertion, ID: 1}, {Type: Insertion, ID: 2},
		{Type: Tentative, ID: 3}, {Type: Tentative, ID: 4}, {Type: Tentative, ID: 2},
	}
	got = ApplyUndo(collide, 2)
	if len(got) != 2 || got[1].Type != Insertion || got[1].ID != 2 {
		t.Errorf("ApplyUndo must anchor on the stable Insertion, not a colliding Tentative: %v", got)
	}
	// Same collision with the anchor outside the window: the fallback
	// must strip the tentative suffix rather than keep it.
	tail := []Tuple{{Type: Tentative, ID: 9}, {Type: Tentative, ID: 5}}
	if got := ApplyUndo(tail, 5); len(got) != 0 {
		t.Errorf("fallback must drop colliding tentative tuples, got %v", got)
	}
}

func TestStringFormat(t *testing.T) {
	tp := Tuple{Type: Tentative, ID: 3, STime: 9, Src: 1, Data: []int64{4}}
	s := tp.String()
	for _, want := range []string{"TENTATIVE", "id=3", "stime=9", "src=1", "data=[4]"} {
		if !contains(s, want) {
			t.Errorf("String() = %q missing %q", s, want)
		}
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

// Property: Less defines a strict weak ordering usable by sort; sorting any
// slice produces a non-decreasing (STime, Src, ID) sequence.
func TestQuickLessSorts(t *testing.T) {
	f := func(stimes []int8, srcs []int8, ids []uint8) bool {
		n := len(stimes)
		if len(srcs) < n {
			n = len(srcs)
		}
		if len(ids) < n {
			n = len(ids)
		}
		ts := make([]Tuple, n)
		for i := 0; i < n; i++ {
			ts[i] = Tuple{STime: int64(stimes[i]), Src: int32(srcs[i]), ID: uint64(ids[i])}
		}
		sort.Slice(ts, func(i, j int) bool { return Less(ts[i], ts[j]) })
		for i := 1; i < n; i++ {
			if Less(ts[i], ts[i-1]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: ApplyUndo never lengthens a buffer and the result is a prefix.
func TestQuickApplyUndoPrefix(t *testing.T) {
	f := func(ids []uint8, cut uint8) bool {
		ts := make([]Tuple, len(ids))
		for i, id := range ids {
			ts[i] = Tuple{Type: Insertion, ID: uint64(id)}
		}
		orig := make([]Tuple, len(ts))
		copy(orig, ts)
		got := ApplyUndo(ts, uint64(cut))
		if len(got) > len(orig) {
			return false
		}
		for i := range got {
			if got[i].ID != orig[i].ID {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
