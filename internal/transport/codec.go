// Package transport is the TCP implementation of the fabric surface
// (internal/fabric): the same Register/Send contract the in-process
// simulator provides, carried over real sockets between processes. Frames
// use a versioned, length-prefixed binary codec covering every message type
// that crosses netsim in a scenario run; delivery is injected into the
// receiving process's clock so node code stays single-threaded.
package transport

import (
	"encoding/binary"
	"fmt"
	"sort"

	"borealis/internal/node"
	"borealis/internal/tuple"
)

// CodecVersion is the wire-format version byte leading every frame body. A
// reader that sees any other value must drop the connection: there is no
// cross-version negotiation.
const CodecVersion = 1

// MaxFrameSize bounds the body length a reader will accept. A DataMsg
// replaying a long log is the largest legitimate frame; anything beyond
// this is a corrupt or hostile peer.
const MaxFrameSize = 64 << 20

// Frame type tags. The tag order is wire format: renumbering is a
// compatibility break and must bump CodecVersion.
const (
	tagData          = 1
	tagSubscribe     = 2
	tagUnsubscribe   = 3
	tagAck           = 4
	tagKeepAliveReq  = 5
	tagKeepAliveResp = 6
	tagReconcileReq  = 7
	tagReconcileResp = 8
	tagReconcileDone = 9
	tagFlowAck       = 10
)

// flowAck is the transport-internal credit frame of the control-frame flow
// window: the receiving process acknowledges control-class frames it has
// read, and the sender's ack reader returns the credits to the peer's
// window. It travels the reverse direction of a data connection and is
// consumed by the transport itself — it is never delivered to a handler.
type flowAck struct {
	Credits uint64
}

// subscribe flag bits (one byte on the wire; unknown bits are a decode
// error so format drift fails loudly).
const (
	subSeenTentative = 1 << 0
	subTailOnly      = 1 << 1
)

// AppendFrame appends one encoded frame — a big-endian uint32 body length
// followed by the body — to dst and returns the extended slice. The body is
// [version][tag][from][to][payload]; strings are uvarint-length-prefixed.
// Only the nine node message types plus the transport's own flowAck cross
// the fabric; anything else is a programming error.
func AppendFrame(dst []byte, from, to string, msg any) ([]byte, error) {
	lenAt := len(dst)
	dst = append(dst, 0, 0, 0, 0) // body length backpatched below
	dst = append(dst, CodecVersion)
	var err error
	switch m := msg.(type) {
	case node.DataMsg:
		dst = append(dst, tagData)
		dst = appendAddr(dst, from, to)
		dst = appendString(dst, m.Stream)
		dst = binary.AppendUvarint(dst, m.Seq)
		dst = binary.AppendUvarint(dst, uint64(len(m.Tuples)))
		for _, t := range m.Tuples {
			dst = appendTuple(dst, t)
		}
	case node.SubscribeMsg:
		dst = append(dst, tagSubscribe)
		dst = appendAddr(dst, from, to)
		dst = appendString(dst, m.Stream)
		dst = binary.AppendUvarint(dst, m.FromID)
		var flags byte
		if m.SeenTentative {
			flags |= subSeenTentative
		}
		if m.TailOnly {
			flags |= subTailOnly
		}
		dst = append(dst, flags)
	case node.UnsubscribeMsg:
		dst = append(dst, tagUnsubscribe)
		dst = appendAddr(dst, from, to)
		dst = appendString(dst, m.Stream)
	case node.AckMsg:
		dst = append(dst, tagAck)
		dst = appendAddr(dst, from, to)
		dst = appendString(dst, m.Stream)
		dst = binary.AppendUvarint(dst, m.UpToID)
	case node.KeepAliveReq:
		dst = append(dst, tagKeepAliveReq)
		dst = appendAddr(dst, from, to)
	case node.KeepAliveResp:
		dst = append(dst, tagKeepAliveResp)
		dst = appendAddr(dst, from, to)
		dst = append(dst, byte(m.Node))
		dst = binary.AppendUvarint(dst, uint64(len(m.Streams)))
		// Sorted keys: encoding must be a pure function of the value so
		// golden-byte tests (and cross-process diffing) are stable.
		keys := make([]string, 0, len(m.Streams))
		for k := range m.Streams {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			dst = appendString(dst, k)
			dst = append(dst, byte(m.Streams[k]))
		}
		// Stabilization-progress token, appended tag-compatibly after the
		// stream states: a body that simply ends here (frames from
		// binaries predating the token) decodes with a nil map, and a nil
		// map encodes to the old bytes — so decode∘encode stays the
		// identity in both directions across the format change.
		if len(m.Progress) > 0 {
			dst = binary.AppendUvarint(dst, uint64(len(m.Progress)))
			pkeys := make([]string, 0, len(m.Progress))
			for k := range m.Progress {
				pkeys = append(pkeys, k)
			}
			sort.Strings(pkeys)
			for _, k := range pkeys {
				dst = appendString(dst, k)
				dst = binary.AppendUvarint(dst, m.Progress[k])
			}
		}
	case node.ReconcileReq:
		dst = append(dst, tagReconcileReq)
		dst = appendAddr(dst, from, to)
	case node.ReconcileResp:
		dst = append(dst, tagReconcileResp)
		dst = appendAddr(dst, from, to)
		if m.Granted {
			dst = append(dst, 1)
		} else {
			dst = append(dst, 0)
		}
	case node.ReconcileDone:
		dst = append(dst, tagReconcileDone)
		dst = appendAddr(dst, from, to)
	case flowAck:
		dst = append(dst, tagFlowAck)
		dst = appendAddr(dst, from, to)
		dst = binary.AppendUvarint(dst, m.Credits)
	default:
		return dst[:lenAt], fmt.Errorf("transport: cannot encode %T", msg)
	}
	body := len(dst) - lenAt - 4
	if body > MaxFrameSize {
		return dst[:lenAt], fmt.Errorf("transport: frame body %d exceeds max %d", body, MaxFrameSize)
	}
	binary.BigEndian.PutUint32(dst[lenAt:], uint32(body))
	return dst, err
}

func appendAddr(dst []byte, from, to string) []byte {
	dst = appendString(dst, from)
	return appendString(dst, to)
}

func appendString(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

func appendTuple(dst []byte, t tuple.Tuple) []byte {
	dst = append(dst, byte(t.Type))
	dst = binary.AppendUvarint(dst, t.ID)
	dst = binary.AppendVarint(dst, t.STime)
	dst = binary.AppendVarint(dst, int64(t.Src))
	dst = binary.AppendUvarint(dst, uint64(len(t.Data)))
	for _, v := range t.Data {
		dst = binary.AppendVarint(dst, v)
	}
	return dst
}

// reader is a bounds-checked cursor over one frame body. Every read
// returns ok=false past the end instead of panicking: the decoder must
// survive arbitrary bytes from the network.
type reader struct {
	b   []byte
	pos int
}

func (r *reader) byte() (byte, bool) {
	if r.pos >= len(r.b) {
		return 0, false
	}
	c := r.b[r.pos]
	r.pos++
	return c, true
}

func (r *reader) uvarint() (uint64, bool) {
	v, n := binary.Uvarint(r.b[r.pos:])
	if n <= 0 {
		return 0, false
	}
	r.pos += n
	return v, true
}

func (r *reader) varint() (int64, bool) {
	v, n := binary.Varint(r.b[r.pos:])
	if n <= 0 {
		return 0, false
	}
	r.pos += n
	return v, true
}

func (r *reader) string() (string, bool) {
	n, ok := r.uvarint()
	if !ok || n > uint64(len(r.b)-r.pos) {
		return "", false
	}
	s := string(r.b[r.pos : r.pos+int(n)])
	r.pos += int(n)
	return s, true
}

func (r *reader) streamState() (node.StreamState, bool) {
	c, ok := r.byte()
	if !ok || c > byte(node.StateFailure) {
		return 0, false
	}
	return node.StreamState(c), true
}

var errMalformed = fmt.Errorf("transport: malformed frame")

// DecodeFrame decodes one frame body (the bytes after the uint32 length
// prefix) into its addressing and message. It never panics on malformed
// input; every syntactically invalid body — truncation, unknown tags or
// flag bits, out-of-range enum values, trailing garbage — returns an error.
func DecodeFrame(body []byte) (from, to string, msg any, err error) {
	r := &reader{b: body}
	ver, ok := r.byte()
	if !ok {
		return "", "", nil, errMalformed
	}
	if ver != CodecVersion {
		return "", "", nil, fmt.Errorf("transport: codec version %d, want %d", ver, CodecVersion)
	}
	tag, ok := r.byte()
	if !ok {
		return "", "", nil, errMalformed
	}
	from, ok = r.string()
	if !ok {
		return "", "", nil, errMalformed
	}
	to, ok = r.string()
	if !ok {
		return "", "", nil, errMalformed
	}
	switch tag {
	case tagData:
		var m node.DataMsg
		if m.Stream, ok = r.string(); !ok {
			return "", "", nil, errMalformed
		}
		if m.Seq, ok = r.uvarint(); !ok {
			return "", "", nil, errMalformed
		}
		n, ok := r.uvarint()
		if !ok {
			return "", "", nil, errMalformed
		}
		// Each encoded tuple is at least 5 bytes; reject counts the
		// remaining body cannot possibly hold before allocating.
		if n > uint64(len(r.b)-r.pos)/5+1 {
			return "", "", nil, errMalformed
		}
		if n > 0 {
			m.Tuples = make([]tuple.Tuple, 0, n)
		}
		for i := uint64(0); i < n; i++ {
			t, ok := decodeTuple(r)
			if !ok {
				return "", "", nil, errMalformed
			}
			m.Tuples = append(m.Tuples, t)
		}
		msg = m
	case tagSubscribe:
		var m node.SubscribeMsg
		if m.Stream, ok = r.string(); !ok {
			return "", "", nil, errMalformed
		}
		if m.FromID, ok = r.uvarint(); !ok {
			return "", "", nil, errMalformed
		}
		flags, ok := r.byte()
		if !ok || flags&^(subSeenTentative|subTailOnly) != 0 {
			return "", "", nil, errMalformed
		}
		m.SeenTentative = flags&subSeenTentative != 0
		m.TailOnly = flags&subTailOnly != 0
		msg = m
	case tagUnsubscribe:
		var m node.UnsubscribeMsg
		if m.Stream, ok = r.string(); !ok {
			return "", "", nil, errMalformed
		}
		msg = m
	case tagAck:
		var m node.AckMsg
		if m.Stream, ok = r.string(); !ok {
			return "", "", nil, errMalformed
		}
		if m.UpToID, ok = r.uvarint(); !ok {
			return "", "", nil, errMalformed
		}
		msg = m
	case tagKeepAliveReq:
		msg = node.KeepAliveReq{}
	case tagKeepAliveResp:
		var m node.KeepAliveResp
		if m.Node, ok = r.streamState(); !ok {
			return "", "", nil, errMalformed
		}
		n, ok := r.uvarint()
		if !ok || n > uint64(len(r.b)-r.pos)/2+1 {
			return "", "", nil, errMalformed
		}
		if n > 0 {
			m.Streams = make(map[string]node.StreamState, n)
		}
		prev := ""
		for i := uint64(0); i < n; i++ {
			k, ok := r.string()
			if !ok {
				return "", "", nil, errMalformed
			}
			// Keys must be strictly ascending: the canonical encoding
			// sorts them, and rejecting any other order (or duplicates)
			// keeps decode(encode(decode(x))) == decode(x).
			if i > 0 && k <= prev {
				return "", "", nil, errMalformed
			}
			prev = k
			s, ok := r.streamState()
			if !ok {
				return "", "", nil, errMalformed
			}
			m.Streams[k] = s
		}
		// The stabilization-progress token is optional on the wire: a
		// body ending after the stream states is a pre-token frame and
		// decodes with a nil map. When present, the section must be
		// canonical — non-empty, strictly ascending keys — so that
		// encoding stays a pure function of the value.
		if r.pos < len(r.b) {
			pn, ok := r.uvarint()
			if !ok || pn == 0 || pn > uint64(len(r.b)-r.pos)/2+1 {
				return "", "", nil, errMalformed
			}
			m.Progress = make(map[string]uint64, pn)
			prev = ""
			for i := uint64(0); i < pn; i++ {
				k, ok := r.string()
				if !ok {
					return "", "", nil, errMalformed
				}
				if i > 0 && k <= prev {
					return "", "", nil, errMalformed
				}
				prev = k
				v, ok := r.uvarint()
				if !ok {
					return "", "", nil, errMalformed
				}
				m.Progress[k] = v
			}
		}
		msg = m
	case tagReconcileReq:
		msg = node.ReconcileReq{}
	case tagReconcileResp:
		var m node.ReconcileResp
		c, ok := r.byte()
		if !ok || c > 1 {
			return "", "", nil, errMalformed
		}
		m.Granted = c == 1
		msg = m
	case tagReconcileDone:
		msg = node.ReconcileDone{}
	case tagFlowAck:
		var m flowAck
		if m.Credits, ok = r.uvarint(); !ok {
			return "", "", nil, errMalformed
		}
		msg = m
	default:
		return "", "", nil, fmt.Errorf("transport: unknown frame tag %d", tag)
	}
	if r.pos != len(r.b) {
		return "", "", nil, fmt.Errorf("transport: %d trailing bytes after frame", len(r.b)-r.pos)
	}
	return from, to, msg, nil
}

func decodeTuple(r *reader) (tuple.Tuple, bool) {
	var t tuple.Tuple
	c, ok := r.byte()
	if !ok || c > byte(tuple.RecDone) {
		return t, false
	}
	t.Type = tuple.Type(c)
	if t.ID, ok = r.uvarint(); !ok {
		return t, false
	}
	if t.STime, ok = r.varint(); !ok {
		return t, false
	}
	src, ok := r.varint()
	if !ok || src < -1<<31 || src > 1<<31-1 {
		return t, false
	}
	t.Src = int32(src)
	n, ok := r.uvarint()
	if !ok || n > uint64(len(r.b)-r.pos) {
		return t, false
	}
	if n > 0 {
		t.Data = make([]int64, n)
	}
	for i := range t.Data {
		if t.Data[i], ok = r.varint(); !ok {
			return t, false
		}
	}
	return t, true
}
