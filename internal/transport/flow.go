// Control-frame flow control: an ack-window per peer replacing
// drop-on-overflow for the frames the protocol cannot afford to lose.
//
// Frames fall into two classes. Data-plane frames (DataMsg, AckMsg) stay
// sheddable: dropping one looks like a broken connection, and DPC already
// recovers through sequence gaps and resubscription replay. Control-plane
// frames (subscribe/unsubscribe, keep-alive request/response, reconcile
// control) are never shed by the queue: each peer has a credit window of
// unacked control frames, the receiver acks every control frame it reads
// off the socket with a flowAck ridden back on the same connection, and a
// sender that exhausts the window or finds the queue full blocks with
// backoff — so a saturated replay storm degrades to slow instead of
// silently eating the subscribe that would have ended it. A stall that
// outlives CtlTimeout drops the frame (counted in DroppedCtl) so a dead or
// wedged peer cannot freeze the sender forever.

package transport

import (
	"sync"
	"time"

	"borealis/internal/node"
)

// isCtl reports whether a message is control-class: never shed by queue
// overflow, window-accounted and acked by the receiver.
func isCtl(msg any) bool {
	switch msg.(type) {
	case node.SubscribeMsg, node.UnsubscribeMsg,
		node.KeepAliveReq, node.KeepAliveResp,
		node.ReconcileReq, node.ReconcileResp, node.ReconcileDone:
		return true
	}
	return false
}

// flowWindow is one peer's control-frame credit state.
type flowWindow struct {
	mu       sync.Mutex
	inflight int
	// credit is a capacity-1 wake signal: set whenever window space may
	// have appeared (an ack arrived, or the window reset on reconnect).
	credit chan struct{}
}

func newFlowWindow() *flowWindow {
	return &flowWindow{credit: make(chan struct{}, 1)}
}

// take claims one window slot, failing when the window is exhausted.
func (w *flowWindow) take(window int) bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.inflight >= window {
		return false
	}
	w.inflight++
	return true
}

// put returns one slot claimed by take but never sent.
func (w *flowWindow) put() {
	w.mu.Lock()
	if w.inflight > 0 {
		w.inflight--
	}
	w.mu.Unlock()
	w.signal()
}

// ack returns n slots on receipt of a flowAck. Clamped at zero: after a
// reconnect reset, acks for frames of the previous connection may still
// arrive, and over-crediting must not drive the window negative.
func (w *flowWindow) ack(n uint64) {
	w.mu.Lock()
	w.inflight -= int(n)
	if w.inflight < 0 {
		w.inflight = 0
	}
	w.mu.Unlock()
	w.signal()
}

// reset clears the window on reconnect: frames written to the dead
// connection were lost along with their acks. Queued-but-unwritten frames
// keep their claims loosely — the clamp in ack absorbs the mismatch.
func (w *flowWindow) reset() {
	w.mu.Lock()
	w.inflight = 0
	w.mu.Unlock()
	w.signal()
}

func (w *flowWindow) signal() {
	select {
	case w.credit <- struct{}{}:
	default:
	}
}

// sendCtl enqueues one control-class frame, blocking with backoff while the
// peer's window or queue is full. Returns only after the frame is queued or
// the stall outlived CtlTimeout (the frame is then dropped and counted).
func (t *TCP) sendCtl(p *peer, frame []byte) {
	deadline := time.Now().Add(t.cfg.CtlTimeout)
	stalled := false
	for {
		if p.flow.take(t.cfg.CtlWindow) {
			select {
			case p.queue <- frame:
				return
			default:
				p.flow.put()
			}
		}
		if !stalled {
			stalled = true
			t.CtlStalls.Add(1)
		}
		t.mu.Lock()
		closed := t.closed
		t.mu.Unlock()
		if closed {
			t.drop(&t.DroppedDead)
			return
		}
		if time.Now().After(deadline) {
			t.drop(&t.DroppedCtl)
			return
		}
		select {
		case <-p.flow.credit:
		case <-time.After(t.cfg.CtlBackoff):
		case <-t.done:
			t.drop(&t.DroppedDead)
			return
		}
	}
}
