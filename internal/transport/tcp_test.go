package transport

import (
	"testing"
	"time"

	"borealis/internal/client"
	"borealis/internal/node"
	"borealis/internal/runtime"
	"borealis/internal/source"
	"borealis/internal/tuple"
	"borealis/internal/vtime"
)

// driveUntil drives the clock in small increments on the calling goroutine
// until cond holds (checked between increments, so it may safely read state
// the clock's callbacks write) or the real-time deadline passes.
func driveUntil(t *testing.T, clk *runtime.WallClock, d time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached before deadline")
		}
		clk.RunFor(10 * vtime.Millisecond)
	}
}

// TestTCPDelivery sends a stream of frames between two fabrics and checks
// content, per-link FIFO order, and that handlers only ever ran on the
// receiving clock's driving goroutine (the -race run enforces that: the
// counters below are unsynchronized).
func TestTCPDelivery(t *testing.T) {
	clkA, clkB := runtime.NewWall(1000), runtime.NewWall(1000)
	tB, err := Listen(clkB, Config{ListenAddr: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	defer tB.Close()
	tA, err := Listen(clkA, Config{ListenAddr: "127.0.0.1:0", Routes: map[string]string{"b": tB.Addr()}})
	if err != nil {
		t.Fatal(err)
	}
	defer tA.Close()

	var got []node.DataMsg
	var froms []string
	tB.Register("b", func(from string, msg any) {
		froms = append(froms, from)
		got = append(got, msg.(node.DataMsg))
	})
	tA.Register("a", func(string, any) {})

	const n = 200
	for i := 0; i < n; i++ {
		tA.Send("a", "b", node.DataMsg{Stream: "s", Seq: uint64(i + 1), Tuples: []tuple.Tuple{
			{Type: tuple.Insertion, ID: uint64(i), STime: int64(i * 10), Data: []int64{int64(-i)}},
		}})
	}
	driveUntil(t, clkB, 10*time.Second, func() bool { return len(got) == n })
	for i, m := range got {
		if froms[i] != "a" {
			t.Fatalf("frame %d from %q, want a", i, froms[i])
		}
		if m.Seq != uint64(i+1) {
			t.Fatalf("frame %d: seq %d, want %d (FIFO violated)", i, m.Seq, i+1)
		}
		if len(m.Tuples) != 1 || m.Tuples[0].ID != uint64(i) || m.Tuples[0].Data[0] != int64(-i) {
			t.Fatalf("frame %d: corrupted payload %v", i, m.Tuples)
		}
	}
	if d := tB.Delivered.Load(); d != n {
		t.Fatalf("Delivered = %d, want %d", d, n)
	}
}

// TestTCPLocalDelivery checks that same-process sends go through the clock
// (asynchronous, FIFO) exactly like netsim.
func TestTCPLocalDelivery(t *testing.T) {
	clk := runtime.NewWall(1000)
	tr, err := Listen(clk, Config{ListenAddr: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	var got []uint64
	tr.Register("x", func(string, any) {})
	tr.Register("y", func(from string, msg any) { got = append(got, msg.(node.AckMsg).UpToID) })
	for i := 0; i < 50; i++ {
		tr.Send("x", "y", node.AckMsg{Stream: "s", UpToID: uint64(i)})
	}
	if len(got) != 0 {
		t.Fatal("local delivery was synchronous")
	}
	clk.RunFor(vtime.Millisecond)
	if len(got) != 50 {
		t.Fatalf("got %d deliveries, want 50", len(got))
	}
	for i, v := range got {
		if v != uint64(i) {
			t.Fatalf("delivery %d: got %d (FIFO violated)", i, v)
		}
	}
}

// TestTCPDownEndpoint checks netsim-parity crash semantics: a down endpoint
// neither sends nor receives, and recovers on SetDown(false).
func TestTCPDownEndpoint(t *testing.T) {
	clk := runtime.NewWall(1000)
	tr, err := Listen(clk, Config{ListenAddr: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	var got int
	tr.Register("x", func(string, any) {})
	tr.Register("y", func(string, any) { got++ })
	tr.SetDown("x", true)
	tr.Send("x", "y", node.KeepAliveReq{})
	tr.SetDown("x", false)
	tr.SetDown("y", true)
	tr.Send("x", "y", node.KeepAliveReq{})
	clk.RunFor(vtime.Millisecond)
	if got != 0 {
		t.Fatalf("down endpoint received %d messages", got)
	}
	tr.SetDown("y", false)
	tr.Send("x", "y", node.KeepAliveReq{})
	clk.RunFor(vtime.Millisecond)
	if got != 1 {
		t.Fatalf("recovered endpoint got %d messages, want 1", got)
	}
	if d := tr.Dropped.Load(); d != 2 {
		t.Fatalf("Dropped = %d, want 2", d)
	}
}

// TestTCPReconnect kills the receiving fabric and brings a new one up on
// the same address: the sender must reconnect and later frames must flow.
// This is the transport half of process-restart: the peer sees silence and
// dropped frames, never an error surfaced to node code.
func TestTCPReconnect(t *testing.T) {
	clkA, clkB := runtime.NewWall(1000), runtime.NewWall(1000)
	tB, err := Listen(clkB, Config{ListenAddr: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	addr := tB.Addr()
	tA, err := Listen(clkA, Config{
		ListenAddr: "127.0.0.1:0",
		Routes:     map[string]string{"b": addr},
		// Short backoff so the post-restart redial happens within the
		// test deadline.
		DialBackoff: 5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer tA.Close()
	tA.Register("a", func(string, any) {})

	var got1 int
	tB.Register("b", func(string, any) { got1++ })
	tA.Send("a", "b", node.KeepAliveReq{})
	driveUntil(t, clkB, 10*time.Second, func() bool { return got1 == 1 })

	tB.Close() // SIGKILL stand-in: the peer process is gone

	tB2, err := Listen(clkB, Config{ListenAddr: addr})
	if err != nil {
		t.Fatal(err)
	}
	defer tB2.Close()
	var got2 int
	tB2.Register("b", func(string, any) { got2++ })
	deadline := time.Now().Add(10 * time.Second)
	for got2 == 0 {
		if time.Now().After(deadline) {
			t.Fatal("no delivery after restart")
		}
		// Keep sending: frames sent into the dead window are dropped,
		// exactly like socket buffers lost with a killed process.
		tA.Send("a", "b", node.KeepAliveReq{})
		clkB.RunFor(10 * vtime.Millisecond)
	}
}

// TestTCPKeepAliveTimeout is the satellite concurrency-seam test: a real
// client proxy node and a real source, on separate WallClock-driven fabrics
// connected over TCP, with the transport's socket goroutines (not the clock
// loop) injecting every delivery. The proxy's Consistency Manager must see
// the healthy upstream as STABLE, then mark it FAILURE via keep-alive
// timeout once the source's process goes silent — without the engine or CM
// ever running off the clock goroutine (the -race CI run enforces that).
func TestTCPKeepAliveTimeout(t *testing.T) {
	const speed = 50
	clkSrc, clkCli := runtime.NewWall(speed), runtime.NewWall(speed)
	tCli, err := Listen(clkCli, Config{ListenAddr: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	defer tCli.Close()
	tSrc, err := Listen(clkSrc, Config{ListenAddr: "127.0.0.1:0", Routes: map[string]string{"client": tCli.Addr()}})
	if err != nil {
		t.Fatal(err)
	}
	defer tSrc.Close()
	tCli.AddRoute("up", tSrc.Addr())

	src := source.New(clkSrc, tSrc, source.Config{ID: "up", Stream: "s", Rate: 100})
	cli, err := client.New(clkCli, tCli, client.Config{
		ID: "client", Stream: "s", Upstreams: []string{"up"},
		BucketSize: 100 * vtime.Millisecond,
		Delay:      200 * vtime.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}

	// Drive the source's clock from a background goroutine — two real
	// processes in miniature.
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			select {
			case <-stop:
				return
			default:
			}
			clkSrc.RunFor(10 * vtime.Millisecond)
		}
	}()
	defer func() { close(stop); <-done }()

	src.Start()
	cli.Start()
	cm := cli.Proxy().CM()

	// Phase 1: healthy. The proxy must be receiving data and see the
	// upstream STABLE.
	driveUntil(t, clkCli, 20*time.Second, func() bool {
		return cli.Stats().NewTuples > 0 && cm.State("s", "up") == node.StateStable
	})

	// Phase 2: the source's endpoint goes silent (its fabric drops all
	// its sends — what the peer of a SIGKILLed process observes). The
	// proxy's CM must time the replica out to FAILURE.
	tSrc.SetDown("up", true)
	driveUntil(t, clkCli, 20*time.Second, func() bool {
		return cm.State("s", "up") == node.StateFailure
	})
}

// TestTCPUnroutable checks that sending to an endpoint that is neither
// local nor routed panics: a partition-plan bug, not a runtime condition.
func TestTCPUnroutable(t *testing.T) {
	clk := runtime.NewWall(1000)
	tr, err := Listen(clk, Config{ListenAddr: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	tr.Register("x", func(string, any) {})
	defer func() {
		if recover() == nil {
			t.Fatal("send to unroutable endpoint did not panic")
		}
	}()
	tr.Send("x", "nowhere", node.KeepAliveReq{})
}

// TestTCPQueueOverflow checks the bounded-queue drop policy for data-class
// frames: a peer that never accepts connections must not block Send, and
// overflow is counted under its cause.
func TestTCPQueueOverflow(t *testing.T) {
	clk := runtime.NewWall(1000)
	// Port 1 on localhost: reserved, nothing listens; dials fail fast.
	tr, err := Listen(clk, Config{
		ListenAddr:  "127.0.0.1:0",
		Routes:      map[string]string{"gone": "127.0.0.1:1"},
		QueueLen:    8,
		DialBackoff: time.Hour, // first failure parks the writer
	})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	tr.Register("x", func(string, any) {})
	deadline := time.Now().Add(10 * time.Second)
	for tr.DroppedQueue.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("queue never overflowed")
		}
		tr.Send("x", "gone", node.AckMsg{Stream: "s", UpToID: 1})
	}
	if tr.Dropped.Load() != tr.DroppedQueue.Load() {
		t.Fatalf("aggregate Dropped=%d disagrees with DroppedQueue=%d",
			tr.Dropped.Load(), tr.DroppedQueue.Load())
	}
}

// TestTCPReconnectAfterRespawn is the regression test for the respawn
// race: a worker dies, its peers' writers park in dial backoff, and the
// replacement rebinds the same address. Without the AddRoute kick the
// sender sits out the rest of a (deliberately huge) backoff sleep; with
// it, the re-announcement of the route wakes the dialer immediately.
func TestTCPReconnectAfterRespawn(t *testing.T) {
	clkA, clkB := runtime.NewWall(1000), runtime.NewWall(1000)
	tB, err := Listen(clkB, Config{ListenAddr: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	addr := tB.Addr()
	tA, err := Listen(clkA, Config{
		ListenAddr: "127.0.0.1:0",
		Routes:     map[string]string{"b": addr},
		// A backoff far beyond the test deadline: only the kick can
		// recover the connection in time.
		DialBackoff: time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer tA.Close()
	tA.Register("a", func(string, any) {})

	var got1 int
	tB.Register("b", func(string, any) { got1++ })
	tA.Send("a", "b", node.AckMsg{Stream: "s", UpToID: 1})
	driveUntil(t, clkB, 10*time.Second, func() bool { return got1 == 1 })

	tB.Close() // the worker process is SIGKILLed

	// Queue frames while the peer is dead until the writer hits the dial
	// failure and parks in its hour-long backoff.
	deadline := time.Now().Add(10 * time.Second)
	for tA.DroppedWrite.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("writer never observed the dead peer")
		}
		tA.Send("a", "b", node.AckMsg{Stream: "s", UpToID: 2})
		time.Sleep(time.Millisecond)
	}

	// Respawn on the same address, then re-announce the (unchanged)
	// route — the boss does exactly this after a respawn.
	tB2, err := Listen(clkB, Config{ListenAddr: addr})
	if err != nil {
		t.Fatal(err)
	}
	defer tB2.Close()
	var got2 int
	tB2.Register("b", func(string, any) { got2++ })
	tA.AddRoute("b", addr)

	deadline = time.Now().Add(10 * time.Second)
	for got2 == 0 {
		if time.Now().After(deadline) {
			t.Fatal("no delivery after respawn: the route kick did not wake the dialer")
		}
		tA.Send("a", "b", node.AckMsg{Stream: "s", UpToID: 3})
		clkB.RunFor(10 * vtime.Millisecond)
	}
}

func BenchmarkCodecDataMsg(b *testing.B) {
	tuples := make([]tuple.Tuple, 64)
	for i := range tuples {
		tuples[i] = tuple.Tuple{Type: tuple.Insertion, ID: uint64(i), STime: int64(i) * 1000, Data: []int64{int64(i), int64(-i)}}
	}
	msg := node.DataMsg{Stream: "s1", Seq: 42, Tuples: tuples}
	enc, err := AppendFrame(nil, "src1", "n1", msg)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("encode", func(b *testing.B) {
		buf := make([]byte, 0, len(enc))
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			var err error
			buf, err = AppendFrame(buf[:0], "src1", "n1", msg)
			if err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("decode", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, _, _, err := DecodeFrame(enc[4:]); err != nil {
				b.Fatal(err)
			}
		}
	})
}
