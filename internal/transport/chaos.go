// Link-level fault injection: the TCP fabric's implementation of
// fabric.LinkControl. The cluster boss translates the spec's `partition`
// faults into timed SetLink block/unblock calls on the workers owning each
// side of the pair; tests and future chaos schedules can additionally
// inject one-way drops, fixed delay, and jitter-driven reordering.

package transport

import (
	"hash/fnv"

	"borealis/internal/fabric"
)

// link is one directed endpoint pair.
type link struct{ from, to string }

// linkRNG is a splitmix64 stream drawn for jittered links. Seeding from the
// endpoint names (not a global counter) keeps the draw sequence of every
// link a pure function of its name, so jitter-induced reordering is
// reproducible run to run.
type linkRNG struct{ state uint64 }

func newLinkRNG(from, to string) *linkRNG {
	h := fnv.New64a()
	h.Write([]byte(from))
	h.Write([]byte{0})
	h.Write([]byte(to))
	return &linkRNG{state: h.Sum64()}
}

func (r *linkRNG) next() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

var _ fabric.LinkControl = (*TCP)(nil)

// SetLink installs (or, with the zero LinkState, clears) the fault state of
// the directed link from → to (fabric.LinkControl). It applies to local
// deliveries and to both ends of a socket: the sender drops blocked frames
// before they reach the wire, and the receiver drops frames that arrive on
// a link it has since blocked — so a partition installed on both sides
// kills in-flight frames exactly like netsim's delivery-time check.
func (t *TCP) SetLink(from, to string, st fabric.LinkState) {
	t.mu.Lock()
	defer t.mu.Unlock()
	key := link{from, to}
	if st == (fabric.LinkState{}) {
		delete(t.links, key)
		return
	}
	t.links[key] = st
	if st.JitterUS > 0 && t.linkRNG[key] == nil {
		t.linkRNG[key] = newLinkRNG(from, to)
	}
}

// linkBlockedLocked reports whether the directed link is blocked. Callers
// hold t.mu.
func (t *TCP) linkBlockedLocked(from, to string) bool {
	return t.links[link{from, to}].Block
}

// linkDelayLocked returns the injected delivery delay for one message on
// the directed link, advancing the link's jitter stream. Callers hold t.mu.
func (t *TCP) linkDelayLocked(from, to string) int64 {
	st, ok := t.links[link{from, to}]
	if !ok {
		return 0
	}
	d := st.DelayUS
	if st.JitterUS > 0 {
		d += int64(t.linkRNG[link{from, to}].next() % uint64(st.JitterUS))
	}
	return d
}
