package transport

import (
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"borealis/internal/fabric"
	"borealis/internal/runtime"
)

// Config tunes a TCP fabric.
type Config struct {
	// ListenAddr is the address to accept peer connections on
	// ("127.0.0.1:0" picks a free port; see Addr for the bound address).
	ListenAddr string
	// Routes maps remote endpoint IDs to the listen address of the
	// process hosting them. IDs absent from Routes must be registered
	// locally before they are sent to.
	Routes map[string]string
	// DialBackoff is the real-time pause between failed connection
	// attempts to a peer (default 50ms). A killed peer process keeps its
	// writer in this loop until the respawned process listens again.
	DialBackoff time.Duration
	// QueueLen bounds each peer's outbound frame queue (default 4096).
	// Frames beyond it are dropped, like a broken connection discarding
	// its socket buffers; the DPC protocol detects the loss as a DataMsg
	// sequence gap or keep-alive timeout and re-subscribes.
	QueueLen int
}

// TCP is the fabric.Fabric implementation carrying frames over real
// sockets. Local endpoints are delivered through the clock exactly like
// netsim (handlers only ever run on the clock's driving goroutine); remote
// endpoints are resolved through Routes to peer processes.
//
// The clock must schedule safely across goroutines: socket readers inject
// deliveries via AfterCall from their own goroutines. runtime.WallClock is;
// runtime.VirtualClock is not (a virtual clock has no place to put a
// concurrent socket anyway — use netsim for virtual runs).
type TCP struct {
	clk runtime.Clock
	cfg Config
	ln  net.Listener

	mu      sync.Mutex
	local   map[string]*localEndpoint
	peers   map[string]*peer // keyed by remote address
	inbound map[net.Conn]struct{}
	closed  bool

	conns sync.WaitGroup

	deliverFn func(any)

	// Delivered counts frames handed to local handlers; Dropped counts
	// frames lost to down endpoints, full peer queues, or dead peers.
	Delivered atomic.Uint64
	Dropped   atomic.Uint64
}

var _ fabric.Fabric = (*TCP)(nil)

type localEndpoint struct {
	handler fabric.Handler
	down    bool
}

// peer is one outbound connection: a bounded frame queue drained by a
// writer goroutine that dials with backoff and reconnects on error. One
// peer per remote process keeps all (from,to) pairs routed to it in FIFO
// order — a single ordered byte stream.
type peer struct {
	addr  string
	queue chan []byte
}

type delivery struct {
	t        *TCP
	from, to string
	msg      any
}

// Listen starts a TCP fabric on the given clock. The returned fabric is
// accepting peer connections immediately; Close releases it.
func Listen(clk runtime.Clock, cfg Config) (*TCP, error) {
	if cfg.DialBackoff <= 0 {
		cfg.DialBackoff = 50 * time.Millisecond
	}
	if cfg.QueueLen <= 0 {
		cfg.QueueLen = 4096
	}
	ln, err := net.Listen("tcp", cfg.ListenAddr)
	if err != nil {
		return nil, err
	}
	t := &TCP{
		clk:     clk,
		cfg:     cfg,
		ln:      ln,
		local:   make(map[string]*localEndpoint),
		peers:   make(map[string]*peer),
		inbound: make(map[net.Conn]struct{}),
	}
	t.deliverFn = t.deliver
	t.conns.Add(1)
	go t.acceptLoop()
	return t, nil
}

// Addr returns the bound listen address (useful with ":0").
func (t *TCP) Addr() string { return t.ln.Addr().String() }

// Close stops the listener, disconnects every peer, and waits for the
// fabric's goroutines to exit. Queued-but-unsent frames are dropped.
func (t *TCP) Close() {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return
	}
	t.closed = true
	peers := make([]*peer, 0, len(t.peers))
	for _, p := range t.peers {
		peers = append(peers, p)
	}
	inbound := make([]net.Conn, 0, len(t.inbound))
	for c := range t.inbound {
		inbound = append(inbound, c)
	}
	t.mu.Unlock()
	t.ln.Close()
	for _, p := range peers {
		close(p.queue)
	}
	for _, c := range inbound {
		c.Close()
	}
	t.conns.Wait()
}

// AddRoute maps a remote endpoint ID to its process's listen address.
// Cluster workers bind their listeners first and learn each other's
// addresses afterwards, so routes arrive after Listen.
func (t *TCP) AddRoute(id, addr string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.cfg.Routes == nil {
		t.cfg.Routes = make(map[string]string)
	}
	t.cfg.Routes[id] = addr
}

// Register installs the handler for a local endpoint (fabric.Fabric).
func (t *TCP) Register(id string, h fabric.Handler) {
	if h == nil {
		panic("transport: nil handler for " + id)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	ep := t.local[id]
	if ep == nil {
		ep = &localEndpoint{}
		t.local[id] = ep
	}
	ep.handler = h
}

// SetDown marks a local endpoint crashed or alive (fabric.Fabric).
func (t *TCP) SetDown(id string, down bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	ep := t.local[id]
	if ep == nil {
		panic("transport: unknown endpoint " + id)
	}
	ep.down = down
}

// Send queues msg for delivery (fabric.Fabric). Local destinations are
// scheduled through the clock like netsim deliveries; remote destinations
// are encoded immediately (so the caller may reuse any buffers backing the
// message) and handed to the owning peer's writer.
func (t *TCP) Send(from, to string, msg any) {
	t.mu.Lock()
	src := t.local[from]
	if src == nil {
		t.mu.Unlock()
		panic(fmt.Sprintf("transport: send from unregistered endpoint %q", from))
	}
	if src.down {
		t.mu.Unlock()
		t.Dropped.Add(1)
		return
	}
	if _, isLocal := t.local[to]; isLocal {
		t.mu.Unlock()
		t.clk.AfterCall(0, t.deliverFn, &delivery{t: t, from: from, to: to, msg: msg})
		return
	}
	addr, ok := t.cfg.Routes[to]
	if !ok {
		t.mu.Unlock()
		panic(fmt.Sprintf("transport: no route to endpoint %q", to))
	}
	p := t.peers[addr]
	if p == nil {
		if t.closed {
			t.mu.Unlock()
			t.Dropped.Add(1)
			return
		}
		p = &peer{addr: addr, queue: make(chan []byte, t.cfg.QueueLen)}
		t.peers[addr] = p
		t.conns.Add(1)
		go t.writeLoop(p)
	}
	t.mu.Unlock()
	frame, err := AppendFrame(nil, from, to, msg)
	if err != nil {
		panic(err) // non-wire message type on the fabric: programming error
	}
	select {
	case p.queue <- frame:
	default:
		t.Dropped.Add(1)
	}
}

// deliver runs on the clock goroutine and hands one frame to its local
// handler, evaluating down/registered state at delivery time like netsim.
func (t *TCP) deliver(x any) {
	d := x.(*delivery)
	t.mu.Lock()
	ep := t.local[d.to]
	var h fabric.Handler
	if ep != nil && !ep.down && ep.handler != nil {
		h = ep.handler
	}
	// A send whose source endpoint crashed while the frame was in
	// flight is dropped too, matching netsim's delivery-time check.
	if src := t.local[d.from]; src != nil && src.down {
		h = nil
	}
	t.mu.Unlock()
	if h == nil {
		t.Dropped.Add(1)
		return
	}
	t.Delivered.Add(1)
	h(d.from, d.msg)
}

// writeLoop drains one peer's queue onto its connection, dialing with
// backoff and reconnecting after errors. Frames that fail to write are
// dropped — the peer sees a gap, exactly what its protocol expects from a
// broken connection.
func (t *TCP) writeLoop(p *peer) {
	defer t.conns.Done()
	var conn net.Conn
	defer func() {
		if conn != nil {
			conn.Close()
		}
	}()
	for frame := range p.queue {
		for conn == nil {
			c, err := net.DialTimeout("tcp", p.addr, time.Second)
			if err == nil {
				conn = c
				break
			}
			t.mu.Lock()
			closed := t.closed
			t.mu.Unlock()
			if closed {
				t.Dropped.Add(1)
				frame = nil
				break
			}
			time.Sleep(t.cfg.DialBackoff)
		}
		if frame == nil {
			continue
		}
		if _, err := conn.Write(frame); err != nil {
			conn.Close()
			conn = nil
			t.Dropped.Add(1)
		}
	}
}

// acceptLoop owns the listener; one readLoop goroutine per inbound
// connection.
func (t *TCP) acceptLoop() {
	defer t.conns.Done()
	for {
		conn, err := t.ln.Accept()
		if err != nil {
			return // listener closed
		}
		t.mu.Lock()
		if t.closed {
			t.mu.Unlock()
			conn.Close()
			return
		}
		t.inbound[conn] = struct{}{}
		t.mu.Unlock()
		t.conns.Add(1)
		go t.readLoop(conn)
	}
}

// readLoop decodes length-prefixed frames off one connection and injects
// them into the clock, one AfterCall per frame in read order: the clock's
// (at,seq) event ordering preserves the stream's FIFO order, and handlers
// still only ever run on the clock's driving goroutine.
func (t *TCP) readLoop(conn net.Conn) {
	defer t.conns.Done()
	defer func() {
		conn.Close()
		t.mu.Lock()
		delete(t.inbound, conn)
		t.mu.Unlock()
	}()
	var hdr [4]byte
	for {
		if _, err := io.ReadFull(conn, hdr[:]); err != nil {
			return
		}
		n := binary.BigEndian.Uint32(hdr[:])
		if n > MaxFrameSize {
			return // corrupt peer; drop the connection
		}
		body := make([]byte, n)
		if _, err := io.ReadFull(conn, body); err != nil {
			return
		}
		from, to, msg, err := DecodeFrame(body)
		if err != nil {
			return // malformed frame; drop the connection
		}
		t.mu.Lock()
		closed := t.closed
		t.mu.Unlock()
		if closed {
			return
		}
		t.clk.AfterCall(0, t.deliverFn, &delivery{t: t, from: from, to: to, msg: msg})
	}
}
