package transport

import (
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"borealis/internal/fabric"
	"borealis/internal/runtime"
)

// Config tunes a TCP fabric.
type Config struct {
	// ListenAddr is the address to accept peer connections on
	// ("127.0.0.1:0" picks a free port; see Addr for the bound address).
	ListenAddr string
	// Routes maps remote endpoint IDs to the listen address of the
	// process hosting them. IDs absent from Routes must be registered
	// locally before they are sent to.
	Routes map[string]string
	// DialBackoff is the real-time pause between failed connection
	// attempts to a peer (default 50ms). A killed peer process keeps its
	// writer in this loop until the respawned process listens again; a
	// route re-announcement (AddRoute) kicks the sleep short.
	DialBackoff time.Duration
	// QueueLen bounds each peer's outbound frame queue (default 4096).
	// Data-class frames beyond it are dropped, like a broken connection
	// discarding its socket buffers; the DPC protocol detects the loss as
	// a DataMsg sequence gap or keep-alive timeout and re-subscribes.
	// Control-class frames instead block under flow control (see flow.go).
	QueueLen int
	// CtlWindow bounds the control-class frames in flight (sent, not yet
	// acked) to one peer (default 256).
	CtlWindow int
	// CtlTimeout is how long a control-class Send may block waiting for
	// window or queue space before dropping the frame (default 2s).
	CtlTimeout time.Duration
	// CtlBackoff is the poll pause of a blocked control-class Send
	// (default 5ms).
	CtlBackoff time.Duration
}

// TCP is the fabric.Fabric implementation carrying frames over real
// sockets. Local endpoints are delivered through the clock exactly like
// netsim (handlers only ever run on the clock's driving goroutine); remote
// endpoints are resolved through Routes to peer processes.
//
// The clock must schedule safely across goroutines: socket readers inject
// deliveries via AfterCall from their own goroutines. runtime.WallClock is;
// runtime.VirtualClock is not (a virtual clock has no place to put a
// concurrent socket anyway — use netsim for virtual runs).
type TCP struct {
	clk  runtime.Clock
	cfg  Config
	ln   net.Listener
	done chan struct{} // closed by Close; unblocks writers and stalled senders

	mu      sync.Mutex
	local   map[string]*localEndpoint
	peers   map[string]*peer // keyed by remote address
	inbound map[net.Conn]struct{}
	links   map[link]fabric.LinkState
	linkRNG map[link]*linkRNG
	closed  bool

	conns sync.WaitGroup

	deliverFn func(any)

	// Delivered counts frames handed to local handlers. Dropped is the
	// aggregate loss count; the per-cause counters below partition it:
	//
	//	DroppedDown   sender or receiver endpoint down / unregistered
	//	DroppedQueue  data-class frame shed by a full peer queue
	//	DroppedDead   peer unreachable while the fabric shut down
	//	DroppedWrite  socket write error (frame lost with the connection)
	//	DroppedLink   injected link fault (partition block)
	//	DroppedCtl    control-class frame stalled past CtlTimeout
	//
	// CtlStalls counts control-class sends that had to block at least
	// once — back-pressure working as designed, not loss.
	Delivered    atomic.Uint64
	Dropped      atomic.Uint64
	DroppedDown  atomic.Uint64
	DroppedQueue atomic.Uint64
	DroppedDead  atomic.Uint64
	DroppedWrite atomic.Uint64
	DroppedLink  atomic.Uint64
	DroppedCtl   atomic.Uint64
	CtlStalls    atomic.Uint64
}

var _ fabric.Fabric = (*TCP)(nil)

// drop counts one lost frame under its cause and in the aggregate.
func (t *TCP) drop(cause *atomic.Uint64) {
	cause.Add(1)
	t.Dropped.Add(1)
}

type localEndpoint struct {
	handler fabric.Handler
	down    bool
}

// peer is one outbound connection: a bounded frame queue drained by a
// writer goroutine that dials with backoff and reconnects on error. One
// peer per remote process keeps all (from,to) pairs routed to it in FIFO
// order — a single ordered byte stream.
type peer struct {
	addr  string
	queue chan []byte
	// kick interrupts a mid-backoff dial sleep when the route to this
	// address is re-announced (the peer process respawned).
	kick chan struct{}
	flow *flowWindow
}

type delivery struct {
	t        *TCP
	from, to string
	msg      any
}

// Listen starts a TCP fabric on the given clock. The returned fabric is
// accepting peer connections immediately; Close releases it.
func Listen(clk runtime.Clock, cfg Config) (*TCP, error) {
	if cfg.DialBackoff <= 0 {
		cfg.DialBackoff = 50 * time.Millisecond
	}
	if cfg.QueueLen <= 0 {
		cfg.QueueLen = 4096
	}
	if cfg.CtlWindow <= 0 {
		cfg.CtlWindow = 256
	}
	if cfg.CtlTimeout <= 0 {
		cfg.CtlTimeout = 2 * time.Second
	}
	if cfg.CtlBackoff <= 0 {
		cfg.CtlBackoff = 5 * time.Millisecond
	}
	ln, err := net.Listen("tcp", cfg.ListenAddr)
	if err != nil {
		return nil, err
	}
	t := &TCP{
		clk:     clk,
		cfg:     cfg,
		ln:      ln,
		done:    make(chan struct{}),
		local:   make(map[string]*localEndpoint),
		peers:   make(map[string]*peer),
		inbound: make(map[net.Conn]struct{}),
		links:   make(map[link]fabric.LinkState),
		linkRNG: make(map[link]*linkRNG),
	}
	t.deliverFn = t.deliver
	t.conns.Add(1)
	go t.acceptLoop()
	return t, nil
}

// Addr returns the bound listen address (useful with ":0").
func (t *TCP) Addr() string { return t.ln.Addr().String() }

// Close stops the listener, disconnects every peer, and waits for the
// fabric's goroutines to exit. Queued-but-unsent frames are dropped.
func (t *TCP) Close() {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return
	}
	t.closed = true
	inbound := make([]net.Conn, 0, len(t.inbound))
	for c := range t.inbound {
		inbound = append(inbound, c)
	}
	t.mu.Unlock()
	close(t.done)
	t.ln.Close()
	for _, c := range inbound {
		c.Close()
	}
	t.conns.Wait()
}

// AddRoute maps a remote endpoint ID to its process's listen address.
// Cluster workers bind their listeners first and learn each other's
// addresses afterwards, so routes arrive after Listen. Re-announcing a
// route kicks the address's writer out of any dial-backoff sleep: a
// respawned peer is listening again, and waiting out the backoff would
// stretch its recovery window for nothing.
func (t *TCP) AddRoute(id, addr string) {
	t.mu.Lock()
	if t.cfg.Routes == nil {
		t.cfg.Routes = make(map[string]string)
	}
	t.cfg.Routes[id] = addr
	p := t.peers[addr]
	t.mu.Unlock()
	if p != nil {
		select {
		case p.kick <- struct{}{}:
		default:
		}
	}
}

// Register installs the handler for a local endpoint (fabric.Fabric).
func (t *TCP) Register(id string, h fabric.Handler) {
	if h == nil {
		panic("transport: nil handler for " + id)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	ep := t.local[id]
	if ep == nil {
		ep = &localEndpoint{}
		t.local[id] = ep
	}
	ep.handler = h
}

// SetDown marks a local endpoint crashed or alive (fabric.Fabric).
func (t *TCP) SetDown(id string, down bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	ep := t.local[id]
	if ep == nil {
		panic("transport: unknown endpoint " + id)
	}
	ep.down = down
}

// Send queues msg for delivery (fabric.Fabric). Local destinations are
// scheduled through the clock like netsim deliveries; remote destinations
// are encoded immediately (so the caller may reuse any buffers backing the
// message) and handed to the owning peer's writer. Control-class frames go
// through the flow window (see flow.go) and may block briefly instead of
// shedding.
func (t *TCP) Send(from, to string, msg any) {
	t.mu.Lock()
	src := t.local[from]
	if src == nil {
		t.mu.Unlock()
		panic(fmt.Sprintf("transport: send from unregistered endpoint %q", from))
	}
	if src.down {
		t.mu.Unlock()
		t.drop(&t.DroppedDown)
		return
	}
	if t.linkBlockedLocked(from, to) {
		t.mu.Unlock()
		t.drop(&t.DroppedLink)
		return
	}
	if _, isLocal := t.local[to]; isLocal {
		delay := t.linkDelayLocked(from, to)
		t.mu.Unlock()
		t.clk.AfterCall(delay, t.deliverFn, &delivery{t: t, from: from, to: to, msg: msg})
		return
	}
	addr, ok := t.cfg.Routes[to]
	if !ok {
		t.mu.Unlock()
		panic(fmt.Sprintf("transport: no route to endpoint %q", to))
	}
	p := t.peers[addr]
	if p == nil {
		if t.closed {
			t.mu.Unlock()
			t.drop(&t.DroppedDead)
			return
		}
		p = &peer{
			addr:  addr,
			queue: make(chan []byte, t.cfg.QueueLen),
			kick:  make(chan struct{}, 1),
			flow:  newFlowWindow(),
		}
		t.peers[addr] = p
		t.conns.Add(1)
		go t.writeLoop(p)
	}
	t.mu.Unlock()
	frame, err := AppendFrame(nil, from, to, msg)
	if err != nil {
		panic(err) // non-wire message type on the fabric: programming error
	}
	if isCtl(msg) {
		t.sendCtl(p, frame)
		return
	}
	select {
	case p.queue <- frame:
	default:
		t.drop(&t.DroppedQueue)
	}
}

// deliver runs on the clock goroutine and hands one frame to its local
// handler, evaluating down/registered/link state at delivery time like
// netsim: a crash or partition that happened while the frame was in flight
// kills it.
func (t *TCP) deliver(x any) {
	d := x.(*delivery)
	t.mu.Lock()
	ep := t.local[d.to]
	var h fabric.Handler
	if ep != nil && !ep.down && ep.handler != nil {
		h = ep.handler
	}
	// A send whose source endpoint crashed while the frame was in
	// flight is dropped too, matching netsim's delivery-time check.
	if src := t.local[d.from]; src != nil && src.down {
		h = nil
	}
	blocked := t.linkBlockedLocked(d.from, d.to)
	t.mu.Unlock()
	if blocked {
		t.drop(&t.DroppedLink)
		return
	}
	if h == nil {
		t.drop(&t.DroppedDown)
		return
	}
	t.Delivered.Add(1)
	h(d.from, d.msg)
}

// writeLoop drains one peer's queue onto its connection, dialing with
// backoff and reconnecting after errors. Frames that fail to write are
// dropped — the peer sees a gap, exactly what its protocol expects from a
// broken connection. Each live connection gets a companion ackLoop reading
// the receiver's flow-control credits off the reverse direction.
func (t *TCP) writeLoop(p *peer) {
	defer t.conns.Done()
	var conn net.Conn
	defer func() {
		if conn != nil {
			conn.Close()
		}
	}()
	for {
		var frame []byte
		select {
		case frame = <-p.queue:
		case <-t.done:
			return
		}
		for conn == nil {
			c, err := net.DialTimeout("tcp", p.addr, time.Second)
			if err == nil {
				conn = c
				// Control frames written to the dead connection were
				// lost with their acks; free their window slots so
				// blocked senders recover with the connection.
				p.flow.reset()
				t.conns.Add(1)
				go t.ackLoop(p, c)
				break
			}
			select {
			case <-time.After(t.cfg.DialBackoff):
			case <-p.kick:
			case <-t.done:
				t.drop(&t.DroppedDead)
				frame = nil
			}
			if frame == nil {
				break
			}
		}
		if frame == nil {
			return
		}
		if _, err := conn.Write(frame); err != nil {
			conn.Close()
			conn = nil
			t.drop(&t.DroppedWrite)
		}
	}
}

// ackLoop consumes flow-control credit frames the receiver writes back on
// an outbound connection (the writer never reads otherwise). It exits when
// the connection dies; credits are applied to the peer's window directly —
// never through the clock — so a sender blocked in sendCtl on the clock
// goroutine can still be woken.
func (t *TCP) ackLoop(p *peer, conn net.Conn) {
	defer t.conns.Done()
	var hdr [4]byte
	for {
		if _, err := io.ReadFull(conn, hdr[:]); err != nil {
			return
		}
		n := binary.BigEndian.Uint32(hdr[:])
		if n > MaxFrameSize {
			return
		}
		body := make([]byte, n)
		if _, err := io.ReadFull(conn, body); err != nil {
			return
		}
		_, _, msg, err := DecodeFrame(body)
		if err != nil {
			return
		}
		if fa, ok := msg.(flowAck); ok {
			p.flow.ack(fa.Credits)
		}
	}
}

// acceptLoop owns the listener; one readLoop goroutine per inbound
// connection.
func (t *TCP) acceptLoop() {
	defer t.conns.Done()
	for {
		conn, err := t.ln.Accept()
		if err != nil {
			return // listener closed
		}
		t.mu.Lock()
		if t.closed {
			t.mu.Unlock()
			conn.Close()
			return
		}
		t.inbound[conn] = struct{}{}
		t.mu.Unlock()
		t.conns.Add(1)
		go t.readLoop(conn)
	}
}

// readLoop decodes length-prefixed frames off one connection and injects
// them into the clock, one AfterCall per frame in read order: the clock's
// (at,seq) event ordering preserves the stream's FIFO order, and handlers
// still only ever run on the clock's driving goroutine. Control-class
// frames are acked back on the same connection the moment they are read —
// before any link-fault check, because flow control accounts for socket
// occupancy, not delivery.
func (t *TCP) readLoop(conn net.Conn) {
	defer t.conns.Done()
	defer func() {
		conn.Close()
		t.mu.Lock()
		delete(t.inbound, conn)
		t.mu.Unlock()
	}()
	var hdr [4]byte
	var ackBuf []byte
	for {
		if _, err := io.ReadFull(conn, hdr[:]); err != nil {
			return
		}
		n := binary.BigEndian.Uint32(hdr[:])
		if n > MaxFrameSize {
			return // corrupt peer; drop the connection
		}
		body := make([]byte, n)
		if _, err := io.ReadFull(conn, body); err != nil {
			return
		}
		from, to, msg, err := DecodeFrame(body)
		if err != nil {
			return // malformed frame; drop the connection
		}
		if _, isAck := msg.(flowAck); isAck {
			continue // credits only ride the reverse direction; ignore
		}
		if isCtl(msg) {
			ackBuf, err = AppendFrame(ackBuf[:0], "", "", flowAck{Credits: 1})
			if err == nil {
				// A failed ack write means the connection is dying;
				// the next ReadFull sees the error and exits.
				_, _ = conn.Write(ackBuf)
			}
		}
		t.mu.Lock()
		closed := t.closed
		blocked := t.linkBlockedLocked(from, to)
		var delay int64
		if !blocked {
			delay = t.linkDelayLocked(from, to)
		}
		t.mu.Unlock()
		if closed {
			return
		}
		if blocked {
			t.drop(&t.DroppedLink)
			continue
		}
		t.clk.AfterCall(delay, t.deliverFn, &delivery{t: t, from: from, to: to, msg: msg})
	}
}
