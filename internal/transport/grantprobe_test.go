package transport

import (
	"testing"
	"time"

	"borealis/internal/diagram"
	"borealis/internal/fabric"
	"borealis/internal/node"
	"borealis/internal/operator"
	"borealis/internal/runtime"
	"borealis/internal/tuple"
	"borealis/internal/vtime"
)

// driveBoth drives two wall clocks in small interleaved increments from the
// calling goroutine until cond holds or the real-time deadline passes.
// Between increments no callback runs, so cond may safely read state the
// clocks' callbacks write.
func driveBoth(t *testing.T, a, b *runtime.WallClock, d time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached before deadline")
		}
		a.RunFor(10 * vtime.Millisecond)
		b.RunFor(10 * vtime.Millisecond)
	}
}

func grantDiagram(t *testing.T) *diagram.Diagram {
	t.Helper()
	b := diagram.NewBuilder()
	b.Add(operator.NewSUnion("su", operator.SUnionConfig{
		Ports: 1, BucketSize: 100 * vtime.Millisecond, Delay: vtime.Second,
	}))
	b.Add(operator.NewSOutput("so"))
	b.Connect("su", "so", 0)
	b.Input("in", "su", 0)
	b.Output("out.a", "so")
	d, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// TestTCPGrantRevokedWhenDataPathBlocked runs the tentpole end to end over
// real sockets, on two fabrics with independent wall clocks: replica "a"
// (a real Node) grants a reconciliation promise to scripted peer "b" on
// the other worker. While b's data feed flows, its progress token advances
// and the grant survives well past the stall window. Then a link-level
// block cuts only the src→b data path — the a↔b keep-alive path stays up,
// so liveness probing alone would hold the grant for the full 120s
// GrantTimeout. The progress probe must instead revoke within the stall
// window, with cause "stalled" (not "silent": b answered every probe), and
// a fresh request afterwards must be granted again. The -race run enforces
// that all of this stays on the clocks' driving goroutine.
func TestTCPGrantRevokedWhenDataPathBlocked(t *testing.T) {
	const speed = 10
	clkA, clkB := runtime.NewWall(speed), runtime.NewWall(speed)
	tB, err := Listen(clkB, Config{ListenAddr: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	defer tB.Close()
	tA, err := Listen(clkA, Config{ListenAddr: "127.0.0.1:0", Routes: map[string]string{"b": tB.Addr()}})
	if err != nil {
		t.Fatal(err)
	}
	defer tA.Close()
	tB.AddRoute("a", tA.Addr())

	tA.Register("up", func(string, any) {})
	tA.Register("src", func(string, any) {})
	a, err := node.New(clkA, tA, grantDiagram(t), node.Config{
		ID:        "a",
		Peers:     []string{"b"},
		Upstreams: map[string][]string{"in": {"up"}},
	})
	if err != nil {
		t.Fatal(err)
	}

	// Scripted peer b: its stabilization-progress token is the id of the
	// last tuple its real data feed delivered. All fields live on the
	// clocks' single driving goroutine (this test goroutine).
	var lastID uint64
	var grants, rejects int
	tB.Register("b", func(from string, msg any) {
		switch m := msg.(type) {
		case node.DataMsg:
			if n := len(m.Tuples); n > 0 {
				lastID = m.Tuples[n-1].ID
			}
		case node.KeepAliveReq:
			tB.Send("b", from, node.KeepAliveResp{
				Node:     node.StateStabilization,
				Progress: map[string]uint64{"in": lastID},
			})
		case node.ReconcileResp:
			if m.Granted {
				grants++
			} else {
				rejects++
			}
		}
	})

	// b's data feed: fresh tuples from src every 50ms, across the socket.
	var seq, id uint64
	feeder := clkA.NewTicker(50*vtime.Millisecond, func() {
		seq++
		id++
		tA.Send("src", "b", node.DataMsg{Stream: "in", Seq: seq, Tuples: []tuple.Tuple{
			{Type: tuple.Insertion, ID: id, STime: int64(id)},
		}})
	})
	defer feeder.Stop()

	a.Start()
	tB.Send("b", "a", node.ReconcileReq{})
	driveBoth(t, clkA, clkB, 20*time.Second, func() bool { return grants == 1 })

	// Two stall windows with the data path open: the advancing token must
	// keep the grant alive.
	window := node.DefaultGrantStallWindow(0, 0)
	hold := clkA.Now() + 2*window
	driveBoth(t, clkA, clkB, 20*time.Second, func() bool { return clkA.Now() >= hold })
	if n := a.CM().GrantRevokedStalled + a.CM().GrantRevokedDone + a.CM().GrantRevokedSilent; n != 0 {
		t.Fatalf("grant revoked (%d times) while the peer's token was advancing", n)
	}

	// Cut only the data path. Keep-alives between a and b keep flowing.
	tA.SetLink("src", "b", fabric.LinkState{Block: true})
	blockedAt := clkA.Now()
	driveBoth(t, clkA, clkB, 20*time.Second, func() bool { return a.CM().GrantRevokedStalled == 1 })
	elapsed := clkA.Now() - blockedAt
	if elapsed > 2*window {
		t.Fatalf("revocation took %dµs, want within 2× the %dµs stall window", elapsed, window)
	}
	if a.CM().GrantRevokedSilent != 0 {
		t.Fatal("revocation cause was silence — the keep-alive path must have stayed up")
	}
	if a.CM().GrantTimeouts != 0 {
		t.Fatal("the 120s GrantTimeout backstop fired; the progress probe did not")
	}

	// Revocation is not a ban: b re-requests and is granted again.
	tB.Send("b", "a", node.ReconcileReq{})
	driveBoth(t, clkA, clkB, 20*time.Second, func() bool { return grants == 2 })
}
