package transport

import (
	"bytes"
	"encoding/binary"
	"reflect"
	"testing"

	"borealis/internal/node"
	"borealis/internal/tuple"
)

// allFrames is one representative value per wire message type, exercising
// every field.
func allFrames() []struct {
	from, to string
	msg      any
} {
	return []struct {
		from, to string
		msg      any
	}{
		{"src1", "n1", node.DataMsg{Stream: "s1", Seq: 7, Tuples: []tuple.Tuple{
			{Type: tuple.Insertion, ID: 1, STime: 1000, Src: 0, Data: []int64{42, -7}},
			{Type: tuple.Tentative, ID: 2, STime: 1010, Src: 3, Data: []int64{-1}},
			{Type: tuple.Boundary, STime: 1100},
			{Type: tuple.Undo, ID: 1},
			{Type: tuple.RecDone, STime: 1200},
		}}},
		{"n1", "src1", node.SubscribeMsg{Stream: "s1", FromID: 12, SeenTentative: true}},
		{"n1", "src1", node.SubscribeMsg{Stream: "s1", TailOnly: true}},
		{"n1", "src1", node.UnsubscribeMsg{Stream: "s1"}},
		{"n1", "src1", node.AckMsg{Stream: "s1", UpToID: 99}},
		{"n1", "n2", node.KeepAliveReq{}},
		{"n2", "n1", node.KeepAliveResp{Node: node.StateUpFailure, Streams: map[string]node.StreamState{
			"s_out": node.StateStabilization, "a_out": node.StateStable}}},
		{"n2", "n1", node.KeepAliveResp{Node: node.StateStabilization, Streams: map[string]node.StreamState{
			"s_out": node.StateStabilization},
			Progress: map[string]uint64{"s1": 1172, "s2": 0}}},
		{"n2", "n2b", node.ReconcileReq{}},
		{"n2b", "n2", node.ReconcileResp{Granted: true}},
		{"n2b", "n2", node.ReconcileResp{}},
		{"n2", "n2b", node.ReconcileDone{}},
		{"", "", flowAck{Credits: 3}},
	}
}

func TestCodecRoundTrip(t *testing.T) {
	for _, f := range allFrames() {
		enc, err := AppendFrame(nil, f.from, f.to, f.msg)
		if err != nil {
			t.Fatalf("encode %T: %v", f.msg, err)
		}
		if n := binary.BigEndian.Uint32(enc); int(n) != len(enc)-4 {
			t.Fatalf("%T: length prefix %d, body %d", f.msg, n, len(enc)-4)
		}
		from, to, msg, err := DecodeFrame(enc[4:])
		if err != nil {
			t.Fatalf("decode %T: %v", f.msg, err)
		}
		if from != f.from || to != f.to {
			t.Fatalf("%T: addr (%q,%q), want (%q,%q)", f.msg, from, to, f.from, f.to)
		}
		if !reflect.DeepEqual(msg, f.msg) {
			t.Fatalf("round trip %T:\n got %#v\nwant %#v", f.msg, msg, f.msg)
		}
	}
}

func TestCodecAppendsInPlace(t *testing.T) {
	var buf []byte
	var offs []int
	for _, f := range allFrames() {
		offs = append(offs, len(buf))
		var err error
		buf, err = AppendFrame(buf, f.from, f.to, f.msg)
		if err != nil {
			t.Fatal(err)
		}
	}
	for i, f := range allFrames() {
		n := binary.BigEndian.Uint32(buf[offs[i]:])
		body := buf[offs[i]+4 : offs[i]+4+int(n)]
		_, _, msg, err := DecodeFrame(body)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if !reflect.DeepEqual(msg, f.msg) {
			t.Fatalf("frame %d: got %#v want %#v", i, msg, f.msg)
		}
	}
}

func TestCodecRejectsUnknownType(t *testing.T) {
	if _, err := AppendFrame(nil, "a", "b", struct{ X int }{1}); err == nil {
		t.Fatal("encoding a non-wire type should fail")
	}
}

// TestCodecGolden pins the exact byte layout of representative frames. A
// failure here means the wire format changed: bump CodecVersion and
// regenerate, because old and new binaries can no longer interoperate.
func TestCodecGolden(t *testing.T) {
	cases := []struct {
		name     string
		from, to string
		msg      any
		want     []byte
	}{
		{
			name: "data",
			from: "s", to: "n",
			msg: node.DataMsg{Stream: "x", Seq: 5, Tuples: []tuple.Tuple{
				{Type: tuple.Insertion, ID: 3, STime: -2, Src: 1, Data: []int64{7}},
				{Type: tuple.Boundary, STime: 10},
			}},
			want: []byte{
				0, 0, 0, 21, // body length
				1, 1, // version, tagData
				1, 's', 1, 'n', // from, to
				1, 'x', // stream
				5,                 // seq
				2,                 // tuple count
				0, 3, 3, 2, 1, 14, // INSERTION id=3 stime=-2(zigzag 3) src=1(zigzag 2) 1 datum 7(zigzag 14)
				2, 0, 20, 0, 0, // BOUNDARY id=0 stime=10(zigzag 20) src=0 no data
			},
		},
		{
			name: "subscribe",
			from: "n", to: "s",
			msg:  node.SubscribeMsg{Stream: "x", FromID: 12, SeenTentative: true, TailOnly: false},
			want: []byte{0, 0, 0, 10, 1, 2, 1, 'n', 1, 's', 1, 'x', 12, 1},
		},
		{
			name: "keepaliveresp",
			from: "b", to: "a",
			msg: node.KeepAliveResp{Node: node.StateStable, Streams: map[string]node.StreamState{
				"z": node.StateUpFailure, "a": node.StateStable}},
			want: []byte{
				0, 0, 0, 14, 1, 6, 1, 'b', 1, 'a',
				0,         // node state STABLE
				2,         // stream count
				1, 'a', 0, // "a" STABLE (sorted first)
				1, 'z', 1, // "z" UP_FAILURE
			},
		},
		{
			name: "keepaliveresp-progress",
			from: "b", to: "a",
			msg: node.KeepAliveResp{Node: node.StateStable,
				Streams:  map[string]node.StreamState{"a": node.StateStable},
				Progress: map[string]uint64{"p": 7, "q": 300}},
			want: []byte{
				0, 0, 0, 19, 1, 6, 1, 'b', 1, 'a',
				0,         // node state STABLE
				1,         // stream count
				1, 'a', 0, // "a" STABLE
				2,         // progress count (section present: non-empty map)
				1, 'p', 7, // "p" last stable id 7
				1, 'q', 0xac, 0x02, // "q" last stable id 300 (uvarint)
			},
		},
		{
			name: "keepalivereq",
			from: "a", to: "b",
			msg:  node.KeepAliveReq{},
			want: []byte{0, 0, 0, 6, 1, 5, 1, 'a', 1, 'b'},
		},
		{
			name: "reconcileresp",
			from: "a", to: "b",
			msg:  node.ReconcileResp{Granted: true},
			want: []byte{0, 0, 0, 7, 1, 8, 1, 'a', 1, 'b', 1},
		},
		{
			name: "flowack",
			from: "", to: "",
			msg:  flowAck{Credits: 1},
			want: []byte{0, 0, 0, 5, 1, 10, 0, 0, 1},
		},
	}
	for _, c := range cases {
		got, err := AppendFrame(nil, c.from, c.to, c.msg)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if !bytes.Equal(got, c.want) {
			t.Errorf("%s: wire layout changed\n got %v\nwant %v", c.name, got, c.want)
		}
	}
}

// TestCodecOldKeepAliveRespCompat proves the stabilization-progress token
// was added tag-compatibly: a KeepAliveResp body from a binary predating
// the token — ending right after the stream states — decodes cleanly with
// a nil Progress map, and re-encoding that value reproduces the old bytes
// exactly. Mixed-version clusters mid-rolling-upgrade depend on both
// directions.
func TestCodecOldKeepAliveRespCompat(t *testing.T) {
	old := []byte{
		1, 6, 1, 'b', 1, 'a',
		1,         // node state UP_FAILURE
		2,         // stream count
		1, 'a', 0, // "a" STABLE
		1, 'z', 2, // "z" STABILIZATION
	}
	from, to, msg, err := DecodeFrame(old)
	if err != nil {
		t.Fatalf("old-layout frame must decode: %v", err)
	}
	ka, ok := msg.(node.KeepAliveResp)
	if !ok {
		t.Fatalf("decoded %T, want KeepAliveResp", msg)
	}
	if ka.Progress != nil {
		t.Fatalf("old-layout frame must decode with nil Progress, got %v", ka.Progress)
	}
	reenc, err := AppendFrame(nil, from, to, ka)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(reenc[4:], old) {
		t.Fatalf("nil Progress must re-encode to the old bytes\n got % x\nwant % x", reenc[4:], old)
	}
}

// TestCodecMalformed feeds systematically broken bodies to the decoder:
// every one must return an error without panicking.
func TestCodecMalformed(t *testing.T) {
	bad := [][]byte{
		nil,
		{},
		{2},                                   // wrong version
		{1},                                   // no tag
		{1, 99, 1, 'a', 1, 'b'},               // unknown tag
		{1, 1, 5, 'a'},                        // from length overruns
		{1, 1, 1, 'a', 9, 'b'},                // to length overruns
		{1, 5, 1, 'a', 1, 'b', 0},             // trailing byte after KeepAliveReq
		{1, 8, 1, 'a', 1, 'b', 2},             // ReconcileResp bool out of range
		{1, 2, 1, 'a', 1, 'b', 1, 'x', 12, 4}, // unknown subscribe flag bit
		{1, 6, 1, 'a', 1, 'b', 7, 0},          // KeepAliveResp state out of range
		{1, 6, 1, 'a', 1, 'b', 0, 2, 1, 'z', 0, 1, 'a', 0},                 // map keys out of order
		{1, 6, 1, 'a', 1, 'b', 0, 2, 1, 'a', 0, 1, 'a', 0},                 // duplicate map key
		{1, 6, 1, 'a', 1, 'b', 0, 0, 0},                                    // progress section with count 0 (non-canonical)
		{1, 6, 1, 'a', 1, 'b', 0, 0, 2, 1, 'b', 1, 1, 'a', 1},              // progress keys out of order
		{1, 6, 1, 'a', 1, 'b', 0, 0, 2, 1, 'a', 1, 1, 'a', 1},              // duplicate progress key
		{1, 6, 1, 'a', 1, 'b', 0, 0, 1, 1, 'a'},                            // truncated progress value
		{1, 1, 1, 'a', 1, 'b', 1, 'x', 1, 200, 200, 200, 200},              // absurd tuple count
		{1, 1, 1, 'a', 1, 'b', 1, 'x', 1, 1, 9, 0, 0, 0, 0},                // tuple type out of range
		{1, 1, 1, 'a', 1, 'b', 1, 'x', 1, 1, 0, 1},                         // truncated tuple
		{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff}, // varint junk
	}
	// Every truncation of a valid frame must also fail cleanly.
	full, err := AppendFrame(nil, "src1", "n1", node.DataMsg{Stream: "s", Seq: 1, Tuples: []tuple.Tuple{
		{Type: tuple.Insertion, ID: 1, STime: 5, Data: []int64{1, 2}}}})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < len(full)-4; i++ {
		bad = append(bad, full[4:4+i])
	}
	for i, b := range bad {
		if _, _, _, err := DecodeFrame(b); err == nil {
			t.Errorf("case %d (% x): decode succeeded, want error", i, b)
		}
	}
}

// FuzzFrameCodec is the satellite fuzz harness: arbitrary bytes must never
// panic the decoder, and any body that decodes must round-trip exactly —
// re-encoding the decoded frame and decoding again yields the same value
// and the same canonical bytes (second-generation round trip, so
// non-canonical inputs such as overlong varints can't trip DeepEqual).
func FuzzFrameCodec(f *testing.F) {
	for _, fr := range allFrames() {
		enc, err := AppendFrame(nil, fr.from, fr.to, fr.msg)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(enc[4:])
	}
	f.Add([]byte{1, 1, 0, 0})
	f.Fuzz(func(t *testing.T, body []byte) {
		from, to, msg, err := DecodeFrame(body)
		if err != nil {
			return
		}
		enc, err := AppendFrame(nil, from, to, msg)
		if err != nil {
			t.Fatalf("decoded frame failed to re-encode: %v (%#v)", err, msg)
		}
		from2, to2, msg2, err := DecodeFrame(enc[4:])
		if err != nil {
			t.Fatalf("re-encoded frame failed to decode: %v", err)
		}
		if from2 != from || to2 != to || !reflect.DeepEqual(msg2, msg) {
			t.Fatalf("round trip diverged:\n first (%q,%q) %#v\nsecond (%q,%q) %#v",
				from, to, msg, from2, to2, msg2)
		}
		enc2, err := AppendFrame(nil, from2, to2, msg2)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(enc, enc2) {
			t.Fatalf("canonical encoding unstable:\n% x\n% x", enc, enc2)
		}
	})
}
