package transport

import (
	"testing"
	"time"

	"borealis/internal/fabric"
	"borealis/internal/node"
	"borealis/internal/runtime"
	"borealis/internal/vtime"
)

// TestTCPLinkBlockLocal checks outbound blocking on a local pair: a blocked
// directed link drops at Send, the reverse direction stays open, and
// clearing the state with the zero LinkState heals the link.
func TestTCPLinkBlockLocal(t *testing.T) {
	clk := runtime.NewWall(1000)
	tr, err := Listen(clk, Config{ListenAddr: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	var gotY, gotX int
	tr.Register("x", func(string, any) { gotX++ })
	tr.Register("y", func(string, any) { gotY++ })

	tr.SetLink("x", "y", fabric.LinkState{Block: true})
	tr.Send("x", "y", node.AckMsg{Stream: "s", UpToID: 1})
	tr.Send("y", "x", node.AckMsg{Stream: "s", UpToID: 1}) // reverse is one-way open
	clk.RunFor(vtime.Millisecond)
	if gotY != 0 {
		t.Fatalf("blocked link delivered %d frames", gotY)
	}
	if gotX != 1 {
		t.Fatalf("reverse direction delivered %d frames, want 1", gotX)
	}
	if d := tr.DroppedLink.Load(); d != 1 {
		t.Fatalf("DroppedLink = %d, want 1", d)
	}

	tr.SetLink("x", "y", fabric.LinkState{}) // heal
	tr.Send("x", "y", node.AckMsg{Stream: "s", UpToID: 2})
	clk.RunFor(vtime.Millisecond)
	if gotY != 1 {
		t.Fatalf("healed link delivered %d frames, want 1", gotY)
	}
}

// TestTCPLinkBlockInbound checks receiver-side blocking over a real socket:
// frames arriving on a blocked link are dropped off the wire (counted on the
// receiving fabric), and delivery resumes on heal.
func TestTCPLinkBlockInbound(t *testing.T) {
	clkA, clkB := runtime.NewWall(1000), runtime.NewWall(1000)
	tB, err := Listen(clkB, Config{ListenAddr: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	defer tB.Close()
	tA, err := Listen(clkA, Config{ListenAddr: "127.0.0.1:0", Routes: map[string]string{"b": tB.Addr()}})
	if err != nil {
		t.Fatal(err)
	}
	defer tA.Close()
	tA.Register("a", func(string, any) {})
	var got int
	tB.Register("b", func(string, any) { got++ })

	tB.SetLink("a", "b", fabric.LinkState{Block: true})
	tA.Send("a", "b", node.AckMsg{Stream: "s", UpToID: 1})
	// The drop happens on tB's socket reader, not through the clock.
	deadline := time.Now().Add(10 * time.Second)
	for tB.DroppedLink.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("receiver never dropped the blocked frame")
		}
		clkB.RunFor(vtime.Millisecond)
	}
	if got != 0 {
		t.Fatalf("blocked inbound link delivered %d frames", got)
	}

	tB.SetLink("a", "b", fabric.LinkState{})
	tA.Send("a", "b", node.AckMsg{Stream: "s", UpToID: 2})
	driveUntil(t, clkB, 10*time.Second, func() bool { return got == 1 })
}

// TestTCPLinkDeliveryTimeBlock checks netsim parity: a frame already in
// flight (scheduled through the clock) dies if the partition lands before
// its delivery time.
func TestTCPLinkDeliveryTimeBlock(t *testing.T) {
	clk := runtime.NewWall(1000)
	tr, err := Listen(clk, Config{ListenAddr: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	var got int
	tr.Register("x", func(string, any) {})
	tr.Register("y", func(string, any) { got++ })

	// Give the frame 50ms of flight time, then block mid-flight.
	tr.SetLink("x", "y", fabric.LinkState{DelayUS: int64(50 * vtime.Millisecond)})
	tr.Send("x", "y", node.AckMsg{Stream: "s", UpToID: 1})
	tr.SetLink("x", "y", fabric.LinkState{Block: true})
	clk.RunFor(100 * vtime.Millisecond)
	if got != 0 {
		t.Fatal("in-flight frame survived a partition that landed before delivery")
	}
	if d := tr.DroppedLink.Load(); d != 1 {
		t.Fatalf("DroppedLink = %d, want 1", d)
	}
}

// TestTCPLinkDelay checks that an injected delay stretches delivery by at
// least DelayUS of virtual time.
func TestTCPLinkDelay(t *testing.T) {
	clk := runtime.NewWall(1000)
	tr, err := Listen(clk, Config{ListenAddr: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	const delay = int64(30 * vtime.Millisecond)
	var deliveredAt int64 = -1
	tr.Register("x", func(string, any) {})
	tr.Register("y", func(string, any) { deliveredAt = clk.Now() })

	tr.SetLink("x", "y", fabric.LinkState{DelayUS: delay})
	sentAt := clk.Now()
	tr.Send("x", "y", node.AckMsg{Stream: "s", UpToID: 1})
	clk.RunFor(100 * vtime.Millisecond)
	if deliveredAt < 0 {
		t.Fatal("delayed frame never delivered")
	}
	if lat := deliveredAt - sentAt; lat < delay {
		t.Fatalf("delivered after %dus, want >= %dus", lat, delay)
	}
}

// TestLinkJitterDeterminism checks the jitter stream contract both ways:
// the raw RNG is a pure function of the link name, and a jittered link
// actually reorders — identically across two independent fabrics.
func TestLinkJitterDeterminism(t *testing.T) {
	r1, r2 := newLinkRNG("a", "b"), newLinkRNG("a", "b")
	other := newLinkRNG("b", "a")
	same, diff := true, false
	for i := 0; i < 64; i++ {
		v := r1.next()
		if v != r2.next() {
			same = false
		}
		if v != other.next() {
			diff = true
		}
	}
	if !same {
		t.Fatal("same link name produced different jitter streams")
	}
	if !diff {
		t.Fatal("distinct links share a jitter stream")
	}

	run := func() []uint64 {
		clk := runtime.NewWall(1000)
		tr, err := Listen(clk, Config{ListenAddr: "127.0.0.1:0"})
		if err != nil {
			t.Fatal(err)
		}
		defer tr.Close()
		var order []uint64
		tr.Register("x", func(string, any) {})
		tr.Register("y", func(_ string, msg any) { order = append(order, msg.(node.AckMsg).UpToID) })
		tr.SetLink("x", "y", fabric.LinkState{JitterUS: int64(20 * vtime.Millisecond)})
		const n = 50
		for i := 0; i < n; i++ {
			tr.Send("x", "y", node.AckMsg{Stream: "s", UpToID: uint64(i)})
		}
		clk.RunFor(100 * vtime.Millisecond)
		if len(order) != n {
			t.Fatalf("delivered %d of %d jittered frames", len(order), n)
		}
		return order
	}
	first, second := run(), run()
	inOrder := true
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("jitter not deterministic: runs diverge at %d (%d vs %d)", i, first[i], second[i])
		}
		if first[i] != uint64(i) {
			inOrder = false
		}
	}
	if inOrder {
		t.Fatal("jittered link delivered strictly FIFO: no reordering injected")
	}
}

// TestTCPCtlFlowBackpressure checks the flow-control guarantee on a live
// peer: with a control window of 1, a burst of control frames degrades to
// slow (stalls counted) but every frame arrives — none are shed.
func TestTCPCtlFlowBackpressure(t *testing.T) {
	clkA, clkB := runtime.NewWall(1000), runtime.NewWall(1000)
	tB, err := Listen(clkB, Config{ListenAddr: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	defer tB.Close()
	tA, err := Listen(clkA, Config{
		ListenAddr: "127.0.0.1:0",
		Routes:     map[string]string{"b": tB.Addr()},
		CtlWindow:  1,
		CtlBackoff: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer tA.Close()
	tA.Register("a", func(string, any) {})
	var got int
	tB.Register("b", func(string, any) { got++ })

	const n = 50
	for i := 0; i < n; i++ {
		tA.Send("a", "b", node.KeepAliveReq{})
	}
	driveUntil(t, clkB, 20*time.Second, func() bool { return got == n })
	if d := tA.DroppedCtl.Load(); d != 0 {
		t.Fatalf("live peer shed %d control frames", d)
	}
	if d := tA.Dropped.Load(); d != 0 {
		t.Fatalf("live peer dropped %d frames", d)
	}
	if tA.CtlStalls.Load() == 0 {
		t.Fatal("window of 1 never stalled a 50-frame control burst")
	}
}

// TestTCPCtlTimeoutDrop checks the liveness escape hatch: a control send
// stalled on a dead peer past CtlTimeout drops the frame and counts it,
// instead of freezing the sender forever.
func TestTCPCtlTimeoutDrop(t *testing.T) {
	clk := runtime.NewWall(1000)
	tr, err := Listen(clk, Config{
		ListenAddr:  "127.0.0.1:0",
		Routes:      map[string]string{"gone": "127.0.0.1:1"},
		QueueLen:    2,
		DialBackoff: time.Hour,
		CtlTimeout:  50 * time.Millisecond,
		CtlBackoff:  time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	tr.Register("x", func(string, any) {})
	deadline := time.Now().Add(10 * time.Second)
	for tr.DroppedCtl.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("stalled control send never timed out")
		}
		tr.Send("x", "gone", node.KeepAliveReq{})
	}
	if tr.CtlStalls.Load() == 0 {
		t.Fatal("timed-out control send was never counted as stalled")
	}
	if tr.DroppedQueue.Load() != 0 {
		t.Fatal("control frames were shed by the queue instead of flow control")
	}
}
