package fuzz

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"borealis/internal/scenario"
)

// soakPool loads the real mutation pool (regression corpus + curated
// scenarios) so soak tests exercise the same specs campaigns mutate.
func soakPool(t *testing.T) []*scenario.Spec {
	t.Helper()
	pool, err := LoadPool("../../scenarios/corpus", "../../scenarios")
	if err != nil {
		t.Fatal(err)
	}
	if len(pool) == 0 {
		t.Fatal("empty mutation pool")
	}
	return pool
}

// TestSoakResumeDeterministic is the resume contract: a campaign
// interrupted after one batch and resumed from its checkpoint must end
// in a state byte-identical to the same campaign run uninterrupted.
func TestSoakResumeDeterministic(t *testing.T) {
	dir := t.TempDir()
	pool := soakPool(t)
	opts := SoakOptions{
		Seed:         21,
		BatchRuns:    5,
		MaxBatches:   3,
		MutationPool: pool,
	}

	straight := opts
	straight.Checkpoint = filepath.Join(dir, "straight.json")
	if _, err := Soak(straight); err != nil {
		t.Fatal(err)
	}

	resumed := opts
	resumed.Checkpoint = filepath.Join(dir, "resumed.json")
	interrupted := resumed
	interrupted.MaxBatches = 1
	if _, err := Soak(interrupted); err != nil {
		t.Fatal(err)
	}
	if _, err := Soak(resumed); err != nil {
		t.Fatal(err)
	}

	a, err := os.ReadFile(straight.Checkpoint)
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(resumed.Checkpoint)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatalf("resumed state differs from uninterrupted state:\n--- straight ---\n%s\n--- resumed ---\n%s", a, b)
	}
}

// TestSoakParallelismInvariant: worker count must not leak into the
// campaign state.
func TestSoakParallelismInvariant(t *testing.T) {
	pool := soakPool(t)
	run := func(parallelism int) []byte {
		st, err := Soak(SoakOptions{
			Seed:         33,
			BatchRuns:    6,
			MaxBatches:   1,
			Parallelism:  parallelism,
			MutationPool: pool,
		})
		if err != nil {
			t.Fatal(err)
		}
		b, err := json.Marshal(st)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	serial := run(1)
	parallel := run(0)
	if !bytes.Equal(serial, parallel) {
		t.Fatalf("soak state depends on parallelism:\nserial:   %s\nparallel: %s", serial, parallel)
	}
}

// TestSoakChecksDifferential: the -differential soak mode must accept a
// clean batch (the protocol is currently finding-free) without slowing
// to a crawl — a smoke of the wiring, not a hunt.
func TestSoakChecksDifferential(t *testing.T) {
	if testing.Short() {
		t.Skip("differential soak runs each spec ~10 times")
	}
	st, err := Soak(SoakOptions{Seed: 7, BatchRuns: 3, MaxBatches: 1, Differential: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Findings) != 0 {
		t.Fatalf("unexpected findings: %+v", st.Findings)
	}
}

// TestSoakCheckpointMismatch: resuming under different campaign
// parameters must refuse, not silently mix two seed streams.
func TestSoakCheckpointMismatch(t *testing.T) {
	path := filepath.Join(t.TempDir(), "soak.json")
	if _, err := Soak(SoakOptions{Seed: 1, BatchRuns: 2, MaxBatches: 1, Checkpoint: path}); err != nil {
		t.Fatal(err)
	}
	if _, err := Soak(SoakOptions{Seed: 2, BatchRuns: 2, MaxBatches: 2, Checkpoint: path}); err == nil {
		t.Fatal("resume with a different seed should fail")
	}
}

// TestMutateValidDeterministic: every mutant must validate, and the
// mutation must be a pure function of (base, seed).
func TestMutateValidDeterministic(t *testing.T) {
	pool := soakPool(t)
	for _, base := range pool {
		for seed := int64(0); seed < 20; seed++ {
			m1 := Mutate(base, seed)
			if err := m1.Validate(); err != nil {
				t.Fatalf("mutant of %s (seed %d) invalid: %v", base.Name, seed, err)
			}
			m2 := Mutate(base, seed)
			b1, _ := json.Marshal(m1)
			b2, _ := json.Marshal(m2)
			if !bytes.Equal(b1, b2) {
				t.Fatalf("mutation of %s (seed %d) is not deterministic", base.Name, seed)
			}
		}
	}
}
