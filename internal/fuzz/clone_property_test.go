package fuzz

import (
	"encoding/json"
	"testing"

	"borealis/internal/scenario"
)

// scramble mutates every reference-typed and scalar part of a spec it
// can reach: slices of structs, nested slices, override pointers, and
// the plain fields. Paired with Clone, it is the aliasing probe — any
// slice or pointer Clone forgot to copy shows up as the counterpart spec
// changing under the scramble.
func scramble(s *scenario.Spec) {
	s.Name += "-mutated"
	s.Seed ^= 0x5555
	s.DurationS += 13
	s.Defaults.DelayS += 1
	s.Defaults.Replicas++
	s.Client.DelayMS += 7
	s.Client.Input += "x"
	for i := range s.Sources {
		src := &s.Sources[i]
		src.Rate += 1000
		src.Count += 5
		src.Distribution = "scrambled"
		src.Workload.Kind += "x"
		src.Workload.PeriodS += 9
		src.Workload.ToRate += 9
	}
	for i := range s.Nodes {
		n := &s.Nodes[i]
		n.Name += "x"
		for j := range n.Inputs {
			n.Inputs[j] = "hijacked"
		}
		n.Inputs = append(n.Inputs, "extra")
		if n.Replicas != nil {
			*n.Replicas += 11
		}
		if n.DelayS != nil {
			*n.DelayS += 11
		}
		if n.Capacity != nil {
			*n.Capacity += 11
		}
		n.FailurePolicy += "x"
		n.Cascade = !n.Cascade
		for j := range n.Operators {
			op := &n.Operators[j]
			op.Kind += "x"
			op.Modulo += 3
			op.WindowMS += 3
			if op.GroupField != nil {
				*op.GroupField += 3
			}
		}
		n.Operators = append(n.Operators, scenario.OperatorSpec{Kind: "injected"})
	}
	for i := range s.Faults {
		f := &s.Faults[i]
		f.Kind += "x"
		f.Node += "x"
		f.Source += "x"
		f.From += "x"
		f.To += "x"
		f.AtS += 99
		f.DurationS += 99
		f.PeriodS += 99
		f.Count += 99
		f.Replica += 99
	}
	s.Faults = append(s.Faults, scenario.FaultSpec{Kind: "injected"})
}

// TestCloneAliasingOnGeneratedSpecs extends clone_test.go beyond the
// curated shapes: for generator-produced specs covering every fault kind
// and workload kind, mutating a clone must never touch the original and
// vice versa. The seed range is chosen wide enough that the coverage
// assertions below guarantee the interesting shapes actually occurred.
func TestCloneAliasingOnGeneratedSpecs(t *testing.T) {
	faultKinds := map[string]bool{}
	workloads := map[string]bool{"constant": true}
	pointers := false
	for seed := int64(0); seed < 300; seed++ {
		base := GenSpec(seed)
		for _, f := range base.Faults {
			faultKinds[f.Kind] = true
		}
		for _, src := range base.Sources {
			if src.Workload.Kind != "" {
				workloads[src.Workload.Kind] = true
			}
		}
		for _, n := range base.Nodes {
			pointers = pointers || n.Replicas != nil || n.DelayS != nil
		}

		want, err := json.Marshal(base)
		if err != nil {
			t.Fatal(err)
		}
		// Mutating the clone must leave the base untouched.
		scramble(base.Clone())
		got, err := json.Marshal(base)
		if err != nil {
			t.Fatal(err)
		}
		if string(got) != string(want) {
			t.Fatalf("seed %d: mutating the clone changed the base spec", seed)
		}
		// And mutating the base must leave a prior clone untouched.
		keep := base.Clone()
		kept, err := json.Marshal(keep)
		if err != nil {
			t.Fatal(err)
		}
		scramble(base)
		after, err := json.Marshal(keep)
		if err != nil {
			t.Fatal(err)
		}
		if string(after) != string(kept) {
			t.Fatalf("seed %d: mutating the base changed a prior clone", seed)
		}
	}
	for _, k := range []string{"crash", "flap", "disconnect", "stall_boundaries", "partition"} {
		if !faultKinds[k] {
			t.Errorf("seed range never produced fault kind %q; widen it", k)
		}
	}
	for _, k := range []string{"bursty", "ramp"} {
		if !workloads[k] {
			t.Errorf("seed range never produced workload kind %q; widen it", k)
		}
	}
	if !pointers {
		t.Error("seed range never produced override pointers; widen it")
	}
}
