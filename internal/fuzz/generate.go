package fuzz

import (
	"fmt"
	"math"

	"borealis/internal/scenario"
)

// round1 keeps generated times and rates to one decimal so minimized
// specs stay readable and JSON round-trips exactly.
func round1(v float64) float64 { return math.Round(v*10) / 10 }

// GenSpec deterministically generates one valid scenario spec from a
// seed: a layered DAG of 1-5 replicated node groups over 1-2 source
// groups, per-source workload shapes, and a fault schedule of up to 4
// faults mixing every fault kind the scenario engine knows.
//
// Generated specs are valid by construction (GenSpec panics if its own
// output fails Validate — that is a generator bug, not an input error)
// and satisfy one extra structural property the oracles rely on: every
// fault heals at least settleTailS before the end of the run, so a
// healthy deployment has gone fully quiet — stable, no buffered
// tentative data — by the final instant. Fault durations are biased
// toward the availability bound D (the paper's interesting region:
// failures comparable to the suspension window), which is exactly the
// band where the PR 3 masked-heal wedge lived.
func GenSpec(seed int64) *scenario.Spec {
	r := newRNG(seed)
	s := &scenario.Spec{
		Name:              fmt.Sprintf("fuzz-%d", seed),
		Seed:              seed,
		DurationS:         float64(20 + 5*r.intn(5)),
		VerifyConsistency: true,
	}
	s.Defaults.DelayS = round1(r.rangeF(1.5, 6))
	s.Defaults.Replicas = 2

	genSources(r, s)
	genNodes(r, s)
	s.Client = scenario.ClientSpec{Input: s.Nodes[len(s.Nodes)-1].Name, DelayMS: 50}
	genFaults(r, s)

	if err := s.Validate(); err != nil {
		panic(fmt.Sprintf("fuzz: generated spec %d is invalid: %v", seed, err))
	}
	return s
}

var (
	sourceNames = []string{"s", "t"}
	aggFns      = []string{"count", "sum", "avg", "min", "max"}
	policies    = []string{"process", "delay", "suspend"}
)

func genSources(r *rng, s *scenario.Spec) {
	groups := 1 + r.intn(2)
	for g := 0; g < groups; g++ {
		ss := scenario.SourceSpec{
			Name:  sourceNames[g],
			Count: 1 + r.intn(3),
			Rate:  float64(60 + 20*r.intn(10)),
		}
		if r.chance(0.25) {
			ss.Distribution = "zipf"
			ss.Skew = round1(r.rangeF(0.8, 1.5))
		}
		switch u := r.f64(); {
		case u < 0.5: // constant
		case u < 0.75:
			ss.Workload = scenario.WorkloadSpec{
				Kind:        "bursty",
				PeriodS:     float64(2 + r.intn(4)),
				Factor:      float64(2 + r.intn(3)),
				Duty:        0.2,
				JitterPhase: r.chance(0.5),
			}
		default:
			ss.Workload = scenario.WorkloadSpec{
				Kind:   "ramp",
				ToRate: round1(ss.Rate * r.rangeF(0.5, 2)),
				OverS:  round1(s.DurationS * 0.8),
			}
		}
		s.Sources = append(s.Sources, ss)
	}
}

func genNodes(r *rng, s *scenario.Spec) {
	count := 1 + r.intn(5)
	for i := 0; i < count; i++ {
		n := scenario.NodeSpec{Name: fmt.Sprintf("n%d", i+1)}
		// Inputs reference only sources and strictly earlier nodes, so the
		// graph is a DAG by construction. Bias toward chains (the deepest
		// correction paths) with occasional extra fan-in edges.
		if i == 0 {
			n.Inputs = []string{s.Sources[r.intn(len(s.Sources))].Name}
		} else if r.chance(0.8) {
			n.Inputs = []string{s.Nodes[i-1].Name}
		} else {
			n.Inputs = []string{s.Nodes[r.intn(i)].Name}
		}
		if r.chance(0.35) {
			extra := r.intn(len(s.Sources) + i)
			var name string
			if extra < len(s.Sources) {
				name = s.Sources[extra].Name
			} else {
				name = s.Nodes[extra-len(s.Sources)].Name
			}
			dup := false
			for _, in := range n.Inputs {
				dup = dup || in == name
			}
			if !dup {
				n.Inputs = append(n.Inputs, name)
			}
		}
		if r.chance(0.3) {
			rep := 1 + r.intn(3)
			n.Replicas = &rep
		}
		if r.chance(0.4) {
			d := round1(r.rangeF(1, 6))
			n.DelayS = &d
		}
		if len(n.Inputs) >= 2 && r.chance(0.15) {
			n.Cascade = true
		}
		if r.chance(0.25) {
			n.FailurePolicy = pick(r, policies)
		}
		if r.chance(0.25) {
			n.Stabilization = pick(r, policies)
		}
		genOperators(r, s, &n)
		s.Nodes = append(s.Nodes, n)
	}
}

// expandedInputCount counts the node's SUnion ports (source groups expand
// to their members).
func expandedInputCount(s *scenario.Spec, n *scenario.NodeSpec) int {
	total := 0
	for _, in := range n.Inputs {
		total++
		for i := range s.Sources {
			if s.Sources[i].Name == in {
				total += max(s.Sources[i].Count, 1) - 1
			}
		}
	}
	return total
}

func genOperators(r *rng, s *scenario.Spec, n *scenario.NodeSpec) {
	for k := r.intn(3); k > 0; k-- {
		var op scenario.OperatorSpec
		switch u := r.f64(); {
		case u < 0.35:
			op = scenario.OperatorSpec{Kind: "filter", Modulo: int64(2 + r.intn(4))}
		case u < 0.65:
			op = scenario.OperatorSpec{Kind: "map", Scale: int64(2 + r.intn(2))}
		case u < 0.85:
			op = scenario.OperatorSpec{
				Kind:     "aggregate",
				Fn:       pick(r, aggFns),
				WindowMS: float64(200 + 100*r.intn(9)),
			}
			if r.chance(0.3) {
				op.SlideMS = op.WindowMS / 2
			}
		default:
			if expandedInputCount(s, n) < 2 {
				op = scenario.OperatorSpec{Kind: "filter", Modulo: 2}
			} else {
				op = scenario.OperatorSpec{Kind: "join", WindowMS: float64(200 + 100*r.intn(4))}
			}
		}
		n.Operators = append(n.Operators, op)
	}
}

func genFaults(r *rng, s *scenario.Spec) {
	tail := settleTailS(s)
	permanent := map[string]int{} // group → permanent crashes so far
	for k := r.intn(5); k > 0; k-- {
		f := genFault(r, s, tail, permanent)
		if f != nil {
			s.Faults = append(s.Faults, *f)
		}
	}
}

// genFault draws one fault whose heal lands at least settleTailS before
// the end of the run; nil when the drawn shape cannot fit the window.
func genFault(r *rng, s *scenario.Spec, tail float64, permanent map[string]int) *scenario.FaultSpec {
	// window returns a start time for a fault that heals dur after onset,
	// or a negative number when it cannot fit.
	window := func(dur float64) float64 {
		last := s.DurationS - tail - dur
		if last < 2 {
			return -1
		}
		// Floor, not round: rounding up could push the heal past the
		// quiet-tail boundary by a fraction of a second.
		return math.Floor(r.rangeF(2, last)*10) / 10
	}
	nodeOf := func() (*scenario.NodeSpec, int) {
		n := &s.Nodes[r.intn(len(s.Nodes))]
		return n, r.intn(replicasOf(s, n))
	}
	switch u := r.f64(); {
	case u < 0.28: // disconnect, biased toward the D-band
		member := sourceTarget(r, s)
		dur := round1(r.rangeF(2, 6))
		if r.chance(0.4) {
			d := delayOf(s, &s.Nodes[r.intn(len(s.Nodes))])
			dur = round1(d * r.rangeF(0.8, 1.05))
		}
		at := window(dur)
		if at < 0 {
			return nil
		}
		return &scenario.FaultSpec{Kind: "disconnect", Source: member, AtS: at, DurationS: dur}
	case u < 0.5: // crash (+restart unless a permanent crash is safe)
		n, rep := nodeOf()
		if r.chance(0.12) && permanent[n.Name] < replicasOf(s, n)-1 {
			at := window(permCrashSettleS)
			if at < 0 {
				return nil
			}
			permanent[n.Name]++
			return &scenario.FaultSpec{Kind: "crash", Node: n.Name, Replica: rep, AtS: at}
		}
		dur := round1(r.rangeF(2, 6))
		at := window(dur)
		if at < 0 {
			return nil
		}
		return &scenario.FaultSpec{Kind: "crash", Node: n.Name, Replica: rep, AtS: at, DurationS: dur}
	case u < 0.64: // flap
		n, rep := nodeOf()
		period := round1(r.rangeF(2, 4))
		count := 2 + r.intn(2)
		down := round1(period * 0.4)
		at := window(float64(count-1)*period + down)
		if at < 0 {
			return nil
		}
		return &scenario.FaultSpec{
			Kind: "flap", Node: n.Name, Replica: rep,
			AtS: at, DurationS: down, PeriodS: period, Count: count,
		}
	case u < 0.86: // partition
		return genPartitionFault(r, s, tail)
	default: // stall_boundaries
		member := sourceTarget(r, s)
		dur := round1(r.rangeF(2, 5))
		at := window(dur)
		if at < 0 {
			return nil
		}
		return &scenario.FaultSpec{Kind: "stall_boundaries", Source: member, AtS: at, DurationS: dur}
	}
}

// genPartitionFault draws one partition fault honoring the quiet-tail
// window; nil when the window cannot fit or the endpoint draw degenerates.
func genPartitionFault(r *rng, s *scenario.Spec, tail float64) *scenario.FaultSpec {
	dur := round1(r.rangeF(2, 5))
	last := s.DurationS - tail - dur
	if last < 2 {
		return nil
	}
	at := math.Floor(r.rangeF(2, last)*10) / 10
	from := endpointTarget(r, s)
	to := endpointTarget(r, s)
	if from == to {
		return nil
	}
	return &scenario.FaultSpec{Kind: "partition", From: from, To: to, AtS: at, DurationS: dur}
}

// GenClusterSpec generates a spec shaped for a real multi-process cluster
// of the given worker count: its distinct process-fault targets fit the
// worker budget (cluster.Plan dedicates one worker per target and needs at
// least one shared worker besides), and the schedule always carries at
// least one partition fault — the kind the boss translates into real
// link-level blocking on the TCP fabric. Deterministic in (seed, workers).
func GenClusterSpec(seed int64, workers int) *scenario.Spec {
	s := GenSpec(seed)
	s.Name = fmt.Sprintf("fuzz-cluster-%d", seed)
	maxTargets := workers - 1
	if maxTargets < 0 {
		maxTargets = 0
	}
	seen := map[string]bool{}
	kept := s.Faults[:0]
	for _, f := range s.Faults {
		switch f.Kind {
		case "crash", "restart", "flap":
			id := fmt.Sprintf("%s/%d", f.Node, f.Replica)
			if !seen[id] && len(seen) >= maxTargets {
				continue
			}
			seen[id] = true
		}
		kept = append(kept, f)
	}
	s.Faults = kept
	if len(s.Faults) == 0 {
		s.Faults = nil
	}
	r := newRNG(seed ^ 0x5eed)
	tail := settleTailS(s)
	for i := 0; i < 64 && !hasPartitionFault(s); i++ {
		if f := genPartitionFault(r, s, tail); f != nil {
			s.Faults = append(s.Faults, *f)
		}
	}
	if !hasPartitionFault(s) {
		// A deep chain's settle tail can leave no window; stretch the run
		// until one fits (the quiet-tail property is preserved either way).
		s.DurationS = math.Ceil(tail) + 10
		for i := 0; i < 64 && !hasPartitionFault(s); i++ {
			if f := genPartitionFault(r, s, tail); f != nil {
				s.Faults = append(s.Faults, *f)
			}
		}
	}
	if err := s.Validate(); err != nil {
		panic(fmt.Sprintf("fuzz: generated cluster spec %d is invalid: %v", seed, err))
	}
	return s
}

func hasPartitionFault(s *scenario.Spec) bool {
	for i := range s.Faults {
		if s.Faults[i].Kind == "partition" {
			return true
		}
	}
	return false
}

// sourceTarget picks a concrete fault target: a single expanded member
// of a random source group most of the time, the whole group
// occasionally.
func sourceTarget(r *rng, s *scenario.Spec) string {
	ss := &s.Sources[r.intn(len(s.Sources))]
	if ss.Count > 1 && !r.chance(0.2) {
		return fmt.Sprintf("%s%d", ss.Name, 1+r.intn(ss.Count))
	}
	return ss.Name
}

// endpointTarget picks a partition endpoint: a node group, one replica,
// a source member, or the client.
func endpointTarget(r *rng, s *scenario.Spec) string {
	switch u := r.f64(); {
	case u < 0.4:
		return s.Nodes[r.intn(len(s.Nodes))].Name
	case u < 0.65:
		n := &s.Nodes[r.intn(len(s.Nodes))]
		return fmt.Sprintf("%s/%d", n.Name, r.intn(replicasOf(s, n)))
	case u < 0.9:
		return sourceTarget(r, s)
	default:
		return "client"
	}
}

// replicasOf mirrors the scenario engine's replica resolution.
func replicasOf(s *scenario.Spec, n *scenario.NodeSpec) int {
	if n.Replicas != nil {
		return *n.Replicas
	}
	if s.Defaults.Replicas > 0 {
		return s.Defaults.Replicas
	}
	return 2
}

// delayOf mirrors the scenario engine's availability-bound resolution.
func delayOf(s *scenario.Spec, n *scenario.NodeSpec) float64 {
	if n.DelayS != nil {
		return *n.DelayS
	}
	if s.Defaults.DelayS > 0 {
		return s.Defaults.DelayS
	}
	return 2
}
