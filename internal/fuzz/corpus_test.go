package fuzz

import (
	"path/filepath"
	"strings"
	"testing"

	"borealis/internal/scenario"
)

// TestCorpusStaysClean runs every minimized regression spec in
// scenarios/corpus/ — each one a real bug the fuzzer found and this
// repository fixed — at full duration with the Definition 1 audit, the
// complete oracle suite, and the differential oracles (virtual vs wall
// clock, serial vs parallel). The corpus only grows: a finding here
// means a fixed crash-consistency bug has regressed.
func TestCorpusStaysClean(t *testing.T) {
	paths, err := filepath.Glob("../../scenarios/corpus/*.json")
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) < 3 {
		t.Fatalf("corpus too small: %d specs", len(paths))
	}
	for _, path := range paths {
		name := strings.TrimSuffix(filepath.Base(path), ".json")
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			spec, err := scenario.Load(path)
			if err != nil {
				t.Fatal(err)
			}
			if spec.Name != name {
				t.Fatalf("spec name %q does not match file name %q", spec.Name, name)
			}
			if !spec.VerifyConsistency {
				t.Fatal("corpus specs must enable the consistency audit")
			}
			rep, findings := RunSpec(spec, scenario.Options{})
			if len(findings) > 0 {
				t.Fatalf("regression: %v", findings)
			}
			if rep.Consistency == nil || !rep.Consistency.OK {
				t.Fatalf("audit failed: %+v", rep.Consistency)
			}
			if diffs := CheckDifferential(spec); len(diffs) > 0 {
				t.Fatalf("differential regression: %v", diffs)
			}
		})
	}
}
