// Package fuzz turns the deterministic scenario simulator into a
// crash-consistency fuzzer. A seeded generator emits valid scenario.Spec
// values — random layered DAGs of replicated node groups, shaped
// workloads, and timed fault schedules — each run through scenario.Run
// with the Definition 1 eventual-consistency audit plus structural
// oracles over the report (no wedged SUnion buckets after the fault
// schedule goes quiet, no starved stable streams, availability and
// report invariants). Failing specs are shrunk by a deterministic
// reducer down to a minimal JSON spec for triage; real bugs become
// checked-in regressions under scenarios/corpus/.
//
// Everything derives from seeds: the same master seed produces the same
// spec family, the same findings, and the same minimized specs,
// regardless of worker count. See docs/FUZZING.md.
package fuzz

import "fmt"

// rng is the fuzzer's PRNG: splitmix64, the same tiny generator the
// scenario package uses for workload jitter. Fully deterministic across
// platforms, and cheap to fork per consumer.
type rng struct{ state uint64 }

const golden = 0x9E3779B97F4A7C15

func newRNG(seed int64) *rng { return &rng{state: mix(uint64(seed))} }

// mix is the splitmix64 output function, also used standalone to derive
// independent per-run seeds from (master seed, index).
func mix(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

func (r *rng) next() uint64 {
	r.state += golden
	return mix(r.state)
}

// f64 returns a uniform draw in [0, 1).
func (r *rng) f64() float64 { return float64(r.next()>>11) / (1 << 53) }

// intn returns a uniform draw in [0, n).
func (r *rng) intn(n int) int { return int(r.next() % uint64(n)) }

// rangeF returns a uniform draw in [lo, hi).
func (r *rng) rangeF(lo, hi float64) float64 { return lo + r.f64()*(hi-lo) }

// chance returns true with probability p.
func (r *rng) chance(p float64) bool { return r.f64() < p }

// pick returns one element of choices.
func pick[T any](r *rng, choices []T) T { return choices[r.intn(len(choices))] }

// DeriveSeed maps (master seed, run index) to the spec seed of that run.
// Runs are independent draws: the mapping does not depend on how many
// runs precede it, so campaigns parallelize without reordering seeds.
func DeriveSeed(master int64, run int) int64 {
	return int64(mix(uint64(master) + uint64(run+1)*golden))
}

// Finding is one oracle violation detected in a scenario run.
type Finding struct {
	// Oracle names the violated property: "consistency", "starvation",
	// "excess-stable", "wedged-sunion", "stuck-state", "availability",
	// "report-invariant", "run-error" or "differential" (see
	// CheckDifferential).
	Oracle string `json:"oracle"`
	// Detail is a human-readable description of the violation.
	Detail string `json:"detail"`
}

func (f Finding) String() string { return fmt.Sprintf("%s: %s", f.Oracle, f.Detail) }

// findf appends a finding.
func findf(fs []Finding, oracle, format string, args ...any) []Finding {
	return append(fs, Finding{Oracle: oracle, Detail: fmt.Sprintf(format, args...)})
}
