package fuzz

import (
	"bytes"
	"encoding/json"
	"math"

	rtpkg "borealis/internal/runtime"
	"borealis/internal/scenario"
	"borealis/internal/tuple"
)

// OracleDifferential names the differential oracle class: two executions
// of the same spec that must agree disagreed.
const OracleDifferential = "differential"

// diffWallSpeed is the time-scale factor of the wall-clock leg: 2000
// clock microseconds per real microsecond turns a 50-second spec into
// ~25ms of real time while still exercising the wall runtime's pacing
// loop, timer heap, and goroutine handoff.
const diffWallSpeed = 2000

// diffParallelCopies is how many copies of the spec the serial-vs-parallel
// leg fans through RunMany. Four copies across GOMAXPROCS workers is
// enough to interleave runs without dominating the oracle's cost.
const diffParallelCopies = 4

// CheckDifferential runs one spec several ways that must agree and
// reports every divergence as a "differential" finding:
//
//   - clock: the spec on a fresh VirtualClock versus a high-speed
//     WallClock must produce the same stable output stream. The wall
//     runtime fires events in (at, seq) order regardless of wall
//     lateness, so any divergence is a runtime bug, not scheduling
//     jitter.
//   - parallel: N copies of the spec through RunMany serially
//     (Parallelism 1) versus across all cores (Parallelism 0) must
//     produce byte-identical reports — the guarantee every sweep, grid,
//     and fuzz campaign in this repository leans on.
//   - dataplane: the spec on the staged batch data plane (the default)
//     versus the reference per-tuple dispatch must produce byte-identical
//     reports and an identical stable output stream. This is the wall
//     that lets the batch plane claim exact equivalence rather than
//     approximate speed.
//
// The oracle is self-contained (it runs the spec itself rather than
// auditing an existing report), so it does not join Check's per-report
// oracle list: at roughly ten simulator runs per spec it backs the
// corpus and scenario regression tests, shrinking, and soak campaigns
// instead of the per-run fuzz path.
func CheckDifferential(s *scenario.Spec) []Finding {
	var fs []Finding
	fs = append(fs, diffClock(s)...)
	fs = append(fs, diffParallel(s)...)
	fs = append(fs, diffDataPlane(s)...)
	return fs
}

// diffClock compares the stable output of a virtual-clock run against a
// high-speed wall-clock run of the same spec.
func diffClock(s *scenario.Spec) []Finding {
	var fs []Finding
	virt, err := stableStream(s, rtpkg.NewVirtual())
	if err != nil {
		return findf(fs, OracleDifferential, "clock: virtual run failed: %v", err)
	}
	wall, err := stableStream(s, rtpkg.NewWall(diffWallSpeed))
	if err != nil {
		return findf(fs, OracleDifferential, "clock: wall run failed: %v", err)
	}
	if len(virt) != len(wall) {
		return findf(fs, OracleDifferential,
			"clock: virtual run delivered %d stable tuples, wall run %d", len(virt), len(wall))
	}
	for i := range virt {
		if !tuple.Equal(virt[i], wall[i]) {
			return findf(fs, OracleDifferential,
				"clock: stable position %d differs: virtual %s, wall %s", i, virt[i], wall[i])
		}
	}
	return nil
}

// stableStream builds the spec on the given runtime, drives it for the
// spec duration, and returns the client's stable output.
func stableStream(s *scenario.Spec, rt rtpkg.Runtime) ([]tuple.Tuple, error) {
	return stableStreamOpts(s, scenario.Options{Runtime: rt})
}

// stableStreamOpts is stableStream with full control over the run options
// (the data-plane leg needs PerTuple).
func stableStreamOpts(s *scenario.Spec, opts scenario.Options) ([]tuple.Tuple, error) {
	dep, err := scenario.Build(s, opts)
	if err != nil {
		return nil, err
	}
	dep.Start()
	dep.RunFor(int64(math.Round(s.DurationS * 1e6)))
	return dep.Client.StableView(), nil
}

// diffDataPlane compares the staged batch data plane against the reference
// per-tuple dispatch: byte-identical reports and an identical stable
// output stream, tuple for tuple. The consistency-reference leg of each
// report run is skipped — it shares the data plane under test, so it adds
// cost without adding signal; output content is compared directly here.
func diffDataPlane(s *scenario.Spec) []Finding {
	var fs []Finding
	batchRep, err := scenario.Run(s, scenario.Options{SkipConsistency: true})
	if err != nil {
		return findf(fs, OracleDifferential, "dataplane: batch run failed: %v", err)
	}
	tupleRep, err := scenario.Run(s, scenario.Options{SkipConsistency: true, PerTuple: true})
	if err != nil {
		return findf(fs, OracleDifferential, "dataplane: per-tuple run failed: %v", err)
	}
	a, errA := json.Marshal(batchRep)
	b, errB := json.Marshal(tupleRep)
	if errA != nil || errB != nil {
		return findf(fs, OracleDifferential, "dataplane: report failed to marshal: %v / %v", errA, errB)
	}
	if !bytes.Equal(a, b) {
		return findf(fs, OracleDifferential,
			"dataplane: batch and per-tuple reports differ:\nbatch: %s\ntuple: %s", a, b)
	}
	batch, err := stableStreamOpts(s, scenario.Options{})
	if err != nil {
		return findf(fs, OracleDifferential, "dataplane: batch stream run failed: %v", err)
	}
	ref, err := stableStreamOpts(s, scenario.Options{PerTuple: true})
	if err != nil {
		return findf(fs, OracleDifferential, "dataplane: per-tuple stream run failed: %v", err)
	}
	if len(batch) != len(ref) {
		return findf(fs, OracleDifferential,
			"dataplane: batch plane delivered %d stable tuples, per-tuple %d", len(batch), len(ref))
	}
	for i := range batch {
		if !tuple.Equal(batch[i], ref[i]) {
			return findf(fs, OracleDifferential,
				"dataplane: stable position %d differs: batch %s, per-tuple %s", i, batch[i], ref[i])
		}
	}
	return nil
}

// diffParallel fans diffParallelCopies copies of the spec through
// RunMany serially and in parallel and requires byte-identical reports.
// The audit and reference runs are skipped: this leg checks executor
// determinism, and the consistency reference would double its cost for
// no extra signal (the clock leg already audits output content).
func diffParallel(s *scenario.Spec) []Finding {
	var fs []Finding
	specs := make([]*scenario.Spec, diffParallelCopies)
	for i := range specs {
		specs[i] = s
	}
	serial, err := scenario.RunMany(specs, scenario.Options{Parallelism: 1, SkipConsistency: true})
	if err != nil {
		return findf(fs, OracleDifferential, "parallel: serial RunMany failed: %v", err)
	}
	par, err := scenario.RunMany(specs, scenario.Options{Parallelism: 0, SkipConsistency: true})
	if err != nil {
		return findf(fs, OracleDifferential, "parallel: parallel RunMany failed: %v", err)
	}
	for i := range serial {
		a, errA := json.Marshal(serial[i])
		b, errB := json.Marshal(par[i])
		if errA != nil || errB != nil {
			return findf(fs, OracleDifferential, "parallel: report %d failed to marshal: %v / %v", i, errA, errB)
		}
		if !bytes.Equal(a, b) {
			return findf(fs, OracleDifferential,
				"parallel: report %d of %d differs between serial and parallel execution", i, len(serial))
		}
	}
	return nil
}
