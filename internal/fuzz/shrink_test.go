package fuzz

import (
	"encoding/json"
	"testing"

	"borealis/internal/scenario"
)

// The reducer is tested against synthetic failure predicates that do not
// run the simulator: the passes must converge to the smallest spec the
// predicate still accepts, and every candidate they try must be valid.

// validFails wraps a predicate with a validity check, mirroring what the
// real Shrink predicate does, and records how many candidates were tried.
func validFails(t *testing.T, pred func(*scenario.Spec) bool, tried *int) func(*scenario.Spec) bool {
	return func(c *scenario.Spec) bool {
		*tried++
		if err := c.Validate(); err != nil {
			return false
		}
		return pred(c)
	}
}

// TestReduceToSingleFault: a predicate keyed on one fault kind reduces a
// rich generated spec to one node, one source and exactly that fault.
func TestReduceToSingleFault(t *testing.T) {
	// Find a generated spec containing a disconnect plus other faults.
	var spec *scenario.Spec
	for seed := int64(0); seed < 200; seed++ {
		s := GenSpec(seed)
		disc := 0
		for _, f := range s.Faults {
			if f.Kind == "disconnect" {
				disc++
			}
		}
		if disc >= 1 && len(s.Faults) >= 3 && len(s.Nodes) >= 3 {
			spec = s
			break
		}
	}
	if spec == nil {
		t.Fatal("no suitable generated spec found")
	}
	tried := 0
	pred := func(c *scenario.Spec) bool {
		for _, f := range c.Faults {
			if f.Kind == "disconnect" {
				return true
			}
		}
		return false
	}
	min := reduce(spec, validFails(t, pred, &tried))
	if err := min.Validate(); err != nil {
		t.Fatalf("reduced spec invalid: %v", err)
	}
	if len(min.Nodes) != 1 || len(min.Sources) != 1 || len(min.Faults) != 1 {
		t.Fatalf("not minimal: %d nodes, %d sources, %d faults",
			len(min.Nodes), len(min.Sources), len(min.Faults))
	}
	if min.Faults[0].Kind != "disconnect" {
		t.Fatalf("lost the failing fault: %+v", min.Faults[0])
	}
	for _, n := range min.Nodes {
		if len(n.Operators) != 0 {
			t.Fatalf("operators survived reduction: %+v", n.Operators)
		}
	}
	if tried == 0 {
		t.Fatal("reducer never consulted the predicate")
	}
}

// TestReducePreservesChains: a predicate requiring a two-node chain keeps
// exactly two nodes, splicing out the rest.
func TestReducePreservesChains(t *testing.T) {
	var spec *scenario.Spec
	for seed := int64(0); seed < 300; seed++ {
		s := GenSpec(seed)
		if len(s.Nodes) >= 4 {
			spec = s
			break
		}
	}
	if spec == nil {
		t.Fatal("no deep generated spec found")
	}
	tried := 0
	pred := func(c *scenario.Spec) bool { return len(c.Nodes) >= 2 }
	min := reduce(spec, validFails(t, pred, &tried))
	if len(min.Nodes) != 2 {
		t.Fatalf("want exactly 2 nodes, got %d", len(min.Nodes))
	}
	if err := min.Validate(); err != nil {
		t.Fatalf("reduced spec invalid: %v", err)
	}
}

// TestReduceIsDeterministic: same spec + same predicate ⇒ same minimum.
func TestReduceIsDeterministic(t *testing.T) {
	pred := func(c *scenario.Spec) bool { return len(c.Faults) >= 1 }
	tried := 0
	a := reduce(GenSpec(42), validFails(t, pred, &tried))
	b := reduce(GenSpec(42), validFails(t, pred, &tried))
	ja, err := json.Marshal(a)
	if err != nil {
		t.Fatal(err)
	}
	jb, err := json.Marshal(b)
	if err != nil {
		t.Fatal(err)
	}
	if string(ja) != string(jb) {
		t.Fatal("reduction is not deterministic")
	}
}
