package fuzz

import (
	"math"

	"borealis/internal/node"
	"borealis/internal/scenario"
	"borealis/internal/vtime"
)

// permCrashSettleS bounds how long a deployment needs to absorb a
// permanent replica crash: keep-alive timeouts fire, downstream input
// managers switch to the surviving replica, and the stream is healthy
// again. No heal event ever fires for the dead replica, so the quiet-tail
// computation charges this settling window instead.
const permCrashSettleS = 10

// settleTailS is how much quiet time a healthy deployment needs after its
// last fault heals before the oracles may judge end-of-run state: the
// worst source→client path sum of SUnion delays (suspensions started just
// before the heal still run to completion, level by level), plus client
// slack, plus a reconciliation/propagation allowance.
func settleTailS(s *scenario.Spec) float64 {
	nodes := map[string]*scenario.NodeSpec{}
	for i := range s.Nodes {
		nodes[s.Nodes[i].Name] = &s.Nodes[i]
	}
	memo := map[string]float64{}
	var path func(name string) float64
	path = func(name string) float64 {
		if v, ok := memo[name]; ok {
			return v
		}
		n := nodes[name]
		memo[name] = 0 // cycle guard for unvalidated inputs
		var worst float64
		for _, in := range n.Inputs {
			if nodes[in] != nil {
				worst = math.Max(worst, path(in))
			}
		}
		sunions := 1.0
		if n.Cascade && expandedInputCount(s, n) > 2 {
			sunions = float64(expandedInputCount(s, n) - 1)
		}
		v := worst + delayOf(s, n)*sunions
		memo[name] = v
		return v
	}
	var worst float64
	for i := range s.Nodes {
		worst = math.Max(worst, path(s.Nodes[i].Name))
	}
	return worst + 5
}

// lastHealS returns the latest instant (in spec seconds) at which the
// fault schedule stops disturbing the deployment, considering only faults
// that fire before the horizon. Permanent crashes never heal; they charge
// permCrashSettleS of switchover settling instead.
func lastHealS(s *scenario.Spec, horizonS float64) float64 {
	var last float64
	for i := range s.Faults {
		f := &s.Faults[i]
		if f.AtS >= horizonS {
			continue
		}
		var heal float64
		switch f.Kind {
		case "crash":
			if f.DurationS > 0 {
				heal = f.AtS + f.DurationS
			} else {
				heal = f.AtS + permCrashSettleS
			}
		case "restart":
			heal = f.AtS
		case "flap":
			count := f.Count
			if count <= 0 {
				count = 3
			}
			down := f.DurationS
			if down <= 0 {
				down = f.PeriodS / 2
			}
			heal = f.AtS + float64(count-1)*f.PeriodS + down
		default: // disconnect, stall_boundaries, partition
			heal = f.AtS + f.DurationS
		}
		last = math.Max(last, heal)
	}
	return last
}

// quietAtEnd reports whether the fault schedule went quiet early enough —
// last heal plus the settling tail inside the horizon — for end-of-run
// structural state to be judged, and that no node group lost all of its
// replicas permanently (a fully-crashed group starves its downstream
// legitimately).
func quietAtEnd(s *scenario.Spec, horizonS float64) bool {
	if !anyFaultFires(s, horizonS) {
		return true // nothing ever disturbed the run
	}
	if lastHealS(s, horizonS)+settleTailS(s) > horizonS+1e-9 {
		return false
	}
	// A crash without a duration is permanent unless a LATER restart
	// names the same replica (spec.go's contract); count the crashes
	// that stick.
	perm := map[string]int{}
	for i := range s.Faults {
		f := &s.Faults[i]
		if f.Kind != "crash" || f.DurationS != 0 || f.AtS >= horizonS {
			continue
		}
		revived := false
		for j := range s.Faults {
			r := &s.Faults[j]
			if r.Kind == "restart" && r.Node == f.Node && r.Replica == f.Replica &&
				r.AtS > f.AtS && r.AtS < horizonS {
				revived = true
				break
			}
		}
		if !revived {
			perm[f.Node]++
		}
	}
	for i := range s.Nodes {
		n := &s.Nodes[i]
		if perm[n.Name] >= replicasOf(s, n) {
			return false
		}
	}
	return true
}

// anyFaultFires reports whether any fault fires before the horizon.
func anyFaultFires(s *scenario.Spec, horizonS float64) bool {
	for i := range s.Faults {
		if s.Faults[i].AtS < horizonS {
			return true
		}
	}
	return false
}

// capacityBounded reports whether any node runs with finite capacity: an
// overloaded bounded node violates the availability bound legitimately
// (the paper assumes provisioned capacity), so the availability oracle
// stands down.
func capacityBounded(s *scenario.Spec) bool {
	if s.Defaults.Capacity > 0 {
		return true
	}
	for i := range s.Nodes {
		if s.Nodes[i].Capacity != nil && *s.Nodes[i].Capacity > 0 {
			return true
		}
	}
	return false
}

// round3 mirrors the report's rate rounding.
func round3(v float64) float64 { return math.Round(v*1e3) / 1e3 }

// Check audits one scenario report against the fuzzer's oracles and
// returns every violation found. The spec must be the one the report was
// produced from: the structural oracles condition on the fault schedule
// (quiet tail, fault-free availability) that only the spec knows.
func Check(s *scenario.Spec, rep *scenario.Report) []Finding {
	var fs []Finding
	horizon := rep.DurationS
	quiet := quietAtEnd(s, horizon)

	// Definition 1: the stable output prefix must match the fault-free
	// reference run.
	if rep.Consistency != nil && !rep.Consistency.OK {
		fs = findf(fs, "consistency", "Definition 1 audit failed: %s", rep.Consistency.Reason)
	}

	// Starvation / excess: once quiet, the audited run's stable output
	// must have converged to the reference's, not stalled short of it
	// (the masked-heal wedge signature) or overshot it.
	if quiet && rep.Consistency != nil && rep.Consistency.OK && rep.Consistency.RefStable > 0 {
		got, ref := rep.Consistency.GotStable, rep.Consistency.RefStable
		slack := max(25, ref/10)
		if got < ref-slack {
			fs = findf(fs, "starvation",
				"stable output stalled at %d tuples; fault-free reference delivered %d", got, ref)
		}
		if got > ref+slack {
			fs = findf(fs, "excess-stable",
				"stable output %d tuples exceeds the fault-free reference %d", got, ref)
		}
	}

	// Structural end-of-run state: after the quiet tail every live
	// replica must be STABLE with no tentative content buffered in any
	// SUnion — a held bucket can only be removed by a rollback that is
	// never coming.
	if quiet {
		for i := range rep.Nodes {
			n := &rep.Nodes[i]
			if n.Down {
				continue
			}
			if n.HoldsTentative {
				fs = findf(fs, "wedged-sunion",
					"replica %s still buffers tentative tuples %gs after the last heal",
					n.Replica, horizon-lastHealS(s, horizon))
			}
			if n.State != "STABLE" {
				fs = findf(fs, "stuck-state",
					"replica %s ended in %s %gs after the last heal",
					n.Replica, n.State, horizon-lastHealS(s, horizon))
			}
		}
	}

	// Grant starvation: progress-probed grants bound every want→grant
	// wait by revocation cycles of the stall window (plus the peer's own
	// stabilization time and retry pacing), so on a quiet run no replica
	// may have waited anywhere near the 120s GrantTimeout — the wedge
	// pinned by scenarios/corpus/crash-inside-partition.json. The report
	// includes a wait still open at the horizon, so end-of-run starvation
	// is caught too. The GrantTimeout backstop must never be what ends a
	// hold; the progress probe fires orders of magnitude earlier.
	if quiet {
		windowS := float64(node.DefaultGrantStallWindow(
			int64(s.Defaults.KeepAliveMS*float64(vtime.Millisecond)), 0)) / float64(vtime.Second)
		boundS := 5*windowS + 5
		for i := range rep.Nodes {
			n := &rep.Nodes[i]
			for _, w := range n.GrantWaitsS {
				if w > boundS {
					fs = findf(fs, "grant-starvation",
						"replica %s waited %gs for a reconciliation grant; the stall-window bound is %gs",
						n.Replica, w, boundS)
				}
			}
			if n.GrantRevocations != nil && n.GrantRevocations.Timeout > 0 {
				fs = findf(fs, "grant-starvation",
					"replica %s released a grant via the GrantTimeout backstop %d times; the progress probe should have fired first",
					n.Replica, n.GrantRevocations.Timeout)
			}
		}
	}

	// Availability: with no faults and unbounded capacity, every
	// new-information delivery must meet the bound D.
	if !anyFaultFires(s, horizon) && !capacityBounded(s) && rep.Availability.Violations > 0 {
		fs = findf(fs, "availability",
			"fault-free run violated the availability bound %d times (worst excess %gs)",
			rep.Availability.Violations, rep.Availability.MaxExcessS)
	}

	// Report invariants: internal consistency of the metrics themselves.
	c := &rep.Client
	if rep.DurationS <= 0 {
		fs = findf(fs, "report-invariant", "non-positive duration %g", rep.DurationS)
		return fs
	}
	if got, want := c.ThroughputTPS, round3(float64(c.NewTuples)/rep.DurationS); got != want {
		fs = findf(fs, "report-invariant", "throughput %g does not match %d tuples / %gs", got, c.NewTuples, rep.DurationS)
	}
	if c.NewTuples > 0 {
		if got, want := rep.Availability.ViolationRate, round3(float64(rep.Availability.Violations)/float64(c.NewTuples)); got != want {
			fs = findf(fs, "report-invariant", "violation rate %g does not match %d/%d", got, rep.Availability.Violations, c.NewTuples)
		}
	}
	if c.MeanLatencyS > c.MaxLatencyS+1e-3 {
		fs = findf(fs, "report-invariant", "mean latency %g exceeds max %g", c.MeanLatencyS, c.MaxLatencyS)
	}
	if c.MaxTentativeStreak > c.Tentative {
		fs = findf(fs, "report-invariant", "tentative streak %d exceeds tentative count %d", c.MaxTentativeStreak, c.Tentative)
	}
	if rep.Availability.Violations == 0 && rep.Availability.MaxExcessS != 0 {
		fs = findf(fs, "report-invariant", "zero violations but max excess %g", rep.Availability.MaxExcessS)
	}
	if rep.Stabilization.LastRecDoneS > rep.DurationS+1e-3 {
		fs = findf(fs, "report-invariant", "last REC_DONE at %gs is past the %gs horizon", rep.Stabilization.LastRecDoneS, rep.DurationS)
	}
	if quiet && c.Undos > 0 && c.RecDones == 0 {
		fs = findf(fs, "report-invariant", "%d undos but no REC_DONE reached the client by the quiet end", c.Undos)
	}
	return fs
}

// RunSpec validates and runs one spec, then audits the report. A run
// error becomes a "run-error" finding: a validated spec must always
// compile and execute.
func RunSpec(s *scenario.Spec, opts scenario.Options) (*scenario.Report, []Finding) {
	rep, err := scenario.Run(s, opts)
	if err != nil {
		return nil, []Finding{{Oracle: "run-error", Detail: err.Error()}}
	}
	return rep, Check(s, rep)
}
