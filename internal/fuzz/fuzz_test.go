package fuzz

import (
	"encoding/json"
	"reflect"
	"testing"

	"borealis/internal/scenario"
)

// TestGenSpecValidAndDeterministic: every generated spec passes Validate
// (GenSpec panics otherwise) and the same seed reproduces the same spec
// bit for bit.
func TestGenSpecValidAndDeterministic(t *testing.T) {
	for seed := int64(0); seed < 1500; seed++ {
		a := GenSpec(seed)
		if err := a.Validate(); err != nil {
			t.Fatalf("seed %d: invalid spec: %v", seed, err)
		}
		b := GenSpec(seed)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("seed %d: generation is not deterministic", seed)
		}
	}
}

// TestGenSpecCoverage: across a modest seed range the generator exercises
// every fault kind, workload kind, the zipf distribution, cascades, and
// every delay policy — the fuzzer cannot find bugs in shapes it never
// generates.
func TestGenSpecCoverage(t *testing.T) {
	faultKinds := map[string]bool{}
	workloads := map[string]bool{}
	policies := map[string]bool{}
	zipf, cascade, permanent, multiNode := false, false, false, false
	for seed := int64(0); seed < 500; seed++ {
		s := GenSpec(seed)
		for _, f := range s.Faults {
			faultKinds[f.Kind] = true
			if f.Kind == "crash" && f.DurationS == 0 {
				permanent = true
			}
		}
		for _, src := range s.Sources {
			if src.Workload.Kind != "" {
				workloads[src.Workload.Kind] = true
			}
			if src.Distribution == "zipf" {
				zipf = true
			}
		}
		for _, n := range s.Nodes {
			cascade = cascade || n.Cascade
			if n.FailurePolicy != "" {
				policies[n.FailurePolicy] = true
			}
			if n.Stabilization != "" {
				policies[n.Stabilization] = true
			}
		}
		multiNode = multiNode || len(s.Nodes) >= 3
	}
	for _, k := range []string{"crash", "flap", "disconnect", "stall_boundaries", "partition"} {
		if !faultKinds[k] {
			t.Errorf("no generated spec contains fault kind %q", k)
		}
	}
	for _, k := range []string{"bursty", "ramp"} {
		if !workloads[k] {
			t.Errorf("no generated spec contains workload kind %q", k)
		}
	}
	for _, p := range []string{"process", "delay", "suspend"} {
		if !policies[p] {
			t.Errorf("no generated spec uses policy %q", p)
		}
	}
	if !zipf || !cascade || !permanent || !multiNode {
		t.Errorf("coverage gaps: zipf=%v cascade=%v permanent-crash=%v multi-node=%v",
			zipf, cascade, permanent, multiNode)
	}
}

// TestGenSpecQuietTail: the generator's structural guarantee — every
// fault heals at least settleTailS before the run ends, so end-of-run
// oracles are meaningful on every generated spec.
func TestGenSpecQuietTail(t *testing.T) {
	for seed := int64(0); seed < 1000; seed++ {
		s := GenSpec(seed)
		if len(s.Faults) == 0 {
			if !quietAtEnd(s, s.DurationS) {
				t.Fatalf("seed %d: fault-free spec not quiet", seed)
			}
			continue
		}
		if heal := lastHealS(s, s.DurationS); heal+settleTailS(s) > s.DurationS+1e-9 {
			t.Fatalf("seed %d: last heal %.1fs + tail %.1fs exceeds duration %.1fs",
				seed, heal, settleTailS(s), s.DurationS)
		}
		// quietAtEnd may legitimately be false only for fully crashed
		// groups, which the generator never produces.
		if !quietAtEnd(s, s.DurationS) {
			t.Fatalf("seed %d: generated schedule not quiet at end", seed)
		}
	}
}

// TestCampaignDeterministic: the same master seed yields a byte-identical
// summary across repetitions and worker counts.
func TestCampaignDeterministic(t *testing.T) {
	render := func(parallelism int) []byte {
		sum, err := Campaign(Options{Seed: 11, Runs: 20, Parallelism: parallelism, NoShrink: true})
		if err != nil {
			t.Fatal(err)
		}
		b, err := json.Marshal(sum)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	serial := render(1)
	again := render(1)
	pooled := render(4)
	if string(serial) != string(again) {
		t.Fatal("same seed produced different campaign summaries")
	}
	if string(serial) != string(pooled) {
		t.Fatal("worker count changed the campaign summary")
	}
}

// TestOracleWedgedSUnion: a live replica still holding tentative tuples
// after the schedule went quiet is flagged; the same state mid-fault is
// not.
func TestOracleWedgedSUnion(t *testing.T) {
	s := GenSpec(1)
	s.Faults = nil
	rep := &scenario.Report{
		Scenario:  s.Name,
		DurationS: s.DurationS,
		Nodes: []scenario.NodeReport{
			{Node: "n1", Replica: "n1a", State: "STABLE", HoldsTentative: true},
		},
	}
	if !hasOracle(Check(s, rep), "wedged-sunion") {
		t.Fatal("held tentative bucket after quiet end not flagged")
	}
	// A crashed replica is exempt.
	rep.Nodes[0].Down = true
	if hasOracle(Check(s, rep), "wedged-sunion") {
		t.Fatal("crashed replica must not be flagged as wedged")
	}
	// A fault healing too close to the end suppresses the oracle.
	rep.Nodes[0].Down = false
	s.Faults = []scenario.FaultSpec{{Kind: "disconnect", Source: s.Sources[0].Name,
		AtS: s.DurationS - 3, DurationS: 2}}
	if hasOracle(Check(s, rep), "wedged-sunion") {
		t.Fatal("wedge flagged without a quiet tail")
	}
}

// TestOracleStarvation: a stable stream far short of the fault-free
// reference is flagged once quiet; matching counts are not.
func TestOracleStarvation(t *testing.T) {
	s := GenSpec(2)
	s.Faults = nil
	rep := &scenario.Report{
		DurationS:   s.DurationS,
		Consistency: &scenario.ConsistencyReport{OK: true, Compared: 100, GotStable: 100, RefStable: 1000},
	}
	if !hasOracle(Check(s, rep), "starvation") {
		t.Fatal("starved stable stream not flagged")
	}
	rep.Consistency.GotStable = 995
	if hasOracle(Check(s, rep), "starvation") {
		t.Fatal("healthy stream flagged as starved")
	}
}

// TestOracleAvailability: bound violations without any fault (and with
// unbounded capacity) are flagged; the same count under a fault schedule
// is not.
func TestOracleAvailability(t *testing.T) {
	s := GenSpec(3)
	s.Faults = nil
	rep := &scenario.Report{DurationS: s.DurationS}
	rep.Availability.Violations = 4
	rep.Availability.MaxExcessS = 0.25
	if !hasOracle(Check(s, rep), "availability") {
		t.Fatal("fault-free availability violation not flagged")
	}
	s.Faults = []scenario.FaultSpec{{Kind: "disconnect", Source: s.Sources[0].Name, AtS: 3, DurationS: 2}}
	if hasOracle(Check(s, rep), "availability") {
		t.Fatal("violations under a fault schedule must not be flagged")
	}
}

// TestOracleReportInvariants: internally inconsistent metrics are caught.
func TestOracleReportInvariants(t *testing.T) {
	s := GenSpec(4)
	s.Faults = nil
	rep := &scenario.Report{DurationS: s.DurationS}
	rep.Client.NewTuples = 100
	rep.Client.ThroughputTPS = 1 // wrong: 100 / duration
	if !hasOracle(Check(s, rep), "report-invariant") {
		t.Fatal("throughput mismatch not flagged")
	}
	rep.Client.ThroughputTPS = round3(100 / s.DurationS)
	rep.Client.Tentative = 2
	rep.Client.MaxTentativeStreak = 5
	if !hasOracle(Check(s, rep), "report-invariant") {
		t.Fatal("streak > tentative not flagged")
	}
}

// TestCuratedSpecsPassOracles: the curated scenarios are the known-good
// baseline; the oracles must hold on them (quick mode), or the fuzzer
// would drown in false positives.
func TestCuratedSpecsPassOracles(t *testing.T) {
	spec, err := scenario.Load("../../scenarios/chain-disconnect.json")
	if err != nil {
		t.Fatal(err)
	}
	rep, findings := RunSpec(spec, scenario.Options{Quick: true})
	if rep == nil || len(findings) > 0 {
		t.Fatalf("curated spec flagged: %v", findings)
	}
}

func hasOracle(fs []Finding, oracle string) bool {
	for _, f := range fs {
		if f.Oracle == oracle {
			return true
		}
	}
	return false
}

// TestGenClusterSpec: cluster-shaped specs are deterministic, valid,
// always carry at least one partition fault (the cluster smoke exists to
// run link faults on real sockets), and never schedule process faults
// against more distinct targets than a boss with that many workers could
// survive losing.
func TestGenClusterSpec(t *testing.T) {
	const workers = 3
	for seed := int64(0); seed < 300; seed++ {
		a := GenClusterSpec(seed, workers)
		if err := a.Validate(); err != nil {
			t.Fatalf("seed %d: invalid cluster spec: %v", seed, err)
		}
		b := GenClusterSpec(seed, workers)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("seed %d: cluster generation is not deterministic", seed)
		}
		if !hasPartitionFault(a) {
			t.Fatalf("seed %d: cluster spec has no partition fault", seed)
		}
		if got := len(scenario.FaultTargets(a)); got >= workers {
			t.Fatalf("seed %d: %d distinct process-fault targets for %d workers",
				seed, got, workers)
		}
	}
}
