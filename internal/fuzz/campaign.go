package fuzz

import (
	"fmt"
	"io"
	"sort"

	"borealis/internal/scenario"
)

// Options tunes a fuzzing campaign.
type Options struct {
	// Seed is the master seed: every generated spec derives its own seed
	// from (Seed, run index), so the whole campaign — specs, findings,
	// minimized reproducers — is a pure function of Seed and Runs.
	Seed int64
	// Runs is the number of generated scenarios to execute.
	Runs int
	// Parallelism bounds the RunMany worker pool fanning the generated
	// specs across cores (0 = one worker per core, 1 = serial). Results
	// are identical regardless.
	Parallelism int
	// NoShrink reports raw failing specs without minimizing them.
	NoShrink bool
	// MaxShrinkRuns bounds the oracle re-executions each reduction may
	// spend (0 = the Shrink default).
	MaxShrinkRuns int
}

// Failure is one failing run of a campaign.
type Failure struct {
	// Run is the campaign run index; Seed the derived spec seed.
	Run  int   `json:"run"`
	Seed int64 `json:"seed"`
	// Findings are the oracle violations of the generated spec.
	Findings []Finding `json:"findings"`
	// Spec is the generated spec that failed.
	Spec *scenario.Spec `json:"spec"`
	// Shrunk is the minimized reproducer (nil with Options.NoShrink),
	// ShrunkFindings its violations, ShrinkRuns the reduction cost.
	Shrunk         *scenario.Spec `json:"shrunk,omitempty"`
	ShrunkFindings []Finding      `json:"shrunk_findings,omitempty"`
	ShrinkRuns     int            `json:"shrink_runs,omitempty"`
}

// OracleCount is one oracle's failure tally, for the deterministic
// summary rendering (maps iterate in random order; reports must not).
type OracleCount struct {
	Oracle string `json:"oracle"`
	Count  int    `json:"count"`
}

// Summary is the deterministic result of a campaign: same Seed + Runs ⇒
// byte-identical summary, for any Parallelism.
type Summary struct {
	Seed     int64         `json:"seed"`
	Runs     int           `json:"runs"`
	Failures []Failure     `json:"failures,omitempty"`
	Oracles  []OracleCount `json:"oracles,omitempty"`
}

// Campaign generates opts.Runs scenario specs, fans them through the
// scenario.RunMany worker pool with the Definition 1 audit enabled,
// checks every report against the oracles, and shrinks each failing
// spec to a minimal reproducer. Failures are ordered by run index and
// shrinking is serial, so the summary is identical across repetitions
// and worker counts.
func Campaign(opts Options) (*Summary, error) {
	if opts.Runs <= 0 {
		return nil, fmt.Errorf("fuzz: runs must be positive")
	}
	specs := make([]*scenario.Spec, opts.Runs)
	for i := range specs {
		specs[i] = GenSpec(DeriveSeed(opts.Seed, i))
	}
	reports, err := scenario.RunMany(specs, scenario.Options{Parallelism: opts.Parallelism})
	var runErrs []error
	if err != nil {
		// One broken seed must become a "run-error" finding, not kill
		// the whole campaign (the exact event the fuzzer exists to
		// report): fall back to serial execution, capturing per-spec
		// errors. The serial pass is deterministic, so the summary
		// stays a pure function of the options.
		reports = make([]*scenario.Report, len(specs))
		runErrs = make([]error, len(specs))
		for i, s := range specs {
			reports[i], runErrs[i] = scenario.Run(s, scenario.Options{})
		}
	}
	sum := &Summary{Seed: opts.Seed, Runs: opts.Runs}
	tally := map[string]int{}
	for i, rep := range reports {
		var findings []Finding
		if rep == nil {
			detail := "run failed"
			if runErrs != nil && runErrs[i] != nil {
				detail = runErrs[i].Error()
			}
			findings = []Finding{{Oracle: "run-error", Detail: detail}}
		} else {
			findings = Check(specs[i], rep)
		}
		if len(findings) == 0 {
			continue
		}
		for _, f := range findings {
			tally[f.Oracle]++
		}
		fail := Failure{Run: i, Seed: specs[i].Seed, Findings: findings, Spec: specs[i]}
		if !opts.NoShrink {
			res := Shrink(specs[i], findings[0].Oracle, opts.MaxShrinkRuns)
			fail.Shrunk = res.Spec
			fail.ShrunkFindings = res.Findings
			fail.ShrinkRuns = res.Runs
		}
		sum.Failures = append(sum.Failures, fail)
	}
	for oracle, n := range tally {
		sum.Oracles = append(sum.Oracles, OracleCount{Oracle: oracle, Count: n})
	}
	sort.Slice(sum.Oracles, func(i, j int) bool { return sum.Oracles[i].Oracle < sum.Oracles[j].Oracle })
	return sum, nil
}

// Print renders the deterministic human-readable campaign summary.
func (s *Summary) Print(w io.Writer) {
	fmt.Fprintf(w, "fuzz: %d runs from seed %d — %d failing\n", s.Runs, s.Seed, len(s.Failures))
	for _, oc := range s.Oracles {
		fmt.Fprintf(w, "  oracle %-18s %d findings\n", oc.Oracle, oc.Count)
	}
	for i := range s.Failures {
		f := &s.Failures[i]
		fmt.Fprintf(w, "run %d (seed %d): FAIL\n", f.Run, f.Seed)
		for _, fd := range f.Findings {
			fmt.Fprintf(w, "  %s\n", fd)
		}
		if f.Shrunk != nil {
			fmt.Fprintf(w, "  shrunk to %d nodes, %d sources, %d faults in %d runs\n",
				len(f.Shrunk.Nodes), len(f.Shrunk.Sources), len(f.Shrunk.Faults), f.ShrinkRuns)
			for _, fd := range f.ShrunkFindings {
				fmt.Fprintf(w, "    %s\n", fd)
			}
		}
	}
}
