package fuzz

import (
	"path/filepath"
	"strings"
	"testing"

	"borealis/internal/scenario"
)

// TestDifferentialScenarios runs the differential oracles over every
// curated spec in scenarios/ at full duration: the virtual and
// wall-clock runtimes must produce the same stable output, and RunMany
// must produce byte-identical reports serially and in parallel. These
// are the two substrate guarantees (runtime abstraction, parallel
// executor) everything above them assumes.
func TestDifferentialScenarios(t *testing.T) {
	paths, err := filepath.Glob("../../scenarios/*.json")
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) == 0 {
		t.Fatal("no curated scenarios found")
	}
	for _, path := range paths {
		name := strings.TrimSuffix(filepath.Base(path), ".json")
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			spec, err := scenario.Load(path)
			if err != nil {
				t.Fatal(err)
			}
			if fs := CheckDifferential(spec); len(fs) > 0 {
				t.Fatalf("differential divergence: %v", fs)
			}
		})
	}
}

// TestDifferentialGenerated spot-checks the oracle on generated specs:
// fuzzer output must be differential-clean too, or soak campaigns would
// drown in false positives.
func TestDifferentialGenerated(t *testing.T) {
	if testing.Short() {
		t.Skip("differential oracle runs each spec ~10 times")
	}
	for run := 0; run < 3; run++ {
		s := GenSpec(DeriveSeed(11, run))
		if fs := CheckDifferential(s); len(fs) > 0 {
			t.Fatalf("run %d (seed %d): %v", run, s.Seed, fs)
		}
	}
}
