package fuzz

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"time"

	"borealis/internal/scenario"
)

// SoakOptions tunes a long-running soak campaign.
type SoakOptions struct {
	// Seed is the master seed; every run's spec seed derives from
	// (Seed, global run index), so the campaign's work is a pure function
	// of Seed — only how far it gets depends on the budget.
	Seed int64
	// BatchRuns is the number of specs per batch (default 32). Batches
	// are the unit of checkpointing and budget accounting: state on disk
	// always describes a whole number of batches.
	BatchRuns int
	// MaxBatches caps the total number of completed batches, counting
	// batches replayed from a checkpoint; 0 means the budget decides.
	// With both zero, Soak runs exactly one more batch.
	MaxBatches int
	// Budget is the wall-clock budget: no new batch starts after it is
	// spent. Zero means MaxBatches decides.
	Budget time.Duration
	// Parallelism bounds the RunMany worker pool (0 = one per core).
	// Results are identical regardless.
	Parallelism int
	// MaxShrinkRuns bounds each finding's reduction (0 = Shrink default).
	MaxShrinkRuns int
	// Differential also runs the differential oracles (virtual vs wall
	// clock, serial vs parallel) on every spec whose normal oracles pass.
	// Roughly 5× the per-spec cost; meant for nightly budgets.
	Differential bool
	// MutationPool holds specs to mutate — typically the regression
	// corpus plus the curated scenarios (see LoadPool). Empty means every
	// run generates a fresh spec.
	MutationPool []*scenario.Spec
	// MutateFrac is the fraction of runs drawn by mutating a pool spec
	// rather than generating (default 0.5; ignored with an empty pool).
	MutateFrac float64
	// Checkpoint is the state file: loaded (and validated against Seed
	// and BatchRuns) when it exists, rewritten atomically after every
	// batch. Empty disables persistence.
	Checkpoint string
	// Log receives one progress line per batch; nil is silent.
	Log io.Writer
}

// SoakFinding is one unique failure class found by a soak campaign.
// Identity is the dedup key — oracle class plus shrunk-spec hash — so a
// bug rediscovered by many seeds and mutants is one entry with a count.
type SoakFinding struct {
	Key    string `json:"key"`
	Oracle string `json:"oracle"`
	// Count is how many runs hit this class; the remaining fields
	// describe the first occurrence.
	Count    int    `json:"count"`
	FirstRun int    `json:"first_run"`
	SpecSeed int64  `json:"spec_seed"`
	Origin   string `json:"origin"` // "generated" or "mutated:<base name>"

	Findings       []Finding      `json:"findings"`
	Spec           *scenario.Spec `json:"spec"`
	Shrunk         *scenario.Spec `json:"shrunk,omitempty"`
	ShrunkFindings []Finding      `json:"shrunk_findings,omitempty"`
	ShrinkRuns     int            `json:"shrink_runs,omitempty"`
}

// SoakState is a soak campaign's complete progress: the checkpoint
// written to disk, the value Soak returns, and the summary the CLI
// renders are all this one structure. It contains no clocks or
// hostnames, so interrupt + resume produces a state byte-identical to
// an uninterrupted campaign over the same batches.
type SoakState struct {
	Seed      int64          `json:"seed"`
	BatchRuns int            `json:"batch_runs"`
	Batches   int            `json:"batches"`
	Runs      int            `json:"runs"`
	Mutated   int            `json:"mutated"`
	Findings  []*SoakFinding `json:"findings,omitempty"`
	Oracles   []OracleCount  `json:"oracles,omitempty"`
}

// Soak runs a time-budgeted, checkpointed fuzzing campaign: batches of
// specs — fresh generations interleaved with mutants of the corpus pool
// — fanned through RunMany, audited by every oracle, failures shrunk
// and deduplicated by (oracle class, shrunk-spec hash). After each
// batch the full state is rewritten to opts.Checkpoint, so a multi-hour
// soak survives interruption and resumes exactly where it stopped:
// batch composition depends only on (Seed, batch index), making the
// resumed campaign's state byte-identical to an uninterrupted one.
func Soak(opts SoakOptions) (*SoakState, error) {
	if opts.BatchRuns <= 0 {
		opts.BatchRuns = 32
	}
	st := &SoakState{Seed: opts.Seed, BatchRuns: opts.BatchRuns}
	if opts.Checkpoint != "" {
		loaded, err := loadCheckpoint(opts.Checkpoint)
		if err != nil {
			return nil, err
		}
		if loaded != nil {
			if loaded.Seed != opts.Seed || loaded.BatchRuns != opts.BatchRuns {
				return nil, fmt.Errorf(
					"soak: checkpoint %s is a different campaign (seed %d, batch %d; want seed %d, batch %d)",
					opts.Checkpoint, loaded.Seed, loaded.BatchRuns, opts.Seed, opts.BatchRuns)
			}
			st = loaded
		}
	}
	if opts.MaxBatches == 0 && opts.Budget <= 0 {
		opts.MaxBatches = st.Batches + 1
	}
	start := time.Now()
	for {
		if opts.MaxBatches > 0 && st.Batches >= opts.MaxBatches {
			break
		}
		if opts.Budget > 0 && time.Since(start) >= opts.Budget {
			break
		}
		if err := soakBatch(&opts, st); err != nil {
			return st, err
		}
		if opts.Checkpoint != "" {
			if err := saveCheckpoint(opts.Checkpoint, st); err != nil {
				return st, err
			}
		}
		if opts.Log != nil {
			fmt.Fprintf(opts.Log, "soak: batch %d done — %d runs (%d mutated), %d unique findings\n",
				st.Batches, st.Runs, st.Mutated, len(st.Findings))
		}
	}
	return st, nil
}

// soakBatch composes and executes one batch. Composition is a pure
// function of (seed, batch index): each run flips a per-run coin
// between generating a fresh spec and mutating a pool spec.
func soakBatch(opts *SoakOptions, st *SoakState) error {
	batch := st.Batches
	frac := opts.MutateFrac
	if frac <= 0 {
		frac = 0.5
	}
	specs := make([]*scenario.Spec, opts.BatchRuns)
	origins := make([]string, opts.BatchRuns)
	seeds := make([]int64, opts.BatchRuns)
	mutated := 0
	for i := range specs {
		g := batch*opts.BatchRuns + i
		sg := DeriveSeed(opts.Seed, g)
		seeds[i] = sg
		r := newRNG(sg)
		if len(opts.MutationPool) > 0 && r.chance(frac) {
			base := opts.MutationPool[r.intn(len(opts.MutationPool))]
			specs[i] = Mutate(base, int64(r.next()))
			origins[i] = "mutated:" + base.Name
			mutated++
		} else {
			specs[i] = GenSpec(sg)
			origins[i] = "generated"
		}
	}
	reports, err := scenario.RunMany(specs, scenario.Options{Parallelism: opts.Parallelism})
	var runErrs []error
	if err != nil {
		// Same contract as Campaign: one broken spec becomes a
		// "run-error" finding via a deterministic serial fallback, not a
		// dead campaign.
		reports = make([]*scenario.Report, len(specs))
		runErrs = make([]error, len(specs))
		for i, s := range specs {
			reports[i], runErrs[i] = scenario.Run(s, scenario.Options{})
		}
	}
	tally := map[string]int{}
	for _, oc := range st.Oracles {
		tally[oc.Oracle] = oc.Count
	}
	for i, rep := range reports {
		var findings []Finding
		if rep == nil {
			detail := "run failed"
			if runErrs != nil && runErrs[i] != nil {
				detail = runErrs[i].Error()
			}
			findings = []Finding{{Oracle: "run-error", Detail: detail}}
		} else {
			findings = Check(specs[i], rep)
		}
		if len(findings) == 0 && opts.Differential {
			findings = CheckDifferential(specs[i])
		}
		if len(findings) == 0 {
			continue
		}
		for _, f := range findings {
			tally[f.Oracle]++
		}
		oracle := findings[0].Oracle
		res := Shrink(specs[i], oracle, opts.MaxShrinkRuns)
		key := oracle + ":" + specHash(res.Spec)
		if prev := findByKey(st.Findings, key); prev != nil {
			prev.Count++
			continue
		}
		st.Findings = append(st.Findings, &SoakFinding{
			Key:            key,
			Oracle:         oracle,
			Count:          1,
			FirstRun:       batch*opts.BatchRuns + i,
			SpecSeed:       seeds[i],
			Origin:         origins[i],
			Findings:       findings,
			Spec:           specs[i],
			Shrunk:         res.Spec,
			ShrunkFindings: res.Findings,
			ShrinkRuns:     res.Runs,
		})
	}
	st.Oracles = st.Oracles[:0]
	for oracle, n := range tally {
		st.Oracles = append(st.Oracles, OracleCount{Oracle: oracle, Count: n})
	}
	sort.Slice(st.Oracles, func(i, j int) bool { return st.Oracles[i].Oracle < st.Oracles[j].Oracle })
	if len(st.Oracles) == 0 {
		st.Oracles = nil
	}
	st.Runs += opts.BatchRuns
	st.Mutated += mutated
	st.Batches = batch + 1
	return nil
}

func findByKey(fs []*SoakFinding, key string) *SoakFinding {
	for _, f := range fs {
		if f.Key == key {
			return f
		}
	}
	return nil
}

// specHash fingerprints a spec's structure for finding deduplication,
// ignoring the identity fields (name, seed, description) that differ
// between runs converging on the same minimized shape.
func specHash(s *scenario.Spec) string {
	c := s.Clone()
	c.Name, c.Description, c.Seed = "", "", 0
	b, err := json.Marshal(c)
	if err != nil {
		return "unhashable"
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:8])
}

// loadCheckpoint reads a prior campaign state; (nil, nil) when the file
// does not exist yet.
func loadCheckpoint(path string) (*SoakState, error) {
	b, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("soak: read checkpoint: %w", err)
	}
	st := &SoakState{}
	if err := json.Unmarshal(b, st); err != nil {
		return nil, fmt.Errorf("soak: corrupt checkpoint %s: %w", path, err)
	}
	return st, nil
}

// saveCheckpoint atomically replaces the state file (write temp, rename)
// so an interrupt mid-write leaves the previous consistent state.
func saveCheckpoint(path string, st *SoakState) error {
	b, err := json.MarshalIndent(st, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, b, 0o644); err != nil {
		return fmt.Errorf("soak: write checkpoint: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		return fmt.Errorf("soak: replace checkpoint: %w", err)
	}
	return nil
}

// LoadPool loads every *.json spec under the given directories, sorted
// by directory order then file name, as a soak mutation pool. A
// directory with no specs is fine; an unreadable or invalid spec is an
// error (a broken pool file should fail loudly, not shrink the pool).
func LoadPool(dirs ...string) ([]*scenario.Spec, error) {
	var pool []*scenario.Spec
	for _, dir := range dirs {
		paths, err := filepath.Glob(filepath.Join(dir, "*.json"))
		if err != nil {
			return nil, err
		}
		sort.Strings(paths)
		for _, path := range paths {
			s, err := scenario.Load(path)
			if err != nil {
				return nil, fmt.Errorf("soak: pool spec %s: %w", path, err)
			}
			pool = append(pool, s)
		}
	}
	return pool, nil
}

// Print renders the human-readable campaign summary.
func (st *SoakState) Print(w io.Writer) {
	fmt.Fprintf(w, "soak: %d runs (%d mutated) across %d batches from seed %d — %d unique findings\n",
		st.Runs, st.Mutated, st.Batches, st.Seed, len(st.Findings))
	for _, oc := range st.Oracles {
		fmt.Fprintf(w, "  oracle %-18s %d findings\n", oc.Oracle, oc.Count)
	}
	for _, f := range st.Findings {
		fmt.Fprintf(w, "finding %s (%s, first run %d, seed %d, ×%d):\n",
			f.Key, f.Origin, f.FirstRun, f.SpecSeed, f.Count)
		for _, fd := range f.Findings {
			fmt.Fprintf(w, "  %s\n", fd)
		}
		if f.Shrunk != nil {
			fmt.Fprintf(w, "  shrunk to %d nodes, %d sources, %d faults in %d runs\n",
				len(f.Shrunk.Nodes), len(f.Shrunk.Sources), len(f.Shrunk.Faults), f.ShrinkRuns)
		}
	}
}
