package fuzz

import (
	"bytes"
	"encoding/json"
	"sync"
	"testing"

	"borealis/internal/scenario"
)

// The live protocol is finding-free, so these edge cases substitute
// synthetic failure landscapes through the candidateFindings seam: the
// shrinker must handle budgets dying mid-pass, candidates whose failure
// flips to a different oracle class, and concurrent invocations, even
// when no real bug exists to drive them.

// stubCandidates swaps the candidate evaluator for the duration of one
// test. The stub must be pure: Shrink may run concurrently.
func stubCandidates(t *testing.T, fn func(*scenario.Spec, string) []Finding) {
	t.Helper()
	orig := candidateFindings
	candidateFindings = fn
	t.Cleanup(func() { candidateFindings = orig })
}

// hasFaultKind reports whether any fault of the spec has the given kind.
func hasFaultKind(s *scenario.Spec, kind string) bool {
	for _, f := range s.Faults {
		if f.Kind == kind {
			return true
		}
	}
	return false
}

// richSpec finds a generated spec with several faults including the
// given kinds, so every reduction pass has material to chew through.
func richSpec(t *testing.T, kinds ...string) *scenario.Spec {
	t.Helper()
	for seed := int64(0); seed < 2000; seed++ {
		s := GenSpec(seed)
		if len(s.Faults) < 3 || len(s.Nodes) < 2 {
			continue
		}
		ok := true
		for _, k := range kinds {
			ok = ok && hasFaultKind(s, k)
		}
		if ok {
			return s
		}
	}
	t.Fatalf("no generated spec with faults %v found", kinds)
	return nil
}

// TestShrinkBudgetExhaustionMidPass: when the run budget dies in the
// middle of a reduction pass, Shrink must stop charging runs at exactly
// the cap and return the best candidate found before exhaustion — a
// valid spec still failing the target oracle, not a half-reduced one
// that was never re-checked.
func TestShrinkBudgetExhaustionMidPass(t *testing.T) {
	stubCandidates(t, func(c *scenario.Spec, oracle string) []Finding {
		if hasFaultKind(c, "disconnect") {
			return []Finding{{Oracle: "starvation", Detail: "synthetic"}}
		}
		return nil
	})
	spec := richSpec(t, "disconnect")

	full := Shrink(spec, "starvation", 0)
	if full.Runs <= 7 {
		t.Fatalf("landscape too easy: full reduction spent only %d runs", full.Runs)
	}

	res := Shrink(spec, "starvation", 7)
	if res.Runs != 7 {
		t.Fatalf("budget of 7 runs, spent %d", res.Runs)
	}
	if err := res.Spec.Validate(); err != nil {
		t.Fatalf("budget-exhausted result invalid: %v", err)
	}
	if !hasFaultKind(res.Spec, "disconnect") {
		t.Fatal("budget-exhausted result no longer fails the target oracle")
	}
	if len(res.Findings) == 0 || res.Findings[0].Oracle != "starvation" {
		t.Fatalf("want the original oracle class, got %v", res.Findings)
	}
}

// TestShrinkRejectsOracleFlip: a reduction that still fails — but under
// a different oracle class — must be rejected like a passing one, so
// the minimized spec reproduces the original failure class.
func TestShrinkRejectsOracleFlip(t *testing.T) {
	flipsOffered := 0
	stubCandidates(t, func(c *scenario.Spec, oracle string) []Finding {
		switch {
		case hasFaultKind(c, "disconnect"):
			return []Finding{{Oracle: "starvation", Detail: "synthetic"}}
		case hasFaultKind(c, "partition"):
			// Dropping the disconnect flips the failure to another class.
			flipsOffered++
			return []Finding{{Oracle: "wedged-sunion", Detail: "synthetic flip"}}
		default:
			return nil
		}
	})
	// The spec needs exactly one disconnect, listed after a partition:
	// shrinkFaults drops last-first, so the disconnect-dropping candidate
	// is offered while the partition is still present — the flip moment.
	var spec *scenario.Spec
	for seed := int64(0); seed < 4000 && spec == nil; seed++ {
		s := GenSpec(seed)
		di, pi, ndisc := -1, -1, 0
		for i, f := range s.Faults {
			switch f.Kind {
			case "disconnect":
				ndisc++
				di = i
			case "partition":
				pi = i
			}
		}
		if ndisc == 1 && pi >= 0 && di > pi {
			spec = s
		}
	}
	if spec == nil {
		t.Fatal("no generated spec with a partition-then-disconnect schedule found")
	}

	res := Shrink(spec, "starvation", 0)
	if flipsOffered == 0 {
		t.Fatal("reduction never offered a flipped candidate; landscape too easy")
	}
	if !hasFaultKind(res.Spec, "disconnect") {
		t.Fatalf("minimized spec lost the disconnect that carries the original oracle class: %+v", res.Spec.Faults)
	}
	if hasFaultKind(res.Spec, "partition") {
		t.Fatalf("partition survived although dropping it preserves the failure: %+v", res.Spec.Faults)
	}
	if len(res.Findings) != 1 || res.Findings[0].Oracle != "starvation" {
		t.Fatalf("want a single starvation finding, got %v", res.Findings)
	}
}

// TestShrinkDeterministicAcrossParallelism: concurrent Shrink calls on
// the same input (the soak runner shrinks while RunMany workers churn)
// must not interfere — every invocation lands on the same minimized
// spec, findings, and run count.
func TestShrinkDeterministicAcrossParallelism(t *testing.T) {
	stubCandidates(t, func(c *scenario.Spec, oracle string) []Finding {
		if hasFaultKind(c, "disconnect") && len(c.Nodes) >= 2 {
			return []Finding{{Oracle: "starvation", Detail: "synthetic"}}
		}
		return nil
	})
	spec := richSpec(t, "disconnect")

	const workers = 8
	results := make([][]byte, workers)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			res := Shrink(spec, "starvation", 0)
			b, err := json.Marshal(res)
			if err != nil {
				panic(err)
			}
			results[w] = b
		}(w)
	}
	wg.Wait()
	for w := 1; w < workers; w++ {
		if !bytes.Equal(results[0], results[w]) {
			t.Fatalf("shrink result differs across concurrent invocations:\n%s\nvs\n%s", results[0], results[w])
		}
	}
}
