package fuzz

import (
	"fmt"

	"borealis/internal/scenario"
)

// Mutate derives a new valid spec from a checked-in one by applying one
// to three random edits — the shrinker's reductions run in reverse.
// Where Shrink drops faults, splices out nodes, and lowers scalars,
// Mutate perturbs and duplicates fault schedules, inserts relay nodes,
// and rescales rates and replica counts, exploring the neighborhood of
// specs that already found (or pinned) real bugs. Every edit is
// re-validated; an edit that produces an invalid spec is retried with
// fresh draws and eventually skipped, so the result is always valid.
//
// Mutation preserves the oracle soundness argument rather than GenSpec's
// stronger quiet-tail construction: a perturbed fault may heal too late
// for the structural oracles, in which case Check conditions them off
// (quietAtEnd) and the Definition 1 audit — valid at any prefix — keeps
// watching. Deterministic: same base + same seed ⇒ same mutant.
func Mutate(base *scenario.Spec, seed int64) *scenario.Spec {
	r := newRNG(seed)
	cur := base.Clone()
	cur.Seed = seed
	cur.Name = fmt.Sprintf("%s-m%x", base.Name, uint64(seed))
	cur.Description = ""
	edits := 1 + r.intn(3)
	for e := 0; e < edits; e++ {
		for attempt := 0; attempt < 4; attempt++ {
			c := cur.Clone()
			mutateOnce(r, c)
			if c.Validate() == nil {
				cur = c
				break
			}
		}
	}
	return cur
}

// mutateOnce applies one random edit in place. The caller re-validates.
func mutateOnce(r *rng, s *scenario.Spec) {
	switch u := r.f64(); {
	case u < 0.22:
		jitterFault(r, s)
	case u < 0.34:
		duplicateFault(r, s)
	case u < 0.46:
		addFault(r, s)
	case u < 0.50:
		addPartitionFault(r, s)
	case u < 0.58:
		dropFault(r, s)
	case u < 0.70:
		insertRelayNode(r, s)
	case u < 0.80:
		bumpReplicas(r, s)
	case u < 0.90:
		flipPolicy(r, s)
	default:
		rescaleRate(r, s)
	}
}

// jitterFault moves one fault's onset or stretches its duration.
func jitterFault(r *rng, s *scenario.Spec) {
	if len(s.Faults) == 0 {
		return
	}
	f := &s.Faults[r.intn(len(s.Faults))]
	if r.chance(0.5) {
		at := round1(f.AtS * r.rangeF(0.5, 1.5))
		if at < 2 {
			at = 2
		}
		f.AtS = at
	} else if f.DurationS > 0 {
		f.DurationS = round1(f.DurationS * r.rangeF(0.5, 1.8))
	}
}

// duplicateFault replays an existing fault at a shifted time — the
// double-fault overlap family (a heal racing a second onset) that found
// the resubscribe-replay and in-service-batch bugs.
func duplicateFault(r *rng, s *scenario.Spec) {
	if len(s.Faults) == 0 {
		return
	}
	f := s.Faults[r.intn(len(s.Faults))]
	at := round1(r.rangeF(2, s.DurationS*0.7))
	f.AtS = at
	s.Faults = append(s.Faults, f)
}

// addFault draws a fresh fault from the generator's distribution,
// honoring its quiet-tail window so the addition keeps the structural
// oracles armed when the base schedule already did.
func addFault(r *rng, s *scenario.Spec) {
	if len(s.Nodes) == 0 || len(s.Sources) == 0 {
		return
	}
	permanent := map[string]int{}
	for i := range s.Faults {
		f := &s.Faults[i]
		if f.Kind == "crash" && f.DurationS == 0 {
			permanent[f.Node]++
		}
	}
	if f := genFault(r, s, settleTailS(s), permanent); f != nil {
		s.Faults = append(s.Faults, *f)
	}
}

// addPartitionFault forces a link-level fault into the schedule — the
// overlap of a partition with an existing crash/flap is exactly the fault
// combination the cluster transport's chaos layer exists to survive, so
// the mutator reaches for it far more often than addFault's unbiased draw
// would.
func addPartitionFault(r *rng, s *scenario.Spec) {
	if len(s.Nodes) == 0 || len(s.Sources) == 0 {
		return
	}
	if f := genPartitionFault(r, s, settleTailS(s)); f != nil {
		s.Faults = append(s.Faults, *f)
	}
}

// dropFault removes one fault, probing which half of a compound
// schedule carries the signal.
func dropFault(r *rng, s *scenario.Spec) {
	if len(s.Faults) == 0 {
		return
	}
	i := r.intn(len(s.Faults))
	s.Faults = append(s.Faults[:i], s.Faults[i+1:]...)
	if len(s.Faults) == 0 {
		s.Faults = nil
	}
}

// insertRelayNode is spliceNode in reverse: a new node is wired between
// the client and its input, lengthening the correction path by one
// SUnion stage (deeper cascades are where Definition 1 goes to die).
func insertRelayNode(r *rng, s *scenario.Spec) {
	target := clientInput(s)
	if target == "" {
		return
	}
	name := ""
	for i := 1; ; i++ {
		name = fmt.Sprintf("mx%d", i)
		if !nameTaken(s, name) {
			break
		}
	}
	n := scenario.NodeSpec{Name: name, Inputs: []string{target}}
	if r.chance(0.4) {
		d := round1(r.rangeF(1, 6))
		n.DelayS = &d
	}
	if r.chance(0.3) {
		n.Stabilization = pick(r, policies)
	}
	s.Nodes = append(s.Nodes, n)
	s.Client.Input = name
}

// bumpReplicas moves one node's replica count within [1, 3].
func bumpReplicas(r *rng, s *scenario.Spec) {
	if len(s.Nodes) == 0 {
		return
	}
	n := &s.Nodes[r.intn(len(s.Nodes))]
	rep := replicasOf(s, n)
	if r.chance(0.5) && rep < 3 {
		rep++
	} else if rep > 1 {
		rep--
	}
	n.Replicas = &rep
}

// flipPolicy rotates one node's failure or stabilization policy.
func flipPolicy(r *rng, s *scenario.Spec) {
	if len(s.Nodes) == 0 {
		return
	}
	n := &s.Nodes[r.intn(len(s.Nodes))]
	if r.chance(0.5) {
		n.FailurePolicy = pick(r, policies)
	} else {
		n.Stabilization = pick(r, policies)
	}
}

// rescaleRate scales one source group's aggregate rate.
func rescaleRate(r *rng, s *scenario.Spec) {
	if len(s.Sources) == 0 {
		return
	}
	ss := &s.Sources[r.intn(len(s.Sources))]
	rate := round1(ss.Rate * r.rangeF(0.6, 1.6))
	if rate < 30 {
		rate = 30
	}
	ss.Rate = rate
	if ss.Workload.ToRate > 0 {
		ss.Workload.ToRate = round1(ss.Workload.ToRate * r.rangeF(0.6, 1.6))
	}
}

// nameTaken reports whether a node name would collide with any existing
// node, source group, or expanded source member stream.
func nameTaken(s *scenario.Spec, name string) bool {
	for i := range s.Nodes {
		if s.Nodes[i].Name == name {
			return true
		}
	}
	for i := range s.Sources {
		if refersToSource(&s.Sources[i], name) {
			return true
		}
	}
	return false
}
