package fuzz

import (
	"strings"

	"borealis/internal/scenario"
)

// ShrinkResult is the outcome of minimizing a failing spec.
type ShrinkResult struct {
	// Spec is the smallest spec found that still fails the oracle.
	Spec *scenario.Spec `json:"spec"`
	// Findings are the oracle violations of the minimized spec.
	Findings []Finding `json:"findings"`
	// Runs counts the oracle re-executions the reduction spent.
	Runs int `json:"runs"`
}

// Shrink minimizes a failing spec by deterministic greedy reduction:
// structural passes first (drop faults, splice out nodes, drop sources
// and operators), then simplifications (constant workloads, default
// policies) and scalar reductions (shorter durations, lower rates,
// fewer replicas). Each candidate is re-validated and re-run; a
// reduction is kept only when the run still produces a finding of the
// same oracle kind, so the minimized spec reproduces the original
// failure class, not just any failure. Passes repeat until a whole
// cycle makes no progress or maxRuns oracle executions are spent
// (0 means the default budget of 400).
//
// The reduction is fully deterministic: same spec + same oracle ⇒ same
// minimized spec.
func Shrink(spec *scenario.Spec, oracle string, maxRuns int) ShrinkResult {
	if maxRuns <= 0 {
		maxRuns = 400
	}
	res := ShrinkResult{Spec: spec.Clone()}
	fails := func(c *scenario.Spec) bool {
		if res.Runs >= maxRuns {
			return false
		}
		if c.Validate() != nil {
			return false
		}
		res.Runs++
		// A candidate whose reduction flips the failure to a different
		// oracle class is rejected like a passing one: the minimized
		// spec must reproduce the original failure, not just any.
		for _, f := range candidateFindings(c, oracle) {
			if f.Oracle == oracle {
				return true
			}
		}
		return false
	}
	res.Spec = reduce(res.Spec, fails)
	res.Findings = candidateFindings(res.Spec, oracle)
	return res
}

// candidateFindings evaluates one shrink candidate: the differential
// oracle re-runs its own comparison (one predicate call is one oracle
// execution against the budget, whatever it costs internally); every
// other class runs the spec once through the full oracle suite. A
// package variable so shrinker edge-case tests can substitute synthetic
// failure landscapes — oracle flips, budgets dying mid-pass — that the
// live protocol no longer produces.
var candidateFindings = func(c *scenario.Spec, oracle string) []Finding {
	if oracle == OracleDifferential {
		return CheckDifferential(c)
	}
	rep, err := scenario.Run(c, scenario.Options{})
	if err != nil {
		return []Finding{{Oracle: "run-error", Detail: err.Error()}}
	}
	return Check(c, rep)
}

// reduce is the oracle-agnostic greedy reduction loop: it applies every
// pass against an arbitrary failure predicate until a whole cycle makes
// no progress. Split from Shrink so the reducer machinery is testable
// with synthetic predicates that do not run the simulator.
func reduce(spec *scenario.Spec, fails func(*scenario.Spec) bool) *scenario.Spec {
	passes := []func(*scenario.Spec, func(*scenario.Spec) bool) *scenario.Spec{
		shrinkFaults,
		shrinkNodes,
		shrinkSources,
		shrinkOperators,
		shrinkSimplify,
		shrinkScalars,
	}
	for {
		smaller := false
		for _, pass := range passes {
			if c := pass(spec, fails); c != nil {
				spec = c
				smaller = true
			}
		}
		if !smaller {
			break
		}
	}
	return spec
}

// shrinkFaults drops faults one at a time, last first (later faults are
// more often incidental to an earlier root cause).
func shrinkFaults(s *scenario.Spec, fails func(*scenario.Spec) bool) *scenario.Spec {
	var best *scenario.Spec
	cur := s
	for i := len(cur.Faults) - 1; i >= 0; i-- {
		c := cur.Clone()
		c.Faults = append(c.Faults[:i], c.Faults[i+1:]...)
		if len(c.Faults) == 0 {
			c.Faults = nil
		}
		if fails(c) {
			cur, best = c, c
		}
	}
	return best
}

// shrinkNodes splices out one node at a time: consumers inherit the
// removed node's inputs, the client retargets to a surviving node, and
// faults addressing the node are dropped with it.
func shrinkNodes(s *scenario.Spec, fails func(*scenario.Spec) bool) *scenario.Spec {
	var best *scenario.Spec
	cur := s
	for i := len(cur.Nodes) - 1; i >= 0; i-- {
		if len(cur.Nodes) == 1 {
			break
		}
		if c := spliceNode(cur, i); c != nil && fails(c) {
			cur, best = c, c
			// Indices shifted; restart the scan from the new tail.
			i = len(cur.Nodes)
		}
	}
	return best
}

// spliceNode removes node i from a copy of the spec, rewiring consumers
// and the client around it; nil when the node cannot be spliced (it is
// the client input and has no node-typed input to retarget to).
func spliceNode(s *scenario.Spec, i int) *scenario.Spec {
	c := s.Clone()
	dead := c.Nodes[i]
	if clientInput(c) == dead.Name {
		retarget := ""
		for _, in := range dead.Inputs {
			for j := range c.Nodes {
				if j != i && c.Nodes[j].Name == in {
					retarget = in
				}
			}
		}
		if retarget == "" {
			return nil
		}
		c.Client.Input = retarget
	}
	c.Nodes = append(c.Nodes[:i], c.Nodes[i+1:]...)
	for j := range c.Nodes {
		n := &c.Nodes[j]
		var inputs []string
		for _, in := range n.Inputs {
			if in != dead.Name {
				inputs = appendUnique(inputs, in)
				continue
			}
			for _, up := range dead.Inputs {
				inputs = appendUnique(inputs, up)
			}
		}
		n.Inputs = inputs
	}
	var faults []scenario.FaultSpec
	for _, f := range c.Faults {
		if f.Node == dead.Name || mentionsEndpoint(f, dead.Name) {
			continue
		}
		faults = append(faults, f)
	}
	c.Faults = faults
	return c
}

// shrinkSources drops whole source groups (keeping at least one), and
// with them every node input and fault that referenced the group.
func shrinkSources(s *scenario.Spec, fails func(*scenario.Spec) bool) *scenario.Spec {
	var best *scenario.Spec
	cur := s
	for i := len(cur.Sources) - 1; i >= 0 && len(cur.Sources) > 1; i-- {
		c := cur.Clone()
		dead := c.Sources[i]
		c.Sources = append(c.Sources[:i], c.Sources[i+1:]...)
		ok := true
		for j := range c.Nodes {
			n := &c.Nodes[j]
			var inputs []string
			for _, in := range n.Inputs {
				if !refersToSource(&dead, in) {
					inputs = append(inputs, in)
				}
			}
			if len(inputs) == 0 {
				ok = false
				break
			}
			n.Inputs = inputs
		}
		if !ok {
			continue
		}
		var faults []scenario.FaultSpec
		for _, f := range c.Faults {
			if refersToSource(&dead, f.Source) || refersToSource(&dead, f.From) || refersToSource(&dead, f.To) {
				continue
			}
			faults = append(faults, f)
		}
		c.Faults = faults
		if fails(c) {
			cur, best = c, c
		}
	}
	return best
}

// shrinkOperators drops operators one at a time across all nodes.
func shrinkOperators(s *scenario.Spec, fails func(*scenario.Spec) bool) *scenario.Spec {
	var best *scenario.Spec
	cur := s
	for ni := range cur.Nodes {
		for oi := len(cur.Nodes[ni].Operators) - 1; oi >= 0; oi-- {
			c := cur.Clone()
			ops := c.Nodes[ni].Operators
			ops = append(ops[:oi], ops[oi+1:]...)
			if len(ops) == 0 {
				ops = nil
			}
			c.Nodes[ni].Operators = ops
			if fails(c) {
				cur, best = c, c
			}
		}
	}
	return best
}

// shrinkSimplify zeroes optional shaping: workloads to constant,
// distributions to uniform, member counts to 1, policies and cascade to
// their defaults, and the consistency reference off when the oracle does
// not need it.
func shrinkSimplify(s *scenario.Spec, fails func(*scenario.Spec) bool) *scenario.Spec {
	var best *scenario.Spec
	cur := s
	attempt := func(mutate func(*scenario.Spec) bool) {
		c := cur.Clone()
		if !mutate(c) {
			return
		}
		if fails(c) {
			cur, best = c, c
		}
	}
	for i := range cur.Sources {
		i := i
		attempt(func(c *scenario.Spec) bool {
			if c.Sources[i].Workload == (scenario.WorkloadSpec{}) {
				return false
			}
			c.Sources[i].Workload = scenario.WorkloadSpec{}
			return true
		})
		attempt(func(c *scenario.Spec) bool {
			if c.Sources[i].Distribution == "" && c.Sources[i].Skew == 0 {
				return false
			}
			c.Sources[i].Distribution, c.Sources[i].Skew = "", 0
			return true
		})
		attempt(func(c *scenario.Spec) bool {
			if c.Sources[i].Count <= 1 {
				return false
			}
			c.Sources[i].Count = 0
			return true
		})
	}
	for i := range cur.Nodes {
		i := i
		attempt(func(c *scenario.Spec) bool {
			n := &c.Nodes[i]
			if !n.Cascade && n.FailurePolicy == "" && n.Stabilization == "" {
				return false
			}
			n.Cascade, n.FailurePolicy, n.Stabilization = false, "", ""
			return true
		})
		attempt(func(c *scenario.Spec) bool {
			if c.Nodes[i].Replicas == nil {
				return false
			}
			c.Nodes[i].Replicas = nil
			return true
		})
	}
	return best
}

// shrinkScalars lowers rates, shortens durations and pulls fault times
// earlier, trying halves before milder reductions.
func shrinkScalars(s *scenario.Spec, fails func(*scenario.Spec) bool) *scenario.Spec {
	var best *scenario.Spec
	cur := s
	attempt := func(mutate func(*scenario.Spec) bool) {
		c := cur.Clone()
		if !mutate(c) {
			return
		}
		if fails(c) {
			cur, best = c, c
		}
	}
	for _, scale := range []float64{0.5, 0.75} {
		scale := scale
		attempt(func(c *scenario.Spec) bool {
			d := round1(c.DurationS * scale)
			if d < 10 || d == c.DurationS {
				return false
			}
			c.DurationS = d
			return true
		})
		for i := range cur.Sources {
			i := i
			attempt(func(c *scenario.Spec) bool {
				r := round1(c.Sources[i].Rate * scale)
				if r < 30 || r == c.Sources[i].Rate {
					return false
				}
				c.Sources[i].Rate = r
				if c.Sources[i].Workload.ToRate > 0 {
					c.Sources[i].Workload.ToRate = round1(c.Sources[i].Workload.ToRate * scale)
				}
				return true
			})
		}
		for i := range cur.Faults {
			i := i
			attempt(func(c *scenario.Spec) bool {
				at := round1(c.Faults[i].AtS * scale)
				if at < 2 || at == c.Faults[i].AtS {
					return false
				}
				c.Faults[i].AtS = at
				return true
			})
			attempt(func(c *scenario.Spec) bool {
				d := round1(c.Faults[i].DurationS * scale)
				if d < 0.5 || d == c.Faults[i].DurationS {
					return false
				}
				c.Faults[i].DurationS = d
				return true
			})
		}
	}
	return best
}

// clientInput mirrors the scenario engine's client-input resolution.
func clientInput(s *scenario.Spec) string {
	if s.Client.Input != "" {
		return s.Client.Input
	}
	if len(s.Nodes) > 0 {
		return s.Nodes[len(s.Nodes)-1].Name
	}
	return ""
}

// mentionsEndpoint reports whether a fault's partition endpoints address
// the named node (whole group or any replica of it).
func mentionsEndpoint(f scenario.FaultSpec, node string) bool {
	match := func(ep string) bool {
		return ep == node || strings.HasPrefix(ep, node+"/")
	}
	return f.Kind == "partition" && (match(f.From) || match(f.To))
}

// refersToSource reports whether name addresses the group or one of its
// expanded members.
func refersToSource(ss *scenario.SourceSpec, name string) bool {
	if name == "" {
		return false
	}
	if name == ss.Name {
		return true
	}
	if ss.Count > 1 && strings.HasPrefix(name, ss.Name) {
		rest := name[len(ss.Name):]
		for _, r := range rest {
			if r < '0' || r > '9' {
				return false
			}
		}
		return rest != ""
	}
	return false
}

func appendUnique(list []string, v string) []string {
	for _, x := range list {
		if x == v {
			return list
		}
	}
	return append(list, v)
}
