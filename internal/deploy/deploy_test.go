package deploy

import (
	"testing"

	"borealis/internal/node"
	"borealis/internal/operator"
	"borealis/internal/tuple"
	"borealis/internal/vtime"
)

const (
	ms  = vtime.Millisecond
	sec = vtime.Second
)

func pairSpec() ChainSpec {
	return ChainSpec{
		Depth:    1,
		Replicas: 2,
		Sources:  3,
		Rate:     300,
		Delay:    2 * sec,
	}
}

// runClean runs a failure-free copy of the spec and returns the client's
// delivered view as the reference stream for the consistency audit.
func runClean(t *testing.T, spec ChainSpec, dur int64) []tuple.Tuple {
	t.Helper()
	dep, err := BuildChain(spec)
	if err != nil {
		t.Fatal(err)
	}
	dep.Start()
	dep.RunFor(dur)
	return dep.Client.View()
}

func TestStableFlowEndToEnd(t *testing.T) {
	dep, err := BuildChain(pairSpec())
	if err != nil {
		t.Fatal(err)
	}
	dep.Start()
	dep.RunFor(5 * sec)
	st := dep.Client.Stats()
	if st.NewTuples == 0 {
		t.Fatal("client received nothing")
	}
	if st.Tentative != 0 {
		t.Fatalf("stable run produced %d tentative tuples", st.Tentative)
	}
	if st.StableDuplicates != 0 {
		t.Fatalf("stable duplicates: %d", st.StableDuplicates)
	}
	// Normal processing latency: bucket + boundary + proxy ≈ ≤ 600 ms.
	if st.MaxLatency > 600*ms {
		t.Fatalf("normal latency too high: %d ms", st.MaxLatency/ms)
	}
	for _, row := range dep.Nodes {
		for _, n := range row {
			if n.State() != node.StateStable {
				t.Fatalf("node %s not stable: %v", n.ID(), n.State())
			}
		}
	}
}

func TestBothReplicasProduceIdenticalStableStreams(t *testing.T) {
	dep, err := BuildChain(pairSpec())
	if err != nil {
		t.Fatal(err)
	}
	var a, b []tuple.Tuple
	dep.Nodes[0][0].OnDeliver(func(_ string, tp tuple.Tuple) {
		if tp.IsData() {
			a = append(a, tp)
		}
	})
	dep.Nodes[0][1].OnDeliver(func(_ string, tp tuple.Tuple) {
		if tp.IsData() {
			b = append(b, tp)
		}
	})
	dep.Start()
	dep.RunFor(5 * sec)
	if len(a) == 0 {
		t.Fatal("no output")
	}
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if !tuple.SameValue(a[i], b[i]) {
			t.Fatalf("replicas diverged at %d: %v vs %v", i, a[i], b[i])
		}
	}
	if diff := len(a) - len(b); diff > 50 && diff < -50 {
		t.Fatalf("replica output lengths far apart: %d vs %d", len(a), len(b))
	}
}

func TestMaskedFailureProducesNoTentative(t *testing.T) {
	// Failure (1s) shorter than the 0.9·D = 1.8s suspension: fully
	// masked (§6.1).
	spec := pairSpec()
	dep, err := BuildChain(spec)
	if err != nil {
		t.Fatal(err)
	}
	dep.DisconnectSource(1, 5*sec, 1*sec)
	dep.Start()
	dep.RunFor(15 * sec)
	st := dep.Client.Stats()
	if st.Tentative != 0 {
		t.Fatalf("masked failure produced %d tentative tuples", st.Tentative)
	}
	audit := dep.Client.VerifyEventualConsistency(runClean(t, spec, 15*sec))
	if !audit.OK {
		t.Fatalf("consistency audit failed: %s", audit.Reason)
	}
	if dep.Nodes[0][0].Reconciliations != 0 {
		t.Fatal("masked failure must not reconcile")
	}
}

func TestFailureProducesTentativeThenCorrects(t *testing.T) {
	spec := pairSpec()
	dep, err := BuildChain(spec)
	if err != nil {
		t.Fatal(err)
	}
	dep.DisconnectSource(1, 5*sec, 6*sec) // 6s failure > 1.8s suspension
	dep.Start()
	dep.RunFor(25 * sec)
	st := dep.Client.Stats()
	if st.Tentative == 0 {
		t.Fatal("long failure must produce tentative tuples")
	}
	if st.Undos == 0 {
		t.Fatal("corrections must be preceded by an undo")
	}
	if st.RecDones == 0 {
		t.Fatal("rec_done must reach the client")
	}
	audit := dep.Client.VerifyEventualConsistency(runClean(t, spec, 25*sec))
	if !audit.OK {
		t.Fatalf("consistency audit failed: %s", audit.Reason)
	}
	if audit.Compared == 0 {
		t.Fatal("audit compared nothing")
	}
	// Both replicas must have reconciled, staggered one at a time.
	r0 := dep.Nodes[0][0].Reconciliations
	r1 := dep.Nodes[0][1].Reconciliations
	if r0 != 1 || r1 != 1 {
		t.Fatalf("want one reconciliation per replica, got %d and %d", r0, r1)
	}
	for _, n := range dep.Nodes[0] {
		if n.State() != node.StateStable {
			t.Fatalf("node %s not stable after recovery: %v", n.ID(), n.State())
		}
	}
}

func TestAvailabilityBoundHeldDuringFailure(t *testing.T) {
	// Process & Process with D=2s: Procnew stays ≈ 0.9·D + overheads
	// regardless of failure duration (Table III).
	spec := pairSpec()
	dep, err := BuildChain(spec)
	if err != nil {
		t.Fatal(err)
	}
	dep.DisconnectSource(1, 5*sec, 8*sec)
	dep.Start()
	dep.RunFor(4 * sec)
	dep.Client.ResetLatency()
	dep.RunFor(21 * sec)
	st := dep.Client.Stats()
	// Bound: 0.9·2s suspension + client/serialization overheads < 2.6s.
	if st.MaxLatency > 2600*ms {
		t.Fatalf("availability bound broken: Procnew = %d ms", st.MaxLatency/ms)
	}
	if st.MaxLatency < 1800*ms {
		t.Fatalf("suspension shorter than 0.9·D? Procnew = %d ms", st.MaxLatency/ms)
	}
}

func TestSuspendVariantTradesLatencyForConsistency(t *testing.T) {
	// Suspend during failure AND stabilization (no stagger): zero
	// tentative tuples, but latency grows with the failure duration.
	spec := pairSpec()
	spec.FailurePolicy = operator.PolicySuspend
	spec.StabilizationPolicy = operator.PolicySuspend
	dep, err := BuildChain(spec)
	if err != nil {
		t.Fatal(err)
	}
	dep.DisconnectSource(1, 5*sec, 4*sec)
	dep.Start()
	dep.RunFor(20 * sec)
	st := dep.Client.Stats()
	if st.Tentative != 0 {
		t.Fatalf("suspend variant produced %d tentative tuples", st.Tentative)
	}
	if st.MaxLatency < 3900*ms {
		t.Fatalf("suspend latency should reflect the 4s failure, got %d ms", st.MaxLatency/ms)
	}
	audit := dep.Client.VerifyEventualConsistency(runClean(t, spec, 20*sec))
	if !audit.OK {
		t.Fatalf("consistency audit failed: %s", audit.Reason)
	}
}

func TestCrashFailoverToReplica(t *testing.T) {
	spec := pairSpec()
	dep, err := BuildChain(spec)
	if err != nil {
		t.Fatal(err)
	}
	dep.CrashNode(1, 0, 5*sec) // crash n1a, the client's first upstream
	dep.Start()
	dep.RunFor(4 * sec)
	dep.Client.ResetLatency()
	dep.RunFor(11 * sec)
	st := dep.Client.Stats()
	// The replica is STABLE: the switch masks the crash completely.
	if st.Tentative != 0 {
		t.Fatalf("crash failover should be maskable, got %d tentative", st.Tentative)
	}
	if st.StableDuplicates != 0 {
		t.Fatalf("failover duplicated %d stable tuples", st.StableDuplicates)
	}
	// Detection (keep-alive timeout ≈ 250ms) + switch + replay: the
	// client keeps receiving within well under a second of extra delay.
	if st.MaxLatency > 1500*ms {
		t.Fatalf("failover gap too long: %d ms", st.MaxLatency/ms)
	}
	if dep.Client.Proxy().CM().Switches == 0 {
		t.Fatal("client never switched replicas")
	}
}

func TestCrashRecoveryRebuildsReplica(t *testing.T) {
	// §4.5: n1a crashes and later restarts; it must rebuild state from
	// the source logs, return to STABLE, and be a usable failover target
	// when the surviving replica crashes in turn.
	spec := pairSpec()
	dep, err := BuildChain(spec)
	if err != nil {
		t.Fatal(err)
	}
	dep.CrashNode(1, 0, 5*sec)
	dep.RestartNode(1, 0, 15*sec)
	dep.CrashNode(1, 1, 40*sec) // after n1a recovered, kill n1b
	dep.Start()
	dep.RunFor(30 * sec)
	n1a := dep.Nodes[0][0]
	if n1a.Recovering() {
		t.Fatal("n1a still recovering 15s after restart")
	}
	if n1a.State() != node.StateStable {
		t.Fatalf("recovered node state = %v, want STABLE", n1a.State())
	}
	dep.RunFor(30 * sec) // n1b crashes at 40s; client must fail over to n1a
	st := dep.Client.Stats()
	if st.Tentative != 0 {
		t.Fatalf("failover to a recovered replica should be clean, got %d tentative", st.Tentative)
	}
	audit := dep.Client.VerifyEventualConsistency(runClean(t, spec, 60*sec))
	if !audit.OK {
		t.Fatalf("consistency audit failed: %s", audit.Reason)
	}
	if dep.Client.Proxy().CM().Switches < 2 {
		t.Fatalf("client should have switched twice, got %d", dep.Client.Proxy().CM().Switches)
	}
}

func TestChainDepth2StallFailure(t *testing.T) {
	spec := pairSpec()
	spec.Depth = 2
	dep, err := BuildChain(spec)
	if err != nil {
		t.Fatal(err)
	}
	dep.StallSourceBoundaries(0, 5*sec, 5*sec)
	dep.Start()
	dep.RunFor(25 * sec)
	st := dep.Client.Stats()
	if st.Tentative == 0 {
		t.Fatal("stall failure must produce tentative output")
	}
	audit := dep.Client.VerifyEventualConsistency(runClean(t, spec, 25*sec))
	if !audit.OK {
		t.Fatalf("consistency audit failed: %s", audit.Reason)
	}
	// Every replica at every level reconciled exactly once, staggered.
	for li, row := range dep.Nodes {
		for _, n := range row {
			if n.Reconciliations != 1 {
				t.Fatalf("level %d node %s reconciliations = %d, want 1", li+1, n.ID(), n.Reconciliations)
			}
		}
	}
}

func TestJoinPipelineSurvivesFailure(t *testing.T) {
	spec := pairSpec()
	spec.WithJoin = true
	spec.Rate = 300
	dep, err := BuildChain(spec)
	if err != nil {
		t.Fatal(err)
	}
	dep.DisconnectSource(2, 5*sec, 4*sec)
	dep.Start()
	dep.RunFor(20 * sec)
	audit := dep.Client.VerifyEventualConsistency(runClean(t, spec, 20*sec))
	if !audit.OK {
		t.Fatalf("join pipeline audit failed: %s", audit.Reason)
	}
	if audit.Compared == 0 {
		t.Fatal("join produced no comparable output")
	}
}

func TestAckTruncationBoundsOutputBuffers(t *testing.T) {
	spec := pairSpec()
	spec.AckInterval = 500 * ms
	dep, err := BuildChain(spec)
	if err != nil {
		t.Fatal(err)
	}
	dep.Start()
	dep.RunFor(20 * sec)
	ob := dep.Nodes[0][0].Output("t1")
	if ob.Truncated == 0 {
		t.Fatal("acks never truncated the output buffer")
	}
	// The buffer must stay bounded well below the full run's output.
	if ob.Len() > 3000 {
		t.Fatalf("output buffer grew to %d tuples despite acks", ob.Len())
	}
}

func TestSUnionTreeOverlappingFailures(t *testing.T) {
	// Fig. 11(a): failures on inputs 1 and 3 overlap; corrections happen
	// once, after both heal.
	spec := SUnionTreeSpec{Rate: 400, Delay: 2 * sec, RecordClient: true}
	dep, err := BuildSUnionTree(spec)
	if err != nil {
		t.Fatal(err)
	}
	n := dep.Nodes[0][0]
	dep.Sim.At(5*sec, dep.Sources[0].Disconnect)
	dep.Sim.At(8*sec, dep.Sources[2].Disconnect)
	dep.Sim.At(11*sec, dep.Sources[0].Reconnect) // failure 1 heals first
	dep.Sim.At(14*sec, dep.Sources[2].Reconnect)
	dep.Start()
	dep.RunFor(25 * sec)
	if n.Reconciliations != 1 {
		t.Fatalf("overlapping failures must reconcile once, got %d", n.Reconciliations)
	}
	st := dep.Client.Stats()
	if st.Tentative == 0 || st.RecDones == 0 {
		t.Fatalf("expected tentative output and a rec_done: %+v", st)
	}
	// Reference: same tree without failures.
	ref, err := BuildSUnionTree(SUnionTreeSpec{Rate: 400, Delay: 2 * sec})
	if err != nil {
		t.Fatal(err)
	}
	ref.Start()
	ref.RunFor(25 * sec)
	audit := dep.Client.VerifyEventualConsistency(ref.Client.View())
	if !audit.OK {
		t.Fatalf("consistency audit failed: %s", audit.Reason)
	}
}

func TestSUnionTreeFailureDuringRecovery(t *testing.T) {
	// Fig. 11(b): failure 2 strikes as failure 1 heals; each correction
	// sequence ends with its own REC_DONE and only the second failure's
	// tentative tuples are corrected the second time.
	spec := SUnionTreeSpec{Rate: 400, Delay: 2 * sec, RecordClient: true}
	dep, err := BuildSUnionTree(spec)
	if err != nil {
		t.Fatal(err)
	}
	n := dep.Nodes[0][0]
	dep.Sim.At(5*sec, dep.Sources[0].Disconnect)
	dep.Sim.At(10*sec, func() {
		dep.Sources[0].Reconnect()
		dep.Sources[2].Disconnect() // strikes right at heal time
	})
	dep.Sim.At(16*sec, dep.Sources[2].Reconnect)
	dep.Start()
	dep.RunFor(30 * sec)
	if n.Reconciliations != 2 {
		t.Fatalf("want 2 reconciliations (one per failure), got %d", n.Reconciliations)
	}
	st := dep.Client.Stats()
	if st.RecDones < 2 {
		t.Fatalf("want ≥ 2 rec_done markers, got %d", st.RecDones)
	}
	ref, err := BuildSUnionTree(SUnionTreeSpec{Rate: 400, Delay: 2 * sec})
	if err != nil {
		t.Fatal(err)
	}
	ref.Start()
	ref.RunFor(30 * sec)
	audit := dep.Client.VerifyEventualConsistency(ref.Client.View())
	if !audit.OK {
		t.Fatalf("consistency audit failed: %s", audit.Reason)
	}
}

func TestDelayPolicyReducesTentativeCount(t *testing.T) {
	run := func(fp, sp operator.DelayPolicy) uint64 {
		spec := pairSpec()
		spec.Rate = 600
		spec.FailurePolicy = fp
		spec.StabilizationPolicy = sp
		dep, err := BuildChain(spec)
		if err != nil {
			t.Fatal(err)
		}
		dep.DisconnectSource(1, 5*sec, 6*sec)
		dep.Start()
		dep.RunFor(25 * sec)
		return dep.Client.Stats().Tentative
	}
	pp := run(operator.PolicyProcess, operator.PolicyProcess)
	dd := run(operator.PolicyDelay, operator.PolicyDelay)
	if pp == 0 {
		t.Fatal("process&process produced no tentative tuples")
	}
	if dd >= pp {
		t.Fatalf("delay&delay (%d) must beat process&process (%d)", dd, pp)
	}
}
