package deploy

import (
	"testing"

	"borealis/internal/client"
	"borealis/internal/node"
	"borealis/internal/operator"
	"borealis/internal/tuple"
)

// TestTwoSimultaneousSourceFailures: DPC handles multiple concurrent
// failures (§2.2); corrections happen once, after both heal.
func TestTwoSimultaneousSourceFailures(t *testing.T) {
	spec := pairSpec()
	dep, err := BuildChain(spec)
	if err != nil {
		t.Fatal(err)
	}
	dep.DisconnectSource(0, 5*sec, 8*sec)
	dep.DisconnectSource(2, 7*sec, 4*sec) // overlaps, heals first
	dep.Start()
	dep.RunFor(30 * sec)
	for _, n := range dep.Nodes[0] {
		if n.Reconciliations != 1 {
			t.Fatalf("%s reconciliations = %d, want 1 (after all failures heal)", n.ID(), n.Reconciliations)
		}
	}
	audit := dep.Client.VerifyEventualConsistency(runClean(t, spec, 30*sec))
	if !audit.OK {
		t.Fatalf("audit: %s", audit.Reason)
	}
}

// TestAllSourcesFail: with every input gone, the only tentative output is
// the flush of the partial buckets in flight at the moment of failure; the
// silence that follows carries no availability obligation (Property 1 needs
// available inputs), and everything is corrected on heal.
func TestAllSourcesFail(t *testing.T) {
	spec := pairSpec()
	dep, err := BuildChain(spec)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < spec.Sources; i++ {
		dep.DisconnectSource(i, 5*sec, 5*sec)
	}
	dep.Start()
	dep.RunFor(25 * sec)
	st := dep.Client.Stats()
	if st.Tentative > uint64(spec.Rate) {
		t.Fatalf("only the in-flight partial buckets may go tentative, got %d", st.Tentative)
	}
	audit := dep.Client.VerifyEventualConsistency(runClean(t, spec, 25*sec))
	if !audit.OK {
		t.Fatalf("audit: %s", audit.Reason)
	}
}

// TestDepth4ChainLongStall exercises the full Fig. 14 topology through a
// failure longer than the pipeline delay.
func TestDepth4ChainLongStall(t *testing.T) {
	spec := pairSpec()
	spec.Depth = 4
	dep, err := BuildChain(spec)
	if err != nil {
		t.Fatal(err)
	}
	dep.StallSourceBoundaries(1, 5*sec, 15*sec)
	dep.Start()
	dep.RunFor(60 * sec)
	st := dep.Client.Stats()
	if st.Tentative == 0 {
		t.Fatal("long stall must produce tentative output")
	}
	audit := dep.Client.VerifyEventualConsistency(runClean(t, spec, 60*sec))
	if !audit.OK {
		t.Fatalf("audit: %s", audit.Reason)
	}
	for li, row := range dep.Nodes {
		for _, n := range row {
			if n.State() != node.StateStable {
				t.Fatalf("level %d %s not stable after recovery", li+1, n.ID())
			}
		}
	}
}

// TestTentativeBoundariesChainConsistency: the footnote-5 extension must
// not affect the corrected stream, only latency.
func TestTentativeBoundariesChainConsistency(t *testing.T) {
	spec := pairSpec()
	spec.Depth = 3
	spec.TentativeBoundaries = true
	dep, err := BuildChain(spec)
	if err != nil {
		t.Fatal(err)
	}
	dep.StallSourceBoundaries(0, 5*sec, 6*sec)
	dep.Start()
	dep.RunFor(30 * sec)
	if dep.Client.Stats().Tentative == 0 {
		t.Fatal("expected tentative output")
	}
	audit := dep.Client.VerifyEventualConsistency(runClean(t, spec, 30*sec))
	if !audit.OK {
		t.Fatalf("audit: %s", audit.Reason)
	}
}

// TestFineGrainedKeepsUnaffectedStreamStable (§8.2): a node with two
// disjoint paths advertises per-stream states, so a failure on one input
// leaves the other path's consumers untouched.
func TestFineGrainedKeepsUnaffectedStreamStable(t *testing.T) {
	spec := pairSpec()
	spec.FineGrained = true
	dep, err := BuildChain(spec)
	if err != nil {
		t.Fatal(err)
	}
	dep.DisconnectSource(1, 5*sec, 4*sec)
	dep.Start()
	dep.RunFor(25 * sec)
	// The single output is affected here (all inputs merge), so this
	// checks that fine-grained mode at least matches whole-node results.
	audit := dep.Client.VerifyEventualConsistency(runClean(t, spec, 25*sec))
	if !audit.OK {
		t.Fatalf("fine-grained audit: %s", audit.Reason)
	}
}

// TestPartitionBetweenLevels: a network partition between chain levels is
// detected by boundary silence plus keep-alive timeouts and healed with a
// resubscription replay.
func TestPartitionBetweenLevels(t *testing.T) {
	spec := pairSpec()
	spec.Depth = 2
	dep, err := BuildChain(spec)
	if err != nil {
		t.Fatal(err)
	}
	// Cut n2a from both level-1 replicas: n2a must fail over... to
	// nothing (both upstreams unreachable), stall, then recover when the
	// partition heals. Meanwhile the client can switch to n2b.
	dep.Partition("n2a", "n1a", 6*sec, 5*sec)
	dep.Partition("n2a", "n1b", 6*sec, 5*sec)
	dep.Start()
	dep.RunFor(30 * sec)
	audit := dep.Client.VerifyEventualConsistency(runClean(t, spec, 30*sec))
	if !audit.OK {
		t.Fatalf("audit: %s", audit.Reason)
	}
	if dep.Client.Stats().StableDuplicates != 0 {
		t.Fatal("partition healing duplicated stable tuples")
	}
}

// TestRepeatedFailuresOnSameStream: failure → recovery → failure again,
// exercising checkpoint-epoch turnover.
func TestRepeatedFailuresOnSameStream(t *testing.T) {
	spec := pairSpec()
	dep, err := BuildChain(spec)
	if err != nil {
		t.Fatal(err)
	}
	dep.DisconnectSource(1, 5*sec, 4*sec)
	dep.DisconnectSource(1, 25*sec, 4*sec)
	dep.Start()
	dep.RunFor(50 * sec)
	for _, n := range dep.Nodes[0] {
		if n.Reconciliations != 2 {
			t.Fatalf("%s reconciliations = %d, want 2", n.ID(), n.Reconciliations)
		}
	}
	audit := dep.Client.VerifyEventualConsistency(runClean(t, spec, 50*sec))
	if !audit.OK {
		t.Fatalf("audit: %s", audit.Reason)
	}
}

// TestSuspendStabilizationSkipsStagger: with PolicySuspend both replicas
// reconcile simultaneously — no replica stays available.
func TestSuspendStabilizationSkipsStagger(t *testing.T) {
	spec := pairSpec()
	spec.Capacity = 1000 // finite: stabilization takes observable time
	spec.StabilizationPolicy = operator.PolicySuspend
	dep, err := BuildChain(spec)
	if err != nil {
		t.Fatal(err)
	}
	var aStart, bStart int64
	dep.Sim.NewTicker(10*ms, func() {
		if aStart == 0 && dep.Nodes[0][0].State() == node.StateStabilization {
			aStart = dep.Sim.Now()
		}
		if bStart == 0 && dep.Nodes[0][1].State() == node.StateStabilization {
			bStart = dep.Sim.Now()
		}
	})
	dep.DisconnectSource(1, 5*sec, 6*sec)
	dep.Start()
	dep.RunFor(30 * sec)
	if aStart == 0 || bStart == 0 {
		t.Fatal("both replicas should have reconciled")
	}
	gap := aStart - bStart
	if gap < 0 {
		gap = -gap
	}
	if gap > 500*ms {
		t.Fatalf("suspend variant should reconcile simultaneously, gap %d ms", gap/ms)
	}
}

// TestStaggeredStabilizationKeepsOneReplicaUp: with Process, the replicas
// must NOT overlap in STABILIZATION.
func TestStaggeredStabilizationKeepsOneReplicaUp(t *testing.T) {
	spec := pairSpec()
	spec.Rate = 900
	spec.Capacity = 2500 // finite: stabilization takes observable time
	dep, err := BuildChain(spec)
	if err != nil {
		t.Fatal(err)
	}
	overlap := false
	dep.Sim.NewTicker(10*ms, func() {
		a := dep.Nodes[0][0].State() == node.StateStabilization
		b := dep.Nodes[0][1].State() == node.StateStabilization
		if a && b {
			overlap = true
		}
	})
	dep.DisconnectSource(1, 5*sec, 8*sec)
	dep.Start()
	dep.RunFor(40 * sec)
	if overlap {
		t.Fatal("stagger protocol let both replicas reconcile at once")
	}
	if dep.Nodes[0][0].Reconciliations+dep.Nodes[0][1].Reconciliations != 2 {
		t.Fatal("both replicas should eventually reconcile")
	}
}

// TestClientFollowsCorrectionsThroughDualConnection inspects the §4.4.3
// mechanics end to end: during one replica's stabilization the client keeps
// receiving fresh (tentative) data from the other.
func TestClientFollowsCorrectionsThroughDualConnection(t *testing.T) {
	spec := pairSpec()
	spec.Rate = 600
	spec.Capacity = 1500 // finite: stabilization takes observable time
	dep, err := BuildChain(spec)
	if err != nil {
		t.Fatal(err)
	}
	// Track what arrives while either replica stabilizes.
	var freshDuringStab int
	stabActive := func() bool {
		return dep.Nodes[0][0].State() == node.StateStabilization ||
			dep.Nodes[0][1].State() == node.StateStabilization
	}
	dep.Client.OnDeliver(func(d client.Delivery) {
		if d.Tuple.Type == tuple.Tentative && stabActive() {
			freshDuringStab++
		}
	})
	dep.DisconnectSource(1, 5*sec, 10*sec)
	dep.Start()
	dep.RunFor(40 * sec)
	if freshDuringStab == 0 {
		t.Fatal("client received no fresh data during stabilization: dual connection broken")
	}
}
