// Topology builder: assembles deployments over arbitrary loop-free graphs
// of replicated node groups. The paper's fixed evaluation topologies
// (BuildChain, BuildSUnionTree) are thin presets over BuildTopology; the
// scenario engine (internal/scenario) compiles declarative specs into
// TopologySpec values and drives the result on the simulator.
package deploy

import (
	"fmt"

	"borealis/internal/client"
	"borealis/internal/diagram"
	"borealis/internal/fabric"
	"borealis/internal/netsim"
	"borealis/internal/node"
	"borealis/internal/operator"
	"borealis/internal/runtime"
	"borealis/internal/source"
	"borealis/internal/tuple"
	"borealis/internal/vtime"
)

// TopologySource describes one data source endpoint.
type TopologySource struct {
	// ID is the network endpoint; Stream names the produced stream
	// (defaults to ID).
	ID, Stream string
	// Rate is the production rate in tuples/second.
	Rate float64
	// TickInterval / BoundaryInterval override the topology defaults.
	TickInterval, BoundaryInterval int64
	// Payload builds tuple payloads (nil = [seq]).
	Payload func(seq uint64) []int64
	// LogCap bounds the source's persistent log (0 = unbounded).
	LogCap int
}

// NodeGroup describes one logical processing node, deployed as Replicas
// identical replica endpoints named Name+"a", Name+"b", ...
type NodeGroup struct {
	// Name is the logical node name; replica endpoints derive from it.
	Name string
	// Output names the group's output stream (default Name+".out").
	Output string
	// Inputs lists the streams the group consumes — source streams or
	// other groups' Output streams, in SUnion port order.
	Inputs []string
	// Replicas is the replication factor (default 1, max 26).
	Replicas int
	// Delay is the SUnion availability bound D assigned to this group.
	Delay int64
	// Cascade replaces the single len(Inputs)-port SUnion with the
	// Fig. 10 left-deep chain of two-port SUnions (su1, su2, ...): su1
	// merges Inputs[0] and Inputs[1], each later SUnion merges the
	// previous one's output with the next input stream.
	Cascade bool
	// Operators returns fresh mid-chain operators for one replica,
	// connected linearly (port 0) between the serializing SUnion(s) and
	// the SOutput. Called once per replica: operators hold state and
	// must never be shared between replicas.
	Operators func() []operator.Operator
	// Capacity is the replica processing rate in tuples/second (0 = ∞).
	Capacity float64
	// FailurePolicy / StabilizationPolicy select the §6 variant
	// (defaults: Process & Process).
	FailurePolicy, StabilizationPolicy operator.DelayPolicy
	// TentativeWait / TentativeBoundaries tune SUnion tentative flushing.
	TentativeWait       int64
	TentativeBoundaries bool
	// BufferMode / BufferCap / FineGrained: §8 extensions.
	BufferMode  node.BufferMode
	BufferCap   int
	FineGrained bool
}

// TopologyClient describes the client proxy terminating the deployment.
type TopologyClient struct {
	// Stream is the output stream to consume (default: the Output of
	// the last group listed).
	Stream string
	// BucketSize / Delay / TentativeWait parameterize the proxy SUnion.
	BucketSize, Delay, TentativeWait int64
	// TentativeBoundaries enables the footnote-5 extension at the proxy.
	TentativeBoundaries bool
	// Record keeps the per-delivery trace.
	Record bool
	// NoAudit strips the client's consistency-audit instrumentation
	// (throughput benchmarks only; see client.Config.NoAudit).
	NoAudit bool
}

// TopologySpec describes a full deployment: sources, a DAG of replicated
// node groups, and one client.
type TopologySpec struct {
	Sources []TopologySource
	Groups  []NodeGroup
	Client  TopologyClient
	// BucketSize / BoundaryInterval / TickInterval are the
	// serialization-grain defaults applied everywhere.
	BucketSize, BoundaryInterval, TickInterval int64
	// StallTimeout / KeepAlive / AckInterval tune failure detection and
	// output-buffer truncation on every node and the client.
	StallTimeout, KeepAlive, AckInterval int64
	// PerTuple runs every node and the client proxy on the reference
	// per-tuple data plane instead of the staged batch plane.
	PerTuple bool
}

func (s *TopologySpec) normalize() error {
	if len(s.Sources) == 0 {
		return fmt.Errorf("deploy: topology needs at least one source")
	}
	if len(s.Groups) == 0 {
		return fmt.Errorf("deploy: topology needs at least one node group")
	}
	if s.BucketSize <= 0 {
		s.BucketSize = 100 * vtime.Millisecond
	}
	if s.BoundaryInterval <= 0 {
		s.BoundaryInterval = 100 * vtime.Millisecond
	}
	if s.TickInterval <= 0 {
		s.TickInterval = 10 * vtime.Millisecond
	}
	for i := range s.Sources {
		src := &s.Sources[i]
		if src.ID == "" {
			return fmt.Errorf("deploy: source %d has no ID", i)
		}
		if src.Stream == "" {
			src.Stream = src.ID
		}
		if src.Rate <= 0 {
			return fmt.Errorf("deploy: source %q has non-positive rate", src.ID)
		}
		if src.TickInterval <= 0 {
			src.TickInterval = s.TickInterval
		}
		if src.BoundaryInterval <= 0 {
			src.BoundaryInterval = s.BoundaryInterval
		}
	}
	for i := range s.Groups {
		g := &s.Groups[i]
		if g.Name == "" {
			return fmt.Errorf("deploy: group %d has no name", i)
		}
		if g.Output == "" {
			g.Output = g.Name + ".out"
		}
		if len(g.Inputs) == 0 {
			return fmt.Errorf("deploy: group %q has no inputs", g.Name)
		}
		if g.Replicas < 1 {
			g.Replicas = 1
		}
		if g.Replicas > 26 {
			return fmt.Errorf("deploy: group %q has %d replicas (max 26)", g.Name, g.Replicas)
		}
		if g.Cascade && len(g.Inputs) < 2 {
			return fmt.Errorf("deploy: group %q: cascade needs ≥ 2 inputs", g.Name)
		}
		if g.FailurePolicy == operator.PolicyNone {
			g.FailurePolicy = operator.PolicyProcess
		}
		if g.StabilizationPolicy == operator.PolicyNone {
			g.StabilizationPolicy = operator.PolicyProcess
		}
	}
	if s.Client.Stream == "" {
		s.Client.Stream = s.Groups[len(s.Groups)-1].Output
	}
	if s.Client.BucketSize <= 0 {
		s.Client.BucketSize = s.BucketSize
	}
	if s.Client.Delay <= 0 {
		s.Client.Delay = 50 * vtime.Millisecond
	}
	if s.Client.TentativeWait < 0 {
		s.Client.TentativeWait = 0
	}
	return nil
}

// GroupReplicaID names replica r of a logical node: "n2" + 1 → "n2b".
func GroupReplicaID(group string, replica int) string {
	return fmt.Sprintf("%s%c", group, 'a'+replica)
}

// validateTopology checks stream wiring and rejects cycles among groups.
// Returns each stream's producer group index (-1 for sources).
func validateTopology(s *TopologySpec) (map[string]int, error) {
	producer := make(map[string]int, len(s.Sources)+len(s.Groups))
	for _, src := range s.Sources {
		if _, dup := producer[src.Stream]; dup {
			return nil, fmt.Errorf("deploy: stream %q produced twice", src.Stream)
		}
		producer[src.Stream] = -1
	}
	names := make(map[string]bool, len(s.Groups))
	for gi, g := range s.Groups {
		if names[g.Name] {
			return nil, fmt.Errorf("deploy: duplicate group name %q", g.Name)
		}
		names[g.Name] = true
		if _, dup := producer[g.Output]; dup {
			return nil, fmt.Errorf("deploy: stream %q produced twice", g.Output)
		}
		producer[g.Output] = gi
	}
	for _, g := range s.Groups {
		seen := make(map[string]bool, len(g.Inputs))
		for _, in := range g.Inputs {
			if _, ok := producer[in]; !ok {
				return nil, fmt.Errorf("deploy: group %q consumes unknown stream %q", g.Name, in)
			}
			if seen[in] {
				return nil, fmt.Errorf("deploy: group %q consumes stream %q twice", g.Name, in)
			}
			seen[in] = true
		}
	}
	// Kahn's algorithm over group→group edges; leftovers are a cycle.
	indeg := make([]int, len(s.Groups))
	adj := make([][]int, len(s.Groups))
	for gi, g := range s.Groups {
		for _, in := range g.Inputs {
			if pi := producer[in]; pi >= 0 {
				adj[pi] = append(adj[pi], gi)
				indeg[gi]++
			}
		}
	}
	var queue []int
	for gi := range s.Groups {
		if indeg[gi] == 0 {
			queue = append(queue, gi)
		}
	}
	done := 0
	for len(queue) > 0 {
		gi := queue[0]
		queue = queue[1:]
		done++
		for _, next := range adj[gi] {
			if indeg[next]--; indeg[next] == 0 {
				queue = append(queue, next)
			}
		}
	}
	if done != len(s.Groups) {
		return nil, fmt.Errorf("deploy: topology cycle among node groups")
	}
	if _, ok := producer[s.Client.Stream]; !ok || producer[s.Client.Stream] < 0 {
		return nil, fmt.Errorf("deploy: client consumes %q, which is not a group output", s.Client.Stream)
	}
	return producer, nil
}

// buildGroupDiagram assembles one replica's query diagram: the serializing
// SUnion (or cascade), the group's operator chain, and the SOutput.
func buildGroupDiagram(s *TopologySpec, g *NodeGroup) (*diagram.Diagram, error) {
	b := diagram.NewBuilder()
	suCfg := func(ports int) operator.SUnionConfig {
		return operator.SUnionConfig{
			Ports:               ports,
			BucketSize:          s.BucketSize,
			Delay:               g.Delay,
			TentativeWait:       g.TentativeWait,
			TentativeBoundaries: g.TentativeBoundaries,
		}
	}
	var last string
	if g.Cascade {
		// Fig. 10: left-deep chain of two-port SUnions.
		for i := 1; i < len(g.Inputs); i++ {
			name := fmt.Sprintf("su%d", i)
			b.Add(operator.NewSUnion(name, suCfg(2)))
			if i == 1 {
				b.Input(g.Inputs[0], name, 0)
			} else {
				b.Connect(fmt.Sprintf("su%d", i-1), name, 0)
			}
			b.Input(g.Inputs[i], name, 1)
			last = name
		}
	} else {
		name := "pass"
		if len(g.Inputs) > 1 {
			name = "merge"
		}
		b.Add(operator.NewSUnion(name, suCfg(len(g.Inputs))))
		for i, in := range g.Inputs {
			b.Input(in, name, i)
		}
		last = name
	}
	if g.Operators != nil {
		for _, op := range g.Operators() {
			b.Add(op)
			b.Connect(last, op.Name(), 0)
			last = op.Name()
		}
	}
	b.Add(operator.NewSOutput("sout"))
	b.Connect(last, "sout", 0)
	b.Output(g.Output, "sout")
	d, err := b.Build()
	if err != nil {
		return nil, fmt.Errorf("deploy: group %q: %w", g.Name, err)
	}
	return d, nil
}

// BuildTopology assembles a deployment from an arbitrary DAG spec on a
// fresh virtual-time runtime — the deterministic default. Call Start on
// the result to begin.
func BuildTopology(spec TopologySpec) (*Deployment, error) {
	return BuildTopologyOn(runtime.NewVirtual(), spec)
}

// BuildTopologyOn assembles a deployment from an arbitrary DAG spec on the
// given runtime: every source, node and client schedules exclusively
// through it, so the same spec runs deterministically on a virtual clock
// or paced against real time on a wall clock. Call Start on the result.
func BuildTopologyOn(rt runtime.Runtime, spec TopologySpec) (*Deployment, error) {
	return buildOn(rt, nil, spec, nil)
}

// BuildPartitionOn assembles the slice of a topology owned by one cluster
// worker: only the endpoints in owned (source IDs, replica IDs like "n2b",
// and/or "client") are constructed, on the given fabric — the TCP transport
// in a real cluster. All wiring is by endpoint ID, so the partition
// subscribes to its remote upstreams exactly as it would to local ones.
// Non-owned slots are nil: Deployment.Sources holds owned sources only,
// Nodes rows keep their shape with nil holes, Client may be nil.
func BuildPartitionOn(rt runtime.Runtime, fab fabric.Fabric, spec TopologySpec, owned map[string]bool) (*Deployment, error) {
	if fab == nil {
		return nil, fmt.Errorf("deploy: partition build needs a fabric")
	}
	if owned == nil {
		return nil, fmt.Errorf("deploy: partition build needs an ownership set")
	}
	return buildOn(rt, fab, spec, owned)
}

// buildOn is the shared topology constructor. fab nil means a fresh netsim
// on rt (the single-process default); owned nil means build every endpoint.
func buildOn(rt runtime.Runtime, fab fabric.Fabric, spec TopologySpec, owned map[string]bool) (*Deployment, error) {
	if err := spec.normalize(); err != nil {
		return nil, err
	}
	producer, err := validateTopology(&spec)
	if err != nil {
		return nil, err
	}
	if fab == nil {
		net := netsim.New(rt)
		fab = net
	}
	owns := func(id string) bool { return owned == nil || owned[id] }
	dep := &Deployment{
		RT:          rt,
		Fab:         fab,
		Topology:    &spec,
		groupIndex:  make(map[string]int, len(spec.Groups)),
		sourceIndex: make(map[string]int, len(spec.Sources)),
	}
	if net, ok := fab.(*netsim.Net); ok {
		dep.Net = net
	}
	if vc, ok := rt.(*runtime.VirtualClock); ok {
		dep.Sim = vc.Sim
	}

	for i, ss := range spec.Sources {
		if !owns(ss.ID) {
			continue
		}
		payload := ss.Payload
		if payload == nil {
			idx := int64(i + 1)
			var arena tuple.I64Arena
			payload = func(seq uint64) []int64 {
				p := arena.Alloc(2)
				p[0], p[1] = int64(seq), idx
				return p
			}
		}
		dep.Sources = append(dep.Sources, source.New(rt, fab, source.Config{
			ID:               ss.ID,
			Stream:           ss.Stream,
			Rate:             ss.Rate,
			TickInterval:     ss.TickInterval,
			BoundaryInterval: ss.BoundaryInterval,
			Payload:          payload,
			LogCap:           ss.LogCap,
		}))
		dep.sourceIndex[ss.ID] = len(dep.Sources) - 1
	}

	// producersOf maps a stream to the endpoints able to serve it, in
	// replica-preference order (Table II switching tries them in order).
	producersOf := func(stream string) []string {
		if gi := producer[stream]; gi >= 0 {
			g := &spec.Groups[gi]
			eps := make([]string, g.Replicas)
			for r := 0; r < g.Replicas; r++ {
				eps[r] = GroupReplicaID(g.Name, r)
			}
			return eps
		}
		for _, ss := range spec.Sources {
			if ss.Stream == stream {
				return []string{ss.ID}
			}
		}
		return nil
	}
	// consumers maps each group output to the endpoints expected to ack
	// it (downstream replicas, plus the client on its stream).
	consumers := make(map[string][]string)
	for _, g := range spec.Groups {
		for _, in := range g.Inputs {
			if producer[in] >= 0 {
				for r := 0; r < g.Replicas; r++ {
					consumers[in] = append(consumers[in], GroupReplicaID(g.Name, r))
				}
			}
		}
	}
	consumers[spec.Client.Stream] = append(consumers[spec.Client.Stream], "client")

	for gi := range spec.Groups {
		g := &spec.Groups[gi]
		row := make([]*node.Node, g.Replicas)
		for r := 0; r < g.Replicas; r++ {
			if !owns(GroupReplicaID(g.Name, r)) {
				continue
			}
			d, err := buildGroupDiagram(&spec, g)
			if err != nil {
				return nil, err
			}
			var peers []string
			for p := 0; p < g.Replicas; p++ {
				if p != r {
					peers = append(peers, GroupReplicaID(g.Name, p))
				}
			}
			ups := make(map[string][]string, len(g.Inputs))
			for _, in := range g.Inputs {
				ups[in] = producersOf(in)
			}
			n, err := node.New(rt, fab, d, node.Config{
				ID:                  GroupReplicaID(g.Name, r),
				Capacity:            g.Capacity,
				FailurePolicy:       g.FailurePolicy,
				StabilizationPolicy: g.StabilizationPolicy,
				StallTimeout:        spec.StallTimeout,
				Peers:               peers,
				Upstreams:           ups,
				Downstreams:         map[string][]string{g.Output: consumers[g.Output]},
				BufferMode:          g.BufferMode,
				BufferCap:           g.BufferCap,
				FineGrained:         g.FineGrained,
				CM:                  node.CMConfig{KeepAlive: spec.KeepAlive},
				AckInterval:         spec.AckInterval,
				PerTuple:            spec.PerTuple,
			})
			if err != nil {
				return nil, fmt.Errorf("deploy: group %q replica %d: %w", g.Name, r, err)
			}
			row[r] = n
		}
		dep.Nodes = append(dep.Nodes, row)
		dep.groupIndex[g.Name] = gi
	}

	if !owns("client") {
		return dep, nil
	}
	cl, err := client.New(rt, fab, client.Config{
		ID:                  "client",
		Stream:              spec.Client.Stream,
		Upstreams:           producersOf(spec.Client.Stream),
		BucketSize:          spec.Client.BucketSize,
		Delay:               spec.Client.Delay,
		TentativeWait:       spec.Client.TentativeWait,
		StallTimeout:        spec.StallTimeout,
		CM:                  node.CMConfig{KeepAlive: spec.KeepAlive},
		AckInterval:         spec.AckInterval,
		TentativeBoundaries: spec.Client.TentativeBoundaries,
		Record:              spec.Client.Record,
		NoAudit:             spec.Client.NoAudit,
		PerTuple:            spec.PerTuple,
	})
	if err != nil {
		return nil, err
	}
	dep.Client = cl
	return dep, nil
}

// Group returns the replica row of a logical node group, or nil.
func (d *Deployment) Group(name string) []*node.Node {
	gi, ok := d.groupIndex[name]
	if !ok {
		return nil
	}
	return d.Nodes[gi]
}

// GroupNames returns the logical node names in build order (empty for
// preset deployments built before generalization — all presets now route
// through BuildTopology, so it is populated everywhere).
func (d *Deployment) GroupNames() []string {
	if d.Topology == nil {
		return nil
	}
	names := make([]string, len(d.Topology.Groups))
	for i, g := range d.Topology.Groups {
		names[i] = g.Name
	}
	return names
}

// SourceByID returns the source with the given endpoint ID, or nil.
func (d *Deployment) SourceByID(id string) *source.Source {
	i, ok := d.sourceIndex[id]
	if !ok {
		return nil
	}
	return d.Sources[i]
}

// CrashGroup fail-stops a named group's replica at the given time.
func (d *Deployment) CrashGroup(group string, replica int, at int64) error {
	n, err := d.replica(group, replica)
	if err != nil {
		return err
	}
	d.RT.At(at, n.Crash)
	return nil
}

// RestartGroup recovers a named group's replica at the given time.
func (d *Deployment) RestartGroup(group string, replica int, at int64) error {
	n, err := d.replica(group, replica)
	if err != nil {
		return err
	}
	d.RT.At(at, n.Restart)
	return nil
}

func (d *Deployment) replica(group string, replica int) (*node.Node, error) {
	row := d.Group(group)
	if row == nil {
		return nil, fmt.Errorf("deploy: unknown group %q", group)
	}
	if replica < 0 || replica >= len(row) {
		return nil, fmt.Errorf("deploy: group %q has no replica %d", group, replica)
	}
	return row[replica], nil
}
