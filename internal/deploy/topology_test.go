package deploy

import (
	"strings"
	"testing"

	"borealis/internal/operator"
	"borealis/internal/tuple"
	"borealis/internal/vtime"
)

func diamondSpec() TopologySpec {
	// The two branches transform differently so the merged stream holds
	// no legitimately identical tuples (the client's duplicate heuristic
	// keys on stime + payload).
	evens := func() []operator.Operator {
		return []operator.Operator{operator.NewFilter("evens", func(t tuple.Tuple) bool {
			return t.Field(0)%2 == 0
		})}
	}
	triple := func() []operator.Operator {
		return []operator.Operator{operator.NewMap("triple", func(d []int64) []int64 {
			out := append([]int64(nil), d...)
			out[0] *= 3
			return out
		})}
	}
	return TopologySpec{
		Sources: []TopologySource{{ID: "src", Stream: "s", Rate: 200}},
		Groups: []NodeGroup{
			{Name: "a", Output: "ta", Inputs: []string{"s"}, Replicas: 2, Delay: vtime.Second},
			{Name: "b", Output: "tb", Inputs: []string{"ta"}, Replicas: 2, Delay: vtime.Second, Operators: evens},
			{Name: "c", Output: "tc", Inputs: []string{"ta"}, Replicas: 2, Delay: vtime.Second, Operators: triple},
			{Name: "d", Output: "td", Inputs: []string{"tb", "tc"}, Replicas: 2, Delay: vtime.Second},
		},
	}
}

// TestTopologyDiamond runs a diamond (fan-out + fan-in) deployment — a
// shape the chain and SUnion-tree presets cannot express — through a
// partition and checks output and recovery.
func TestTopologyDiamond(t *testing.T) {
	dep, err := BuildTopology(diamondSpec())
	if err != nil {
		t.Fatal(err)
	}
	if got := len(dep.Nodes); got != 4 {
		t.Fatalf("group rows = %d, want 4", got)
	}
	if dep.Group("d") == nil || len(dep.Group("d")) != 2 {
		t.Fatalf("Group(d) = %v", dep.Group("d"))
	}
	if dep.SourceByID("src") == nil {
		t.Fatal("SourceByID(src) = nil")
	}
	// Cut branch b from its upstream for a while.
	dep.Partition("ba", "aa", 5*vtime.Second, 3*vtime.Second)
	dep.Partition("ba", "ab", 5*vtime.Second, 3*vtime.Second)
	dep.Partition("bb", "aa", 5*vtime.Second, 3*vtime.Second)
	dep.Partition("bb", "ab", 5*vtime.Second, 3*vtime.Second)
	dep.Start()
	dep.RunFor(20 * vtime.Second)
	st := dep.Client.Stats()
	if st.NewTuples == 0 {
		t.Fatal("no output through the diamond")
	}
	if st.StableDuplicates != 0 {
		t.Fatalf("stable duplicates: %d", st.StableDuplicates)
	}
	if st.Tentative == 0 {
		t.Fatal("partition of every b↔a link should force tentative output")
	}
}

// TestTopologyValidation exercises the builder's error paths.
func TestTopologyValidation(t *testing.T) {
	cases := []struct {
		name    string
		mutate  func(*TopologySpec)
		wantErr string
	}{
		{"cycle", func(s *TopologySpec) {
			s.Groups[0].Inputs = []string{"s", "td"}
		}, "cycle"},
		{"unknown stream", func(s *TopologySpec) {
			s.Groups[3].Inputs = []string{"tb", "ghost"}
		}, `unknown stream "ghost"`},
		{"duplicate group", func(s *TopologySpec) {
			s.Groups[1].Name = "a"
		}, "duplicate group"},
		{"duplicate stream", func(s *TopologySpec) {
			s.Groups[2].Output = "tb"
		}, "produced twice"},
		{"bad rate", func(s *TopologySpec) {
			s.Sources[0].Rate = 0
		}, "non-positive rate"},
		{"no inputs", func(s *TopologySpec) {
			s.Groups[0].Inputs = nil
		}, "no inputs"},
		{"client stream", func(s *TopologySpec) {
			s.Client.Stream = "s" // a source stream, not a group output
		}, "not a group output"},
		{"cascade arity", func(s *TopologySpec) {
			s.Groups[0].Cascade = true
		}, "cascade needs"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			spec := diamondSpec()
			tc.mutate(&spec)
			_, err := BuildTopology(spec)
			if err == nil {
				t.Fatalf("want error containing %q, got nil", tc.wantErr)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("want error containing %q, got %q", tc.wantErr, err)
			}
		})
	}
}

// TestChainPresetEquivalence: the chain preset still produces the exact
// shape the experiments rely on — level/replica naming, per-level streams,
// and a working failure path.
func TestChainPresetEquivalence(t *testing.T) {
	dep, err := BuildChain(ChainSpec{Depth: 2, Replicas: 2, Sources: 2, Rate: 200})
	if err != nil {
		t.Fatal(err)
	}
	if dep.Topology == nil {
		t.Fatal("chain preset did not go through BuildTopology")
	}
	if got := dep.Nodes[0][0].ID(); got != "n1a" {
		t.Fatalf("node ID = %q, want n1a", got)
	}
	if got := dep.Nodes[1][1].ID(); got != "n2b" {
		t.Fatalf("node ID = %q, want n2b", got)
	}
	if dep.Group("n2")[0] != dep.Nodes[1][0] {
		t.Fatal("Group(n2) does not match Nodes[1]")
	}
	if got := dep.Topology.Client.Stream; got != "t2" {
		t.Fatalf("client stream = %q, want t2", got)
	}
}

// TestCascadeMatchesSUnionTree: the tree preset builds the Fig. 10 cascade
// (three two-port SUnions) on a single node.
func TestCascadeMatchesSUnionTree(t *testing.T) {
	dep, err := BuildSUnionTree(SUnionTreeSpec{Rate: 200})
	if err != nil {
		t.Fatal(err)
	}
	d := dep.Nodes[0][0].Engine().Diagram()
	sus := d.SUnions()
	if len(sus) != 3 {
		t.Fatalf("SUnions = %v, want su1 su2 su3", sus)
	}
	for i, want := range []string{"su1", "su2", "su3"} {
		if sus[i] != want {
			t.Fatalf("SUnions = %v, want su1 su2 su3", sus)
		}
	}
	if _, ok := d.Op("su1").(*operator.SUnion); !ok {
		t.Fatal("su1 is not an SUnion")
	}
}
