package deploy

import (
	"fmt"
	"math/rand"
	"testing"

	"borealis/internal/node"
)

// TestRandomFaultSoak drives a replicated chain through randomized fault
// schedules — source disconnects, boundary stalls, node crashes with
// restarts, and network partitions — and checks the DPC guarantees after
// every run: the system returns to STABLE and the client's corrected stream
// matches a failure-free reference. Seeded and fully deterministic.
func TestRandomFaultSoak(t *testing.T) {
	for seed := int64(1); seed <= 10; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			runSoak(t, seed)
		})
	}
}

func runSoak(t *testing.T, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	spec := pairSpec()
	spec.Depth = 1 + rng.Intn(3)
	spec.Rate = 300 + float64(rng.Intn(3))*150
	dep, err := BuildChain(spec)
	if err != nil {
		t.Fatal(err)
	}

	const horizon = 40 * sec
	// 2-4 fault events, all healing well before the horizon.
	events := 2 + rng.Intn(3)
	for i := 0; i < events; i++ {
		at := (5 + int64(rng.Intn(15))) * sec
		dur := (2 + int64(rng.Intn(6))) * sec
		switch rng.Intn(4) {
		case 0:
			dep.DisconnectSource(rng.Intn(spec.Sources), at, dur)
		case 1:
			dep.StallSourceBoundaries(rng.Intn(spec.Sources), at, dur)
		case 2:
			level := 1 + rng.Intn(spec.Depth)
			replica := rng.Intn(spec.Replicas)
			dep.CrashNode(level, replica, at)
			dep.RestartNode(level, replica, at+dur)
		case 3:
			level := 1 + rng.Intn(spec.Depth)
			target := []string{"n1a", "n1b"}
			if level > 1 {
				target = []string{nodeID(level-1, 0), nodeID(level-1, 1)}
			} else {
				target = []string{"src1"}
			}
			from := nodeID(level, rng.Intn(spec.Replicas))
			for _, to := range target {
				dep.Partition(from, to, at, dur)
			}
		}
	}
	dep.Start()
	dep.RunFor(horizon)
	// Extra settling time for any late reconciliations.
	dep.RunFor(30 * sec)

	// Every surviving node must be stable again.
	for li, row := range dep.Nodes {
		for _, n := range row {
			if n.Down() {
				continue
			}
			if n.State() != node.StateStable {
				t.Fatalf("seed %d: level %d %s stuck in %v (failed inputs %v)",
					seed, li+1, n.ID(), n.State(), n.FailedInputs())
			}
		}
	}
	// The corrected stream must match a failure-free run.
	ref, err := BuildChain(spec)
	if err != nil {
		t.Fatal(err)
	}
	ref.Start()
	ref.RunFor(horizon + 30*sec)
	audit := dep.Client.VerifyEventualConsistency(ref.Client.View())
	if !audit.OK {
		t.Fatalf("seed %d: consistency audit failed: %s", seed, audit.Reason)
	}
	if audit.Compared == 0 {
		t.Fatalf("seed %d: audit compared nothing", seed)
	}
}
