// Package deploy assembles complete distributed DPC deployments on the
// simulated network: data sources, replicated processing-node graphs, and a
// DPC client proxy. BuildTopology (topology.go) handles arbitrary DAGs of
// replicated node groups; BuildChain and BuildSUnionTree are presets for
// the topologies of the paper's evaluation (Fig. 10's SUnion tree, Fig.
// 12's replicated single node with an SJoin, Fig. 14's replicated chain,
// and Fig. 22's overhead setup).
package deploy

import (
	"fmt"

	"borealis/internal/client"
	"borealis/internal/fabric"
	"borealis/internal/netsim"
	"borealis/internal/node"
	"borealis/internal/operator"
	"borealis/internal/runtime"
	"borealis/internal/source"
	"borealis/internal/vtime"
)

// ChainSpec describes a replicated chain deployment.
type ChainSpec struct {
	// Depth is the number of processing-node levels (≥1); Replicas the
	// number of replicas per level (the paper uses 2).
	Depth, Replicas int
	// Sources is the number of input streams feeding level 1; Rate the
	// aggregate input rate in tuples/second.
	Sources int
	Rate    float64
	// Delay is D assigned to each level's SUnion; DelayOverride, when
	// non-nil, assigns per-level delays instead (Fig. 19's whole-delay
	// assignment gives every SUnion the total X).
	Delay         int64
	DelayOverride func(level int) int64
	// BucketSize, BoundaryInterval, TickInterval: serialization grain.
	BucketSize, BoundaryInterval, TickInterval int64
	// Capacity is each node's processing rate (tuples/second).
	Capacity float64
	// FailurePolicy / StabilizationPolicy select the §6 variant.
	FailurePolicy       operator.DelayPolicy
	StabilizationPolicy operator.DelayPolicy
	// TentativeWait overrides the SUnion tentative-bucket wait.
	TentativeWait int64
	// TentativeBoundaries enables the footnote-5 extension on every
	// SUnion: tentative flushes carry boundaries so downstream nodes
	// need not wait TentativeWait per tentative bucket.
	TentativeBoundaries bool
	// StallTimeout / KeepAlive tune detection (zero = defaults).
	StallTimeout, KeepAlive int64
	// WithJoin adds the Fig. 12 SJoin (≈100-tuple state) at level 1.
	WithJoin bool
	// JoinStateTuples sizes the join window (default 100).
	JoinStateTuples int
	// ClientDelay / ClientTentativeWait tune the client proxy's SUnion;
	// keep these small so measurements reflect the processing nodes.
	ClientDelay, ClientTentativeWait int64
	// AckInterval enables output-buffer truncation acks when positive.
	AckInterval int64
	// BufferMode / BufferCap bound node output buffers (§8.1).
	BufferMode node.BufferMode
	BufferCap  int
	// FineGrained enables the §8.2 per-stream refinement.
	FineGrained bool
	// RecordClient keeps the client's delivery trace.
	RecordClient bool
	// PerTuple runs every node on the reference per-tuple data plane.
	PerTuple bool
}

func (s *ChainSpec) normalize() error {
	if s.Depth < 1 {
		return fmt.Errorf("deploy: depth must be ≥ 1")
	}
	if s.Replicas < 1 {
		s.Replicas = 1
	}
	if s.Sources < 1 {
		s.Sources = 1
	}
	if s.Rate <= 0 {
		s.Rate = 500
	}
	if s.Delay <= 0 {
		s.Delay = 2 * vtime.Second
	}
	if s.BucketSize <= 0 {
		s.BucketSize = 100 * vtime.Millisecond
	}
	if s.BoundaryInterval <= 0 {
		s.BoundaryInterval = 100 * vtime.Millisecond
	}
	if s.TickInterval <= 0 {
		s.TickInterval = 10 * vtime.Millisecond
	}
	if s.FailurePolicy == operator.PolicyNone {
		s.FailurePolicy = operator.PolicyProcess
	}
	if s.StabilizationPolicy == operator.PolicyNone {
		s.StabilizationPolicy = operator.PolicyProcess
	}
	if s.JoinStateTuples <= 0 {
		s.JoinStateTuples = 100
	}
	if s.ClientDelay <= 0 {
		s.ClientDelay = 50 * vtime.Millisecond
	}
	if s.ClientTentativeWait <= 0 {
		s.ClientTentativeWait = 50 * vtime.Millisecond
	}
	return nil
}

// Deployment is a running system.
type Deployment struct {
	// RT is the runtime the deployment schedules and runs on: a
	// *runtime.VirtualClock for deterministic simulation, or a
	// *runtime.WallClock for paced real-time execution.
	RT runtime.Runtime
	// Fab is the message fabric every endpoint registered on: Net in a
	// single-process deployment, the TCP transport in a cluster partition.
	Fab fabric.Fabric
	// Sim is the underlying simulator when RT is virtual, nil on a wall
	// clock.
	//
	// Deprecated: drive the deployment through RT (or RunFor); Sim
	// remains for pre-Clock call sites that schedule on it directly.
	Sim     *vtime.Sim
	Net     *netsim.Net
	Sources []*source.Source
	// Nodes[group][replica], groups in spec listing order (validated
	// loop-free, but not reordered); for chain deployments a group is a
	// level.
	Nodes  [][]*node.Node
	Client *client.Client
	// Spec is the chain preset spec, when built via BuildChain.
	Spec ChainSpec
	// Topology is the generalized spec every deployment compiles to.
	Topology *TopologySpec

	groupIndex  map[string]int
	sourceIndex map[string]int
}

// nodeID names replica r of level l: "n1a", "n1b", "n2a", ...
func nodeID(level, replica int) string {
	return GroupReplicaID(fmt.Sprintf("n%d", level), replica)
}

// levelStream names the output stream of level l.
func levelStream(level int) string { return fmt.Sprintf("t%d", level) }

// BuildChain assembles a chain deployment as a preset over BuildTopology.
// Call Start to begin.
func BuildChain(spec ChainSpec) (*Deployment, error) {
	if err := spec.normalize(); err != nil {
		return nil, err
	}
	top := TopologySpec{
		BucketSize:       spec.BucketSize,
		BoundaryInterval: spec.BoundaryInterval,
		TickInterval:     spec.TickInterval,
		StallTimeout:     spec.StallTimeout,
		KeepAlive:        spec.KeepAlive,
		AckInterval:      spec.AckInterval,
		PerTuple:         spec.PerTuple,
		Client: TopologyClient{
			Stream:              levelStream(spec.Depth),
			BucketSize:          spec.BucketSize,
			Delay:               spec.ClientDelay,
			TentativeWait:       spec.ClientTentativeWait,
			TentativeBoundaries: spec.TentativeBoundaries,
			Record:              spec.RecordClient,
		},
	}
	perSource := spec.Rate / float64(spec.Sources)
	var level1Inputs []string
	for i := 0; i < spec.Sources; i++ {
		stream := fmt.Sprintf("s%d", i+1)
		level1Inputs = append(level1Inputs, stream)
		top.Sources = append(top.Sources, TopologySource{
			ID:     fmt.Sprintf("src%d", i+1),
			Stream: stream,
			Rate:   perSource,
		})
	}
	delayAt := func(level int) int64 {
		if spec.DelayOverride != nil {
			return spec.DelayOverride(level)
		}
		return spec.Delay
	}
	for level := 1; level <= spec.Depth; level++ {
		g := NodeGroup{
			Name:                fmt.Sprintf("n%d", level),
			Output:              levelStream(level),
			Inputs:              []string{levelStream(level - 1)},
			Replicas:            spec.Replicas,
			Delay:               delayAt(level),
			Capacity:            spec.Capacity,
			FailurePolicy:       spec.FailurePolicy,
			StabilizationPolicy: spec.StabilizationPolicy,
			TentativeWait:       spec.TentativeWait,
			TentativeBoundaries: spec.TentativeBoundaries,
			BufferMode:          spec.BufferMode,
			BufferCap:           spec.BufferCap,
			FineGrained:         spec.FineGrained,
		}
		if level == 1 {
			g.Inputs = level1Inputs
			if spec.WithJoin {
				// Fig. 12: SJoin sized to hold ≈ JoinStateTuples. The
				// window (in stime units) that keeps that many tuples
				// buffered at the aggregate input rate:
				win := int64(float64(spec.JoinStateTuples) / spec.Rate * float64(vtime.Second))
				if win < 1 {
					win = 1
				}
				left := int32(spec.Sources) / 2
				g.Operators = func() []operator.Operator {
					return []operator.Operator{operator.NewSJoin("join", operator.JoinConfig{
						Window:   win,
						LeftKey:  0,
						RightKey: 0,
						IsLeft:   func(src int32) bool { return src < left },
					})}
				}
			}
		}
		top.Groups = append(top.Groups, g)
	}
	dep, err := BuildTopology(top)
	if err != nil {
		return nil, err
	}
	dep.Spec = spec
	return dep, nil
}

// Start launches sources, nodes and the client. On a cluster partition the
// non-owned slots are nil and skipped; each worker starts only what it
// hosts.
func (d *Deployment) Start() {
	for _, row := range d.Nodes {
		for _, n := range row {
			if n != nil {
				n.Start()
			}
		}
	}
	if d.Client != nil {
		d.Client.Start()
	}
	for _, s := range d.Sources {
		s.Start()
	}
}

// RunFor drives the deployment's runtime for dur microseconds: virtual
// time on a simulator, scaled wall time on a wall clock.
func (d *Deployment) RunFor(dur int64) { d.RT.RunFor(dur) }

// DisconnectSource injects the Table III failure at virtual-time offsets:
// source i disconnects at `at` and reconnects (with full replay) at
// `at+duration`.
func (d *Deployment) DisconnectSource(i int, at, duration int64) {
	s := d.Sources[i]
	d.RT.At(at, s.Disconnect)
	d.RT.At(at+duration, s.Reconnect)
}

// StallSourceBoundaries injects the Fig. 15/16 failure: source i keeps
// sending data but stops producing boundary tuples for the window.
func (d *Deployment) StallSourceBoundaries(i int, at, duration int64) {
	s := d.Sources[i]
	d.RT.At(at, s.StallBoundaries)
	d.RT.At(at+duration, s.ResumeBoundaries)
}

// CrashNode fail-stops replica r of a level at the given time.
func (d *Deployment) CrashNode(level, replica int, at int64) {
	n := d.Nodes[level-1][replica]
	d.RT.At(at, n.Crash)
}

// RestartNode recovers a crashed replica at the given time (§4.5).
func (d *Deployment) RestartNode(level, replica int, at int64) {
	n := d.Nodes[level-1][replica]
	d.RT.At(at, n.Restart)
}

// Partition severs the network between two endpoints for a window.
func (d *Deployment) Partition(a, b string, at, duration int64) {
	d.RT.At(at, func() { d.Net.Partition(a, b) })
	d.RT.At(at+duration, func() { d.Net.Heal(a, b) })
}

// SUnionTreeSpec describes the Fig. 10 diagram: four input streams merged
// by a chain of three SUnions on a single unreplicated node, used by the
// Fig. 11 eventual-consistency experiments.
type SUnionTreeSpec struct {
	Rate                                       float64
	Delay                                      int64
	BucketSize, BoundaryInterval, TickInterval int64
	Capacity                                   float64
	FailurePolicy, StabilizationPolicy         operator.DelayPolicy
	StallTimeout                               int64
	RecordClient                               bool
	PerTuple                                   bool
}

// BuildSUnionTree assembles the Fig. 10/11 deployment as a preset over
// BuildTopology: one unreplicated node whose diagram is the left-deep
// SUnion cascade (Cascade mode) over four source streams.
func BuildSUnionTree(spec SUnionTreeSpec) (*Deployment, error) {
	if spec.Rate <= 0 {
		spec.Rate = 400
	}
	if spec.Delay <= 0 {
		spec.Delay = 2 * vtime.Second
	}
	if spec.FailurePolicy == operator.PolicyNone {
		spec.FailurePolicy = operator.PolicyProcess
	}
	if spec.StabilizationPolicy == operator.PolicyNone {
		spec.StabilizationPolicy = operator.PolicySuspend
	}
	top := TopologySpec{
		BucketSize:       spec.BucketSize,
		BoundaryInterval: spec.BoundaryInterval,
		TickInterval:     spec.TickInterval,
		StallTimeout:     spec.StallTimeout,
		PerTuple:         spec.PerTuple,
		Client: TopologyClient{
			Stream: "t1",
			Delay:  50 * vtime.Millisecond,
			Record: spec.RecordClient,
		},
	}
	var inputs []string
	for i := 0; i < 4; i++ {
		stream := fmt.Sprintf("s%d", i+1)
		inputs = append(inputs, stream)
		top.Sources = append(top.Sources, TopologySource{
			ID:     fmt.Sprintf("src%d", i+1),
			Stream: stream,
			Rate:   spec.Rate / 4,
		})
	}
	top.Groups = []NodeGroup{{
		Name:                "n1",
		Output:              "t1",
		Inputs:              inputs,
		Cascade:             true,
		Delay:               spec.Delay,
		Capacity:            spec.Capacity,
		FailurePolicy:       spec.FailurePolicy,
		StabilizationPolicy: spec.StabilizationPolicy,
	}}
	return BuildTopology(top)
}
