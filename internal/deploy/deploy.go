// Package deploy assembles complete distributed DPC deployments on the
// simulated network: data sources, replicated processing-node chains, and a
// DPC client proxy — the topologies of the paper's evaluation (Fig. 10's
// SUnion tree, Fig. 12's replicated single node with an SJoin, Fig. 14's
// replicated chain, and Fig. 22's overhead setup).
package deploy

import (
	"fmt"

	"borealis/internal/client"
	"borealis/internal/diagram"
	"borealis/internal/netsim"
	"borealis/internal/node"
	"borealis/internal/operator"
	"borealis/internal/source"
	"borealis/internal/tuple"
	"borealis/internal/vtime"
)

// ChainSpec describes a replicated chain deployment.
type ChainSpec struct {
	// Depth is the number of processing-node levels (≥1); Replicas the
	// number of replicas per level (the paper uses 2).
	Depth, Replicas int
	// Sources is the number of input streams feeding level 1; Rate the
	// aggregate input rate in tuples/second.
	Sources int
	Rate    float64
	// Delay is D assigned to each level's SUnion; DelayOverride, when
	// non-nil, assigns per-level delays instead (Fig. 19's whole-delay
	// assignment gives every SUnion the total X).
	Delay         int64
	DelayOverride func(level int) int64
	// BucketSize, BoundaryInterval, TickInterval: serialization grain.
	BucketSize, BoundaryInterval, TickInterval int64
	// Capacity is each node's processing rate (tuples/second).
	Capacity float64
	// FailurePolicy / StabilizationPolicy select the §6 variant.
	FailurePolicy       operator.DelayPolicy
	StabilizationPolicy operator.DelayPolicy
	// TentativeWait overrides the SUnion tentative-bucket wait.
	TentativeWait int64
	// TentativeBoundaries enables the footnote-5 extension on every
	// SUnion: tentative flushes carry boundaries so downstream nodes
	// need not wait TentativeWait per tentative bucket.
	TentativeBoundaries bool
	// StallTimeout / KeepAlive tune detection (zero = defaults).
	StallTimeout, KeepAlive int64
	// WithJoin adds the Fig. 12 SJoin (≈100-tuple state) at level 1.
	WithJoin bool
	// JoinStateTuples sizes the join window (default 100).
	JoinStateTuples int
	// ClientDelay / ClientTentativeWait tune the client proxy's SUnion;
	// keep these small so measurements reflect the processing nodes.
	ClientDelay, ClientTentativeWait int64
	// AckInterval enables output-buffer truncation acks when positive.
	AckInterval int64
	// BufferMode / BufferCap bound node output buffers (§8.1).
	BufferMode node.BufferMode
	BufferCap  int
	// FineGrained enables the §8.2 per-stream refinement.
	FineGrained bool
	// RecordClient keeps the client's delivery trace.
	RecordClient bool
}

func (s *ChainSpec) normalize() error {
	if s.Depth < 1 {
		return fmt.Errorf("deploy: depth must be ≥ 1")
	}
	if s.Replicas < 1 {
		s.Replicas = 1
	}
	if s.Sources < 1 {
		s.Sources = 1
	}
	if s.Rate <= 0 {
		s.Rate = 500
	}
	if s.Delay <= 0 {
		s.Delay = 2 * vtime.Second
	}
	if s.BucketSize <= 0 {
		s.BucketSize = 100 * vtime.Millisecond
	}
	if s.BoundaryInterval <= 0 {
		s.BoundaryInterval = 100 * vtime.Millisecond
	}
	if s.TickInterval <= 0 {
		s.TickInterval = 10 * vtime.Millisecond
	}
	if s.FailurePolicy == operator.PolicyNone {
		s.FailurePolicy = operator.PolicyProcess
	}
	if s.StabilizationPolicy == operator.PolicyNone {
		s.StabilizationPolicy = operator.PolicyProcess
	}
	if s.JoinStateTuples <= 0 {
		s.JoinStateTuples = 100
	}
	if s.ClientDelay <= 0 {
		s.ClientDelay = 50 * vtime.Millisecond
	}
	if s.ClientTentativeWait <= 0 {
		s.ClientTentativeWait = 50 * vtime.Millisecond
	}
	return nil
}

// Deployment is a running system.
type Deployment struct {
	Sim     *vtime.Sim
	Net     *netsim.Net
	Sources []*source.Source
	// Nodes[level][replica].
	Nodes  [][]*node.Node
	Client *client.Client
	Spec   ChainSpec
}

// nodeID names replica r of level l: "n1a", "n1b", "n2a", ...
func nodeID(level, replica int) string {
	return fmt.Sprintf("n%d%c", level, 'a'+replica)
}

// levelStream names the output stream of level l.
func levelStream(level int) string { return fmt.Sprintf("t%d", level) }

// BuildChain assembles the deployment. Call Start to begin.
func BuildChain(spec ChainSpec) (*Deployment, error) {
	if err := spec.normalize(); err != nil {
		return nil, err
	}
	sim := vtime.New()
	net := netsim.New(sim)
	dep := &Deployment{Sim: sim, Net: net, Spec: spec}

	// Sources.
	var srcIDs []string
	perSource := spec.Rate / float64(spec.Sources)
	for i := 0; i < spec.Sources; i++ {
		id := fmt.Sprintf("src%d", i+1)
		srcIDs = append(srcIDs, id)
		idx := int64(i + 1)
		var arena tuple.I64Arena
		dep.Sources = append(dep.Sources, source.New(sim, net, source.Config{
			ID:               id,
			Stream:           fmt.Sprintf("s%d", i+1),
			Rate:             perSource,
			TickInterval:     spec.TickInterval,
			BoundaryInterval: spec.BoundaryInterval,
			Payload: func(seq uint64) []int64 {
				p := arena.Alloc(2)
				p[0], p[1] = int64(seq), idx
				return p
			},
		}))
	}

	delayAt := func(level int) int64 {
		if spec.DelayOverride != nil {
			return spec.DelayOverride(level)
		}
		return spec.Delay
	}

	// Node levels.
	for level := 1; level <= spec.Depth; level++ {
		var row []*node.Node
		for r := 0; r < spec.Replicas; r++ {
			id := nodeID(level, r)
			d, upstreams, err := buildLevelDiagram(spec, level, delayAt(level))
			if err != nil {
				return nil, err
			}
			var peers []string
			for p := 0; p < spec.Replicas; p++ {
				if p != r {
					peers = append(peers, nodeID(level, p))
				}
			}
			downstreams := map[string][]string{}
			outStream := levelStream(level)
			if level < spec.Depth {
				for p := 0; p < spec.Replicas; p++ {
					downstreams[outStream] = append(downstreams[outStream], nodeID(level+1, p))
				}
			} else {
				downstreams[outStream] = []string{"client"}
			}
			n, err := node.New(sim, net, d, node.Config{
				ID:                  id,
				Capacity:            spec.Capacity,
				FailurePolicy:       spec.FailurePolicy,
				StabilizationPolicy: spec.StabilizationPolicy,
				StallTimeout:        spec.StallTimeout,
				Peers:               peers,
				Upstreams:           upstreams(srcIDs, level, spec),
				Downstreams:         downstreams,
				BufferMode:          spec.BufferMode,
				BufferCap:           spec.BufferCap,
				FineGrained:         spec.FineGrained,
				CM:                  node.CMConfig{KeepAlive: spec.KeepAlive},
				AckInterval:         spec.AckInterval,
			})
			if err != nil {
				return nil, err
			}
			row = append(row, n)
		}
		dep.Nodes = append(dep.Nodes, row)
	}

	// Client proxy on the last level's output.
	var lastReplicas []string
	for r := 0; r < spec.Replicas; r++ {
		lastReplicas = append(lastReplicas, nodeID(spec.Depth, r))
	}
	cl, err := client.New(sim, net, client.Config{
		ID:                  "client",
		Stream:              levelStream(spec.Depth),
		Upstreams:           lastReplicas,
		BucketSize:          spec.BucketSize,
		Delay:               spec.ClientDelay,
		TentativeWait:       spec.ClientTentativeWait,
		StallTimeout:        spec.StallTimeout,
		CM:                  node.CMConfig{KeepAlive: spec.KeepAlive},
		AckInterval:         spec.AckInterval,
		TentativeBoundaries: spec.TentativeBoundaries,
		Record:              spec.RecordClient,
	})
	if err != nil {
		return nil, err
	}
	dep.Client = cl
	return dep, nil
}

// buildLevelDiagram builds the query diagram fragment for one level and a
// function producing its upstream map.
func buildLevelDiagram(spec ChainSpec, level int, delay int64) (*diagram.Diagram, func([]string, int, ChainSpec) map[string][]string, error) {
	b := diagram.NewBuilder()
	out := levelStream(level)
	if level == 1 {
		su := operator.NewSUnion("merge", operator.SUnionConfig{
			Ports:               spec.Sources,
			BucketSize:          spec.BucketSize,
			Delay:               delay,
			TentativeWait:       spec.TentativeWait,
			TentativeBoundaries: spec.TentativeBoundaries,
		})
		b.Add(su)
		last := "merge"
		if spec.WithJoin {
			// Fig. 12: SJoin sized to hold ≈ JoinStateTuples. The
			// window (in stime units) that keeps that many tuples
			// buffered at the aggregate input rate:
			win := int64(float64(spec.JoinStateTuples) / spec.Rate * float64(vtime.Second))
			if win < 1 {
				win = 1
			}
			left := int32(spec.Sources) / 2
			b.Add(operator.NewSJoin("join", operator.JoinConfig{
				Window:   win,
				LeftKey:  0,
				RightKey: 0,
				IsLeft:   func(src int32) bool { return src < left },
			}))
			b.Connect("merge", "join", 0)
			last = "join"
		}
		b.Add(operator.NewSOutput("sout"))
		b.Connect(last, "sout", 0)
		for i := 0; i < spec.Sources; i++ {
			b.Input(fmt.Sprintf("s%d", i+1), "merge", i)
		}
		b.Output(out, "sout")
	} else {
		su := operator.NewSUnion("pass", operator.SUnionConfig{
			Ports:               1,
			BucketSize:          spec.BucketSize,
			Delay:               delay,
			TentativeWait:       spec.TentativeWait,
			TentativeBoundaries: spec.TentativeBoundaries,
		})
		b.Add(su)
		b.Add(operator.NewSOutput("sout"))
		b.Connect("pass", "sout", 0)
		b.Input(levelStream(level-1), "pass", 0)
		b.Output(out, "sout")
	}
	d, err := b.Build()
	if err != nil {
		return nil, nil, err
	}
	ups := func(srcIDs []string, level int, spec ChainSpec) map[string][]string {
		m := map[string][]string{}
		if level == 1 {
			for i, sid := range srcIDs {
				m[fmt.Sprintf("s%d", i+1)] = []string{sid}
			}
		} else {
			var reps []string
			for p := 0; p < spec.Replicas; p++ {
				reps = append(reps, nodeID(level-1, p))
			}
			m[levelStream(level-1)] = reps
		}
		return m
	}
	return d, ups, nil
}

// Start launches sources, nodes and the client.
func (d *Deployment) Start() {
	for _, row := range d.Nodes {
		for _, n := range row {
			n.Start()
		}
	}
	d.Client.Start()
	for _, s := range d.Sources {
		s.Start()
	}
}

// RunFor advances virtual time.
func (d *Deployment) RunFor(dur int64) { d.Sim.RunFor(dur) }

// DisconnectSource injects the Table III failure at virtual-time offsets:
// source i disconnects at `at` and reconnects (with full replay) at
// `at+duration`.
func (d *Deployment) DisconnectSource(i int, at, duration int64) {
	s := d.Sources[i]
	d.Sim.At(at, s.Disconnect)
	d.Sim.At(at+duration, s.Reconnect)
}

// StallSourceBoundaries injects the Fig. 15/16 failure: source i keeps
// sending data but stops producing boundary tuples for the window.
func (d *Deployment) StallSourceBoundaries(i int, at, duration int64) {
	s := d.Sources[i]
	d.Sim.At(at, s.StallBoundaries)
	d.Sim.At(at+duration, s.ResumeBoundaries)
}

// CrashNode fail-stops replica r of a level at the given time.
func (d *Deployment) CrashNode(level, replica int, at int64) {
	n := d.Nodes[level-1][replica]
	d.Sim.At(at, n.Crash)
}

// RestartNode recovers a crashed replica at the given time (§4.5).
func (d *Deployment) RestartNode(level, replica int, at int64) {
	n := d.Nodes[level-1][replica]
	d.Sim.At(at, n.Restart)
}

// Partition severs the network between two endpoints for a window.
func (d *Deployment) Partition(a, b string, at, duration int64) {
	d.Sim.At(at, func() { d.Net.Partition(a, b) })
	d.Sim.At(at+duration, func() { d.Net.Heal(a, b) })
}

// SUnionTreeSpec describes the Fig. 10 diagram: four input streams merged
// by a chain of three SUnions on a single unreplicated node, used by the
// Fig. 11 eventual-consistency experiments.
type SUnionTreeSpec struct {
	Rate                                       float64
	Delay                                      int64
	BucketSize, BoundaryInterval, TickInterval int64
	Capacity                                   float64
	FailurePolicy, StabilizationPolicy         operator.DelayPolicy
	StallTimeout                               int64
	RecordClient                               bool
}

// BuildSUnionTree assembles the Fig. 10/11 deployment.
func BuildSUnionTree(spec SUnionTreeSpec) (*Deployment, error) {
	if spec.Rate <= 0 {
		spec.Rate = 400
	}
	if spec.Delay <= 0 {
		spec.Delay = 2 * vtime.Second
	}
	if spec.BucketSize <= 0 {
		spec.BucketSize = 100 * vtime.Millisecond
	}
	if spec.BoundaryInterval <= 0 {
		spec.BoundaryInterval = 100 * vtime.Millisecond
	}
	if spec.TickInterval <= 0 {
		spec.TickInterval = 10 * vtime.Millisecond
	}
	if spec.FailurePolicy == operator.PolicyNone {
		spec.FailurePolicy = operator.PolicyProcess
	}
	if spec.StabilizationPolicy == operator.PolicyNone {
		spec.StabilizationPolicy = operator.PolicySuspend
	}
	sim := vtime.New()
	net := netsim.New(sim)
	dep := &Deployment{Sim: sim, Net: net}

	var srcIDs []string
	for i := 0; i < 4; i++ {
		id := fmt.Sprintf("src%d", i+1)
		srcIDs = append(srcIDs, id)
		idx := int64(i + 1)
		var arena tuple.I64Arena
		dep.Sources = append(dep.Sources, source.New(sim, net, source.Config{
			ID:               id,
			Stream:           fmt.Sprintf("s%d", i+1),
			Rate:             spec.Rate / 4,
			TickInterval:     spec.TickInterval,
			BoundaryInterval: spec.BoundaryInterval,
			Payload: func(seq uint64) []int64 {
				p := arena.Alloc(2)
				p[0], p[1] = int64(seq), idx
				return p
			},
		}))
	}
	mk := func(name string) *operator.SUnion {
		return operator.NewSUnion(name, operator.SUnionConfig{
			Ports:      2,
			BucketSize: spec.BucketSize,
			Delay:      spec.Delay,
		})
	}
	b := diagram.NewBuilder()
	b.Add(mk("su1"))
	b.Add(mk("su2"))
	b.Add(mk("su3"))
	b.Add(operator.NewSOutput("sout"))
	b.Connect("su1", "su2", 0)
	b.Connect("su2", "su3", 0)
	b.Connect("su3", "sout", 0)
	b.Input("s1", "su1", 0)
	b.Input("s2", "su1", 1)
	b.Input("s3", "su2", 1)
	b.Input("s4", "su3", 1)
	b.Output("t1", "sout")
	d, err := b.Build()
	if err != nil {
		return nil, err
	}
	ups := map[string][]string{}
	for i, sid := range srcIDs {
		ups[fmt.Sprintf("s%d", i+1)] = []string{sid}
	}
	n, err := node.New(sim, net, d, node.Config{
		ID:                  "n1a",
		Capacity:            spec.Capacity,
		FailurePolicy:       spec.FailurePolicy,
		StabilizationPolicy: spec.StabilizationPolicy,
		StallTimeout:        spec.StallTimeout,
		Upstreams:           ups,
		Downstreams:         map[string][]string{"t1": {"client"}},
	})
	if err != nil {
		return nil, err
	}
	dep.Nodes = [][]*node.Node{{n}}
	cl, err := client.New(sim, net, client.Config{
		ID:        "client",
		Stream:    "t1",
		Upstreams: []string{"n1a"},
		Delay:     50 * vtime.Millisecond,
		Record:    spec.RecordClient,
	})
	if err != nil {
		return nil, err
	}
	dep.Client = cl
	return dep, nil
}
