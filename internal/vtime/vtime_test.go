package vtime

import (
	"testing"
	"testing/quick"
)

func TestAtFiresInOrder(t *testing.T) {
	s := New()
	var got []int
	s.At(30, func() { got = append(got, 3) })
	s.At(10, func() { got = append(got, 1) })
	s.At(20, func() { got = append(got, 2) })
	s.Run()
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("events out of order: %v", got)
	}
	if s.Now() != 30 {
		t.Fatalf("Now() = %d, want 30", s.Now())
	}
}

func TestSameTimeFIFO(t *testing.T) {
	s := New()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		s.At(5, func() { got = append(got, i) })
	}
	s.Run()
	for i, v := range got {
		if v != i {
			t.Fatalf("same-time events not FIFO: %v", got)
		}
	}
}

func TestAfterNegativeClamped(t *testing.T) {
	s := New()
	s.At(100, func() {
		s.After(-50, func() {})
	})
	s.Run() // must not panic
	if s.Now() != 100 {
		t.Fatalf("Now() = %d, want 100", s.Now())
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	s := New()
	s.At(100, func() {})
	s.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic scheduling in the past")
		}
	}()
	s.At(50, func() {})
}

func TestTimerStop(t *testing.T) {
	s := New()
	fired := false
	tm := s.At(10, func() { fired = true })
	if !tm.Stop() {
		t.Fatal("Stop() = false, want true")
	}
	if tm.Stop() {
		t.Fatal("second Stop() = true, want false")
	}
	s.Run()
	if fired {
		t.Fatal("stopped timer fired")
	}
	if s.Now() != 0 {
		// A stopped event should not advance the clock when popped lazily
		// before any live event; with no live events the clock stays put.
		t.Fatalf("Now() = %d, want 0", s.Now())
	}
}

func TestStopAfterFire(t *testing.T) {
	s := New()
	tm := s.At(10, func() {})
	s.Run()
	if tm.Stop() {
		t.Fatal("Stop after firing should report false")
	}
}

func TestRunUntil(t *testing.T) {
	s := New()
	var got []int64
	for _, at := range []int64{10, 20, 30, 40} {
		at := at
		s.At(at, func() { got = append(got, at) })
	}
	s.RunUntil(25)
	if len(got) != 2 {
		t.Fatalf("RunUntil(25) fired %d events, want 2", len(got))
	}
	if s.Now() != 25 {
		t.Fatalf("Now() = %d, want 25", s.Now())
	}
	s.RunUntil(100)
	if len(got) != 4 {
		t.Fatalf("after RunUntil(100) fired %d events, want 4", len(got))
	}
	if s.Now() != 100 {
		t.Fatalf("Now() = %d, want 100", s.Now())
	}
}

func TestRunFor(t *testing.T) {
	s := New()
	s.RunFor(500)
	if s.Now() != 500 {
		t.Fatalf("Now() = %d, want 500", s.Now())
	}
}

func TestEventsScheduledDuringRun(t *testing.T) {
	s := New()
	var got []int64
	s.At(10, func() {
		s.After(5, func() { got = append(got, s.Now()) })
	})
	s.Run()
	if len(got) != 1 || got[0] != 15 {
		t.Fatalf("nested event: got %v, want [15]", got)
	}
}

func TestTicker(t *testing.T) {
	s := New()
	var ticks []int64
	tk := s.NewTicker(100, func() { ticks = append(ticks, s.Now()) })
	s.At(350, func() { tk.Stop() })
	s.Run()
	want := []int64{100, 200, 300}
	if len(ticks) != len(want) {
		t.Fatalf("ticks = %v, want %v", ticks, want)
	}
	for i := range want {
		if ticks[i] != want[i] {
			t.Fatalf("ticks = %v, want %v", ticks, want)
		}
	}
}

func TestTickerStopInsideTick(t *testing.T) {
	s := New()
	n := 0
	var tk *Ticker
	tk = s.NewTicker(10, func() {
		n++
		if n == 2 {
			tk.Stop()
		}
	})
	s.Run()
	if n != 2 {
		t.Fatalf("ticker fired %d times, want 2", n)
	}
}

func TestProcessedAndPending(t *testing.T) {
	s := New()
	s.At(1, func() {})
	s.At(2, func() {})
	if s.Pending() != 2 {
		t.Fatalf("Pending = %d, want 2", s.Pending())
	}
	s.Run()
	if s.Processed() != 2 {
		t.Fatalf("Processed = %d, want 2", s.Processed())
	}
	if s.Pending() != 0 {
		t.Fatalf("Pending = %d, want 0", s.Pending())
	}
}

// Property: for any set of non-negative offsets, events fire in sorted order
// and the clock never moves backwards.
func TestQuickOrdering(t *testing.T) {
	f := func(offsets []uint16) bool {
		s := New()
		var fired []int64
		for _, off := range offsets {
			at := int64(off)
			s.At(at, func() { fired = append(fired, at) })
		}
		s.Run()
		if len(fired) != len(offsets) {
			return false
		}
		for i := 1; i < len(fired); i++ {
			if fired[i-1] > fired[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: RunUntil(t) fires exactly the events with time ≤ t.
func TestQuickRunUntil(t *testing.T) {
	f := func(offsets []uint16, cut uint16) bool {
		s := New()
		fired := 0
		want := 0
		for _, off := range offsets {
			if int64(off) <= int64(cut) {
				want++
			}
			s.At(int64(off), func() { fired++ })
		}
		s.RunUntil(int64(cut))
		return fired == want && s.Now() == int64(cut)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkScheduleAndRun(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := New()
		for j := 0; j < 1000; j++ {
			s.At(int64(j%97), func() {})
		}
		s.Run()
	}
}
