// Package vtime provides a deterministic discrete-event simulator used as the
// clock and scheduler for every component in this repository.
//
// All times are int64 microseconds of virtual time. Components schedule
// callbacks with At or After; Run drains the event queue in (time, sequence)
// order, so two events scheduled for the same instant fire in the order they
// were scheduled, making every simulation fully deterministic.
package vtime

import (
	"container/heap"
	"fmt"
)

// Common durations, in microseconds.
const (
	Microsecond int64 = 1
	Millisecond int64 = 1000
	Second      int64 = 1000 * 1000
)

// Timer is a handle to a scheduled event. Stop cancels the event if it has
// not fired yet.
type Timer struct {
	fn      func()
	at      int64
	seq     uint64
	stopped bool
	fired   bool
	index   int // heap index, -1 once removed
}

// Stop cancels the timer. It reports whether the call prevented the event
// from firing.
func (t *Timer) Stop() bool {
	if t == nil || t.fired || t.stopped {
		return false
	}
	t.stopped = true
	return true
}

// Stopped reports whether Stop was called before the event fired.
func (t *Timer) Stopped() bool { return t != nil && t.stopped }

// When returns the virtual time at which the timer is (or was) scheduled.
func (t *Timer) When() int64 { return t.at }

type eventHeap []*Timer

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	t := x.(*Timer)
	t.index = len(*h)
	*h = append(*h, t)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	t := old[n-1]
	old[n-1] = nil
	t.index = -1
	*h = old[:n-1]
	return t
}

// Sim is a discrete-event simulator. The zero value is not usable; call New.
// Sim is not safe for concurrent use: the entire simulation is single
// threaded by design, which is what makes runs reproducible.
type Sim struct {
	now    int64
	seq    uint64
	events eventHeap
	// processed counts fired events, for tests and progress reporting.
	processed uint64
}

// New returns a simulator whose clock starts at time 0.
func New() *Sim {
	return &Sim{}
}

// Now returns the current virtual time in microseconds.
func (s *Sim) Now() int64 { return s.now }

// Processed returns the number of events fired so far.
func (s *Sim) Processed() uint64 { return s.processed }

// Pending returns the number of events currently scheduled.
func (s *Sim) Pending() int { return len(s.events) }

// At schedules fn to run at absolute virtual time t. Scheduling in the past
// panics: it would silently reorder causality.
func (s *Sim) At(t int64, fn func()) *Timer {
	if fn == nil {
		panic("vtime: nil event function")
	}
	if t < s.now {
		panic(fmt.Sprintf("vtime: scheduling event at %d before now %d", t, s.now))
	}
	s.seq++
	tm := &Timer{fn: fn, at: t, seq: s.seq}
	heap.Push(&s.events, tm)
	return tm
}

// After schedules fn to run d microseconds from now. Negative d is treated
// as zero.
func (s *Sim) After(d int64, fn func()) *Timer {
	if d < 0 {
		d = 0
	}
	return s.At(s.now+d, fn)
}

// Step fires the next event, if any, advancing the clock to its time.
// It reports whether an event fired.
func (s *Sim) Step() bool {
	for len(s.events) > 0 {
		t := heap.Pop(&s.events).(*Timer)
		if t.stopped {
			continue
		}
		s.now = t.at
		t.fired = true
		s.processed++
		t.fn()
		return true
	}
	return false
}

// Run fires events until the queue is empty.
func (s *Sim) Run() {
	for s.Step() {
	}
}

// RunUntil fires events with time ≤ t, then advances the clock to t.
// Events scheduled for later remain queued.
func (s *Sim) RunUntil(t int64) {
	for {
		next, ok := s.peek()
		if !ok || next > t {
			break
		}
		s.Step()
	}
	if t > s.now {
		s.now = t
	}
}

// RunFor runs the simulation for d microseconds of virtual time.
func (s *Sim) RunFor(d int64) { s.RunUntil(s.now + d) }

func (s *Sim) peek() (int64, bool) {
	for len(s.events) > 0 {
		if s.events[0].stopped {
			heap.Pop(&s.events)
			continue
		}
		return s.events[0].at, true
	}
	return 0, false
}

// Ticker fires fn every interval until stopped. The first tick fires at
// now+interval.
type Ticker struct {
	sim      *Sim
	interval int64
	fn       func()
	timer    *Timer
	stopped  bool
}

// NewTicker schedules fn to run every interval microseconds.
func (s *Sim) NewTicker(interval int64, fn func()) *Ticker {
	if interval <= 0 {
		panic("vtime: ticker interval must be positive")
	}
	tk := &Ticker{sim: s, interval: interval, fn: fn}
	tk.schedule()
	return tk
}

func (tk *Ticker) schedule() {
	tk.timer = tk.sim.After(tk.interval, func() {
		if tk.stopped {
			return
		}
		tk.fn()
		if !tk.stopped {
			tk.schedule()
		}
	})
}

// Stop cancels all future ticks.
func (tk *Ticker) Stop() {
	if tk.stopped {
		return
	}
	tk.stopped = true
	tk.timer.Stop()
}
