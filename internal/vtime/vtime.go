// Package vtime provides a deterministic discrete-event simulator used as the
// clock and scheduler for every component in this repository.
//
// All times are int64 microseconds of virtual time. Components schedule
// callbacks with At or After; Run drains the event queue in (time, sequence)
// order, so two events scheduled for the same instant fire in the order they
// were scheduled, making every simulation fully deterministic.
//
// Timers are pooled: once a timer fires or is stopped it returns to a
// per-Sim free list and its handle is dead — callers must drop their
// reference at that point (the idiom throughout this repo is to nil the
// stored field as the first statement of the callback, and right after any
// Stop call). Calling Stop on a dead handle is a no-op until the object is
// reused, so stale handles must not be retained across further scheduling.
package vtime

import (
	"fmt"
)

// Common durations, in microseconds.
const (
	Microsecond int64 = 1
	Millisecond int64 = 1000
	Second      int64 = 1000 * 1000
)

// Timer is a handle to a scheduled event. Stop cancels the event if it has
// not fired yet. Timers are recycled after they fire or are stopped; see the
// package comment for the handle-lifetime contract.
type Timer struct {
	sim *Sim
	// Exactly one of fn/argFn is set. argFn is the closure-free path: a
	// shared function invoked with a caller-owned argument, so schedulers
	// like netsim do not allocate a fresh closure per event.
	fn      func()
	argFn   func(any)
	arg     any
	at      int64
	seq     uint64
	stopped bool
	fired   bool
	index   int    // heap index, -1 once removed
	next    *Timer // free-list link
}

// Stop cancels the timer, eagerly removing it from the event heap and
// recycling it. It reports whether the call prevented the event from firing.
func (t *Timer) Stop() bool {
	if t == nil || t.fired || t.stopped {
		return false
	}
	t.stopped = true
	if t.index >= 0 {
		t.sim.remove(t.index)
		t.sim.release(t)
	}
	return true
}

// Stopped reports whether Stop was called before the event fired.
func (t *Timer) Stopped() bool { return t != nil && t.stopped }

// When returns the virtual time at which the timer is (or was) scheduled.
func (t *Timer) When() int64 { return t.at }

// Sim is a discrete-event simulator. The zero value is not usable; call New.
// Sim is not safe for concurrent use: the entire simulation is single
// threaded by design, which is what makes runs reproducible.
type Sim struct {
	now    int64
	seq    uint64
	events []*Timer // binary min-heap on (at, seq)
	free   *Timer   // free list of recycled timers
	// processed counts fired events, for tests and progress reporting.
	processed uint64
}

// New returns a simulator whose clock starts at time 0.
func New() *Sim {
	return &Sim{}
}

// Now returns the current virtual time in microseconds.
func (s *Sim) Now() int64 { return s.now }

// Processed returns the number of events fired so far.
func (s *Sim) Processed() uint64 { return s.processed }

// Pending returns the number of events currently scheduled. Stopped timers
// are removed eagerly, so every counted event will fire.
func (s *Sim) Pending() int { return len(s.events) }

// alloc takes a timer from the free list, or makes one.
func (s *Sim) alloc() *Timer {
	t := s.free
	if t == nil {
		return &Timer{sim: s}
	}
	s.free = t.next
	t.next = nil
	t.stopped = false
	t.fired = false
	return t
}

// release recycles a fired or stopped timer. Function and argument
// references are cleared so the pool does not retain caller state.
func (s *Sim) release(t *Timer) {
	t.fn = nil
	t.argFn = nil
	t.arg = nil
	t.stopped = true // a dead handle's Stop must stay a no-op
	t.index = -1
	t.next = s.free
	s.free = t
}

// schedule validates, stamps, and enqueues a timer.
func (s *Sim) schedule(t *Timer, at int64) *Timer {
	if at < s.now {
		panic(fmt.Sprintf("vtime: scheduling event at %d before now %d", at, s.now))
	}
	s.seq++
	t.at = at
	t.seq = s.seq
	s.push(t)
	return t
}

// At schedules fn to run at absolute virtual time t. Scheduling in the past
// panics: it would silently reorder causality.
func (s *Sim) At(t int64, fn func()) *Timer {
	if fn == nil {
		panic("vtime: nil event function")
	}
	tm := s.alloc()
	tm.fn = fn
	return s.schedule(tm, t)
}

// AtCall schedules fn(arg) at absolute virtual time t. Unlike At, the
// function is shared across events and the per-event state travels in arg,
// so steady-state callers (netsim deliveries, pooled records) allocate
// nothing per event.
func (s *Sim) AtCall(t int64, fn func(any), arg any) *Timer {
	if fn == nil {
		panic("vtime: nil event function")
	}
	tm := s.alloc()
	tm.argFn = fn
	tm.arg = arg
	return s.schedule(tm, t)
}

// After schedules fn to run d microseconds from now. Negative d is treated
// as zero.
func (s *Sim) After(d int64, fn func()) *Timer {
	if d < 0 {
		d = 0
	}
	return s.At(s.now+d, fn)
}

// AfterCall schedules fn(arg) d microseconds from now, allocation-free in
// steady state. Negative d is treated as zero.
func (s *Sim) AfterCall(d int64, fn func(any), arg any) *Timer {
	if d < 0 {
		d = 0
	}
	return s.AtCall(s.now+d, fn, arg)
}

// Step fires the next event, if any, advancing the clock to its time.
// It reports whether an event fired.
func (s *Sim) Step() bool {
	if len(s.events) == 0 {
		return false
	}
	t := s.popMin()
	s.now = t.at
	t.fired = true
	s.processed++
	if t.argFn != nil {
		fn, arg := t.argFn, t.arg
		// Recycle only after the callback returns: a handle retained
		// through the callback (Ticker.Stop from inside the tick) still
		// sees fired==true rather than a reused timer.
		defer s.release(t)
		fn(arg)
	} else {
		fn := t.fn
		defer s.release(t)
		fn()
	}
	return true
}

// Run fires events until the queue is empty.
func (s *Sim) Run() {
	for s.Step() {
	}
}

// RunUntil fires events with time ≤ t, then advances the clock to t.
// Events scheduled for later remain queued.
func (s *Sim) RunUntil(t int64) {
	for len(s.events) > 0 && s.events[0].at <= t {
		s.Step()
	}
	if t > s.now {
		s.now = t
	}
}

// RunFor runs the simulation for d microseconds of virtual time.
func (s *Sim) RunFor(d int64) { s.RunUntil(s.now + d) }

// less orders the heap by (at, seq): time first, scheduling order second.
func (s *Sim) less(i, j int) bool {
	a, b := s.events[i], s.events[j]
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

func (s *Sim) swap(i, j int) {
	s.events[i], s.events[j] = s.events[j], s.events[i]
	s.events[i].index = i
	s.events[j].index = j
}

func (s *Sim) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !s.less(i, parent) {
			break
		}
		s.swap(i, parent)
		i = parent
	}
}

func (s *Sim) down(i int) {
	n := len(s.events)
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		least := l
		if r := l + 1; r < n && s.less(r, l) {
			least = r
		}
		if !s.less(least, i) {
			break
		}
		s.swap(i, least)
		i = least
	}
}

func (s *Sim) push(t *Timer) {
	t.index = len(s.events)
	s.events = append(s.events, t)
	s.up(t.index)
}

func (s *Sim) popMin() *Timer {
	t := s.events[0]
	s.remove(0)
	return t
}

// remove detaches the timer at heap index i, restoring heap order.
func (s *Sim) remove(i int) {
	t := s.events[i]
	last := len(s.events) - 1
	if i != last {
		s.swap(i, last)
	}
	s.events[last] = nil
	s.events = s.events[:last]
	if i != last {
		s.down(i)
		s.up(i)
	}
	t.index = -1
}

// Ticker fires fn every interval until stopped. The first tick fires at
// now+interval.
type Ticker struct {
	sim      *Sim
	interval int64
	fn       func()
	tickFn   func() // bound once; rescheduling allocates no new closure
	timer    *Timer
	stopped  bool
}

// NewTicker schedules fn to run every interval microseconds.
func (s *Sim) NewTicker(interval int64, fn func()) *Ticker {
	if interval <= 0 {
		panic("vtime: ticker interval must be positive")
	}
	tk := &Ticker{sim: s, interval: interval, fn: fn}
	tk.tickFn = tk.tick
	tk.schedule()
	return tk
}

func (tk *Ticker) tick() {
	tk.timer = nil
	if tk.stopped {
		return
	}
	tk.fn()
	if !tk.stopped {
		tk.schedule()
	}
}

func (tk *Ticker) schedule() {
	tk.timer = tk.sim.After(tk.interval, tk.tickFn)
}

// Stop cancels all future ticks.
func (tk *Ticker) Stop() {
	if tk.stopped {
		return
	}
	tk.stopped = true
	tk.timer.Stop()
	tk.timer = nil
}
