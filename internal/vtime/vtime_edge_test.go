package vtime

// Edge cases locked in before the runtime.Clock wrapper was layered on
// top of the simulator: the Clock contract (internal/runtime) promises
// exactly these semantics for any implementation, so the wrapped source
// of truth must pin them first.

import "testing"

// TestStopOnFiredTimerIsInertBeforeReuse: the pooled-handle contract says
// a dead handle's Stop is a no-op until the object is reused. Firing t1,
// then scheduling t2 (which recycles t1's storage) and stopping via the
// STALE t1 handle must cancel t2 — the documented reason stale handles
// must not be retained — but stopping the dead handle while the pool slot
// is unreused must do nothing to other timers.
func TestStopOnFiredTimerIsInertBeforeReuse(t *testing.T) {
	s := New()
	fired := 0
	t1 := s.At(10, func() { fired++ })
	other := s.At(20, func() { fired++ })
	s.RunUntil(10)
	if got := t1.Stop(); got {
		t.Fatal("Stop on a fired timer reported true")
	}
	if other.Stopped() {
		t.Fatal("dead-handle Stop leaked into a live timer")
	}
	s.Run()
	if fired != 2 {
		t.Fatalf("fired %d, want 2", fired)
	}
}

// TestStopStoppedTimerOnce: double Stop reports prevented-once semantics
// and releases exactly one pending slot.
func TestStopStoppedTimerOnce(t *testing.T) {
	s := New()
	tm := s.At(10, func() { t.Fatal("stopped timer fired") })
	s.At(20, func() {})
	if !tm.Stop() {
		t.Fatal("first Stop reported false")
	}
	if tm.Stop() {
		t.Fatal("second Stop reported true")
	}
	if s.Pending() != 1 {
		t.Fatalf("pending %d after double Stop, want 1", s.Pending())
	}
	s.Run()
}

// TestTickerStopInsideTickPoolSafe: stopping a ticker from inside its own
// tick exercises the fired-timer Stop path (the tick's timer is mid-fire
// when Stop runs). The pool must stay coherent: no residual events, and a
// new ticker reusing the recycled timer must tick normally.
func TestTickerStopInsideTickPoolSafe(t *testing.T) {
	s := New()
	var tk *Ticker
	ticks := 0
	tk = s.NewTicker(10, func() {
		ticks++
		tk.Stop()
	})
	s.Run()
	if ticks != 1 {
		t.Fatalf("ticked %d times after in-tick Stop, want 1", ticks)
	}
	if s.Pending() != 0 {
		t.Fatalf("%d events left pending by a stopped ticker", s.Pending())
	}
	// The stopped ticker's timer is back in the pool; a fresh ticker must
	// reuse it cleanly.
	ticks2 := 0
	var tk2 *Ticker
	tk2 = s.NewTicker(5, func() {
		ticks2++
		if ticks2 == 3 {
			tk2.Stop()
		}
	})
	s.Run()
	if ticks2 != 3 {
		t.Fatalf("recycled ticker ticked %d times, want 3", ticks2)
	}
}

// TestRunUntilEqualTimestampFIFO: events scheduled exactly at the horizon
// fire inside RunUntil, in scheduling order, interleaved correctly with
// events the callbacks themselves add at the same timestamp.
func TestRunUntilEqualTimestampFIFO(t *testing.T) {
	s := New()
	var order []int
	s.At(100, func() { order = append(order, 1) })
	s.At(100, func() {
		order = append(order, 2)
		// Same-instant event added mid-drain: still before the horizon,
		// still after everything already queued at t=100.
		s.At(100, func() { order = append(order, 4) })
	})
	s.At(100, func() { order = append(order, 3) })
	s.At(101, func() { order = append(order, 99) })
	s.RunUntil(100)
	want := []int{1, 2, 3, 4}
	if len(order) != len(want) {
		t.Fatalf("order %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order %v, want %v", order, want)
		}
	}
	if s.Now() != 100 {
		t.Fatalf("Now() = %d, want 100", s.Now())
	}
	if s.Pending() != 1 {
		t.Fatalf("pending %d, want the t=101 event only", s.Pending())
	}
}
