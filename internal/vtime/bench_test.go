package vtime

import "testing"

// BenchmarkVtimeSchedule exercises the scheduler's hottest pattern: the
// SUnion re-arm cycle, where a timer is armed, cancelled, re-armed at a
// different instant, and finally fired. With the timer free-list this runs
// allocation-free in steady state.
func BenchmarkVtimeSchedule(b *testing.B) {
	s := New()
	noop := func() {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t := s.After(10, noop)
		t.Stop()
		s.After(5, noop)
		s.Step()
	}
}

// BenchmarkVtimeScheduleDeep keeps a deeper pending heap, measuring push/pop
// cost with realistic queue depth.
func BenchmarkVtimeScheduleDeep(b *testing.B) {
	s := New()
	noop := func() {}
	for i := 0; i < 256; i++ {
		s.After(int64(1_000_000+i), noop)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.After(1, noop)
		s.Step()
	}
}
