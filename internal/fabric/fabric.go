// Package fabric defines the minimal message-fabric surface the protocol
// components (node, source, client) run on. Two implementations exist:
// internal/netsim, the deterministic in-process simulator every virtual run
// uses, and internal/transport, the TCP fabric the cluster runtime uses to
// span real processes. Components depend only on this interface, so the same
// node code runs unchanged on either.
package fabric

// Handler receives a message addressed to a registered endpoint. The fabric
// serializes all deliveries for a process into its clock's run loop, so
// handlers never run concurrently with each other or with timer callbacks.
type Handler func(from string, msg any)

// Fabric is the send/receive surface between endpoints identified by string
// IDs. Implementations must preserve per-(from,to) FIFO ordering and must
// deliver asynchronously (never inside the Send call), matching the
// simulator's semantics that node code was written against.
type Fabric interface {
	// Register installs the handler for a local endpoint, replacing any
	// previous registration (crash/restart re-registers).
	Register(id string, h Handler)
	// Send queues msg for delivery from one endpoint to another. Sends
	// from a crashed (down) endpoint are dropped. Sending to an endpoint
	// the fabric has no route for is a programming error on the simulator
	// (panic); on a real transport the frame is forwarded to the remote
	// process that owns it, or dropped if the peer is unreachable.
	Send(from, to string, msg any)
	// SetDown marks a local endpoint crashed (true) or alive (false). A
	// down endpoint neither sends nor receives.
	SetDown(id string, down bool)
}
