// Package fabric defines the minimal message-fabric surface the protocol
// components (node, source, client) run on. Two implementations exist:
// internal/netsim, the deterministic in-process simulator every virtual run
// uses, and internal/transport, the TCP fabric the cluster runtime uses to
// span real processes. Components depend only on this interface, so the same
// node code runs unchanged on either.
package fabric

// Handler receives a message addressed to a registered endpoint. The fabric
// serializes all deliveries for a process into its clock's run loop, so
// handlers never run concurrently with each other or with timer callbacks.
type Handler func(from string, msg any)

// Fabric is the send/receive surface between endpoints identified by string
// IDs. Implementations must preserve per-(from,to) FIFO ordering and must
// deliver asynchronously (never inside the Send call), matching the
// simulator's semantics that node code was written against.
type Fabric interface {
	// Register installs the handler for a local endpoint, replacing any
	// previous registration (crash/restart re-registers).
	Register(id string, h Handler)
	// Send queues msg for delivery from one endpoint to another. Sends
	// from a crashed (down) endpoint are dropped. Sending to an endpoint
	// the fabric has no route for is a programming error on the simulator
	// (panic); on a real transport the frame is forwarded to the remote
	// process that owns it, or dropped if the peer is unreachable.
	Send(from, to string, msg any)
	// SetDown marks a local endpoint crashed (true) or alive (false). A
	// down endpoint neither sends nor receives.
	SetDown(id string, down bool)
}

// LinkState is the injected fault state of one directed link. The zero
// value is a healthy link; SetLink with it clears any injected fault.
type LinkState struct {
	// Block drops every message on the link — one direction of a network
	// partition. Messages already in flight are dropped at delivery time,
	// like a broken connection discarding its socket buffers.
	Block bool
	// DelayUS adds a fixed one-way delay (microseconds of the fabric's
	// clock) to every message on the link.
	DelayUS int64
	// JitterUS adds a per-message random extra delay in [0, JitterUS).
	// Jittered messages bypass the link's FIFO clamp, so a non-zero
	// jitter reorders messages — the draw sequence is deterministic per
	// link (seeded from the endpoint names), so runs are reproducible.
	JitterUS int64
}

// LinkControl is the chaos surface a fabric may expose alongside Fabric:
// per-directed-link fault injection. Both implementations provide it —
// netsim so virtual runs and the fuzzer can exercise the same faults, and
// the TCP transport so the cluster boss can translate the spec's
// `partition` faults into timed link-block actions on real sockets.
type LinkControl interface {
	// SetLink installs (or, with the zero LinkState, clears) the injected
	// fault state of the directed link from → to. Partitioning a pair
	// means blocking both directions.
	SetLink(from, to string, st LinkState)
}
