package client

import (
	"testing"

	"borealis/internal/netsim"
	"borealis/internal/node"
	"borealis/internal/runtime"
	"borealis/internal/tuple"
)

func auditClient(t *testing.T) (*runtime.VirtualClock, *fakeUpstream, *Client) {
	t.Helper()
	return setup(t)
}

func TestVerifyRecentWindow(t *testing.T) {
	sim, up, c := auditClient(t)
	now := sim.Now()
	for i := int64(1); i <= 10; i++ {
		up.push(stable(uint64(i), now+i, i))
	}
	up.push(tuple.NewBoundary(now + 100*ms))
	sim.RunFor(1 * sec)
	// Reference shares only the tail (as if older corrections were
	// sacrificed to a bounded buffer).
	var ref []tuple.Tuple
	for i := int64(6); i <= 10; i++ {
		ref = append(ref, tuple.Tuple{Type: tuple.Insertion, STime: now + i, Data: []int64{i}})
	}
	if audit := c.VerifyRecentWindow(ref, 5); !audit.OK {
		t.Fatalf("recent window should match: %s", audit.Reason)
	}
	// A diverging tail must be caught.
	ref[4].Data = []int64{99}
	if audit := c.VerifyRecentWindow(ref, 5); audit.OK {
		t.Fatal("diverging recent window accepted")
	}
	// Too little data to compare is a failure, not a silent pass.
	if audit := c.VerifyRecentWindow(ref, 50); audit.OK {
		t.Fatal("short stream must not pass a 50-tuple window check")
	}
}

func TestAuditShorterReferencePrefixOnly(t *testing.T) {
	sim, up, c := auditClient(t)
	now := sim.Now()
	up.push(stable(1, now, 1), stable(2, now+1, 2), tuple.NewBoundary(now+100*ms))
	sim.RunFor(1 * sec)
	// Reference has only the first tuple: the comparison covers the
	// shared prefix and reports how much it compared.
	audit := c.VerifyEventualConsistency([]tuple.Tuple{
		{Type: tuple.Insertion, STime: now, Data: []int64{1}},
	})
	if !audit.OK || audit.Compared != 1 {
		t.Fatalf("prefix audit wrong: %+v", audit)
	}
}

func TestClientMinMeanStdevLatency(t *testing.T) {
	sim, up, c := auditClient(t)
	sim.RunFor(1 * sec) // keep past-stamped stimes positive
	base := sim.Now()
	// Two tuples with different latencies: stamped in the past.
	up.push(
		tuple.Tuple{Type: tuple.Insertion, ID: 1, STime: base - 50*ms, Data: []int64{1}},
		tuple.Tuple{Type: tuple.Insertion, ID: 2, STime: base - 10*ms, Data: []int64{2}},
		tuple.NewBoundary(base+200*ms),
	)
	sim.RunFor(1 * sec)
	st := c.Stats()
	if st.NewTuples != 2 {
		t.Fatalf("NewTuples = %d", st.NewTuples)
	}
	if st.MinLatency >= st.MaxLatency {
		t.Fatalf("min %d should be below max %d", st.MinLatency, st.MaxLatency)
	}
	if st.MeanLatency <= float64(st.MinLatency) || st.MeanLatency >= float64(st.MaxLatency) {
		t.Fatalf("mean %f outside [min,max]", st.MeanLatency)
	}
	if st.StdevLatency <= 0 {
		t.Fatal("stdev should be positive for distinct latencies")
	}
}

func TestClientProxyReconcilesOwnState(t *testing.T) {
	// The proxy is a real DPC node: after receiving tentative data and
	// then corrections + REC_DONE, it reconciles (restores + replays)
	// and forwards its own corrected stream to the app.
	sim, up, c := auditClient(t)
	now := sim.Now()
	up.push(stable(1, now, 1), tuple.NewBoundary(now+100*ms))
	sim.RunFor(1 * sec)
	up.push(tuple.Tuple{Type: tuple.Tentative, ID: 2, STime: sim.Now(), Data: []int64{2}})
	sim.RunFor(1 * sec)
	if c.Proxy().State() != node.StateUpFailure {
		t.Fatalf("proxy state = %v, want UP_FAILURE", c.Proxy().State())
	}
	n2 := sim.Now()
	up.push(tuple.NewUndo(1), stable(3, n2, 2), tuple.NewRecDone(0), tuple.NewBoundary(n2+100*ms))
	// Keep the heartbeat flowing after the corrections, as a live
	// upstream would; a silent stream would legitimately re-fail.
	for i := int64(1); i <= 20; i++ {
		at := n2 + i*100*ms
		sim.At(at, func() { up.push(tuple.NewBoundary(at + 100*ms)) })
	}
	sim.RunFor(2 * sec)
	if c.Proxy().State() != node.StateStable {
		t.Fatalf("proxy state = %v, want STABLE after corrections", c.Proxy().State())
	}
	if c.Proxy().Reconciliations != 1 {
		t.Fatalf("proxy reconciliations = %d", c.Proxy().Reconciliations)
	}
}

func TestClientHandlesUpstreamVanishing(t *testing.T) {
	// The only upstream crashes: the client stalls but must not corrupt
	// its view; the stream resumes when the upstream returns.
	sim := runtime.NewVirtual()
	net := netsim.New(sim)
	up := newFakeUpstream(sim, net, "n1")
	c, err := New(sim, net, Config{
		ID: "client", Stream: "out", Upstreams: []string{"n1"},
		Delay: 50 * ms,
	})
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	sim.RunFor(50 * ms)
	now := sim.Now()
	up.push(stable(1, now, 1), tuple.NewBoundary(now+100*ms))
	sim.RunFor(500 * ms)
	net.SetDown("n1", true)
	sim.RunFor(2 * sec)
	net.SetDown("n1", false)
	sim.RunFor(2 * sec)
	n2 := sim.Now()
	up.push(stable(2, n2, 2), tuple.NewBoundary(n2+100*ms))
	sim.RunFor(1 * sec)
	view := c.StableView()
	if len(view) != 2 {
		t.Fatalf("view after upstream crash/restore: %v", view)
	}
}
