package client

import (
	"testing"

	"borealis/internal/netsim"
	"borealis/internal/node"
	"borealis/internal/runtime"
	"borealis/internal/tuple"
	"borealis/internal/vtime"
)

const (
	ms  = vtime.Millisecond
	sec = vtime.Second
)

// fakeUpstream is a minimal endpoint that answers keep-alives as STABLE and
// pushes whatever the test wants to its subscriber.
type fakeUpstream struct {
	sim *runtime.VirtualClock
	net *netsim.Net
	id  string
	sub string
	seq uint64
}

func newFakeUpstream(sim *runtime.VirtualClock, net *netsim.Net, id string) *fakeUpstream {
	f := &fakeUpstream{sim: sim, net: net, id: id}
	net.Register(id, func(from string, msg any) {
		switch msg.(type) {
		case node.SubscribeMsg:
			f.sub = from
			f.seq = 0
		case node.KeepAliveReq:
			net.Send(id, from, node.KeepAliveResp{
				Node:    node.StateStable,
				Streams: map[string]node.StreamState{"out": node.StateStable},
			})
		}
	})
	return f
}

func (f *fakeUpstream) push(ts ...tuple.Tuple) {
	if f.sub != "" {
		f.seq++
		f.net.Send(f.id, f.sub, node.DataMsg{Stream: "out", Seq: f.seq, Tuples: ts})
	}
}

func setup(t *testing.T) (*runtime.VirtualClock, *fakeUpstream, *Client) {
	t.Helper()
	sim := runtime.NewVirtual()
	net := netsim.New(sim)
	up := newFakeUpstream(sim, net, "n1")
	c, err := New(sim, net, Config{
		ID:        "client",
		Stream:    "out",
		Upstreams: []string{"n1"},
		Delay:     50 * ms,
		Record:    true,
	})
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	sim.RunFor(20 * ms)
	if up.sub == "" {
		t.Fatal("client never subscribed")
	}
	return sim, up, c
}

func stable(id uint64, stime int64, v int64) tuple.Tuple {
	return tuple.Tuple{Type: tuple.Insertion, ID: id, STime: stime, Data: []int64{v}}
}

func TestClientDeliversAndMeasuresLatency(t *testing.T) {
	sim, up, c := setup(t)
	up.push(stable(1, sim.Now(), 7), tuple.NewBoundary(sim.Now()+100*ms))
	sim.RunFor(500 * ms)
	st := c.Stats()
	if st.NewTuples != 1 {
		t.Fatalf("NewTuples = %d", st.NewTuples)
	}
	if st.MaxLatency <= 0 || st.MaxLatency > 300*ms {
		t.Fatalf("latency out of range: %d", st.MaxLatency)
	}
	if st.MinLatency > st.MaxLatency {
		t.Fatal("min > max")
	}
	view := c.View()
	if len(view) != 1 || view[0].Field(0) != 7 {
		t.Fatalf("view = %v", view)
	}
}

func TestClientCountsTentativeAndStreaks(t *testing.T) {
	sim, up, c := setup(t)
	now := sim.Now()
	up.push(stable(1, now, 1), tuple.NewBoundary(now+100*ms))
	sim.RunFor(1 * sec)
	// Three tentative tuples, no boundary (diverged upstream).
	up.push(
		tuple.Tuple{Type: tuple.Tentative, ID: 2, STime: sim.Now(), Data: []int64{2}},
		tuple.Tuple{Type: tuple.Tentative, ID: 3, STime: sim.Now(), Data: []int64{3}},
	)
	sim.RunFor(2 * sec)
	st := c.Stats()
	if st.Tentative != 2 {
		t.Fatalf("Tentative = %d", st.Tentative)
	}
	if st.MaxTentativeStreak != 2 {
		t.Fatalf("MaxTentativeStreak = %d", st.MaxTentativeStreak)
	}
}

func TestClientAppliesUndoAndAudits(t *testing.T) {
	sim, up, c := setup(t)
	now := sim.Now()
	up.push(stable(1, now, 1), tuple.NewBoundary(now+100*ms))
	sim.RunFor(1 * sec)
	up.push(tuple.Tuple{Type: tuple.Tentative, ID: 2, STime: sim.Now(), Data: []int64{99}})
	sim.RunFor(1 * sec)
	// Correction: undo back to tuple 1, stable replacement, rec-done,
	// then a boundary so the proxy emits stably.
	n2 := sim.Now()
	up.push(tuple.NewUndo(1), stable(3, n2, 2), tuple.NewRecDone(0), tuple.NewBoundary(n2+100*ms))
	sim.RunFor(2 * sec)
	st := c.Stats()
	if st.Undos == 0 {
		t.Fatalf("undo not delivered to app: %+v", st)
	}
	final := c.StableView()
	if len(final) != 2 || final[0].Field(0) != 1 || final[1].Field(0) != 2 {
		t.Fatalf("stable view = %v", final)
	}
	audit := c.VerifyEventualConsistency([]tuple.Tuple{
		{Type: tuple.Insertion, STime: now, Data: []int64{1}},
		{Type: tuple.Insertion, STime: n2, Data: []int64{2}},
	})
	if !audit.OK {
		t.Fatalf("audit failed: %s", audit.Reason)
	}
}

func TestClientAuditDetectsDivergence(t *testing.T) {
	sim, up, c := setup(t)
	now := sim.Now()
	up.push(stable(1, now, 1), tuple.NewBoundary(now+100*ms))
	sim.RunFor(1 * sec)
	audit := c.VerifyEventualConsistency([]tuple.Tuple{
		{Type: tuple.Insertion, STime: now, Data: []int64{42}},
	})
	if audit.OK {
		t.Fatal("audit must detect value divergence")
	}
}

func TestClientResetLatency(t *testing.T) {
	sim, up, c := setup(t)
	now := sim.Now()
	up.push(stable(1, now, 1), tuple.NewBoundary(now+100*ms))
	sim.RunFor(1 * sec)
	c.ResetLatency()
	if st := c.Stats(); st.NewTuples != 0 || st.MaxLatency != 0 {
		t.Fatalf("reset failed: %+v", st)
	}
	n2 := sim.Now()
	up.push(stable(2, n2, 2), tuple.NewBoundary(n2+100*ms))
	sim.RunFor(1 * sec)
	if st := c.Stats(); st.NewTuples != 1 {
		t.Fatalf("post-reset count: %+v", st)
	}
}

func TestClientTraceRecords(t *testing.T) {
	sim, up, c := setup(t)
	now := sim.Now()
	up.push(stable(1, now, 1), tuple.NewBoundary(now+100*ms))
	sim.RunFor(1 * sec)
	tr := c.Trace()
	if len(tr) == 0 {
		t.Fatal("trace empty")
	}
	if tr[0].At <= 0 {
		t.Fatal("trace missing timestamps")
	}
}
