// Package client implements DPC-speaking client applications (§2.2: "data
// sources and clients implement DPC ... by having them communicate with the
// system through proxies"). A Client owns a proxy — a regular processing
// node running a pass-through diagram (input SUnion → SOutput) — that does
// the protocol work: upstream replica monitoring, Table II switching, dual
// connections, undo handling, and its own reconciliation. The client
// application layer taps the proxy's output locally and keeps the metrics
// the paper reports:
//
//   - Procnew / Delaynew (§2.3.1): the maximum processing latency over
//     output tuples carrying new information;
//   - Ntentative (§2.3.3): tentative tuples received, both in total and as
//     the Definition 2 "since the last stable tuple" streak;
//   - the eventual-consistency audit (Definition 1): the undo-compacted
//     delivered stream must equal a failure-free reference run, with no
//     stable tuple duplicated.
package client

import (
	"fmt"
	"math"

	"borealis/internal/diagram"
	"borealis/internal/fabric"
	"borealis/internal/node"
	"borealis/internal/operator"
	"borealis/internal/runtime"
	"borealis/internal/tuple"
	"borealis/internal/vtime"
)

// Config parameterizes a client.
type Config struct {
	// ID is the proxy's network endpoint.
	ID string
	// Stream is the output stream to consume; Upstreams lists the
	// replica endpoints producing it.
	Stream    string
	Upstreams []string
	// BucketSize and Delay parameterize the proxy's SUnion (the delay is
	// the slack the client itself adds before exposing tentative data;
	// keep it small so measurements reflect the processing nodes).
	BucketSize int64
	Delay      int64
	// TentativeWait overrides the proxy SUnion's tentative-bucket wait.
	TentativeWait int64
	// TentativeBoundaries enables the footnote-5 extension at the proxy.
	TentativeBoundaries bool
	// StallTimeout, CM: proxy node tuning (zero = defaults).
	StallTimeout int64
	CM           node.CMConfig
	// AckInterval paces acknowledgments to the upstream replicas,
	// enabling their output-buffer truncation (§8.1).
	AckInterval int64
	// Record keeps a per-delivery trace (time, tuple) for figure series.
	Record bool
	// NoAudit disables the consistency-audit instrumentation: the
	// undo-compacted view and the stable-duplicate tracking map, whose
	// per-tuple hashing and retention dominate a throughput measurement.
	// View/StableView return nothing and Stats.StableDuplicates stays
	// zero. Benchmark harnesses only — every correctness path keeps the
	// audit on.
	NoAudit bool
	// PerTuple runs the proxy node's engine on the reference per-tuple
	// data plane instead of the staged batch plane.
	PerTuple bool
}

// Delivery is one recorded delivery.
type Delivery struct {
	At    int64
	Tuple tuple.Tuple
}

// Stats summarizes what the client observed.
type Stats struct {
	// NewTuples counts deliveries that carried new information.
	NewTuples uint64
	// MaxLatency is Procnew·(the maximum now−stime over new tuples).
	MaxLatency int64
	// MinLatency / MeanLatency / StdevLatency summarize per-new-tuple
	// latency (Tables IV and V).
	MinLatency   int64
	MeanLatency  float64
	StdevLatency float64
	// Tentative is the total number of tentative tuples delivered.
	Tentative uint64
	// MaxTentativeStreak is the Definition 2 peak: tentative tuples
	// since the last stable tuple, maximized over time.
	MaxTentativeStreak uint64
	// Undos and RecDones count control tuples delivered.
	Undos, RecDones uint64
	// StableDuplicates counts stable tuples delivered twice — eventual
	// consistency requires this to stay zero.
	StableDuplicates uint64
}

// Client consumes one output stream through a DPC proxy node.
type Client struct {
	cfg   Config
	clk   runtime.Clock
	proxy *node.Node

	// Undo-compacted view of the delivered stream.
	view []tuple.Tuple

	// Newness watermark.
	maxSTime int64

	// Latency accumulators over new tuples.
	latSum, latSumSq float64
	latCount         uint64
	latMin, latMax   int64

	tentative uint64
	streak    uint64
	maxStreak uint64
	undos     uint64
	recDones  uint64

	stableSeen map[stableID]bool
	stableDups uint64

	trace []Delivery

	onDeliver func(Delivery)
}

// New builds a client and its proxy node.
func New(clk runtime.Clock, net fabric.Fabric, cfg Config) (*Client, error) {
	if cfg.BucketSize <= 0 {
		cfg.BucketSize = 100 * vtime.Millisecond
	}
	if cfg.Delay <= 0 {
		cfg.Delay = 100 * vtime.Millisecond
	}
	b := diagram.NewBuilder()
	su := operator.NewSUnion("proxy_in", operator.SUnionConfig{
		Ports:               1,
		BucketSize:          cfg.BucketSize,
		Delay:               cfg.Delay,
		TentativeWait:       cfg.TentativeWait,
		TentativeBoundaries: cfg.TentativeBoundaries,
	})
	b.Add(su)
	b.Add(operator.NewSOutput("proxy_out"))
	b.Connect("proxy_in", "proxy_out", 0)
	b.Input(cfg.Stream, "proxy_in", 0)
	out := cfg.Stream + ".client"
	b.Output(out, "proxy_out")
	d, err := b.Build()
	if err != nil {
		return nil, fmt.Errorf("client: %w", err)
	}
	proxy, err := node.New(clk, net, d, node.Config{
		ID:           cfg.ID,
		Upstreams:    map[string][]string{cfg.Stream: cfg.Upstreams},
		StallTimeout: cfg.StallTimeout,
		CM:           cfg.CM,
		AckInterval:  cfg.AckInterval,
		PerTuple:     cfg.PerTuple,
	})
	if err != nil {
		return nil, fmt.Errorf("client: %w", err)
	}
	c := &Client{
		cfg:        cfg,
		clk:        clk,
		proxy:      proxy,
		maxSTime:   -1,
		latMin:     math.MaxInt64,
		stableSeen: make(map[stableID]bool),
	}
	proxy.OnDeliver(func(_ string, t tuple.Tuple) { c.consume(t) })
	return c, nil
}

// Start begins consuming.
func (c *Client) Start() { c.proxy.Start() }

// Proxy exposes the underlying proxy node.
func (c *Client) Proxy() *node.Node { return c.proxy }

// OnDeliver registers a per-delivery callback (figure series capture).
func (c *Client) OnDeliver(fn func(Delivery)) { c.onDeliver = fn }

// consume processes one tuple delivered by the proxy.
func (c *Client) consume(t tuple.Tuple) {
	now := c.clk.Now()
	if c.cfg.Record {
		if len(c.trace) == cap(c.trace) && len(c.trace) >= 1024 {
			nt := make([]Delivery, len(c.trace), 2*cap(c.trace))
			copy(nt, c.trace)
			c.trace = nt
		}
		c.trace = append(c.trace, Delivery{At: now, Tuple: t})
	}
	if c.onDeliver != nil {
		c.onDeliver(Delivery{At: now, Tuple: t})
	}
	switch {
	case t.IsData():
		if !c.cfg.NoAudit {
			c.view = tuple.Append(c.view, t)
		}
		if t.Type == tuple.Tentative {
			c.tentative++
			c.streak++
			if c.streak > c.maxStreak {
				c.maxStreak = c.streak
			}
		} else {
			c.streak = 0
			if !c.cfg.NoAudit {
				key := stableKey(t)
				if c.stableSeen[key] {
					c.stableDups++
				}
				c.stableSeen[key] = true
			}
		}
		if t.STime > c.maxSTime {
			c.maxSTime = t.STime
			lat := now - t.STime
			c.latCount++
			c.latSum += float64(lat)
			c.latSumSq += float64(lat) * float64(lat)
			if lat < c.latMin {
				c.latMin = lat
			}
			if lat > c.latMax {
				c.latMax = lat
			}
		}
	case t.Type == tuple.Undo:
		c.undos++
		if !c.cfg.NoAudit {
			c.view = tuple.ApplyUndo(c.view, t.ID)
		}
	case t.Type == tuple.RecDone:
		c.recDones++
	}
}

// stableID is a cheap identity key for duplicate detection: timestamp plus
// an FNV-1a hash of the payload.
type stableID struct {
	stime int64
	hash  uint64
}

func stableKey(t tuple.Tuple) stableID {
	h := uint64(14695981039346656037)
	for _, v := range t.Data {
		for i := 0; i < 8; i++ {
			h ^= uint64(byte(v >> (8 * i)))
			h *= 1099511628211
		}
	}
	return stableID{stime: t.STime, hash: h}
}

// Stats returns the metrics accumulated so far.
func (c *Client) Stats() Stats {
	s := Stats{
		NewTuples:          c.latCount,
		MaxLatency:         c.latMax,
		Tentative:          c.tentative,
		MaxTentativeStreak: c.maxStreak,
		Undos:              c.undos,
		RecDones:           c.recDones,
		StableDuplicates:   c.stableDups,
	}
	if c.latCount > 0 {
		s.MinLatency = c.latMin
		s.MeanLatency = c.latSum / float64(c.latCount)
		v := c.latSumSq/float64(c.latCount) - s.MeanLatency*s.MeanLatency
		if v > 0 {
			s.StdevLatency = math.Sqrt(v)
		}
	}
	return s
}

// ResetLatency clears the latency accumulators (phase-scoped measurement).
func (c *Client) ResetLatency() {
	c.latSum, c.latSumSq, c.latCount = 0, 0, 0
	c.latMin, c.latMax = math.MaxInt64, 0
}

// Trace returns the recorded deliveries (Record must be on).
func (c *Client) Trace() []Delivery { return c.trace }

// View returns the undo-compacted delivered stream.
func (c *Client) View() []tuple.Tuple { return append([]tuple.Tuple(nil), c.view...) }

// StableView returns only the stable prefix content of the delivered
// stream (tentative tuples excluded): what Definition 1 compares.
func (c *Client) StableView() []tuple.Tuple {
	var out []tuple.Tuple
	for _, t := range c.view {
		if t.Type == tuple.Insertion {
			out = append(out, t)
		}
	}
	return out
}

// AuditResult reports the eventual-consistency audit.
type AuditResult struct {
	OK               bool
	Reason           string
	Compared         int
	StableDuplicates uint64
}

// VerifyRecentWindow checks the §8.1 convergent-capable guarantee: the most
// recent n stable tuples must match the reference's most recent n, even if
// older corrections were sacrificed to bounded buffers.
func (c *Client) VerifyRecentWindow(reference []tuple.Tuple, n int) AuditResult {
	got := c.StableView()
	var ref []tuple.Tuple
	for _, t := range reference {
		if t.Type == tuple.Insertion {
			ref = append(ref, t)
		}
	}
	if len(got) < n || len(ref) < n {
		return AuditResult{OK: false, Reason: "not enough stable output to compare"}
	}
	got = got[len(got)-n:]
	ref = ref[len(ref)-n:]
	for i := 0; i < n; i++ {
		if !tuple.SameValue(got[i], ref[i]) {
			return AuditResult{
				OK:     false,
				Reason: fmt.Sprintf("recent window diverges at %d: got %v, want %v", i, got[i], ref[i]),
			}
		}
	}
	return AuditResult{OK: true, Compared: n}
}

// VerifyEventualConsistency checks Definition 1 against a failure-free
// reference stream: the client's final stable view must equal the
// reference, value for value, with no stable duplicates delivered.
func (c *Client) VerifyEventualConsistency(reference []tuple.Tuple) AuditResult {
	res := VerifyViews(c.StableView(), reference)
	if res.OK {
		res.StableDuplicates = c.stableDups
	}
	return res
}

// VerifyViews is the Definition 1 comparison on bare views: got is a stable
// (insertion-only) view, reference a failure-free run's delivered stream
// (tentative tuples are filtered out here). The cluster boss audits a
// worker's shipped stable view against its local reference run with it — no
// live Client needed on the auditing side.
func VerifyViews(got, reference []tuple.Tuple) AuditResult {
	ref := make([]tuple.Tuple, 0, len(reference))
	for _, t := range reference {
		if t.Type == tuple.Insertion {
			ref = append(ref, t)
		}
	}
	n := len(got)
	if len(ref) < n {
		n = len(ref)
	}
	for i := 0; i < n; i++ {
		if !tuple.SameValue(got[i], ref[i]) {
			return AuditResult{
				OK:     false,
				Reason: fmt.Sprintf("divergence at stable position %d: got %v, want %v", i, got[i], ref[i]),
			}
		}
	}
	// Note: Stats().StableDuplicates is a heuristic (identical payloads can
	// legitimately repeat, e.g. join outputs); genuine re-delivery shifts
	// positions and is caught by the comparison above.
	return AuditResult{OK: true, Compared: n}
}
