package engine

import (
	"testing"

	"borealis/internal/diagram"
	"borealis/internal/operator"
	"borealis/internal/runtime"
	"borealis/internal/tuple"
	"borealis/internal/vtime"
)

const (
	ms  = vtime.Millisecond
	sec = vtime.Second
)

// mergeDiagram builds: in1, in2 → SUnion(merge) → SOutput("result").
func mergeDiagram(t *testing.T, delay int64) *diagram.Diagram {
	t.Helper()
	b := diagram.NewBuilder()
	b.Add(operator.NewSUnion("merge", operator.SUnionConfig{
		Ports: 2, BucketSize: 100 * ms, Delay: delay,
	}))
	b.Add(operator.NewSOutput("out"))
	b.Connect("merge", "out", 0)
	b.Input("in1", "merge", 0)
	b.Input("in2", "merge", 1)
	b.Output("result", "out")
	d, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return d
}

type capture struct {
	tuples  []tuple.Tuple
	times   []int64
	signals []operator.Signal
}

func (c *capture) bind(sim *runtime.VirtualClock, e *Engine) {
	e.OnOutput(func(_ string, t tuple.Tuple) {
		c.tuples = append(c.tuples, t)
		c.times = append(c.times, sim.Now())
	})
	e.OnSignal(func(s operator.Signal) { c.signals = append(c.signals, s) })
}

func (c *capture) data() []tuple.Tuple {
	var out []tuple.Tuple
	for _, t := range c.tuples {
		if t.IsData() {
			out = append(out, t)
		}
	}
	return out
}

func (c *capture) ofType(ty tuple.Type) []tuple.Tuple {
	var out []tuple.Tuple
	for _, t := range c.tuples {
		if t.Type == ty {
			out = append(out, t)
		}
	}
	return out
}

func TestEngineEndToEndStableFlow(t *testing.T) {
	sim := runtime.NewVirtual()
	e := New(sim, mergeDiagram(t, 2*sec), Config{})
	var c capture
	c.bind(sim, e)
	e.Ingest("in1", []tuple.Tuple{tuple.NewInsertion(10*ms, 1), tuple.NewBoundary(100 * ms)})
	e.Ingest("in2", []tuple.Tuple{tuple.NewInsertion(20*ms, 2), tuple.NewBoundary(100 * ms)})
	sim.Run()
	got := c.data()
	if len(got) != 2 || got[0].Field(0) != 1 || got[1].Field(0) != 2 {
		t.Fatalf("stable flow wrong: %v", got)
	}
	if got[0].ID != 1 || got[1].ID != 2 {
		t.Fatalf("SOutput ids wrong: %v", got)
	}
	if e.Diverged() {
		t.Fatal("stable flow must not diverge")
	}
}

func TestEngineCapacityDelaysDispatch(t *testing.T) {
	sim := runtime.NewVirtual()
	e := New(sim, mergeDiagram(t, 2*sec), Config{Capacity: 1000}) // 1ms/tuple
	var c capture
	c.bind(sim, e)
	batch := make([]tuple.Tuple, 0, 100)
	for i := 0; i < 100; i++ {
		batch = append(batch, tuple.NewInsertion(int64(i)*ms, int64(i)))
	}
	batch = append(batch, tuple.NewBoundary(100*ms))
	e.Ingest("in1", batch)
	e.Ingest("in2", []tuple.Tuple{tuple.NewBoundary(100 * ms)})
	sim.Run()
	// 101 tuples at 1ms each ≈ 101ms service for the first batch.
	if sim.Now() < 100*ms {
		t.Fatalf("capacity model not applied: finished at %d", sim.Now())
	}
	if len(c.data()) != 100 {
		t.Fatalf("want 100 tuples, got %d", len(c.data()))
	}
}

func TestEngineUnknownStreamPanics(t *testing.T) {
	sim := runtime.NewVirtual()
	e := New(sim, mergeDiagram(t, 2*sec), Config{})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	e.Ingest("nope", []tuple.Tuple{tuple.NewInsertion(1, 1)})
}

func TestEngineDivergenceOnTentativeFlush(t *testing.T) {
	sim := runtime.NewVirtual()
	e := New(sim, mergeDiagram(t, 2*sec), Config{})
	var c capture
	c.bind(sim, e)
	e.Ingest("in1", []tuple.Tuple{tuple.NewInsertion(10*ms, 1)})
	e.SetPolicyAll(operator.PolicyProcess)
	sim.Run() // suspension expires, tentative flush
	if !e.Diverged() {
		t.Fatal("tentative flush must mark the engine diverged")
	}
	got := c.data()
	if len(got) != 1 || got[0].Type != tuple.Tentative {
		t.Fatalf("want tentative output: %v", got)
	}
	if len(c.signals) == 0 || c.signals[0].Kind != operator.SigUpFailure {
		t.Fatalf("UP_FAILURE signal missing: %v", c.signals)
	}
}

func TestEngineCheckpointRestoreReplayCorrects(t *testing.T) {
	sim := runtime.NewVirtual()
	e := New(sim, mergeDiagram(t, 2*sec), Config{})
	var c capture
	c.bind(sim, e)

	// Stable prefix on both inputs.
	e.Ingest("in1", []tuple.Tuple{tuple.NewInsertion(10*ms, 1), tuple.NewBoundary(100 * ms)})
	e.Ingest("in2", []tuple.Tuple{tuple.NewInsertion(20*ms, 2), tuple.NewBoundary(100 * ms)})
	sim.Run()

	// Failure on in2: checkpoint, then in1 data keeps arriving.
	var snap *Snapshot
	e.RequestCheckpoint(func(s *Snapshot) { snap = s })
	if snap == nil {
		t.Fatal("idle engine must checkpoint immediately")
	}
	e.SetPolicyAll(operator.PolicyProcess)
	log := []tuple.Tuple{tuple.NewInsertion(110*ms, 3), tuple.NewBoundary(200 * ms)}
	e.Ingest("in1", log)
	sim.Run() // tentative flush of bucket [100,200) with only in1 data
	tent := c.ofType(tuple.Tentative)
	if len(tent) != 1 || tent[0].Field(0) != 3 {
		t.Fatalf("expected one tentative tuple: %v", tent)
	}

	// Heal: restore, replay logs of both inputs (in2's missing data
	// arrives in the replay), rec-done when drained.
	c.tuples = nil
	e.Restore(snap)
	e.SetPolicyAll(operator.PolicyNone)
	e.Ingest("in1", log)
	e.Ingest("in2", []tuple.Tuple{tuple.NewInsertion(120*ms, 4), tuple.NewBoundary(200 * ms)})
	e.ScheduleRecDone()
	sim.Run()

	out := c.tuples
	// Expect: UNDO(last stable id), stable corrections 3 and 4, REC_DONE.
	if len(out) < 4 {
		t.Fatalf("correction sequence too short: %v", out)
	}
	if out[0].Type != tuple.Undo || out[0].ID != 2 {
		t.Fatalf("undo must revoke back to stable id 2: %v", out[0])
	}
	var stable []tuple.Tuple
	for _, tp := range out {
		if tp.Type == tuple.Insertion {
			stable = append(stable, tp)
		}
	}
	if len(stable) != 2 || stable[0].Field(0) != 3 || stable[1].Field(0) != 4 {
		t.Fatalf("corrections wrong: %v", stable)
	}
	if rd := c.ofType(tuple.RecDone); len(rd) != 1 {
		t.Fatalf("want exactly one REC_DONE: %v", out)
	}
	if e.Diverged() {
		t.Fatal("engine must be consistent after reconciliation")
	}
	var gotSig bool
	for _, s := range c.signals {
		if s.Kind == operator.SigRecDone {
			gotSig = true
		}
	}
	if !gotSig {
		t.Fatal("REC_DONE signal to CM missing")
	}
}

func TestEngineCheckpointWaitsForPreRequestBatches(t *testing.T) {
	sim := runtime.NewVirtual()
	e := New(sim, mergeDiagram(t, 2*sec), Config{Capacity: 1000})
	var c capture
	c.bind(sim, e)
	// A slow batch is in flight when the checkpoint is requested: the
	// snapshot must include its effects.
	e.Ingest("in1", []tuple.Tuple{tuple.NewInsertion(10*ms, 1), tuple.NewBoundary(100 * ms)})
	var snap *Snapshot
	e.RequestCheckpoint(func(s *Snapshot) { snap = s })
	if snap != nil {
		t.Fatal("checkpoint must wait for the in-flight batch")
	}
	sim.Run()
	if snap == nil {
		t.Fatal("checkpoint never taken")
	}
	// Restore and complete in2: the pre-checkpoint in1 tuple must
	// survive the rollback (it was captured in the snapshot).
	e.Restore(snap)
	e.Ingest("in2", []tuple.Tuple{tuple.NewInsertion(20*ms, 2), tuple.NewBoundary(100 * ms)})
	sim.Run()
	got := c.data()
	if len(got) != 2 {
		t.Fatalf("pre-checkpoint batch lost across restore: %v", got)
	}
}

func TestEngineRestoreDiscardsQueuedWork(t *testing.T) {
	sim := runtime.NewVirtual()
	e := New(sim, mergeDiagram(t, 2*sec), Config{Capacity: 100}) // slow: 10ms/tuple
	var c capture
	c.bind(sim, e)
	var snap *Snapshot
	e.RequestCheckpoint(func(s *Snapshot) { snap = s })
	// Post-checkpoint arrivals, still queued when we restore.
	e.Ingest("in1", []tuple.Tuple{tuple.NewInsertion(10*ms, 1)})
	e.Ingest("in1", []tuple.Tuple{tuple.NewInsertion(20*ms, 2)})
	e.Restore(snap)
	// Replay only the first logged batch; the discarded queue must not
	// resurface the second.
	e.Ingest("in1", []tuple.Tuple{tuple.NewInsertion(10*ms, 1), tuple.NewBoundary(100 * ms)})
	e.Ingest("in2", []tuple.Tuple{tuple.NewBoundary(100 * ms)})
	sim.Run()
	got := c.data()
	if len(got) != 1 || got[0].Field(0) != 1 {
		t.Fatalf("queued work not discarded on restore: %v", got)
	}
}

func TestEngineRecDoneWaitsForQueueDrain(t *testing.T) {
	sim := runtime.NewVirtual()
	e := New(sim, mergeDiagram(t, 2*sec), Config{Capacity: 100})
	var c capture
	c.bind(sim, e)
	e.Ingest("in1", []tuple.Tuple{tuple.NewInsertion(10*ms, 1), tuple.NewBoundary(100 * ms)})
	e.ScheduleRecDone()
	if len(c.ofType(tuple.RecDone)) != 0 {
		t.Fatal("rec_done must wait for the queue to drain")
	}
	e.Ingest("in2", []tuple.Tuple{tuple.NewBoundary(100 * ms)})
	sim.Run()
	rd := c.ofType(tuple.RecDone)
	if len(rd) != 1 {
		t.Fatalf("want one rec_done after drain: %v", c.tuples)
	}
	// Data must precede the marker.
	if len(c.data()) != 1 || c.tuples[len(c.tuples)-1].Type != tuple.RecDone {
		t.Fatalf("rec_done must come last: %v", c.tuples)
	}
}

func TestEngineSetPolicyFedIsScoped(t *testing.T) {
	// Two independent paths: in1 → su1 → out1, in2 → su2 → out2.
	b := diagram.NewBuilder()
	b.Add(operator.NewSUnion("su1", operator.SUnionConfig{Ports: 1, BucketSize: 100 * ms, Delay: sec}))
	b.Add(operator.NewSUnion("su2", operator.SUnionConfig{Ports: 1, BucketSize: 100 * ms, Delay: sec}))
	b.Add(operator.NewSOutput("o1"))
	b.Add(operator.NewSOutput("o2"))
	b.Connect("su1", "o1", 0)
	b.Connect("su2", "o2", 0)
	b.Input("in1", "su1", 0)
	b.Input("in2", "su2", 0)
	b.Output("r1", "o1")
	b.Output("r2", "o2")
	d, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	sim := runtime.NewVirtual()
	e := New(sim, d, Config{})
	e.SetPolicyFed("in1", operator.PolicyProcess)
	if got := d.Op("su1").(*operator.SUnion).Policy(); got != operator.PolicyProcess {
		t.Fatalf("su1 policy = %v", got)
	}
	if got := d.Op("su2").(*operator.SUnion).Policy(); got != operator.PolicyNone {
		t.Fatalf("su2 policy must be untouched, got %v", got)
	}
}

func TestEngineIdleCallback(t *testing.T) {
	sim := runtime.NewVirtual()
	e := New(sim, mergeDiagram(t, 2*sec), Config{Capacity: 1000})
	idles := 0
	e.OnIdle(func() { idles++ })
	e.Ingest("in1", []tuple.Tuple{tuple.NewInsertion(10*ms, 1)})
	sim.Run()
	if idles == 0 {
		t.Fatal("idle callback never fired")
	}
}

func TestEngineDoubleCheckpointPanics(t *testing.T) {
	sim := runtime.NewVirtual()
	e := New(sim, mergeDiagram(t, 2*sec), Config{Capacity: 10})
	e.Ingest("in1", []tuple.Tuple{tuple.NewInsertion(10*ms, 1)})
	e.RequestCheckpoint(func(*Snapshot) {})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on overlapping checkpoint requests")
		}
	}()
	e.RequestCheckpoint(func(*Snapshot) {})
}
