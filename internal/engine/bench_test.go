package engine

import (
	"testing"

	"borealis/internal/diagram"
	"borealis/internal/operator"
	"borealis/internal/runtime"
	"borealis/internal/tuple"
	"borealis/internal/vtime"
)

// benchDiagram builds the canonical node fragment: SUnion → Filter → Map →
// SOutput, the shape every experiment's processing nodes use.
func benchDiagram(b *testing.B) *diagram.Diagram {
	b.Helper()
	bd := diagram.NewBuilder()
	bd.Add(operator.NewSUnion("su", operator.SUnionConfig{Ports: 1, BucketSize: 100 * vtime.Millisecond}))
	bd.Add(operator.NewFilter("f", func(t tuple.Tuple) bool { return t.Field(0)%2 == 0 }))
	bd.Add(operator.NewMap("m", func(d []int64) []int64 { return d }))
	bd.Add(operator.NewSOutput("out"))
	bd.Connect("su", "f", 0)
	bd.Connect("f", "m", 0)
	bd.Connect("m", "out", 0)
	bd.Input("in", "su", 0)
	bd.Output("result", "out")
	d, err := bd.Build()
	if err != nil {
		b.Fatal(err)
	}
	return d
}

// BenchmarkEngineDispatch pushes batches through Ingest → service queue →
// dispatch → diagram, the end-to-end per-tuple data plane of one node.
func BenchmarkEngineDispatch(b *testing.B) {
	sim := runtime.NewVirtual()
	e := New(sim, benchDiagram(b), Config{})
	outs := 0
	e.OnOutput(func(string, tuple.Tuple) { outs++ })
	const bucket = 100 * vtime.Millisecond
	batch := make([]tuple.Tuple, 8)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st := int64(i) * bucket
		for j := range batch {
			batch[j] = tuple.NewInsertion(st+int64(j), int64(j))
		}
		e.Ingest("in", batch)
		e.Ingest("in", []tuple.Tuple{tuple.NewBoundary(st + bucket)})
		sim.Run()
	}
	if outs == 0 {
		b.Fatal("nothing emitted")
	}
}

// BenchmarkEngineDispatchCapacity adds the service-queue timer path
// (Capacity > 0), which every experiment node exercises.
func BenchmarkEngineDispatchCapacity(b *testing.B) {
	sim := runtime.NewVirtual()
	e := New(sim, benchDiagram(b), Config{Capacity: 1e9})
	outs := 0
	e.OnOutput(func(string, tuple.Tuple) { outs++ })
	const bucket = 100 * vtime.Millisecond
	batch := make([]tuple.Tuple, 8)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st := int64(i) * bucket
		for j := range batch {
			batch[j] = tuple.NewInsertion(st+int64(j), int64(j))
		}
		e.Ingest("in", batch)
		e.Ingest("in", []tuple.Tuple{tuple.NewBoundary(st + bucket)})
		sim.Run()
	}
	if outs == 0 {
		b.Fatal("nothing emitted")
	}
}
