// Package engine executes one node's query diagram fragment. It provides
// the pieces of the extended SPE architecture (§3) that live between the
// Data Path and the operators:
//
//   - a service queue that models the node's processing capacity, so that
//     reprocessing a large buffer during reconciliation costs time
//     proportional to its size (this is what makes stabilization take
//     longer than the availability bound for long failures, §6.1);
//   - synchronous dispatch of tuples through the diagram;
//   - whole-diagram checkpoint and restore (checkpoint/redo, §4.4.1);
//   - divergence tracking: once any tentative tuple flows between
//     operators, the node's state has diverged and SOutput labels all
//     subsequent output tentative until reconciliation completes;
//   - REC_DONE injection once the queue drains after a replay (§4.4.2:
//     stabilization completes when the node catches up with normal
//     execution and clears its queues).
//
// Checkpoint consistency. A checkpoint is *requested* at failure-detection
// time; the snapshot is physically taken at the next batch boundary after
// every batch enqueued before the request has been dispatched. From the
// request on, the node's Input Managers log all arrivals. The snapshot thus
// captures exactly the effects of pre-request input, and the log holds
// exactly the post-request input, so restore-plus-replay neither loses nor
// double-processes a tuple. (The initial failure suspension of 0.9·D keeps
// SUnions from emitting anything tentative during the short drain between
// request and snapshot.)
package engine

import (
	"fmt"

	"borealis/internal/diagram"
	"borealis/internal/operator"
	"borealis/internal/runtime"
	"borealis/internal/tuple"
	"borealis/internal/vtime"
)

// Config parameterizes an engine.
type Config struct {
	// Capacity is the node's processing rate in tuples per second.
	// Zero means infinitely fast (tuples are dispatched immediately),
	// which is convenient for protocol unit tests.
	Capacity float64
	// PerTuple disables the staged batch data plane and dispatches every
	// tuple through the diagram one at a time — the reference
	// implementation the batch path is differentially tested against.
	// Both planes produce byte-identical output; the batch plane is the
	// default because it is substantially faster on stable traffic.
	PerTuple bool
}

type work struct {
	seq    uint64
	stream string
	tuples []tuple.Tuple
}

// consumer is one pre-resolved downstream edge: the operator map lookups
// happen once at wire time, not per tuple.
type consumer struct {
	op   operator.Operator
	port int
}

// stage is one operator of a precomputed linear chain (see chain).
type stage struct {
	op   operator.Operator
	bp   operator.BatchProcessor // non-nil when op implements it
	port int
	// clean is set when op is operator.CleanPreserving: an accepted
	// ProcessBatch call provably emits only stable insertions and stable
	// boundaries given a clean input, so the dispatcher skips the
	// per-tuple Gate B rescan of the stage's output.
	clean bool
}

// chain is the wire-time precomputed path a batch takes from one external
// input binding through the diagram, following single-consumer non-output
// edges. The staged batch plane runs it operator-at-a-time: every tuple of
// the batch through stage 0, the collected emissions through stage 1, and
// so on — the iterator-composition shape, without per-tuple virtual
// dispatch through the whole diagram per tuple.
//
// A chain ends either at a pure output operator (outStream non-empty; its
// collected emissions are published as one batch) or at the first operator
// with fan-out or an output-with-consumers (truncated: that operator runs
// per-tuple through its normal emit closure, which routes the rest of the
// diagram exactly as the reference plane does).
type chain struct {
	stages    []stage
	outStream string
	truncated bool
	// copyInput is set when the first stage may rewrite its input frame in
	// place (operator.MutatesBatch): the ingested batch belongs to the
	// caller, so the dispatcher hands such a stage a pool copy instead.
	copyInput bool
}

// Snapshot is a whole-diagram checkpoint.
type Snapshot struct {
	ops map[string]any
}

// Engine runs a diagram on a runtime clock (virtual or wall).
type Engine struct {
	clk runtime.Clock
	d   *diagram.Diagram
	cfg Config

	onOutput func(stream string, t tuple.Tuple)
	onSignal func(operator.Signal)
	onIdle   func()
	// onOutputBatch, when set, receives whole output batches from the
	// staged plane in one call; unset, the staged plane falls back to
	// per-tuple onOutput calls.
	onOutputBatch func(stream string, ts []tuple.Tuple)

	// Staged batch plane. chains precomputes, per external input stream,
	// the linear operator path a batch can be run through
	// operator-at-a-time. While a stage runs, collectOp names it and the
	// stage's emissions are captured in collectBuf instead of being routed
	// downstream; frames recycles the capture buffers.
	chains     map[string]*chain
	collectOp  operator.Operator
	collectBuf []tuple.Tuple
	// collectLoan marks collectBuf as an array loaned by the running
	// stage's operator (Env.EmitLoan): used in place as the stage frame,
	// never returned to the frame pool.
	collectLoan bool
	frames      tuple.FramePool

	// queue is a ring buffer of pending batches: slots are reused across
	// the engine's lifetime, so steady-state ingest enqueues without
	// allocating.
	queue   []work
	qhead   int
	qlen    int
	nextSeq uint64
	// maxQueue is the high-water mark of qlen, a capacity-pressure probe
	// surfaced in scenario reports.
	maxQueue int

	busy      bool
	svcTimer  runtime.Timer
	svcDoneFn func(any) // bound once; service completion allocates nothing
	inService work
	diverged  bool

	// Wire-time caches of diagram lookups used on the per-batch path.
	inBind  map[string]consumer
	inSU    map[string]*operator.SUnion
	sunions []*operator.SUnion

	cpCb   func(*Snapshot)
	cutSeq uint64

	recDonePending bool

	// Processed counts tuples dispatched through the diagram.
	Processed uint64
}

// New builds an engine for the diagram and wires every operator.
func New(clk runtime.Clock, d *diagram.Diagram, cfg Config) *Engine {
	e := &Engine{clk: clk, d: d, cfg: cfg}
	e.svcDoneFn = e.svcDone
	e.wire()
	return e
}

// Diagram returns the executed diagram.
func (e *Engine) Diagram() *diagram.Diagram { return e.d }

// OnOutput registers the callback receiving every tuple emitted on an
// external output stream.
func (e *Engine) OnOutput(fn func(stream string, t tuple.Tuple)) { e.onOutput = fn }

// OnOutputBatch registers the callback receiving whole batches emitted on
// an external output stream by the staged batch plane. The slice is only
// valid for the duration of the call (it is a pooled frame); the callback
// must copy what it retains. Tuples still reach OnOutput per-tuple whenever
// the staged plane is not in effect, so both callbacks should be set.
func (e *Engine) OnOutputBatch(fn func(stream string, ts []tuple.Tuple)) { e.onOutputBatch = fn }

// OnSignal registers the callback receiving SUnion/SOutput control signals.
func (e *Engine) OnSignal(fn func(operator.Signal)) { e.onSignal = fn }

// OnIdle registers a callback invoked whenever the service queue drains.
func (e *Engine) OnIdle(fn func()) { e.onIdle = fn }

// Diverged reports whether the node's state has diverged from the stable
// execution since the last checkpoint restore.
func (e *Engine) Diverged() bool { return e.diverged }

// QueueLen returns the number of queued, unserviced batches.
func (e *Engine) QueueLen() int { return e.qlen }

// MaxQueueLen returns the high-water mark of the service queue over the
// engine's lifetime (replays included).
func (e *Engine) MaxQueueLen() int { return e.maxQueue }

// Idle reports whether no batch is queued or in service.
func (e *Engine) Idle() bool { return !e.busy && e.qlen == 0 }

// wire attaches every operator's Env: emissions route synchronously along
// diagram edges; terminal operators publish to the output callback. Edge
// targets are resolved once here, so per-tuple emission does no diagram
// lookups, and the common single-consumer edge gets a direct call with no
// fan-out loop.
func (e *Engine) wire() {
	outputOf := make(map[string]string) // op -> external stream
	for _, out := range e.d.Outputs() {
		outputOf[out.Op] = out.Stream
	}
	for _, name := range e.d.TopoOrder() {
		op := e.d.Op(name)
		edges := e.d.Downstream(name)
		cons := make([]consumer, len(edges))
		for i, edge := range edges {
			cons[i] = consumer{op: e.d.Op(edge.To), port: edge.Port}
		}
		stream, isOutput := outputOf[name]
		// Both closures first check whether the staged batch plane is
		// collecting this operator's emissions; the collector defers the
		// divergence bookkeeping to the staged dispatcher, which replicates
		// the reference plane's write timing exactly (see dispatchStaged).
		var emit func(tuple.Tuple)
		if len(cons) == 1 && !isOutput {
			to := cons[0]
			emit = func(t tuple.Tuple) {
				if e.collectOp == op {
					if e.collectBuf == nil {
						e.collectBuf = e.frames.Get()
					}
					e.collectBuf = append(e.collectBuf, t)
					return
				}
				if t.Type == tuple.Tentative {
					e.diverged = true
				}
				to.op.Process(to.port, t)
			}
		} else {
			emit = func(t tuple.Tuple) {
				if e.collectOp == op {
					if e.collectBuf == nil {
						e.collectBuf = e.frames.Get()
					}
					e.collectBuf = append(e.collectBuf, t)
					return
				}
				if t.Type == tuple.Tentative {
					e.diverged = true
				}
				for _, c := range cons {
					c.op.Process(c.port, t)
				}
				if isOutput && e.onOutput != nil {
					e.onOutput(stream, t)
				}
			}
		}
		// The bulk path a ProcessBatch implementation hands its staged
		// output to: a single append when the staged plane is collecting
		// this operator, the reference per-tuple chain otherwise.
		emitBatch := func(ts []tuple.Tuple) {
			if e.collectOp == op {
				if len(ts) == 0 {
					return
				}
				if e.collectBuf == nil {
					e.collectBuf = e.frames.Get()
				}
				e.collectBuf = append(e.collectBuf, ts...)
				return
			}
			for i := range ts {
				emit(ts[i])
			}
		}
		// The zero-copy variant: when this operator is the running stage
		// and nothing has been collected yet, the loaned array becomes
		// the stage frame outright — the usual case for a ProcessBatch
		// that stages its whole output in a scratch buffer.
		emitLoan := func(ts []tuple.Tuple) bool {
			if e.collectOp == op {
				if len(ts) == 0 {
					return false
				}
				if e.collectBuf == nil {
					e.collectBuf = ts
					e.collectLoan = true
					return true
				}
				e.collectBuf = append(e.collectBuf, ts...)
				return false
			}
			for i := range ts {
				emit(ts[i])
			}
			return false
		}
		env := &operator.Env{
			Now:       e.clk.Now,
			After:     e.clk.After,
			Emit:      emit,
			EmitBatch: emitBatch,
			EmitLoan:  emitLoan,
			Signal: func(s operator.Signal) {
				if e.onSignal != nil {
					e.onSignal(s)
				}
			},
			Diverged: func() bool { return e.diverged },
		}
		op.Attach(env)
	}
	e.inBind = make(map[string]consumer)
	e.inSU = make(map[string]*operator.SUnion)
	for _, in := range e.d.Inputs() {
		op := e.d.Op(in.Op)
		e.inBind[in.Stream] = consumer{op: op, port: in.Port}
		if su, ok := op.(*operator.SUnion); ok {
			e.inSU[in.Stream] = su
		}
	}
	e.sunions = e.sunions[:0]
	for _, name := range e.d.SUnions() {
		e.sunions = append(e.sunions, e.d.Op(name).(*operator.SUnion))
	}
	e.chains = make(map[string]*chain)
	for _, in := range e.d.Inputs() {
		ch := e.buildChain(in.Op, in.Port, outputOf)
		// A single truncated stage degenerates to exactly the per-tuple
		// loop; skip the gate scans and dispatch it directly.
		if len(ch.stages) > 1 || !ch.truncated {
			e.chains[in.Stream] = ch
		}
	}
}

// buildChain walks the diagram from an input binding along single-consumer
// non-output edges, producing the linear path the staged batch plane runs
// operator-at-a-time. Diagrams are acyclic, so the walk terminates.
func (e *Engine) buildChain(opName string, port int, outputOf map[string]string) *chain {
	ch := &chain{}
	name := opName
	for {
		op := e.d.Op(name)
		st := stage{op: op, port: port}
		st.bp, _ = op.(operator.BatchProcessor)
		_, st.clean = op.(operator.CleanPreserving)
		if len(ch.stages) == 0 {
			_, ch.copyInput = op.(operator.MutatesBatch)
		}
		ch.stages = append(ch.stages, st)
		edges := e.d.Downstream(name)
		stream, isOutput := outputOf[name]
		switch {
		case len(edges) == 0 && isOutput:
			ch.outStream = stream
			return ch
		case len(edges) == 1 && !isOutput:
			name = edges[0].To
			port = edges[0].Port
		default:
			// Fan-out, an output that also has consumers, or a dead end:
			// this operator runs per-tuple through its normal emit
			// closure, which routes the rest of the diagram exactly as
			// the reference plane does.
			ch.truncated = true
			return ch
		}
	}
}

// Ingest queues a batch of tuples arriving on an external input stream.
func (e *Engine) Ingest(stream string, ts []tuple.Tuple) {
	if len(ts) == 0 {
		return
	}
	if _, ok := e.inBind[stream]; !ok {
		panic(fmt.Sprintf("engine: unknown input stream %q", stream))
	}
	e.nextSeq++
	e.pushWork(work{seq: e.nextSeq, stream: stream, tuples: ts})
	e.kick()
}

// pushWork appends a batch to the ring, growing it only when full.
func (e *Engine) pushWork(w work) {
	if e.qlen == len(e.queue) {
		newCap := 2 * len(e.queue)
		if newCap == 0 {
			newCap = 8
		}
		nq := make([]work, newCap)
		for i := 0; i < e.qlen; i++ {
			nq[i] = e.queue[(e.qhead+i)%len(e.queue)]
		}
		e.queue = nq
		e.qhead = 0
	}
	e.queue[(e.qhead+e.qlen)%len(e.queue)] = w
	e.qlen++
	if e.qlen > e.maxQueue {
		e.maxQueue = e.qlen
	}
}

// popWork removes and returns the front batch, releasing the slot's tuple
// reference so the ring never pins drained batches.
func (e *Engine) popWork() work {
	w := e.queue[e.qhead]
	e.queue[e.qhead] = work{}
	e.qhead = (e.qhead + 1) % len(e.queue)
	e.qlen--
	return w
}

// clearQueue drops every queued batch (checkpoint restore).
func (e *Engine) clearQueue() {
	for i := 0; i < e.qlen; i++ {
		e.queue[(e.qhead+i)%len(e.queue)] = work{}
	}
	e.qhead = 0
	e.qlen = 0
}

// kick services the queue head if the engine is idle, taking a pending
// checkpoint first once all pre-request batches have been dispatched.
func (e *Engine) kick() {
	if e.busy {
		return
	}
	if e.cpCb != nil && (e.qlen == 0 || e.queue[e.qhead].seq > e.cutSeq) {
		cb := e.cpCb
		e.cpCb = nil
		cb(e.snapshot())
	}
	if e.qlen == 0 {
		if e.recDonePending {
			e.recDonePending = false
			e.injectRecDone()
		}
		if e.onIdle != nil {
			e.onIdle()
		}
		return
	}
	e.busy = true
	batch := e.popWork()
	svc := int64(0)
	if e.cfg.Capacity > 0 {
		n := len(batch.tuples)
		// Tuples the input SUnion will drop in O(1) (behind its
		// cursor) do not consume processing capacity.
		if su := e.inSU[batch.stream]; su != nil {
			n = su.FreshCount(batch.tuples)
		}
		svc = int64(float64(n) / e.cfg.Capacity * float64(vtime.Second))
	}
	e.inService = batch
	e.svcTimer = e.clk.AfterCall(svc, e.svcDoneFn, nil)
}

// svcDone fires when the in-service batch's processing time has elapsed.
func (e *Engine) svcDone(any) {
	e.busy = false
	e.svcTimer = nil
	batch := e.inService
	e.inService = work{}
	e.dispatch(batch)
	e.kick()
}

// dispatch pushes a serviced batch through the diagram: along the staged
// batch plane when the safety gates hold, per-tuple otherwise.
func (e *Engine) dispatch(batch work) {
	in, ok := e.inBind[batch.stream]
	if !ok {
		return
	}
	ts := batch.tuples
	if !e.cfg.PerTuple {
		if ch := e.chains[batch.stream]; ch != nil && e.stageable(ts) {
			e.dispatchStaged(ch, ts)
			return
		}
	}
	for i := range ts {
		e.Processed++
		in.op.Process(in.port, ts[i])
	}
}

// stageable is the staged plane's entry gate. Gate A: every SUnion must be
// under PolicyNone or PolicySuspend — the tentative-emitting policies arm
// flush timers whose heap order depends on per-tuple interleaving, which
// operator-at-a-time execution would reorder. Gate B (entry half): the
// batch must hold only stable traffic; anything else takes the reference
// path, whose ordering around undo/reconciliation is the spec.
func (e *Engine) stageable(ts []tuple.Tuple) bool {
	for _, su := range e.sunions {
		if p := su.Policy(); p != operator.PolicyNone && p != operator.PolicySuspend {
			return false
		}
	}
	return cleanBatch(ts)
}

// cleanBatch reports whether ts carries only stable traffic: insertions and
// stable boundaries. Tentative boundaries (Src==1, footnote 5 of the paper)
// are excluded along with tentative data — they only occur while some
// SUnion is emitting tentatively, exactly when staging must stand down.
func cleanBatch(ts []tuple.Tuple) bool {
	for i := range ts {
		if ts[i].Type != tuple.Insertion && !(ts[i].Type == tuple.Boundary && ts[i].Src == 0) {
			return false
		}
	}
	return true
}

// dispatchStaged runs a batch through a chain operator-at-a-time: every
// tuple through stage 0, stage 0's collected emissions through stage 1, and
// so on. Each stage's output is re-checked against Gate B — the moment a
// stage emits anything non-stable, the remaining diagram runs per-tuple
// through the reference plane's emit closures, with the divergence flag
// written per tentative tuple immediately before the downstream Process
// call, exactly as the reference emit closure would have.
//
// Equivalence argument: within one synchronous dispatch the clock is
// constant, only SUnions arm timers (never under Gate A's policies), only
// SOutput reads the divergence flag (and it is terminal in every chain),
// and the flag can only transition on a tentative emission — which Gate B
// turns into a fallback at the emitting stage. So reordering per-tuple
// depth-first traversal into operator-at-a-time stages changes no
// observable state transition.
func (e *Engine) dispatchStaged(ch *chain, ts []tuple.Tuple) {
	e.Processed += uint64(len(ts))
	cur := ts
	curPooled := false // cur is a pool frame (not the input, not a loan)
	if ch.copyInput {
		cur = append(e.frames.Get(), ts...)
		curPooled = true
	}
	for si := range ch.stages {
		st := ch.stages[si]
		last := si == len(ch.stages)-1
		if last && ch.truncated {
			// Truncated tail: the fan-out (or consumed-output) operator
			// routes the rest of the diagram through its normal closures.
			for i := range cur {
				st.op.Process(st.port, cur[i])
			}
			break
		}
		out, pooled, fast := e.collectStage(st, cur)
		if len(out) > 0 && len(cur) > 0 && &out[0] == &cur[0] {
			// The stage re-emitted its input frame in place (a self-loan,
			// possibly compacted shorter): ownership of the frame carries
			// over unchanged, so it must not be recycled here.
			cur = out
		} else {
			if curPooled {
				e.frames.Put(cur)
			}
			cur, curPooled = out, pooled
		}
		if last {
			e.publishStaged(ch.outStream, out)
			break
		}
		if (!fast || !st.clean) && !cleanBatch(out) {
			// Gate B fallback: feed this stage's emissions per-tuple into
			// the next stage; its emit closures take over from there.
			next := ch.stages[si+1]
			for i := range out {
				if out[i].Type == tuple.Tentative {
					e.diverged = true
				}
				next.op.Process(next.port, out[i])
			}
			break
		}
	}
	if curPooled {
		e.frames.Put(cur)
	}
}

// collectStage runs one batch through one operator, capturing its
// emissions. The batch-processing fast path is taken when the operator
// offers one and accepts; otherwise the reference per-tuple loop runs with
// the collector still capturing. The capture buffer is materialized lazily:
// a pool frame on the first per-tuple or copying emission, or the
// operator's own loaned array (Env.EmitLoan) aliased in place — the second
// return value reports whether the result belongs to the frame pool, the
// third whether the batch fast path accepted (needed for the Gate B
// rescan-skip, which only CleanPreserving ProcessBatch calls license).
func (e *Engine) collectStage(st stage, ts []tuple.Tuple) ([]tuple.Tuple, bool, bool) {
	e.collectOp = st.op
	e.collectBuf = nil
	e.collectLoan = false
	fast := st.bp != nil && st.bp.ProcessBatch(st.port, ts)
	if !fast {
		for i := range ts {
			st.op.Process(st.port, ts[i])
		}
	}
	out, pooled := e.collectBuf, !e.collectLoan
	e.collectOp = nil
	e.collectBuf = nil
	e.collectLoan = false
	return out, pooled, fast
}

// publishStaged delivers a terminal output operator's collected emissions.
// The divergence scan mirrors the reference emit closure (which sets the
// flag before publishing each tentative tuple); nothing on the publish side
// reads the flag, so setting it for the whole batch up front is exact.
func (e *Engine) publishStaged(stream string, out []tuple.Tuple) {
	for i := range out {
		if out[i].Type == tuple.Tentative {
			e.diverged = true
		}
	}
	if len(out) == 0 {
		return
	}
	if e.onOutputBatch != nil {
		e.onOutputBatch(stream, out)
		return
	}
	if e.onOutput != nil {
		for i := range out {
			e.onOutput(stream, out[i])
		}
	}
}

// RequestCheckpoint arranges for a snapshot capturing exactly the effects
// of every batch ingested before this call. The callback fires as soon as
// those batches have drained (immediately if the engine is idle). From this
// moment on, the caller must log all further arrivals for replay.
func (e *Engine) RequestCheckpoint(cb func(*Snapshot)) {
	if cb == nil {
		panic("engine: nil checkpoint callback")
	}
	if e.cpCb != nil {
		panic("engine: checkpoint already pending")
	}
	e.cutSeq = e.nextSeq
	if !e.busy && (e.qlen == 0 || e.queue[e.qhead].seq > e.cutSeq) {
		cb(e.snapshot())
		return
	}
	e.cpCb = cb
}

// CancelCheckpoint abandons a pending checkpoint request: the failure
// epoch that wanted the snapshot is over (a masked heal discarded it)
// and the callback must not fire. Without this, an epoch masked while
// the engine never went idle would leave its request pending, and the
// next failure's RequestCheckpoint would find a checkpoint it never
// asked for — a crash the scenario fuzzer first hit under a replica
// flap riding a loaded queue.
func (e *Engine) CancelCheckpoint() { e.cpCb = nil }

func (e *Engine) snapshot() *Snapshot {
	s := &Snapshot{ops: make(map[string]any, len(e.d.TopoOrder()))}
	for _, name := range e.d.TopoOrder() {
		s.ops[name] = e.d.Op(name).Checkpoint()
	}
	return s
}

// Restore rolls the diagram back to a snapshot and discards all queued and
// in-flight work: everything ingested after the checkpoint request lives in
// the Input Managers' logs and is about to be replayed through Ingest.
func (e *Engine) Restore(s *Snapshot) {
	for _, name := range e.d.TopoOrder() {
		e.d.Op(name).Restore(s.ops[name])
	}
	if e.svcTimer != nil {
		e.svcTimer.Stop()
		e.svcTimer = nil
	}
	e.busy = false
	e.inService = work{}
	e.clearQueue()
	e.diverged = false
	e.recDonePending = false
	// A checkpoint request still pending belongs to the epoch being rolled
	// away (reconciliation restores only after its snapshot fired, so this
	// can only be a crash-restart reset); drop it with the rest.
	e.cpCb = nil
}

// ScheduleRecDone arranges for a REC_DONE marker to flow through the
// diagram as soon as the service queue drains: the node has then caught up
// with normal execution and the correction sequence is complete (§4.4.2).
func (e *Engine) ScheduleRecDone() {
	e.recDonePending = true
	if e.Idle() {
		e.clk.After(0, func() {
			if e.recDonePending && e.Idle() {
				e.recDonePending = false
				e.injectRecDone()
			}
		})
	}
}

// injectRecDone feeds a REC_DONE tuple into every external input binding;
// multi-port SUnions forward a single marker once every path has delivered
// one, so exactly one REC_DONE reaches each output stream.
func (e *Engine) injectRecDone() {
	rd := tuple.NewRecDone(e.clk.Now())
	for _, in := range e.d.Inputs() {
		e.d.Op(in.Op).Process(in.Port, rd)
	}
	// The node is consistent again once the corrections are out.
	e.diverged = false
}

// Resetter is implemented by operators whose Restore deliberately keeps
// some state out of checkpoints (SOutput's external-stream view): a crash
// restart must clear that too.
type Resetter interface{ Reset() }

// ResetToPristine rolls every operator back to its initial state, clearing
// even non-checkpointed externals: the §4.5 crash-restart, where a node
// rebuilds from empty state.
func (e *Engine) ResetToPristine(pristine *Snapshot) {
	e.Restore(pristine)
	for _, name := range e.d.TopoOrder() {
		if r, ok := e.d.Op(name).(Resetter); ok {
			r.Reset()
		}
	}
	e.Processed = 0
}

// SetPolicyAll switches every SUnion in the diagram to the given policy
// (whole-node failure handling, §4).
func (e *Engine) SetPolicyAll(p operator.DelayPolicy) {
	for _, su := range e.sunions {
		su.SetPolicy(p)
	}
}

// SetPolicyFed switches only the SUnions reachable from the given input
// stream (fine-grained failure handling, §8.2).
func (e *Engine) SetPolicyFed(input string, p operator.DelayPolicy) {
	for _, name := range e.d.SUnionsFedBy(input) {
		e.d.Op(name).(*operator.SUnion).SetPolicy(p)
	}
}

// RevokeTentativeAll removes tentative content from every SUnion's
// pending buckets. The reconciliation path calls it right after the
// checkpoint restore: a snapshot taken while tentative data sat in a
// bucket (possible when a crash-restarted replica re-anchors its epoch
// mid-replay of a diverged upstream) would otherwise resurrect tuples
// whose undo was already consumed patching the arrival logs — poison no
// policy can flush. Stabilization re-derives from stable data only; any
// still-valid tentative content it drops is replaced by the upstream's
// own correction sequence.
func (e *Engine) RevokeTentativeAll() {
	for _, su := range e.sunions {
		su.RevokeTentative(-1)
	}
}

// HoldsTentative reports whether any SUnion still buffers tentative
// tuples in a pending bucket. Such buckets can never stabilize on their
// own (the tentative content is only removed by rolling the operator
// back), so the node controller must not treat a heal as masked while
// this is true, even when nothing tentative ever left the node.
func (e *Engine) HoldsTentative() bool {
	for _, su := range e.sunions {
		if su.HasPendingTentative() {
			return true
		}
	}
	// Tentative tuples still queued for dispatch count too: at a heal
	// instant a just-arrived batch (e.g. the dual-connection tentative
	// feed of §4.4.3, cut moments later by consolidation) may not have
	// reached any bucket yet. Declaring the heal masked on the bucket
	// scan alone lets the batch dispatch into a bucket after the node
	// went back to STABLE — poison with no revocation left to come
	// (found by the scenario fuzzer: a partition heal during an
	// upstream's stabilization).
	for i := 0; i < e.qlen; i++ {
		for _, t := range e.queue[(e.qhead+i)%len(e.queue)].tuples {
			if t.Type == tuple.Tentative {
				return true
			}
		}
	}
	// The in-service batch is no longer in the queue but has not been
	// dispatched either: kick pops it the instant it is ingested, so a
	// replay batch that mixes tentative tuples with the boundary that
	// heals the input sits exactly here when the heal decision is made
	// (found by the scenario fuzzer: an upstream's resubscription replay
	// serving tuples it produced between its own heal and its restore).
	for _, t := range e.inService.tuples {
		if t.Type == tuple.Tentative {
			return true
		}
	}
	return false
}

// OldestPendingArrival returns the earliest arrival time buffered in any
// SUnion, used by the node controller to anchor availability bookkeeping.
func (e *Engine) OldestPendingArrival() int64 {
	oldest := e.clk.Now()
	for _, su := range e.sunions {
		if su.PendingBuckets() > 0 {
			if a := su.OldestPendingArrival(); a < oldest {
				oldest = a
			}
		}
	}
	return oldest
}
