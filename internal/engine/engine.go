// Package engine executes one node's query diagram fragment. It provides
// the pieces of the extended SPE architecture (§3) that live between the
// Data Path and the operators:
//
//   - a service queue that models the node's processing capacity, so that
//     reprocessing a large buffer during reconciliation costs time
//     proportional to its size (this is what makes stabilization take
//     longer than the availability bound for long failures, §6.1);
//   - synchronous dispatch of tuples through the diagram;
//   - whole-diagram checkpoint and restore (checkpoint/redo, §4.4.1);
//   - divergence tracking: once any tentative tuple flows between
//     operators, the node's state has diverged and SOutput labels all
//     subsequent output tentative until reconciliation completes;
//   - REC_DONE injection once the queue drains after a replay (§4.4.2:
//     stabilization completes when the node catches up with normal
//     execution and clears its queues).
//
// Checkpoint consistency. A checkpoint is *requested* at failure-detection
// time; the snapshot is physically taken at the next batch boundary after
// every batch enqueued before the request has been dispatched. From the
// request on, the node's Input Managers log all arrivals. The snapshot thus
// captures exactly the effects of pre-request input, and the log holds
// exactly the post-request input, so restore-plus-replay neither loses nor
// double-processes a tuple. (The initial failure suspension of 0.9·D keeps
// SUnions from emitting anything tentative during the short drain between
// request and snapshot.)
package engine

import (
	"fmt"

	"borealis/internal/diagram"
	"borealis/internal/operator"
	"borealis/internal/runtime"
	"borealis/internal/tuple"
	"borealis/internal/vtime"
)

// Config parameterizes an engine.
type Config struct {
	// Capacity is the node's processing rate in tuples per second.
	// Zero means infinitely fast (tuples are dispatched immediately),
	// which is convenient for protocol unit tests.
	Capacity float64
}

type work struct {
	seq    uint64
	stream string
	tuples []tuple.Tuple
}

// consumer is one pre-resolved downstream edge: the operator map lookups
// happen once at wire time, not per tuple.
type consumer struct {
	op   operator.Operator
	port int
}

// Snapshot is a whole-diagram checkpoint.
type Snapshot struct {
	ops map[string]any
}

// Engine runs a diagram on a runtime clock (virtual or wall).
type Engine struct {
	clk runtime.Clock
	d   *diagram.Diagram
	cfg Config

	onOutput func(stream string, t tuple.Tuple)
	onSignal func(operator.Signal)
	onIdle   func()

	// queue is a ring buffer of pending batches: slots are reused across
	// the engine's lifetime, so steady-state ingest enqueues without
	// allocating.
	queue   []work
	qhead   int
	qlen    int
	nextSeq uint64
	// maxQueue is the high-water mark of qlen, a capacity-pressure probe
	// surfaced in scenario reports.
	maxQueue int

	busy      bool
	svcTimer  runtime.Timer
	svcDoneFn func(any) // bound once; service completion allocates nothing
	inService work
	diverged  bool

	// Wire-time caches of diagram lookups used on the per-batch path.
	inBind  map[string]consumer
	inSU    map[string]*operator.SUnion
	sunions []*operator.SUnion

	cpCb   func(*Snapshot)
	cutSeq uint64

	recDonePending bool

	// Processed counts tuples dispatched through the diagram.
	Processed uint64
}

// New builds an engine for the diagram and wires every operator.
func New(clk runtime.Clock, d *diagram.Diagram, cfg Config) *Engine {
	e := &Engine{clk: clk, d: d, cfg: cfg}
	e.svcDoneFn = e.svcDone
	e.wire()
	return e
}

// Diagram returns the executed diagram.
func (e *Engine) Diagram() *diagram.Diagram { return e.d }

// OnOutput registers the callback receiving every tuple emitted on an
// external output stream.
func (e *Engine) OnOutput(fn func(stream string, t tuple.Tuple)) { e.onOutput = fn }

// OnSignal registers the callback receiving SUnion/SOutput control signals.
func (e *Engine) OnSignal(fn func(operator.Signal)) { e.onSignal = fn }

// OnIdle registers a callback invoked whenever the service queue drains.
func (e *Engine) OnIdle(fn func()) { e.onIdle = fn }

// Diverged reports whether the node's state has diverged from the stable
// execution since the last checkpoint restore.
func (e *Engine) Diverged() bool { return e.diverged }

// QueueLen returns the number of queued, unserviced batches.
func (e *Engine) QueueLen() int { return e.qlen }

// MaxQueueLen returns the high-water mark of the service queue over the
// engine's lifetime (replays included).
func (e *Engine) MaxQueueLen() int { return e.maxQueue }

// Idle reports whether no batch is queued or in service.
func (e *Engine) Idle() bool { return !e.busy && e.qlen == 0 }

// wire attaches every operator's Env: emissions route synchronously along
// diagram edges; terminal operators publish to the output callback. Edge
// targets are resolved once here, so per-tuple emission does no diagram
// lookups, and the common single-consumer edge gets a direct call with no
// fan-out loop.
func (e *Engine) wire() {
	outputOf := make(map[string]string) // op -> external stream
	for _, out := range e.d.Outputs() {
		outputOf[out.Op] = out.Stream
	}
	for _, name := range e.d.TopoOrder() {
		op := e.d.Op(name)
		edges := e.d.Downstream(name)
		cons := make([]consumer, len(edges))
		for i, edge := range edges {
			cons[i] = consumer{op: e.d.Op(edge.To), port: edge.Port}
		}
		stream, isOutput := outputOf[name]
		var emit func(tuple.Tuple)
		if len(cons) == 1 && !isOutput {
			to := cons[0]
			emit = func(t tuple.Tuple) {
				if t.Type == tuple.Tentative {
					e.diverged = true
				}
				to.op.Process(to.port, t)
			}
		} else {
			emit = func(t tuple.Tuple) {
				if t.Type == tuple.Tentative {
					e.diverged = true
				}
				for _, c := range cons {
					c.op.Process(c.port, t)
				}
				if isOutput && e.onOutput != nil {
					e.onOutput(stream, t)
				}
			}
		}
		env := &operator.Env{
			Now:   e.clk.Now,
			After: e.clk.After,
			Emit:  emit,
			Signal: func(s operator.Signal) {
				if e.onSignal != nil {
					e.onSignal(s)
				}
			},
			Diverged: func() bool { return e.diverged },
		}
		op.Attach(env)
	}
	e.inBind = make(map[string]consumer)
	e.inSU = make(map[string]*operator.SUnion)
	for _, in := range e.d.Inputs() {
		op := e.d.Op(in.Op)
		e.inBind[in.Stream] = consumer{op: op, port: in.Port}
		if su, ok := op.(*operator.SUnion); ok {
			e.inSU[in.Stream] = su
		}
	}
	e.sunions = e.sunions[:0]
	for _, name := range e.d.SUnions() {
		e.sunions = append(e.sunions, e.d.Op(name).(*operator.SUnion))
	}
}

// Ingest queues a batch of tuples arriving on an external input stream.
func (e *Engine) Ingest(stream string, ts []tuple.Tuple) {
	if len(ts) == 0 {
		return
	}
	if _, ok := e.inBind[stream]; !ok {
		panic(fmt.Sprintf("engine: unknown input stream %q", stream))
	}
	e.nextSeq++
	e.pushWork(work{seq: e.nextSeq, stream: stream, tuples: ts})
	e.kick()
}

// pushWork appends a batch to the ring, growing it only when full.
func (e *Engine) pushWork(w work) {
	if e.qlen == len(e.queue) {
		newCap := 2 * len(e.queue)
		if newCap == 0 {
			newCap = 8
		}
		nq := make([]work, newCap)
		for i := 0; i < e.qlen; i++ {
			nq[i] = e.queue[(e.qhead+i)%len(e.queue)]
		}
		e.queue = nq
		e.qhead = 0
	}
	e.queue[(e.qhead+e.qlen)%len(e.queue)] = w
	e.qlen++
	if e.qlen > e.maxQueue {
		e.maxQueue = e.qlen
	}
}

// popWork removes and returns the front batch, releasing the slot's tuple
// reference so the ring never pins drained batches.
func (e *Engine) popWork() work {
	w := e.queue[e.qhead]
	e.queue[e.qhead] = work{}
	e.qhead = (e.qhead + 1) % len(e.queue)
	e.qlen--
	return w
}

// clearQueue drops every queued batch (checkpoint restore).
func (e *Engine) clearQueue() {
	for i := 0; i < e.qlen; i++ {
		e.queue[(e.qhead+i)%len(e.queue)] = work{}
	}
	e.qhead = 0
	e.qlen = 0
}

// kick services the queue head if the engine is idle, taking a pending
// checkpoint first once all pre-request batches have been dispatched.
func (e *Engine) kick() {
	if e.busy {
		return
	}
	if e.cpCb != nil && (e.qlen == 0 || e.queue[e.qhead].seq > e.cutSeq) {
		cb := e.cpCb
		e.cpCb = nil
		cb(e.snapshot())
	}
	if e.qlen == 0 {
		if e.recDonePending {
			e.recDonePending = false
			e.injectRecDone()
		}
		if e.onIdle != nil {
			e.onIdle()
		}
		return
	}
	e.busy = true
	batch := e.popWork()
	svc := int64(0)
	if e.cfg.Capacity > 0 {
		n := len(batch.tuples)
		// Tuples the input SUnion will drop in O(1) (behind its
		// cursor) do not consume processing capacity.
		if su := e.inSU[batch.stream]; su != nil {
			n = su.FreshCount(batch.tuples)
		}
		svc = int64(float64(n) / e.cfg.Capacity * float64(vtime.Second))
	}
	e.inService = batch
	e.svcTimer = e.clk.AfterCall(svc, e.svcDoneFn, nil)
}

// svcDone fires when the in-service batch's processing time has elapsed.
func (e *Engine) svcDone(any) {
	e.busy = false
	e.svcTimer = nil
	batch := e.inService
	e.inService = work{}
	e.dispatch(batch)
	e.kick()
}

// dispatch pushes a serviced batch through the diagram.
func (e *Engine) dispatch(batch work) {
	in, ok := e.inBind[batch.stream]
	if !ok {
		return
	}
	ts := batch.tuples
	for i := range ts {
		e.Processed++
		in.op.Process(in.port, ts[i])
	}
}

// RequestCheckpoint arranges for a snapshot capturing exactly the effects
// of every batch ingested before this call. The callback fires as soon as
// those batches have drained (immediately if the engine is idle). From this
// moment on, the caller must log all further arrivals for replay.
func (e *Engine) RequestCheckpoint(cb func(*Snapshot)) {
	if cb == nil {
		panic("engine: nil checkpoint callback")
	}
	if e.cpCb != nil {
		panic("engine: checkpoint already pending")
	}
	e.cutSeq = e.nextSeq
	if !e.busy && (e.qlen == 0 || e.queue[e.qhead].seq > e.cutSeq) {
		cb(e.snapshot())
		return
	}
	e.cpCb = cb
}

// CancelCheckpoint abandons a pending checkpoint request: the failure
// epoch that wanted the snapshot is over (a masked heal discarded it)
// and the callback must not fire. Without this, an epoch masked while
// the engine never went idle would leave its request pending, and the
// next failure's RequestCheckpoint would find a checkpoint it never
// asked for — a crash the scenario fuzzer first hit under a replica
// flap riding a loaded queue.
func (e *Engine) CancelCheckpoint() { e.cpCb = nil }

func (e *Engine) snapshot() *Snapshot {
	s := &Snapshot{ops: make(map[string]any, len(e.d.TopoOrder()))}
	for _, name := range e.d.TopoOrder() {
		s.ops[name] = e.d.Op(name).Checkpoint()
	}
	return s
}

// Restore rolls the diagram back to a snapshot and discards all queued and
// in-flight work: everything ingested after the checkpoint request lives in
// the Input Managers' logs and is about to be replayed through Ingest.
func (e *Engine) Restore(s *Snapshot) {
	for _, name := range e.d.TopoOrder() {
		e.d.Op(name).Restore(s.ops[name])
	}
	if e.svcTimer != nil {
		e.svcTimer.Stop()
		e.svcTimer = nil
	}
	e.busy = false
	e.inService = work{}
	e.clearQueue()
	e.diverged = false
	e.recDonePending = false
	// A checkpoint request still pending belongs to the epoch being rolled
	// away (reconciliation restores only after its snapshot fired, so this
	// can only be a crash-restart reset); drop it with the rest.
	e.cpCb = nil
}

// ScheduleRecDone arranges for a REC_DONE marker to flow through the
// diagram as soon as the service queue drains: the node has then caught up
// with normal execution and the correction sequence is complete (§4.4.2).
func (e *Engine) ScheduleRecDone() {
	e.recDonePending = true
	if e.Idle() {
		e.clk.After(0, func() {
			if e.recDonePending && e.Idle() {
				e.recDonePending = false
				e.injectRecDone()
			}
		})
	}
}

// injectRecDone feeds a REC_DONE tuple into every external input binding;
// multi-port SUnions forward a single marker once every path has delivered
// one, so exactly one REC_DONE reaches each output stream.
func (e *Engine) injectRecDone() {
	rd := tuple.NewRecDone(e.clk.Now())
	for _, in := range e.d.Inputs() {
		e.d.Op(in.Op).Process(in.Port, rd)
	}
	// The node is consistent again once the corrections are out.
	e.diverged = false
}

// Resetter is implemented by operators whose Restore deliberately keeps
// some state out of checkpoints (SOutput's external-stream view): a crash
// restart must clear that too.
type Resetter interface{ Reset() }

// ResetToPristine rolls every operator back to its initial state, clearing
// even non-checkpointed externals: the §4.5 crash-restart, where a node
// rebuilds from empty state.
func (e *Engine) ResetToPristine(pristine *Snapshot) {
	e.Restore(pristine)
	for _, name := range e.d.TopoOrder() {
		if r, ok := e.d.Op(name).(Resetter); ok {
			r.Reset()
		}
	}
	e.Processed = 0
}

// SetPolicyAll switches every SUnion in the diagram to the given policy
// (whole-node failure handling, §4).
func (e *Engine) SetPolicyAll(p operator.DelayPolicy) {
	for _, su := range e.sunions {
		su.SetPolicy(p)
	}
}

// SetPolicyFed switches only the SUnions reachable from the given input
// stream (fine-grained failure handling, §8.2).
func (e *Engine) SetPolicyFed(input string, p operator.DelayPolicy) {
	for _, name := range e.d.SUnionsFedBy(input) {
		e.d.Op(name).(*operator.SUnion).SetPolicy(p)
	}
}

// RevokeTentativeAll removes tentative content from every SUnion's
// pending buckets. The reconciliation path calls it right after the
// checkpoint restore: a snapshot taken while tentative data sat in a
// bucket (possible when a crash-restarted replica re-anchors its epoch
// mid-replay of a diverged upstream) would otherwise resurrect tuples
// whose undo was already consumed patching the arrival logs — poison no
// policy can flush. Stabilization re-derives from stable data only; any
// still-valid tentative content it drops is replaced by the upstream's
// own correction sequence.
func (e *Engine) RevokeTentativeAll() {
	for _, su := range e.sunions {
		su.RevokeTentative(-1)
	}
}

// HoldsTentative reports whether any SUnion still buffers tentative
// tuples in a pending bucket. Such buckets can never stabilize on their
// own (the tentative content is only removed by rolling the operator
// back), so the node controller must not treat a heal as masked while
// this is true, even when nothing tentative ever left the node.
func (e *Engine) HoldsTentative() bool {
	for _, su := range e.sunions {
		if su.HasPendingTentative() {
			return true
		}
	}
	// Tentative tuples still queued for dispatch count too: at a heal
	// instant a just-arrived batch (e.g. the dual-connection tentative
	// feed of §4.4.3, cut moments later by consolidation) may not have
	// reached any bucket yet. Declaring the heal masked on the bucket
	// scan alone lets the batch dispatch into a bucket after the node
	// went back to STABLE — poison with no revocation left to come
	// (found by the scenario fuzzer: a partition heal during an
	// upstream's stabilization).
	for i := 0; i < e.qlen; i++ {
		for _, t := range e.queue[(e.qhead+i)%len(e.queue)].tuples {
			if t.Type == tuple.Tentative {
				return true
			}
		}
	}
	// The in-service batch is no longer in the queue but has not been
	// dispatched either: kick pops it the instant it is ingested, so a
	// replay batch that mixes tentative tuples with the boundary that
	// heals the input sits exactly here when the heal decision is made
	// (found by the scenario fuzzer: an upstream's resubscription replay
	// serving tuples it produced between its own heal and its restore).
	for _, t := range e.inService.tuples {
		if t.Type == tuple.Tentative {
			return true
		}
	}
	return false
}

// OldestPendingArrival returns the earliest arrival time buffered in any
// SUnion, used by the node controller to anchor availability bookkeeping.
func (e *Engine) OldestPendingArrival() int64 {
	oldest := e.clk.Now()
	for _, su := range e.sunions {
		if su.PendingBuckets() > 0 {
			if a := su.OldestPendingArrival(); a < oldest {
				oldest = a
			}
		}
	}
	return oldest
}
