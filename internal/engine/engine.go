// Package engine executes one node's query diagram fragment. It provides
// the pieces of the extended SPE architecture (§3) that live between the
// Data Path and the operators:
//
//   - a service queue that models the node's processing capacity, so that
//     reprocessing a large buffer during reconciliation costs time
//     proportional to its size (this is what makes stabilization take
//     longer than the availability bound for long failures, §6.1);
//   - synchronous dispatch of tuples through the diagram;
//   - whole-diagram checkpoint and restore (checkpoint/redo, §4.4.1);
//   - divergence tracking: once any tentative tuple flows between
//     operators, the node's state has diverged and SOutput labels all
//     subsequent output tentative until reconciliation completes;
//   - REC_DONE injection once the queue drains after a replay (§4.4.2:
//     stabilization completes when the node catches up with normal
//     execution and clears its queues).
//
// Checkpoint consistency. A checkpoint is *requested* at failure-detection
// time; the snapshot is physically taken at the next batch boundary after
// every batch enqueued before the request has been dispatched. From the
// request on, the node's Input Managers log all arrivals. The snapshot thus
// captures exactly the effects of pre-request input, and the log holds
// exactly the post-request input, so restore-plus-replay neither loses nor
// double-processes a tuple. (The initial failure suspension of 0.9·D keeps
// SUnions from emitting anything tentative during the short drain between
// request and snapshot.)
package engine

import (
	"fmt"

	"borealis/internal/diagram"
	"borealis/internal/operator"
	"borealis/internal/tuple"
	"borealis/internal/vtime"
)

// Config parameterizes an engine.
type Config struct {
	// Capacity is the node's processing rate in tuples per second.
	// Zero means infinitely fast (tuples are dispatched immediately),
	// which is convenient for protocol unit tests.
	Capacity float64
}

type work struct {
	seq    uint64
	stream string
	tuples []tuple.Tuple
}

// Snapshot is a whole-diagram checkpoint.
type Snapshot struct {
	ops map[string]any
}

// Engine runs a diagram on a virtual-time simulator.
type Engine struct {
	sim *vtime.Sim
	d   *diagram.Diagram
	cfg Config

	onOutput func(stream string, t tuple.Tuple)
	onSignal func(operator.Signal)
	onIdle   func()

	queue    []work
	nextSeq  uint64
	busy     bool
	svcTimer *vtime.Timer
	diverged bool

	cpCb   func(*Snapshot)
	cutSeq uint64

	recDonePending bool

	// Processed counts tuples dispatched through the diagram.
	Processed uint64
}

// New builds an engine for the diagram and wires every operator.
func New(sim *vtime.Sim, d *diagram.Diagram, cfg Config) *Engine {
	e := &Engine{sim: sim, d: d, cfg: cfg}
	e.wire()
	return e
}

// Diagram returns the executed diagram.
func (e *Engine) Diagram() *diagram.Diagram { return e.d }

// OnOutput registers the callback receiving every tuple emitted on an
// external output stream.
func (e *Engine) OnOutput(fn func(stream string, t tuple.Tuple)) { e.onOutput = fn }

// OnSignal registers the callback receiving SUnion/SOutput control signals.
func (e *Engine) OnSignal(fn func(operator.Signal)) { e.onSignal = fn }

// OnIdle registers a callback invoked whenever the service queue drains.
func (e *Engine) OnIdle(fn func()) { e.onIdle = fn }

// Diverged reports whether the node's state has diverged from the stable
// execution since the last checkpoint restore.
func (e *Engine) Diverged() bool { return e.diverged }

// QueueLen returns the number of queued, unserviced batches.
func (e *Engine) QueueLen() int { return len(e.queue) }

// Idle reports whether no batch is queued or in service.
func (e *Engine) Idle() bool { return !e.busy && len(e.queue) == 0 }

// wire attaches every operator's Env: emissions route synchronously along
// diagram edges; terminal operators publish to the output callback.
func (e *Engine) wire() {
	outputOf := make(map[string]string) // op -> external stream
	for _, out := range e.d.Outputs() {
		outputOf[out.Op] = out.Stream
	}
	for _, name := range e.d.Ops() {
		name := name
		op := e.d.Op(name)
		edges := e.d.Downstream(name)
		stream, isOutput := outputOf[name]
		env := &operator.Env{
			Now:   e.sim.Now,
			After: e.sim.After,
			Emit: func(t tuple.Tuple) {
				if t.Type == tuple.Tentative {
					e.diverged = true
				}
				for _, edge := range edges {
					e.d.Op(edge.To).Process(edge.Port, t)
				}
				if isOutput && e.onOutput != nil {
					e.onOutput(stream, t)
				}
			},
			Signal: func(s operator.Signal) {
				if e.onSignal != nil {
					e.onSignal(s)
				}
			},
			Diverged: func() bool { return e.diverged },
		}
		op.Attach(env)
	}
}

// Ingest queues a batch of tuples arriving on an external input stream.
func (e *Engine) Ingest(stream string, ts []tuple.Tuple) {
	if len(ts) == 0 {
		return
	}
	if _, ok := e.d.InputBinding(stream); !ok {
		panic(fmt.Sprintf("engine: unknown input stream %q", stream))
	}
	e.nextSeq++
	e.queue = append(e.queue, work{seq: e.nextSeq, stream: stream, tuples: ts})
	e.kick()
}

// kick services the queue head if the engine is idle, taking a pending
// checkpoint first once all pre-request batches have been dispatched.
func (e *Engine) kick() {
	if e.busy {
		return
	}
	if e.cpCb != nil && (len(e.queue) == 0 || e.queue[0].seq > e.cutSeq) {
		cb := e.cpCb
		e.cpCb = nil
		cb(e.snapshot())
	}
	if len(e.queue) == 0 {
		if e.recDonePending {
			e.recDonePending = false
			e.injectRecDone()
		}
		if e.onIdle != nil {
			e.onIdle()
		}
		return
	}
	e.busy = true
	batch := e.queue[0]
	e.queue = e.queue[1:]
	svc := int64(0)
	if e.cfg.Capacity > 0 {
		n := len(batch.tuples)
		// Tuples the input SUnion will drop in O(1) (behind its
		// cursor) do not consume processing capacity.
		if in, ok := e.d.InputBinding(batch.stream); ok {
			if su, ok := e.d.Op(in.Op).(*operator.SUnion); ok {
				n = su.FreshCount(batch.tuples)
			}
		}
		svc = int64(float64(n) / e.cfg.Capacity * float64(vtime.Second))
	}
	e.svcTimer = e.sim.After(svc, func() {
		e.busy = false
		e.svcTimer = nil
		e.dispatch(batch)
		e.kick()
	})
}

// dispatch pushes a serviced batch through the diagram.
func (e *Engine) dispatch(batch work) {
	in, ok := e.d.InputBinding(batch.stream)
	if !ok {
		return
	}
	op := e.d.Op(in.Op)
	for _, t := range batch.tuples {
		e.Processed++
		op.Process(in.Port, t)
	}
}

// RequestCheckpoint arranges for a snapshot capturing exactly the effects
// of every batch ingested before this call. The callback fires as soon as
// those batches have drained (immediately if the engine is idle). From this
// moment on, the caller must log all further arrivals for replay.
func (e *Engine) RequestCheckpoint(cb func(*Snapshot)) {
	if cb == nil {
		panic("engine: nil checkpoint callback")
	}
	if e.cpCb != nil {
		panic("engine: checkpoint already pending")
	}
	e.cutSeq = e.nextSeq
	if !e.busy && (len(e.queue) == 0 || e.queue[0].seq > e.cutSeq) {
		cb(e.snapshot())
		return
	}
	e.cpCb = cb
}

func (e *Engine) snapshot() *Snapshot {
	s := &Snapshot{ops: make(map[string]any, len(e.d.Ops()))}
	for _, name := range e.d.Ops() {
		s.ops[name] = e.d.Op(name).Checkpoint()
	}
	return s
}

// Restore rolls the diagram back to a snapshot and discards all queued and
// in-flight work: everything ingested after the checkpoint request lives in
// the Input Managers' logs and is about to be replayed through Ingest.
func (e *Engine) Restore(s *Snapshot) {
	for _, name := range e.d.Ops() {
		e.d.Op(name).Restore(s.ops[name])
	}
	if e.svcTimer != nil {
		e.svcTimer.Stop()
		e.svcTimer = nil
	}
	e.busy = false
	e.queue = e.queue[:0]
	e.diverged = false
	e.recDonePending = false
}

// ScheduleRecDone arranges for a REC_DONE marker to flow through the
// diagram as soon as the service queue drains: the node has then caught up
// with normal execution and the correction sequence is complete (§4.4.2).
func (e *Engine) ScheduleRecDone() {
	e.recDonePending = true
	if e.Idle() {
		e.sim.After(0, func() {
			if e.recDonePending && e.Idle() {
				e.recDonePending = false
				e.injectRecDone()
			}
		})
	}
}

// injectRecDone feeds a REC_DONE tuple into every external input binding;
// multi-port SUnions forward a single marker once every path has delivered
// one, so exactly one REC_DONE reaches each output stream.
func (e *Engine) injectRecDone() {
	rd := tuple.NewRecDone(e.sim.Now())
	for _, in := range e.d.Inputs() {
		e.d.Op(in.Op).Process(in.Port, rd)
	}
	// The node is consistent again once the corrections are out.
	e.diverged = false
}

// Resetter is implemented by operators whose Restore deliberately keeps
// some state out of checkpoints (SOutput's external-stream view): a crash
// restart must clear that too.
type Resetter interface{ Reset() }

// ResetToPristine rolls every operator back to its initial state, clearing
// even non-checkpointed externals: the §4.5 crash-restart, where a node
// rebuilds from empty state.
func (e *Engine) ResetToPristine(pristine *Snapshot) {
	e.Restore(pristine)
	for _, name := range e.d.Ops() {
		if r, ok := e.d.Op(name).(Resetter); ok {
			r.Reset()
		}
	}
	e.Processed = 0
}

// SetPolicyAll switches every SUnion in the diagram to the given policy
// (whole-node failure handling, §4).
func (e *Engine) SetPolicyAll(p operator.DelayPolicy) {
	for _, name := range e.d.SUnions() {
		e.d.Op(name).(*operator.SUnion).SetPolicy(p)
	}
}

// SetPolicyFed switches only the SUnions reachable from the given input
// stream (fine-grained failure handling, §8.2).
func (e *Engine) SetPolicyFed(input string, p operator.DelayPolicy) {
	for _, name := range e.d.SUnionsFedBy(input) {
		e.d.Op(name).(*operator.SUnion).SetPolicy(p)
	}
}

// OldestPendingArrival returns the earliest arrival time buffered in any
// SUnion, used by the node controller to anchor availability bookkeeping.
func (e *Engine) OldestPendingArrival() int64 {
	oldest := e.sim.Now()
	for _, name := range e.d.SUnions() {
		su := e.d.Op(name).(*operator.SUnion)
		if su.PendingBuckets() > 0 {
			if a := su.OldestPendingArrival(); a < oldest {
				oldest = a
			}
		}
	}
	return oldest
}
