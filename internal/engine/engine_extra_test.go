package engine

import (
	"testing"

	"borealis/internal/operator"
	"borealis/internal/runtime"
	"borealis/internal/tuple"
)

func TestEngineFreshCountCostModel(t *testing.T) {
	// Tuples behind the input SUnion's cursor are dropped in O(1) and
	// must not consume service capacity.
	sim := runtime.NewVirtual()
	e := New(sim, mergeDiagram(t, 2*sec), Config{Capacity: 1000}) // 1ms/tuple
	// Advance the cursor: boundaries cover [0, 1s).
	e.Ingest("in1", []tuple.Tuple{tuple.NewBoundary(1 * sec)})
	e.Ingest("in2", []tuple.Tuple{tuple.NewBoundary(1 * sec)})
	sim.Run()
	start := sim.Now()
	// 1000 stale tuples: all behind the cursor.
	stale := make([]tuple.Tuple, 1000)
	for i := range stale {
		stale[i] = tuple.NewInsertion(int64(i)*ms/2, 1)
	}
	e.Ingest("in1", stale)
	sim.Run()
	if sim.Now()-start > 50*ms {
		t.Fatalf("stale batch billed full service: took %d ms", (sim.Now()-start)/ms)
	}
	// 1000 fresh tuples cost real service time.
	fresh := make([]tuple.Tuple, 1000)
	for i := range fresh {
		fresh[i] = tuple.NewInsertion(2*sec+int64(i)*ms/2, 1)
	}
	start = sim.Now()
	e.Ingest("in1", fresh)
	sim.Run()
	if sim.Now()-start < 900*ms {
		t.Fatalf("fresh batch under-billed: took %d ms", (sim.Now()-start)/ms)
	}
}

func TestEngineResetToPristine(t *testing.T) {
	sim := runtime.NewVirtual()
	e := New(sim, mergeDiagram(t, 2*sec), Config{})
	var c capture
	c.bind(sim, e)
	var pristine *Snapshot
	e.RequestCheckpoint(func(s *Snapshot) { pristine = s })
	// Run some traffic, including tentative output.
	e.Ingest("in1", []tuple.Tuple{tuple.NewInsertion(10*ms, 1), tuple.NewBoundary(100 * ms)})
	e.Ingest("in2", []tuple.Tuple{tuple.NewInsertion(20*ms, 2), tuple.NewBoundary(100 * ms)})
	e.SetPolicyAll(operator.PolicyProcess)
	e.Ingest("in1", []tuple.Tuple{tuple.NewInsertion(150*ms, 3)})
	sim.Run()
	if !e.Diverged() {
		t.Fatal("setup: engine should be diverged")
	}
	lastID := c.data()[len(c.data())-1].ID

	// Reset: everything starts over, including SOutput's external ids.
	e.ResetToPristine(pristine)
	e.SetPolicyAll(operator.PolicyNone)
	c.tuples = nil
	if e.Diverged() {
		t.Fatal("reset engine must not be diverged")
	}
	e.Ingest("in1", []tuple.Tuple{tuple.NewInsertion(10*ms, 1), tuple.NewBoundary(100 * ms)})
	e.Ingest("in2", []tuple.Tuple{tuple.NewInsertion(20*ms, 2), tuple.NewBoundary(100 * ms)})
	sim.Run()
	got := c.data()
	if len(got) != 2 {
		t.Fatalf("reset engine should reprocess from scratch: %v", got)
	}
	if got[0].ID != 1 {
		t.Fatalf("SOutput ids must restart at 1 after reset (was %d before, got %d)", lastID, got[0].ID)
	}
	if got[0].Type != tuple.Insertion || got[1].Type != tuple.Insertion {
		t.Fatal("re-derived output must be stable")
	}
}

func TestEngineProcessedCounter(t *testing.T) {
	sim := runtime.NewVirtual()
	e := New(sim, mergeDiagram(t, 2*sec), Config{})
	e.Ingest("in1", []tuple.Tuple{tuple.NewInsertion(1, 1), tuple.NewBoundary(100)})
	sim.Run()
	if e.Processed != 2 {
		t.Fatalf("Processed = %d, want 2", e.Processed)
	}
}

func TestEngineOldestPendingArrival(t *testing.T) {
	sim := runtime.NewVirtual()
	e := New(sim, mergeDiagram(t, 2*sec), Config{})
	sim.RunUntil(1 * sec)
	if got := e.OldestPendingArrival(); got != 1*sec {
		t.Fatalf("idle engine should report now, got %d", got)
	}
	e.Ingest("in1", []tuple.Tuple{tuple.NewInsertion(10*ms, 1)})
	sim.RunUntil(2 * sec)
	if got := e.OldestPendingArrival(); got != 1*sec {
		t.Fatalf("oldest pending arrival = %d, want %d", got, 1*sec)
	}
}
