package engine

import (
	"testing"

	"borealis/internal/diagram"
	"borealis/internal/operator"
	"borealis/internal/runtime"
	"borealis/internal/tuple"
)

// chainDiagram builds in → SUnion → Filter → Map → SOutput, the shape the
// staged batch plane optimizes end to end.
func chainDiagram(t *testing.T) *diagram.Diagram {
	t.Helper()
	b := diagram.NewBuilder()
	b.Add(operator.NewSUnion("su", operator.SUnionConfig{
		Ports: 1, BucketSize: 100 * ms, Delay: 2 * sec,
	}))
	b.Add(operator.NewFilter("f", func(t tuple.Tuple) bool { return t.Field(0)%2 == 1 }))
	b.Add(operator.NewMap("m", func(d []int64) []int64 { return []int64{d[0] * 10} }))
	b.Add(operator.NewSOutput("out"))
	b.Connect("su", "f", 0)
	b.Connect("f", "m", 0)
	b.Connect("m", "out", 0)
	b.Input("in", "su", 0)
	b.Output("result", "out")
	d, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// runChain feeds the same input through one plane and returns the full
// output sequence.
func runChain(t *testing.T, perTuple bool, batches [][]tuple.Tuple) []tuple.Tuple {
	t.Helper()
	sim := runtime.NewVirtual()
	e := New(sim, chainDiagram(t), Config{PerTuple: perTuple})
	var c capture
	c.bind(sim, e)
	for _, b := range batches {
		e.Ingest("in", b)
		sim.Run()
	}
	return c.tuples
}

func assertPlanesAgree(t *testing.T, batches [][]tuple.Tuple) {
	t.Helper()
	ref := runChain(t, true, batches)
	got := runChain(t, false, batches)
	if len(got) != len(ref) {
		t.Fatalf("plane outputs differ in length: batch %d, per-tuple %d\nbatch %v\nper-tuple %v",
			len(got), len(ref), got, ref)
	}
	for i := range got {
		if got[i].Type != ref[i].Type || got[i].ID != ref[i].ID ||
			got[i].STime != ref[i].STime || !tuple.SameValue(got[i], ref[i]) {
			t.Fatalf("plane outputs differ at %d: batch %+v, per-tuple %+v", i, got[i], ref[i])
		}
	}
}

func TestEngineStagedPlaneMatchesPerTupleCleanFlow(t *testing.T) {
	assertPlanesAgree(t, [][]tuple.Tuple{
		{
			tuple.NewInsertion(10*ms, 1),
			tuple.NewInsertion(20*ms, 2),
			tuple.NewInsertion(30*ms, 3),
			tuple.NewBoundary(100 * ms),
		},
		{
			tuple.NewInsertion(110*ms, 4),
			tuple.NewInsertion(120*ms, 5),
			tuple.NewBoundary(200 * ms),
		},
	})
}

func TestEngineStagedPlaneMatchesPerTupleDirtyFlow(t *testing.T) {
	// Tentative traffic fails Gate B mid-chain (or the dispatch entry
	// gate); both planes must still agree byte for byte.
	assertPlanesAgree(t, [][]tuple.Tuple{
		{
			tuple.NewInsertion(10*ms, 1),
			tuple.NewBoundary(100 * ms),
		},
		{
			tuple.NewTentative(110*ms, 3),
			tuple.NewInsertion(120*ms, 5),
			tuple.NewBoundary(200 * ms),
		},
		{
			tuple.NewInsertion(210*ms, 7),
			tuple.NewBoundary(300 * ms),
		},
	})
}

func TestEngineStagedPlaneDoesNotMutateIngestedBatch(t *testing.T) {
	// The chain's stages rewrite frames in place (MutatesBatch), but the
	// ingested slice belongs to the caller — the dispatcher must copy it
	// into a pool frame first.
	sim := runtime.NewVirtual()
	e := New(sim, chainDiagram(t), Config{})
	var c capture
	c.bind(sim, e)
	in := []tuple.Tuple{
		tuple.NewInsertion(10*ms, 1),
		tuple.NewInsertion(20*ms, 2),
		tuple.NewBoundary(100 * ms),
	}
	want := make([]tuple.Tuple, len(in))
	copy(want, in)
	e.Ingest("in", in)
	sim.Run()
	if len(c.data()) == 0 {
		t.Fatal("chain produced no output")
	}
	for i := range in {
		if in[i].Type != want[i].Type || in[i].ID != want[i].ID ||
			in[i].STime != want[i].STime || in[i].Src != want[i].Src ||
			!tuple.SameValue(in[i], want[i]) {
			t.Fatalf("ingested batch mutated at %d: %+v, want %+v", i, in[i], want[i])
		}
	}
}

func TestEngineStagedPlaneRepeatedDispatchReusesLoanSafely(t *testing.T) {
	// Several buckets back to back exercise the SUnion loan park/reclaim
	// cycle through the real engine; every bucket's content must survive
	// the reuse intact.
	var batches [][]tuple.Tuple
	for k := int64(0); k < 8; k++ {
		batches = append(batches, []tuple.Tuple{
			tuple.NewInsertion(k*100*ms+10*ms, 2*k+1),
			tuple.NewInsertion(k*100*ms+20*ms, 2*k+2),
			tuple.NewBoundary((k + 1) * 100 * ms),
		})
	}
	assertPlanesAgree(t, batches)
}
