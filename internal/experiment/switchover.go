package experiment

import (
	"io"

	"borealis/internal/client"
	"borealis/internal/deploy"
	"borealis/internal/vtime"
)

// SwitchoverResult reproduces the §5.1 measurement: how long a downstream
// node is without data when an upstream replica crashes — failure detection
// (bounded by the keep-alive period) plus the switch to another replica
// (the paper measures ≈40 ms for the switch and ≤140 ms in total with a
// 100 ms keep-alive period).
type SwitchoverResult struct {
	KeepAliveMs float64
	// GapMs is the largest inter-delivery gap at the client around the
	// crash; SteadyGapMs the largest gap in steady state (for contrast).
	GapMs, SteadyGapMs float64
	// Tentative must stay 0: switching to a STABLE replica masks the
	// crash entirely.
	Tentative uint64
	Switches  uint64
	// ConsistencyOK: no stable duplicates, stream intact.
	ConsistencyOK bool
}

// Switchover crashes the client's current upstream replica and measures
// the delivery gap.
func Switchover(opts Options) SwitchoverResult {
	spec := deploy.ChainSpec{
		Depth:       1,
		Replicas:    2,
		Sources:     3,
		Rate:        500,
		Delay:       2 * vtime.Second,
		AckInterval: vtime.Second,
		PerTuple:    opts.PerTuple,
	}
	dep, err := deploy.BuildChain(spec)
	if err != nil {
		panic(err)
	}
	const crashAt = 10 * vtime.Second
	var last, steadyGap, crashGap int64
	dep.Client.OnDeliver(func(d client.Delivery) {
		if !d.Tuple.IsData() {
			return
		}
		if last > 0 {
			gap := d.At - last
			if d.At <= crashAt {
				if gap > steadyGap {
					steadyGap = gap
				}
			} else if gap > crashGap {
				crashGap = gap
			}
		}
		last = d.At
	})
	dep.CrashNode(1, 0, crashAt)
	dep.Start()
	dep.RunFor(20 * vtime.Second)
	st := dep.Client.Stats()

	ref, err := deploy.BuildChain(spec)
	if err != nil {
		panic(err)
	}
	ref.Start()
	ref.RunFor(20 * vtime.Second)
	audit := dep.Client.VerifyEventualConsistency(ref.Client.View())

	ms := float64(vtime.Millisecond)
	return SwitchoverResult{
		KeepAliveMs:   100,
		GapMs:         float64(crashGap) / ms,
		SteadyGapMs:   float64(steadyGap) / ms,
		Tentative:     st.Tentative,
		Switches:      dep.Client.Proxy().CM().Switches,
		ConsistencyOK: audit.OK,
	}
}

// Print summarizes the measurement.
func (r SwitchoverResult) Print(w io.Writer) {
	fprintf(w, "Upstream replica crash switchover (§5.1, keep-alive %.0f ms)\n", r.KeepAliveMs)
	fprintf(w, "  steady-state max delivery gap: %8.1f ms\n", r.SteadyGapMs)
	fprintf(w, "  gap across the crash:          %8.1f ms (detection + switch + replay)\n", r.GapMs)
	fprintf(w, "  replica switches:              %8d\n", r.Switches)
	fprintf(w, "  tentative tuples:              %8d (crash fully masked when 0)\n", r.Tentative)
	if r.ConsistencyOK {
		fprintf(w, "  stream consistency:                  ok\n")
	} else {
		fprintf(w, "  stream consistency:                FAIL\n")
	}
}
