// Package experiment regenerates every table and figure of the paper's
// evaluation (§5-§7). Each experiment builds a deployment on the simulated
// network, injects the paper's failure, and reports the same rows or series
// the paper does. Absolute numbers differ from the paper's 2005 testbed;
// the shapes — who wins, by what factor, where crossovers fall — are the
// reproduction target (see EXPERIMENTS.md).
package experiment

import (
	"fmt"
	"io"

	"borealis/internal/operator"
	"borealis/internal/vtime"
)

// Options tunes experiment scale.
type Options struct {
	// Quick shrinks duration sweeps for use inside `go test -bench`.
	Quick bool
	// PerTuple runs every deployment on the reference per-tuple data
	// plane instead of the staged batch plane. Metrics are identical
	// either way (the experiment tests pin both); the knob exists for
	// differential benchmarking.
	PerTuple bool
}

// Seconds renders a µs virtual duration in seconds.
func Seconds(us int64) float64 { return float64(us) / float64(vtime.Second) }

// Variant names a {failure policy} & {stabilization policy} combination,
// the six alternatives of §6.1.
type Variant struct {
	Name          string
	Failure       operator.DelayPolicy
	Stabilization operator.DelayPolicy
}

// Variants lists the §6.1 combinations in the paper's order.
func Variants() []Variant {
	return []Variant{
		{"Process & Process", operator.PolicyProcess, operator.PolicyProcess},
		{"Delay & Process", operator.PolicyDelay, operator.PolicyProcess},
		{"Process & Delay", operator.PolicyProcess, operator.PolicyDelay},
		{"Delay & Delay", operator.PolicyDelay, operator.PolicyDelay},
		{"Process & Suspend", operator.PolicyProcess, operator.PolicySuspend},
		{"Delay & Suspend", operator.PolicyDelay, operator.PolicySuspend},
	}
}

// fmtCell renders a float with sensible width for table output.
func fmtCell(v float64) string { return fmt.Sprintf("%8.2f", v) }

func fprintf(w io.Writer, format string, args ...any) {
	fmt.Fprintf(w, format, args...)
}
