package experiment

import (
	"io"

	"borealis/internal/operator"
	"borealis/internal/vtime"
)

// Fig19Result reproduces Figs. 19 and 20: how the application's total
// incremental latency X = 8 s should be divided among the SUnions of a
// four-node chain (§6.3). Three assignments are compared, as in the paper:
//
//   - uniform D = X/4 = 2 s per node, Delay & Delay;
//   - uniform D = 2 s per node, Process & Process;
//   - the whole delay (6.5 s — X minus a queuing-safety margin) assigned
//     to every SUnion, Process & Process.
//
// Expected shapes: all three meet X; whole-delay masks failures up to
// ≈ 0.9·6.5 s completely (zero tentative tuples, Fig. 20(b)) and otherwise
// matches Process & Process, because after the initial suspension nodes
// process tuples as they arrive.
type Fig19Result struct {
	X, WholeDelay int64
	Depth         int
	FailureSecs   []int64
	// Procnew (seconds) and Ntentative (tuples) per assignment per
	// failure duration.
	ProcUniformDD []float64
	ProcUniformPP []float64
	ProcWholePP   []float64
	TentUniformDD []uint64
	TentUniformPP []uint64
	TentWholePP   []uint64
}

// Fig19 runs the sweep (Fig. 19 reports the latency rows; Fig. 20 the
// tentative-tuple rows).
func Fig19(opts Options) Fig19Result {
	durations := []int64{5, 10, 15, 30}
	if opts.Quick {
		durations = []int64{5, 10}
	}
	res := Fig19Result{
		X:           8 * vtime.Second,
		WholeDelay:  6500 * vtime.Millisecond,
		Depth:       4,
		FailureSecs: durations,
	}
	whole := func(int) int64 { return res.WholeDelay }
	for _, f := range durations {
		p, n := chainRun(res.Depth, operator.PolicyDelay, operator.PolicyDelay, f, nil, 2*vtime.Second, opts)
		res.ProcUniformDD = append(res.ProcUniformDD, p)
		res.TentUniformDD = append(res.TentUniformDD, n)
		p, n = chainRun(res.Depth, operator.PolicyProcess, operator.PolicyProcess, f, nil, 2*vtime.Second, opts)
		res.ProcUniformPP = append(res.ProcUniformPP, p)
		res.TentUniformPP = append(res.TentUniformPP, n)
		p, n = chainRun(res.Depth, operator.PolicyProcess, operator.PolicyProcess, f, whole, 2*vtime.Second, opts)
		res.ProcWholePP = append(res.ProcWholePP, p)
		res.TentWholePP = append(res.TentWholePP, n)
	}
	return res
}

// Print renders both figures as tables.
func (r Fig19Result) Print(w io.Writer) {
	fprintf(w, "Figs. 19-20: delay assignment for a %d-node chain, X = %.0f s\n", r.Depth, Seconds(r.X))
	fprintf(w, "\nFig. 19 — Procnew (seconds)\n%-26s", "assignment \\ failure s")
	for _, f := range r.FailureSecs {
		fprintf(w, "%8d", f)
	}
	rows := []struct {
		name string
		vals []float64
	}{
		{"uniform 2s, Delay&Delay", r.ProcUniformDD},
		{"uniform 2s, Proc&Proc", r.ProcUniformPP},
		{"whole 6.5s, Proc&Proc", r.ProcWholePP},
	}
	for _, row := range rows {
		fprintf(w, "\n%-26s", row.name)
		for _, v := range row.vals {
			fprintf(w, "%s", fmtCell(v))
		}
	}
	fprintf(w, "\n\nFig. 20 — Ntentative (tuples)\n%-26s", "assignment \\ failure s")
	for _, f := range r.FailureSecs {
		fprintf(w, "%8d", f)
	}
	trows := []struct {
		name string
		vals []uint64
	}{
		{"uniform 2s, Delay&Delay", r.TentUniformDD},
		{"uniform 2s, Proc&Proc", r.TentUniformPP},
		{"whole 6.5s, Proc&Proc", r.TentWholePP},
	}
	for _, row := range trows {
		fprintf(w, "\n%-26s", row.name)
		for _, v := range row.vals {
			fprintf(w, "%8d", v)
		}
	}
	fprintf(w, "\n")
}
