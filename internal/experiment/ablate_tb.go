package experiment

import (
	"io"

	"borealis/internal/deploy"
	"borealis/internal/operator"
	"borealis/internal/vtime"
)

// TBAblationResult compares chain latency with and without tentative
// boundaries (footnote 5): without them, every SUnion waits a fixed
// TentativeWait before flushing a tentative bucket, so Process & Process
// latency grows by ≈0.3 s per chain node; with them, tentative buckets are
// released as soon as the upstream's tentative watermark proves them
// complete, and latency stays approximately constant with depth.
type TBAblationResult struct {
	Depths                []int
	Without, With         []float64 // Procnew seconds
	TentWithout, TentWith []uint64
}

// AblateTentativeBoundaries runs the comparison on the Fig. 14 chain with
// a 30-second boundary-stall failure.
func AblateTentativeBoundaries(opts Options) TBAblationResult {
	depths := []int{1, 2, 3, 4}
	if opts.Quick {
		depths = []int{1, 3}
	}
	res := TBAblationResult{Depths: depths}
	for _, d := range depths {
		p, n := tbRun(d, false, opts)
		res.Without = append(res.Without, p)
		res.TentWithout = append(res.TentWithout, n)
		p, n = tbRun(d, true, opts)
		res.With = append(res.With, p)
		res.TentWith = append(res.TentWith, n)
	}
	return res
}

func tbRun(depth int, tb bool, opts Options) (float64, uint64) {
	spec := deploy.ChainSpec{
		Depth:               depth,
		Replicas:            2,
		Sources:             3,
		Rate:                500,
		Delay:               2 * vtime.Second,
		Capacity:            16500,
		FailurePolicy:       operator.PolicyProcess,
		StabilizationPolicy: operator.PolicyProcess,
		TentativeBoundaries: tb,
		AckInterval:         vtime.Second,
		PerTuple:            opts.PerTuple,
	}
	dep, err := deploy.BuildChain(spec)
	if err != nil {
		panic(err)
	}
	const failAt = 10 * vtime.Second
	fail := int64(30 * vtime.Second)
	dep.StallSourceBoundaries(0, failAt, fail)
	dep.Start()
	dep.RunFor(failAt)
	dep.Client.ResetLatency()
	dep.RunFor(fail + 60*vtime.Second)
	st := dep.Client.Stats()
	return Seconds(st.MaxLatency), st.Tentative
}

// Print renders the comparison.
func (r TBAblationResult) Print(w io.Writer) {
	fprintf(w, "Footnote-5 ablation: tentative boundaries (Process & Process, 30 s failure)\n")
	fprintf(w, "%-30s", "depth")
	for _, d := range r.Depths {
		fprintf(w, "%10d", d)
	}
	fprintf(w, "\n%-30s", "Procnew (s), without")
	for _, v := range r.Without {
		fprintf(w, "%10.2f", v)
	}
	fprintf(w, "\n%-30s", "Procnew (s), with")
	for _, v := range r.With {
		fprintf(w, "%10.2f", v)
	}
	fprintf(w, "\n%-30s", "Ntentative, without")
	for _, v := range r.TentWithout {
		fprintf(w, "%10d", v)
	}
	fprintf(w, "\n%-30s", "Ntentative, with")
	for _, v := range r.TentWith {
		fprintf(w, "%10d", v)
	}
	fprintf(w, "\n")
}
