package experiment

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// The experiment tests run the reduced (Quick) sweeps and assert the
// paper's qualitative shapes — the same invariants the benchmarks enforce,
// kept here so `go test ./...` alone validates the reproduction.

var q = Options{Quick: true}

func TestFig11aShape(t *testing.T) {
	t.Parallel()
	r := Fig11(true, q)
	if !r.ConsistencyOK {
		t.Fatalf("fig11a eventual consistency failed: %s", r.AuditReason)
	}
	if r.Reconciliations != 1 || r.RecDones != 1 || r.Undos != 1 {
		t.Fatalf("overlapping failures must correct once: %+v", r)
	}
	if r.Tentative == 0 {
		t.Fatal("fig11a should produce tentative output")
	}
	if len(r.Series) == 0 {
		t.Fatal("no series recorded")
	}
}

func TestFig11bShape(t *testing.T) {
	t.Parallel()
	r := Fig11(false, q)
	if !r.ConsistencyOK {
		t.Fatalf("fig11b eventual consistency failed: %s", r.AuditReason)
	}
	if r.Reconciliations != 2 || r.RecDones != 2 {
		t.Fatalf("failure-during-recovery must correct twice: %+v", r)
	}
}

func TestFig11CSV(t *testing.T) {
	t.Parallel()
	r := Fig11(true, q)
	var buf bytes.Buffer
	r.TraceCSV(&buf)
	out := buf.String()
	if !strings.HasPrefix(out, "time_ms,seq,type\n") {
		t.Fatalf("csv header wrong: %q", out[:40])
	}
	if strings.Count(out, "\n") < 100 {
		t.Fatal("csv suspiciously short")
	}
}

func TestTable3Shape(t *testing.T) {
	t.Parallel()
	r := Table3(q)
	if len(r.Procnew) != len(r.Durations) {
		t.Fatal("ragged result")
	}
	// Availability bound held for every duration.
	for i, p := range r.Procnew {
		if p > 3.0 {
			t.Fatalf("bound broken at %ds: %.2fs", r.Durations[i], p)
		}
		if !r.ConsistencyOK[i] {
			t.Fatalf("consistency failed at %ds", r.Durations[i])
		}
	}
	// Short failures heal inside the suspension; the rest are flat.
	if r.Procnew[0] >= r.Procnew[1] {
		t.Fatalf("2s failure should be cheaper than the suspension: %v", r.Procnew)
	}
	last := r.Procnew[len(r.Procnew)-1]
	if diff := last - r.Procnew[1]; diff > 0.1 || diff < -0.1 {
		t.Fatalf("Procnew must be flat beyond the suspension: %v", r.Procnew)
	}
}

func TestFig13Shapes(t *testing.T) {
	t.Parallel()
	r := Fig13(q)
	last := len(r.Durations) - 1
	idx := map[string]int{}
	for i, v := range r.Variants {
		idx[v.Name] = i
	}
	// Everything masks the 2s failure.
	for i, v := range r.Variants {
		if r.Ntentative[i][0] != 0 {
			t.Fatalf("%s failed to mask the 2s failure: %d", v.Name, r.Ntentative[i][0])
		}
	}
	// Non-suspend variants keep the bound at every duration.
	for _, name := range []string{"Process & Process", "Delay & Process", "Process & Delay", "Delay & Delay"} {
		for di, p := range r.Procnew[idx[name]] {
			if p > 3.0 {
				t.Fatalf("%s broke the bound at %ds: %.2fs", name, r.Durations[di], p)
			}
		}
	}
	// Suspend variants break it for long failures.
	if r.Procnew[idx["Process & Suspend"]][last] <= 3.0 {
		t.Fatal("Process & Suspend should break the bound once reconciliation outlasts D")
	}
	if r.Procnew[idx["Delay & Suspend"]][last] <= r.Procnew[idx["Process & Suspend"]][last] {
		t.Fatal("Delay & Suspend must be strictly worse than Process & Suspend")
	}
	// Delaying reduces inconsistency vs the baseline.
	pp := r.Ntentative[idx["Process & Process"]][last]
	for _, name := range []string{"Delay & Process", "Process & Delay", "Delay & Delay"} {
		if r.Ntentative[idx[name]][last] >= pp {
			t.Fatalf("%s should beat Process & Process: %d ≥ %d", name, r.Ntentative[idx[name]][last], pp)
		}
	}
}

func TestFig15Shape(t *testing.T) {
	t.Parallel()
	r := Fig15(q)
	n := len(r.Depths) - 1
	// Delay & Delay grows ≈ 0.9·D per node.
	if n > 0 {
		slope := (r.DelayDelay[n] - r.DelayDelay[0]) / float64(r.Depths[n]-r.Depths[0])
		if slope < 1.2 || slope > 2.4 {
			t.Fatalf("D&D slope %.2f s/node, want ≈ 1.8", slope)
		}
		ppSlope := (r.ProcProc[n] - r.ProcProc[0]) / float64(r.Depths[n]-r.Depths[0])
		if ppSlope > 0.8 {
			t.Fatalf("P&P slope %.2f s/node, want small", ppSlope)
		}
	}
}

func TestFig16And18Shapes(t *testing.T) {
	t.Parallel()
	short := Fig16(q, 5).Panels[0]
	n := len(short.Depths) - 1
	if short.DelayDelay[n] >= short.ProcProc[n] {
		t.Fatal("short failures: delaying must reduce tentative tuples with depth")
	}
	long := Fig18(q).Panels[0]
	rel := (long.ProcProc[n] - long.DelayDelay[n]) / long.ProcProc[n]
	if rel > 0.25 {
		t.Fatalf("60s failures: delaying gains should fade, got %.0f%%", rel*100)
	}
}

func TestFig19Fig20Shapes(t *testing.T) {
	t.Parallel()
	r := Fig19(q)
	if r.TentWholePP[0] != 0 {
		t.Fatalf("whole-delay must mask the 5s failure: %d", r.TentWholePP[0])
	}
	if r.TentUniformPP[0] == 0 {
		t.Fatal("uniform P&P must NOT mask the 5s failure")
	}
	for i, p := range r.ProcWholePP {
		if p > 8.0 {
			t.Fatalf("whole-delay broke X=8s at %ds: %.2f", r.FailureSecs[i], p)
		}
	}
}

func TestTable4Table5Shapes(t *testing.T) {
	t.Parallel()
	for _, r := range []OverheadResult{Table4(q), Table5(q)} {
		if r.Rows[0].ParamMs != 0 {
			t.Fatal("baseline column missing")
		}
		if r.Rows[0].Tuples == 0 {
			t.Fatal("baseline produced nothing")
		}
		prev := -1.0
		for _, row := range r.Rows[1:] {
			if row.Avg <= prev {
				t.Fatalf("average latency must grow with the parameter: %+v", r.Rows)
			}
			prev = row.Avg
			if row.Max < row.Avg || row.Avg < row.Min {
				t.Fatalf("inconsistent stats: %+v", row)
			}
		}
	}
}

func TestSwitchoverShape(t *testing.T) {
	t.Parallel()
	r := Switchover(q)
	if r.Tentative != 0 {
		t.Fatalf("crash switchover must be masked, got %d tentative", r.Tentative)
	}
	if !r.ConsistencyOK {
		t.Fatal("switchover broke the stream")
	}
	if r.GapMs <= r.SteadyGapMs {
		t.Fatal("crash gap should exceed the steady-state gap")
	}
	if r.GapMs > 1000 {
		t.Fatalf("switchover took too long: %.0f ms", r.GapMs)
	}
}

func TestAblateBuffersShape(t *testing.T) {
	t.Parallel()
	r := AblateBuffers(q)
	if r.Rows[0].NewDuringFailure == 0 || r.Rows[1].NewDuringFailure == 0 {
		t.Fatal("unbounded and slide must preserve availability")
	}
	if r.Rows[2].NewDuringFailure != 0 {
		t.Fatal("block-on-full must sacrifice availability")
	}
	if r.Rows[1].Truncated == 0 {
		t.Fatal("slide mode never truncated")
	}
	if !r.Rows[1].RecentWindowOK {
		t.Fatal("slide mode must keep the recent window consistent (§8.1)")
	}
}

func TestAblateTentativeBoundariesShape(t *testing.T) {
	t.Parallel()
	r := AblateTentativeBoundaries(q)
	n := len(r.Depths) - 1
	if r.With[n] >= r.Without[n] {
		t.Fatalf("tentative boundaries should cut deep-chain latency: %.2f ≥ %.2f", r.With[n], r.Without[n])
	}
	if r.TentWith[n] != r.TentWithout[n] {
		t.Fatalf("tentative boundaries must not change Ntentative: %d vs %d", r.TentWith[n], r.TentWithout[n])
	}
}

func TestPrintersProduceOutput(t *testing.T) {
	t.Parallel()
	var buf bytes.Buffer
	Table3(Options{Quick: true}).Print(&buf)
	Fig15(Options{Quick: true}).Print(&buf)
	Fig19(Options{Quick: true}).Print(&buf)
	Table4(Options{Quick: true}).Print(&buf)
	Switchover(q).Print(&buf)
	AblateBuffers(Options{Quick: true}).Print(&buf)
	AblateTentativeBoundaries(Options{Quick: true}).Print(&buf)
	Fig11(true, q).Print(&buf)
	out := buf.String()
	for _, want := range []string{"Table III", "chain depth", "X = 8 s", "Table IV", "switchover", "buffer management", "tentative boundaries", "Fig. 11(a)"} {
		if !strings.Contains(out, want) {
			t.Fatalf("printer output missing %q", want)
		}
	}
}

// TestExperimentsBothPlanes pins every experiment's full result struct
// across the two data planes: the staged batch plane and the per-tuple
// reference must produce byte-identical metrics (JSON-rendered) for the
// whole evaluation suite. This is the experiment-level analogue of the
// scenario golden proof — any batch-plane shortcut that changed a single
// delivered tuple, latency, or counter anywhere in §5-§8 would show here.
func TestExperimentsBothPlanes(t *testing.T) {
	t.Parallel()
	batch := Options{Quick: true}
	ref := Options{Quick: true, PerTuple: true}
	for _, tc := range []struct {
		name string
		run  func(Options) any
	}{
		{"fig11a", func(o Options) any { return Fig11(true, o) }},
		{"fig11b", func(o Options) any { return Fig11(false, o) }},
		{"table3", func(o Options) any { return Table3(o) }},
		{"fig13", func(o Options) any { return Fig13(o) }},
		{"fig15", func(o Options) any { return Fig15(o) }},
		{"fig16", func(o Options) any { return Fig16(o, 5) }},
		{"fig19", func(o Options) any { return Fig19(o) }},
		{"table4", func(o Options) any { return Table4(o) }},
		{"table5", func(o Options) any { return Table5(o) }},
		{"switchover", func(o Options) any { return Switchover(o) }},
		{"ablate-buffers", func(o Options) any { return AblateBuffers(o) }},
		{"ablate-tb", func(o Options) any { return AblateTentativeBoundaries(o) }},
	} {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			b, err := json.Marshal(tc.run(batch))
			if err != nil {
				t.Fatal(err)
			}
			p, err := json.Marshal(tc.run(ref))
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(b, p) {
				t.Fatalf("experiment diverges across data planes\nbatch:     %s\nper-tuple: %s", b, p)
			}
		})
	}
}

func TestVariantsOrder(t *testing.T) {
	t.Parallel()
	vs := Variants()
	if len(vs) != 6 || vs[0].Name != "Process & Process" || vs[3].Name != "Delay & Delay" {
		t.Fatalf("variants wrong: %+v", vs)
	}
}
