package experiment

import (
	"io"

	"borealis/internal/deploy"
	"borealis/internal/operator"
	"borealis/internal/vtime"
)

// ChainResult holds one chain-experiment series: a value per chain depth
// for each of the two §6.2 techniques (Delay & Delay vs Process & Process).
type ChainResult struct {
	Depths       []int
	FailureSecs  int64
	DelayDelay   []float64
	ProcProc     []float64
	Metric       string // "Procnew (s)" or "Ntentative (tuples)"
	PerNodeDelay int64
}

// chainRun runs one chain configuration and returns (Procnew seconds,
// Ntentative tuples) measured at the client from failure start onward.
func chainRun(depth int, fp, sp operator.DelayPolicy, failSecs int64, delayOverride func(int) int64, perNodeDelay int64, opts Options) (float64, uint64) {
	spec := deploy.ChainSpec{
		Depth:               depth,
		Replicas:            2,
		Sources:             3,
		Rate:                500,
		Delay:               perNodeDelay,
		DelayOverride:       delayOverride,
		Capacity:            16500,
		FailurePolicy:       fp,
		StabilizationPolicy: sp,
		AckInterval:         vtime.Second,
		PerTuple:            opts.PerTuple,
	}
	dep, err := deploy.BuildChain(spec)
	if err != nil {
		panic(err)
	}
	const failAt = 10 * vtime.Second
	fail := failSecs * vtime.Second
	// Fig. 14/15: the failure stops one input stream's boundary tuples
	// without stopping its data, keeping the output rate unchanged.
	dep.StallSourceBoundaries(0, failAt, fail)
	dep.Start()
	dep.RunFor(failAt)
	dep.Client.ResetLatency()
	dep.RunFor(fail + 3*fail + 30*vtime.Second)
	st := dep.Client.Stats()
	return Seconds(st.MaxLatency), st.Tentative
}

// Fig15 reproduces Fig. 15: Procnew against chain depth for a 30-second
// failure, with D = 2 s per node. Expected shape: Delay & Delay grows by
// ≈0.9·D per node; Process & Process stays near one node's delay with a
// small per-node increment (all nodes suspend simultaneously because
// boundary silence propagates instantly, §6.2).
func Fig15(opts Options) ChainResult {
	depths := []int{1, 2, 3, 4}
	if opts.Quick {
		depths = []int{1, 2}
	}
	res := ChainResult{
		Depths:       depths,
		FailureSecs:  30,
		Metric:       "Procnew (s)",
		PerNodeDelay: 2 * vtime.Second,
	}
	for _, d := range depths {
		p, _ := chainRun(d, operator.PolicyDelay, operator.PolicyDelay, res.FailureSecs, nil, res.PerNodeDelay, opts)
		res.DelayDelay = append(res.DelayDelay, p)
		p, _ = chainRun(d, operator.PolicyProcess, operator.PolicyProcess, res.FailureSecs, nil, res.PerNodeDelay, opts)
		res.ProcProc = append(res.ProcProc, p)
	}
	return res
}

// Fig16Result groups the Fig. 16 panels: Ntentative against chain depth
// for several failure durations.
type Fig16Result struct {
	Durations []int64
	Panels    []ChainResult
}

// Fig16 reproduces Fig. 16(a-d) (5/10/15/30-second failures) — and, with
// durations = {60}, Fig. 18. Expected shape: Process & Process roughly flat
// in depth; Delay & Delay decreasing with depth by the total chain delay,
// with the gains fading as failures lengthen and vanishing by 60 s.
func Fig16(opts Options, durations ...int64) Fig16Result {
	if len(durations) == 0 {
		durations = []int64{5, 10, 15, 30}
	}
	depths := []int{1, 2, 3, 4}
	if opts.Quick {
		depths = []int{1, 2}
	}
	var res Fig16Result
	res.Durations = durations
	for _, f := range durations {
		panel := ChainResult{
			Depths:       depths,
			FailureSecs:  f,
			Metric:       "Ntentative (tuples)",
			PerNodeDelay: 2 * vtime.Second,
		}
		for _, d := range depths {
			_, n := chainRun(d, operator.PolicyDelay, operator.PolicyDelay, f, nil, panel.PerNodeDelay, opts)
			panel.DelayDelay = append(panel.DelayDelay, float64(n))
			_, n = chainRun(d, operator.PolicyProcess, operator.PolicyProcess, f, nil, panel.PerNodeDelay, opts)
			panel.ProcProc = append(panel.ProcProc, float64(n))
		}
		res.Panels = append(res.Panels, panel)
	}
	return res
}

// Fig18 is Fig. 16's machinery at a 60-second failure.
func Fig18(opts Options) Fig16Result { return Fig16(opts, 60) }

// Print renders one chain series.
func (r ChainResult) Print(w io.Writer) {
	fprintf(w, "%s vs chain depth (failure %d s, D = %.0f s per node)\n",
		r.Metric, r.FailureSecs, Seconds(r.PerNodeDelay))
	fprintf(w, "%-18s", "depth")
	for _, d := range r.Depths {
		fprintf(w, "%10d", d)
	}
	fprintf(w, "\n%-18s", "Delay & Delay")
	for _, v := range r.DelayDelay {
		fprintf(w, "%10.2f", v)
	}
	fprintf(w, "\n%-18s", "Process & Process")
	for _, v := range r.ProcProc {
		fprintf(w, "%10.2f", v)
	}
	fprintf(w, "\n")
}

// Print renders every panel.
func (r Fig16Result) Print(w io.Writer) {
	for i, p := range r.Panels {
		if i > 0 {
			fprintf(w, "\n")
		}
		p.Print(w)
	}
}
