package experiment

import (
	"io"
	"math"

	"borealis/internal/diagram"
	"borealis/internal/netsim"
	"borealis/internal/node"
	"borealis/internal/operator"
	"borealis/internal/runtime"
	"borealis/internal/source"
	"borealis/internal/vtime"
)

// OverheadRow is one column of Table IV or V: per-tuple latency statistics
// (milliseconds) for a given serialization parameter.
type OverheadRow struct {
	ParamMs  int64 // bucket size (Table IV) or boundary interval (Table V)
	Min, Max float64
	Avg, Std float64
	Tuples   int
}

// OverheadResult reproduces Table IV (varying bucket size at a 10 ms
// boundary interval) or Table V (varying boundary interval at a 10 ms
// bucket). The 0 column replaces SUnion+SOutput with a plain Union and
// removes boundary tuples, as in the paper. Expected shape: maximum and
// average latency grow linearly with both parameters.
type OverheadResult struct {
	VaryBucket bool
	Rows       []OverheadRow
}

// Table4 varies the bucket size.
func Table4(opts Options) OverheadResult {
	return overheadSweep(true, opts)
}

// Table5 varies the boundary interval.
func Table5(opts Options) OverheadResult {
	return overheadSweep(false, opts)
}

func overheadSweep(varyBucket bool, opts Options) OverheadResult {
	params := []int64{0, 10, 50, 100, 150, 200, 300, 500}
	runSecs := int64(300) // the paper's 5-minute run: ≈ 25 000 tuples
	if opts.Quick {
		params = []int64{0, 10, 100}
		runSecs = 30
	}
	res := OverheadResult{VaryBucket: varyBucket}
	for _, p := range params {
		bucket, interval := p*vtime.Millisecond, int64(10*vtime.Millisecond)
		if !varyBucket {
			bucket, interval = 10*vtime.Millisecond, p*vtime.Millisecond
		}
		res.Rows = append(res.Rows, overheadRun(p, bucket, interval, runSecs, opts))
	}
	return res
}

// latencySink is a bare network endpoint recording per-tuple latency: the
// Fig. 22 client, without a DPC proxy, so the measured delay isolates the
// serialization overhead of the one SUnion+SOutput node.
type latencySink struct {
	sim        *runtime.VirtualClock
	count      int
	min, max   int64
	sum, sumSq float64
	lastSTime  int64
}

func (ls *latencySink) handle(_ string, msg any) {
	dm, ok := msg.(node.DataMsg)
	if !ok {
		return
	}
	for _, t := range dm.Tuples {
		if !t.IsData() || t.STime <= ls.lastSTime {
			continue
		}
		ls.lastSTime = t.STime
		lat := ls.sim.Now() - t.STime
		if ls.count == 0 || lat < ls.min {
			ls.min = lat
		}
		if lat > ls.max {
			ls.max = lat
		}
		ls.count++
		ls.sum += float64(lat)
		ls.sumSq += float64(lat) * float64(lat)
	}
}

func (ls *latencySink) row(param int64) OverheadRow {
	r := OverheadRow{ParamMs: param, Tuples: ls.count}
	if ls.count == 0 {
		return r
	}
	ms := float64(vtime.Millisecond)
	r.Min = float64(ls.min) / ms
	r.Max = float64(ls.max) / ms
	mean := ls.sum / float64(ls.count)
	r.Avg = mean / ms
	v := ls.sumSq/float64(ls.count) - mean*mean
	if v > 0 {
		r.Std = math.Sqrt(v) / ms
	}
	return r
}

// overheadRun builds the Fig. 22 pipeline. A zero bucket builds the
// baseline (plain Union, no boundaries, Fig. 22(b)).
func overheadRun(param, bucket, interval, runSecs int64, opts Options) OverheadRow {
	sim := runtime.NewVirtual()
	net := netsim.New(sim)

	baseline := bucket == 0 || interval == 0
	b := diagram.NewBuilder()
	if baseline {
		b.Add(operator.NewUnion("u", 1))
		b.Input("s1", "u", 0)
		b.Output("t1", "u")
	} else {
		b.Add(operator.NewSUnion("su", operator.SUnionConfig{
			Ports:      1,
			BucketSize: bucket,
			Delay:      2 * vtime.Second,
		}))
		b.Add(operator.NewSOutput("so"))
		b.Connect("su", "so", 0)
		b.Input("s1", "su", 0)
		b.Output("t1", "so")
	}
	d, err := b.Build()
	if err != nil {
		panic(err)
	}
	n, err := node.New(sim, net, d, node.Config{
		ID:           "n1",
		Upstreams:    map[string][]string{"s1": {"src1"}},
		StallTimeout: 1 << 60, // no failures in the overhead runs
		PerTuple:     opts.PerTuple,
	})
	if err != nil {
		panic(err)
	}
	srcCfg := source.Config{
		ID:               "src1",
		Stream:           "s1",
		Rate:             100, // one tuple every 10 ms, as in §7
		TickInterval:     10 * vtime.Millisecond,
		BoundaryInterval: interval,
	}
	if baseline {
		srcCfg.BoundaryInterval = 1 << 60 // no boundary tuples at all
	}
	src := source.New(sim, net, srcCfg)

	ls := &latencySink{sim: sim}
	net.Register("sink", ls.handle)
	n.Start()
	src.Start()
	net.Send("sink", "n1", node.SubscribeMsg{Stream: "t1"})
	sim.RunFor(runSecs * vtime.Second)
	return ls.row(param)
}

// Print renders the paper's table layout.
func (r OverheadResult) Print(w io.Writer) {
	if r.VaryBucket {
		fprintf(w, "Table IV: latency overhead of serialization — varying bucket size (boundary interval 10 ms)\n")
		fprintf(w, "%-32s", "Bucket size (ms)")
	} else {
		fprintf(w, "Table V: latency overhead of serialization — varying boundary interval (bucket size 10 ms)\n")
		fprintf(w, "%-32s", "Boundary interval (ms)")
	}
	for _, row := range r.Rows {
		fprintf(w, "%8d", row.ParamMs)
	}
	stats := []struct {
		name string
		get  func(OverheadRow) float64
	}{
		{"Minimum latency", func(r OverheadRow) float64 { return r.Min }},
		{"Maximum latency", func(r OverheadRow) float64 { return r.Max }},
		{"Average latency", func(r OverheadRow) float64 { return r.Avg }},
		{"Standard deviation of latency", func(r OverheadRow) float64 { return r.Std }},
	}
	for _, s := range stats {
		fprintf(w, "\n%-32s", s.name)
		for _, row := range r.Rows {
			fprintf(w, "%8.1f", s.get(row))
		}
	}
	fprintf(w, "\n")
}
