package experiment

import (
	"io"

	"borealis/internal/deploy"
	"borealis/internal/vtime"
)

// Table3Result reproduces Table III: Procnew for different failure
// durations on the Fig. 12 deployment (one replicated node running
// SUnion → SJoin(≈100-tuple state) → SOutput over three input streams).
// The paper reports a constant ≈2.8 s (0.9·D + processing) for every
// duration, always below the 3-second bound.
type Table3Result struct {
	D         int64 // the availability bound assigned to the node
	Durations []int64
	Procnew   []float64 // seconds
	// ConsistencyOK reports the eventual-consistency audit per run.
	ConsistencyOK []bool
}

// table3Spec is the Fig. 12 deployment.
func table3Spec() deploy.ChainSpec {
	return deploy.ChainSpec{
		Depth:       1,
		Replicas:    2,
		Sources:     3,
		Rate:        1500,
		Delay:       3 * vtime.Second,
		WithJoin:    true,
		Capacity:    16500,
		AckInterval: vtime.Second,
	}
}

// Table3 runs the Table III sweep.
func Table3(opts Options) Table3Result {
	durations := []int64{2, 4, 6, 8, 10, 12, 14, 16, 30, 45, 60}
	if opts.Quick {
		durations = []int64{2, 6, 12}
	}
	res := Table3Result{D: 3 * vtime.Second, Durations: durations}
	for _, secs := range durations {
		proc, ok := table3Run(secs, opts)
		res.Procnew = append(res.Procnew, proc)
		res.ConsistencyOK = append(res.ConsistencyOK, ok)
	}
	return res
}

func table3Run(failSecs int64, opts Options) (float64, bool) {
	spec := table3Spec()
	fail := failSecs * vtime.Second
	dep, err := deploy.BuildChain(spec)
	if err != nil {
		panic(err)
	}
	const failAt = 10 * vtime.Second
	dep.DisconnectSource(1, failAt, fail)
	dep.Start()
	// Measure Procnew from failure start through recovery.
	dep.RunFor(failAt)
	dep.Client.ResetLatency()
	// Recovery needs reconciliation time ≈ fail·rate/(cap−rate) per
	// replica, plus slack.
	recovery := 3*fail + 20*vtime.Second
	dep.RunFor(fail + recovery)
	st := dep.Client.Stats()

	// Audit against a clean run of the same length.
	ref, err := deploy.BuildChain(spec)
	if err != nil {
		panic(err)
	}
	ref.Start()
	ref.RunFor(failAt + fail + recovery)
	audit := dep.Client.VerifyEventualConsistency(ref.Client.View())
	return Seconds(st.MaxLatency), audit.OK
}

// Print renders the paper's Table III layout.
func (r Table3Result) Print(w io.Writer) {
	fprintf(w, "Table III: Procnew for different failure durations (D = %.0f s, bound %.0f s)\n",
		Seconds(r.D)*0.9/0.9, Seconds(r.D))
	fprintf(w, "%-28s", "Failure duration (seconds)")
	for _, d := range r.Durations {
		fprintf(w, "%8d", d)
	}
	fprintf(w, "\n%-28s", "Procnew (seconds)")
	for _, p := range r.Procnew {
		fprintf(w, "%s", fmtCell(p))
	}
	fprintf(w, "\n%-28s", "eventual consistency")
	for _, ok := range r.ConsistencyOK {
		if ok {
			fprintf(w, "%8s", "ok")
		} else {
			fprintf(w, "%8s", "FAIL")
		}
	}
	fprintf(w, "\n")
}
