package experiment

import (
	"io"

	"borealis/internal/deploy"
	"borealis/internal/node"
	"borealis/internal/vtime"
)

// BufferAblationRow is one §8.1 buffer-management strategy under a long
// failure.
type BufferAblationRow struct {
	Name string
	// NewDuringFailure counts new tuples delivered while the failure was
	// active: the availability the strategy preserved.
	NewDuringFailure uint64
	// Truncated counts tuples dropped from the node's output buffer.
	Truncated uint64
	// FullConsistency / RecentWindowOK: which consistency guarantee held
	// (unbounded keeps everything; slide keeps a recent window;
	// block keeps everything by sacrificing availability).
	FullConsistency bool
	RecentWindowOK  bool
}

// BufferAblationResult compares the §8.1 buffer-management strategies.
type BufferAblationResult struct {
	FailureSecs int64
	Cap         int
	Rows        []BufferAblationRow
}

// AblateBuffers runs a long failure against unbounded, slide-on-full
// (convergent-capable), and block-on-full (general deterministic) output
// buffers.
func AblateBuffers(opts Options) BufferAblationResult {
	failSecs := int64(20)
	if opts.Quick {
		failSecs = 8
	}
	res := BufferAblationResult{FailureSecs: failSecs, Cap: 2000}
	cases := []struct {
		name string
		mode node.BufferMode
		cap  int
	}{
		{"unbounded", node.BufferUnbounded, 0},
		{"slide-on-full (convergent)", node.BufferSlide, res.Cap},
		{"block-on-full", node.BufferBlock, res.Cap},
	}
	for _, tc := range cases {
		res.Rows = append(res.Rows, bufferRun(tc.name, tc.mode, tc.cap, failSecs, opts))
	}
	return res
}

func bufferRun(name string, mode node.BufferMode, capTuples int, failSecs int64, opts Options) BufferAblationRow {
	spec := deploy.ChainSpec{
		Depth:      1,
		Replicas:   2,
		Sources:    3,
		Rate:       500,
		Delay:      2 * vtime.Second,
		BufferMode: mode,
		BufferCap:  capTuples,
		PerTuple:   opts.PerTuple,
		// No acks: the buffer can only grow during the failure, which
		// is exactly the §8.1 stress.
	}
	dep, err := deploy.BuildChain(spec)
	if err != nil {
		panic(err)
	}
	const failAt = 10 * vtime.Second
	fail := failSecs * vtime.Second
	dep.DisconnectSource(1, failAt, fail)
	dep.Start()
	dep.RunFor(failAt)
	before := dep.Client.Stats().NewTuples
	dep.RunFor(fail)
	duringFailure := dep.Client.Stats().NewTuples - before
	dep.RunFor(3*fail + 30*vtime.Second)

	ref, err := deploy.BuildChain(spec)
	if err != nil {
		panic(err)
	}
	ref.Start()
	ref.RunFor(failAt + fail + 3*fail + 30*vtime.Second)

	full := dep.Client.VerifyEventualConsistency(ref.Client.View())
	recent := dep.Client.VerifyRecentWindow(ref.Client.View(), 500)
	var truncated uint64
	for _, n := range dep.Nodes[0] {
		truncated += n.Output("t1").Truncated
	}
	return BufferAblationRow{
		Name:             name,
		NewDuringFailure: duringFailure,
		Truncated:        truncated,
		FullConsistency:  full.OK,
		RecentWindowOK:   recent.OK,
	}
}

// Print renders the comparison.
func (r BufferAblationResult) Print(w io.Writer) {
	fprintf(w, "§8.1 buffer management under a %d s failure (output-buffer cap %d tuples)\n", r.FailureSecs, r.Cap)
	fprintf(w, "%-28s %16s %12s %10s %10s\n", "strategy", "new during fail", "truncated", "full-cons", "recent-ok")
	for _, row := range r.Rows {
		fprintf(w, "%-28s %16d %12d %10v %10v\n",
			row.Name, row.NewDuringFailure, row.Truncated, row.FullConsistency, row.RecentWindowOK)
	}
}
