package experiment

import (
	"io"

	"borealis/internal/deploy"
	"borealis/internal/tuple"
	"borealis/internal/vtime"
)

// Fig11Point is one delivered tuple in the Fig. 11 series: the paper plots
// tuple sequence numbers against delivery time; REC_DONE markers are
// plotted on the x-axis (sequence 0).
type Fig11Point struct {
	TimeMs float64
	Seq    int64
	Type   tuple.Type
}

// Fig11Result reproduces the Fig. 11 eventual-consistency demonstrations:
// a single unreplicated node running the Fig. 10 SUnion tree, with (a) two
// overlapping failures or (b) a failure striking during recovery.
type Fig11Result struct {
	Overlap bool
	Series  []Fig11Point
	// Summary counters.
	Tentative, Corrections uint64
	Undos, RecDones        uint64
	Reconciliations        uint64
	// ConsistencyOK is the audit against a failure-free run.
	ConsistencyOK bool
	AuditReason   string
}

// Fig11 runs scenario (a) when overlap is true, else scenario (b).
func Fig11(overlap bool, opts Options) Fig11Result {
	spec := deploy.SUnionTreeSpec{Rate: 400, Delay: 2 * vtime.Second, RecordClient: true, PerTuple: opts.PerTuple}
	dep, err := deploy.BuildSUnionTree(spec)
	if err != nil {
		panic(err)
	}
	const (
		f1Start = 5 * vtime.Second
		sec     = vtime.Second
	)
	if overlap {
		// Fig. 11(a): failure 2 begins while failure 1 is active.
		dep.Sim.At(f1Start, dep.Sources[0].Disconnect)
		dep.Sim.At(f1Start+3*sec, dep.Sources[2].Disconnect)
		dep.Sim.At(f1Start+6*sec, dep.Sources[0].Reconnect)
		dep.Sim.At(f1Start+9*sec, dep.Sources[2].Reconnect)
	} else {
		// Fig. 11(b): failure 2 begins exactly as failure 1 heals.
		dep.Sim.At(f1Start, dep.Sources[0].Disconnect)
		dep.Sim.At(f1Start+5*sec, func() {
			dep.Sources[0].Reconnect()
			dep.Sources[2].Disconnect()
		})
		dep.Sim.At(f1Start+11*sec, dep.Sources[2].Reconnect)
	}
	dep.Start()
	dep.RunFor(30 * vtime.Second)

	res := Fig11Result{Overlap: overlap}
	var stableSeq, shown int64
	for _, d := range dep.Client.Trace() {
		p := Fig11Point{TimeMs: float64(d.At) / float64(vtime.Millisecond), Type: d.Tuple.Type}
		switch d.Tuple.Type {
		case tuple.Insertion:
			stableSeq++
			shown++
			p.Seq = shown
		case tuple.Tentative:
			shown++
			p.Seq = shown
			res.Tentative++
		case tuple.Undo:
			res.Undos++
			// Roll the displayed sequence back to the stable prefix,
			// like the paper's plots do implicitly.
			shown = stableSeq
			continue
		case tuple.RecDone:
			res.RecDones++
			p.Seq = 0 // plotted on the x-axis
		default:
			continue
		}
		res.Series = append(res.Series, p)
	}
	res.Reconciliations = dep.Nodes[0][0].Reconciliations
	st := dep.Client.Stats()
	res.Corrections = st.NewTuples // informational

	ref, err := deploy.BuildSUnionTree(deploy.SUnionTreeSpec{Rate: spec.Rate, Delay: spec.Delay, PerTuple: spec.PerTuple})
	if err != nil {
		panic(err)
	}
	ref.Start()
	ref.RunFor(30 * vtime.Second)
	audit := dep.Client.VerifyEventualConsistency(ref.Client.View())
	res.ConsistencyOK = audit.OK
	res.AuditReason = audit.Reason
	return res
}

// Print summarizes the run; use the CSV dump (cmd/dpcviz) for the plot.
func (r Fig11Result) Print(w io.Writer) {
	name := "Fig. 11(b): failure during recovery"
	wantRec := uint64(2)
	if r.Overlap {
		name = "Fig. 11(a): overlapping failures"
		wantRec = 1
	}
	fprintf(w, "%s\n", name)
	fprintf(w, "  deliveries plotted: %d\n", len(r.Series))
	fprintf(w, "  tentative tuples:   %d\n", r.Tentative)
	fprintf(w, "  undo markers:       %d\n", r.Undos)
	fprintf(w, "  rec_done markers:   %d (expected %d)\n", r.RecDones, wantRec)
	fprintf(w, "  reconciliations:    %d (expected %d)\n", r.Reconciliations, wantRec)
	if r.ConsistencyOK {
		fprintf(w, "  eventual consistency: ok (all tentative corrected, no stable duplicates)\n")
	} else {
		fprintf(w, "  eventual consistency: FAILED: %s\n", r.AuditReason)
	}
}

// TraceCSV renders the series as CSV (time_ms, seq, type).
func (r Fig11Result) TraceCSV(w io.Writer) {
	fprintf(w, "time_ms,seq,type\n")
	for _, p := range r.Series {
		fprintf(w, "%.1f,%d,%s\n", p.TimeMs, p.Seq, p.Type)
	}
}
