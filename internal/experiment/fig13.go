package experiment

import (
	"io"

	"borealis/internal/deploy"
	"borealis/internal/vtime"
)

// Fig13Result reproduces Fig. 13: availability (Procnew) and consistency
// (Ntentative) for the six delay-policy variants of §6.1, on the Fig. 12
// deployment with a 4500 tuples/s aggregate input and D = 3 s.
//
// Expected shapes (paper): every variant masks failures ≤ 0.9·D entirely;
// Process & Process keeps Procnew flat but produces the most tentative
// tuples; Delay & Delay keeps Procnew flat with the fewest tentative
// tuples; the Suspend variants break the availability bound once
// reconciliation outlasts D (around 8 s failures).
type Fig13Result struct {
	D         int64
	Rate      float64
	Durations []int64 // seconds
	Variants  []Variant
	// Procnew[v][d] in seconds; Ntentative[v][d] in tuples.
	Procnew    [][]float64
	Ntentative [][]uint64
}

// Fig13 runs the sweep. Short and long failure durations are combined in
// one series (the paper splits them across subfigures (a,b) and (c,d)).
func Fig13(opts Options) Fig13Result {
	durations := []int64{2, 4, 6, 8, 10, 12, 14, 20, 30, 45, 60}
	if opts.Quick {
		durations = []int64{2, 6, 12}
	}
	res := Fig13Result{
		D:         3 * vtime.Second,
		Rate:      4500,
		Durations: durations,
		Variants:  Variants(),
	}
	for _, v := range res.Variants {
		var procs []float64
		var tents []uint64
		for _, secs := range durations {
			p, n := fig13Run(v, secs, opts)
			procs = append(procs, p)
			tents = append(tents, n)
		}
		res.Procnew = append(res.Procnew, procs)
		res.Ntentative = append(res.Ntentative, tents)
	}
	return res
}

func fig13Run(v Variant, failSecs int64, opts Options) (float64, uint64) {
	spec := deploy.ChainSpec{
		Depth:               1,
		Replicas:            2,
		Sources:             3,
		Rate:                4500,
		Delay:               3 * vtime.Second,
		Capacity:            16500,
		FailurePolicy:       v.Failure,
		StabilizationPolicy: v.Stabilization,
		AckInterval:         vtime.Second,
		PerTuple:            opts.PerTuple,
	}
	fail := failSecs * vtime.Second
	dep, err := deploy.BuildChain(spec)
	if err != nil {
		panic(err)
	}
	const failAt = 10 * vtime.Second
	dep.DisconnectSource(1, failAt, fail)
	dep.Start()
	dep.RunFor(failAt)
	dep.Client.ResetLatency()
	recovery := 3*fail + 20*vtime.Second
	dep.RunFor(fail + recovery)
	st := dep.Client.Stats()
	return Seconds(st.MaxLatency), st.Tentative
}

// Print renders both panels as tables.
func (r Fig13Result) Print(w io.Writer) {
	fprintf(w, "Fig. 13: six delay-policy variants (rate %.0f t/s, D = %.0f s)\n", r.Rate, Seconds(r.D))
	fprintf(w, "\n(a,c) Procnew in seconds\n%-20s", "variant \\ failure s")
	for _, d := range r.Durations {
		fprintf(w, "%8d", d)
	}
	fprintf(w, "\n")
	for i, v := range r.Variants {
		fprintf(w, "%-20s", v.Name)
		for _, p := range r.Procnew[i] {
			fprintf(w, "%s", fmtCell(p))
		}
		fprintf(w, "\n")
	}
	fprintf(w, "\n(b,d) Ntentative in tuples\n%-20s", "variant \\ failure s")
	for _, d := range r.Durations {
		fprintf(w, "%8d", d)
	}
	fprintf(w, "\n")
	for i, v := range r.Variants {
		fprintf(w, "%-20s", v.Name)
		for _, n := range r.Ntentative[i] {
			fprintf(w, "%8d", n)
		}
		fprintf(w, "\n")
	}
}
