// Package diagram models Borealis query diagrams (§2.1): loop-free directed
// graphs of operators with named external input and output streams. A
// Builder assembles and validates a diagram; WrapForDPC applies the §3
// query-diagram extensions — an SUnion in front of every node input stream
// and an SOutput on every output stream that crosses a node boundary.
package diagram

import (
	"fmt"
	"sort"

	"borealis/internal/operator"
)

// Edge connects an operator's output to another operator's input port.
type Edge struct {
	To   string
	Port int
}

// Input binds an external input stream to an operator port.
type Input struct {
	Stream string
	Op     string
	Port   int
}

// Output binds an operator's output to an external stream name.
type Output struct {
	Stream string
	Op     string
}

// Diagram is a validated, immutable query diagram.
type Diagram struct {
	ops     map[string]operator.Operator
	edges   map[string][]Edge
	inputs  []Input
	outputs []Output
	topo    []string
	// feeds maps each operator to the set of external input streams that
	// can reach it; reaches maps each external input stream to the output
	// streams it affects. Both drive failure propagation (§8.2).
	feeds   map[string]map[string]bool
	reaches map[string]map[string]bool
}

// Builder assembles a diagram.
type Builder struct {
	ops     map[string]operator.Operator
	order   []string
	edges   map[string][]Edge
	inputs  []Input
	outputs []Output
	errs    []error
}

// NewBuilder returns an empty diagram builder.
func NewBuilder() *Builder {
	return &Builder{
		ops:   make(map[string]operator.Operator),
		edges: make(map[string][]Edge),
	}
}

func (b *Builder) errf(format string, args ...any) {
	b.errs = append(b.errs, fmt.Errorf(format, args...))
}

// Add registers an operator. Names must be unique within the diagram.
func (b *Builder) Add(op operator.Operator) *Builder {
	name := op.Name()
	if name == "" {
		b.errf("diagram: operator with empty name")
		return b
	}
	if _, dup := b.ops[name]; dup {
		b.errf("diagram: duplicate operator %q", name)
		return b
	}
	b.ops[name] = op
	b.order = append(b.order, name)
	return b
}

// Connect wires from's output into port of to.
func (b *Builder) Connect(from, to string, port int) *Builder {
	b.edges[from] = append(b.edges[from], Edge{To: to, Port: port})
	return b
}

// Input declares an external input stream feeding an operator port.
func (b *Builder) Input(stream, op string, port int) *Builder {
	b.inputs = append(b.inputs, Input{Stream: stream, Op: op, Port: port})
	return b
}

// Output declares an operator's output as the named external stream.
func (b *Builder) Output(stream, op string) *Builder {
	b.outputs = append(b.outputs, Output{Stream: stream, Op: op})
	return b
}

// DPCOptions configures WrapForDPC.
type DPCOptions struct {
	// BucketSize and Delay parameterize the inserted input SUnions.
	BucketSize int64
	Delay      int64
	// SafetyFactor and TentativeWait are passed through to SUnions
	// (zero values select the defaults).
	SafetyFactor  float64
	TentativeWait int64
}

// WrapForDPC applies the §3 extensions: every external input stream gets a
// single-port SUnion inserted in front of its target (so the node can delay
// tentative input as policy dictates), and every external output that is not
// already produced by an SOutput gets one appended. Existing SUnions and
// SOutputs are left in place.
func (b *Builder) WrapForDPC(opts DPCOptions) *Builder {
	for i, in := range b.inputs {
		if _, isSU := b.ops[in.Op].(*operator.SUnion); isSU && b.targetOnlyFedBy(in) {
			continue // input already lands on a dedicated SUnion port
		}
		name := fmt.Sprintf("__in_%s", in.Stream)
		if _, exists := b.ops[name]; exists {
			b.errf("diagram: dpc wrapper name collision %q", name)
			continue
		}
		su := operator.NewSUnion(name, operator.SUnionConfig{
			Ports:         1,
			BucketSize:    opts.BucketSize,
			Delay:         opts.Delay,
			SafetyFactor:  opts.SafetyFactor,
			TentativeWait: opts.TentativeWait,
		})
		b.Add(su)
		b.Connect(name, in.Op, in.Port)
		b.inputs[i] = Input{Stream: in.Stream, Op: name, Port: 0}
	}
	for i, out := range b.outputs {
		if _, isSO := b.ops[out.Op].(*operator.SOutput); isSO {
			continue
		}
		name := fmt.Sprintf("__out_%s", out.Stream)
		if _, exists := b.ops[name]; exists {
			b.errf("diagram: dpc wrapper name collision %q", name)
			continue
		}
		b.Add(operator.NewSOutput(name))
		b.Connect(out.Op, name, 0)
		b.outputs[i] = Output{Stream: out.Stream, Op: name}
	}
	return b
}

// targetOnlyFedBy reports whether in's target port receives only this input.
func (b *Builder) targetOnlyFedBy(in Input) bool {
	for _, edges := range b.edges {
		for _, e := range edges {
			if e.To == in.Op && e.Port == in.Port {
				return false
			}
		}
	}
	n := 0
	for _, other := range b.inputs {
		if other.Op == in.Op && other.Port == in.Port {
			n++
		}
	}
	return n == 1
}

// Build validates the diagram: all endpoints exist, ports are in range,
// every input port has exactly one source, the graph is loop-free, every
// output names an existing operator, and stream names are unique.
func (b *Builder) Build() (*Diagram, error) {
	if len(b.errs) > 0 {
		return nil, b.errs[0]
	}
	if len(b.ops) == 0 {
		return nil, fmt.Errorf("diagram: empty")
	}
	// Endpoint and port validation; count sources per (op, port).
	srcCount := make(map[string]int)
	key := func(op string, port int) string { return fmt.Sprintf("%s/%d", op, port) }
	for from, edges := range b.edges {
		if _, ok := b.ops[from]; !ok {
			return nil, fmt.Errorf("diagram: edge from unknown operator %q", from)
		}
		for _, e := range edges {
			to, ok := b.ops[e.To]
			if !ok {
				return nil, fmt.Errorf("diagram: edge to unknown operator %q", e.To)
			}
			if e.Port < 0 || e.Port >= to.Inputs() {
				return nil, fmt.Errorf("diagram: %s has no input port %d (has %d)", e.To, e.Port, to.Inputs())
			}
			srcCount[key(e.To, e.Port)]++
		}
	}
	streamSeen := make(map[string]bool)
	for _, in := range b.inputs {
		op, ok := b.ops[in.Op]
		if !ok {
			return nil, fmt.Errorf("diagram: input %q targets unknown operator %q", in.Stream, in.Op)
		}
		if in.Port < 0 || in.Port >= op.Inputs() {
			return nil, fmt.Errorf("diagram: input %q targets missing port %d of %s", in.Stream, in.Port, in.Op)
		}
		if streamSeen[in.Stream] {
			return nil, fmt.Errorf("diagram: duplicate input stream %q", in.Stream)
		}
		streamSeen[in.Stream] = true
		srcCount[key(in.Op, in.Port)]++
	}
	for _, out := range b.outputs {
		if _, ok := b.ops[out.Op]; !ok {
			return nil, fmt.Errorf("diagram: output %q from unknown operator %q", out.Stream, out.Op)
		}
		if streamSeen[out.Stream] {
			return nil, fmt.Errorf("diagram: stream name %q reused", out.Stream)
		}
		streamSeen[out.Stream] = true
	}
	if len(b.outputs) == 0 {
		return nil, fmt.Errorf("diagram: no output streams")
	}
	// Every input port needs exactly one source.
	for name, op := range b.ops {
		for p := 0; p < op.Inputs(); p++ {
			switch n := srcCount[key(name, p)]; {
			case n == 0:
				return nil, fmt.Errorf("diagram: %s port %d has no source", name, p)
			case n > 1:
				return nil, fmt.Errorf("diagram: %s port %d has %d sources", name, p, n)
			}
		}
	}
	topo, err := b.topoSort()
	if err != nil {
		return nil, err
	}
	d := &Diagram{
		ops:     b.ops,
		edges:   b.edges,
		inputs:  append([]Input(nil), b.inputs...),
		outputs: append([]Output(nil), b.outputs...),
		topo:    topo,
	}
	d.computeReachability()
	return d, nil
}

// topoSort orders operators so every edge goes forward; a cycle is an error
// (query diagrams are loop-free, §2.1).
func (b *Builder) topoSort() ([]string, error) {
	indeg := make(map[string]int, len(b.ops))
	for name := range b.ops {
		indeg[name] = 0
	}
	for _, edges := range b.edges {
		for _, e := range edges {
			indeg[e.To]++
		}
	}
	var queue []string
	for _, name := range b.order { // builder order keeps this deterministic
		if indeg[name] == 0 {
			queue = append(queue, name)
		}
	}
	var topo []string
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		topo = append(topo, n)
		for _, e := range b.edges[n] {
			indeg[e.To]--
			if indeg[e.To] == 0 {
				queue = append(queue, e.To)
			}
		}
	}
	if len(topo) != len(b.ops) {
		return nil, fmt.Errorf("diagram: cycle detected")
	}
	return topo, nil
}

// computeReachability fills feeds (op → input streams reaching it) and
// reaches (input stream → output streams it affects).
func (d *Diagram) computeReachability() {
	d.feeds = make(map[string]map[string]bool, len(d.ops))
	for _, name := range d.topo {
		d.feeds[name] = make(map[string]bool)
	}
	for _, in := range d.inputs {
		d.feeds[in.Op][in.Stream] = true
	}
	for _, name := range d.topo {
		for _, e := range d.edges[name] {
			for s := range d.feeds[name] {
				d.feeds[e.To][s] = true
			}
		}
	}
	d.reaches = make(map[string]map[string]bool, len(d.inputs))
	for _, in := range d.inputs {
		d.reaches[in.Stream] = make(map[string]bool)
	}
	for _, out := range d.outputs {
		for s := range d.feeds[out.Op] {
			d.reaches[s][out.Stream] = true
		}
	}
}

// Op returns the named operator, or nil.
func (d *Diagram) Op(name string) operator.Operator { return d.ops[name] }

// Ops returns operator names in topological order (a defensive copy; use
// TopoOrder on per-event paths).
func (d *Diagram) Ops() []string { return append([]string(nil), d.topo...) }

// TopoOrder returns the diagram's own topological-order slice, shared and
// read-only: callers must not mutate it. The engine walks it at wire time
// and on every checkpoint snapshot/restore, where Ops' per-call copy was
// a measurable allocation source.
func (d *Diagram) TopoOrder() []string { return d.topo }

// Downstream returns the edges leaving an operator.
func (d *Diagram) Downstream(name string) []Edge { return d.edges[name] }

// Inputs returns the external input bindings, in declaration order.
func (d *Diagram) Inputs() []Input { return append([]Input(nil), d.inputs...) }

// Outputs returns the external output bindings, in declaration order.
func (d *Diagram) Outputs() []Output { return append([]Output(nil), d.outputs...) }

// InputBinding returns the binding for a named input stream.
func (d *Diagram) InputBinding(stream string) (Input, bool) {
	for _, in := range d.inputs {
		if in.Stream == stream {
			return in, true
		}
	}
	return Input{}, false
}

// FeedsOf returns the external input streams that can reach the operator,
// sorted for determinism.
func (d *Diagram) FeedsOf(op string) []string {
	var out []string
	for s := range d.feeds[op] {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

// OutputsAffectedBy returns the output streams an input stream reaches,
// sorted for determinism. The Consistency Manager uses it to advertise
// per-output-stream failure states (§8.2).
func (d *Diagram) OutputsAffectedBy(input string) []string {
	var out []string
	for s := range d.reaches[input] {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

// SUnions returns the names of all SUnion operators in topological order.
func (d *Diagram) SUnions() []string {
	var out []string
	for _, name := range d.topo {
		if _, ok := d.ops[name].(*operator.SUnion); ok {
			out = append(out, name)
		}
	}
	return out
}

// SUnionsFedBy returns the SUnions reachable from the given external input
// stream, in topological order; a failure on that input switches exactly
// these SUnions into a delay policy.
func (d *Diagram) SUnionsFedBy(input string) []string {
	var out []string
	for _, name := range d.topo {
		if _, ok := d.ops[name].(*operator.SUnion); !ok {
			continue
		}
		if d.feeds[name][input] {
			out = append(out, name)
		}
	}
	return out
}
