package diagram

import (
	"strings"
	"testing"

	"borealis/internal/operator"
	"borealis/internal/runtime"
	"borealis/internal/tuple"
)

func passAll(tuple.Tuple) bool { return true }

func simpleChain() *Builder {
	b := NewBuilder()
	b.Add(operator.NewFilter("f", passAll))
	b.Add(operator.NewSOutput("out"))
	b.Connect("f", "out", 0)
	b.Input("in", "f", 0)
	b.Output("result", "out")
	return b
}

func TestBuildSimpleChain(t *testing.T) {
	d, err := simpleChain().Build()
	if err != nil {
		t.Fatal(err)
	}
	if d.Op("f") == nil || d.Op("out") == nil {
		t.Fatal("operators missing")
	}
	ops := d.Ops()
	if len(ops) != 2 || ops[0] != "f" || ops[1] != "out" {
		t.Fatalf("topo order wrong: %v", ops)
	}
	if edges := d.Downstream("f"); len(edges) != 1 || edges[0].To != "out" {
		t.Fatalf("downstream wrong: %v", edges)
	}
}

func TestBuildRejectsDuplicateOperator(t *testing.T) {
	b := NewBuilder()
	b.Add(operator.NewFilter("x", passAll))
	b.Add(operator.NewFilter("x", passAll))
	if _, err := b.Build(); err == nil || !strings.Contains(err.Error(), "duplicate") {
		t.Fatalf("want duplicate error, got %v", err)
	}
}

func TestBuildRejectsUnknownEndpoints(t *testing.T) {
	b := NewBuilder()
	b.Add(operator.NewSOutput("out"))
	b.Connect("ghost", "out", 0)
	b.Output("o", "out")
	if _, err := b.Build(); err == nil || !strings.Contains(err.Error(), "unknown operator") {
		t.Fatalf("want unknown-endpoint error, got %v", err)
	}
}

func TestBuildRejectsBadPort(t *testing.T) {
	b := NewBuilder()
	b.Add(operator.NewFilter("f", passAll))
	b.Add(operator.NewSOutput("out"))
	b.Connect("f", "out", 3) // SOutput has 1 port
	b.Input("in", "f", 0)
	b.Output("o", "out")
	if _, err := b.Build(); err == nil || !strings.Contains(err.Error(), "port") {
		t.Fatalf("want port error, got %v", err)
	}
}

func TestBuildRejectsUnfedPort(t *testing.T) {
	b := NewBuilder()
	su := operator.NewSUnion("su", operator.SUnionConfig{Ports: 2, BucketSize: 10, Delay: 100})
	b.Add(su)
	b.Add(operator.NewSOutput("out"))
	b.Connect("su", "out", 0)
	b.Input("in", "su", 0) // port 1 unfed
	b.Output("o", "out")
	if _, err := b.Build(); err == nil || !strings.Contains(err.Error(), "no source") {
		t.Fatalf("want no-source error, got %v", err)
	}
}

func TestBuildRejectsDoubleFedPort(t *testing.T) {
	b := NewBuilder()
	b.Add(operator.NewFilter("a", passAll))
	b.Add(operator.NewFilter("b", passAll))
	b.Add(operator.NewSOutput("out"))
	b.Connect("a", "out", 0)
	b.Connect("b", "out", 0)
	b.Input("i1", "a", 0)
	b.Input("i2", "b", 0)
	b.Output("o", "out")
	if _, err := b.Build(); err == nil || !strings.Contains(err.Error(), "sources") {
		t.Fatalf("want multi-source error, got %v", err)
	}
}

func TestBuildRejectsCycle(t *testing.T) {
	b := NewBuilder()
	b.Add(operator.NewFilter("a", passAll))
	b.Add(operator.NewFilter("b", passAll))
	b.Add(operator.NewSOutput("out"))
	b.Connect("a", "b", 0)
	b.Connect("b", "a", 0)
	b.Connect("b", "out", 0) // port conflict aside, cycle must be caught
	b.Output("o", "out")
	_, err := b.Build()
	if err == nil {
		t.Fatal("cycle accepted")
	}
}

func TestBuildRejectsNoOutputs(t *testing.T) {
	b := NewBuilder()
	b.Add(operator.NewFilter("f", passAll))
	b.Input("in", "f", 0)
	if _, err := b.Build(); err == nil || !strings.Contains(err.Error(), "no output") {
		t.Fatalf("want no-output error, got %v", err)
	}
}

func TestBuildRejectsDuplicateStreamNames(t *testing.T) {
	b := simpleChain()
	b.Input("in", "f", 0) // duplicate input stream name
	if _, err := b.Build(); err == nil {
		t.Fatal("duplicate stream accepted")
	}
}

func TestWrapForDPCInsertsInputSUnionAndKeepsSOutput(t *testing.T) {
	b := simpleChain().WrapForDPC(DPCOptions{BucketSize: 100, Delay: 1000})
	d, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	in, ok := d.InputBinding("in")
	if !ok {
		t.Fatal("input binding lost")
	}
	if _, isSU := d.Op(in.Op).(*operator.SUnion); !isSU {
		t.Fatalf("input must land on an SUnion, lands on %T", d.Op(in.Op))
	}
	sus := d.SUnions()
	if len(sus) != 1 {
		t.Fatalf("want exactly 1 inserted SUnion, got %v", sus)
	}
	// Output already had an SOutput: none added.
	outs := d.Outputs()
	if len(outs) != 1 || outs[0].Op != "out" {
		t.Fatalf("existing SOutput must be kept: %v", outs)
	}
}

func TestWrapForDPCAddsSOutput(t *testing.T) {
	b := NewBuilder()
	b.Add(operator.NewFilter("f", passAll))
	b.Input("in", "f", 0)
	b.Output("result", "f")
	d, err := b.WrapForDPC(DPCOptions{BucketSize: 100, Delay: 1000}).Build()
	if err != nil {
		t.Fatal(err)
	}
	out := d.Outputs()[0]
	if _, isSO := d.Op(out.Op).(*operator.SOutput); !isSO {
		t.Fatalf("output must be produced by an SOutput, got %T", d.Op(out.Op))
	}
}

func TestWrapForDPCSkipsDedicatedInputSUnion(t *testing.T) {
	b := NewBuilder()
	su := operator.NewSUnion("su", operator.SUnionConfig{Ports: 1, BucketSize: 10, Delay: 100})
	b.Add(su)
	b.Add(operator.NewSOutput("out"))
	b.Connect("su", "out", 0)
	b.Input("in", "su", 0)
	b.Output("o", "out")
	d, err := b.WrapForDPC(DPCOptions{BucketSize: 10, Delay: 100}).Build()
	if err != nil {
		t.Fatal(err)
	}
	if len(d.SUnions()) != 1 {
		t.Fatalf("existing input SUnion must be reused: %v", d.SUnions())
	}
}

func TestWrapForDPCWrapsSharedMergeSUnion(t *testing.T) {
	// Two external inputs landing on one 2-port SUnion: the merge SUnion
	// serializes, and each input additionally gets its own 1-port SUnion
	// only if its port is shared (here each port is dedicated → reused).
	b := NewBuilder()
	su := operator.NewSUnion("merge", operator.SUnionConfig{Ports: 2, BucketSize: 10, Delay: 100})
	b.Add(su)
	b.Add(operator.NewSOutput("out"))
	b.Connect("merge", "out", 0)
	b.Input("i1", "merge", 0)
	b.Input("i2", "merge", 1)
	b.Output("o", "out")
	d, err := b.WrapForDPC(DPCOptions{BucketSize: 10, Delay: 100}).Build()
	if err != nil {
		t.Fatal(err)
	}
	if len(d.SUnions()) != 1 {
		t.Fatalf("dedicated merge ports must be reused: %v", d.SUnions())
	}
}

func buildFanIn(t *testing.T) *Diagram {
	t.Helper()
	// i1, i2 → merge SUnion → join; i3 → filter → join's second port is
	// modelled through the merge; filter also feeds its own output.
	b := NewBuilder()
	b.Add(operator.NewSUnion("merge", operator.SUnionConfig{Ports: 2, BucketSize: 10, Delay: 100}))
	b.Add(operator.NewFilter("filt", passAll))
	b.Add(operator.NewSJoin("join", operator.JoinConfig{Window: 10}))
	b.Add(operator.NewSOutput("out1"))
	b.Add(operator.NewSOutput("out2"))
	b.Connect("merge", "join", 0)
	b.Connect("join", "out1", 0)
	b.Connect("filt", "out2", 0)
	b.Input("i1", "merge", 0)
	b.Input("i2", "merge", 1)
	b.Input("i3", "filt", 0)
	b.Output("joined", "out1")
	b.Output("filtered", "out2")
	d, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestReachability(t *testing.T) {
	d := buildFanIn(t)
	if got := d.OutputsAffectedBy("i1"); len(got) != 1 || got[0] != "joined" {
		t.Fatalf("i1 affects %v, want [joined]", got)
	}
	if got := d.OutputsAffectedBy("i3"); len(got) != 1 || got[0] != "filtered" {
		t.Fatalf("i3 affects %v, want [filtered]", got)
	}
	feeds := d.FeedsOf("join")
	if len(feeds) != 2 || feeds[0] != "i1" || feeds[1] != "i2" {
		t.Fatalf("join fed by %v", feeds)
	}
}

func TestSUnionsFedBy(t *testing.T) {
	d := buildFanIn(t)
	if got := d.SUnionsFedBy("i2"); len(got) != 1 || got[0] != "merge" {
		t.Fatalf("SUnionsFedBy(i2) = %v", got)
	}
	if got := d.SUnionsFedBy("i3"); len(got) != 0 {
		t.Fatalf("SUnionsFedBy(i3) = %v, want none", got)
	}
}

func TestDiagramExecutesEndToEnd(t *testing.T) {
	// Wire a built diagram by hand (as the engine will) and push tuples.
	d, err := simpleChain().WrapForDPC(DPCOptions{BucketSize: 100, Delay: 1000}).Build()
	if err != nil {
		t.Fatal(err)
	}
	sim := runtime.NewVirtual()
	var results []tuple.Tuple
	for _, name := range d.Ops() {
		name := name
		op := d.Op(name)
		env := &operator.Env{
			Now:   sim.Now,
			After: sim.After,
			Emit: func(t tuple.Tuple) {
				for _, e := range d.Downstream(name) {
					d.Op(e.To).Process(e.Port, t)
				}
				if len(d.Downstream(name)) == 0 {
					results = append(results, t)
				}
			},
		}
		op.Attach(env)
	}
	in, _ := d.InputBinding("in")
	target := d.Op(in.Op)
	target.Process(in.Port, tuple.NewInsertion(50, 7))
	target.Process(in.Port, tuple.NewBoundary(100))
	sim.Run()
	var data []tuple.Tuple
	for _, r := range results {
		if r.IsData() {
			data = append(data, r)
		}
	}
	if len(data) != 1 || data[0].Field(0) != 7 {
		t.Fatalf("end-to-end execution wrong: %v", results)
	}
}
