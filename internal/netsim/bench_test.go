package netsim

import (
	"testing"

	"borealis/internal/runtime"
)

// BenchmarkNetsimSend measures the per-message cost of the fabric: schedule
// a delivery, fire it, invoke the handler. Every tuple batch, ack,
// keep-alive, and subscription in the system crosses this path.
func BenchmarkNetsimSend(b *testing.B) {
	sim := runtime.NewVirtual()
	n := New(sim)
	got := 0
	n.Register("a", func(string, any) {})
	n.Register("b", func(from string, msg any) { got++ })
	msg := struct{ X int }{42}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n.Send("a", "b", &msg)
		sim.Run()
	}
	if got != b.N {
		b.Fatalf("delivered %d of %d", got, b.N)
	}
}

// BenchmarkNetsimSendBurst sends bursts of messages per sim drain, the
// pattern of a node flushing batches to several subscribers.
func BenchmarkNetsimSendBurst(b *testing.B) {
	sim := runtime.NewVirtual()
	n := New(sim)
	got := 0
	n.Register("a", func(string, any) {})
	n.Register("b", func(from string, msg any) { got++ })
	n.Register("c", func(from string, msg any) { got++ })
	msg := struct{ X int }{42}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := 0; j < 8; j++ {
			n.Send("a", "b", &msg)
			n.Send("a", "c", &msg)
		}
		sim.Run()
	}
	if got == 0 {
		b.Fatal("nothing delivered")
	}
}
