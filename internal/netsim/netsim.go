// Package netsim simulates the network connecting processing nodes, data
// sources, and clients. It provides what the paper assumes of the transport
// (§2.2): reliable, in-order delivery between any pair of endpoints, with
// small latencies, plus the failure modes DPC must tolerate: link failures,
// network partitions, and endpoint crashes.
//
// Delivery is FIFO per ordered (from, to) pair. Messages sent while the pair
// is partitioned, or while either endpoint is down, are silently dropped —
// the behaviour of a broken TCP connection as observed by DPC, whose failure
// detection relies on missing boundary tuples and keep-alive timeouts rather
// than transport errors.
package netsim

import (
	"fmt"
	"hash/fnv"
	"sort"

	"borealis/internal/fabric"
	"borealis/internal/runtime"
	"borealis/internal/vtime"
)

// Handler receives messages addressed to an endpoint.
type Handler = fabric.Handler

// Net implements the fabric surface protocol components run on; the TCP
// transport (internal/transport) is the other implementation.
var _ fabric.Fabric = (*Net)(nil)

// DefaultLatency is the one-way delivery latency used for links that have
// no explicit override. The paper assumes network latency is small compared
// with the availability bound X.
const DefaultLatency = 5 * vtime.Millisecond

type pair struct{ a, b string }

func orderedPair(a, b string) pair {
	if a > b {
		a, b = b, a
	}
	return pair{a, b}
}

// dlink is one directed endpoint pair (SetLink state, unlike Partition, is
// per direction).
type dlink struct{ from, to string }

// linkRNG is the deterministic splitmix64 jitter stream of one link,
// seeded from the endpoint names so reordering is reproducible and
// independent of every other link.
type linkRNG struct{ state uint64 }

func newLinkRNG(from, to string) *linkRNG {
	h := fnv.New64a()
	h.Write([]byte(from))
	h.Write([]byte{0})
	h.Write([]byte(to))
	return &linkRNG{state: h.Sum64()}
}

func (r *linkRNG) next() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

type endpoint struct {
	handler Handler
	down    bool
	// lastDeparture enforces FIFO per destination: a message may not be
	// delivered before one sent earlier on the same ordered link.
	lastArrival map[string]int64
}

// delivery is one in-flight message. Records are pooled per Net: a Send
// takes one from the free list and the delivery callback returns it, so the
// steady-state data plane schedules messages without allocating.
type delivery struct {
	from, to string
	src, dst *endpoint
	msg      any
	next     *delivery
}

// Net is the simulated network fabric.
type Net struct {
	clk         runtime.Clock
	endpoints   map[string]*endpoint
	latency     map[pair]int64
	partitioned map[pair]bool
	links       map[dlink]fabric.LinkState
	linkRNG     map[dlink]*linkRNG
	defaultLat  int64

	// deliverFn is the shared delivery callback (bound once so Send does
	// not allocate a closure per message); dfree is the record free list.
	deliverFn func(any)
	dfree     *delivery

	// Delivered counts messages handed to handlers; Dropped counts
	// messages lost to partitions or downed endpoints.
	Delivered uint64
	Dropped   uint64
}

// New returns a network fabric driven by the given clock — the virtual
// simulator for deterministic runs, or a wall clock for paced real-time
// execution (latencies then consume real microseconds).
func New(clk runtime.Clock) *Net {
	n := &Net{
		clk:         clk,
		endpoints:   make(map[string]*endpoint),
		latency:     make(map[pair]int64),
		partitioned: make(map[pair]bool),
		links:       make(map[dlink]fabric.LinkState),
		linkRNG:     make(map[dlink]*linkRNG),
		defaultLat:  DefaultLatency,
	}
	n.deliverFn = n.deliver
	return n
}

// SetDefaultLatency overrides the fabric-wide one-way latency.
func (n *Net) SetDefaultLatency(d int64) {
	if d < 0 {
		panic("netsim: negative latency")
	}
	n.defaultLat = d
}

// Register attaches a handler to an endpoint id, creating the endpoint if
// needed. Registering twice replaces the handler (used by crash-restart).
func (n *Net) Register(id string, h Handler) {
	if h == nil {
		panic("netsim: nil handler for " + id)
	}
	ep := n.endpoints[id]
	if ep == nil {
		ep = &endpoint{lastArrival: make(map[string]int64)}
		n.endpoints[id] = ep
	}
	ep.handler = h
}

// Endpoints returns the registered endpoint ids in sorted order.
func (n *Net) Endpoints() []string {
	ids := make([]string, 0, len(n.endpoints))
	for id := range n.endpoints {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// SetLatency sets the one-way latency between a and b (both directions).
func (n *Net) SetLatency(a, b string, d int64) {
	if d < 0 {
		panic("netsim: negative latency")
	}
	n.latency[orderedPair(a, b)] = d
}

// Latency returns the one-way latency between a and b.
func (n *Net) Latency(a, b string) int64 {
	if d, ok := n.latency[orderedPair(a, b)]; ok {
		return d
	}
	return n.defaultLat
}

// Partition severs communication between a and b in both directions.
// In-flight messages are dropped at their scheduled delivery time.
func (n *Net) Partition(a, b string) { n.partitioned[orderedPair(a, b)] = true }

// Heal restores communication between a and b.
func (n *Net) Heal(a, b string) { delete(n.partitioned, orderedPair(a, b)) }

// PartitionGroups severs every link between the two groups, simulating a
// network partition that splits the system (§2.2).
func (n *Net) PartitionGroups(g1, g2 []string) {
	for _, a := range g1 {
		for _, b := range g2 {
			n.Partition(a, b)
		}
	}
}

// HealGroups restores every link between the two groups.
func (n *Net) HealGroups(g1, g2 []string) {
	for _, a := range g1 {
		for _, b := range g2 {
			n.Heal(a, b)
		}
	}
}

// Partitioned reports whether a and b cannot currently communicate.
func (n *Net) Partitioned(a, b string) bool { return n.partitioned[orderedPair(a, b)] }

var _ fabric.LinkControl = (*Net)(nil)

// SetLink installs (or, with the zero LinkState, clears) the injected
// fault state of the directed link from → to (fabric.LinkControl). It is
// the directed, per-link counterpart of Partition/Heal, sharing the fault
// surface with the TCP transport: Block drops at delivery time like a
// partition, DelayUS stretches the link latency, and JitterUS draws a
// deterministic per-message extra delay that bypasses the FIFO clamp —
// the simulator's only source of reordering.
func (n *Net) SetLink(from, to string, st fabric.LinkState) {
	key := dlink{from, to}
	if st == (fabric.LinkState{}) {
		delete(n.links, key)
		return
	}
	n.links[key] = st
	if st.JitterUS > 0 && n.linkRNG[key] == nil {
		n.linkRNG[key] = newLinkRNG(from, to)
	}
}

// linkBlocked reports whether the directed link is blocked by SetLink.
func (n *Net) linkBlocked(from, to string) bool { return n.links[dlink{from, to}].Block }

// SetDown marks an endpoint as crashed (true) or recovered (false). A downed
// endpoint neither sends nor receives; messages in flight to it are dropped.
func (n *Net) SetDown(id string, down bool) {
	ep := n.endpoints[id]
	if ep == nil {
		panic("netsim: unknown endpoint " + id)
	}
	ep.down = down
}

// Down reports whether the endpoint is crashed.
func (n *Net) Down(id string) bool {
	ep := n.endpoints[id]
	return ep != nil && ep.down
}

// Send delivers msg from one endpoint to another after the link latency,
// preserving FIFO order per (from, to) pair. Sends from or to a downed
// endpoint, or across a partition, are dropped.
func (n *Net) Send(from, to string, msg any) {
	src := n.endpoints[from]
	dst := n.endpoints[to]
	if src == nil {
		panic(fmt.Sprintf("netsim: send from unregistered endpoint %q", from))
	}
	if dst == nil {
		panic(fmt.Sprintf("netsim: send to unregistered endpoint %q", to))
	}
	if src.down {
		n.Dropped++
		return
	}
	at := n.clk.Now() + n.Latency(from, to)
	jittered := false
	if st, ok := n.links[dlink{from, to}]; ok {
		at += st.DelayUS
		if st.JitterUS > 0 {
			at += int64(n.linkRNG[dlink{from, to}].next() % uint64(st.JitterUS))
			jittered = true
		}
	}
	// FIFO: never deliver before a message sent earlier on this link.
	// A jittered link deliberately skips the clamp — reordering is the
	// fault being injected.
	if !jittered {
		if prev := dst.lastArrival[from]; at < prev {
			at = prev
		}
		dst.lastArrival[from] = at
	}
	d := n.dfree
	if d == nil {
		d = &delivery{}
	} else {
		n.dfree = d.next
		d.next = nil
	}
	d.from, d.to, d.src, d.dst, d.msg = from, to, src, dst, msg
	n.clk.AtCall(at, n.deliverFn, d)
}

// deliver consumes one pooled delivery record at its scheduled time.
func (n *Net) deliver(x any) {
	d := x.(*delivery)
	from, to, src, dst, msg := d.from, d.to, d.src, d.dst, d.msg
	d.src, d.dst, d.msg = nil, nil, nil
	d.next = n.dfree
	n.dfree = d
	// Evaluate failure state at delivery time: a partition that
	// happened while the message was in flight kills it, like a
	// broken connection discarding its socket buffers.
	if dst.down || src.down || n.Partitioned(from, to) || n.linkBlocked(from, to) {
		n.Dropped++
		return
	}
	if dst.handler == nil {
		n.Dropped++
		return
	}
	n.Delivered++
	dst.handler(from, msg)
}

// Reachable reports whether a message sent now from a to b would be
// delivered (both endpoints up and no partition). The failure detectors do
// NOT use this — they rely on timeouts like the real system — but tests and
// the failure injector do.
func (n *Net) Reachable(a, b string) bool {
	ea, eb := n.endpoints[a], n.endpoints[b]
	if ea == nil || eb == nil || ea.down || eb.down {
		return false
	}
	return !n.Partitioned(a, b)
}
