package netsim

import (
	"testing"
	"testing/quick"

	"borealis/internal/fabric"
	"borealis/internal/runtime"
	"borealis/internal/vtime"
)

type rec struct {
	from string
	msg  any
	at   int64
}

func setup() (*runtime.VirtualClock, *Net, map[string]*[]rec) {
	sim := runtime.NewVirtual()
	n := New(sim)
	boxes := make(map[string]*[]rec)
	for _, id := range []string{"a", "b", "c"} {
		id := id
		box := &[]rec{}
		boxes[id] = box
		n.Register(id, func(from string, msg any) {
			*box = append(*box, rec{from, msg, sim.Now()})
		})
	}
	return sim, n, boxes
}

func TestDeliveryWithLatency(t *testing.T) {
	sim, n, boxes := setup()
	n.SetDefaultLatency(7 * vtime.Millisecond)
	n.Send("a", "b", "hello")
	sim.Run()
	got := *boxes["b"]
	if len(got) != 1 || got[0].msg != "hello" || got[0].from != "a" {
		t.Fatalf("delivery wrong: %+v", got)
	}
	if got[0].at != 7*vtime.Millisecond {
		t.Fatalf("delivered at %d, want %d", got[0].at, 7*vtime.Millisecond)
	}
}

func TestPerLinkLatencyOverride(t *testing.T) {
	sim, n, boxes := setup()
	n.SetLatency("a", "b", 20*vtime.Millisecond)
	n.Send("a", "b", 1)
	n.Send("a", "c", 2)
	sim.Run()
	if (*boxes["b"])[0].at != 20*vtime.Millisecond {
		t.Errorf("a→b latency override not applied")
	}
	if (*boxes["c"])[0].at != DefaultLatency {
		t.Errorf("a→c should use default latency")
	}
	if n.Latency("b", "a") != 20*vtime.Millisecond {
		t.Errorf("latency must be symmetric")
	}
}

func TestFIFOPerLink(t *testing.T) {
	sim, n, boxes := setup()
	// Shrink the latency after sending the first message: the second
	// message must still arrive after the first.
	n.SetLatency("a", "b", 50*vtime.Millisecond)
	n.Send("a", "b", 1)
	n.SetLatency("a", "b", 1*vtime.Millisecond)
	n.Send("a", "b", 2)
	sim.Run()
	got := *boxes["b"]
	if len(got) != 2 || got[0].msg != 1 || got[1].msg != 2 {
		t.Fatalf("FIFO violated: %+v", got)
	}
	if got[1].at < got[0].at {
		t.Fatalf("second message delivered before first")
	}
}

func TestPartitionDropsTraffic(t *testing.T) {
	sim, n, boxes := setup()
	n.Partition("a", "b")
	n.Send("a", "b", "lost")
	n.Send("b", "a", "lost too")
	n.Send("a", "c", "ok")
	sim.Run()
	if len(*boxes["b"]) != 0 || len(*boxes["a"]) != 0 {
		t.Fatal("partitioned messages must be dropped")
	}
	if len(*boxes["c"]) != 1 {
		t.Fatal("unrelated link must still work")
	}
	if n.Dropped != 2 || n.Delivered != 1 {
		t.Fatalf("counters: dropped=%d delivered=%d", n.Dropped, n.Delivered)
	}
}

func TestPartitionKillsInFlight(t *testing.T) {
	sim, n, boxes := setup()
	n.SetLatency("a", "b", 10*vtime.Millisecond)
	n.Send("a", "b", "in-flight")
	sim.RunUntil(5 * vtime.Millisecond)
	n.Partition("a", "b")
	sim.Run()
	if len(*boxes["b"]) != 0 {
		t.Fatal("message in flight across a new partition must be dropped")
	}
}

func TestHealRestores(t *testing.T) {
	sim, n, boxes := setup()
	n.Partition("a", "b")
	n.Send("a", "b", 1)
	sim.Run()
	n.Heal("a", "b")
	n.Send("a", "b", 2)
	sim.Run()
	got := *boxes["b"]
	if len(got) != 1 || got[0].msg != 2 {
		t.Fatalf("after heal: %+v", got)
	}
}

func TestPartitionGroups(t *testing.T) {
	sim, n, boxes := setup()
	n.PartitionGroups([]string{"a"}, []string{"b", "c"})
	n.Send("a", "b", 1)
	n.Send("a", "c", 1)
	n.Send("b", "c", 1) // same side: fine
	sim.Run()
	if len(*boxes["b"]) != 0 || len(*boxes["a"]) != 0 {
		t.Fatal("cross-group traffic must drop")
	}
	if len(*boxes["c"]) != 1 {
		t.Fatal("intra-group traffic must flow")
	}
	n.HealGroups([]string{"a"}, []string{"b", "c"})
	if !n.Reachable("a", "b") || !n.Reachable("a", "c") {
		t.Fatal("HealGroups must restore reachability")
	}
}

func TestDownEndpoint(t *testing.T) {
	sim, n, boxes := setup()
	n.SetDown("b", true)
	n.Send("a", "b", "to crashed")
	n.Send("b", "a", "from crashed")
	sim.Run()
	if len(*boxes["b"]) != 0 || len(*boxes["a"]) != 0 {
		t.Fatal("downed endpoint must not send or receive")
	}
	if !n.Down("b") {
		t.Fatal("Down(b) should be true")
	}
	n.SetDown("b", false)
	n.Send("a", "b", "recovered")
	sim.Run()
	if len(*boxes["b"]) != 1 {
		t.Fatal("recovered endpoint must receive")
	}
}

func TestCrashKillsInFlight(t *testing.T) {
	sim, n, boxes := setup()
	n.SetLatency("a", "b", 10*vtime.Millisecond)
	n.Send("a", "b", "in-flight")
	sim.RunUntil(2 * vtime.Millisecond)
	n.SetDown("b", true)
	sim.Run()
	if len(*boxes["b"]) != 0 {
		t.Fatal("message in flight to a crashing endpoint must drop")
	}
}

func TestReachable(t *testing.T) {
	_, n, _ := setup()
	if !n.Reachable("a", "b") {
		t.Fatal("fresh endpoints should be reachable")
	}
	n.Partition("a", "b")
	if n.Reachable("a", "b") {
		t.Fatal("partitioned pair should be unreachable")
	}
	if n.Reachable("a", "zzz") {
		t.Fatal("unknown endpoint should be unreachable")
	}
}

func TestEndpointsSorted(t *testing.T) {
	_, n, _ := setup()
	ids := n.Endpoints()
	if len(ids) != 3 || ids[0] != "a" || ids[1] != "b" || ids[2] != "c" {
		t.Fatalf("Endpoints() = %v", ids)
	}
}

func TestReregisterReplacesHandler(t *testing.T) {
	sim := runtime.NewVirtual()
	n := New(sim)
	var first, second int
	n.Register("x", func(string, any) { first++ })
	n.Register("y", func(string, any) {})
	n.Register("x", func(string, any) { second++ })
	n.Send("y", "x", 1)
	sim.Run()
	if first != 0 || second != 1 {
		t.Fatalf("re-registered handler not used: first=%d second=%d", first, second)
	}
}

// Property: any interleaving of sends on one link is received in send order.
func TestQuickFIFO(t *testing.T) {
	f := func(lat []uint8) bool {
		sim := runtime.NewVirtual()
		n := New(sim)
		n.Register("s", func(string, any) {})
		var got []int
		n.Register("r", func(_ string, msg any) { got = append(got, msg.(int)) })
		for i, l := range lat {
			n.SetLatency("s", "r", int64(l)*vtime.Millisecond)
			n.Send("s", "r", i)
		}
		sim.Run()
		if len(got) != len(lat) {
			return false
		}
		for i, v := range got {
			if v != i {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestSetLinkBlock checks the directed link fault: block drops one
// direction only (at delivery time, like Partition), and the zero LinkState
// heals it.
func TestSetLinkBlock(t *testing.T) {
	sim, n, boxes := setup()
	n.SetLink("a", "b", fabric.LinkState{Block: true})
	n.Send("a", "b", "m1")
	n.Send("b", "a", "m2") // reverse direction stays open
	sim.Run()
	if len(*boxes["b"]) != 0 {
		t.Fatalf("blocked link delivered: %+v", *boxes["b"])
	}
	if len(*boxes["a"]) != 1 {
		t.Fatalf("reverse direction lost: %+v", *boxes["a"])
	}
	if n.Dropped != 1 {
		t.Fatalf("Dropped = %d, want 1", n.Dropped)
	}
	n.SetLink("a", "b", fabric.LinkState{})
	n.Send("a", "b", "m3")
	sim.Run()
	if len(*boxes["b"]) != 1 {
		t.Fatalf("healed link lost: %+v", *boxes["b"])
	}
}

// TestSetLinkBlockKillsInFlight checks delivery-time semantics: a block
// installed while a message is in flight kills it.
func TestSetLinkBlockKillsInFlight(t *testing.T) {
	sim, n, boxes := setup()
	n.Send("a", "b", "doomed")
	n.SetLink("a", "b", fabric.LinkState{Block: true})
	sim.Run()
	if len(*boxes["b"]) != 0 {
		t.Fatal("in-flight message survived a link block")
	}
}

// TestSetLinkDelay checks that DelayUS stretches the link latency.
func TestSetLinkDelay(t *testing.T) {
	sim, n, boxes := setup()
	n.SetDefaultLatency(5 * vtime.Millisecond)
	n.SetLink("a", "b", fabric.LinkState{DelayUS: 20 * vtime.Millisecond})
	n.Send("a", "b", "slow")
	sim.Run()
	got := *boxes["b"]
	if len(got) != 1 {
		t.Fatalf("delayed message lost: %+v", got)
	}
	if got[0].at != 25*vtime.Millisecond {
		t.Fatalf("delivered at %d, want %d", got[0].at, 25*vtime.Millisecond)
	}
}

// TestSetLinkJitterReorders checks that jitter bypasses the FIFO clamp
// (reordering is the injected fault) and that the reordering is a pure
// function of the link name: two fresh nets deliver in the same order.
func TestSetLinkJitterReorders(t *testing.T) {
	run := func() []any {
		sim, n, boxes := setup()
		n.SetLink("a", "b", fabric.LinkState{JitterUS: 50 * vtime.Millisecond})
		for i := 0; i < 50; i++ {
			n.Send("a", "b", i)
		}
		sim.Run()
		var order []any
		for _, r := range *boxes["b"] {
			order = append(order, r.msg)
		}
		return order
	}
	first, second := run(), run()
	if len(first) != 50 {
		t.Fatalf("jittered link delivered %d of 50", len(first))
	}
	inOrder := true
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("jitter not deterministic at %d: %v vs %v", i, first[i], second[i])
		}
		if first[i] != i {
			inOrder = false
		}
	}
	if inOrder {
		t.Fatal("jittered link stayed FIFO: no reordering injected")
	}
}
