// Package source implements DPC-speaking data sources (§2.2): they
// timestamp every tuple they produce, emit periodic boundary tuples that
// double as punctuation and heartbeats (§4.2.1), log everything they ever
// produced in a persistent log, and replay missed suffixes to subscribers
// that reconnect or fall behind — including after the source-side failures
// the experiments inject (disconnection, boundary stalls).
package source

import (
	"sort"

	"borealis/internal/fabric"
	"borealis/internal/node"
	"borealis/internal/runtime"
	"borealis/internal/tuple"
	"borealis/internal/vtime"
)

// Config parameterizes a source.
type Config struct {
	// ID is the network endpoint; Stream names the produced stream.
	ID, Stream string
	// Rate is the production rate in tuples per second.
	Rate float64
	// TickInterval batches production (default 10 ms): each tick emits
	// Rate·TickInterval tuples stamped with the current virtual time.
	TickInterval int64
	// BoundaryInterval spaces boundary tuples (default 100 ms).
	BoundaryInterval int64
	// Payload builds a tuple's data fields from its sequence number;
	// the default is [seq].
	Payload func(seq uint64) []int64
	// LogCap bounds the persistent log (0 = unbounded). When the log is
	// full, the oldest entries are dropped and DroppedLog counts them —
	// the "sources start dropping tuples" end state of §8.1.
	LogCap int
}

type subscriber struct {
	pos    int // index into log of the next tuple to send
	seq    uint64
	paused bool
}

// Source is a data source endpoint on the simulated network.
type Source struct {
	cfg Config
	clk runtime.Clock
	net fabric.Fabric

	log     []tuple.Tuple
	logBase int // sequence index of log[0] after truncation
	subs    map[string]*subscriber
	// subsSorted caches the deterministic flush order; rebuilt when the
	// subscription set changes.
	subsSorted []string

	nextID       uint64
	seq          uint64
	acc          float64
	nextBoundary int64

	disconnected bool
	stallBounds  bool

	ticker runtime.Ticker

	// Produced counts data tuples generated; DroppedLog counts tuples
	// evicted from a bounded log.
	Produced   uint64
	DroppedLog uint64
}

// New builds a source and registers its endpoint. Call Start to begin
// producing.
func New(clk runtime.Clock, net fabric.Fabric, cfg Config) *Source {
	if cfg.TickInterval <= 0 {
		cfg.TickInterval = 10 * vtime.Millisecond
	}
	if cfg.BoundaryInterval <= 0 {
		cfg.BoundaryInterval = 100 * vtime.Millisecond
	}
	if cfg.Payload == nil {
		var arena tuple.I64Arena
		cfg.Payload = func(seq uint64) []int64 {
			p := arena.Alloc(1)
			p[0] = int64(seq)
			return p
		}
	}
	s := &Source{cfg: cfg, clk: clk, net: net, subs: make(map[string]*subscriber)}
	net.Register(cfg.ID, s.handle)
	return s
}

// ID returns the source's endpoint identifier.
func (s *Source) ID() string { return s.cfg.ID }

// Stream returns the produced stream name.
func (s *Source) Stream() string { return s.cfg.Stream }

// LogLen returns the persistent log length.
func (s *Source) LogLen() int { return len(s.log) }

// Start begins ticking.
func (s *Source) Start() {
	s.nextBoundary = s.clk.Now() + s.cfg.BoundaryInterval
	s.ticker = s.clk.NewTicker(s.cfg.TickInterval, s.tick)
}

// SetRate changes the production rate in tuples/second, effective from the
// next tick. Workload shapes (bursts, ramps) are driven through this.
func (s *Source) SetRate(r float64) {
	if r < 0 {
		r = 0
	}
	s.cfg.Rate = r
}

// Rate returns the current production rate.
func (s *Source) Rate() float64 { return s.cfg.Rate }

// Stop halts production permanently (fail-stop of a data source).
func (s *Source) Stop() {
	if s.ticker != nil {
		s.ticker.Stop()
	}
}

// Disconnect stops transmissions while production and logging continue:
// the Table III failure mode ("temporarily disconnecting one of the input
// streams without stopping the data source").
func (s *Source) Disconnect() { s.disconnected = true }

// Reconnect resumes transmissions; each subscriber receives the entire
// missed suffix (the source "replays all missing tuples while continuing
// to produce new tuples").
func (s *Source) Reconnect() { s.disconnected = false }

// StallBoundaries keeps data flowing but stops boundary production: the
// Fig. 15/16 failure mode, which leaves the downstream output rate intact
// while preventing buckets from stabilizing.
func (s *Source) StallBoundaries() { s.stallBounds = true }

// ResumeBoundaries re-enables boundary production.
func (s *Source) ResumeBoundaries() { s.stallBounds = false }

// tick produces this interval's tuples and flushes subscribers.
func (s *Source) tick() {
	now := s.clk.Now()
	s.acc += s.cfg.Rate * float64(s.cfg.TickInterval) / float64(vtime.Second)
	n := int(s.acc)
	s.acc -= float64(n)
	for i := 0; i < n; i++ {
		s.nextID++
		s.seq++
		s.Produced++
		t := tuple.Tuple{
			Type:  tuple.Insertion,
			ID:    s.nextID,
			STime: now,
			Data:  s.cfg.Payload(s.seq),
		}
		s.append(t)
	}
	if !s.stallBounds && now >= s.nextBoundary {
		s.append(tuple.NewBoundary(now))
		for now >= s.nextBoundary {
			s.nextBoundary += s.cfg.BoundaryInterval
		}
	}
	if !s.disconnected {
		s.flush()
	}
}

// append adds a tuple to the persistent log, evicting under LogCap.
func (s *Source) append(t tuple.Tuple) {
	if s.cfg.LogCap > 0 && len(s.log) >= s.cfg.LogCap {
		drop := len(s.log) - s.cfg.LogCap + 1
		s.log = append(s.log[:0:0], s.log[drop:]...)
		s.logBase += drop
		s.DroppedLog += uint64(drop)
		for _, sub := range s.subs {
			if sub.pos < s.logBase {
				sub.pos = s.logBase
			}
		}
	}
	s.log = tuple.Append(s.log, t)
}

// flush sends each subscriber everything it has not yet received, in
// deterministic (sorted endpoint) order. Batches alias the log rather than
// copying it: the aliased region is immutable (appends write past it, and
// LogCap eviction reallocates, leaving in-flight views intact).
func (s *Source) flush() {
	end := s.logBase + len(s.log)
	if s.subsSorted == nil && len(s.subs) > 0 {
		eps := make([]string, 0, len(s.subs))
		for ep := range s.subs {
			eps = append(eps, ep)
		}
		sort.Strings(eps)
		s.subsSorted = eps
	}
	for _, ep := range s.subsSorted {
		sub := s.subs[ep]
		if sub.paused || sub.pos >= end {
			continue
		}
		lo := sub.pos - s.logBase
		batch := s.log[lo:len(s.log):len(s.log)]
		sub.pos = end
		sub.seq++
		s.net.Send(s.cfg.ID, ep, node.DataMsg{Stream: s.cfg.Stream, Seq: sub.seq, Tuples: batch})
	}
}

// handle serves the DPC protocol: subscriptions with replay-from-id,
// acknowledgments, and keep-alives (a source is always STABLE — stream
// failures are injected at the transmission layer, not advertised).
func (s *Source) handle(from string, msg any) {
	switch m := msg.(type) {
	case node.SubscribeMsg:
		if m.Stream != s.cfg.Stream {
			return
		}
		pos := s.logBase
		if m.FromID > 0 {
			for i := len(s.log) - 1; i >= 0; i-- {
				if s.log[i].IsData() && s.log[i].ID == m.FromID {
					pos = s.logBase + i + 1
					break
				}
			}
		}
		s.subs[from] = &subscriber{pos: pos}
		s.subsSorted = nil
		if !s.disconnected {
			s.flush()
		}
	case node.UnsubscribeMsg:
		delete(s.subs, from)
		s.subsSorted = nil
	case node.AckMsg:
		// Sources log persistently; acks need no truncation action.
	case node.KeepAliveReq:
		s.net.Send(s.cfg.ID, from, node.KeepAliveResp{
			Node:    node.StateStable,
			Streams: map[string]node.StreamState{s.cfg.Stream: node.StateStable},
		})
	}
}
