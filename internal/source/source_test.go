package source

import (
	"testing"

	"borealis/internal/netsim"
	"borealis/internal/node"
	"borealis/internal/runtime"
	"borealis/internal/tuple"
	"borealis/internal/vtime"
)

const (
	ms  = vtime.Millisecond
	sec = vtime.Second
)

type sink struct {
	tuples []tuple.Tuple
}

func setup(cfg Config) (*runtime.VirtualClock, *netsim.Net, *Source, *sink) {
	sim := runtime.NewVirtual()
	net := netsim.New(sim)
	cfg.ID = "src"
	cfg.Stream = "s"
	s := New(sim, net, cfg)
	k := &sink{}
	net.Register("dn", func(_ string, msg any) {
		if dm, ok := msg.(node.DataMsg); ok {
			k.tuples = append(k.tuples, dm.Tuples...)
		}
	})
	return sim, net, s, k
}

func subscribe(net *netsim.Net, sim *runtime.VirtualClock, from uint64) {
	net.Send("dn", "src", node.SubscribeMsg{Stream: "s", FromID: from})
	sim.RunFor(10 * ms)
}

func data(ts []tuple.Tuple) []tuple.Tuple {
	var out []tuple.Tuple
	for _, t := range ts {
		if t.IsData() {
			out = append(out, t)
		}
	}
	return out
}

func bounds(ts []tuple.Tuple) []tuple.Tuple {
	var out []tuple.Tuple
	for _, t := range ts {
		if t.Type == tuple.Boundary {
			out = append(out, t)
		}
	}
	return out
}

func TestSourceRateAndTimestamps(t *testing.T) {
	sim, net, s, k := setup(Config{Rate: 100})
	subscribe(net, sim, 0)
	s.Start()
	sim.RunFor(2 * sec)
	got := data(k.tuples)
	if len(got) < 190 || len(got) > 210 {
		t.Fatalf("rate wrong: %d tuples in 2s at 100/s", len(got))
	}
	for i, tp := range got {
		if tp.ID != uint64(i+1) {
			t.Fatalf("ids not sequential: %v at %d", tp, i)
		}
		if tp.STime <= 0 || tp.STime > sim.Now() {
			t.Fatalf("bad stime: %v", tp)
		}
	}
}

func TestSourceBoundaryCadenceAndContract(t *testing.T) {
	sim, net, s, k := setup(Config{Rate: 100, BoundaryInterval: 100 * ms})
	subscribe(net, sim, 0)
	s.Start()
	sim.RunFor(1 * sec)
	bs := bounds(k.tuples)
	if len(bs) < 9 || len(bs) > 11 {
		t.Fatalf("boundary cadence wrong: %d in 1s at 100ms", len(bs))
	}
	// Punctuation contract: no later tuple may have stime below an
	// earlier boundary.
	maxBound := int64(-1)
	for _, tp := range k.tuples {
		if tp.Type == tuple.Boundary {
			if tp.STime > maxBound {
				maxBound = tp.STime
			}
		} else if tp.IsData() && tp.STime < maxBound {
			t.Fatalf("boundary contract violated: %v after boundary %d", tp, maxBound)
		}
	}
}

func TestSourceSubscribeFromIDReplays(t *testing.T) {
	sim, net, s, k := setup(Config{Rate: 100})
	s.Start()
	sim.RunFor(1 * sec) // 100 tuples logged, nobody listening
	subscribe(net, sim, 50)
	sim.RunFor(100 * ms)
	got := data(k.tuples)
	if len(got) == 0 || got[0].ID != 51 {
		t.Fatalf("replay must start after id 50: %v", got[:min(3, len(got))])
	}
}

func TestSourceDisconnectReplaysOnReconnect(t *testing.T) {
	sim, net, s, k := setup(Config{Rate: 100})
	subscribe(net, sim, 0)
	s.Start()
	sim.RunFor(1 * sec)
	s.Disconnect()
	sim.RunFor(20 * ms) // drain in-flight messages
	before := len(data(k.tuples))
	sim.RunFor(2 * sec)
	if len(data(k.tuples)) != before {
		t.Fatal("disconnected source must not transmit")
	}
	if s.Produced < 250 {
		t.Fatalf("production must continue while disconnected: %d", s.Produced)
	}
	s.Reconnect()
	sim.RunFor(100 * ms)
	got := data(k.tuples)
	// Everything missed arrives; ids stay gap-free.
	for i, tp := range got {
		if tp.ID != uint64(i+1) {
			t.Fatalf("gap after reconnect at %d: %v", i, tp)
		}
	}
	if len(got) < 290 {
		t.Fatalf("missed tuples not replayed: %d", len(got))
	}
}

func TestSourceStallBoundariesKeepsDataFlowing(t *testing.T) {
	sim, net, s, k := setup(Config{Rate: 100, BoundaryInterval: 100 * ms})
	subscribe(net, sim, 0)
	s.Start()
	sim.RunFor(1 * sec)
	s.StallBoundaries()
	sim.RunFor(20 * ms) // drain in-flight messages
	nData, nBounds := len(data(k.tuples)), len(bounds(k.tuples))
	sim.RunFor(1 * sec)
	if len(bounds(k.tuples)) != nBounds {
		t.Fatal("stalled source must not emit boundaries")
	}
	if len(data(k.tuples)) <= nData+80 {
		t.Fatalf("data must keep flowing during a stall: %d → %d", nData, len(data(k.tuples)))
	}
	s.ResumeBoundaries()
	sim.RunFor(200 * ms)
	if len(bounds(k.tuples)) <= nBounds {
		t.Fatal("boundaries must resume")
	}
}

func TestSourceBoundedLogDrops(t *testing.T) {
	sim, _, s, _ := setup(Config{Rate: 1000, LogCap: 100})
	s.Start()
	sim.RunFor(1 * sec)
	if s.LogLen() > 100 {
		t.Fatalf("log exceeded cap: %d", s.LogLen())
	}
	if s.DroppedLog == 0 {
		t.Fatal("bounded log must report drops")
	}
}

func TestSourceKeepAliveAlwaysStable(t *testing.T) {
	sim, net, _, _ := setup(Config{Rate: 100})
	var resp *node.KeepAliveResp
	net.Register("probe", func(_ string, msg any) {
		if r, ok := msg.(node.KeepAliveResp); ok {
			resp = &r
		}
	})
	net.Send("probe", "src", node.KeepAliveReq{})
	sim.RunFor(50 * ms)
	if resp == nil || resp.Node != node.StateStable || resp.Streams["s"] != node.StateStable {
		t.Fatalf("keep-alive resp: %+v", resp)
	}
}

func TestSourceUnsubscribeStops(t *testing.T) {
	sim, net, s, k := setup(Config{Rate: 100})
	subscribe(net, sim, 0)
	s.Start()
	sim.RunFor(500 * ms)
	net.Send("dn", "src", node.UnsubscribeMsg{Stream: "s"})
	sim.RunFor(50 * ms)
	n := len(k.tuples)
	sim.RunFor(1 * sec)
	if len(k.tuples) != n {
		t.Fatal("unsubscribed sink still receiving")
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
