package borealis_test

import (
	"testing"

	borealis "borealis"
)

// TestFuzzFacade drives the fuzzing surface end to end through the public
// API: generate a spec, run it with the audit, oracle-check the report,
// and run a tiny deterministic campaign.
func TestFuzzFacade(t *testing.T) {
	spec := borealis.FuzzSpec(7)
	if err := spec.Validate(); err != nil {
		t.Fatalf("generated spec invalid: %v", err)
	}
	rep, err := borealis.RunScenario(spec, borealis.ScenarioOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Consistency == nil {
		t.Fatal("generated specs must carry the Definition 1 audit")
	}
	_ = borealis.FuzzCheck(spec, rep) // findings are data, not errors

	sum, err := borealis.Fuzz(borealis.FuzzOptions{Seed: 3, Runs: 4, Parallelism: 1, NoShrink: true})
	if err != nil {
		t.Fatal(err)
	}
	if sum.Runs != 4 || sum.Seed != 3 {
		t.Fatalf("summary echo wrong: %+v", sum)
	}
}

// TestSoakFacade drives the soak surface end to end through the public
// API: mutate a generated spec, run a one-batch campaign over a tiny
// mutation pool, and differential-check the mutant.
func TestSoakFacade(t *testing.T) {
	base := borealis.FuzzSpec(7)
	mutant := borealis.FuzzMutate(base, 11)
	if err := mutant.Validate(); err != nil {
		t.Fatalf("mutant invalid: %v", err)
	}

	st, err := borealis.Soak(borealis.SoakOptions{
		Seed:         13,
		BatchRuns:    3,
		MaxBatches:   1,
		MutationPool: []*borealis.Scenario{base},
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.Batches != 1 || st.Runs != 3 {
		t.Fatalf("state echo wrong: %+v", st)
	}

	if fs := borealis.CheckDifferential(base); len(fs) != 0 {
		t.Fatalf("differential divergence on a generated spec: %v", fs)
	}
}

// TestRepeatFacade exercises the seed-family surface.
func TestRepeatFacade(t *testing.T) {
	spec := borealis.FuzzSpec(5)
	spec.VerifyConsistency = false
	spec.Faults = nil
	fam := borealis.SeedFamily(spec, 3)
	reports, err := borealis.RunMany(fam, borealis.ScenarioOptions{})
	if err != nil {
		t.Fatal(err)
	}
	stats, err := borealis.RepeatStats(reports)
	if err != nil {
		t.Fatal(err)
	}
	if len(stats) == 0 {
		t.Fatal("no metric stats")
	}
	for _, st := range stats {
		if st.Min > st.Max {
			t.Fatalf("stats inverted: %+v", st)
		}
	}
}
