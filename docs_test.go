package borealis_test

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// mdLink matches inline markdown links: [text](target).
var mdLink = regexp.MustCompile(`\]\(([^)\s]+)\)`)

// generatedMD holds paper/snippet reference files produced by extraction
// tooling; they carry artifacts (figure image links) we don't curate.
var generatedMD = map[string]bool{
	"PAPER.md":    true,
	"PAPERS.md":   true,
	"SNIPPETS.md": true,
}

// TestDocsLinks walks the curated markdown files in the repository root
// and docs/ and verifies that relative links point at files that exist,
// so the documentation cannot rot silently. External (http/https) links
// and pure anchors are skipped. CI runs this in the docs job.
func TestDocsLinks(t *testing.T) {
	var mds []string
	for _, pattern := range []string{"*.md", "docs/*.md"} {
		m, err := filepath.Glob(pattern)
		if err != nil {
			t.Fatal(err)
		}
		for _, f := range m {
			if !generatedMD[filepath.Base(f)] {
				mds = append(mds, f)
			}
		}
	}
	if len(mds) < 5 {
		t.Fatalf("expected the repo's markdown set, found only %v", mds)
	}
	for _, md := range mds {
		data, err := os.ReadFile(md)
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range mdLink.FindAllStringSubmatch(string(data), -1) {
			target := m[1]
			if strings.HasPrefix(target, "http://") ||
				strings.HasPrefix(target, "https://") ||
				strings.HasPrefix(target, "mailto:") ||
				strings.HasPrefix(target, "#") {
				continue
			}
			target, _, _ = strings.Cut(target, "#") // strip anchor
			resolved := filepath.Join(filepath.Dir(md), target)
			if _, err := os.Stat(resolved); err != nil {
				t.Errorf("%s: broken relative link %q (%v)", md, m[1], err)
			}
		}
	}
}
